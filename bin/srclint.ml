(* Thin driver over the Lint pass registry (lib/lint).

   Usage: srclint DIR... [--monotonic DIR...] [--concurrency DIR...]

   - DIR...: the proof-bearing protocol libraries get the purity,
     poly-hash and state-equality passes;
   - --monotonic DIR...: deadline/watchdog code gets the wall-clock ban;
   - --concurrency DIR...: the multicore layers get the domain-escape and
     atomics-discipline passes.

   Findings are deduplicated and printed in a stable order (a file reached
   through two targets reports each violation once).  Exit 0 clean, 1 with
   findings on stderr, 2 on usage errors.

   Wired as the @srclint alias in bin/dune, run by the CI lint job; the
   [swapspace lint] verb drives the same registry with repo-default
   targets. *)

let () =
  let args = match Array.to_list Sys.argv with _ :: a -> a | [] -> [] in
  let core = ref [] and mono = ref [] and conc = ref [] in
  let section = ref core in
  List.iter
    (fun a ->
      match a with
      | "--monotonic" -> section := mono
      | "--concurrency" -> section := conc
      | d -> !section := d :: !(!section))
    args;
  let core, mono, conc = List.rev !core, List.rev !mono, List.rev !conc in
  if core = [] && mono = [] && conc = [] then begin
    prerr_endline
      "usage: srclint DIR... [--monotonic DIR...] [--concurrency DIR...]";
    exit 2
  end;
  let plan =
    List.map
      (fun d -> d, [ Lint.purity; Lint.poly_hash; Lint.state_equality ])
      core
    @ List.map (fun d -> d, [ Lint.monotonic ]) mono
    @ List.map
        (fun d -> d, [ Lint.domain_escape; Lint.atomics_discipline ])
        conc
  in
  let findings = Lint.run_plan plan in
  List.iter (fun f -> Fmt.epr "%a@." Lint.pp_finding f) findings;
  match List.length findings with
  | 0 -> ()
  | n ->
    Fmt.epr "srclint: %d finding(s)@." n;
    exit 1
