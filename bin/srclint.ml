(* A source lint over the proof-bearing libraries (lib/core, lib/baselines).

   The repository's claims rest on protocols being *deterministic pure
   transition functions*: the checker explores, interns and memoizes
   configurations, so any hidden nondeterminism (randomness, wall-clock
   reads, unsafe casts) or structure-blind hashing silently invalidates
   the exploration.  The dynamic lints in lib/analyze catch such bugs when
   they manifest; this tool rejects the constructs at the source level, by
   walking the parsetree (compiler-libs) of every .ml file under the
   directories given on the command line:

   - any use of [Random.*], [Unix.*], [Obj.*] or [Marshal.*] — protocols
     must not read clocks, draw randomness, or defeat the type system;
   - [Hashtbl.hash] / [Hashtbl.seeded_hash] / [Hashtbl.hash_param] and
     qualified [Stdlib.compare] anywhere — polymorphic hashing stops after
     a small fixed number of nodes (lap arrays collide), and polymorphic
     compare diverges from the protocol's own [equal_state]; states must
     be hashed with [Shmem.Hashx] field by field;
   - inside [equal_state] / [hash_state] bindings: whole-state polymorphic
     [=] / [<>] / [compare] on the function's own parameters — equality on
     states must be structural and explicit.

   Directories listed after [--monotonic] get a narrower lint instead:
   deadline and watchdog code (lib/resil, lib/runtime) must never read
   the wall clock — [Unix.gettimeofday] / [Unix.time] / [Sys.time] jump
   under NTP slew and make timeouts fire early or never.  Those modules
   legitimately use [Random] (backoff jitter) and [Unix] elsewhere is
   already absent, so only the wall-clock reads are banned; monotonic
   time comes from [Resil.Clock].

   Usage: srclint DIR... [--monotonic DIR...]
   (exit 0 clean, 1 with findings on stderr)

   Wired as the @srclint alias in bin/dune, run by the CI lint job. *)

let errors = ref 0

let report loc fmt =
  let { Location.loc_start = p; _ } = loc in
  incr errors;
  Printf.eprintf "%s:%d:%d: " p.Lexing.pos_fname p.Lexing.pos_lnum
    (p.Lexing.pos_cnum - p.Lexing.pos_bol);
  Printf.kfprintf (fun oc -> output_char oc '\n') stderr fmt

(* [Foo.bar] heads banned wholesale *)
let banned_modules = [ "Random"; "Unix"; "Obj"; "Marshal" ]

(* fully-qualified idents banned individually *)
let banned_idents =
  [ [ "Hashtbl"; "hash" ]; [ "Hashtbl"; "seeded_hash" ]
  ; [ "Hashtbl"; "hash_param" ]; [ "Stdlib"; "compare" ]
  ; [ "Stdlib"; "Hashtbl"; "hash" ]
  ]

let rec flatten_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten_lid l @ [ s ]
  | Longident.Lapply (l, _) -> flatten_lid l

let check_lid loc lid =
  match flatten_lid lid with
  | [] -> ()
  | head :: _ as path ->
    let path_s = String.concat "." path in
    if List.mem head banned_modules then
      report loc "use of banned module in %s" path_s
    else if List.exists (fun b -> b = path) banned_idents then
      report loc "polymorphic hash/compare: %s (use Shmem.Hashx)" path_s

(* wall-clock reads banned in deadline code paths (--monotonic dirs) *)
let banned_wallclock =
  [ [ "Unix"; "gettimeofday" ]; [ "Unix"; "time" ]; [ "Sys"; "time" ]
  ; [ "Stdlib"; "Sys"; "time" ]
  ]

let check_lid_monotonic loc lid =
  let path = flatten_lid lid in
  if List.exists (fun b -> b = path) banned_wallclock then
    report loc "wall-clock read %s in deadline code (use Resil.Clock)"
      (String.concat "." path)

(* ---- whole-state polymorphic equality inside equal_state/hash_state ---- *)

let state_fns = [ "equal_state"; "hash_state"; "compare_state" ]

let rec fun_params acc e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_fun (_, _, pat, body) ->
    let acc =
      match pat.Parsetree.ppat_desc with
      | Parsetree.Ppat_var { txt; _ } -> txt :: acc
      | _ -> acc
    in
    fun_params acc body
  | _ -> acc

let is_param params e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt = Longident.Lident x; _ } ->
    List.mem x params
  | _ -> false

let check_state_fn fn_name params iter =
  let open Ast_iterator in
  let expr this e =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident op; _ }; _ }
        , [ (_, a); (_, b) ] )
      when List.mem op [ "="; "<>"; "compare" ]
           && is_param params a && is_param params b ->
      report e.Parsetree.pexp_loc
        "whole-state polymorphic %s in %s (write structural equality)" op
        fn_name
    | Parsetree.Pexp_ident { txt = Longident.Lident "compare"; loc }
      ->
      report loc "bare polymorphic compare in %s" fn_name
    | _ -> ());
    default_iterator.expr this e
  in
  { iter with expr }

let iterator =
  let open Ast_iterator in
  let expr this e =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt; loc } -> check_lid loc txt
    | Parsetree.Pexp_new { txt; loc } -> check_lid loc txt
    | _ -> ());
    default_iterator.expr this e
  in
  let value_binding this vb =
    (match vb.Parsetree.pvb_pat.Parsetree.ppat_desc with
    | Parsetree.Ppat_var { txt; _ } when List.mem txt state_fns ->
      let params = fun_params [] vb.Parsetree.pvb_expr in
      let special = check_state_fn txt params this in
      special.expr special vb.Parsetree.pvb_expr
    | _ -> ());
    default_iterator.value_binding this vb
  in
  { default_iterator with expr; value_binding }

let monotonic_iterator =
  let open Ast_iterator in
  let expr this e =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt; loc } -> check_lid_monotonic loc txt
    | _ -> ());
    default_iterator.expr this e
  in
  { default_iterator with expr }

let lint_file ~iter path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      match Parse.implementation lexbuf with
      | ast -> iter.Ast_iterator.structure iter ast
      | exception exn ->
        incr errors;
        Printf.eprintf "%s: parse error (%s)\n" path
          (Printexc.to_string exn))

let rec walk ~iter path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.iter (fun f -> walk ~iter (Filename.concat path f))
  else if Filename.check_suffix path ".ml" then lint_file ~iter path

let () =
  let args = match Array.to_list Sys.argv with _ :: a -> a | [] -> [] in
  let rec split acc = function
    | [] -> List.rev acc, []
    | "--monotonic" :: rest -> List.rev acc, rest
    | d :: rest -> split (d :: acc) rest
  in
  let dirs, mono_dirs = split [] args in
  if dirs = [] && mono_dirs = [] then (
    prerr_endline "usage: srclint DIR... [--monotonic DIR...]";
    exit 2);
  List.iter (walk ~iter:iterator) dirs;
  List.iter (walk ~iter:monotonic_iterator) mono_dirs;
  if !errors > 0 then (
    Printf.eprintf "srclint: %d finding(s)\n" !errors;
    exit 1)
