(* The swapspace command-line interface.

     swapspace run        simulate an algorithm under a chosen scheduler
     swapspace check      model-check an algorithm (exhaustive or random)
     swapspace analyze    static protocol lints + solo-bound verification
     swapspace lemma9     run the Theorem 10 / Lemma 9 adversary
     swapspace lb-binary  run the Lemma 15 construction (Theorem 17)
     swapspace lb-bounded run the Lemma 19 construction (Theorem 21)
     swapspace multicore  run Algorithm 1 on real domains *)

open Cmdliner

(* ---------------------------------------------------------- protocols *)

let protocol_of ~algo ~n ~k ~m ~cap : (module Shmem.Protocol.S) =
  match algo with
  | "swap-ksa" ->
    let (module P) = Core.Swap_ksa.make ~n ~k ~m in
    (module P)
  | "register-ksa" -> Baselines.Register_ksa.make ~n ~k ~m
  | "readable-swap" -> Baselines.Readable_swap_consensus.make ~n ~m
  | "binary-track" ->
    let (module B) = Baselines.Binary_track_consensus.make ~n ~cap in
    (module B)
  | "bitwise" -> Baselines.Bitwise_consensus.make ~n ~m ~cap
  | "grouped" -> Baselines.Grouped_ksa.make ~n ~k ~m
  | "cas" -> Baselines.Cas_consensus.make ~n ~m
  | "two-proc" -> Core.Two_proc_swap.make ~m
  | "pair-ksa" -> Core.Pair_ksa.make ~n ~m
  | other ->
    Fmt.failwith
      "unknown algorithm %s (try swap-ksa, register-ksa, readable-swap, \
       binary-track, bitwise, grouped, cas, two-proc, pair-ksa)"
      other

(* [check] and [analyze] are the verbs CI drives over algorithm names, so
   an unknown name is a usage error (exit 2, like cmdliner's own), not an
   uncaught exception *)
let protocol_or_usage_error ~algo ~n ~k ~m ~cap =
  match protocol_of ~algo ~n ~k ~m ~cap with
  | p -> p
  | exception Failure msg ->
    Fmt.epr "swapspace: %s@." msg;
    exit 2

(* --------------------------------------------------------------- args *)

let algo =
  Arg.(
    value
    & opt string "swap-ksa"
    & info [ "algo"; "a" ] ~docv:"NAME" ~doc:"Algorithm to use.")

let n = Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc:"Processes.")

let k =
  Arg.(value & opt int 1 & info [ "k" ] ~docv:"K" ~doc:"Agreement parameter.")

let m =
  Arg.(value & opt int 2 & info [ "m" ] ~docv:"M" ~doc:"Number of inputs.")

let cap =
  Arg.(
    value & opt int 16
    & info [ "cap" ] ~docv:"CAP" ~doc:"Track length for binary-track.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let inputs_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inputs"; "i" ] ~docv:"I0,I1,..."
        ~doc:"Comma-separated inputs (default: pid mod m).")

let parse_inputs ~n ~m = function
  | None -> Array.init n (fun i -> i mod m)
  | Some s ->
    let l = String.split_on_char ',' s |> List.map int_of_string in
    if List.length l <> n then Fmt.failwith "expected %d inputs" n;
    Array.of_list l

(* the reductions are on by default for the verbs that explore state
   spaces; [--no-sym]/[--no-por] are the escape hatches for debugging the
   reductions themselves or comparing against the full graph *)
let no_sym_arg =
  Arg.(
    value & flag
    & info [ "no-sym" ]
        ~doc:
          "Disable the process-permutation symmetry reduction (explore the \
           full configuration graph instead of one representative per \
           orbit).")

let no_por_arg =
  Arg.(
    value & flag
    & info [ "no-por" ]
        ~doc:
          "Disable the partial-order reduction (expand every enabled \
           process even where commuting deciding steps make one \
           representative schedule sufficient).")

(* ------------------------------------------------------------ metrics *)

let metrics_arg =
  Arg.(
    value
    & opt ~vopt:(Some "table") (some string) None
    & info [ "metrics" ] ~docv:"FMT"
        ~doc:
          "Enable the observability layer for this run and print a metric \
           snapshot afterwards, rendered as $(docv): 'table' (default) or \
           'json'.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the --metrics snapshot to $(docv) instead of stdout.")

(* enable obs before the workload, snapshot after it; the snapshot is
   emitted before any violation-driven non-zero exit so CI can always
   collect it *)
let with_metrics ~metrics ~out f =
  match metrics with
  | None -> f ()
  | Some fmt ->
    (match fmt with
    | "table" | "json" -> ()
    | s -> Fmt.failwith "unknown --metrics format %s (table, json)" s);
    Obs.enable ();
    let result = f () in
    let snap = Obs.snapshot () in
    let doc =
      match fmt with
      | "json" -> Obs.Json.to_string (Obs.snapshot_to_json snap) ^ "\n"
      | _ -> Fmt.str "@[<v>%a@]" Obs.pp_table snap
    in
    (match out with
    | None ->
      print_string doc;
      flush stdout
    | Some file ->
      let oc = open_out file in
      output_string oc doc;
      close_out oc);
    result

(* ---------------------------------------------------------------- run *)

let run_cmd =
  let go algo n k m cap seed inputs sched burst max_steps show_trace script
      diagram =
    let (module P) = protocol_of ~algo ~n ~k ~m ~cap in
    let module E = Shmem.Exec.Make (P) in
    let inputs = parse_inputs ~n:P.n ~m:P.num_inputs inputs in
    let rng = Random.State.make [| seed |] in
    let c0 = E.initial ~inputs in
    let c, trace, outcome =
      match script with
      | Some text -> (
        match Shmem.Schedule.parse text with
        | Error e -> Fmt.failwith "bad --script: %s" e
        | Ok pids ->
          let c, trace = E.run_script c0 pids in
          c, trace, E.Stopped)
      | None ->
        let sched =
          match sched with
          | "random" -> E.random rng
          | "round-robin" -> E.round_robin
          | "bursty" -> E.bursty rng ~burst
          | s -> Fmt.failwith "unknown scheduler %s" s
        in
        E.run ~sched ~max_steps c0
    in
    if show_trace then Fmt.pr "%a@." Shmem.Trace.pp trace;
    if diagram then
      Fmt.pr "@[<v>%a@]@." (fun ppf -> Shmem.Timeline.render ~n:P.n ppf) trace;
    Fmt.pr "%s: inputs=[%a] outcome=%s decided=[%a]@." P.name
      Fmt.(array ~sep:(any ",") int)
      inputs
      (match outcome with
      | E.All_decided -> "all-decided"
      | E.Stopped -> "stopped"
      | E.Step_limit -> "step-limit")
      Fmt.(list ~sep:(any ",") int)
      (E.decided_values c);
    Fmt.pr "%a@." Shmem.Stats.pp (Shmem.Stats.of_trace trace);
    if not (E.check_agreement c) then Fmt.failwith "k-AGREEMENT VIOLATED";
    if not (E.check_validity ~inputs c) then Fmt.failwith "VALIDITY VIOLATED"
  in
  let sched =
    Arg.(
      value & opt string "bursty"
      & info [ "sched" ] ~docv:"S" ~doc:"Scheduler: random, round-robin, bursty.")
  in
  let burst =
    Arg.(
      value & opt int 64
      & info [ "burst" ] ~docv:"B" ~doc:"Solo window for the bursty scheduler.")
  in
  let max_steps =
    Arg.(
      value & opt int 100_000
      & info [ "max-steps" ] ~docv:"STEPS" ~doc:"Step limit.")
  in
  let show_trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the full trace.")
  in
  let script =
    Arg.(
      value
      & opt (some string) None
      & info [ "script" ] ~docv:"SCHED"
          ~doc:"Run this exact schedule (e.g. '0x3, 1, (2 0)x2') instead of \
                a scheduler.")
  in
  let diagram =
    Arg.(
      value & flag
      & info [ "diagram" ] ~doc:"Draw a space-time diagram of the execution.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate an algorithm under a chosen scheduler.")
    Term.(
      const go $ algo $ n $ k $ m $ cap $ seed $ inputs_arg $ sched $ burst
      $ max_steps $ show_trace $ script $ diagram)

(* -------------------------------------------------------------- check *)

(* the checker's own properties, always in force unless deselected *)
let builtin_prop_names = [ "k-agreement"; "validity"; "solo-termination" ]

(* --props all | none | P1,P2,... compiled to the checker's [?select] *)
let parse_prop_select = function
  | "all" -> None
  | "none" -> Some []
  | s ->
    Some
      (String.split_on_char ',' s
      |> List.map String.trim
      |> List.filter (fun x -> x <> ""))

(* the declared-property pack the CLI attaches to a protocol built from raw
   --algo/--n/--k/--m flags (the registry carries packs for its own
   entries): Algorithm 1 gets the §4 invariant monitor, everything else the
   generic protocol-independent set *)
let pack_of_algo ~algo ~n ~k ~m (module P : Shmem.Protocol.S) : Prop.pack =
  if algo = "swap-ksa" then
    (module struct
      module P = (val Core.Swap_ksa.make ~n ~k ~m)

      let props =
        let module M = Core.Swap_ksa_monitor.Make (P) in
        M.online_props
    end)
  else Prop.generic_pack (module P)

let check_cmd =
  let go algo n k m cap inputs all_inputs all_algos props_sel lap_cap
      total_lap max_configs no_solo domains no_sym no_por metrics metrics_out
      =
    let sym = not no_sym and por = not no_por in
    let select = parse_prop_select props_sel in
    (* an unknown --props name is a usage error, like an unknown --algo *)
    let or_usage f =
      match f () with
      | r -> r
      | exception Invalid_argument msg ->
        Fmt.epr "swapspace: %s@." msg;
        exit 2
    in
    if all_algos then begin
      (* every registry entry, all input vectors, with the entry's own
         declared-property pack riding along *)
      let entries = Baselines.Registry.standard ~n () in
      let results =
        with_metrics ~metrics ~out:metrics_out (fun () ->
            List.map
              (fun (e : Baselines.Registry.entry) ->
                let (module Pk) = e.props in
                let module C = Checker.Make (Pk.P) in
                let module PM = Prop.Make (Pk.P) in
                let extra =
                  List.filter
                    (fun p ->
                      not (List.mem (PM.name p) builtin_prop_names))
                    Pk.props
                in
                let prune (c : C.E.config) = e.prune c.C.E.mem in
                ( e.name,
                  or_usage (fun () ->
                      C.explore_all_inputs ~prune ~max_configs
                        ~check_solo:(not no_solo) ~sym ~por
                        ~extra_props:(fun _ -> extra)
                        ?select ()) ))
              entries)
      in
      List.iter
        (fun (name, r) -> Fmt.pr "%s: %a@." name Checker.pp_report r)
        results;
      if not (List.for_all (fun (_, r) -> Checker.ok r) results) then exit 1
    end
    else begin
      let p = protocol_or_usage_error ~algo ~n ~k ~m ~cap in
      let (module Pk) = pack_of_algo ~algo ~n ~k ~m p in
      let module P = Pk.P in
      let module C = Checker.Make (P) in
      let module PM = Prop.Make (P) in
      let extra =
        List.filter
          (fun pr -> not (List.mem (PM.name pr) builtin_prop_names))
          Pk.props
      in
      let extra_props _ = extra in
      let prune (c : C.E.config) =
        let cell_over =
          Array.exists
            (fun v ->
              match v with
              | Shmem.Value.Pair (Shmem.Value.Ints u, _) ->
                Array.exists (fun x -> x > lap_cap) u
              | _ -> false)
            c.C.E.mem
        in
        cell_over
        ||
        match total_lap with
        | None -> false
        | Some budget ->
          let total = ref 0 in
          Array.iter
            (fun v ->
              match v with
              | Shmem.Value.Pair (Shmem.Value.Ints u, _) ->
                Array.iter (fun x -> total := !total + x) u
              | _ -> ())
            c.C.E.mem;
          !total > budget
      in
      let report =
        with_metrics ~metrics ~out:metrics_out (fun () ->
            or_usage (fun () ->
                if all_inputs then
                  C.explore_all_inputs ~prune ~max_configs
                    ~check_solo:(not no_solo) ~sym ~por ~extra_props ?select
                    ()
                else
                  let inputs = parse_inputs ~n:P.n ~m:P.num_inputs inputs in
                  if domains > 1 then
                    C.explore_parallel ~domains ~prune ~max_configs
                      ~check_solo:(not no_solo) ~sym ~por ~extra_props
                      ?select ~inputs ()
                  else
                    C.explore ~prune ~max_configs ~check_solo:(not no_solo)
                      ~sym ~por ~extra_props ?select ~inputs ()))
      in
      Fmt.pr "%s: %a@." P.name Checker.pp_report report;
      if not (Checker.ok report) then exit 1
    end
  in
  let all_inputs =
    Arg.(value & flag & info [ "all-inputs" ] ~doc:"Check every input vector.")
  in
  let all_algos =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Check every registered algorithm (at $(b,--n)) over every \
             input vector, each with its registry-attached declared \
             properties; overrides $(b,--algo) and the lap-prune flags \
             (each entry uses its own pruning).")
  in
  let props_sel =
    Arg.(
      value & opt string "all"
      & info [ "props" ] ~docv:"P1,P2|all|none"
          ~doc:
            "Which properties to check: 'all' (default — the built-ins \
             k-agreement, validity, solo-termination plus every declared \
             property attached to the algorithm), 'none' (pure \
             enumeration), or a comma-separated list of property names \
             (see $(b,swapspace props)).  Unknown names are a usage error \
             (exit 2).")
  in
  let lap_cap =
    Arg.(
      value & opt int 3
      & info [ "lap-cap" ] ~docv:"L" ~doc:"Prune configurations beyond this lap.")
  in
  let total_lap =
    Arg.(
      value
      & opt (some int) None
      & info [ "total-lap" ] ~docv:"L"
          ~doc:
            "Additionally prune configurations whose lap counters sum to \
             more than $(docv) across all processes (the tighter budget \
             the T9/T12 benches use to close large-n graphs).")
  in
  let max_configs =
    Arg.(
      value & opt int 500_000
      & info [ "max-configs" ] ~docv:"N" ~doc:"Exploration budget.")
  in
  let no_solo =
    Arg.(value & flag & info [ "no-solo" ] ~doc:"Skip solo-termination checks.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains"; "j" ] ~docv:"D"
          ~doc:"Explore on this many domains (single-input checks only).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Model-check declared properties (built-ins: agreement, validity, \
          solo termination).")
    Term.(
      const go $ algo $ n $ k $ m $ cap $ inputs_arg $ all_inputs $ all_algos
      $ props_sel $ lap_cap $ total_lap $ max_configs $ no_solo $ domains
      $ no_sym_arg $ no_por_arg $ metrics_arg $ metrics_out_arg)

(* -------------------------------------------------------------- props *)

let props_cmd =
  let go algo n =
    let entries =
      match algo with
      | None -> Baselines.Registry.standard ~n ()
      | Some name -> (
        match Baselines.Registry.find name ~n with
        | Ok e -> [ e ]
        | Error msg ->
          Fmt.epr "swapspace: %s@." msg;
          exit 2)
    in
    Fmt.pr
      "built-in for every algorithm: k-agreement [invariant], validity \
       [invariant], solo-termination [invariant]@.";
    List.iter
      (fun (e : Baselines.Registry.entry) ->
        Fmt.pr "@.%s:@." e.name;
        match Prop.pack_specs e.props with
        | [] -> Fmt.pr "  (no declared properties)@."
        | specs ->
          List.iter (fun s -> Fmt.pr "  %a@." Prop.pp_spec s) specs)
      entries
  in
  let algo =
    Arg.(
      value
      & opt (some string) None
      & info [ "algo"; "a" ] ~docv:"NAME"
          ~doc:
            "Registry entry to list (prefix match); omitted (or with \
             $(b,--all)), every registered algorithm is listed.")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"List every registered algorithm (default).")
  in
  let combine algo all =
    if all && algo <> None then (
      Fmt.epr "swapspace: --all and --algo are mutually exclusive@.";
      exit 2);
    algo
  in
  let algo = Term.(const combine $ algo $ all) in
  Cmd.v
    (Cmd.info "props"
       ~doc:
         "List the declared properties attached to each registered \
          algorithm (name, kind, statement) — the names $(b,check --props) \
          selects on.")
    Term.(const go $ algo $ n)

(* ------------------------------------------------------------- lemma9 *)

let lemma9_cmd =
  let go n k =
    let (module P) = Core.Swap_ksa.make ~n ~k ~m:(k + 1) in
    let module T = Lowerbound.Theorem10.Make (P) in
    let cert = T.run () in
    List.iter
      (fun level ->
        match level with
        | T.Base l9 ->
          Fmt.pr "base case (k=1): adversary forced objects {%a}@."
            Fmt.(list ~sep:(any ",") int)
            l9.T.L9.objects_forced
        | T.Found_k_values { r; cert; _ } ->
          Fmt.pr "found a %d-values execution among R=%a; forced {%a}@."
            P.k
            Fmt.(list ~sep:(any ",") int)
            r
            Fmt.(list ~sep:(any ",") int)
            cert.T.L9.objects_forced
        | T.Recursed { r } ->
          Fmt.pr "no k-values execution found; recursing on R=%a@."
            Fmt.(list ~sep:(any ",") int)
            r)
      cert.T.levels;
    Fmt.pr "objects forced: %d  (theorem bound ⌈n/k⌉-1 = %d; Algorithm 1 \
            uses %d)@."
      (List.length cert.T.objects_forced)
      cert.T.bound (n - k)
  in
  Cmd.v
    (Cmd.info "lemma9"
       ~doc:"Run the Theorem 10 induction against Algorithm 1.")
    Term.(const go $ n $ k)

(* -------------------------------------------------------- lb engines *)

let lb_binary_cmd =
  let go n cap full =
    let (module B) = Baselines.Binary_track_consensus.make ~n ~cap in
    let module L = Lowerbound.Binary_lb.Make (B) in
    let r = L.run ~include_others:full () in
    Fmt.pr "%a@.@.%a@." L.pp_result r L.pp_figure r
  in
  let full =
    Arg.(
      value & flag
      & info [ "full-class" ]
          ~doc:"Search the full (Q ∪ P_i)-only witness class (slow).")
  in
  Cmd.v
    (Cmd.info "lb-binary"
       ~doc:"Run the Lemma 15 construction (Theorem 17) on binary-track.")
    Term.(const go $ n $ cap $ full)

let lb_bounded_cmd =
  let go n cap full =
    let (module B) = Baselines.Binary_track_consensus.make ~n ~cap in
    let module L = Lowerbound.Bounded_lb.Make (B) in
    let r = L.run ~include_others:full () in
    Fmt.pr "%a@.@.%a@." L.pp_result r L.pp_figure r
  in
  let full =
    Arg.(
      value & flag
      & info [ "full-class" ]
          ~doc:"Search the full (Q ∪ P_i)-only witness class (slow).")
  in
  Cmd.v
    (Cmd.info "lb-bounded"
       ~doc:"Run the Lemma 19 construction (Theorem 21) on binary-track.")
    Term.(const go $ n $ cap $ full)

(* -------------------------------------------------------------- bounds *)

let bounds_cmd =
  let go n k b =
    Fmt.pr "space bounds at n=%d, k=%d, domain size b=%d:@." n k b;
    List.iter
      (fun (what, value) -> Fmt.pr "  %-55s %s@." what value)
      (Lowerbound.Bounds.summary ~n ~k ~b)
  in
  let b =
    Arg.(value & opt int 2 & info [ "b" ] ~docv:"B" ~doc:"Domain size.")
  in
  Cmd.v
    (Cmd.info "bounds" ~doc:"Print every bound from the paper in closed form.")
    Term.(const go $ n $ k $ b)

(* ---------------------------------------------------------- multicore *)

let multicore_cmd =
  let go algo n k m cap seed inputs hand metrics metrics_out =
    with_metrics ~metrics ~out:metrics_out @@ fun () ->
    if hand then begin
      (* the hand-optimized Algorithm 1 kept as a comparison point *)
      if algo <> "swap-ksa" then
        Fmt.failwith "--hand only applies to --algo swap-ksa";
      let inputs = parse_inputs ~n ~m inputs in
      let o = Multicore.Swap_ksa_mc.run ~n ~k ~m ~inputs ~seed () in
      (match Multicore.Swap_ksa_mc.check ~inputs ~k o with
      | Ok () -> ()
      | Error e -> Fmt.failwith "%s" e);
      Fmt.pr
        "swap-ksa (hand-optimized) n=%d k=%d m=%d: decided=[%a] in %.4fs; \
         passes=[%a] swaps=[%a]@."
        n k m
        Fmt.(array ~sep:(any ",") int)
        o.Multicore.Swap_ksa_mc.decisions o.Multicore.Swap_ksa_mc.elapsed
        Fmt.(array ~sep:(any ",") int)
        o.Multicore.Swap_ksa_mc.passes
        Fmt.(array ~sep:(any ",") int)
        o.Multicore.Swap_ksa_mc.swaps
    end
    else begin
      let (module P) = protocol_of ~algo ~n ~k ~m ~cap in
      let module R = Runtime.Make (P) in
      let inputs = parse_inputs ~n:P.n ~m:P.num_inputs inputs in
      let o = R.run ~inputs ~seed () in
      (match R.check ~inputs o with
      | Ok () -> ()
      | Error e -> Fmt.failwith "%s (k-agreement/validity check)" e);
      Fmt.pr
        "%s: decided=[%a] in %.4fs; ops=[%a] backoffs=[%a]@." P.name
        Fmt.(array ~sep:(any ",") int)
        o.R.decisions o.R.elapsed
        Fmt.(array ~sep:(any ",") int)
        o.R.ops
        Fmt.(array ~sep:(any ",") int)
        o.R.backoffs
    end
  in
  let hand =
    Arg.(
      value & flag
      & info [ "hand" ]
          ~doc:"Run the hand-optimized Algorithm 1 (swap-ksa only) instead \
                of the generic runtime.")
  in
  Cmd.v
    (Cmd.info "multicore"
       ~doc:"Run any algorithm on real domains via the generic runtime \
             (atomic objects, one domain per process).")
    Term.(
      const go $ algo $ n $ k $ m $ cap $ seed $ inputs_arg $ hand
      $ metrics_arg $ metrics_out_arg)

(* -------------------------------------------------------------- chaos *)

(* one backend-independent rendering of a campaign summary, so both the
   simulator and the multicore branches share the printer and exit logic *)
type chaos_out = {
  header : string;
  counters : string;
  expected : (int * string) list;  (** (run, rendered finding) *)
  unexpected : (int * string) list;
  failed : bool;
}

module Chaos_sim (P : Shmem.Protocol.S) = struct
  module F = Fault.Sim (P)

  let render (f : F.finding) =
    Fmt.str "plan [%a]@;<1 4>%a%a" Fault.pp_plan f.F.plan F.pp_violation
      f.F.violation
      Fmt.(
        option (fun ppf s ->
            Fmt.pf ppf "@;<1 4>minimal schedule: %s"
              (Shmem.Schedule.to_string s)))
      f.F.schedule

  let go ?on_step ?props ?inputs ~burst ~max_steps ~seed ~runs ~kinds () =
    let s =
      F.campaign ?on_step ?props ?inputs ~burst ~max_steps ~seed ~runs ~kinds
        ()
    in
    { header =
        Fmt.str "chaos (sim) %s: %d runs, seed %d, kinds [%a]" P.name runs
          seed
          Fmt.(list ~sep:(any ",") (of_to_string Fault.kind_to_string))
          kinds;
      counters =
        Fmt.str "steps=%d fired=%d detections=%d violations=%d missed=%d%s"
          s.F.steps s.F.fired
          (List.length s.F.detections)
          (List.length s.F.violations)
          s.F.missed
          (match s.F.prop_detections with
          | [] -> ""
          | l ->
            Fmt.str " prop_detections=[%a]"
              Fmt.(
                list ~sep:(any ",") (pair ~sep:(any ":") string int))
              l);
      expected = List.map (fun f -> f.F.run, render f) s.F.detections;
      unexpected = List.map (fun f -> f.F.run, render f) s.F.violations;
      failed = s.F.violations <> [] || s.F.missed > 0
    }
end

module Chaos_mc (P : Shmem.Protocol.S) = struct
  module MC = Fault.Mc (P)

  let go ?pack ?inputs ~deadline ~seed ~runs ~kinds ~recover ~max_respawns ()
      =
    let s =
      MC.campaign ?pack ?inputs ~deadline ~seed ~runs ~kinds ~recover
        ~max_respawns ()
    in
    { header =
        Fmt.str "chaos (multicore%s) %s: %d runs, seed %d, kinds [%a]"
          (if recover then ", supervised" else "")
          P.name runs seed
          Fmt.(list ~sep:(any ",") (of_to_string Fault.kind_to_string))
          kinds;
      counters =
        Fmt.str
          "crashes=%d stalls=%d%s ops=%d elapsed=%.2fs hb_checked=%d \
           hb_skipped=%d violations=%d"
          s.MC.crashes_injected s.MC.stalls_injected
          (if recover then
             Fmt.str " respawns=%d rounds=%d" s.MC.respawns s.MC.rounds
           else "")
          s.MC.total_ops s.MC.elapsed s.MC.hb_checked s.MC.hb_skipped
          (List.length s.MC.violations);
      expected = [];
      unexpected =
        List.map
          (fun (f : MC.finding) ->
            ( f.MC.run,
              Fmt.str "plan [%a]@;<1 4>%s" Fault.pp_plan f.MC.plan
                f.MC.detail ))
          s.MC.violations;
      failed = s.MC.violations <> []
    }
end

let chaos_cmd =
  let go algo n k m cap seed inputs backend runs kinds burst max_steps deadline
      recover max_respawns metrics metrics_out =
    let kinds =
      match Fault.kinds_of_string kinds with
      | Ok [] -> Fmt.failwith "--kinds is empty"
      | Ok ks -> ks
      | Error e -> Fmt.failwith "bad --kinds: %s" e
    in
    let out =
      with_metrics ~metrics ~out:metrics_out @@ fun () ->
      match backend with
      | "sim" ->
        (* --recover: draw kill-and-heal plans — appended so the crash of
           an existing kind list is drawn first and the respawn heals it *)
        let kinds =
          if recover && not (List.mem Fault.Respawn_k kinds) then
            kinds @ [ Fault.Respawn_k ]
          else kinds
        in
        if algo = "swap-ksa" then (
          (* Algorithm 1 additionally gets the §4 invariants monitored on
             every step, as declared properties — the negative tests must
             trip one of them or the atomicity check, and the summary's
             prop_detections tallies which property caught what *)
          let (module P) = Core.Swap_ksa.make ~n ~k ~m in
          let module C = Chaos_sim (P) in
          let module M = Core.Swap_ksa_monitor.Make (P) in
          let inputs =
            Option.map
              (fun s -> parse_inputs ~n:P.n ~m:P.num_inputs (Some s))
              inputs
          in
          C.go ~props:M.online_props ?inputs ~burst ~max_steps ~seed ~runs
            ~kinds ())
        else
          let (module P) = protocol_or_usage_error ~algo ~n ~k ~m ~cap in
          let module C = Chaos_sim (P) in
          let inputs =
            Option.map
              (fun s -> parse_inputs ~n:P.n ~m:P.num_inputs (Some s))
              inputs
          in
          C.go ?inputs ~burst ~max_steps ~seed ~runs ~kinds ()
      | "multicore" ->
        let dropped = List.filter (fun k -> not (Fault.kind_is_benign k)) kinds in
        let kinds = List.filter Fault.kind_is_benign kinds in
        let kinds =
          if recover && not (List.mem Fault.Respawn_k kinds) then
            kinds @ [ Fault.Respawn_k ]
          else if not recover then
            List.filter (fun k -> k <> Fault.Respawn_k) kinds
          else kinds
        in
        if kinds = [] then
          Fmt.failwith
            "--backend multicore supports only benign fault kinds (crash, \
             stall): real atomics cannot be torn";
        if dropped <> [] then
          Fmt.epr
            "note: dropping simulator-only fault kinds [%a] on the \
             multicore backend@."
            Fmt.(list ~sep:(any ",") (of_to_string Fault.kind_to_string))
            dropped;
        if algo = "swap-ksa" then (
          (* under supervision the §4 config invariants double as the
             cross-recovery-boundary oracle, evaluated on the merged final
             snapshot *)
          let (module P) = Core.Swap_ksa.make ~n ~k ~m in
          let module C = Chaos_mc (P) in
          let module M = Core.Swap_ksa_monitor.Make (P) in
          let inputs =
            Option.map
              (fun s -> parse_inputs ~n:P.n ~m:P.num_inputs (Some s))
              inputs
          in
          C.go ~pack:M.online_props ?inputs ~deadline ~seed ~runs ~kinds
            ~recover ~max_respawns ())
        else
          let (module P) = protocol_or_usage_error ~algo ~n ~k ~m ~cap in
          let module C = Chaos_mc (P) in
          let inputs =
            Option.map
              (fun s -> parse_inputs ~n:P.n ~m:P.num_inputs (Some s))
              inputs
          in
          C.go ?inputs ~deadline ~seed ~runs ~kinds ~recover ~max_respawns ()
      | s -> Fmt.failwith "unknown backend %s (sim, multicore)" s
    in
    Fmt.pr "%s@.%s@." out.header out.counters;
    List.iter
      (fun (run, s) -> Fmt.pr "@[<v>detection (run %d): %s@]@." run s)
      out.expected;
    List.iter
      (fun (run, s) -> Fmt.pr "@[<v>VIOLATION (run %d): %s@]@." run s)
      out.unexpected;
    if out.failed then exit 1
  in
  let backend =
    Arg.(
      value & opt string "sim"
      & info [ "backend" ] ~docv:"B" ~doc:"Backend: sim or multicore.")
  in
  let runs =
    Arg.(
      value & opt int 100
      & info [ "runs" ] ~docv:"N" ~doc:"Number of randomized runs.")
  in
  let kinds =
    Arg.(
      value & opt string "all"
      & info [ "kinds" ] ~docv:"K1,K2,..."
          ~doc:"Fault kinds to draw plans from: crash, stall, respawn, \
                torn, lost, stale; or the groups 'all', 'benign' and \
                'recovery'.")
  in
  let recover =
    Arg.(
      value & flag
      & info [ "recover" ]
          ~doc:"Kill-and-heal campaigns: crashed processes come back \
                through the protocol's recovery hook — respawn plan \
                entries on the simulator, supervised respawns on fresh \
                domains on the multicore backend — and every run is held \
                to the degraded (k + crashed-incarnations)-agreement \
                contract, the cross-boundary happens-before check and the \
                declared property pack.")
  in
  let max_respawns =
    Arg.(
      value & opt int 2
      & info [ "max-respawns" ] ~docv:"R"
          ~doc:"Per-process respawn budget before the supervisor \
                escalates (multicore --recover).")
  in
  let burst =
    Arg.(
      value & opt int 32
      & info [ "burst" ] ~docv:"B" ~doc:"Solo window for the bursty scheduler.")
  in
  let max_steps =
    Arg.(
      value & opt int 100_000
      & info [ "max-steps" ] ~docv:"STEPS" ~doc:"Per-run step limit (sim).")
  in
  let deadline =
    Arg.(
      value & opt float 10.
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:"Per-run wall-clock watchdog (multicore).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Run seeded randomized fault-injection campaigns: crash/stall \
             plans on either backend, torn/lost/stale object faults on the \
             simulator (negative tests — every manifestation must be \
             detected and is shrunk to a locally-minimal schedule), and \
             kill-and-heal recovery campaigns with $(b,--recover). Exit 0 \
             when clean, 1 on violations, 2 on usage errors.")
    Term.(
      const go $ algo $ n $ k $ m $ cap $ seed $ inputs_arg $ backend $ runs
      $ kinds $ burst $ max_steps $ deadline $ recover $ max_respawns
      $ metrics_arg $ metrics_out_arg)

(* -------------------------------------------------------------- resil *)

let resil_cmd =
  let go algo n k m cap seed inputs runs max_respawns deadline metrics
      metrics_out =
    let (module P) = protocol_or_usage_error ~algo ~n ~k ~m ~cap in
    let module Sup = Supervisor.Make (P) in
    let inputs = parse_inputs ~n:P.n ~m:P.num_inputs inputs in
    let failures = ref [] in
    let respawns = ref 0 in
    let rounds = ref 0 in
    let gave_up = ref 0 in
    let lat = ref [] in
    with_metrics ~metrics ~out:metrics_out (fun () ->
        for i = 0 to runs - 1 do
          let rng = Random.State.make [| seed; i; 0x0E51 |] in
          let victim = Random.State.int rng P.n in
          let crash_op = Random.State.int rng 32 in
          (* round 0 always kills one victim early; respawned incarnations
             are re-killed with probability 1/2 until the breaker trips *)
          let crash_plan ~round ~pid =
            if round = 0 then if pid = victim then Some crash_op else None
            else if Random.State.bool rng then
              Some (Random.State.int rng 32)
            else None
          in
          let policy =
            { (Sup.default_policy ()) with
              max_respawns;
              round_deadline = Some deadline
            }
          in
          let report =
            Sup.supervise ~inputs ~seed:(seed + i) ~policy ~crash_plan ()
          in
          respawns := !respawns + Array.fold_left ( + ) 0 report.Sup.respawns;
          rounds := !rounds + report.Sup.rounds;
          gave_up := !gave_up + List.length report.Sup.gave_up;
          lat := report.Sup.recover_ns @ !lat;
          match Sup.check ~inputs report with
          | Ok () -> ()
          | Error e -> failures := (i, e) :: !failures
        done);
    let lat = List.sort Int64.compare !lat in
    let pct p =
      match lat with
      | [] -> 0.
      | l ->
        let len = List.length l in
        let idx = min (len - 1) (((p * (len - 1)) + 99) / 100) in
        Int64.to_float (List.nth l idx) /. 1e6
    in
    Fmt.pr "resil %s: %d supervised runs, seed %d, max-respawns %d@." P.name
      runs seed max_respawns;
    Fmt.pr
      "respawns=%d rounds=%d gave_up=%d recoveries=%d recover_ms p50=%.3f \
       p99=%.3f@."
      !respawns !rounds !gave_up (List.length lat) (pct 50) (pct 99);
    List.iter
      (fun (i, e) -> Fmt.pr "VIOLATION (run %d): %s@." i e)
      (List.rev !failures);
    if !failures <> [] then exit 1
  in
  let runs =
    Arg.(
      value & opt int 20
      & info [ "runs" ] ~docv:"N" ~doc:"Number of supervised runs.")
  in
  let max_respawns =
    Arg.(
      value & opt int 2
      & info [ "max-respawns" ] ~docv:"R"
          ~doc:"Per-process respawn budget before the supervisor escalates.")
  in
  let deadline =
    Arg.(
      value & opt float 10.
      & info [ "deadline" ] ~docv:"SECS" ~doc:"Per-round watchdog.")
  in
  Cmd.v
    (Cmd.info "resil"
       ~doc:"Run an algorithm under supervision on real domains: a seeded \
             victim is crashed each run, recovered through the protocol's \
             recovery hook on a fresh domain against the same memory, \
             re-killed with probability 1/2 up to the respawn budget, and \
             the outcome is held to the degraded \
             (k + crashed-incarnations)-agreement contract. Prints respawn \
             counts and time-to-recover quantiles. Exit 0 when every run \
             passes, 1 on a violation, 2 on usage errors.")
    Term.(
      const go $ algo $ n $ k $ m $ cap $ seed $ inputs_arg $ runs
      $ max_respawns $ deadline $ metrics_arg $ metrics_out_arg)

(* -------------------------------------------------------------- serve *)

let serve_cmd =
  let go algo n k m cap seed clients rounds domains arenas profile recover
      kill_every max_think paranoid metrics metrics_out =
    let protocol = protocol_or_usage_error ~algo ~n ~k ~m ~cap in
    let usage msg =
      Fmt.epr "swapspace: %s@." msg;
      exit 2
    in
    if clients < 1 then usage "--clients must be >= 1";
    if rounds < 1 then usage "--rounds must be >= 1";
    if domains < 1 then usage "--domains must be >= 1";
    if kill_every < 1 then usage "--kill-every must be >= 1";
    if max_think < 0 then usage "--max-think must be >= 0";
    (match arenas with
    | Some a when a < 1 -> usage "--arenas must be >= 1"
    | _ -> ());
    let profile =
      match Arena.Loadgen.profile_of_string profile with
      | Ok p -> p
      | Error msg -> usage msg
    in
    let result =
      with_metrics ~metrics ~out:metrics_out (fun () ->
          Arena.Loadgen.run ~protocol ~clients ~rounds ~workers:domains
            ~seed ?arenas ~profile ~max_think
            ?kill_every:(if recover then Some kill_every else None)
            ~paranoid ())
    in
    Fmt.pr "%a@." Arena.Loadgen.pp result;
    if not result.Arena.Loadgen.ok then exit 1
  in
  let clients =
    Arg.(
      value & opt int 1_000
      & info [ "clients" ] ~docv:"M"
          ~doc:"Closed-loop client population size.")
  in
  let rounds =
    Arg.(
      value & opt int 10_000
      & info [ "rounds" ] ~docv:"R"
          ~doc:"Agreement rounds to decide before the service drains.")
  in
  let domains =
    Arg.(
      value & opt int 2
      & info [ "domains" ] ~docv:"D"
          ~doc:"Worker domains in the fixed pool.")
  in
  let arenas =
    Arg.(
      value
      & opt (some int) None
      & info [ "arenas" ] ~docv:"A"
          ~doc:"Arena pool size (default: twice the domain count).")
  in
  let profile =
    Arg.(
      value & opt string "steady"
      & info [ "profile" ] ~docv:"P"
          ~doc:"Think-time profile: 'zero-think', 'steady' or 'bursty'.")
  in
  let recover =
    Arg.(
      value & flag
      & info [ "recover" ]
          ~doc:
            "Enable the kill-and-heal chaos overlay: roughly one round in \
             $(b,--kill-every) loses its driving worker incarnation \
             mid-flight and is adopted by a respawned or stealing worker, \
             escalating that round to the degraded \
             (k + crashed-incarnations)-agreement bound.")
  in
  let kill_every =
    Arg.(
      value & opt int 8
      & info [ "kill-every" ] ~docv:"N"
          ~doc:"With $(b,--recover): kill roughly one round in $(docv).")
  in
  let max_think =
    Arg.(
      value & opt int 4
      & info [ "max-think" ] ~docv:"T"
          ~doc:"Think-time bound, in rounds of service time.")
  in
  let paranoid =
    Arg.(
      value & flag
      & info [ "paranoid" ]
          ~doc:
            "Re-read every arena cell after each recycle and fail on any \
             residue from the previous round.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the long-running consensus service under closed-loop load: a \
          pool of pre-allocated swap arenas recycled under epoch stamps, \
          batched client admission through a lock-free intake queue, and a \
          fixed supervised pool of worker domains pulling whole rounds \
          (work-stealing). Reports throughput and admission/decision \
          latency quantiles; with --metrics the arena.* counters and \
          histograms are snapshotted. Exit 0 when the service drained \
          cleanly (agreement within the declared bound, validity, no lost \
          or duplicated client), 1 on any violation or shortfall, 2 on \
          usage errors.")
    Term.(
      const go $ algo $ n $ k $ m $ cap $ seed $ clients $ rounds $ domains
      $ arenas $ profile $ recover $ kill_every $ max_think $ paranoid
      $ metrics_arg $ metrics_out_arg)

(* ------------------------------------------------------------ analyze *)

let analyze_cmd =
  let go algo n max_configs json space no_certificate no_sym no_por metrics
      metrics_out =
    let entries =
      match algo with
      | None -> Baselines.Registry.standard ~n ()
      | Some name -> (
        match Baselines.Registry.find name ~n with
        | Ok e -> [ e ]
        | Error msg ->
          Fmt.epr "swapspace: %s@." msg;
          exit 2)
    in
    if space then begin
      let reports =
        with_metrics ~metrics ~out:metrics_out (fun () ->
            List.map
              (fun (e : Baselines.Registry.entry) ->
                Analyze.Space.run_protocol ~max_configs ~prune:e.prune
                  ~sym:(not no_sym) ~por:(not no_por)
                  ~certificate:(not no_certificate) e.protocol)
              entries)
      in
      if json then
        print_endline
          (Obs.Json.to_string
             (Obs.Json.Arr (List.map Analyze.Space.report_to_json reports)))
      else
        List.iter (fun r -> Fmt.pr "%a@." Analyze.Space.pp_report r) reports;
      if not (List.for_all Analyze.Space.ok reports) then exit 1
    end
    else begin
      let reports =
        with_metrics ~metrics ~out:metrics_out (fun () ->
            List.map
              (fun (e : Baselines.Registry.entry) ->
                Analyze.run_protocol ~max_configs ?solo_bound:e.solo_bound
                  ~prune:e.prune ~sym:(not no_sym) ~por:(not no_por)
                  ~props:e.props e.protocol)
              entries)
      in
      if json then
        print_endline
          (Obs.Json.to_string
             (Obs.Json.Arr (List.map Analyze.report_to_json reports)))
      else
        List.iter (fun r -> Fmt.pr "%a@." Analyze.pp_report r) reports;
      if not (List.for_all Analyze.ok reports) then exit 1
    end
  in
  let algo =
    Arg.(
      value
      & opt (some string) None
      & info [ "algo"; "a" ] ~docv:"NAME"
          ~doc:
            "Registry entry to analyze (prefix match); omitted (or with \
             $(b,--all)) every registered protocol is analyzed.")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Analyze every registered protocol (default).")
  in
  let combine algo all =
    if all && algo <> None then (
      Fmt.epr "swapspace: --all and --algo are mutually exclusive@.";
      exit 2);
    algo
  in
  let algo = Term.(const combine $ algo $ all) in
  let max_configs =
    Arg.(
      value & opt int 20_000
      & info [ "max-configs" ] ~docv:"C"
          ~doc:"Exploration budget per protocol.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the reports as a JSON array on stdout.")
  in
  let space =
    Arg.(
      value & flag
      & info [ "space" ]
          ~doc:
            "Run the object-space certifier instead of the structural \
             lints: measure the distinct base objects accessed across all \
             explored executions (per object kind, with a single-execution \
             witness), certify measured <= the protocol's declared \
             space_bound (under-claims are fatal; over-claims only on an \
             exhaustively closed graph), and bracket the measurement \
             against the Theorem 10 adversary's forced lower bound on \
             swap-only protocols.")
  in
  let no_certificate =
    Arg.(
      value & flag
      & info [ "no-certificate" ]
          ~doc:
            "With $(b,--space): skip the Theorem 10 adversary run; the \
             lb-bracket check reports as skipped.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Statically analyze protocol definitions: op-conformance against \
          declared object kinds, derived historyless/swap-only flags \
          cross-checked against the hand-written predicates, determinism \
          and hash-coherence lints, decision range/coverage, symmetry-hook \
          coherence on reachable states, and measured solo \
          executions gated by the proved solo-step bound (8(n-k) for \
          Algorithm 1). With $(b,--space), certify each protocol's \
          declared object-space bound against the measured access set and \
          the Theorem 10 lower-bound certificate instead. Exit 0 if every \
          check passes, 1 on analysis failure, 2 on usage errors.")
    Term.(
      const go $ algo $ n $ max_configs $ json $ space $ no_certificate
      $ no_sym_arg $ no_por_arg $ metrics_arg $ metrics_out_arg)

(* --------------------------------------------------------------- lint *)

let lint_cmd =
  let go root pass_names list json metrics metrics_out =
    if list then begin
      List.iter
        (fun p -> Fmt.pr "%-20s %s@." (Lint.pass_name p) (Lint.pass_doc p))
        Lint.registry;
      exit 0
    end;
    let selected =
      match pass_names with
      | [] -> None
      | names ->
        Some
          (List.map
             (fun name ->
               match Lint.find_pass name with
               | Ok p -> p
               | Error msg ->
                 Fmt.epr "swapspace: %s@." msg;
                 exit 2)
             names)
    in
    let filter ps =
      match selected with
      | None -> ps
      | Some sel -> List.filter (fun p -> List.memq p sel) ps
    in
    let dir d = Filename.concat root d in
    (* the repo lint plan: protocol purity over the proof-bearing
       libraries, the wall-clock ban over every deadline/metrics layer,
       and the concurrency discipline over the layers that spawn domains *)
    let core = [ Lint.purity; Lint.poly_hash; Lint.state_equality ] in
    let conc = [ Lint.domain_escape; Lint.atomics_discipline ] in
    let plan =
      List.map (fun d -> dir d, filter core) [ "lib/core"; "lib/baselines" ]
      @ List.map
          (fun d -> dir d, filter [ Lint.monotonic ])
          [ "lib/resil"; "lib/runtime"; "lib/arena"; "lib/prop"; "lib/obs"
          ; "lib/fault"
          ]
      @ List.map
          (fun d -> dir d, filter conc)
          [ "lib/runtime"; "lib/arena"; "lib/resil" ]
    in
    let plan =
      List.filter (fun (d, ps) -> ps <> [] && Sys.file_exists d) plan
    in
    if plan = [] then begin
      Fmt.epr
        "swapspace: no lint targets under %s (expected the repository's \
         lib/ layout; use --root)@."
        root;
      exit 2
    end;
    let findings =
      with_metrics ~metrics ~out:metrics_out (fun () -> Lint.run_plan plan)
    in
    if json then
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Arr
              (List.map
                 (fun (f : Lint.finding) ->
                   Obs.Json.Obj
                     [ "file", Obs.Json.Str f.Lint.file
                     ; "line", Obs.Json.Num (float_of_int f.Lint.line)
                     ; "col", Obs.Json.Num (float_of_int f.Lint.col)
                     ; "pass", Obs.Json.Str f.Lint.pass
                     ; "message", Obs.Json.Str f.Lint.message
                     ])
                 findings)))
    else
      List.iter (fun f -> Fmt.pr "%a@." Lint.pp_finding f) findings;
    match List.length findings with
    | 0 -> ()
    | count ->
      Fmt.epr "swapspace lint: %d finding(s)@." count;
      exit 1
  in
  let root =
    Arg.(
      value & opt string "."
      & info [ "root" ] ~docv:"DIR"
          ~doc:"Repository root the default lint targets resolve against.")
  in
  let pass_names =
    Arg.(
      value
      & opt_all string []
      & info [ "pass"; "p" ] ~docv:"NAME"
          ~doc:
            "Run only this pass (repeatable); default: every pass on its \
             default targets. See $(b,--list) for names.")
  in
  let list =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List the registered passes and exit.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the findings as a JSON array on stdout.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static source lints (lib/lint pass registry) over the \
          repository: purity and hash/equality discipline on the \
          proof-bearing protocol libraries, the wall-clock ban on \
          deadline code, and the domain-escape / atomics-discipline \
          concurrency passes on the multicore layers. Each file is parsed \
          once; findings are deduplicated and stably sorted. Exit 0 \
          clean, 1 with findings, 2 on usage errors.")
    Term.(
      const go $ root $ pass_names $ list $ json $ metrics_arg
      $ metrics_out_arg)

let () =
  let doc =
    "Obstruction-free consensus and k-set agreement from swap objects \
     (reproduction of Ovens, PODC 2022)."
  in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "swapspace" ~version:"1.0.0" ~doc)
          [ run_cmd; check_cmd; props_cmd; analyze_cmd; lint_cmd; lemma9_cmd
          ; lb_binary_cmd; lb_bounded_cmd; bounds_cmd; multicore_cmd
          ; chaos_cmd; resil_cmd; serve_cmd
          ]))
