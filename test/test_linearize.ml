(* Linearizability tests: Atomic.exchange really is the paper's Swap, and a
   non-atomic exchange is caught. *)

let real_exchange = Atomic.exchange

(* a deliberately broken exchange: read, linger, write — loses updates *)
let torn_exchange cell v =
  let old = Atomic.get cell in
  for _ = 1 to 500 do
    Domain.cpu_relax ()
  done;
  Atomic.set cell v;
  old

let test_sequential_history () =
  (* a hand-built sequential history: Swap(5)->0, Read->5, Swap(7)->5 *)
  let h =
    [ { Linearize.thread = 0; op = Linearize.Swap 5; result = 0; start = 0; finish = 1 }
    ; { Linearize.thread = 0; op = Linearize.Read; result = 5; start = 2; finish = 3 }
    ; { Linearize.thread = 1; op = Linearize.Swap 7; result = 5; start = 4; finish = 5 }
    ]
  in
  Alcotest.(check bool) "legal sequential history" true
    (Linearize.linearizable ~init:0 h)

let test_illegal_sequential_history () =
  (* the read of a value nobody wrote cannot linearize *)
  let h =
    [ { Linearize.thread = 0; op = Linearize.Swap 5; result = 0; start = 0; finish = 1 }
    ; { Linearize.thread = 0; op = Linearize.Read; result = 9; start = 2; finish = 3 }
    ]
  in
  Alcotest.(check bool) "illegal history rejected" false
    (Linearize.linearizable ~init:0 h)

let test_concurrent_overlap_allowed () =
  (* two overlapping swaps: either order works as long as results chain *)
  let h =
    [ { Linearize.thread = 0; op = Linearize.Swap 1; result = 0; start = 0; finish = 5 }
    ; { Linearize.thread = 1; op = Linearize.Swap 2; result = 1; start = 1; finish = 4 }
    ]
  in
  Alcotest.(check bool) "chained results linearize" true
    (Linearize.linearizable ~init:0 h)

let test_lost_update_rejected () =
  (* two overlapping swaps both returning the initial value: in any order
     the second must return the first's value — not linearizable *)
  let h =
    [ { Linearize.thread = 0; op = Linearize.Swap 1; result = 0; start = 0; finish = 5 }
    ; { Linearize.thread = 1; op = Linearize.Swap 2; result = 0; start = 1; finish = 4 }
    ]
  in
  Alcotest.(check bool) "lost update rejected" false
    (Linearize.linearizable ~init:0 h)

let test_real_atomic_exchange_linearizable () =
  for seed = 0 to 9 do
    let h =
      Linearize.record ~threads:3 ~ops_per_thread:5 ~seed
        ~exchange:real_exchange ()
    in
    match Linearize.explain ~init:0 h with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (Fmt.str "seed %d: %s" seed e)
  done

let test_torn_exchange_caught () =
  (* under contention the torn exchange produces non-linearizable
     histories; at least one of many trials must be caught (each trial is
     racy, so we try many) *)
  let caught = ref false in
  let seed = ref 0 in
  while (not !caught) && !seed < 200 do
    let h =
      Linearize.record ~threads:4 ~ops_per_thread:6 ~seed:!seed
        ~exchange:torn_exchange ()
    in
    if not (Linearize.linearizable ~init:0 h) then caught := true;
    incr seed
  done;
  Alcotest.(check bool) "torn exchange caught within 200 trials" true !caught

let test_explain_returns_witness () =
  let h =
    Linearize.record ~threads:2 ~ops_per_thread:4 ~exchange:real_exchange ()
  in
  match Linearize.explain ~init:0 h with
  | Ok order ->
    Alcotest.(check int) "witness covers all events" (List.length h)
      (List.length order)
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "linearize"
    [ ( "spec",
        [ Alcotest.test_case "sequential history" `Quick
            test_sequential_history
        ; Alcotest.test_case "illegal history rejected" `Quick
            test_illegal_sequential_history
        ; Alcotest.test_case "overlap allowed" `Quick
            test_concurrent_overlap_allowed
        ; Alcotest.test_case "lost update rejected" `Quick
            test_lost_update_rejected
        ] )
    ; ( "real-hardware",
        [ Alcotest.test_case "Atomic.exchange linearizable" `Quick
            test_real_atomic_exchange_linearizable
        ; Alcotest.test_case "torn exchange caught" `Quick
            test_torn_exchange_caught
        ; Alcotest.test_case "explain returns witness" `Quick
            test_explain_returns_witness
        ] )
    ]
