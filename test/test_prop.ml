(* Tests for the declarative property layer (lib/prop):

   - combinator unit tests (invariant / step relation / automaton /
     leads_to_within / product / select, the linear-run monitor);
   - differential tests proving the layer agrees verdict-for-verdict with
     the legacy raising monitor (Core.Swap_ksa_monitor.check_step) on
     seeded random runs, and with the checker's built-in hooks on full
     explorations at n = 3..5 with and without symmetry / partial-order
     reduction;
   - planted mutant protocols, one per §4 property, proving every declared
     property actually fires on a genuine violation — through the linear
     monitor, the exhaustive checker and the fault injector's
     property-oracle pipeline (detection, classification and
     class-preserving schedule shrinking). *)

module Sh = Shmem
module V = Sh.Value

let mk ~n ~k ~m = Core.Swap_ksa.make ~n ~k ~m

(* ------------------------------------------------------------------ *)
(* Combinators                                                         *)
(* ------------------------------------------------------------------ *)

(* One fixed small instance for the unit tests. *)
module P2 = (val mk ~n:2 ~k:1 ~m:2)
module Pr2 = Prop.Make (P2)
module E2 = Sh.Exec.Make (P2)

let snap2 (c : E2.config) : Pr2.snap =
  { Pr2.states = c.E2.states; mem = c.E2.mem }

let s0 () = snap2 (E2.initial ~inputs:[| 0; 1 |])

(* snapshots of pid 0's solo execution, initial first, up to [steps]
   transitions or until it decides *)
let solo_snaps steps =
  let rec go c acc i =
    if i >= steps || E2.undecided c = [] || not (List.mem 0 (E2.undecided c))
    then List.rev acc
    else
      let c', _ = E2.step c 0 in
      go c' (snap2 c' :: acc) (i + 1)
  in
  let c0 = E2.initial ~inputs:[| 0; 1 |] in
  go c0 [ snap2 c0 ] 0

let test_shapes () =
  let inv = Pr2.always ~name:"a" (fun _ -> true) in
  let step =
    Pr2.step_rel ~name:"s" ~desc:"" (fun ~before:_ ~pid:_ ~after:_ -> None)
  in
  let auto =
    Pr2.automaton ~name:"t" ~desc:""
      ~init:(fun _ -> Ok 0)
      ~next:(fun st ~before:_ ~pid:_ ~after:_ -> Ok st)
      ()
  in
  let flags p = Pr2.(has_config p, has_step p, has_auto p) in
  Alcotest.(check (triple bool bool bool)) "invariant" (true, false, false)
    (flags inv);
  Alcotest.(check (triple bool bool bool)) "step" (false, true, false)
    (flags step);
  Alcotest.(check (triple bool bool bool)) "automaton" (false, false, true)
    (flags auto);
  let spec = Pr2.spec Pr2.agreement in
  Alcotest.(check string) "built-in name" "k-agreement" spec.Prop.name;
  Alcotest.(check string) "kind renders" "invariant"
    (Prop.kind_to_string spec.Prop.kind);
  let rendered = Fmt.str "%a" Prop.pp_spec spec in
  Alcotest.(check bool) "pp_spec mentions name and kind" true
    (let re = "k-agreement [invariant]" in
     let n = String.length rendered and m = String.length re in
     let rec at i = i + m <= n && (String.sub rendered i m = re || at (i + 1)) in
     at 0)

let test_eval_config () =
  let s = s0 () in
  Alcotest.(check (list int)) "nobody decided" [] (Pr2.decided_values s);
  Alcotest.(check (list int)) "all undecided" [ 0; 1 ] (Pr2.undecided s);
  let good = Pr2.always ~name:"good" (fun _ -> true) in
  let bad = Pr2.never ~name:"bad" (fun _ -> true) in
  Alcotest.(check bool) "always true holds" true
    (Pr2.eval_config good s = None);
  Alcotest.(check bool) "never true violated" true
    (Pr2.eval_config bad s <> None);
  Alcotest.(check bool) "step prop has no config check" true
    (Pr2.eval_config
       (Pr2.step_rel ~name:"s" ~desc:"" (fun ~before:_ ~pid:_ ~after:_ ->
            Some "x"))
       s
    = None);
  Alcotest.(check bool) "agreement holds initially" true
    (Pr2.eval_config Pr2.agreement s = None);
  Alcotest.(check bool) "validity holds initially" true
    (Pr2.eval_config (Pr2.validity ~inputs:[| 0; 1 |]) s = None)

let test_product_select () =
  let a = Pr2.always ~name:"a" (fun _ -> true) in
  let b = Pr2.never ~name:"b" (fun _ -> true) in
  let prod = Pr2.product ~name:"a&b" [ a; b ] in
  (match Pr2.eval_config prod (s0 ()) with
  | Some d ->
    Alcotest.(check bool)
      (Fmt.str "detail %S names the violated component" d)
      true
      (String.length d >= 1 && String.sub d 0 1 = "b")
  | None -> Alcotest.fail "product missed its violated component");
  (match Pr2.product ~name:"empty" [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "product accepted the empty list");
  (match Pr2.select ~names:[ "b"; "a" ] [ a; b ] with
  | Ok sel ->
    Alcotest.(check (list string)) "select keeps original order" [ "a"; "b" ]
      (List.map Pr2.name sel)
  | Error e -> Alcotest.failf "select rejected known names: %s" e);
  match Pr2.select ~names:[ "a"; "bogus" ] [ a; b ] with
  | Ok _ -> Alcotest.fail "select accepted an unknown name"
  | Error e ->
    Alcotest.(check bool) (Fmt.str "error %S names the culprit" e) true
      (let re = "bogus" in
       let n = String.length e and m = String.length re in
       let rec at i = i + m <= n && (String.sub e i m = re || at (i + 1)) in
       at 0)

let test_leads_to_within () =
  (match
     Pr2.leads_to_within ~name:"z" ~trigger:(fun _ -> true)
       ~goal:(fun _ -> true) ~within:0 ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "leads_to_within accepted within = 0");
  let decided s = not (List.mem 0 (Pr2.undecided s)) in
  let run_monitor prop snaps =
    match snaps with
    | [] -> None
    | first :: rest ->
      let mon, at_init = Pr2.start [ prop ] first in
      (match at_init with
      | Some v -> Some v
      | None ->
        let rec go prev = function
          | [] -> None
          | s :: tl -> (
            match Pr2.advance mon ~before:prev ~pid:0 ~after:s with
            | Some v -> Some v
            | None -> go s tl)
        in
        go first rest)
  in
  let snaps = solo_snaps 20 in
  Alcotest.(check bool) "pid 0 decides solo within 20 steps" true
    (List.exists decided snaps);
  let tight =
    Pr2.leads_to_within ~name:"decides-in-1" ~trigger:(fun _ -> true)
      ~goal:decided ~within:1 ()
  in
  (match run_monitor tight snaps with
  | Some (name, _) ->
    Alcotest.(check string) "tight bound violated" "decides-in-1" name
  | None -> Alcotest.fail "decides-in-1 should fail on a multi-step run");
  let loose =
    Pr2.leads_to_within ~name:"decides-in-100" ~trigger:(fun _ -> true)
      ~goal:decided ~within:100 ()
  in
  match run_monitor loose snaps with
  | None -> ()
  | Some (name, d) -> Alcotest.failf "loose bound fired: %s: %s" name d

let test_monitor_automaton_dies () =
  let rejector =
    Pr2.automaton ~name:"rejector" ~desc:""
      ~init:(fun _ -> Ok ())
      ~next:(fun () ~before:_ ~pid:_ ~after:_ -> Error "rejected")
      ()
  in
  let snaps = solo_snaps 3 in
  let s0, s1, s2 =
    match snaps with
    | a :: b :: c :: _ -> a, b, c
    | _ -> Alcotest.fail "short solo run"
  in
  let mon, at_init = Pr2.start [ rejector ] s0 in
  Alcotest.(check bool) "accepts at init" true (at_init = None);
  (match Pr2.advance mon ~before:s0 ~pid:0 ~after:s1 with
  | Some ("rejector", "rejected") -> ()
  | Some (n, d) -> Alcotest.failf "wrong violation %s: %s" n d
  | None -> Alcotest.fail "rejector did not reject");
  Alcotest.(check bool) "dead after rejecting" true
    (Pr2.advance mon ~before:s1 ~pid:0 ~after:s2 = None);
  (* an automaton rejecting at init is reported by start *)
  let dead_at_init =
    Pr2.automaton ~name:"doa" ~desc:""
      ~init:(fun _ -> Error "no")
      ~next:(fun () ~before:_ ~pid:_ ~after:_ -> Ok ())
      ()
  in
  match Pr2.start [ dead_at_init ] s0 with
  | _, Some ("doa", "no") -> ()
  | _, _ -> Alcotest.fail "init rejection not reported by start"

let test_obs_counters () =
  let checked = Obs.counter "prop.checked" in
  let violated = Obs.counter "prop.violated" in
  Obs.enable ();
  Fun.protect ~finally:Obs.disable (fun () ->
      let c0 = Obs.Counter.value checked
      and v0 = Obs.Counter.value violated in
      let s = s0 () in
      ignore (Pr2.eval_config Pr2.agreement s);
      ignore (Pr2.eval_config (Pr2.never ~name:"x" (fun _ -> true)) s);
      Alcotest.(check bool) "prop.checked advanced by 2" true
        (Obs.Counter.value checked = c0 + 2);
      Alcotest.(check bool) "prop.violated advanced by 1" true
        (Obs.Counter.value violated = v0 + 1))

(* ------------------------------------------------------------------ *)
(* Differential: property layer vs the legacy raising monitor          *)
(* ------------------------------------------------------------------ *)

(* Step through seeded random runs, asking the legacy façade and the
   property layer the same question at every transition; the verdicts must
   agree exactly (on Algorithm 1 both always say "fine", and the equality
   check does not assume that). *)
let test_differential_monitor () =
  List.iter
    (fun (n, k, m) ->
      let module P = (val mk ~n ~k ~m) in
      let module M = Core.Swap_ksa_monitor.Make (P) in
      let module Pr = Prop.Make (P) in
      let module E = M.E in
      let snap (c : E.config) : Pr.snap =
        { Pr.states = c.E.states; mem = c.E.mem }
      in
      for seed = 0 to 9 do
        let rng = Random.State.make [| 0x9a0b; seed; n; k; m |] in
        let inputs = Array.init n (fun _ -> Random.State.int rng m) in
        let c = ref (E.initial ~inputs) in
        let mon, at_init = Pr.start M.online_props (snap !c) in
        Alcotest.(check bool) "clean at init" true (at_init = None);
        let steps = ref 0 in
        let continue = ref true in
        while !continue && !steps < 300 do
          match E.undecided !c with
          | [] -> continue := false
          | enabled ->
            let pid =
              List.nth enabled (Random.State.int rng (List.length enabled))
            in
            let c', _ = E.step !c pid in
            let legacy =
              match M.check_step !c pid c' with
              | () -> None
              | exception Core.Swap_ksa_monitor.Invariant_violation d ->
                Some d
            in
            let declared =
              List.find_map
                (fun p ->
                  Pr.eval_step p ~before:(snap !c) ~pid ~after:(snap c'))
                M.step_props
            in
            Alcotest.(check (option string))
              (Fmt.str "seed %d step %d: façade = declared" seed !steps)
              legacy declared;
            (match Pr.advance mon ~before:(snap !c) ~pid ~after:(snap c') with
            | None -> ()
            | Some (name, d) ->
              Alcotest.failf "linear monitor fired on Algorithm 1: %s: %s"
                name d);
            c := c';
            incr steps
        done
      done)
    [ 3, 1, 2; 4, 2, 3 ]

(* ------------------------------------------------------------------ *)
(* Differential: checker built-ins vs registry-attached properties     *)
(* ------------------------------------------------------------------ *)

(* Exploring with the §4 properties attached must not change the checker's
   verdict, the explored-configuration count or truncation — the extra
   properties ride along and simply never fire on the real algorithm.
   Covers n = 3..5 and all four (sym, por) settings at the smallest
   instance. *)
let test_differential_checker () =
  let combos = [ false, false; true, false; false, true; true, true ] in
  let cases =
    (* (n, k, m, lap cap, max_configs, combos) *)
    [ 3, 1, 2, 2, 60_000, combos
    ; 4, 3, 2, 3, 60_000, combos
    ; 5, 4, 3, 2, 60_000, [ true, true ]
    ]
  in
  List.iter
    (fun (n, k, m, cap, max_configs, combos) ->
      let module P = (val mk ~n ~k ~m) in
      let module M = Core.Swap_ksa_monitor.Make (P) in
      let module C = Checker.Make (P) in
      let prune (c : C.E.config) = Util.lap_prune_pair cap c.C.E.mem in
      let inputs = Array.init n (fun pid -> pid mod m) in
      List.iter
        (fun (sym, por) ->
          let what = Fmt.str "n=%d k=%d m=%d sym=%b por=%b" n k m sym por in
          let plain =
            C.explore ~max_configs ~prune ~sym ~por ~inputs ()
          in
          let with_props =
            C.explore ~max_configs ~prune ~sym ~por
              ~extra_props:(fun _ -> M.online_props)
              ~inputs ()
          in
          Util.check_ok (what ^ " plain") plain;
          Util.check_ok (what ^ " with §4 props") with_props;
          Alcotest.(check int)
            (what ^ ": props do not change the explored count")
            plain.Checker.configs_explored
            with_props.Checker.configs_explored;
          Alcotest.(check bool)
            (what ^ ": props do not change truncation")
            plain.Checker.truncated with_props.Checker.truncated)
        combos)
    cases

let test_checker_select () =
  let module P = P2 in
  let module C = Checker.Make (P) in
  let inputs = [| 0; 1 |] in
  let all = C.explore ~inputs () in
  let named =
    C.explore ~inputs
      ~select:[ "k-agreement"; "validity"; "solo-termination" ]
      ()
  in
  Util.check_ok "default built-ins" all;
  Alcotest.(check int) "explicit selection explores the same graph"
    all.Checker.configs_explored named.Checker.configs_explored;
  let none = C.explore ~inputs ~select:[] () in
  Alcotest.(check int) "pure enumeration still covers the graph"
    all.Checker.configs_explored none.Checker.configs_explored;
  Alcotest.(check bool) "pure enumeration reports nothing" true
    (none.Checker.violations = []);
  match C.explore ~inputs ~select:[ "bogus" ] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "select accepted an unknown property"

(* ------------------------------------------------------------------ *)
(* Planted mutants                                                     *)
(* ------------------------------------------------------------------ *)

(* Minimal Swap_ksa.S implementations (2 processes, one swap object, an
   m=2 lap vector) whose transition functions misbehave in exactly one
   way each, proving each declared property fires on the violation it was
   declared for.  [next ~tick laps] returns the post-step lap counter and
   decision; [swap_value] is what the process installs. *)
let mutant ~name
    ?(swap_value = fun laps pid -> V.Pair (V.Ints laps, V.Pid pid))
    ~(next : tick:int -> int array -> int array * int option) () :
    (module Core.Swap_ksa.S) =
  (module struct
    let name = name
    let n = 2
    let k = 1
    let num_inputs = 2
    let objects = [| Sh.Obj_kind.Swap_only Sh.Obj_kind.Unbounded |]
    let init_object _ = V.Pair (V.Ints [| 0; 0 |], V.Bot)

    type state = {
      pid : int;
      laps : int array;
      decided : int option;
      tick : int;
    }

    let init ~pid ~input:_ = { pid; laps = [| 0; 0 |]; decided = None; tick = 0 }
    let poised s = Sh.Op.swap 0 (swap_value (Array.copy s.laps) s.pid)

    let on_response s _ =
      let laps, decided = next ~tick:s.tick s.laps in
      { s with laps; decided; tick = min (s.tick + 1) 7 }

    let decision s = s.decided
    let equal_state = ( = )
    let hash_state = Hashtbl.hash

    let pp_state ppf s =
      Fmt.pf ppf "{p%d laps=%a}" s.pid Fmt.(Dump.array int) s.laps

    let space_bound ~n:_ ~k:_ = Array.length objects
    let symmetry = Sh.Protocol.Asymmetric
    let recovery = Sh.Protocol.Restart
    let laps s = Array.copy s.laps
    let laps_get s j = s.laps.(j)
    let preference s = if s.decided = None then Some 0 else None
    let mid_pass _ = 0
    let in_conflict _ = false
  end)

(* lap counter shrinks on the second step: Observation 3 *)
let shrink_laps_mutant () =
  mutant ~name:"mutant-shrink-laps"
    ~next:(fun ~tick _laps ->
      (if tick = 0 then [| 1; 0 |] else [| 0; 0 |]), None)
    ()

(* a component jumps by 2 in one step: Observation 1 *)
let jump_mutant () =
  mutant ~name:"mutant-lap-jump"
    ~next:(fun ~tick laps -> (if tick = 0 then [| 2; 0 |] else laps), None)
    ()

(* decides with zero laps: Observation 4 / line 16 *)
let zero_lead_mutant () =
  mutant ~name:"mutant-zero-lead"
    ~next:(fun ~tick laps -> laps, if tick = 0 then Some 0 else None)
    ()

(* installs ⟨[5;5], pid⟩ while its own counter stays zero: totality *)
let big_write_mutant () =
  mutant ~name:"mutant-big-write"
    ~swap_value:(fun _ pid -> V.Pair (V.Ints [| 5; 5 |], V.Pid pid))
    ~next:(fun ~tick:_ laps -> laps, None)
    ()

(* never decides: Lemma 8 / solo termination *)
let spinner_mutant () =
  mutant ~name:"mutant-spinner" ~next:(fun ~tick:_ laps -> laps, None) ()

let test_mutants_linear_monitor () =
  let expect_name planted expected select_totality_only =
    let (module P : Core.Swap_ksa.S) = planted in
    let module M = Core.Swap_ksa_monitor.Make (P) in
    let module Pr = Prop.Make (P) in
    let module E = M.E in
    let snap (c : E.config) : Pr.snap =
      { Pr.states = c.E.states; mem = c.E.mem }
    in
    let props =
      if select_totality_only then [ M.prop_totality ] else M.online_props
    in
    let c = ref (E.initial ~inputs:[| 0; 1 |]) in
    let mon, at_init = Pr.start props (snap !c) in
    Alcotest.(check bool) (P.name ^ ": clean at init") true (at_init = None);
    let rec go i =
      if i >= 10 then Alcotest.failf "%s: no violation in 10 steps" P.name
      else
        let c', _ = E.step !c 0 in
        match Pr.advance mon ~before:(snap !c) ~pid:0 ~after:(snap c') with
        | Some (got, _) ->
          Alcotest.(check string) (P.name ^ ": caught by") expected got
        | None ->
          c := c';
          go (i + 1)
    in
    go 0
  in
  expect_name (shrink_laps_mutant ()) "lap-domination" false;
  expect_name (jump_mutant ()) "max-lap-increment" false;
  expect_name (zero_lead_mutant ()) "decide-lead-by-2" false;
  (* the big write also trips max-lap-increment, which is checked first;
     monitoring totality alone shows the invariant itself fires *)
  expect_name (big_write_mutant ()) "total-config-domination" true

let test_mutant_solo_bound () =
  let (module P : Core.Swap_ksa.S) = spinner_mutant () in
  let module M = Core.Swap_ksa_monitor.Make (P) in
  let module Pr = Prop.Make (P) in
  let module E = M.E in
  let c0 = E.initial ~inputs:[| 0; 1 |] in
  let s0 : Pr.snap = { Pr.states = c0.E.states; mem = c0.E.mem } in
  (match Pr.eval_config (M.prop_solo_bound ()) s0 with
  | Some _ -> ()
  | None -> Alcotest.fail "solo-bound accepted a spinner");
  (* the checker's built-in solo-termination hook agrees *)
  let module C = Checker.Make (P) in
  let r = C.explore ~max_configs:500 ~inputs:[| 0; 1 |] () in
  Alcotest.(check bool) "checker rejects the spinner" false (Checker.ok r);
  Alcotest.(check bool) "as a solo-termination violation" true
    (List.exists
       (fun (v : Checker.violation) -> v.Checker.property = "solo-termination")
       r.Checker.violations)

(* the unsafe ablation (decision lead 1) is a ready-made mutant for the
   checker path: exploring with the §4 properties attached must surface
   "decide-lead-by-2" with a replayable, shrinkable counterexample *)
let test_mutant_checker_and_shrink () =
  let module P = (val Core.Swap_ksa.make_ablation ~n:3 ~k:1 ~m:2 ~lead:1 ()) in
  let module M = Core.Swap_ksa_monitor.Make (P) in
  let module C = Checker.Make (P) in
  let prune (c : C.E.config) = Util.lap_prune_pair 3 c.C.E.mem in
  let inputs = [| 0; 1; 0 |] in
  let r =
    C.explore ~max_configs:100_000 ~prune ~check_solo:false
      ~extra_props:(fun _ -> M.online_props)
      ~inputs ()
  in
  Alcotest.(check bool) "lead-1 ablation rejected" false (Checker.ok r);
  match
    List.find_opt
      (fun (v : Checker.violation) ->
        v.Checker.property = "decide-lead-by-2")
      r.Checker.violations
  with
  | None ->
    Alcotest.fail "no decide-lead-by-2 violation on the lead-1 ablation"
  | Some v ->
    let shrunk =
      C.shrink_violation ~props:M.online_props ~inputs v
    in
    Alcotest.(check string) "shrinking preserves the property"
      "decide-lead-by-2" shrunk.Checker.property;
    Alcotest.(check bool) "shrunk trace is no longer" true
      (List.length shrunk.Checker.trace <= List.length v.Checker.trace)

(* ------------------------------------------------------------------ *)
(* Fault-injection integration                                         *)
(* ------------------------------------------------------------------ *)

let test_fault_prop_oracle () =
  let (module P : Core.Swap_ksa.S) = shrink_laps_mutant () in
  let module M = Core.Swap_ksa_monitor.Make (P) in
  let module F = Fault.Sim (P) in
  let inputs = [| 0; 1 |] in
  let sched ~step_index:_ _ enabled =
    match enabled with [] -> None | pid :: _ -> Some pid
  in
  let report =
    F.run ~props:M.online_props [] ~sched ~max_steps:50 ~inputs
  in
  (match report.F.prop_violation with
  | Some ("lap-domination", _) -> ()
  | Some (name, d) -> Alcotest.failf "wrong property: %s: %s" name d
  | None -> Alcotest.fail "no property violation on the shrink-laps mutant");
  let violation =
    match F.detect ~inputs report with
    | Some (F.Property (name, _) as v) ->
      Alcotest.(check string) "detect classifies by name" "lap-domination"
        name;
      Alcotest.(check string) "class embeds the property name"
        "prop:lap-domination" (F.violation_class v);
      v
    | Some v ->
      Alcotest.failf "detect returned %a, not the property"
        F.pp_violation v
    | None -> Alcotest.fail "detect missed the property violation"
  in
  let schedule = F.schedule_of report in
  let shrunk = F.shrink ~props:M.online_props [] ~inputs violation schedule in
  Alcotest.(check bool) "shrunk schedule is no longer" true
    (List.length shrunk <= List.length schedule);
  let replay = F.run_schedule ~props:M.online_props [] ~inputs shrunk in
  match replay.F.prop_violation with
  | Some ("lap-domination", _) -> ()
  | _ -> Alcotest.fail "shrunk schedule lost the violation"

let test_fault_campaign_tally () =
  let (module P : Core.Swap_ksa.S) = shrink_laps_mutant () in
  let module M = Core.Swap_ksa_monitor.Make (P) in
  let module F = Fault.Sim (P) in
  let summary =
    F.campaign ~props:M.online_props ~inputs:[| 0; 1 |] ~max_steps:200
      ~seed:42 ~runs:4 ~kinds:[] ()
  in
  Alcotest.(check int) "every fault-free run violates" 4
    (List.length summary.F.violations);
  Alcotest.(check (list (pair string int))) "tallied per property"
    [ "lap-domination", 4 ]
    summary.F.prop_detections;
  (* on the real algorithm the §4 properties hold even under object
     faults (lap counters merge by componentwise max, so stale or torn
     responses cannot shrink them or mint laps): detections come from the
     atomicity replay and the protocol's own checks, and the property
     tally stays empty.  Freeze that fact. *)
  let module P3 = (val mk ~n:3 ~k:1 ~m:2) in
  let module M3 = Core.Swap_ksa_monitor.Make (P3) in
  let module F3 = Fault.Sim (P3) in
  let real =
    F3.campaign ~props:M3.online_props ~max_steps:20_000 ~seed:7 ~runs:10
      ~kinds:Fault.all_kinds ()
  in
  Alcotest.(check int) "nothing missed on Algorithm 1" 0 real.F3.missed;
  Alcotest.(check bool) "no benign-run violations on Algorithm 1" true
    (real.F3.violations = []);
  Alcotest.(check (list (pair string int)))
    "§4 properties hold under object faults" [] real.F3.prop_detections

let test_mc_oracles () =
  let module P = (val mk ~n:3 ~k:1 ~m:2) in
  let module F = Fault.Mc (P) in
  let flaky = ref 0 in
  let oracles =
    [ "always-happy", (fun ~inputs:_ _ -> Ok ())
    ; ( "always-grumpy",
        fun ~inputs:_ _ ->
          incr flaky;
          Error "unconditionally rejected" )
    ]
  in
  let summary =
    F.campaign ~oracles ~max_ops:20_000 ~seed:3 ~runs:2 ~kinds:[] ()
  in
  Alcotest.(check int) "grumpy oracle ran per run" 2 !flaky;
  Alcotest.(check (list (pair string int))) "failures tallied per oracle"
    [ "always-grumpy", 2 ]
    summary.F.prop_detections;
  Alcotest.(check int) "each failure is a violation" 2
    (List.length summary.F.violations)

(* ------------------------------------------------------------------ *)
(* Registry packs                                                      *)
(* ------------------------------------------------------------------ *)

let test_registry_packs () =
  let entries = Baselines.Registry.standard ~n:3 () in
  Alcotest.(check bool) "registry is populated" true (entries <> []);
  List.iter
    (fun (e : Baselines.Registry.entry) ->
      let specs = Prop.pack_specs e.props in
      let names = List.map (fun (s : Prop.spec) -> s.Prop.name) specs in
      if
        String.length e.name >= 8 && String.sub e.name 0 8 = "swap-ksa"
      then
        Alcotest.(check (list string))
          (e.name ^ " carries the §4 properties")
          [ "lap-domination"
          ; "decide-lead-by-2"
          ; "max-lap-increment"
          ; "total-config-domination"
          ]
          names
      else
        Alcotest.(check (list string))
          (e.name ^ " carries the generic pack")
          [ "k-agreement" ] names;
      (* pack-first unpacking: the pack's protocol instantiates a checker
         whose types unify with the pack's properties *)
      let (module Pk : Prop.PACK) = e.props in
      let module C = Checker.Make (Pk.P) in
      let r =
        C.explore ~max_configs:300 ~check_solo:false
          ~prune:(fun (c : C.E.config) -> Util.lap_prune_pair 1 c.C.E.mem)
          ~extra_props:(fun _ -> Pk.props)
          ~inputs:(Array.init Pk.P.n (fun pid -> pid mod Pk.P.num_inputs))
          ()
      in
      Util.check_ok (e.name ^ " bounded exploration with pack props") r)
    entries

let () =
  Alcotest.run "prop"
    [ ( "combinators",
        [ Alcotest.test_case "shapes and specs" `Quick test_shapes
        ; Alcotest.test_case "config evaluation" `Quick test_eval_config
        ; Alcotest.test_case "product and select" `Quick test_product_select
        ; Alcotest.test_case "leads_to_within" `Quick test_leads_to_within
        ; Alcotest.test_case "automaton lifecycle" `Quick
            test_monitor_automaton_dies
        ; Alcotest.test_case "obs counters" `Quick test_obs_counters
        ] )
    ; ( "differential",
        [ Alcotest.test_case "vs legacy monitor (random runs)" `Quick
            test_differential_monitor
        ; Alcotest.test_case "vs checker built-ins (n=3..5, ±sym/±por)"
            `Slow test_differential_checker
        ; Alcotest.test_case "property selection" `Quick test_checker_select
        ] )
    ; ( "mutants",
        [ Alcotest.test_case "each §4 property fires" `Quick
            test_mutants_linear_monitor
        ; Alcotest.test_case "solo bound and solo termination" `Quick
            test_mutant_solo_bound
        ; Alcotest.test_case "checker catches lead-1 ablation, shrinks"
            `Slow test_mutant_checker_and_shrink
        ] )
    ; ( "fault",
        [ Alcotest.test_case "property as detection oracle" `Quick
            test_fault_prop_oracle
        ; Alcotest.test_case "campaign tally" `Slow test_fault_campaign_tally
        ; Alcotest.test_case "multicore outcome oracles" `Slow
            test_mc_oracles
        ] )
    ; "packs", [ Alcotest.test_case "registry packs" `Quick test_registry_packs ]
    ]
