(* Tests for the resilience layer (lib/resil): the monotonic clock, the
   composable policy pieces (backoff, deadline, breaker, retry), and the
   supervisor — crash detection, state rebuild through [Protocol.S.recovery]
   ([Restart] and [Resume]), respawn budgets and escalation, the degraded
   agreement contract, and histories/HB across recovery boundaries. *)

module Policy = Resil.Policy
module Clock = Resil.Clock

(* --------------------------------------------------------------- clock *)

let test_clock_monotone () =
  let prev = ref (Clock.now_ns ()) in
  for _ = 1 to 1_000 do
    let t = Clock.now_ns () in
    Alcotest.(check bool) "never rewinds" true (Int64.compare t !prev >= 0);
    prev := t
  done

let test_clock_conversions () =
  Alcotest.(check int64) "1s" 1_000_000_000L (Clock.ns_of_s 1.);
  Alcotest.(check int64) "negative saturates" 0L (Clock.ns_of_s (-3.));
  Alcotest.(check (float 1e-9)) "round trip" 0.25
    (Clock.s_of_ns (Clock.ns_of_s 0.25));
  let since = Clock.now_ns () in
  Alcotest.(check bool) "elapsed non-negative" true
    (Int64.compare (Clock.elapsed_ns ~since) 0L >= 0)

(* -------------------------------------------------------------- backoff *)

let test_backoff_curve () =
  let b = Policy.Backoff.exponential ~base:2 ~cap:16 () in
  Alcotest.(check (list int)) "doubles then caps" [ 2; 4; 8; 16; 16 ]
    (List.map (fun a -> Policy.Backoff.bound b ~attempt:a) [ 0; 1; 2; 3; 9 ]);
  (* unjittered: spins = bound, rng or not *)
  let rng = Random.State.make [| 1 |] in
  Alcotest.(check int) "unjittered ignores rng" 8
    (Policy.Backoff.spins ~rng b ~attempt:2)

let test_backoff_jitter () =
  let b = Policy.Backoff.exponential ~base:8 ~cap:64 ~jitter:true () in
  let rng = Random.State.make [| 42 |] in
  for a = 0 to 5 do
    let s = Policy.Backoff.spins ~rng b ~attempt:a in
    let bound = Policy.Backoff.bound b ~attempt:a in
    Alcotest.(check bool)
      (Fmt.str "attempt %d within [0, %d)" a bound)
      true
      (s >= 0 && s < bound)
  done;
  (* deterministic given the same rng state *)
  let draw () =
    let rng = Random.State.make [| 7 |] in
    List.init 6 (fun a -> Policy.Backoff.spins ~rng b ~attempt:a)
  in
  Alcotest.(check (list int)) "seeded draws reproduce" (draw ()) (draw ())

let test_backoff_validation () =
  (try
     ignore (Policy.Backoff.exponential ~base:0 ());
     Alcotest.fail "accepted base = 0"
   with Invalid_argument _ -> ());
  try
    ignore (Policy.Backoff.exponential ~base:10 ~cap:5 ());
    Alcotest.fail "accepted base > cap"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------ deadlines *)

let test_deadline_never () =
  Alcotest.(check bool) "is_never" true (Policy.Deadline.is_never Policy.Deadline.never);
  Alcotest.(check bool) "never expires" false
    (Policy.Deadline.expired Policy.Deadline.never);
  Alcotest.(check (float 0.)) "infinite remaining" infinity
    (Policy.Deadline.remaining_s Policy.Deadline.never);
  Alcotest.(check bool) "infinite seconds = never" true
    (Policy.Deadline.is_never (Policy.Deadline.after ~seconds:infinity))

let test_deadline_expiry () =
  let d = Policy.Deadline.after ~seconds:0.001 in
  Alcotest.(check bool) "fresh deadline not expired" true
    (Policy.Deadline.remaining_s d > 0. || Policy.Deadline.expired d);
  let deadline = Clock.now_ns () in
  (* an expiry in the past (shared absolute budget) is immediately gone *)
  let past = Policy.Deadline.of_expiry_ns deadline in
  Alcotest.(check bool) "past expiry expired" true
    (Policy.Deadline.expired past || Policy.Deadline.remaining_s past = 0.);
  try
    ignore (Policy.Deadline.after ~seconds:0.);
    Alcotest.fail "accepted zero deadline"
  with Invalid_argument _ -> ()

(* -------------------------------------------------------------- breaker *)

let test_breaker () =
  let b = Policy.Breaker.create ~threshold:2 ~n:3 in
  Alcotest.(check int) "threshold" 2 (Policy.Breaker.threshold b);
  Alcotest.(check bool) "fresh pid closed" false (Policy.Breaker.tripped b ~pid:0);
  Policy.Breaker.record_failure b ~pid:0;
  Alcotest.(check bool) "one failure: still closed" false
    (Policy.Breaker.tripped b ~pid:0);
  Policy.Breaker.record_failure b ~pid:0;
  Alcotest.(check bool) "two failures: open" true (Policy.Breaker.tripped b ~pid:0);
  Alcotest.(check int) "failures counted" 2 (Policy.Breaker.failures b ~pid:0);
  Alcotest.(check bool) "other pid independent" false
    (Policy.Breaker.tripped b ~pid:1);
  Alcotest.(check int) "one trip" 1 (Policy.Breaker.trips b);
  try
    ignore (Policy.Breaker.create ~threshold:0 ~n:1);
    Alcotest.fail "accepted threshold = 0"
  with Invalid_argument _ -> ()

(* ---------------------------------------------------------------- retry *)

let test_retry_succeeds () =
  let calls = ref 0 in
  match
    Policy.Retry.run
      (Policy.Retry.budget ~max_attempts:5 ())
      (fun ~attempt ->
        incr calls;
        if attempt >= 2 then Ok (attempt * 10) else Error "not yet")
  with
  | Ok v ->
    Alcotest.(check int) "third attempt's value" 20 v;
    Alcotest.(check int) "three calls" 3 !calls
  | Error _ -> Alcotest.fail "budget should have sufficed"

let test_retry_exhausts () =
  match
    Policy.Retry.run
      (Policy.Retry.budget ~max_attempts:3 ())
      (fun ~attempt:_ -> Error "always")
  with
  | Error (Policy.Retry.Attempts_exhausted, Some "always") -> ()
  | Error (e, _) ->
    Alcotest.fail (Fmt.str "wrong error: %a" Policy.Retry.pp_error e)
  | Ok _ -> Alcotest.fail "cannot succeed"

let test_retry_deadline () =
  (* an already-expired shared budget: no attempt may start *)
  let calls = ref 0 in
  match
    Policy.Retry.run
      (Policy.Retry.budget ~max_attempts:3
         ~deadline:(Policy.Deadline.of_expiry_ns (Clock.now_ns ())) ())
      (fun ~attempt:_ ->
        incr calls;
        Ok ())
  with
  | Error (Policy.Retry.Deadline_exceeded, None) ->
    Alcotest.(check int) "no attempt started" 0 !calls
  | Error (e, _) ->
    Alcotest.fail (Fmt.str "wrong error: %a" Policy.Retry.pp_error e)
  | Ok () -> Alcotest.fail "expired budget accepted"

(* ----------------------------------------------------------- supervisor *)

let test_supervise_quiet () =
  (* nothing fails: exactly one round, no respawns, plain contract holds *)
  let (module P) = Core.Swap_ksa.make ~n:3 ~k:1 ~m:2 in
  let module Sup = Supervisor.Make (P) in
  let inputs = [| 0; 1; 0 |] in
  let r = Sup.supervise ~inputs ~seed:11 () in
  Alcotest.(check int) "one round" 1 r.Sup.rounds;
  Alcotest.(check (array int)) "no respawns" [| 0; 0; 0 |] r.Sup.respawns;
  Alcotest.(check int) "degraded_k = k" P.k r.Sup.degraded_k;
  Alcotest.(check bool) "no recoveries timed" true (r.Sup.recover_ns = []);
  match Sup.check ~inputs r with Ok () -> () | Error e -> Alcotest.fail e

let test_supervise_crash_recovers () =
  (* kill p1 early in round 0: the supervisor must respawn it and every
     process — including the new incarnation — must decide *)
  let (module P) = Core.Swap_ksa.make ~n:3 ~k:1 ~m:2 in
  let module Sup = Supervisor.Make (P) in
  let inputs = [| 0; 1; 1 |] in
  let crash_plan ~round ~pid =
    if round = 0 && pid = 1 then Some 1 else None
  in
  let r = Sup.supervise ~inputs ~seed:3 ~crash_plan () in
  Alcotest.(check bool) "at least two rounds" true (r.Sup.rounds >= 2);
  Alcotest.(check int) "p1 respawned once" 1 r.Sup.respawns.(1);
  Alcotest.(check (list int)) "nobody abandoned" [] r.Sup.gave_up;
  Alcotest.(check bool) "every process decided" true
    (Array.for_all (fun s -> s = Sup.R.Decided) r.Sup.outcome.Sup.R.statuses);
  Alcotest.(check bool) "recovery latency recorded" true
    (List.length r.Sup.recover_ns >= 1
    && List.for_all (fun ns -> Int64.compare ns 0L >= 0) r.Sup.recover_ns);
  Alcotest.(check bool) "degraded bound covers the lost incarnation" true
    (r.Sup.degraded_k >= P.k && r.Sup.degraded_k <= P.k + 1);
  match Sup.check ~inputs r with Ok () -> () | Error e -> Alcotest.fail e

let test_supervise_escalates () =
  (* p0 is killed in every round: after max_respawns budgets it must be
     abandoned (escalation), everyone else still decides, and the degraded
     contract still accepts the outcome *)
  let (module P) = Core.Swap_ksa.make ~n:3 ~k:1 ~m:2 in
  let module Sup = Supervisor.Make (P) in
  let inputs = [| 1; 0; 0 |] in
  let crash_plan ~round:_ ~pid = if pid = 0 then Some 0 else None in
  let policy = { (Sup.default_policy ()) with max_respawns = 2 } in
  let r = Sup.supervise ~inputs ~seed:5 ~policy ~crash_plan () in
  Alcotest.(check int) "respawned to the budget" 2 r.Sup.respawns.(0);
  Alcotest.(check (list int)) "then abandoned" [ 0 ] r.Sup.gave_up;
  Alcotest.(check bool) "survivors decided" true
    (List.for_all
       (fun pid -> r.Sup.outcome.Sup.R.statuses.(pid) = Sup.R.Decided)
       [ 1; 2 ]);
  match Sup.check ~inputs r with Ok () -> () | Error e -> Alcotest.fail e

let test_supervise_zero_budget () =
  (* max_respawns = 0 disables recovery: the first failure is abandoned *)
  let (module P) = Core.Swap_ksa.make ~n:3 ~k:1 ~m:2 in
  let module Sup = Supervisor.Make (P) in
  let inputs = [| 0; 0; 1 |] in
  let crash_plan ~round ~pid =
    if round = 0 && pid = 2 then Some 0 else None
  in
  let policy = { (Sup.default_policy ()) with max_respawns = 0 } in
  let r = Sup.supervise ~inputs ~seed:9 ~policy ~crash_plan () in
  Alcotest.(check int) "one round" 1 r.Sup.rounds;
  Alcotest.(check (list int)) "abandoned immediately" [ 2 ] r.Sup.gave_up;
  Alcotest.(check int) "no incarnation touched memory after" P.k
    r.Sup.degraded_k;
  match Sup.check ~inputs r with Ok () -> () | Error e -> Alcotest.fail e

let test_supervise_resume_protocol () =
  (* cas declares [Resume]: the respawned incarnation restarts from the
     arena snapshot instead of a fresh init, and still decides *)
  let (module P) = Baselines.Cas_consensus.make ~n:3 ~m:2 in
  let module Sup = Supervisor.Make (P) in
  let inputs = [| 1; 0; 1 |] in
  (* crash before the first op: cas can decide in a single operation, so a
     later crash point might never be reached *)
  let crash_plan ~round ~pid =
    if round = 0 && pid = 0 then Some 0 else None
  in
  let r = Sup.supervise ~inputs ~seed:17 ~crash_plan () in
  Alcotest.(check int) "p0 respawned" 1 r.Sup.respawns.(0);
  Alcotest.(check (list int)) "resume never leaves residue" []
    r.Sup.unanchored;
  match Sup.check ~inputs r with Ok () -> () | Error e -> Alcotest.fail e

let test_supervise_histories_across_boundaries () =
  (* recorded histories merge across incarnations on the shared arena
     clock; the happens-before checker must accept the merged histories *)
  let (module P) = Baselines.Cas_consensus.make ~n:3 ~m:2 in
  let module Sup = Supervisor.Make (P) in
  let inputs = [| 0; 1; 0 |] in
  let crash_plan ~round ~pid =
    if round = 0 && pid = 1 then Some 0 else None
  in
  let r = Sup.supervise ~inputs ~seed:23 ~record:true ~crash_plan () in
  Alcotest.(check bool) "events recorded" true
    (Array.exists (fun h -> h <> []) r.Sup.outcome.Sup.R.histories);
  (* timestamps stay totally ordered across the recovery boundary *)
  Array.iter
    (fun h ->
      ignore
        (List.fold_left
           (fun prev (e : Linearize.Obj_history.event) ->
             Alcotest.(check bool) "merged history sorted" true
               (e.start >= prev);
             e.start)
           (-1) h))
    r.Sup.outcome.Sup.R.histories;
  match Sup.R.check_hb r.Sup.outcome with
  | Ok (checked, _) ->
    Alcotest.(check bool) "checked something" true (checked >= 1)
  | Error e -> Alcotest.fail e

let test_supervise_prop_pack () =
  (* the §4 config invariants evaluated on the merged final snapshot: a
     clean supervised run either passes them or abstains (never a false
     alarm), and a run with no crash at all must pass outright *)
  let (module P) = Core.Swap_ksa.make ~n:3 ~k:1 ~m:2 in
  let module Sup = Supervisor.Make (P) in
  let module M = Core.Swap_ksa_monitor.Make (P) in
  let inputs = [| 0; 1; 0 |] in
  let quiet = Sup.supervise ~inputs ~seed:29 () in
  (match Sup.check_props M.online_props quiet with
  | None -> ()
  | Some (name, detail) ->
    Alcotest.fail (Fmt.str "quiet run violated %s: %s" name detail));
  let crash_plan ~round ~pid =
    if round = 0 && pid = 0 then Some 1 else None
  in
  let r = Sup.supervise ~inputs ~seed:31 ~crash_plan () in
  match Sup.check_props M.online_props r with
  | None -> ()
  | Some (name, detail) ->
    Alcotest.fail (Fmt.str "recovered run violated %s: %s" name detail)

let test_supervise_validation () =
  let (module P) = Core.Swap_ksa.make ~n:3 ~k:1 ~m:2 in
  let module Sup = Supervisor.Make (P) in
  (try
     ignore (Sup.supervise ~inputs:[| 0; 1 |] ());
     Alcotest.fail "accepted wrong input count"
   with Invalid_argument _ -> ());
  (try
     ignore (Sup.supervise ~inputs:[| 0; 1; 9 |] ());
     Alcotest.fail "accepted out-of-range input"
   with Invalid_argument _ -> ());
  try
    let policy = { (Sup.default_policy ()) with max_respawns = -1 } in
    ignore (Sup.supervise ~inputs:[| 0; 1; 0 |] ~policy ());
    Alcotest.fail "accepted negative respawn budget"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "resil"
    [ ( "clock",
        [ Alcotest.test_case "monotone" `Quick test_clock_monotone
        ; Alcotest.test_case "conversions" `Quick test_clock_conversions
        ] )
    ; ( "backoff",
        [ Alcotest.test_case "capped exponential curve" `Quick
            test_backoff_curve
        ; Alcotest.test_case "jitter bounded and seeded" `Quick
            test_backoff_jitter
        ; Alcotest.test_case "validation" `Quick test_backoff_validation
        ] )
    ; ( "deadline",
        [ Alcotest.test_case "never" `Quick test_deadline_never
        ; Alcotest.test_case "expiry" `Quick test_deadline_expiry
        ] )
    ; ( "breaker",
        [ Alcotest.test_case "per-pid trip behavior" `Quick test_breaker ] )
    ; ( "retry",
        [ Alcotest.test_case "succeeds within budget" `Quick
            test_retry_succeeds
        ; Alcotest.test_case "exhausts attempts" `Quick test_retry_exhausts
        ; Alcotest.test_case "expired deadline blocks" `Quick
            test_retry_deadline
        ] )
    ; ( "supervisor",
        [ Alcotest.test_case "quiet run: one round" `Quick
            test_supervise_quiet
        ; Alcotest.test_case "crash, respawn, decide" `Quick
            test_supervise_crash_recovers
        ; Alcotest.test_case "persistent crasher escalates" `Quick
            test_supervise_escalates
        ; Alcotest.test_case "zero budget abandons" `Quick
            test_supervise_zero_budget
        ; Alcotest.test_case "resume protocol recovers" `Quick
            test_supervise_resume_protocol
        ; Alcotest.test_case "histories and HB across boundaries" `Quick
            test_supervise_histories_across_boundaries
        ; Alcotest.test_case "prop pack on the merged snapshot" `Quick
            test_supervise_prop_pack
        ; Alcotest.test_case "validation" `Quick test_supervise_validation
        ] )
    ]
