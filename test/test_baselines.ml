(* Tests for the baseline algorithms: register k-set agreement (BRS-style),
   readable-swap consensus (EGSZ-style), binary-track consensus and CAS
   consensus.  Small instances are checked exhaustively (with lap caps where
   counters are unbounded); larger ones with randomized schedules. *)

let test_register_object_count () =
  List.iter
    (fun (n, k) ->
      let (module P) = Baselines.Register_ksa.make ~n ~k ~m:(k + 1) in
      Alcotest.(check int)
        (Fmt.str "n=%d k=%d uses n-k+1 registers" n k)
        (n - k + 1)
        (Array.length P.objects))
    [ 2, 1; 5, 1; 5, 2; 8, 4 ]

let test_register_exhaustive_n2 () =
  let (module P) = Baselines.Register_ksa.make ~n:2 ~k:1 ~m:2 in
  let module C = Checker.Make (P) in
  let prune (c : C.E.config) = Util.lap_prune_pair 3 c.C.E.mem in
  Util.check_ok "register-ksa n=2"
    (C.explore_all_inputs ~prune ~max_configs:400_000 ())

let test_register_exhaustive_n3_k2 () =
  let (module P) = Baselines.Register_ksa.make ~n:3 ~k:2 ~m:3 in
  let module C = Checker.Make (P) in
  let prune (c : C.E.config) = Util.lap_prune_pair 3 c.C.E.mem in
  Util.check_ok "register-ksa n=3 k=2 inputs 012"
    (C.explore ~prune ~max_configs:400_000 ~check_solo:false
       ~inputs:[| 0; 1; 2 |] ())

let test_register_random () =
  let (module P) = Baselines.Register_ksa.make ~n:5 ~k:2 ~m:3 in
  let module C = Checker.Make (P) in
  Util.check_ok "register-ksa n=5 k=2 random"
    (C.random_runs ~runs:10 ~max_steps:30_000 ~solo_check_every:1_000 ())

let test_readable_swap_object_count () =
  List.iter
    (fun n ->
      let (module P) = Baselines.Readable_swap_consensus.make ~n ~m:2 in
      Alcotest.(check int)
        (Fmt.str "n=%d uses n-1 objects" n)
        (n - 1) (Array.length P.objects))
    [ 2; 5; 9 ]

let test_readable_swap_exhaustive_n2 () =
  let (module P) = Baselines.Readable_swap_consensus.make ~n:2 ~m:2 in
  let module C = Checker.Make (P) in
  let prune (c : C.E.config) = Util.lap_prune_pair 4 c.C.E.mem in
  Util.check_ok "readable-swap n=2"
    (C.explore_all_inputs ~prune ~max_configs:200_000 ())

let test_readable_swap_random () =
  let (module P) = Baselines.Readable_swap_consensus.make ~n:6 ~m:4 in
  let module C = Checker.Make (P) in
  Util.check_ok "readable-swap n=6 random"
    (C.random_runs ~runs:10 ~max_steps:30_000 ~solo_check_every:1_000 ())

let test_binary_track_exhaustive_n2 () =
  let (module B) = Baselines.Binary_track_consensus.make ~n:2 ~cap:8 in
  let module C = Checker.Make (B) in
  let prune (c : C.E.config) = B.near_cap ~margin:3 c.C.E.mem in
  Util.check_ok "binary-track n=2"
    (C.explore_all_inputs ~prune ~max_configs:200_000 ())

let test_binary_track_exhaustive_n3 () =
  let (module B) = Baselines.Binary_track_consensus.make ~n:3 ~cap:7 in
  let module C = Checker.Make (B) in
  let prune (c : C.E.config) = B.near_cap ~margin:3 c.C.E.mem in
  Util.check_ok "binary-track n=3 inputs 010"
    (C.explore ~prune ~max_configs:300_000 ~inputs:[| 0; 1; 0 |] ())

let test_binary_track_random () =
  let (module B) = Baselines.Binary_track_consensus.make ~n:5 ~cap:64 in
  let module C = Checker.Make (B) in
  Util.check_ok "binary-track n=5 random"
    (C.random_runs ~runs:10 ~max_steps:20_000 ())

let test_binary_track_positions () =
  let (module B) = Baselines.Binary_track_consensus.make ~n:2 ~cap:4 in
  let module E = Shmem.Exec.Make (B) in
  let c = E.initial ~inputs:[| 0; 1 |] in
  Alcotest.(check (pair int int)) "initially 0,0" (0, 0)
    (B.positions c.E.mem);
  (* p0 solo: decides 0 after advancing its track twice *)
  (match E.run_solo ~pid:0 ~max_steps:100 c with
  | None -> Alcotest.fail "solo run stuck"
  | Some (c', _) ->
    Alcotest.(check (option int)) "p0 decided 0" (Some 0) (E.decision c' 0);
    let p0, p1 = B.positions c'.E.mem in
    Alcotest.(check (pair int int)) "track 0 two ahead" (2, 0) (p0, p1))

let test_eager_track_exhaustive_n2 () =
  let (module B) = Baselines.Binary_track_consensus.make_eager ~n:2 ~cap:8 in
  let module C = Checker.Make (B) in
  let prune (c : C.E.config) = B.near_cap ~margin:3 c.C.E.mem in
  Util.check_ok "eager-track n=2"
    (C.explore_all_inputs ~prune ~max_configs:300_000 ())

let test_eager_track_random () =
  let (module B) = Baselines.Binary_track_consensus.make_eager ~n:5 ~cap:64 in
  let module C = Checker.Make (B) in
  Util.check_ok "eager-track n=5 random"
    (C.random_runs ~runs:10 ~max_steps:20_000 ())

let test_tas_track_exhaustive_n2 () =
  let (module B) = Baselines.Binary_track_consensus.make_tas ~n:2 ~cap:8 in
  let module C = Checker.Make (B) in
  let prune (c : C.E.config) = B.near_cap ~margin:3 c.C.E.mem in
  Util.check_ok "tas-track n=2"
    (C.explore_all_inputs ~prune ~max_configs:200_000 ());
  Alcotest.(check bool) "all objects are TAS" true
    (Array.for_all (fun k -> k = Shmem.Obj_kind.Test_and_set) B.objects)

let test_tas_track_random () =
  let (module B) = Baselines.Binary_track_consensus.make_tas ~n:4 ~cap:64 in
  let module C = Checker.Make (B) in
  Util.check_ok "tas-track n=4 random"
    (C.random_runs ~runs:10 ~max_steps:20_000 ())

let test_bitwise_bits_needed () =
  List.iter
    (fun (m, expect) ->
      Alcotest.(check int) (Fmt.str "bits for m=%d" m) expect
        (Baselines.Bitwise_consensus.bits_needed m))
    [ 2, 1; 3, 2; 4, 2; 5, 3; 8, 3; 9, 4 ]

let test_bitwise_exhaustive_n2 () =
  let n = 2 and m = 3 and cap = 6 in
  let (module P) = Baselines.Bitwise_consensus.make ~n ~m ~cap in
  let module C = Checker.Make (P) in
  let prune (c : C.E.config) =
    Baselines.Bitwise_consensus.near_cap ~n ~m ~cap ~margin:3 c.C.E.mem
  in
  Util.check_ok "bitwise n=2 m=3 inputs 02"
    (C.explore ~prune ~max_configs:300_000 ~inputs:[| 0; 2 |] ())

let test_bitwise_random () =
  let (module P) = Baselines.Bitwise_consensus.make ~n:4 ~m:5 ~cap:48 in
  let module C = Checker.Make (P) in
  Util.check_ok "bitwise n=4 m=5 random"
    (C.random_runs ~runs:10 ~max_steps:30_000 ())

let test_bitwise_decides_posted_value () =
  (* bursty runs decide, agree, and the decision is one of the inputs *)
  let (module P) = Baselines.Bitwise_consensus.make ~n:3 ~m:7 ~cap:32 in
  let module E = Shmem.Exec.Make (P) in
  let rng = Random.State.make [| 31 |] in
  for _ = 1 to 10 do
    let inputs = Array.init 3 (fun _ -> Random.State.int rng 7) in
    let c, _, outcome =
      E.run ~sched:(E.bursty rng ~burst:300) ~max_steps:200_000
        (E.initial ~inputs)
    in
    Alcotest.(check bool) "decided" true (outcome = E.All_decided);
    Alcotest.(check bool) "agreement" true (E.check_agreement c);
    Alcotest.(check bool) "validity" true (E.check_validity ~inputs c)
  done

let test_bitwise_all_binary_objects () =
  let (module P) = Baselines.Bitwise_consensus.make ~n:3 ~m:4 ~cap:8 in
  Alcotest.(check bool) "all objects are binary readable swap" true
    (Array.for_all
       (function
         | Shmem.Obj_kind.Readable_swap (Shmem.Obj_kind.Bounded 2) -> true
         | _ -> false)
       P.objects)

let test_cas_wait_free () =
  let (module P) = Baselines.Cas_consensus.make ~n:6 ~m:4 in
  let module E = Shmem.Exec.Make (P) in
  let inputs = [| 3; 1; 0; 2; 1; 3 |] in
  let c = E.initial ~inputs in
  (* every interleaving decides within 2 steps per process *)
  let c', trace, outcome = E.run ~sched:E.round_robin ~max_steps:100 c in
  Alcotest.(check bool) "all decided" true (outcome = E.All_decided);
  Alcotest.(check bool) "at most 2 steps each" true
    (List.for_all
       (fun pid -> Shmem.Trace.steps_by ~pid trace <= 2)
       (List.init 6 Fun.id));
  Alcotest.(check (list int)) "agreement on first value" [ 3 ]
    (E.decided_values c')

let test_cas_exhaustive () =
  let (module P) = Baselines.Cas_consensus.make ~n:3 ~m:3 in
  let module C = Checker.Make (P) in
  Util.check_ok "cas n=3" (C.explore_all_inputs ())

let test_two_proc_swap_exhaustive () =
  let (module P) = Core.Two_proc_swap.make ~m:4 in
  let module C = Checker.Make (P) in
  Util.check_ok "two-proc-swap" (C.explore_all_inputs ())

let test_pair_ksa_exhaustive () =
  let (module P) = Core.Pair_ksa.make ~n:4 ~m:3 in
  let module C = Checker.Make (P) in
  Util.check_ok "pair-ksa n=4" (C.explore_all_inputs ())

let test_pair_ksa_wait_free () =
  (* every process decides within one step (n-1-set agreement from a single
     swap object is wait-free) *)
  let (module P) = Core.Pair_ksa.make ~n:5 ~m:5 in
  let module E = Shmem.Exec.Make (P) in
  let c = E.initial ~inputs:[| 0; 1; 2; 3; 4 |] in
  let c', _, outcome = E.run ~sched:E.round_robin ~max_steps:10 c in
  Alcotest.(check bool) "all decided fast" true (outcome = E.All_decided);
  Alcotest.(check bool) "at most n-1 values" true
    (List.length (E.decided_values c') <= 4)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let find_name name =
  match Baselines.Registry.find name ~n:4 with
  | Ok e -> Ok e.Baselines.Registry.name
  | Error e -> Error e

let test_registry_find_exact () =
  Alcotest.(check (result string string))
    "exact name" (Ok "swap-ksa k=1") (find_name "swap-ksa k=1");
  (* an exact match wins even when it is also a prefix of another entry *)
  Alcotest.(check (result string string))
    "exact beats prefix" (Ok "binary-track") (find_name "binary-track")

let test_registry_find_unique_prefix () =
  Alcotest.(check (result string string))
    "unique prefix" (Ok "register-ksa k=1") (find_name "reg");
  Alcotest.(check (result string string))
    "unique prefix" (Ok "readable-swap") (find_name "read")

let test_registry_find_ambiguous_prefix () =
  (match find_name "swap-ksa" with
  | Error e ->
    Alcotest.(check bool)
      "message lists the matches" true
      (contains e "ambiguous"
      && contains e "swap-ksa k=1"
      && contains e "swap-ksa k=2")
  | Ok name -> Alcotest.failf "ambiguous prefix resolved to %S" name);
  match find_name "b" with
  | Error _ -> ()
  | Ok name -> Alcotest.failf "ambiguous prefix resolved to %S" name

let test_registry_find_unknown () =
  match find_name "nonesuch" with
  | Error e ->
    Alcotest.(check bool)
      "message lists available algorithms" true
      (contains e "unknown" && contains e "pair-ksa")
  | Ok name -> Alcotest.failf "unknown name resolved to %S" name

let () =
  Alcotest.run "baselines"
    [ ( "register-ksa",
        [ Alcotest.test_case "object count" `Quick test_register_object_count
        ; Alcotest.test_case "exhaustive n=2" `Slow test_register_exhaustive_n2
        ; Alcotest.test_case "exhaustive n=3 k=2" `Slow
            test_register_exhaustive_n3_k2
        ; Alcotest.test_case "random n=5 k=2" `Quick test_register_random
        ] )
    ; ( "readable-swap",
        [ Alcotest.test_case "object count" `Quick
            test_readable_swap_object_count
        ; Alcotest.test_case "exhaustive n=2" `Slow
            test_readable_swap_exhaustive_n2
        ; Alcotest.test_case "random n=6" `Quick test_readable_swap_random
        ] )
    ; ( "binary-track",
        [ Alcotest.test_case "exhaustive n=2" `Slow
            test_binary_track_exhaustive_n2
        ; Alcotest.test_case "exhaustive n=3" `Slow
            test_binary_track_exhaustive_n3
        ; Alcotest.test_case "random n=5" `Quick test_binary_track_random
        ; Alcotest.test_case "positions" `Quick test_binary_track_positions
        ; Alcotest.test_case "eager variant exhaustive n=2" `Slow
            test_eager_track_exhaustive_n2
        ; Alcotest.test_case "eager variant random n=5" `Quick
            test_eager_track_random
        ; Alcotest.test_case "TAS variant exhaustive n=2" `Slow
            test_tas_track_exhaustive_n2
        ; Alcotest.test_case "TAS variant random n=4" `Quick
            test_tas_track_random
        ] )
    ; ( "bitwise multivalued consensus",
        [ Alcotest.test_case "bits needed" `Quick test_bitwise_bits_needed
        ; Alcotest.test_case "exhaustive n=2 m=3" `Slow
            test_bitwise_exhaustive_n2
        ; Alcotest.test_case "random n=4 m=5" `Quick test_bitwise_random
        ; Alcotest.test_case "decides a posted value" `Quick
            test_bitwise_decides_posted_value
        ; Alcotest.test_case "binary objects only" `Quick
            test_bitwise_all_binary_objects
        ] )
    ; ( "one-object algorithms",
        [ Alcotest.test_case "cas wait-free" `Quick test_cas_wait_free
        ; Alcotest.test_case "cas exhaustive" `Quick test_cas_exhaustive
        ; Alcotest.test_case "two-proc swap exhaustive" `Quick
            test_two_proc_swap_exhaustive
        ; Alcotest.test_case "pair-ksa exhaustive" `Quick
            test_pair_ksa_exhaustive
        ; Alcotest.test_case "pair-ksa wait-free" `Quick
            test_pair_ksa_wait_free
        ] )
    ; ( "registry lookup",
        [ Alcotest.test_case "exact match" `Quick test_registry_find_exact
        ; Alcotest.test_case "unique prefix" `Quick
            test_registry_find_unique_prefix
        ; Alcotest.test_case "ambiguous prefix is an error" `Quick
            test_registry_find_ambiguous_prefix
        ; Alcotest.test_case "unknown name is an error" `Quick
            test_registry_find_unknown
        ] )
    ]
