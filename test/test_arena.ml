(* Tests for the long-running consensus service (lib/arena) and its
   substrate added alongside it: the swap-based intake queue, epoch
   stamps (Shmem.Epoch), the deterministic service kill plan
   (Fault.service_kill_plan), pool supervision (Supervisor.Pool), and
   the Service/Loadgen closed loop — recycling never resurrects residue,
   admission is deterministic under a fixed seed, work-stealing
   conserves clients, and kill-and-heal escalates to the degraded
   (k + c) bound instead of violating agreement. *)

module Epoch = Shmem.Epoch

let mk_swap_ksa () : Shmem.Protocol.t =
  let (module P) = Core.Swap_ksa.make ~n:3 ~k:1 ~m:2 in
  (module P)

(* ---------------------------------------------------------- intake *)

let test_intake_fifo () =
  let q = Arena.Intake.create () in
  Alcotest.(check bool) "fresh empty" true (Arena.Intake.is_empty q);
  List.iter (Arena.Intake.push q) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "length" 4 (Arena.Intake.length q);
  Alcotest.(check (list int)) "drain is FIFO" [ 1; 2; 3; 4 ]
    (Arena.Intake.drain q);
  Alcotest.(check (list int)) "drained empty" [] (Arena.Intake.drain q)

let test_intake_pop_lifo () =
  let q = Arena.Intake.create () in
  List.iter (Arena.Intake.push q) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "pop newest" (Some 3) (Arena.Intake.pop q);
  Alcotest.(check (option int)) "then next" (Some 2) (Arena.Intake.pop q);
  Arena.Intake.push q 9;
  Alcotest.(check (option int)) "interleaved push" (Some 9)
    (Arena.Intake.pop q);
  Alcotest.(check (option int)) "oldest last" (Some 1) (Arena.Intake.pop q);
  Alcotest.(check (option int)) "empty" None (Arena.Intake.pop q)

let test_intake_concurrent_conservation () =
  (* 4 producer domains, 1000 pushes each, tagged by producer: nothing
     lost, nothing duplicated *)
  let q = Arena.Intake.create () in
  let producers = 4 and per = 1000 in
  let doms =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              Arena.Intake.push q ((p * per) + i)
            done))
  in
  List.iter Domain.join doms;
  let got = Arena.Intake.drain q in
  Alcotest.(check int) "count" (producers * per) (List.length got);
  let seen = Array.make (producers * per) false in
  List.iter
    (fun x ->
      Alcotest.(check bool) "no duplicate" false seen.(x);
      seen.(x) <- true)
    got;
  Alcotest.(check bool) "all present" true (Array.for_all Fun.id seen)

(* ----------------------------------------------------------- epoch *)

let test_epoch_pack_unpack () =
  let s = Epoch.make ~slot:7 ~epoch:41 in
  Alcotest.(check int) "slot" 7 (Epoch.slot s);
  Alcotest.(check int) "epoch" 41 (Epoch.epoch s);
  let s' = Epoch.next s in
  Alcotest.(check int) "next keeps slot" 7 (Epoch.slot s');
  Alcotest.(check int) "next bumps epoch" 42 (Epoch.epoch s');
  Alcotest.(check bool) "stamps differ" false (Epoch.equal s s');
  Alcotest.(check bool) "roundtrip" true
    (Epoch.equal s (Epoch.of_int (Epoch.to_int s)));
  Alcotest.(check string) "pp" "7@41" (Fmt.str "%a" Epoch.pp s)

let test_epoch_validation () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "negative slot" true
    (raises (fun () -> Epoch.make ~slot:(-1) ~epoch:0));
  Alcotest.(check bool) "slot too large" true
    (raises (fun () -> Epoch.make ~slot:Epoch.max_slots ~epoch:0));
  Alcotest.(check bool) "negative epoch" true
    (raises (fun () -> Epoch.make ~slot:0 ~epoch:(-1)));
  Alcotest.(check bool) "epoch overflow on next" true
    (raises (fun () -> Epoch.next (Epoch.make ~slot:0 ~epoch:Epoch.max_epoch)));
  Alcotest.(check bool) "negative word" true
    (raises (fun () -> Epoch.of_int (-5)))

let prop_epoch_roundtrip =
  QCheck2.Test.make ~name:"epoch pack/unpack roundtrips" ~count:500
    QCheck2.Gen.(
      pair (int_range 0 (Epoch.max_slots - 1)) (int_range 0 1_000_000))
    (fun (slot, epoch) ->
      let s = Epoch.make ~slot ~epoch in
      Epoch.slot s = slot
      && Epoch.epoch s = epoch
      && Epoch.equal s (Epoch.of_int (Epoch.to_int s))
      && Epoch.epoch (Epoch.next s) = epoch + 1)

(* ------------------------------------------------------- kill plan *)

let test_kill_plan_deterministic () =
  let p1 = Fault.service_kill_plan ~seed:11 ~kill_every:3 () in
  let p2 = Fault.service_kill_plan ~seed:11 ~kill_every:3 () in
  for r = 0 to 199 do
    for i = 0 to 3 do
      Alcotest.(check (option int))
        (Fmt.str "round %d incarnation %d" r i)
        (p1 ~round:r ~incarnation:i)
        (p2 ~round:r ~incarnation:i)
    done
  done

let test_kill_plan_caps_incarnations () =
  let p =
    Fault.service_kill_plan ~seed:3 ~kill_every:1 ~max_incarnations:2 ()
  in
  for r = 0 to 99 do
    Alcotest.(check (option int))
      (Fmt.str "incarnation 2 spared (round %d)" r)
      None
      (p ~round:r ~incarnation:2)
  done

let test_kill_plan_rate_and_range () =
  let p = Fault.service_kill_plan ~seed:7 ~kill_every:4 ~max_point:16 () in
  let hits = ref 0 in
  for r = 0 to 999 do
    match p ~round:r ~incarnation:0 with
    | None -> ()
    | Some pt ->
      incr hits;
      Alcotest.(check bool) "point in range" true (pt >= 0 && pt < 16)
  done;
  (* roughly one in four; allow a generous band *)
  Alcotest.(check bool)
    (Fmt.str "hit rate plausible (%d/1000)" !hits)
    true
    (!hits > 100 && !hits < 450)

let test_kill_plan_validation () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "kill_every 0" true
    (raises (fun () -> Fault.service_kill_plan ~seed:0 ~kill_every:0 ()));
  Alcotest.(check bool) "max_point 0" true
    (raises (fun () ->
         Fault.service_kill_plan ~seed:0 ~kill_every:1 ~max_point:0 ()));
  Alcotest.(check bool) "negative incarnation cap" true
    (raises (fun () ->
         Fault.service_kill_plan ~seed:0 ~kill_every:1 ~max_incarnations:(-1)
           ()))

(* -------------------------------------------------- pool supervision *)

let test_pool_quiet () =
  let ran = Array.make 4 0 in
  let report =
    Supervisor.Pool.run ~workers:4 (fun ~slot ~incarnation ->
        Alcotest.(check int) "first incarnation" 0 incarnation;
        ran.(slot) <- ran.(slot) + 1)
  in
  Alcotest.(check (array int)) "every slot ran once" [| 1; 1; 1; 1 |] ran;
  Alcotest.(check (array int)) "no respawns" [| 0; 0; 0; 0 |] report.respawns;
  Alcotest.(check (list int)) "nobody gave up" [] report.gave_up

let test_pool_respawns_until_success () =
  (* slot 0 crashes twice then succeeds; the on_crash hook sees each
     death in incarnation order *)
  let crashes_seen = Arena.Intake.create () in
  let report =
    Supervisor.Pool.run ~workers:2 ~max_respawns:3
      ~on_crash:(fun ~slot ~incarnation _ ->
        Arena.Intake.push crashes_seen (slot, incarnation))
      (fun ~slot ~incarnation ->
        if slot = 0 && incarnation < 2 then failwith "boom")
  in
  Alcotest.(check int) "slot 0 respawned twice" 2 report.respawns.(0);
  Alcotest.(check int) "slot 1 quiet" 0 report.respawns.(1);
  Alcotest.(check (list int)) "nobody gave up" [] report.gave_up;
  Alcotest.(check (list (pair int int)))
    "crashes in incarnation order"
    [ (0, 0); (0, 1) ]
    (Arena.Intake.drain crashes_seen)

let test_pool_gives_up () =
  let report =
    Supervisor.Pool.run ~workers:1 ~max_respawns:1 (fun ~slot:_ ~incarnation:_ ->
        failwith "always")
  in
  Alcotest.(check (list int)) "slot abandoned" [ 0 ] report.gave_up;
  Alcotest.(check int) "breaker allowed 1 respawn" 1 report.respawns.(0);
  Alcotest.(check int) "both incarnations recorded" 2
    (List.length report.crashes)

let test_pool_validation () =
  (try
     ignore (Supervisor.Pool.run ~workers:0 (fun ~slot:_ ~incarnation:_ -> ()));
     Alcotest.fail "workers 0 accepted"
   with Invalid_argument _ -> ());
  try
    ignore
      (Supervisor.Pool.run ~workers:1 ~max_respawns:(-1)
         (fun ~slot:_ ~incarnation:_ -> ()));
    Alcotest.fail "negative budget accepted"
  with Invalid_argument _ -> ()

(* ----------------------------------------------------- service: quiet *)

let test_serve_quiet () =
  let (module P) = mk_swap_ksa () in
  let module S = Arena.Service.Make (P) in
  let s =
    S.serve ~clients:12 ~rounds:100 ~workers:2 ~seed:42 ~paranoid:true ()
  in
  Alcotest.(check int) "all rounds decided" 100 s.S.rounds_done;
  Alcotest.(check bool) "decisions delivered" true (s.S.decisions >= 100);
  Alcotest.(check int) "no violations" 0 s.S.violation_count;
  Alcotest.(check int) "no kills" 0 s.S.kills;
  Alcotest.(check int) "no residue" 0 s.S.residue;
  Alcotest.(check int) "quiet stays at k" P.k s.S.max_bound;
  (match s.S.conservation with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("conservation: " ^ e));
  Alcotest.(check bool) "summary ok" true (S.ok s);
  Alcotest.(check bool) "latency recorded" true
    (Arena.Service.Hist.count s.S.decide_hist = s.S.decisions)

let test_serve_validation () =
  let (module P) = mk_swap_ksa () in
  let module S = Arena.Service.Make (P) in
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "clients 0" true
    (raises (fun () -> S.serve ~clients:0 ~rounds:1 ~workers:1 ()));
  Alcotest.(check bool) "workers 0" true
    (raises (fun () -> S.serve ~clients:1 ~rounds:1 ~workers:0 ()));
  Alcotest.(check bool) "negative rounds" true
    (raises (fun () -> S.serve ~clients:1 ~rounds:(-1) ~workers:1 ()));
  Alcotest.(check bool) "arenas 0" true
    (raises (fun () -> S.serve ~clients:1 ~rounds:1 ~workers:1 ~arenas:0 ()))

(* ------------------------------------- service: admission determinism *)

let test_admission_deterministic () =
  let (module P) = mk_swap_ksa () in
  let module S = Arena.Service.Make (P) in
  let digest seed =
    (S.serve ~clients:10 ~rounds:60 ~workers:1 ~seed ()).S.digest
  in
  Alcotest.(check int) "same seed, same admission schedule" (digest 7)
    (digest 7);
  Alcotest.(check bool) "different seed diverges" true
    (digest 7 <> digest 8)

let prop_admission_deterministic_under_chaos =
  (* single worker + seeded kill-and-heal: two runs agree on the whole
     admission schedule (digest) and on every summary counter that is
     schedule-derived *)
  QCheck2.Test.make ~name:"single-worker serve is deterministic" ~count:10
    QCheck2.Gen.(pair (int_range 0 9999) (int_range 2 6))
    (fun (seed, kill_every) ->
      let (module P) = mk_swap_ksa () in
      let module S = Arena.Service.Make (P) in
      let run () =
        let kill = Fault.service_kill_plan ~seed ~kill_every () in
        S.serve ~clients:8 ~rounds:40 ~workers:1 ~seed ~kill ~paranoid:true
          ()
      in
      let a = run () and b = run () in
      a.S.digest = b.S.digest
      && a.S.kills = b.S.kills
      && a.S.escalated = b.S.escalated
      && a.S.decisions = b.S.decisions)

(* ---------------------------------- service: recycling and no residue *)

let prop_recycling_never_resurrects =
  (* seeded kill-and-heal schedules: every recycle hands out a clean
     arena (paranoid reset check), stamps never go stale, and the
     degraded contract holds — zero violations of any kind *)
  QCheck2.Test.make ~name:"epoch recycling leaves no residue" ~count:12
    QCheck2.Gen.(
      triple (int_range 0 9999) (int_range 1 5) (int_range 1 3))
    (fun (seed, kill_every, workers) ->
      let (module P) = mk_swap_ksa () in
      let module S = Arena.Service.Make (P) in
      let kill = Fault.service_kill_plan ~seed ~kill_every () in
      let s =
        S.serve ~clients:9 ~rounds:80 ~workers ~seed ~arenas:3 ~kill
          ~paranoid:true ()
      in
      s.S.residue = 0 && s.S.violation_count = 0 && s.S.rounds_done = 80)

(* --------------------------------- service: work-stealing conservation *)

let test_stealing_conserves_clients () =
  let (module P) = mk_swap_ksa () in
  let module S = Arena.Service.Make (P) in
  let kill = Fault.service_kill_plan ~seed:5 ~kill_every:3 () in
  let s =
    S.serve ~clients:24 ~rounds:300 ~workers:4 ~seed:5 ~kill ~paranoid:true
      ()
  in
  Alcotest.(check int) "target met" 300 s.S.rounds_done;
  (match s.S.conservation with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("conservation: " ^ e));
  Alcotest.(check int) "no violations" 0 s.S.violation_count;
  Alcotest.(check bool) "chaos actually fired" true (s.S.kills > 0);
  Alcotest.(check bool) "kills healed by adoption" true
    (s.S.adoptions >= s.S.kills - List.length s.S.gave_up);
  Alcotest.(check bool) "every decision delivered once" true
    (Arena.Service.Hist.count s.S.decide_hist = s.S.decisions)

(* ------------------------------------ service: degraded-bound contract *)

let test_escalation_matches_degraded_bound () =
  let (module P) = mk_swap_ksa () in
  let module S = Arena.Service.Make (P) in
  (* kill every round's incarnation 0 after a few ops; incarnation 1 is
     spared, so every round is adopted exactly once and at most one
     crashed incarnation touches memory per round — the service must
     check (and satisfy) exactly the supervisor's degraded bound
     [k + c] with [c <= 1], never a stricter or looser one *)
  let kill ~round:_ ~incarnation =
    if incarnation = 0 then Some 4 else None
  in
  let s =
    S.serve ~clients:9 ~rounds:60 ~workers:2 ~seed:13 ~kill ~paranoid:true ()
  in
  Alcotest.(check int) "target met" 60 s.S.rounds_done;
  Alcotest.(check int) "no violations at the degraded bound" 0
    s.S.violation_count;
  Alcotest.(check int) "every round killed once" 60 s.S.kills;
  Alcotest.(check int) "every round adopted" 60 s.S.adoptions;
  Alcotest.(check bool) "escalations recorded" true (s.S.escalated > 0);
  Alcotest.(check bool)
    (Fmt.str "bound within k + 1 (got %d)" s.S.max_bound)
    true
    (s.S.max_bound > P.k && s.S.max_bound <= P.k + 1);
  (* the same contract, stated through the runtime checker the
     supervisor uses: a (k + 1)-bound on this protocol admits two
     distinct decisions, a k-bound does not *)
  Alcotest.(check bool) "bound semantics agree with check_degraded" true
    (s.S.max_bound = P.k + 1)

(* --------------------------------------------------------- loadgen *)

let test_loadgen_profiles () =
  Alcotest.(check bool) "steady parses" true
    (match Arena.Loadgen.profile_of_string "steady" with
    | Ok Arena.Loadgen.Steady -> true
    | _ -> false);
  Alcotest.(check bool) "zero-think parses" true
    (match Arena.Loadgen.profile_of_string "zero-think" with
    | Ok Arena.Loadgen.Zero_think -> true
    | _ -> false);
  Alcotest.(check bool) "bursty parses" true
    (match Arena.Loadgen.profile_of_string "bursty" with
    | Ok Arena.Loadgen.Bursty -> true
    | _ -> false);
  Alcotest.(check bool) "junk rejected" true
    (match Arena.Loadgen.profile_of_string "nope" with
    | Error _ -> true
    | Ok _ -> false)

let test_loadgen_closed_loop () =
  let r =
    Arena.Loadgen.run ~protocol:(mk_swap_ksa ()) ~clients:12 ~rounds:120
      ~workers:2 ~seed:21 ~profile:Arena.Loadgen.Zero_think ()
  in
  Alcotest.(check int) "rounds met" 120 r.Arena.Loadgen.rounds;
  Alcotest.(check bool) "ok" true r.Arena.Loadgen.ok;
  Alcotest.(check bool) "throughput positive" true
    (r.Arena.Loadgen.decisions_per_sec > 0.);
  Alcotest.(check bool) "p99 >= p50" true
    (r.Arena.Loadgen.decide_p99_us >= r.Arena.Loadgen.decide_p50_us);
  (* render exercises every field *)
  Alcotest.(check bool) "report renders" true
    (String.length (Fmt.str "%a" Arena.Loadgen.pp r) > 0)

let test_loadgen_chaos_soak () =
  let r =
    Arena.Loadgen.run ~protocol:(mk_swap_ksa ()) ~clients:16 ~rounds:200
      ~workers:3 ~seed:33 ~kill_every:4 ~paranoid:true ()
  in
  Alcotest.(check bool) "ok under chaos" true r.Arena.Loadgen.ok;
  Alcotest.(check bool) "kills fired" true (r.Arena.Loadgen.kills > 0);
  Alcotest.(check int) "no violations" 0 r.Arena.Loadgen.violation_count;
  Alcotest.(check (option string)) "conservation holds" None
    r.Arena.Loadgen.conservation_error

(* ------------------------------------------------- service histograms *)

let test_hist_quantiles () =
  let h = Arena.Service.Hist.create () in
  Alcotest.(check (float 0.)) "empty quantile" 0.
    (Arena.Service.Hist.quantile h 0.99);
  for ns = 1 to 1000 do
    Arena.Service.Hist.observe h ns
  done;
  Alcotest.(check int) "count" 1000 (Arena.Service.Hist.count h);
  Alcotest.(check int) "max" 1000 (Arena.Service.Hist.max_ns h);
  let p50 = Arena.Service.Hist.quantile h 0.5 in
  let p99 = Arena.Service.Hist.quantile h 0.99 in
  Alcotest.(check bool) "monotone" true (p99 >= p50);
  Alcotest.(check bool) "p99 within max" true (p99 <= 1000.);
  Alcotest.(check bool)
    (Fmt.str "p50 near the middle (got %.0f)" p50)
    true
    (p50 >= 400. && p50 <= 1023.);
  (try
     ignore (Arena.Service.Hist.quantile h 1.5);
     Alcotest.fail "q > 1 accepted"
   with Invalid_argument _ -> ())

let () =
  Alcotest.run "arena"
    [ ( "intake",
        [ Alcotest.test_case "drain is FIFO" `Quick test_intake_fifo
        ; Alcotest.test_case "pop is LIFO" `Quick test_intake_pop_lifo
        ; Alcotest.test_case "concurrent pushes conserve" `Quick
            test_intake_concurrent_conservation
        ] )
    ; ( "epoch",
        [ Alcotest.test_case "pack/unpack" `Quick test_epoch_pack_unpack
        ; Alcotest.test_case "validation" `Quick test_epoch_validation
        ; QCheck_alcotest.to_alcotest prop_epoch_roundtrip
        ] )
    ; ( "kill-plan",
        [ Alcotest.test_case "deterministic" `Quick
            test_kill_plan_deterministic
        ; Alcotest.test_case "incarnation cap" `Quick
            test_kill_plan_caps_incarnations
        ; Alcotest.test_case "rate and range" `Quick
            test_kill_plan_rate_and_range
        ; Alcotest.test_case "validation" `Quick test_kill_plan_validation
        ] )
    ; ( "pool",
        [ Alcotest.test_case "quiet run" `Quick test_pool_quiet
        ; Alcotest.test_case "respawns until success" `Quick
            test_pool_respawns_until_success
        ; Alcotest.test_case "breaker gives up" `Quick test_pool_gives_up
        ; Alcotest.test_case "validation" `Quick test_pool_validation
        ] )
    ; ( "service",
        [ Alcotest.test_case "quiet serve" `Quick test_serve_quiet
        ; Alcotest.test_case "validation" `Quick test_serve_validation
        ; Alcotest.test_case "admission deterministic" `Quick
            test_admission_deterministic
        ; QCheck_alcotest.to_alcotest
            prop_admission_deterministic_under_chaos
        ; QCheck_alcotest.to_alcotest prop_recycling_never_resurrects
        ; Alcotest.test_case "work-stealing conserves clients" `Quick
            test_stealing_conserves_clients
        ; Alcotest.test_case "escalation matches degraded bound" `Quick
            test_escalation_matches_degraded_bound
        ] )
    ; ( "loadgen",
        [ Alcotest.test_case "profiles" `Quick test_loadgen_profiles
        ; Alcotest.test_case "closed loop" `Quick test_loadgen_closed_loop
        ; Alcotest.test_case "chaos soak" `Quick test_loadgen_chaos_soak
        ] )
    ; ( "hist",
        [ Alcotest.test_case "quantiles" `Quick test_hist_quantiles ] )
    ]
