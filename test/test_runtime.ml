(* Tests for the generic multicore backend (lib/runtime): atomic cells
   realize each object kind, every multicore_runnable registry entry
   executes on real domains with k-agreement and validity, the generic
   runtime agrees with the hand-optimized Algorithm 1, recorded histories
   linearize, and a deliberately torn exchange is caught. *)

module V = Shmem.Value
module K = Shmem.Obj_kind
module Op = Shmem.Op

let value = Alcotest.testable V.pp V.equal

(* ------------------------------------------------------------- cells *)

let test_cell_register () =
  let c = Runtime.Cell.make (K.Register K.Unbounded) V.Bot in
  Alcotest.check value "read initial" V.Bot (Runtime.Cell.apply c Op.Read);
  Alcotest.check value "write returns unit" V.Unit
    (Runtime.Cell.apply c (Op.Write (V.Int 7)));
  Alcotest.check value "read back" (V.Int 7) (Runtime.Cell.apply c Op.Read)

let test_cell_swap () =
  let c = Runtime.Cell.make (K.Swap_only K.Unbounded) (V.Int 0) in
  Alcotest.check value "swap returns previous" (V.Int 0)
    (Runtime.Cell.apply c (Op.Swap (V.Int 5)));
  Alcotest.check value "swaps chain" (V.Int 5)
    (Runtime.Cell.apply c (Op.Swap (V.Int 9)));
  Alcotest.check value "peek" (V.Int 9) (Runtime.Cell.peek c)

let test_cell_tas () =
  let c = Runtime.Cell.make K.Test_and_set V.zero in
  Alcotest.check value "first TAS wins" V.zero
    (Runtime.Cell.apply c (Op.Swap V.one));
  Alcotest.check value "second TAS loses" V.one
    (Runtime.Cell.apply c (Op.Swap V.one));
  let r = Runtime.Cell.make K.Test_and_set_reset V.zero in
  Alcotest.check value "TAS" V.zero (Runtime.Cell.apply r (Op.Swap V.one));
  Alcotest.check value "reset" V.Unit
    (Runtime.Cell.apply r (Op.Write V.zero));
  Alcotest.check value "TAS wins again after reset" V.zero
    (Runtime.Cell.apply r (Op.Swap V.one))

let test_cell_cas_structural () =
  (* [Atomic.compare_and_set] compares physically; the runtime must CAS
     structurally, so a freshly allocated (structurally equal) expected
     value has to succeed *)
  let stored () = V.Pair (V.ints [| 1; 2 |], V.Pid 0) in
  let c = Runtime.Cell.make (K.Compare_and_swap K.Unbounded) (stored ()) in
  Alcotest.check value "fresh expected succeeds" V.one
    (Runtime.Cell.apply c (Op.Cas (stored (), V.Int 3)));
  Alcotest.check value "installed" (V.Int 3) (Runtime.Cell.apply c Op.Read);
  Alcotest.check value "stale expected fails" V.zero
    (Runtime.Cell.apply c (Op.Cas (stored (), V.Int 9)));
  Alcotest.check value "unchanged on failure" (V.Int 3)
    (Runtime.Cell.apply c Op.Read)

let test_cell_illegal_ops () =
  let reg = Runtime.Cell.make (K.Register K.Unbounded) V.Bot in
  (try
     ignore (Runtime.Cell.apply reg (Op.Swap (V.Int 1)));
     Alcotest.fail "register accepted Swap"
   with K.Illegal_operation _ -> ());
  let swap = Runtime.Cell.make (K.Swap_only K.Unbounded) V.Bot in
  (try
     ignore (Runtime.Cell.apply swap Op.Read);
     Alcotest.fail "swap-only accepted Read"
   with K.Illegal_operation _ -> ());
  let bounded = Runtime.Cell.make (K.Register (K.Bounded 2)) V.zero in
  try
    ignore (Runtime.Cell.apply bounded (Op.Write (V.Int 5)));
    Alcotest.fail "bounded register accepted out-of-domain write"
  with K.Illegal_operation _ -> ()

(* ---------------------------------------------------- registry entries *)

let runnable ~n =
  List.filter
    (fun (e : Baselines.Registry.entry) ->
      e.Baselines.Registry.multicore_runnable)
    (Baselines.Registry.standard ~n ())

let test_registry_runnable_entries n () =
  List.iter
    (fun (e : Baselines.Registry.entry) ->
      let (module P : Shmem.Protocol.S) = e.Baselines.Registry.protocol in
      let module R = Runtime.Make (P) in
      for seed = 1 to 3 do
        let rng = Random.State.make [| seed; P.n |] in
        let inputs =
          Array.init P.n (fun _ -> Random.State.int rng P.num_inputs)
        in
        let o = R.run ~inputs ~seed () in
        match R.check ~inputs o with
        | Ok () -> ()
        | Error err ->
          Alcotest.fail
            (Fmt.str "%s (n=%d seed=%d): %s" e.Baselines.Registry.name P.n
               seed err)
      done)
    (runnable ~n)

let test_registry_flags () =
  (* the unconditional obstruction-free / wait-free algorithms run on real
     domains; the cap-bounded unary-track constructions stay simulated *)
  let entries = Baselines.Registry.standard ~n:4 () in
  let names ok =
    List.filter_map
      (fun (e : Baselines.Registry.entry) ->
        if e.Baselines.Registry.multicore_runnable = ok then
          Some e.Baselines.Registry.name
        else None)
      entries
  in
  Alcotest.(check (list string))
    "runnable"
    [ "swap-ksa k=1"; "swap-ksa k=2"; "register-ksa k=1"; "readable-swap"
    ; "grouped-ksa"; "cas"; "pair-ksa"
    ]
    (names true);
  Alcotest.(check (list string))
    "simulator-only"
    [ "binary-track"; "binary-track eager"; "tas-track"; "bitwise" ]
    (names false)

(* --------------------------------------------------------- differential *)

let test_differential_swap_ksa () =
  (* the same protocol instance through the hand-optimized backend and the
     generic runtime: both satisfy the k-set agreement spec on every input
     vector, and on uniform vectors (where the decision is forced by
     validity) they agree exactly *)
  let n = 4 and k = 1 and m = 2 in
  let (module P) = Core.Swap_ksa.make ~n ~k ~m in
  let module R = Runtime.Make (P) in
  Alcotest.(check int)
    "both backends use n-k objects" (n - k)
    (Array.length P.objects);
  for seed = 0 to 4 do
    let rng = Random.State.make [| seed |] in
    let inputs = Array.init n (fun _ -> Random.State.int rng m) in
    let hand = Multicore.Swap_ksa_mc.run ~n ~k ~m ~inputs ~seed () in
    (match Multicore.Swap_ksa_mc.check ~inputs ~k hand with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Fmt.str "hand seed=%d: %s" seed e));
    let generic = R.run ~inputs ~seed () in
    (match R.check ~inputs generic with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Fmt.str "generic seed=%d: %s" seed e));
    (* a full Algorithm 1 pass is n-k swaps on either backend *)
    Alcotest.(check bool) "generic took at least one pass each" true
      (Array.for_all (fun ops -> ops >= n - k) generic.R.ops);
    let uniform = Array.make n (seed mod m) in
    let hand_u = Multicore.Swap_ksa_mc.run ~n ~k ~m ~inputs:uniform ~seed () in
    let generic_u = R.run ~inputs:uniform ~seed () in
    Alcotest.(check (array int))
      (Fmt.str "uniform inputs force the decision (seed=%d)" seed)
      hand_u.Multicore.Swap_ksa_mc.decisions generic_u.R.decisions
  done

(* ----------------------------------------------------------- histories *)

let test_histories_linearizable () =
  (* wait-free protocols keep per-object histories short enough for the
     Wing & Gong search; every recorded history must linearize *)
  List.iter
    (fun protocol ->
      let (module P : Shmem.Protocol.S) = protocol in
      let module R = Runtime.Make (P) in
      let inputs = Array.init P.n (fun i -> i mod P.num_inputs) in
      let o = R.run ~inputs ~record:true () in
      (match R.check ~inputs o with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Fmt.str "%s: %s" P.name e));
      match R.check_histories o with
      | Ok (checked, skipped) ->
        Alcotest.(check bool)
          (Fmt.str "%s: checked some history" P.name)
          true (checked >= 1);
        Alcotest.(check int)
          (Fmt.str "%s: nothing silently skipped" P.name)
          0 skipped
      | Error e -> Alcotest.fail (Fmt.str "%s: %s" P.name e))
    [ Baselines.Cas_consensus.make ~n:3 ~m:2
    ; Baselines.Grouped_ksa.make ~n:4 ~k:2 ~m:2
    ; Core.Pair_ksa.make ~n:4 ~m:2
    ]

let test_histories_off_by_default () =
  let (module P : Shmem.Protocol.S) = Core.Pair_ksa.make ~n:3 ~m:2 in
  let module R = Runtime.Make (P) in
  let o = R.run ~inputs:[| 0; 1; 0 |] () in
  Alcotest.(check bool) "no events recorded" true
    (Array.for_all (fun h -> h = []) o.R.histories)

(* ------------------------------------------------------------- mutation *)

(* a deliberately broken exchange: read, linger, write — loses updates *)
let torn_exchange cell v =
  let old = Atomic.get cell in
  for _ = 1 to 500 do
    Domain.cpu_relax ()
  done;
  Atomic.set cell v;
  old

let swap_gen ~thread ~step rng =
  if Random.State.bool rng then Op.Read
  else Op.Swap (V.Int ((thread * 100) + step))

let swap_kind = K.Readable_swap K.Unbounded

let test_real_exchange_cell_linearizable () =
  for seed = 0 to 9 do
    let h =
      Runtime.record_cell ~kind:swap_kind ~init:(V.Int 0) ~threads:3
        ~ops_per_thread:5 ~seed ~gen:swap_gen ()
    in
    match Linearize.Obj_history.explain ~kind:swap_kind ~init:(V.Int 0) h with
    | Ok order ->
      Alcotest.(check int) "witness covers all events" (List.length h)
        (List.length order)
    | Error e -> Alcotest.fail (Fmt.str "seed %d: %s" seed e)
  done

let test_torn_exchange_cell_caught () =
  (* under contention the torn exchange produces non-linearizable
     histories of the runtime's cells; each trial is racy, so try many *)
  let caught = ref false in
  let seed = ref 0 in
  while (not !caught) && !seed < 200 do
    let h =
      Runtime.record_cell ~kind:swap_kind ~init:(V.Int 0) ~threads:4
        ~ops_per_thread:6 ~seed:!seed ~exchange:torn_exchange ~gen:swap_gen
        ()
    in
    if not (Linearize.Obj_history.linearizable ~kind:swap_kind ~init:(V.Int 0) h)
    then caught := true;
    incr seed
  done;
  Alcotest.(check bool) "torn exchange caught within 200 trials" true !caught

(* ----------------------------------------------------------- validation *)

let test_input_validation () =
  let (module P : Shmem.Protocol.S) = Core.Pair_ksa.make ~n:3 ~m:2 in
  let module R = Runtime.Make (P) in
  (try
     ignore (R.run ~inputs:[| 0; 1 |] ());
     Alcotest.fail "accepted wrong input count"
   with Invalid_argument _ -> ());
  (try
     ignore (R.run ~inputs:[| 0; 1; 7 |] ());
     Alcotest.fail "accepted out-of-range input"
   with Invalid_argument _ -> ());
  try
    ignore (R.run ~inputs:[| 0; 1; 0 |] ~backoff_window:0 ());
    Alcotest.fail "accepted backoff_window = 0"
  with Invalid_argument _ -> ()

let test_check_rejects_bad_outcomes () =
  let (module P) = Core.Swap_ksa.make ~n:2 ~k:1 ~m:2 in
  let module R = Runtime.Make (P) in
  let outcome decisions =
    { R.decisions
    ; statuses =
        Array.map (fun d -> if d >= 0 then R.Decided else R.Timed_out) decisions
    ; ops = [| 1; 1 |]
    ; backoffs = [| 0; 0 |]
    ; elapsed = 0.
    ; histories = [||]
    ; finals = [| None; None |]
    ; mem = [||]
    }
  in
  (match R.check ~inputs:[| 0; 1 |] (outcome [| 0; 1 |]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted 2 values for k=1");
  (match R.check ~inputs:[| 0; 0 |] (outcome [| 1; 1 |]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted invalid value");
  match R.check ~inputs:[| 0; 1 |] (outcome [| 0; -1 |]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted an undecided process"

(* ----------------------------------------------------------- degradation *)

let test_crash_injection_statuses () =
  let (module P) = Core.Swap_ksa.make ~n:4 ~k:1 ~m:2 in
  let module R = Runtime.Make (P) in
  let inputs = [| 0; 1; 0; 1 |] in
  let o = R.run ~inputs ~seed:5 ~crash_at:[ 1, 2; 3, 0 ] ~deadline:30. () in
  Alcotest.(check bool) "p1 crashed" true (o.R.statuses.(1) = R.Crashed_injected);
  Alcotest.(check bool) "p3 crashed" true (o.R.statuses.(3) = R.Crashed_injected);
  Alcotest.(check int) "p3 took no ops" 0 o.R.ops.(3);
  Alcotest.(check bool) "p1 halted at its crash point" true (o.R.ops.(1) <= 2);
  Alcotest.(check bool) "p1 undecided" true (o.R.decisions.(1) = -1);
  (* obstruction-freedom: the survivors still decide *)
  List.iter
    (fun pid ->
      Alcotest.(check bool)
        (Fmt.str "p%d decided" pid)
        true
        (o.R.statuses.(pid) = R.Decided && o.R.decisions.(pid) >= 0))
    [ 0; 2 ];
  (match R.check_degraded ~inputs o with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* the plain check must reject the crashed processes *)
  match R.check ~inputs o with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "check accepted crashed processes"

let test_crash_all_processes () =
  let (module P) = Core.Swap_ksa.make ~n:3 ~k:1 ~m:2 in
  let module R = Runtime.Make (P) in
  let inputs = [| 0; 1; 1 |] in
  let o =
    R.run ~inputs ~seed:1 ~crash_at:[ 0, 0; 1, 0; 2, 0 ] ~deadline:30. ()
  in
  Array.iteri
    (fun pid st ->
      Alcotest.(check bool)
        (Fmt.str "p%d crashed" pid)
        true (st = R.Crashed_injected))
    o.R.statuses;
  Alcotest.(check (array int)) "nobody decided" [| -1; -1; -1 |] o.R.decisions;
  (* vacuously fine: every process crashed, none mis-decided *)
  match R.check_degraded ~inputs o with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_stall_injection_still_decides () =
  let (module P) = Core.Swap_ksa.make ~n:4 ~k:1 ~m:2 in
  let module R = Runtime.Make (P) in
  let inputs = [| 1; 0; 1; 0 |] in
  let o =
    R.run ~inputs ~seed:9 ~stalls:[ 0, 1, 5_000; 2, 3, 10_000 ] ~deadline:30.
      ()
  in
  Array.iteri
    (fun pid st ->
      Alcotest.(check bool)
        (Fmt.str "p%d decided despite stalls" pid)
        true (st = R.Decided))
    o.R.statuses;
  match R.check ~inputs o with Ok () -> () | Error e -> Alcotest.fail e

let test_deadline_times_out_without_raise () =
  (* a protocol that can never decide: swap-ksa needs a 2-lap lead, which
     an immediate deadline prevents any process from reaching; the watchdog
     must wind every domain down with Timed_out — no exception, and the
     partial per-process data is still returned *)
  let (module P) = Core.Swap_ksa.make ~n:4 ~k:1 ~m:2 in
  let module R = Runtime.Make (P) in
  let inputs = [| 0; 1; 0; 1 |] in
  (* backoff_window:1 polls the watchdog at every operation, so the expired
     deadline is observed before anyone can accumulate the 2-lap lead *)
  let o = R.run ~inputs ~seed:3 ~deadline:0.000001 ~backoff_window:1 () in
  Array.iteri
    (fun pid st ->
      Alcotest.(check bool)
        (Fmt.str "p%d timed out" pid)
        true (st = R.Timed_out))
    o.R.statuses;
  Alcotest.(check bool) "partial op counts returned" true
    (Array.exists (fun n -> n > 0) o.R.ops);
  match R.check_degraded ~inputs o with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "check_degraded accepted a timeout"

let test_max_ops_times_out_without_raise () =
  let (module P) = Core.Swap_ksa.make ~n:4 ~k:1 ~m:2 in
  let module R = Runtime.Make (P) in
  let inputs = [| 0; 1; 0; 1 |] in
  (* too few operations to finish a pass, let alone decide *)
  let o = R.run ~inputs ~seed:3 ~max_ops:1 ~deadline:30. () in
  Array.iteri
    (fun pid st ->
      Alcotest.(check bool)
        (Fmt.str "p%d timed out" pid)
        true
        (st = R.Timed_out);
      Alcotest.(check bool)
        (Fmt.str "p%d stopped at the budget" pid)
        true
        (o.R.ops.(pid) <= 1))
    o.R.statuses

let test_faulting_domain_joined_and_reported () =
  (* an exchange primitive that blows up: every domain faults, yet run
     returns normally with Faulted statuses — no exception crosses the
     domain boundary, every domain is joined *)
  let (module P) = Core.Swap_ksa.make ~n:3 ~k:1 ~m:2 in
  let module R = Runtime.Make (P) in
  let inputs = [| 0; 1; 0 |] in
  let o =
    R.run ~inputs ~seed:2 ~deadline:30.
      ~exchange:(fun _ _ -> failwith "injected cell fault")
      ()
  in
  Array.iteri
    (fun pid st ->
      match st with
      | R.Faulted (Failure msg) ->
        Alcotest.(check string)
          (Fmt.str "p%d fault detail" pid)
          "injected cell fault" msg
      | st ->
        Alcotest.fail (Fmt.str "p%d: unexpected status %a" pid R.pp_status st))
    o.R.statuses;
  match R.check_degraded ~inputs o with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "check_degraded accepted faulted processes"

let test_fault_point_validation () =
  let (module P) = Core.Swap_ksa.make ~n:3 ~k:1 ~m:2 in
  let module R = Runtime.Make (P) in
  let inputs = [| 0; 1; 0 |] in
  (try
     ignore (R.run ~inputs ~crash_at:[ 7, 0 ] ());
     Alcotest.fail "accepted out-of-range crash pid"
   with Invalid_argument _ -> ());
  (try
     ignore (R.run ~inputs ~stalls:[ 0, 1, 0 ] ());
     Alcotest.fail "accepted zero-length stall"
   with Invalid_argument _ -> ());
  try
    ignore (R.run ~inputs ~deadline:(-1.) ());
    Alcotest.fail "accepted negative deadline"
  with Invalid_argument _ -> ()

(* --------------------------------------------- qcheck: check_degraded *)

(* random partial outcomes at n = 3..5 held against an independent
   reference predicate: [check_degraded ~bound] must accept exactly the
   outcomes where every non-decided process was an injected crash, at
   most [bound] distinct values were decided, and every decided value is
   some process's input.  The generator draws statuses and decisions
   independently (including nonsense like a decided process with no
   decision), so the mirror has to agree on the weird corners too; a
   second property checks the supervisor-facing monotonicity — loosening
   the bound never turns an accepted outcome into a rejected one. *)
let degraded_case_gen =
  QCheck2.Gen.(
    int_range 3 5 >>= fun n ->
    int_range 0 (n - 1) >>= fun extra ->
    list_repeat n (int_bound 1) >>= fun inputs ->
    let status =
      frequency
        [ 5, return `Decided; 2, return `Crashed; 1, return `Timed_out
        ; 1, return `Faulted
        ]
    in
    list_repeat n (pair status (int_range (-1) 2)) >>= fun procs ->
    return (n, extra, inputs, procs))

(* the checker only inspects statuses and decisions; everything else is a
   neutral filler (checked per-instantiation because the outcome type is
   functor-dependent — see [degraded_check] below) *)
let reference_degraded ~bound ~inputs procs =
  let survivors_ok =
    List.for_all
      (fun (s, _) -> match s with `Decided | `Crashed -> true | _ -> false)
      procs
  in
  let distinct =
    List.filter_map (fun (_, d) -> if d >= 0 then Some d else None) procs
    |> List.sort_uniq compare
  in
  survivors_ok
  && List.length distinct <= bound
  && List.for_all (fun v -> List.mem v inputs) distinct

(* [Ok] iff [check_degraded ~bound] accepted the synthetic outcome *)
let degraded_check ~n ~bound ~inputs procs =
  let (module P) = Core.Swap_ksa.make ~n ~k:1 ~m:2 in
  let module R = Runtime.Make (P) in
  let statuses =
    Array.of_list
      (List.map
         (fun (s, _) ->
           match s with
           | `Decided -> R.Decided
           | `Crashed -> R.Crashed_injected
           | `Timed_out -> R.Timed_out
           | `Faulted -> R.Faulted (Failure "injected"))
         procs)
  in
  let outcome =
    { R.decisions = Array.of_list (List.map snd procs)
    ; statuses
    ; ops = Array.make n 0
    ; backoffs = Array.make n 0
    ; elapsed = 0.
    ; histories = [||]
    ; finals = Array.make n None
    ; mem = [||]
    }
  in
  Result.is_ok
    (R.check_degraded ~bound ~inputs:(Array.of_list inputs) outcome)

let qcheck_degraded_reference =
  QCheck2.Test.make ~name:"check_degraded ~bound = reference predicate"
    ~count:1000 degraded_case_gen (fun (n, extra, inputs, procs) ->
      let bound = 1 + extra in
      degraded_check ~n ~bound ~inputs procs
      = reference_degraded ~bound ~inputs procs)

let qcheck_degraded_monotone =
  QCheck2.Test.make ~name:"check_degraded monotone in the bound"
    ~count:1000 degraded_case_gen (fun (n, extra, inputs, procs) ->
      let ok b = degraded_check ~n ~bound:b ~inputs procs in
      (not (ok (1 + extra))) || ok (1 + extra + 1))

let test_degraded_bound_validation () =
  try
    ignore
      (degraded_check ~n:3 ~bound:0 ~inputs:[ 0; 0; 0 ]
         [ `Decided, 0; `Decided, 0; `Decided, 0 ]);
    Alcotest.fail "accepted bound < k"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "runtime"
    [ ( "cells",
        [ Alcotest.test_case "register" `Quick test_cell_register
        ; Alcotest.test_case "swap" `Quick test_cell_swap
        ; Alcotest.test_case "test-and-set (+reset)" `Quick test_cell_tas
        ; Alcotest.test_case "structural CAS" `Quick test_cell_cas_structural
        ; Alcotest.test_case "illegal operations" `Quick test_cell_illegal_ops
        ] )
    ; ( "registry on real domains",
        [ Alcotest.test_case "capability flags" `Quick test_registry_flags
        ; Alcotest.test_case "n=2" `Quick (test_registry_runnable_entries 2)
        ; Alcotest.test_case "n=4" `Quick (test_registry_runnable_entries 4)
        ; Alcotest.test_case "n=6" `Quick (test_registry_runnable_entries 6)
        ] )
    ; ( "differential",
        [ Alcotest.test_case "hand-optimized vs generic Algorithm 1" `Quick
            test_differential_swap_ksa
        ] )
    ; ( "histories",
        [ Alcotest.test_case "wait-free runs linearize" `Quick
            test_histories_linearizable
        ; Alcotest.test_case "recording off by default" `Quick
            test_histories_off_by_default
        ; Alcotest.test_case "real exchange linearizable" `Quick
            test_real_exchange_cell_linearizable
        ; Alcotest.test_case "torn exchange caught" `Quick
            test_torn_exchange_cell_caught
        ] )
    ; ( "validation",
        [ Alcotest.test_case "input validation" `Quick test_input_validation
        ; Alcotest.test_case "check rejects bad outcomes" `Quick
            test_check_rejects_bad_outcomes
        ] )
    ; ( "graceful degradation",
        [ Alcotest.test_case "crash injection statuses" `Quick
            test_crash_injection_statuses
        ; Alcotest.test_case "crashing every process" `Quick
            test_crash_all_processes
        ; Alcotest.test_case "stall injection still decides" `Quick
            test_stall_injection_still_decides
        ; Alcotest.test_case "deadline times out without raise" `Quick
            test_deadline_times_out_without_raise
        ; Alcotest.test_case "op budget times out without raise" `Quick
            test_max_ops_times_out_without_raise
        ; Alcotest.test_case "faulting domains joined and reported" `Quick
            test_faulting_domain_joined_and_reported
        ; Alcotest.test_case "fault point validation" `Quick
            test_fault_point_validation
        ] )
    ; ( "degraded-check qcheck",
        [ QCheck_alcotest.to_alcotest qcheck_degraded_reference
        ; QCheck_alcotest.to_alcotest qcheck_degraded_monotone
        ; Alcotest.test_case "bound validation" `Quick
            test_degraded_bound_validation
        ] )
    ]
