(* The parametric conformance suite: every algorithm in the registry is
   pushed through the same battery — structural validation, randomized
   safety, bursty termination, solo validity, and (at n = 2) bounded
   exhaustive checking.  Adding a protocol to [Baselines.Registry] enrolls
   it here automatically. *)

let with_entry (e : Baselines.Registry.entry) f =
  let (module P : Shmem.Protocol.S) = e.Baselines.Registry.protocol in
  f (module P : Shmem.Protocol.S)

let test_structure (e : Baselines.Registry.entry) () =
  with_entry e (fun (module P) ->
      Shmem.Protocol.validate (module P);
      Alcotest.(check bool) "has objects" true (Array.length P.objects > 0);
      Alcotest.(check bool) "k in range" true (P.k >= 1))

let test_random_safety (e : Baselines.Registry.entry) () =
  with_entry e (fun (module P) ->
      let module C = Checker.Make (P) in
      Util.check_ok e.Baselines.Registry.name
        (C.random_runs ~runs:5 ~max_steps:10_000 ()))

let test_bursty_termination (e : Baselines.Registry.entry) () =
  with_entry e (fun (module P) ->
      let module E = Shmem.Exec.Make (P) in
      let rng = Random.State.make [| 3 |] in
      for _ = 1 to 5 do
        let inputs =
          Array.init P.n (fun _ -> Random.State.int rng P.num_inputs)
        in
        let c, _, outcome =
          E.run
            ~sched:(E.bursty rng ~burst:e.Baselines.Registry.burst)
            ~max_steps:400_000 (E.initial ~inputs)
        in
        Alcotest.(check bool)
          (Fmt.str "%s decides" e.Baselines.Registry.name)
          true (outcome = E.All_decided);
        Alcotest.(check bool) "agreement" true (E.check_agreement c);
        Alcotest.(check bool) "validity" true (E.check_validity ~inputs c)
      done)

let test_solo_validity (e : Baselines.Registry.entry) () =
  with_entry e (fun (module P) ->
      (* a process running alone from an initial configuration must decide
         its own input (validity plus solo termination) *)
      let module E = Shmem.Exec.Make (P) in
      List.iter
        (fun pid ->
          let inputs = Array.init P.n (fun i -> i mod P.num_inputs) in
          let c = E.initial ~inputs in
          if E.decision c pid = None then
            match E.run_solo ~pid ~max_steps:100_000 c with
            | None ->
              Alcotest.fail
                (Fmt.str "%s: p%d stuck solo" e.Baselines.Registry.name pid)
            | Some (c', _) ->
              Alcotest.(check (option int))
                (Fmt.str "%s: p%d decides its input" e.Baselines.Registry.name
                   pid)
                (Some inputs.(pid)) (E.decision c' pid))
        [ 0; P.n - 1 ])

let test_multicore_backend (e : Baselines.Registry.entry) () =
  with_entry e (fun (module P) ->
      (* the same protocol definition on the other backend: real domains
         over atomic objects via the generic runtime *)
      let module R = Runtime.Make (P) in
      let rng = Random.State.make [| 7; P.n |] in
      let inputs =
        Array.init P.n (fun _ -> Random.State.int rng P.num_inputs)
      in
      let o = R.run ~inputs ~seed:7 () in
      match R.check ~inputs o with
      | Ok () -> ()
      | Error err ->
        Alcotest.fail
          (Fmt.str "%s on real domains: %s" e.Baselines.Registry.name err))

let test_exhaustive_n2 (e : Baselines.Registry.entry) () =
  with_entry e (fun (module P) ->
      let module C = Checker.Make (P) in
      let prune (c : C.E.config) = e.Baselines.Registry.prune c.C.E.mem in
      Util.check_ok e.Baselines.Registry.name
        (C.explore_all_inputs ~prune ~max_configs:150_000 ()))

let () =
  let battery n =
    List.concat_map
      (fun (e : Baselines.Registry.entry) ->
        let name suffix = Fmt.str "%s %s" e.Baselines.Registry.name suffix in
        [ Alcotest.test_case (name "structure") `Quick (test_structure e)
        ; Alcotest.test_case (name "random safety") `Quick
            (test_random_safety e)
        ; Alcotest.test_case (name "bursty termination") `Quick
            (test_bursty_termination e)
        ; Alcotest.test_case (name "solo validity") `Quick
            (test_solo_validity e)
        ]
        @ (if e.Baselines.Registry.multicore_runnable then
             [ Alcotest.test_case (name "multicore backend") `Quick
                 (test_multicore_backend e)
             ]
           else [])
        @
        if n = 2 then
          [ Alcotest.test_case (name "exhaustive") `Slow (test_exhaustive_n2 e) ]
        else [])
      (Baselines.Registry.standard ~n ())
  in
  Alcotest.run "conformance"
    [ "n=2", battery 2; "n=4", battery 4; "n=6", battery 6 ]
