(* Mutation tests for the model checker: deliberately broken protocols must
   be caught, and the counterexample traces must replay to a violating
   configuration.  Without these, "checker says ok" would be untrustworthy. *)

let find_violation property report =
  List.find_opt
    (fun v -> String.equal v.Checker.property property)
    report.Checker.violations

let test_catches_agreement_violation () =
  let (module P) = Util.stubborn_protocol () in
  let module C = Checker.Make (P) in
  let report = C.explore ~inputs:[| 0; 1 |] () in
  match find_violation "k-agreement" report with
  | None -> Alcotest.fail "stubborn protocol passed the checker"
  | Some v ->
    (* the counterexample schedule must replay to a violating config *)
    let module E = Shmem.Exec.Make (P) in
    let c = E.replay (E.initial ~inputs:[| 0; 1 |]) v.Checker.trace in
    Alcotest.(check bool) "replayed violation" false (E.check_agreement c)

let test_catches_validity_violation () =
  let (module P) = Util.invalid_protocol () in
  let module C = Checker.Make (P) in
  let report = C.explore ~inputs:[| 0; 0 |] () in
  Alcotest.(check bool) "validity violation found" true
    (find_violation "validity" report <> None)

let test_catches_solo_nontermination () =
  let (module P) = Util.spinner_protocol () in
  let module C = Checker.Make (P) in
  let report = C.explore ~solo_cap:64 ~inputs:[| 0; 1 |] () in
  Alcotest.(check bool) "solo-termination violation found" true
    (find_violation "solo-termination" report <> None)

let test_truncation_reported () =
  let (module P) = Core.Swap_ksa.make ~n:2 ~k:1 ~m:2 in
  let module C = Checker.Make (P) in
  (* the unbounded protocol must hit the config cap and say so *)
  let report = C.explore ~max_configs:500 ~check_solo:false ~inputs:[| 0; 1 |] () in
  Alcotest.(check bool) "truncated" true report.Checker.truncated

let test_exhaustive_without_prune_terminates () =
  (* CAS consensus has a finite reachable space: exploration must complete
     without truncation *)
  let (module P) = Baselines.Cas_consensus.make ~n:2 ~m:2 in
  let module C = Checker.Make (P) in
  let report = C.explore ~inputs:[| 0; 1 |] () in
  Alcotest.(check bool) "not truncated" false report.Checker.truncated;
  Util.check_ok "cas" report

let test_all_input_vectors () =
  let (module P) = Core.Two_proc_swap.make ~m:3 in
  let module C = Checker.Make (P) in
  Alcotest.(check int) "m^n vectors" 9 (List.length (C.all_input_vectors ()))

let test_shrink_violation () =
  (* pad a genuine counterexample with junk steps; shrinking must recover a
     minimal violating schedule (for the stubborn protocol: 4 steps — both
     processes swap then decide) *)
  let (module P) = Util.stubborn_protocol () in
  let module C = Checker.Make (P) in
  let inputs = [| 0; 1 |] in
  let report = C.explore ~inputs () in
  match
    List.find_opt (fun v -> v.Checker.property = "k-agreement")
      report.Checker.violations
  with
  | None -> Alcotest.fail "no violation to shrink"
  | Some v ->
    let small = C.shrink_violation ~inputs v in
    Alcotest.(check bool) "no longer than original" true
      (Shmem.Trace.length small.Checker.trace
      <= Shmem.Trace.length v.Checker.trace);
    (* replay the shrunk schedule: it must still violate agreement *)
    let module E = Shmem.Exec.Make (P) in
    let c = E.replay (E.initial ~inputs) small.Checker.trace in
    Alcotest.(check bool) "still violating" false (E.check_agreement c);
    (* the stubborn protocol violates with exactly one step per process *)
    Alcotest.(check int) "minimal length" 2
      (Shmem.Trace.length small.Checker.trace)

let test_random_runs_catch_agreement () =
  let (module P) = Util.stubborn_protocol () in
  let module C = Checker.Make (P) in
  let report = C.random_runs ~runs:50 ~max_steps:100 () in
  Alcotest.(check bool) "random runs catch the violation" false
    (Checker.ok report)

let () =
  Alcotest.run "checker"
    [ ( "mutation",
        [ Alcotest.test_case "agreement violation caught" `Quick
            test_catches_agreement_violation
        ; Alcotest.test_case "validity violation caught" `Quick
            test_catches_validity_violation
        ; Alcotest.test_case "solo non-termination caught" `Quick
            test_catches_solo_nontermination
        ; Alcotest.test_case "random runs catch violations" `Quick
            test_random_runs_catch_agreement
        ; Alcotest.test_case "counterexample shrinking" `Quick
            test_shrink_violation
        ] )
    ; ( "reporting",
        [ Alcotest.test_case "truncation reported" `Quick
            test_truncation_reported
        ; Alcotest.test_case "finite space completes" `Quick
            test_exhaustive_without_prune_terminates
        ; Alcotest.test_case "input vector enumeration" `Quick
            test_all_input_vectors
        ] )
    ]
