(* Tests for the object simulations of [6]: any historyless object can be
   simulated by a readable swap object with the same domain, and nontrivial
   operations by Swap.  We transform protocols and re-verify them. *)

let test_register_protocol_over_readable_swap () =
  (* the register baseline still passes the checker when every register is
     replaced by a readable swap object *)
  let (module P) = Baselines.Register_ksa.make ~n:2 ~k:1 ~m:2 in
  let module T = Shmem.Simulate.To_readable_swap (P) in
  Alcotest.(check bool) "all objects readable swap" true
    (Array.for_all
       (function Shmem.Obj_kind.Readable_swap _ -> true | _ -> false)
       T.objects);
  let module C = Checker.Make (T) in
  let prune (c : C.E.config) = Util.lap_prune_pair 3 c.C.E.mem in
  Util.check_ok "register-ksa over readable swap"
    (C.explore_all_inputs ~prune ~max_configs:400_000 ())

let test_swap_protocol_over_swap_only_is_identity () =
  (* Algorithm 1 is already swap-only; the transformation must not change
     its behaviour *)
  let (module P) = Core.Swap_ksa.make ~n:2 ~k:1 ~m:2 in
  let module T = Shmem.Simulate.To_swap_only (P) in
  let module E = Shmem.Exec.Make (P) in
  let module ET = Shmem.Exec.Make (T) in
  let c = E.initial ~inputs:[| 0; 1 |] in
  let ct = ET.initial ~inputs:[| 0; 1 |] in
  let _, trace = E.run_script c [ 0; 1; 0; 1; 0; 0 ] in
  let _, trace_t = ET.run_script ct [ 0; 1; 0; 1; 0; 0 ] in
  Alcotest.(check bool) "identical traces" true
    (List.equal
       (fun a b ->
         Shmem.Op.equal a.Shmem.Trace.op b.Shmem.Trace.op
         && Shmem.Value.equal a.Shmem.Trace.resp b.Shmem.Trace.resp)
       trace trace_t)

let test_register_to_swap_only_loses_reads () =
  (* the register baseline reads, so running it over swap-only objects must
     raise Illegal_operation at the first read *)
  let (module P) = Baselines.Register_ksa.make ~n:2 ~k:1 ~m:2 in
  let module T = Shmem.Simulate.To_swap_only (P) in
  let module ET = Shmem.Exec.Make (T) in
  let c = ET.initial ~inputs:[| 0; 1 |] in
  try
    ignore (ET.run ~sched:ET.round_robin ~max_steps:100 c);
    Alcotest.fail "reads survived a swap-only transformation"
  with Shmem.Obj_kind.Illegal_operation _ -> ()

let test_cas_protocol_rejected () =
  let (module P) = Baselines.Cas_consensus.make ~n:2 ~m:2 in
  try
    let module T = Shmem.Simulate.To_readable_swap (P) in
    ignore T.objects;
    Alcotest.fail "CAS accepted by historyless simulation"
  with Invalid_argument _ -> ()

let test_tas_over_readable_swap () =
  (* a one-shot test-and-set "leader election" protocol behaves identically
     over readable swap objects *)
  let module Tas = struct
    let name = "tas-election"
    let n = 3
    let k = 1
    let num_inputs = 2
    let objects = [| Shmem.Obj_kind.Test_and_set |]
    let init_object _ = Shmem.Value.zero

    type state = { decided : int option }

    let init ~pid:_ ~input:_ = { decided = None }
    let poised _ = Shmem.Op.swap 0 Shmem.Value.one

    let on_response _ resp =
      (* winner (got 0 back) decides 1; losers decide 0 — not a consensus
         protocol, only exercises TAS semantics *)
      match resp with
      | Shmem.Value.Int 0 -> { decided = Some 1 }
      | _ -> { decided = Some 0 }

    let decision s = s.decided
    let equal_state = ( = )
    let hash_state = Hashtbl.hash
    let pp_state ppf _ = Fmt.pf ppf "{}"
    let space_bound ~n:_ ~k:_ = Array.length objects
    let symmetry = Shmem.Protocol.Asymmetric
    let recovery = Shmem.Protocol.Restart
  end in
  let module T = Shmem.Simulate.To_readable_swap (Tas) in
  let module E = Shmem.Exec.Make (Tas) in
  let module ET = Shmem.Exec.Make (T) in
  let c = E.initial ~inputs:[| 0; 0; 0 |] in
  let ct = ET.initial ~inputs:[| 0; 0; 0 |] in
  let c', _ = E.run_script c [ 2; 0; 1 ] in
  let ct', _ = ET.run_script ct [ 2; 0; 1 ] in
  Alcotest.(check (option int)) "same winner" (E.decision c' 2)
    (ET.decision ct' 2);
  Alcotest.(check (list int)) "one winner" (E.decided_values c')
    (ET.decided_values ct')

let () =
  Alcotest.run "simulate"
    [ ( "historyless simulations",
        [ Alcotest.test_case "register protocol over readable swap" `Slow
            test_register_protocol_over_readable_swap
        ; Alcotest.test_case "swap-only transformation is identity" `Quick
            test_swap_protocol_over_swap_only_is_identity
        ; Alcotest.test_case "reads rejected by swap-only" `Quick
            test_register_to_swap_only_loses_reads
        ; Alcotest.test_case "CAS rejected" `Quick test_cas_protocol_rejected
        ; Alcotest.test_case "TAS over readable swap" `Quick
            test_tas_over_readable_swap
        ] )
    ]
