(* Tests for the lower-bound engines: the Lemma 9 adversary, the Theorem 10
   driver, the valency oracle, and the §6 constructions (Lemmas 12/13/15/19,
   Theorems 17/21). *)

module V = Shmem.Value

(* --- Lemma 9 / Theorem 10 --- *)

let forced_objects_consensus n =
  let (module P) = Core.Swap_ksa.make ~n ~k:1 ~m:2 in
  let module T = Lowerbound.Theorem10.Make (P) in
  List.length (T.run ()).T.objects_forced

let test_lemma9_base_case_counts () =
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Fmt.str "n=%d forces n-1 objects" n)
        (n - 1) (forced_objects_consensus n))
    [ 2; 3; 4; 6; 10 ]

let test_lemma9_certificate_structure () =
  let (module P) = Core.Swap_ksa.make ~n:4 ~k:1 ~m:2 in
  let module T = Lowerbound.Theorem10.Make (P) in
  let cert = T.run () in
  match cert.T.levels with
  | [ T.Base l9 ] ->
    (* gamma is Q-only (Q = {1,2,3}), delta likewise, and the forced
       objects are distinct *)
    Alcotest.(check bool) "gamma avoids p0" true
      (Shmem.Trace.is_p_only ~allowed:(fun p -> p > 0) l9.T.L9.gamma);
    Alcotest.(check bool) "delta avoids p0" true
      (Shmem.Trace.is_p_only ~allowed:(fun p -> p > 0) l9.T.L9.delta);
    Alcotest.(check int) "3 distinct objects" 3
      (List.length (List.sort_uniq compare l9.T.L9.objects_forced))
  | _ -> Alcotest.fail "expected a single Base level"

let test_theorem10_bounds () =
  List.iter
    (fun (n, k, expect) ->
      let (module P) = Core.Swap_ksa.make ~n ~k ~m:(k + 1) in
      let module T = Lowerbound.Theorem10.Make (P) in
      Alcotest.(check int) (Fmt.str "bound n=%d k=%d" n k) expect
        (T.bound ~n ~k))
    [ 2, 1, 1; 8, 1, 7; 8, 2, 3; 9, 3, 2; 10, 3, 3 ]

let test_theorem10_recursion () =
  List.iter
    (fun (n, k) ->
      let (module P) = Core.Swap_ksa.make ~n ~k ~m:(k + 1) in
      let module T = Lowerbound.Theorem10.Make (P) in
      let cert = T.run ~search_rounds:20 () in
      Alcotest.(check bool)
        (Fmt.str "n=%d k=%d meets bound" n k)
        true
        (List.length cert.T.objects_forced >= cert.T.bound))
    [ 4, 2; 6, 2; 6, 3; 9, 3 ]

let test_theorem10_found_branch () =
  (* the grouped protocol admits R-only executions deciding k values, so
     the engine's first branch fires and Lemma 9 runs with Q = P - R *)
  List.iter
    (fun (n, k) ->
      let (module P) = Baselines.Grouped_ksa.make ~n ~k ~m:(k + 1) in
      let module T = Lowerbound.Theorem10.Make (P) in
      let cert = T.run () in
      (match cert.T.levels with
      | T.Found_k_values { cert = l9; _ } :: _ ->
        Alcotest.(check bool) "forced at least the bound" true
          (List.length l9.T.L9.objects_forced >= cert.T.bound)
      | _ -> Alcotest.fail "expected the found-k-values branch");
      Alcotest.(check bool)
        (Fmt.str "n=%d k=%d meets bound" n k)
        true
        (List.length cert.T.objects_forced >= cert.T.bound))
    [ 4, 2; 6, 3 ]

let test_grouped_is_correct () =
  let (module P) = Baselines.Grouped_ksa.make ~n:4 ~k:2 ~m:3 in
  let module C = Checker.Make (P) in
  Util.check_ok "grouped-ksa n=4 k=2" (C.explore_all_inputs ())

let test_lemma9_hypotheses_checked () =
  let (module P) = Core.Swap_ksa.make ~n:3 ~k:1 ~m:2 in
  let module L9 = Lowerbound.Lemma9.Make (P) in
  (* Q member with the wrong input *)
  (try
     ignore
       (L9.run ~inputs:[| 0; 1; 0 |] ~alpha:[] ~q:[ 1; 2 ] ~v:1 ());
     Alcotest.fail "accepted Q with mixed inputs"
   with Lowerbound.Lemma9.Hypothesis_violated _ -> ());
  (* alpha deciding too few values *)
  try
    ignore (L9.run ~inputs:[| 0; 1; 1 |] ~alpha:[] ~q:[ 1; 2 ] ~v:1 ());
    Alcotest.fail "accepted empty alpha"
  with Lowerbound.Lemma9.Hypothesis_violated _ -> ()

let test_lemma9_rejects_readable_objects () =
  let (module P) = Baselines.Readable_swap_consensus.make ~n:3 ~m:2 in
  let module L9 = Lowerbound.Lemma9.Make (P) in
  try
    ignore (L9.run ~inputs:[| 0; 1; 1 |] ~alpha:[] ~q:[ 1; 2 ] ~v:1 ());
    Alcotest.fail "accepted readable swap objects"
  with Lowerbound.Lemma9.Hypothesis_violated _ -> ()

(* --- bounds --- *)

let test_bounds_formulas () =
  let module B = Lowerbound.Bounds in
  Alcotest.(check int) "Thm 10 at n=8 k=1" 7 (B.ksa_swap_lb ~n:8 ~k:1);
  Alcotest.(check int) "Thm 10 at n=8 k=3" 2 (B.ksa_swap_lb ~n:8 ~k:3);
  Alcotest.(check int) "Alg 1 at n=8 k=3" 5 (B.ksa_swap_ub ~n:8 ~k:3);
  Alcotest.(check int) "BRS at n=8 k=3" 6 (B.ksa_registers_ub ~n:8 ~k:3);
  Alcotest.(check int) "EGZ registers LB" 3 (B.ksa_registers_lb ~n:8 ~k:3);
  Alcotest.(check int) "Thm 17 at n=9" 7 (B.binary_swap_lb 9);
  Alcotest.(check int) "Bowman at n=9" 17 (B.binary_registers_ub 9);
  Alcotest.(check (float 1e-9)) "Thm 21 at n=9 b=2" (1.0)
    (B.bounded_swap_lb ~n:9 ~b:2);
  Alcotest.(check int) "Lemma 8" 40 (B.solo_steps_ub ~n:6 ~k:1);
  (* tightness at k=1: LB = UB *)
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Fmt.str "tight at n=%d" n)
        (B.ksa_swap_ub ~n ~k:1)
        (B.ksa_swap_lb ~n ~k:1))
    [ 2; 3; 10; 100 ]

let prop_bound_ordering =
  (* the paper's landscape is consistent: LBs never exceed the matching
     UBs, and swap beats registers by exactly one object *)
  QCheck2.Test.make ~name:"bound ordering" ~count:200
    QCheck2.Gen.(pair (int_range 2 200) (int_range 1 20))
    (fun (n, k) ->
      QCheck2.assume (n > k);
      let module B = Lowerbound.Bounds in
      B.ksa_swap_lb ~n ~k <= B.ksa_swap_ub ~n ~k
      && B.ksa_registers_lb ~n ~k <= B.ksa_registers_ub ~n ~k
      && B.ksa_registers_ub ~n ~k = B.ksa_swap_ub ~n ~k + 1
      && B.ksa_swap_lb ~n ~k = B.ksa_registers_lb ~n ~k - 1)

(* --- valency oracle --- *)

let test_valency_initial_bivalent () =
  let (module B) = Baselines.Binary_track_consensus.make ~n:2 ~cap:6 in
  let module Va = Lowerbound.Valency.Make (B) in
  let module E = Va.E in
  let t = Va.create ~allowed:[ 0; 1 ] in
  let c = E.initial ~inputs:[| 0; 1 |] in
  Alcotest.(check (list int)) "both values decidable" [ 0; 1 ]
    (Va.decidable_values t c);
  Alcotest.(check bool) "bivalent" true (Va.bivalent t c)

let test_valency_univalent_after_decision_path () =
  let (module B) = Baselines.Binary_track_consensus.make ~n:2 ~cap:6 in
  let module Va = Lowerbound.Valency.Make (B) in
  let module E = Va.E in
  let t = Va.create ~allowed:[ 0; 1 ] in
  let c = E.initial ~inputs:[| 0; 0 |] in
  (* with both inputs 0, validity forces 0-univalence *)
  Alcotest.(check (option int)) "0-univalent" (Some 0) (Va.univalent_value t c)

let test_valency_witness_replays () =
  let (module B) = Baselines.Binary_track_consensus.make ~n:2 ~cap:6 in
  let module Va = Lowerbound.Valency.Make (B) in
  let module E = Va.E in
  let t = Va.create ~allowed:[ 0; 1 ] in
  let c = E.initial ~inputs:[| 0; 1 |] in
  List.iter
    (fun v ->
      match Va.witness t c ~value:v with
      | None -> Alcotest.fail (Fmt.str "no witness for %d" v)
      | Some trace ->
        let c' = E.replay c trace in
        Alcotest.(check bool)
          (Fmt.str "witness for %d decides it" v)
          true
          (List.mem v (E.decided_values c')))
    [ 0; 1 ]

let test_valency_respects_allowed_set () =
  (* if only the all-zero process may run, 1 is not decidable *)
  let (module B) = Baselines.Binary_track_consensus.make ~n:2 ~cap:6 in
  let module Va = Lowerbound.Valency.Make (B) in
  let module E = Va.E in
  let t = Va.create ~allowed:[ 0 ] in
  let c = E.initial ~inputs:[| 0; 1 |] in
  Alcotest.(check (list int)) "solo p0 can only decide 0" [ 0 ]
    (Va.decidable_values t c)

let test_valency_monotone_in_allowed () =
  (* a larger allowed set can decide at least as much from any reachable
     configuration *)
  let (module B) = Baselines.Binary_track_consensus.make ~n:3 ~cap:6 in
  let module Va = Lowerbound.Valency.Make (B) in
  let module E = Va.E in
  let small = Va.create ~allowed:[ 0; 1 ] in
  let big = Va.create ~allowed:[ 0; 1; 2 ] in
  let rng = Random.State.make [| 5 |] in
  for _ = 1 to 20 do
    let inputs = Array.init 3 (fun _ -> Random.State.int rng 2) in
    let len = Random.State.int rng 12 in
    let c, _, _ =
      E.run ~sched:(E.random rng) ~max_steps:len (E.initial ~inputs)
    in
    let sub = Va.decidable_values small c in
    let sup = Va.decidable_values big c in
    Alcotest.(check bool)
      (Fmt.str "subset at inputs %a"
         Fmt.(array ~sep:(any "") int)
         inputs)
      true
      (List.for_all (fun v -> List.mem v sup) sub)
  done

(* --- Lemma 12 / Lemma 13 --- *)

let test_lemma12_empty_cover () =
  let (module B) = Baselines.Binary_track_consensus.make ~n:3 ~cap:6 in
  let module C = Lowerbound.Construction.Make (B) in
  let ctx = C.make_ctx ~q:[ 1; 2 ] in
  let c = C.E.initial ~inputs:[| 0; 0; 1 |] in
  let c', gamma = C.lemma12 ctx ~c ~s:[] in
  (* with no coverers the block swap is empty; gamma must be empty and the
     configuration unchanged *)
  Alcotest.(check int) "empty gamma" 0 (Shmem.Trace.length gamma);
  Alcotest.(check bool) "config unchanged" true (C.E.equal_config c c')

let test_lemma13_finds_critical_step () =
  let (module B) = Baselines.Binary_track_consensus.make ~n:3 ~cap:6 in
  let module C = Lowerbound.Construction.Make (B) in
  let ctx = C.make_ctx ~q:[ 1; 2 ] in
  let c = C.E.initial ~inputs:[| 0; 0; 1 |] in
  let r = C.lemma13 ctx ~c ~c':c ~pi:0 ~others:[] () in
  (* α_j is indistinguishable from δ_j to p_0 and leaves Q bivalent *)
  Alcotest.(check bool) "Q bivalent in Cα_j" true
    (C.V.bivalent ctx.C.oracle r.C.c_alpha_j);
  let delta_prefix =
    List.filteri (fun idx _ -> idx < r.C.j) r.C.delta
  in
  Alcotest.(check bool) "α_j ~p0 δ_j" true
    (Shmem.Trace.indistinguishable_to ~pid:0 r.C.alpha_j delta_prefix);
  (* p_0 is poised to apply d on B* in Cα_j *)
  Alcotest.(check bool) "poised to d" true
    (Shmem.Op.equal (C.E.poised r.C.c_alpha_j 0) r.C.d_op)

let test_lemma12_with_cover () =
  (* a nonempty cover: drive p0 until it is poised to swap (its Advance
     step), then Lemma 12 must produce γ with Q bivalent after the block
     swap by {p0} *)
  let (module B) = Baselines.Binary_track_consensus.make ~n:3 ~cap:6 in
  let module C = Lowerbound.Construction.Make (B) in
  let ctx = C.make_ctx ~q:[ 1; 2 ] in
  let c0 = C.E.initial ~inputs:[| 0; 0; 1 |] in
  (* p0: scan own (reads 0), scan opp (reads 0) -> poised to Advance *)
  let rec drive c steps =
    if Shmem.Op.is_nontrivial (C.E.poised c 0) then c
    else if steps > 50 then Alcotest.fail "p0 never poised to swap"
    else drive (fst (C.E.step c 0)) (steps + 1)
  in
  let c = drive c0 0 in
  Alcotest.(check bool) "p0 covers an object" true
    (C.E.covers c ~pids:[ 0 ] ~objs:[ (C.E.poised c 0).Shmem.Op.obj ]);
  let c_gamma, gamma = C.lemma12 ctx ~c ~s:[ 0 ] in
  Alcotest.(check bool) "gamma is Q-only" true
    (Shmem.Trace.is_p_only ~allowed:(fun p -> p = 1 || p = 2) gamma);
  let c_after_beta, _ = C.block_swap ctx c_gamma ~s:[ 0 ] in
  Alcotest.(check bool) "Q bivalent after the block swap" true
    (C.V.bivalent ctx.C.oracle c_after_beta)

(* --- Lemma 15 / Theorem 17 --- *)

let test_binary_lb_n3 () =
  let (module B) = Baselines.Binary_track_consensus.make ~n:3 ~cap:8 in
  let module L = Lowerbound.Binary_lb.Make (B) in
  let r = L.run () in
  Alcotest.(check int) "n-2 distinct objects" 1 r.L.distinct_objects;
  Alcotest.(check int) "bound" 1 r.L.bound

let test_binary_lb_n4 () =
  let (module B) = Baselines.Binary_track_consensus.make ~n:4 ~cap:8 in
  let module L = Lowerbound.Binary_lb.Make (B) in
  let r = L.run () in
  Alcotest.(check int) "n-2 distinct objects" 2 r.L.distinct_objects;
  (* X and Y are disjoint *)
  Alcotest.(check bool) "X ∩ Y = ∅" true
    (List.for_all (fun b -> not (List.mem b r.L.y)) r.L.x)

let test_binary_lb_n8_exercises_both_cases () =
  (* at n = 8 the induction uses both branches: five objects enter X and
     one covered object enters Y with its coverer in S *)
  let (module B) = Baselines.Binary_track_consensus.make ~n:8 ~cap:8 in
  let module L = Lowerbound.Binary_lb.Make (B) in
  let r = L.run () in
  Alcotest.(check int) "n-2 objects" 6 r.L.distinct_objects;
  Alcotest.(check bool) "some step is case 2" true
    (List.exists (fun (s : L.step_record) -> s.L.case = L.Changed) r.L.steps);
  Alcotest.(check int) "coverers match Y" (List.length r.L.y)
    (List.length r.L.coverers)

let test_binary_lb_rejects_wrong_protocol () =
  let (module P) = Core.Swap_ksa.make ~n:4 ~k:1 ~m:2 in
  let module L = Lowerbound.Binary_lb.Make (P) in
  try
    ignore (L.run ());
    Alcotest.fail "accepted non-binary-swap protocol"
  with Invalid_argument _ -> ()

(* --- Lemma 19 / Theorem 21 --- *)

let test_corollary18_via_simulation () =
  (* Corollary 18's reasoning chain, executed: a consensus protocol over
     binary historyless objects (the TAS track variant) is simulated by
     readable binary swap objects [6], and the Lemma 15 construction then
     applies to the simulated protocol *)
  let (module T) = Baselines.Binary_track_consensus.make_tas ~n:3 ~cap:8 in
  let module RS = Shmem.Simulate.To_readable_swap (T) in
  let module L = Lowerbound.Binary_lb.Make (RS) in
  let r = L.run () in
  Alcotest.(check int) "n-2 objects forced on the simulation" 1
    r.L.distinct_objects

let test_bounded_lb_n3 () =
  let (module B) = Baselines.Binary_track_consensus.make ~n:3 ~cap:8 in
  let module L = Lowerbound.Bounded_lb.Make (B) in
  let r = L.run () in
  Alcotest.(check bool) "potential >= n-2" true (r.L.potential >= 1);
  Alcotest.(check int) "domain size 2" 2 r.L.domain_size

let test_bounded_lb_n4 () =
  let (module B) = Baselines.Binary_track_consensus.make ~n:4 ~cap:8 in
  let module L = Lowerbound.Bounded_lb.Make (B) in
  let r = L.run () in
  Alcotest.(check bool) "potential >= n-2" true (r.L.potential >= 2);
  (* per-step potentials are recorded and nondecreasing *)
  let ps = List.map (fun (s : L.step_record) -> s.L.potential) r.L.steps in
  Alcotest.(check bool) "potential nondecreasing" true
    (List.sort compare ps = ps)

let () =
  Alcotest.run "lowerbound"
    [ ( "lemma9-theorem10",
        [ Alcotest.test_case "base case forces n-1" `Slow
            test_lemma9_base_case_counts
        ; Alcotest.test_case "certificate structure" `Quick
            test_lemma9_certificate_structure
        ; Alcotest.test_case "bound arithmetic" `Quick test_theorem10_bounds
        ; Alcotest.test_case "recursion meets bound" `Slow
            test_theorem10_recursion
        ; Alcotest.test_case "found-k-values branch" `Quick
            test_theorem10_found_branch
        ; Alcotest.test_case "grouped protocol correct" `Quick
            test_grouped_is_correct
        ; Alcotest.test_case "hypotheses checked" `Quick
            test_lemma9_hypotheses_checked
        ; Alcotest.test_case "swap-only enforced" `Quick
            test_lemma9_rejects_readable_objects
        ] )
    ; ( "bounds",
        [ Alcotest.test_case "closed forms" `Quick test_bounds_formulas ] )
    ; Util.qsuite "bounds-props" [ prop_bound_ordering ]
    ; ( "valency",
        [ Alcotest.test_case "initial bivalent" `Quick
            test_valency_initial_bivalent
        ; Alcotest.test_case "same inputs univalent" `Quick
            test_valency_univalent_after_decision_path
        ; Alcotest.test_case "witness replays" `Quick
            test_valency_witness_replays
        ; Alcotest.test_case "allowed set respected" `Quick
            test_valency_respects_allowed_set
        ; Alcotest.test_case "monotone in allowed set" `Quick
            test_valency_monotone_in_allowed
        ] )
    ; ( "lemma12-13",
        [ Alcotest.test_case "lemma 12 empty cover" `Quick
            test_lemma12_empty_cover
        ; Alcotest.test_case "lemma 13 critical step" `Quick
            test_lemma13_finds_critical_step
        ; Alcotest.test_case "lemma 12 with a cover" `Quick
            test_lemma12_with_cover
        ] )
    ; ( "section-6",
        [ Alcotest.test_case "Lemma 15 n=3" `Quick test_binary_lb_n3
        ; Alcotest.test_case "Lemma 15 n=4" `Slow test_binary_lb_n4
        ; Alcotest.test_case "Lemma 15 n=8 both cases" `Slow
            test_binary_lb_n8_exercises_both_cases
        ; Alcotest.test_case "wrong protocol rejected" `Quick
            test_binary_lb_rejects_wrong_protocol
        ; Alcotest.test_case "Corollary 18 via simulation" `Quick
            test_corollary18_via_simulation
        ; Alcotest.test_case "Lemma 19 n=3" `Quick test_bounded_lb_n3
        ; Alcotest.test_case "Lemma 19 n=4" `Slow test_bounded_lb_n4
        ] )
    ]
