(* lib/obs contract tests: the disabled path records nothing, counters and
   histograms aggregate correctly across domains, snapshot merge is a
   commutative monoid (so per-domain/per-shard snapshots combine in any
   order), quantiles are monotone and bounded by the observed max, JSON
   snapshots round-trip, and the [bench compare] kernel classifies
   regressions/improvements/missing keys the way the CI gate relies on. *)

let snapshot =
  Alcotest.testable Obs.pp_table (fun (a : Obs.snapshot) b -> a = b)

(* ------------------------------------------------------------ recording *)

let test_disabled_noop () =
  Obs.disable ();
  let reg = Obs.Registry.create () in
  let c = Obs.counter ~registry:reg "c" in
  let h = Obs.histogram ~registry:reg "h" in
  let s = Obs.span ~registry:reg "s" in
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Obs.Histogram.observe h 7;
  assert (Obs.Span.time s (fun () -> 13) = 13);
  Alcotest.(check int) "counter untouched" 0 (Obs.Counter.value c);
  Alcotest.(check int) "histogram untouched" 0 (Obs.Histogram.count h);
  Alcotest.(check int) "span untouched" 0 (Obs.Span.count s);
  Alcotest.(check bool) "snapshot empty" true
    (Obs.is_empty (Obs.snapshot ~registry:reg ()))

let test_enabled_records () =
  Obs.enable ();
  let reg = Obs.Registry.create () in
  let c = Obs.counter ~registry:reg "c" in
  let h = Obs.histogram ~registry:reg "h" in
  let s = Obs.span ~registry:reg "s" in
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Obs.Histogram.observe h 7;
  Obs.Histogram.observe h 0;
  Obs.Histogram.observe h (-3) (* clamps to 0 *);
  assert (Obs.Span.time s (fun () -> 13) = 13);
  Obs.disable ();
  Alcotest.(check int) "counter" 42 (Obs.Counter.value c);
  Alcotest.(check int) "histogram count" 3 (Obs.Histogram.count h);
  Alcotest.(check int) "histogram sum" 7 (Obs.Histogram.sum h);
  Alcotest.(check int) "span count" 1 (Obs.Span.count s);
  Alcotest.(check bool) "span duration positive" true (Obs.Span.total_ns s >= 1)

let test_find_or_create () =
  let reg = Obs.Registry.create () in
  let c1 = Obs.counter ~registry:reg "x" in
  let c2 = Obs.counter ~registry:reg "x" in
  Obs.enable ();
  Obs.Counter.incr c1;
  Obs.Counter.incr c2;
  Obs.disable ();
  Alcotest.(check int) "same series" 2 (Obs.Counter.value c1);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Obs: metric \"x\" is a counter, requested a histogram")
    (fun () -> ignore (Obs.histogram ~registry:reg "x"))

let test_reset_in_place () =
  Obs.enable ();
  let reg = Obs.Registry.create () in
  let c = Obs.counter ~registry:reg "c" in
  let h = Obs.histogram ~registry:reg "h" in
  Obs.Counter.add c 5;
  Obs.Histogram.observe h 9;
  Obs.Registry.reset reg;
  Obs.Counter.incr c;
  Obs.Histogram.observe h 2;
  Obs.disable ();
  Alcotest.(check int) "counter restarted" 1 (Obs.Counter.value c);
  Alcotest.(check int) "hist count restarted" 1 (Obs.Histogram.count h);
  Alcotest.(check int) "hist sum restarted" 2 (Obs.Histogram.sum h)

let test_multidomain_totals () =
  Obs.enable ();
  let reg = Obs.Registry.create () in
  let c = Obs.counter ~registry:reg "c" in
  let h = Obs.histogram ~registry:reg "h" in
  let per_domain = 25_000 and domains = 4 in
  let worker () =
    for i = 1 to per_domain do
      Obs.Counter.incr c;
      Obs.Histogram.observe h (i land 1023)
    done
  in
  let ds = List.init domains (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  Obs.disable ();
  Alcotest.(check int) "counter total" (domains * per_domain)
    (Obs.Counter.value c);
  Alcotest.(check int) "histogram total" (domains * per_domain)
    (Obs.Histogram.count h)

(* ------------------------------------------------------- merge algebra *)

(* a random snapshot = a random batch of operations applied to a fresh
   registry; merging snapshots must agree with concatenating the batches *)
type op = Add of int * int | Observe of int * int

let apply_ops reg ops =
  Obs.enable ();
  List.iter
    (fun op ->
      match op with
      | Add (i, v) -> Obs.Counter.add (Obs.counter ~registry:reg (Fmt.str "c%d" i)) v
      | Observe (i, v) ->
        Obs.Histogram.observe (Obs.histogram ~registry:reg (Fmt.str "h%d" i)) v)
    ops;
  Obs.disable ()

let snap_of_ops ops =
  let reg = Obs.Registry.create () in
  apply_ops reg ops;
  Obs.snapshot ~registry:reg ()

let ops_gen =
  QCheck.Gen.(
    list_size (int_bound 40)
      (map
         (fun (is_counter, i, v) ->
           if is_counter then Add (i, abs v) else Observe (i, v))
         (triple bool (int_bound 4) (int_bound 2_000_000))))

let ops_arb =
  QCheck.make ops_gen
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Add (i, v) -> Fmt.str "c%d+=%d" i v
             | Observe (i, v) -> Fmt.str "h%d<-%d" i v)
           ops))

let qcheck_merge_assoc =
  QCheck.Test.make ~name:"merge associative" ~count:100
    QCheck.(triple ops_arb ops_arb ops_arb)
    (fun (a, b, c) ->
      let sa = snap_of_ops a and sb = snap_of_ops b and sc = snap_of_ops c in
      Obs.merge sa (Obs.merge sb sc) = Obs.merge (Obs.merge sa sb) sc)

let qcheck_merge_commutes =
  QCheck.Test.make ~name:"merge commutative" ~count:100
    QCheck.(pair ops_arb ops_arb)
    (fun (a, b) ->
      let sa = snap_of_ops a and sb = snap_of_ops b in
      Obs.merge sa sb = Obs.merge sb sa)

let qcheck_merge_is_concat =
  QCheck.Test.make ~name:"merge = concatenated batches" ~count:100
    QCheck.(pair ops_arb ops_arb)
    (fun (a, b) ->
      (* merging per-batch snapshots equals one registry fed both batches;
         this is exactly the per-domain aggregation the runtime relies on *)
      Obs.merge (snap_of_ops a) (snap_of_ops b) = snap_of_ops (a @ b))

let test_merge_unit () =
  let s = snap_of_ops [ Add (0, 3); Observe (1, 9) ] in
  Alcotest.check snapshot "left unit" s (Obs.merge Obs.empty_snapshot s);
  Alcotest.check snapshot "right unit" s (Obs.merge s Obs.empty_snapshot)

(* ----------------------------------------------------------- quantiles *)

let dist_of_observations vs =
  let reg = Obs.Registry.create () in
  ignore (Obs.histogram ~registry:reg "h0");
  apply_ops reg (List.map (fun v -> Observe (0, v)) vs);
  List.assoc "h0" (Obs.snapshot ~registry:reg ()).Obs.hists

let qcheck_quantile_monotone =
  QCheck.Test.make ~name:"quantile monotone and bounded" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 50) (int_bound 5_000_000))
              (pair (float_bound_inclusive 1.) (float_bound_inclusive 1.)))
    (fun (vs, (q1, q2)) ->
      let d = dist_of_observations vs in
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      let observed_max = List.fold_left max 0 vs in
      Obs.quantile d lo <= Obs.quantile d hi
      && Obs.quantile d hi <= observed_max
      && Obs.quantile d 1. = observed_max)

let test_quantile_exact_small () =
  (* one observation: every quantile is that value *)
  let d = dist_of_observations [ 37 ] in
  List.iter
    (fun q -> Alcotest.(check int) (Fmt.str "q=%.2f" q) 37 (Obs.quantile d q))
    [ 0.; 0.5; 0.99; 1. ];
  Alcotest.(check int) "empty dist" 0
    (Obs.quantile (dist_of_observations []) 0.5)

(* ---------------------------------------------------------------- json *)

let qcheck_snapshot_roundtrip =
  QCheck.Test.make ~name:"snapshot json round-trip" ~count:100 ops_arb
    (fun ops ->
      let s = snap_of_ops ops in
      Obs.snapshot_of_json (Obs.snapshot_to_json s) = Ok s)

let test_snapshot_roundtrip_with_spans () =
  Obs.enable ();
  let reg = Obs.Registry.create () in
  let sp = Obs.span ~registry:reg "phase" in
  Obs.Span.time sp (fun () -> Obs.Counter.incr (Obs.counter ~registry:reg "n"));
  Obs.disable ();
  let s = Obs.snapshot ~registry:reg () in
  match Obs.snapshot_of_json (Obs.snapshot_to_json s) with
  | Ok s' -> Alcotest.check snapshot "round-trips" s s'
  | Error e -> Alcotest.failf "parse error: %s" e

let test_json_parser () =
  let ok s = match Obs.Json.of_string s with
    | Ok v -> v
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  let err s = match Obs.Json.of_string s with
    | Ok _ -> Alcotest.failf "%s: expected parse error" s
    | Error _ -> ()
  in
  Alcotest.(check bool) "array of numbers" true
    (ok "[1, 2.5, -3e2]"
    = Obs.Json.Arr [ Obs.Json.Num 1.; Obs.Json.Num 2.5; Obs.Json.Num (-300.) ]);
  Alcotest.(check bool) "nested object" true
    (ok {|{"a": [true, false, null], "b": "x\n\"A"}|}
    = Obs.Json.Obj
        [ "a", Obs.Json.Arr [ Obs.Json.Bool true; Obs.Json.Bool false; Obs.Json.Null ]
        ; "b", Obs.Json.Str "x\n\"A"
        ]);
  err "[1, 2";
  err "{\"a\":}";
  err "12 34" (* trailing garbage *);
  err "";
  (* printer round-trip on a tree with tricky atoms *)
  let tree =
    Obs.Json.Obj
      [ "i", Obs.Json.Num 720479965. (* an ns total: must not lose digits *)
      ; "f", Obs.Json.Num 0.125
      ; "s", Obs.Json.Str "a\"b\\c\nd\te"
      ; "u", Obs.Json.Str "π∀"
      ]
  in
  Alcotest.(check bool) "print/parse round-trip" true
    (Obs.Json.of_string (Obs.Json.to_string tree) = Ok tree)

(* ------------------------------------------------------------- compare *)

let verdicts rows = List.map (fun r -> r.Obs.Compare.key, r.Obs.Compare.verdict) rows

let test_compare_regress () =
  let rows =
    Obs.Compare.run ~max_regress:30.
      ~baseline:[ "t1", 1.0; "t2", 2.0 ]
      ~current:[ "t1", 1.5; "t2", 2.1 ] ()
  in
  Alcotest.(check bool) "t1 regressed, t2 ok" true
    (verdicts rows
    = [ "t1", Obs.Compare.Regressed; "t2", Obs.Compare.Pass ]);
  Alcotest.(check bool) "failed" true (Obs.Compare.failed rows)

let test_compare_improve () =
  let rows =
    Obs.Compare.run ~max_regress:30. ~baseline:[ "t1", 2.0 ]
      ~current:[ "t1", 1.0 ] ()
  in
  Alcotest.(check bool) "improved" true
    (verdicts rows = [ "t1", Obs.Compare.Improved ]);
  Alcotest.(check bool) "improvement is not a failure" false
    (Obs.Compare.failed rows)

let test_compare_missing_and_new () =
  let rows =
    Obs.Compare.run ~baseline:[ "gone", 1.0; "kept", 1.0 ]
      ~current:[ "kept", 1.0; "brand-new", 99.0 ] ()
  in
  Alcotest.(check bool) "missing flagged, new ignored" true
    (verdicts rows
    = [ "gone", Obs.Compare.Missing; "kept", Obs.Compare.Pass ]);
  Alcotest.(check bool) "missing fails" true (Obs.Compare.failed rows)

let test_compare_floor () =
  (* both sides under the noise floor: a 4x blowup on 10ms is not a
     regression *)
  let rows =
    Obs.Compare.run ~max_regress:30. ~floor:0.05 ~baseline:[ "tiny", 0.01 ]
      ~current:[ "tiny", 0.04 ] ()
  in
  Alcotest.(check bool) "sub-floor passes" true
    (verdicts rows = [ "tiny", Obs.Compare.Pass ]);
  (* ... but crossing well above the floor is *)
  let rows =
    Obs.Compare.run ~max_regress:30. ~floor:0.05 ~baseline:[ "tiny", 0.01 ]
      ~current:[ "tiny", 0.2 ] ()
  in
  Alcotest.(check bool) "crossing the floor regresses" true
    (Obs.Compare.failed rows)

let test_compare_bad_budget () =
  Alcotest.check_raises "nonpositive budget"
    (Invalid_argument "Obs.Compare.run: max_regress must be positive")
    (fun () ->
      ignore (Obs.Compare.run ~max_regress:0. ~baseline:[] ~current:[] ()))

(* ---------------------------------------------------------------- main *)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [ ( "recording",
        [ Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop
        ; Alcotest.test_case "enabled records" `Quick test_enabled_records
        ; Alcotest.test_case "find-or-create aggregates" `Quick
            test_find_or_create
        ; Alcotest.test_case "reset in place" `Quick test_reset_in_place
        ; Alcotest.test_case "multi-domain totals" `Quick
            test_multidomain_totals
        ] )
    ; ( "merge",
        [ q qcheck_merge_assoc
        ; q qcheck_merge_commutes
        ; q qcheck_merge_is_concat
        ; Alcotest.test_case "empty snapshot is the unit" `Quick
            test_merge_unit
        ] )
    ; ( "quantiles",
        [ q qcheck_quantile_monotone
        ; Alcotest.test_case "small exact cases" `Quick
            test_quantile_exact_small
        ] )
    ; ( "json",
        [ q qcheck_snapshot_roundtrip
        ; Alcotest.test_case "round-trip with spans" `Quick
            test_snapshot_roundtrip_with_spans
        ; Alcotest.test_case "parser" `Quick test_json_parser
        ] )
    ; ( "compare",
        [ Alcotest.test_case "regression flagged" `Quick test_compare_regress
        ; Alcotest.test_case "improvement passes" `Quick test_compare_improve
        ; Alcotest.test_case "missing fails, new ignored" `Quick
            test_compare_missing_and_new
        ; Alcotest.test_case "noise floor" `Quick test_compare_floor
        ; Alcotest.test_case "budget validation" `Quick test_compare_bad_budget
        ] )
    ]
