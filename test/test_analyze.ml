(* lib/analyze contract: the static lints accept every real protocol in the
   registry (with derived flags agreeing with the declared predicates and
   measured solo executions within the proved bounds), accept randomly
   generated well-formed protocols, and reject each planted mutant — a CAS
   smuggled into a declared-historyless protocol, an incoherent
   [hash_state], a nondeterministic [poised], an out-of-range decision.
   The happens-before checker passes clean swap chains and catches
   synthetic torn/stale/lost manifestations. *)

module Sh = Shmem

let find_check (r : Analyze.report) id =
  match List.find_opt (fun (c : Analyze.check) -> c.id = id) r.checks with
  | Some c -> c
  | None -> Alcotest.failf "report has no %S check" id

let check_failed r id =
  match (find_check r id).status with
  | Analyze.Fail _ -> true
  | Analyze.Pass | Analyze.Skipped _ -> false

let assert_rejected ~by r =
  if Analyze.ok r then
    Alcotest.failf "mutant %s accepted by the analyzer" r.Analyze.protocol;
  if not (check_failed r by) then
    Alcotest.failf "mutant %s: expected the %s check to fail, got:@.%a"
      r.Analyze.protocol by Analyze.pp_report r

(* ------------------------------------------------ registry conformance *)

let test_registry_all_pass () =
  List.iter
    (fun (e : Baselines.Registry.entry) ->
      let r =
        Analyze.run_protocol ~max_configs:2_000 ?solo_bound:e.solo_bound
          ~prune:e.prune e.protocol
      in
      if not (Analyze.ok r) then
        Alcotest.failf "%s: %a" e.name Analyze.pp_report r;
      (* flag-derivation agreement in the sound direction, explicitly *)
      let declared_historyless =
        Sh.Protocol.uses_only_historyless e.protocol
      in
      if declared_historyless && not r.Analyze.derived_historyless then
        Alcotest.failf "%s: derived historyless disagrees" e.name)
    (Baselines.Registry.standard ())

let test_solo_bound_swap_ksa () =
  (* Lemma 8: no reachable configuration needs more than 8(n-k) solo steps *)
  List.iter
    (fun n ->
      let bound = Core.Swap_ksa.solo_step_bound ~n ~k:1 in
      let (module P) = Core.Swap_ksa.make ~n ~k:1 ~m:2 in
      let r =
        Analyze.run_protocol ~max_configs:3_000 ~solo_bound:bound
          ~prune:(Util.lap_prune_pair 3)
          (module P)
      in
      if not (Analyze.ok r) then
        Alcotest.failf "swap-ksa n=%d: %a" n Analyze.pp_report r;
      if r.Analyze.solo_measured_max > bound then
        Alcotest.failf "swap-ksa n=%d: measured %d > bound %d" n
          r.Analyze.solo_measured_max bound)
    [ 3; 4; 5; 6 ]

(* ------------------------------------------------ space certification *)

let sfind_check (r : Analyze.Space.report) id =
  match List.find_opt (fun (c : Analyze.check) -> c.id = id) r.checks with
  | Some c -> c
  | None -> Alcotest.failf "space report has no %S check" id

(* every registry protocol certifies measured <= declared on the grid the
   CLI gate runs at *)
let test_space_registry_grid () =
  List.iter
    (fun n ->
      List.iter
        (fun (e : Baselines.Registry.entry) ->
          let r =
            Analyze.Space.run_protocol ~max_configs:6_000 ~prune:e.prune
              ~certificate:false e.protocol
          in
          if not (Analyze.Space.ok r) then
            Alcotest.failf "%s n=%d: %a" e.name n Analyze.Space.pp_report
              r)
        (Baselines.Registry.standard ~n ()))
    [ 3; 4; 5; 6 ]

(* Algorithm 1 is tight: the measured usage equals the declared n-k, and
   the Theorem 10 bracket closes around it at k=1 (declared = measured =
   theorem bound = n-1) *)
let test_space_swap_ksa_exact () =
  List.iter
    (fun n ->
      let (module P) = Core.Swap_ksa.make ~n ~k:1 ~m:2 in
      let r =
        Analyze.Space.run_protocol ~max_configs:20_000
          ~prune:(Util.lap_prune_pair 3)
          (module P)
      in
      if not (Analyze.Space.ok r) then
        Alcotest.failf "swap-ksa n=%d: %a" n Analyze.Space.pp_report r;
      Alcotest.(check int) (Fmt.str "measured = n-k at n=%d" n) (n - 1)
        r.Analyze.Space.measured;
      match r.Analyze.Space.bracket with
      | None -> Alcotest.failf "swap-ksa n=%d: no Theorem 10 bracket" n
      | Some b ->
        Alcotest.(check int)
          (Fmt.str "theorem bound at n=%d" n)
          (n - 1) b.Analyze.Space.theorem_bound;
        if b.Analyze.Space.forced > r.Analyze.Space.measured then
          Alcotest.failf "swap-ksa n=%d: forced %d > measured %d" n
            b.Analyze.Space.forced r.Analyze.Space.measured)
    [ 3; 4; 5 ]

(* the planted space mutant: Algorithm 1 claiming one object fewer than it
   uses must be rejected by the under-claim check specifically *)
let test_mutant_space_underclaim () =
  let (module P) = Core.Swap_ksa.make ~n:4 ~k:1 ~m:2 in
  let module Bad = struct
    include P

    let name = "swap-ksa/space-under-claim"
    let space_bound ~n ~k = n - k - 1
  end in
  let r =
    Analyze.Space.run_protocol ~max_configs:20_000
      ~prune:(Util.lap_prune_pair 3) ~certificate:false
      (module Bad)
  in
  if Analyze.Space.ok r then
    Alcotest.fail "space under-claim accepted by the certifier";
  match (sfind_check r "space-under-claim").status with
  | Analyze.Fail _ -> ()
  | Analyze.Pass | Analyze.Skipped _ ->
    Alcotest.failf "expected space-under-claim to fail:@.%a"
      Analyze.Space.pp_report r

(* -------------------------------------- random well-formed protocols *)

(* a straight-line protocol: every process executes the same random list of
   (object, operation) instructions, ignores the responses, then decides
   its input.  Well-formed by construction: operations are drawn from the
   kind's legal set, stored values from the object's domain. *)
let mk_straightline ~kinds ~(prog : (int * Sh.Op.action) list) ~n ~m :
    Sh.Protocol.t =
  let prog = Array.of_list prog in
  let module P = struct
    let name = "straightline"
    let n = n
    let k = 1
    let num_inputs = m
    let objects = kinds

    let init_object _ = Sh.Value.Int 0

    type state = { input : int; step : int; decided : int option }

    let init ~pid:_ ~input = { input; step = 0; decided = None }

    let poised s =
      let obj, action = prog.(s.step) in
      { Sh.Op.obj; action }

    let on_response s _ =
      let step = s.step + 1 in
      if step >= Array.length prog then
        { s with step; decided = Some s.input }
      else { s with step }

    let decision s = s.decided

    let equal_state s1 s2 =
      s1.input = s2.input && s1.step = s2.step
      && Option.equal Int.equal s1.decided s2.decided

    let hash_state s =
      Sh.Hashx.(opt int (int (int seed s.input) s.step) s.decided)

    let pp_state ppf s = Fmt.pf ppf "{step=%d}" s.step
    let space_bound ~n:_ ~k:_ = Array.length objects
    let symmetry = Sh.Protocol.Asymmetric
    let recovery = Sh.Protocol.Restart
  end in
  (module P)

(* instructions legal for a kind, over a bounded domain of size [d] *)
let legal_actions ~d kind =
  let vals = List.init d (fun v -> Sh.Value.Int v) in
  match (kind : Sh.Obj_kind.t) with
  | Sh.Obj_kind.Register _ ->
    (Sh.Op.Read :: List.map (fun v -> Sh.Op.Write v) vals)
  | Sh.Obj_kind.Swap_only _ -> List.map (fun v -> Sh.Op.Swap v) vals
  | Sh.Obj_kind.Readable_swap _ ->
    (Sh.Op.Read :: List.map (fun v -> Sh.Op.Swap v) vals)
  | Sh.Obj_kind.Test_and_set ->
    [ Sh.Op.Read; Sh.Op.Swap (Sh.Value.Int 1) ]
  | Sh.Obj_kind.Test_and_set_reset ->
    [ Sh.Op.Read; Sh.Op.Swap (Sh.Value.Int 1); Sh.Op.Write (Sh.Value.Int 0) ]
  | Sh.Obj_kind.Compare_and_swap _ -> [ Sh.Op.Read ]

let gen_protocol =
  let open QCheck2.Gen in
  let d = 2 in
  let kind =
    oneofl
      [ Sh.Obj_kind.Register (Sh.Obj_kind.Bounded d)
      ; Sh.Obj_kind.Swap_only (Sh.Obj_kind.Bounded d)
      ; Sh.Obj_kind.Readable_swap (Sh.Obj_kind.Bounded d)
      ; Sh.Obj_kind.Test_and_set
      ]
  in
  let* num_objs = int_range 1 2 in
  let* kinds = array_repeat num_objs kind in
  let instr =
    let* obj = int_range 0 (num_objs - 1) in
    let actions = legal_actions ~d kinds.(obj) in
    let* i = int_range 0 (List.length actions - 1) in
    return (obj, List.nth actions i)
  in
  let* len = int_range 1 4 in
  let* prog = list_repeat len instr in
  (* keep the declared flags honest: the analyzer fails an exhaustive
     exploration whose reachable ops are all swaps while some object kind
     claims more — so if any object is not Swap_only, actually read it *)
  let prog =
    let non_swap =
      Array.to_seq kinds |> Seq.mapi (fun i k -> i, k)
      |> Seq.filter (fun (_, k) ->
             match (k : Sh.Obj_kind.t) with
             | Sh.Obj_kind.Swap_only _ -> false
             | _ -> true)
      |> Seq.uncons
    in
    match non_swap with
    | Some ((i, _), _) -> (i, Sh.Op.Read) :: prog
    | None -> prog
  in
  let* n = int_range 2 3 in
  return (mk_straightline ~kinds ~prog ~n ~m:2)

let test_random_wellformed =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random well-formed protocols pass every lint"
       ~count:60 ~print:Sh.Protocol.name gen_protocol (fun p ->
         let r = Analyze.run_protocol ~max_configs:5_000 p in
         if not (Analyze.ok r) then
           QCheck2.Test.fail_reportf "%a" Analyze.pp_report r;
         (* straight-line programs draw only historyless ops, so derivation
            must agree with the kind-based predicate *)
         r.Analyze.derived_historyless))

(* ----------------------------------------------------------- mutants *)

(* CAS smuggled into a protocol whose objects all claim historyless *)
let cas_smuggler : Sh.Protocol.t =
  let module P = struct
    let name = "mutant-cas-smuggler"
    let n = 2
    let k = 1
    let num_inputs = 2
    let objects = [| Sh.Obj_kind.Readable_swap Sh.Obj_kind.Unbounded |]
    let init_object _ = Sh.Value.Bot

    type state = { input : int; tried : bool; decided : int option }

    let init ~pid:_ ~input = { input; tried = false; decided = None }

    let poised s =
      if s.tried then Sh.Op.read 0
      else Sh.Op.cas 0 ~expected:Sh.Value.Bot ~desired:(Sh.Value.Int s.input)

    let on_response s _ =
      if s.tried then { s with decided = Some s.input }
      else { s with tried = true }

    let decision s = s.decided

    let equal_state s1 s2 =
      s1.input = s2.input && s1.tried = s2.tried
      && Option.equal Int.equal s1.decided s2.decided

    let hash_state s =
      Sh.Hashx.(opt int (bool (int seed s.input) s.tried) s.decided)

    let pp_state ppf s = Fmt.pf ppf "{tried=%b}" s.tried
    let space_bound ~n:_ ~k:_ = Array.length objects
    let symmetry = Sh.Protocol.Asymmetric
    let recovery = Sh.Protocol.Restart
  end in
  (module P)

let test_mutant_cas_smuggler () =
  let r = Analyze.run_protocol cas_smuggler in
  assert_rejected ~by:"op-conformance" r;
  (* the derived flag must disagree with the declared one *)
  if r.Analyze.derived_historyless then
    Alcotest.fail "derived_historyless should be false: a Cas is reachable";
  assert_rejected ~by:"flag-derivation" r

(* equal_state ignores the step counter that hash_state mixes in: equal
   reachable states hash apart *)
let bad_hasher : Sh.Protocol.t =
  let module P = struct
    let name = "mutant-bad-hasher"
    let n = 2
    let k = 1
    let num_inputs = 2
    let objects = [| Sh.Obj_kind.Swap_only Sh.Obj_kind.Unbounded |]
    let init_object _ = Sh.Value.Bot

    type state = { input : int; step : int; decided : int option }

    let init ~pid:_ ~input = { input; step = 0; decided = None }
    let poised s = Sh.Op.swap 0 (Sh.Value.Int s.input)

    let on_response s _ =
      if s.step >= 2 then { s with decided = Some s.input }
      else { s with step = s.step + 1 }

    let decision s = s.decided

    let equal_state s1 s2 =
      (* step deliberately ignored *)
      s1.input = s2.input && Option.equal Int.equal s1.decided s2.decided

    let hash_state s =
      Sh.Hashx.(opt int (int (int seed s.input) s.step) s.decided)

    let pp_state ppf s = Fmt.pf ppf "{step=%d}" s.step
    let space_bound ~n:_ ~k:_ = Array.length objects
    let symmetry = Sh.Protocol.Asymmetric
    let recovery = Sh.Protocol.Restart
  end in
  (module P)

let test_mutant_bad_hasher () =
  assert_rejected ~by:"hash-coherence" (Analyze.run_protocol bad_hasher)

(* a hidden mutable toggle: poised alternates between two legal operations *)
let flipper : Sh.Protocol.t =
  let flip = ref false in
  let module P = struct
    let name = "mutant-flipper"
    let n = 2
    let k = 1
    let num_inputs = 2
    let objects = [| Sh.Obj_kind.Readable_swap Sh.Obj_kind.Unbounded |]
    let init_object _ = Sh.Value.Bot

    type state = { input : int; step : int; decided : int option }

    let init ~pid:_ ~input = { input; step = 0; decided = None }

    let poised s =
      flip := not !flip;
      if !flip then Sh.Op.swap 0 (Sh.Value.Int s.input) else Sh.Op.read 0

    let on_response s _ =
      if s.step >= 1 then { s with decided = Some s.input }
      else { s with step = s.step + 1 }

    let decision s = s.decided

    let equal_state s1 s2 =
      s1.input = s2.input && s1.step = s2.step
      && Option.equal Int.equal s1.decided s2.decided

    let hash_state s =
      Sh.Hashx.(opt int (int (int seed s.input) s.step) s.decided)

    let pp_state ppf s = Fmt.pf ppf "{step=%d}" s.step
    let space_bound ~n:_ ~k:_ = Array.length objects
    let symmetry = Sh.Protocol.Asymmetric
    let recovery = Sh.Protocol.Restart
  end in
  (module P)

let test_mutant_flipper () =
  assert_rejected ~by:"determinism" (Analyze.run_protocol flipper)

(* decides m, outside 0..m-1 *)
let out_of_range : Sh.Protocol.t =
  let module P = struct
    let name = "mutant-out-of-range"
    let n = 2
    let k = 1
    let num_inputs = 2
    let objects = [| Sh.Obj_kind.Swap_only Sh.Obj_kind.Unbounded |]
    let init_object _ = Sh.Value.Bot

    type state = { input : int; decided : int option }

    let init ~pid:_ ~input = { input; decided = None }
    let poised s = Sh.Op.swap 0 (Sh.Value.Int s.input)
    let on_response s _ = { s with decided = Some num_inputs }
    let decision s = s.decided

    let equal_state s1 s2 =
      s1.input = s2.input && Option.equal Int.equal s1.decided s2.decided

    let hash_state s =
      Sh.Hashx.(opt int (int seed s.input) s.decided)

    let pp_state ppf s = Fmt.pf ppf "{input=%d}" s.input
    let space_bound ~n:_ ~k:_ = Array.length objects
    let symmetry = Sh.Protocol.Asymmetric
    let recovery = Sh.Protocol.Restart
  end in
  (module P)

let test_mutant_out_of_range () =
  let r = Analyze.run_protocol out_of_range in
  assert_rejected ~by:"decision-range" r;
  assert_rejected ~by:"decision-coverage" r

(* claims [Anonymous] but [canon_key] peeks at the pid once the process has
   taken a step — invariant on initial states, so [Protocol.validate]
   passes; only the reachable-state probe can catch it *)
let pid_key : Sh.Protocol.t =
  (module struct
    let name = "mutant-pid-key"
    let n = 3
    let k = 1
    let num_inputs = 2
    let objects = [| Sh.Obj_kind.Swap_only Sh.Obj_kind.Unbounded |]
    let init_object _ = Sh.Value.Bot

    type state = { pid : int; input : int; step : int; decided : int option }

    let init ~pid ~input = { pid; input; step = 0; decided = None }
    let poised s = Sh.Op.swap 0 (Sh.Value.Int s.input)

    let on_response s _ =
      if s.step >= 1 then { s with decided = Some s.input }
      else { s with step = s.step + 1 }

    let decision s = s.decided

    let equal_state s1 s2 =
      s1.pid = s2.pid && s1.input = s2.input && s1.step = s2.step
      && Option.equal Int.equal s1.decided s2.decided

    let hash_state s =
      Sh.Hashx.(opt int (int (int seed s.input) s.step) s.decided)

    let pp_state ppf s = Fmt.pf ppf "{p%d step=%d}" s.pid s.step

    let space_bound ~n:_ ~k:_ = Array.length objects
    let symmetry =
      Sh.Protocol.Anonymous
        { canon_key = (fun s -> if s.step > 0 then s.pid else 0)
        ; rename = (fun f s -> { s with pid = f s.pid })
        }
    let recovery = Sh.Protocol.Restart
  end)

let test_mutant_pid_key () =
  let r = Analyze.run_protocol pid_key in
  (* the hooks are coherent on initial states, so well-formedness passes —
     this is exactly the gap the reachable-state lint exists to cover *)
  if check_failed r "well-formedness" then
    Alcotest.fail "mutant-pid-key: well-formedness should pass";
  assert_rejected ~by:"canon-coherence" r

(* [on_response] plants a pid-dependent mark; initial states are clean, so
   [Protocol.validate] (which never steps) passes, but renaming no longer
   commutes with stepping on reachable states *)
let marker : Sh.Protocol.t =
  (module struct
    let name = "mutant-noncommuting-response"
    let n = 3
    let k = 1
    let num_inputs = 2
    let objects = [| Sh.Obj_kind.Swap_only Sh.Obj_kind.Unbounded |]
    let init_object _ = Sh.Value.Bot

    type state = { pid : int; input : int; mark : int; decided : int option }

    let init ~pid ~input = { pid; input; mark = 0; decided = None }
    let poised s = Sh.Op.swap 0 (Sh.Value.Int s.input)

    let on_response s _ =
      { s with decided = Some s.input; mark = s.pid mod 2 }

    let decision s = s.decided

    let equal_state s1 s2 =
      s1.pid = s2.pid && s1.input = s2.input && s1.mark = s2.mark
      && Option.equal Int.equal s1.decided s2.decided

    let hash_state s =
      Sh.Hashx.(opt int (int (int seed s.input) s.mark) s.decided)

    let pp_state ppf s = Fmt.pf ppf "{p%d mark=%d}" s.pid s.mark

    let space_bound ~n:_ ~k:_ = Array.length objects
    let symmetry =
      Sh.Protocol.Anonymous
        { canon_key = hash_state
        ; rename = (fun f s -> { s with pid = f s.pid })
        }
    let recovery = Sh.Protocol.Restart
  end)

let test_mutant_marker () =
  let r = Analyze.run_protocol marker in
  if check_failed r "well-formedness" then
    Alcotest.fail "mutant-noncommuting-response: well-formedness should pass";
  assert_rejected ~by:"canon-coherence" r

(* [rename] is the identity on a state that embeds its pid — incoherent from
   the very first configuration, so the cheap init-only validation already
   rejects it *)
let frozen_rename : Sh.Protocol.t =
  (module struct
    let name = "mutant-identity-rename"
    let n = 3
    let k = 1
    let num_inputs = 2
    let objects = [| Sh.Obj_kind.Swap_only Sh.Obj_kind.Unbounded |]
    let init_object _ = Sh.Value.Bot

    type state = { pid : int; input : int; decided : int option }

    let init ~pid ~input = { pid; input; decided = None }
    let poised s = Sh.Op.swap 0 (Sh.Value.Int s.input)
    let on_response s _ = { s with decided = Some s.input }
    let decision s = s.decided

    let equal_state s1 s2 =
      s1.pid = s2.pid && s1.input = s2.input
      && Option.equal Int.equal s1.decided s2.decided

    let hash_state s = Sh.Hashx.(opt int (int seed s.input) s.decided)
    let pp_state ppf s = Fmt.pf ppf "{p%d}" s.pid

    let space_bound ~n:_ ~k:_ = Array.length objects
    let symmetry =
      Sh.Protocol.Anonymous
        { canon_key = (fun s -> Sh.Hashx.(int seed s.input))
        ; rename = (fun _ s -> s)
        }
    let recovery = Sh.Protocol.Restart
  end)

let test_mutant_frozen_rename () =
  assert_rejected ~by:"well-formedness" (Analyze.run_protocol frozen_rename)

(* ------------------------------------------------- happens-before *)

let ev ~thread ~action ~response ~start ~finish =
  { Linearize.Obj_history.thread; action; response; start; finish }

let swap v = Sh.Op.Swap (Sh.Value.Int v)
let iv v = Sh.Value.Int v

let hb_check evs =
  Analyze.Hb.check ~kind:(Sh.Obj_kind.Swap_only Sh.Obj_kind.Unbounded)
    ~init:Sh.Value.Bot evs

let test_hb_clean_chain () =
  (* Bot -> 0 -> 1: a legal sequential exchange chain *)
  match
    hb_check
      [ ev ~thread:0 ~action:(swap 0) ~response:Sh.Value.Bot ~start:0
          ~finish:1
      ; ev ~thread:1 ~action:(swap 1) ~response:(iv 0) ~start:2 ~finish:3
      ; ev ~thread:0 ~action:(swap 2) ~response:(iv 1) ~start:4 ~finish:5
      ]
  with
  | Ok stats ->
    Alcotest.(check int) "events" 3 stats.Analyze.Hb.events;
    Alcotest.(check int) "threads" 2 stats.Analyze.Hb.threads
  | Error v ->
    Alcotest.failf "clean chain flagged: %s (%s)" v.Analyze.Hb.rule
      v.Analyze.Hb.detail

let test_hb_concurrent_ok () =
  (* two overlapping swaps: either order linearizes, no violation *)
  match
    hb_check
      [ ev ~thread:0 ~action:(swap 0) ~response:Sh.Value.Bot ~start:0
          ~finish:5
      ; ev ~thread:1 ~action:(swap 1) ~response:(iv 0) ~start:1 ~finish:4
      ]
  with
  | Ok _ -> ()
  | Error v -> Alcotest.failf "concurrent swaps flagged: %s" v.Analyze.Hb.rule

let test_hb_torn_exchange () =
  (* both swaps claim to have consumed the initial value: a torn exchange *)
  match
    hb_check
      [ ev ~thread:0 ~action:(swap 0) ~response:Sh.Value.Bot ~start:0
          ~finish:1
      ; ev ~thread:1 ~action:(swap 1) ~response:Sh.Value.Bot ~start:2
          ~finish:3
      ]
  with
  | Ok _ -> Alcotest.fail "torn exchange not detected"
  | Error v ->
    (* the second Bot response trips lost-seniority (an install definitely
       preceded it); had the swaps overlapped, duplicate-consumption still
       catches the double witness *)
    Alcotest.(check bool)
      "rule"
      true
      (List.mem v.Analyze.Hb.rule [ "lost-seniority"; "duplicate-consumption" ])

let test_hb_torn_overlapping () =
  (* overlapping torn exchange: real-time order alone cannot rule either
     Bot response out, only the consumption count can *)
  match
    hb_check
      [ ev ~thread:0 ~action:(swap 0) ~response:Sh.Value.Bot ~start:0
          ~finish:3
      ; ev ~thread:1 ~action:(swap 1) ~response:Sh.Value.Bot ~start:1
          ~finish:2
      ]
  with
  | Ok _ -> Alcotest.fail "overlapping torn exchange not detected"
  | Error v ->
    Alcotest.(check string) "rule" "duplicate-consumption" v.Analyze.Hb.rule

let test_hb_stale_response () =
  (* a swap returns a value nobody ever installed *)
  match
    hb_check
      [ ev ~thread:0 ~action:(swap 0) ~response:(iv 7) ~start:0 ~finish:1 ]
  with
  | Ok _ -> Alcotest.fail "stale response not detected"
  | Error v ->
    Alcotest.(check string) "rule" "stale-response" v.Analyze.Hb.rule

let test_hb_check_histories () =
  let histories =
    [| [ ev ~thread:0 ~action:(swap 0) ~response:Sh.Value.Bot ~start:0
           ~finish:1
       ]
     ; []
    |]
  in
  match
    Analyze.Hb.check_histories
      ~kinds:
        [| Sh.Obj_kind.Swap_only Sh.Obj_kind.Unbounded
         ; Sh.Obj_kind.Swap_only Sh.Obj_kind.Unbounded
        |]
      ~init:(fun _ -> Sh.Value.Bot)
      histories
  with
  | Ok (checked, skipped) ->
    Alcotest.(check int) "checked" 2 checked;
    Alcotest.(check int) "skipped" 0 skipped
  | Error e -> Alcotest.failf "clean histories flagged: %s" e

(* the runtime end of the pipe: a recorded multicore run checks clean *)
let test_hb_runtime_clean () =
  let (module P) = Core.Swap_ksa.make ~n:3 ~k:1 ~m:2 in
  let module R = Runtime.Make (P) in
  let outcome = R.run ~inputs:[| 0; 1; 0 |] ~seed:11 ~record:true () in
  (match R.check ~inputs:[| 0; 1; 0 |] outcome with
  | Ok () -> ()
  | Error e -> Alcotest.failf "runtime check: %s" e);
  match R.check_hb outcome with
  | Ok (checked, _) ->
    if checked = 0 then Alcotest.fail "hb checked no histories"
  | Error e -> Alcotest.failf "hb flagged a real run: %s" e

(* --------------------------------------------------- registry errors *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_registry_errors () =
  (match Baselines.Registry.find "nope" ~n:4 with
  | Ok _ -> Alcotest.fail "unknown name resolved"
  | Error msg ->
    if not (contains ~sub:"available" msg) then
      Alcotest.failf "unknown-name error lists nothing: %s" msg);
  (match Baselines.Registry.find "swap-ksa" ~n:4 with
  | Ok _ -> Alcotest.fail "ambiguous prefix resolved"
  | Error msg ->
    if not (contains ~sub:"ambiguous" msg) then
      Alcotest.failf "ambiguous-prefix error unhelpful: %s" msg);
  match Baselines.Registry.find "swap-ksa k=1" ~n:4 with
  | Ok e -> Alcotest.(check string) "exact" "swap-ksa k=1" e.name
  | Error msg -> Alcotest.failf "exact name failed: %s" msg

let () =
  Alcotest.run "analyze"
    [ ( "registry",
        [ Alcotest.test_case "every registered protocol passes" `Slow
            test_registry_all_pass
        ; Alcotest.test_case "solo max within 8(n-k), n=3..6" `Slow
            test_solo_bound_swap_ksa
        ; Alcotest.test_case "find errors are descriptive" `Quick
            test_registry_errors
        ] )
    ; ( "space",
        [ Alcotest.test_case "registry certifies on n=3..6" `Slow
            test_space_registry_grid
        ; Alcotest.test_case "Algorithm 1 measured = n-k, bracketed" `Slow
            test_space_swap_ksa_exact
        ; Alcotest.test_case "under-claim by one rejected" `Quick
            test_mutant_space_underclaim
        ] )
    ; ( "fuzz",
        [ test_random_wellformed ] )
    ; ( "mutants",
        [ Alcotest.test_case "cas smuggled into historyless" `Quick
            test_mutant_cas_smuggler
        ; Alcotest.test_case "incoherent hash_state" `Quick
            test_mutant_bad_hasher
        ; Alcotest.test_case "nondeterministic poised" `Quick
            test_mutant_flipper
        ; Alcotest.test_case "decision out of range" `Quick
            test_mutant_out_of_range
        ; Alcotest.test_case "pid-reading canon_key" `Quick
            test_mutant_pid_key
        ; Alcotest.test_case "non-commuting on_response" `Quick
            test_mutant_marker
        ; Alcotest.test_case "identity rename with embedded pid" `Quick
            test_mutant_frozen_rename
        ] )
    ; ( "happens-before",
        [ Alcotest.test_case "clean exchange chain" `Quick
            test_hb_clean_chain
        ; Alcotest.test_case "overlapping swaps allowed" `Quick
            test_hb_concurrent_ok
        ; Alcotest.test_case "sequential torn exchange" `Quick
            test_hb_torn_exchange
        ; Alcotest.test_case "overlapping torn exchange" `Quick
            test_hb_torn_overlapping
        ; Alcotest.test_case "stale response" `Quick test_hb_stale_response
        ; Alcotest.test_case "multi-object histories" `Quick
            test_hb_check_histories
        ; Alcotest.test_case "recorded multicore run is clean" `Slow
            test_hb_runtime_clean
        ] )
    ]
