(* Tests for Algorithm 1 (the paper's §4 contribution): correctness by
   exhaustive model checking on small instances, invariant monitors
   (Observations 1-4), the Lemma 8 solo bound, and randomized schedules on
   larger instances. *)

module V = Shmem.Value

let make = Core.Swap_ksa.make

let test_parameters_validated () =
  (try
     ignore (make ~n:2 ~k:2 ~m:2);
     Alcotest.fail "accepted n = k"
   with Invalid_argument _ -> ());
  try
    ignore (make ~n:3 ~k:1 ~m:1);
    Alcotest.fail "accepted m = 1"
  with Invalid_argument _ -> ()

let test_object_count () =
  List.iter
    (fun (n, k) ->
      let (module P) = make ~n ~k ~m:(k + 1) in
      Alcotest.(check int)
        (Fmt.str "n=%d k=%d uses n-k objects" n k)
        (n - k) (Array.length P.objects);
      Alcotest.(check bool) "swap-only objects" true
        (Shmem.Protocol.uses_only_swap (module P)))
    [ 2, 1; 5, 1; 5, 2; 8, 4; 16, 3 ]

let test_solo_decides_own_input () =
  (* a process running alone must decide its own input (validity) *)
  let (module P) = make ~n:4 ~k:1 ~m:4 in
  let module E = Shmem.Exec.Make (P) in
  List.iter
    (fun pid ->
      let inputs = [| 0; 1; 2; 3 |] in
      let c = E.initial ~inputs in
      match E.run_solo ~pid ~max_steps:100 c with
      | None -> Alcotest.fail "solo run stuck"
      | Some (c', _) ->
        Alcotest.(check (option int))
          (Fmt.str "p%d decides its input" pid)
          (Some inputs.(pid)) (E.decision c' pid))
    [ 0; 1; 2; 3 ]

let test_solo_step_bound () =
  (* Lemma 8: at most 8(n-k) steps in any solo execution from an initial
     configuration (the monitor checks reachable configurations in the
     randomized test below) *)
  List.iter
    (fun (n, k) ->
      let (module P) = make ~n ~k ~m:(k + 1) in
      let module E = Shmem.Exec.Make (P) in
      let inputs = Array.init n (fun i -> i mod (k + 1)) in
      let c = E.initial ~inputs in
      let bound = Core.Swap_ksa.solo_step_bound ~n ~k in
      List.iter
        (fun pid ->
          match E.run_solo ~pid ~max_steps:bound c with
          | None -> Alcotest.fail (Fmt.str "p%d exceeded 8(n-k) solo" pid)
          | Some (_, trace) ->
            Alcotest.(check bool)
              (Fmt.str "p%d within bound" pid)
              true
              (Shmem.Trace.length trace <= bound))
        (List.init n Fun.id))
    [ 2, 1; 4, 1; 6, 2; 9, 3 ]

let exhaustive n k m lap max_configs =
  let (module P) = make ~n ~k ~m in
  let module C = Checker.Make (P) in
  let prune (c : C.E.config) = Util.lap_prune_pair lap c.C.E.mem in
  C.explore_all_inputs ~prune ~max_configs ()

let test_exhaustive_n2 () =
  Util.check_ok "swap-ksa n=2 k=1 m=2" (exhaustive 2 1 2 4 100_000)

let test_exhaustive_n2_m3 () =
  Util.check_ok "swap-ksa n=2 k=1 m=3" (exhaustive 2 1 3 3 200_000)

let test_exhaustive_n3_k2 () =
  Util.check_ok "swap-ksa n=3 k=2 m=3" (exhaustive 3 2 3 3 300_000)

let test_exhaustive_n3_k1_one_input () =
  let (module P) = make ~n:3 ~k:1 ~m:2 in
  let module C = Checker.Make (P) in
  let prune (c : C.E.config) = Util.lap_prune_pair 2 c.C.E.mem in
  Util.check_ok "swap-ksa n=3 k=1 m=2 inputs 011"
    (C.explore ~prune ~max_configs:200_000 ~inputs:[| 0; 1; 1 |] ())

let test_monitored_random_runs () =
  (* long uniformly random schedules with every §4 observation checked at
     each step and the solo bound probed periodically.  Under uniform
     scheduling an obstruction-free algorithm need not terminate, so only
     safety and the monitors are asserted here; termination is exercised by
     the bursty scheduler below. *)
  let module P = (val make ~n:6 ~k:2 ~m:3 : Core.Swap_ksa.S) in
  let module M = Core.Swap_ksa_monitor.Make (P) in
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 10 do
    let inputs = Array.init 6 (fun _ -> Random.State.int rng 3) in
    let c0 = M.E.initial ~inputs in
    let c, _, _ =
      M.run_checked ~solo_check_every:100 ~sched:(M.E.random rng)
        ~max_steps:3_000 c0
    in
    Alcotest.(check bool) "agreement" true (M.E.check_agreement c);
    Alcotest.(check bool) "validity" true (M.E.check_validity ~inputs c)
  done

let test_bursty_schedules_terminate () =
  (* a scheduler granting solo windows longer than one pass lets everyone
     decide quickly — the practical content of obstruction-freedom *)
  let module P = (val make ~n:6 ~k:2 ~m:3 : Core.Swap_ksa.S) in
  let module M = Core.Swap_ksa_monitor.Make (P) in
  let rng = Random.State.make [| 11 |] in
  for _ = 1 to 10 do
    let inputs = Array.init 6 (fun _ -> Random.State.int rng 3) in
    let c0 = M.E.initial ~inputs in
    let burst = 2 * Core.Swap_ksa.solo_step_bound ~n:6 ~k:2 in
    let _, _, outcome =
      M.run_checked ~sched:(M.E.bursty rng ~burst) ~max_steps:50_000 c0
    in
    Alcotest.(check bool) "terminated" true (outcome = M.E.All_decided)
  done

let test_monitor_catches_violation () =
  (* mutate a final state by hand: a decision without a 2-lap lead must trip
     the monitor *)
  let module P = (val make ~n:2 ~k:1 ~m:2 : Core.Swap_ksa.S) in
  let module M = Core.Swap_ksa_monitor.Make (P) in
  let c0 = M.E.initial ~inputs:[| 0; 1 |] in
  (* run p0 for one full pass so it completes cleanly and increments; then
     feed the monitor a fabricated "after" configuration equal to before:
     domination holds, so check_step must pass *)
  let c1, _ = M.E.step c0 0 in
  M.check_step c0 0 c1;
  (* a shrinking lap counter must be caught: swap the roles of before/after
     once p0 has actually merged something *)
  let c2, _ = M.E.step c1 1 in
  let c3, _ = M.E.step c2 1 in
  let c4, _ = M.E.step c3 0 in
  (* p0's counter can only have grown from c1 to c4; reversing the
     direction fabricates a shrink unless they are equal *)
  let grew =
    Core.Swap_ksa.dominates (P.laps c4.M.E.states.(0)) (P.laps c1.M.E.states.(0))
    && not
         (Core.Swap_ksa.dominates
            (P.laps c1.M.E.states.(0))
            (P.laps c4.M.E.states.(0)))
  in
  if grew then
    try
      M.check_step c4 0 c1;
      Alcotest.fail "monitor accepted a shrinking lap counter"
    with Core.Swap_ksa_monitor.Invariant_violation _ -> ()

let test_total_configuration_detected () =
  (* run p0 solo until it decides; just before its deciding pass the
     configuration must be ⟨V,p⟩-total (Observation 2) *)
  let module P = (val make ~n:3 ~k:1 ~m:2 : Core.Swap_ksa.S) in
  let module M = Core.Swap_ksa_monitor.Make (P) in
  let c0 = M.E.initial ~inputs:[| 1; 0; 0 |] in
  let rec walk c saw_total steps =
    if steps > 100 then Alcotest.fail "p0 did not decide"
    else
      match M.E.decision c 0 with
      | Some v ->
        Alcotest.(check int) "decided own input" 1 v;
        Alcotest.(check bool) "passed through a total configuration" true
          saw_total
      | None ->
        let saw_total = saw_total || M.total c <> None in
        let c, _ = M.E.step c 0 in
        walk c saw_total (steps + 1)
  in
  walk c0 false 0

(* Kuhn's augmenting-path matching: can each object be assigned a distinct
   candidate process?  [candidates.(b)] lists the processes allowed for
   object [b]. *)
let perfect_matching candidates =
  let nk = Array.length candidates in
  let matched = Hashtbl.create 16 in
  (* pid -> object currently assigned *)
  let rec augment b visited =
    List.exists
      (fun q ->
        if List.mem q !visited then false
        else begin
          visited := q :: !visited;
          match Hashtbl.find_opt matched q with
          | None ->
            Hashtbl.replace matched q b;
            true
          | Some b' ->
            if augment b' visited then begin
              Hashtbl.replace matched q b;
              true
            end
            else false
        end)
      candidates.(b)
  in
  let ok = ref true in
  for b = 0 to nk - 1 do
    if not (augment b (ref [])) then ok := false
  done;
  !ok

let test_lemma5_on_observed_executions () =
  (* Lemma 5, executed: a ⟨V,p⟩-total configuration C followed by a
     ⟨V',p'⟩-total configuration C' with V ⋠ V' forces n-k distinct
     processes other than p and p' to swap distinct objects in between.

     Non-dominated total pairs never arise under benign scheduling (every
     clean pass merges what it sees), so we build the adversarial schedule
     from the lemma's own proof idea: run p0 to totality, hide its counter
     by letting three fresh processes each swap one object (their written
     values predate the responses that would have taught them p0's laps),
     then run p4 to totality with a counter that never saw p0's. *)
  let n = 5 and k = 2 in
  let module P = (val make ~n:5 ~k:2 ~m:3 : Core.Swap_ksa.S) in
  let module M = Core.Swap_ksa_monitor.Make (P) in
  let inputs = [| 0; 1; 1; 1; 1 |] in
  (* phase 1: p0 alone until the first total configuration *)
  let rec to_total c pid steps trace =
    if steps > 100 then Alcotest.fail (Fmt.str "p%d never reached totality" pid)
    else
      match M.total c with
      | Some (v, p) when p = pid -> c, v, trace
      | _ ->
        let c', s = M.E.step c pid in
        to_total c' pid (steps + 1) (s :: trace)
  in
  let c, v1, _ = to_total (M.E.initial ~inputs) 0 0 [] in
  (* phase 2: q_i advances i+1 steps, covering B_0..B_i with values written
     before each learned p0's counter *)
  let c, mid_rev =
    List.fold_left
      (fun (c, acc) (pid, steps) ->
        let rec burst c acc i =
          if i = 0 then c, acc
          else
            let c', s = M.E.step c pid in
            burst c' (s :: acc) (i - 1)
        in
        burst c acc steps)
      (c, []) [ 1, 1; 2, 2; 3, 3 ]
  in
  (* phase 3: p4 alone until totality *)
  let _, v2, tail_rev = to_total c 4 0 [] in
  Alcotest.(check bool) "constructed a non-dominated total pair" false
    (Core.Swap_ksa.dominates v2 v1);
  (* the lemma's conclusion on the observed steps between the totals *)
  let between = List.rev_append tail_rev [] @ List.rev mid_rev in
  let candidates =
    Array.init (n - k) (fun b ->
        List.filter_map
          (fun s ->
            if
              s.Shmem.Trace.op.Shmem.Op.obj = b
              && Shmem.Op.is_nontrivial s.Shmem.Trace.op
              && s.Shmem.Trace.pid <> 0 && s.Shmem.Trace.pid <> 4
            then Some s.Shmem.Trace.pid
            else None)
          between
        |> List.sort_uniq compare)
  in
  Alcotest.(check bool) "n-k distinct other processes swap distinct objects"
    true (perfect_matching candidates)

let test_ablation_unsafe_variants_caught () =
  (* the ablation knobs reproduce the design-space: a 1-lap lead and a
     no-merge variant both violate agreement (bench table T8) *)
  List.iter
    (fun (lead, merge) ->
      let (module P) =
        Core.Swap_ksa.make_ablation ~n:2 ~k:1 ~m:2 ~lead ~merge ()
      in
      let module C = Checker.Make (P) in
      let prune (c : C.E.config) = Util.lap_prune_pair 4 c.C.E.mem in
      let r = C.explore_all_inputs ~prune ~max_configs:100_000 () in
      Alcotest.(check bool)
        (Fmt.str "lead=%d merge=%b unsafe" lead merge)
        false (Checker.ok r))
    [ 1, true; 2, false ]

let test_ablation_safe_variant () =
  let (module P) = Core.Swap_ksa.make_ablation ~n:2 ~k:1 ~m:2 ~lead:3 () in
  let module C = Checker.Make (P) in
  let prune (c : C.E.config) = Util.lap_prune_pair 5 c.C.E.mem in
  Util.check_ok "lead=3 safe"
    (C.explore_all_inputs ~prune ~max_configs:300_000 ())

let test_crash_tolerance () =
  (* obstruction-freedom tolerates any number of crashes: with 3 of 6
     processes crashed mid-run (one mid-pass, holding a pending swap), the
     survivors still decide, agree and stay valid *)
  let (module P) = make ~n:6 ~k:2 ~m:3 in
  let module E = Shmem.Exec.Make (P) in
  let rng = Random.State.make [| 13 |] in
  for _ = 1 to 10 do
    let inputs = Array.init 6 (fun _ -> Random.State.int rng 3) in
    let crash_at = [ 1, 3; 3, 17; 5, 40 ] in
    let sched =
      E.with_crashes ~crash_at (E.bursty rng ~burst:100)
    in
    let c, _, _ = E.run ~sched ~max_steps:50_000 (E.initial ~inputs) in
    List.iter
      (fun pid ->
        if not (List.mem_assoc pid crash_at) then
          Alcotest.(check bool)
            (Fmt.str "survivor p%d decided" pid)
            true
            (E.decision c pid <> None))
      (List.init 6 Fun.id);
    Alcotest.(check bool) "agreement" true (E.check_agreement c);
    Alcotest.(check bool) "validity" true (E.check_validity ~inputs c)
  done

let test_dominates () =
  Alcotest.(check bool) "refl" true (Core.Swap_ksa.dominates [| 1; 2 |] [| 1; 2 |]);
  Alcotest.(check bool) "strict" true (Core.Swap_ksa.dominates [| 2; 2 |] [| 1; 2 |]);
  Alcotest.(check bool) "incomparable" false
    (Core.Swap_ksa.dominates [| 2; 0 |] [| 1; 2 |]);
  try
    ignore (Core.Swap_ksa.dominates [| 1 |] [| 1; 2 |]);
    Alcotest.fail "length mismatch accepted"
  with Invalid_argument _ -> ()

let prop_random_schedules_agree =
  QCheck2.Test.make ~name:"random schedules: k-agreement + validity"
    ~count:40
    QCheck2.Gen.(
      quad (int_range 2 7) (int_range 1 3) (int_range 2 4) int)
    (fun (n, k, m, seed) ->
      QCheck2.assume (n > k);
      let (module P) = make ~n ~k ~m in
      let module C = Checker.Make (P) in
      let r = C.random_runs ~seed ~runs:3 ~max_steps:20_000 () in
      Checker.ok r)

let () =
  Alcotest.run "swap_ksa"
    [ ( "structure",
        [ Alcotest.test_case "parameters validated" `Quick
            test_parameters_validated
        ; Alcotest.test_case "object count n-k, swap-only" `Quick
            test_object_count
        ; Alcotest.test_case "dominates" `Quick test_dominates
        ] )
    ; ( "correctness",
        [ Alcotest.test_case "solo decides own input" `Quick
            test_solo_decides_own_input
        ; Alcotest.test_case "Lemma 8 solo bound" `Quick test_solo_step_bound
        ; Alcotest.test_case "exhaustive n=2 k=1 m=2" `Quick test_exhaustive_n2
        ; Alcotest.test_case "exhaustive n=2 k=1 m=3" `Slow
            test_exhaustive_n2_m3
        ; Alcotest.test_case "exhaustive n=3 k=2 m=3" `Slow
            test_exhaustive_n3_k2
        ; Alcotest.test_case "exhaustive n=3 k=1 (one input vector)" `Slow
            test_exhaustive_n3_k1_one_input
        ; Alcotest.test_case "monitored random runs" `Quick
            test_monitored_random_runs
        ; Alcotest.test_case "bursty schedules terminate" `Quick
            test_bursty_schedules_terminate
        ; Alcotest.test_case "crash tolerance" `Quick test_crash_tolerance
        ] )
    ; ( "lemmas",
        [ Alcotest.test_case "Lemma 5 on observed executions" `Quick
            test_lemma5_on_observed_executions
        ] )
    ; ( "ablations",
        [ Alcotest.test_case "unsafe variants caught" `Quick
            test_ablation_unsafe_variants_caught
        ; Alcotest.test_case "lead=3 still safe" `Slow
            test_ablation_safe_variant
        ] )
    ; ( "monitors",
        [ Alcotest.test_case "monitor catches shrink" `Quick
            test_monitor_catches_violation
        ; Alcotest.test_case "total configurations (Observation 2)" `Quick
            test_total_configuration_detected
        ] )
    ; Util.qsuite "properties" [ prop_random_schedules_agree ]
    ]
