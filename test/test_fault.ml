(* Tests for the fault-injection subsystem (lib/fault): plan validation,
   the ddmin shrinker, seeded campaign reproducibility, and the negative
   tests — every manifested object fault must be detected (by the §4
   monitor, the protocol itself, or the sequential-replay atomicity check)
   and shrunk to a 1-minimal schedule. *)

let mk_swap_ksa () = Core.Swap_ksa.make ~n:3 ~k:1 ~m:2

(* ---------- plan validation ---------- *)

let test_validate () =
  let ok plan =
    match Fault.validate ~n:3 ~num_objects:2 plan with
    | Ok () -> ()
    | Error e -> Alcotest.failf "rejected a valid plan: %s" e
  in
  let bad reason plan =
    match Fault.validate ~n:3 ~num_objects:2 plan with
    | Ok () -> Alcotest.failf "accepted %s" reason
    | Error _ -> ()
  in
  ok [];
  ok [ Fault.Crash (0, 0); Fault.Stall (2, 3, 1) ];
  ok [ Fault.Torn_swap 0; Fault.Lost_update 1 ];
  ok [ Fault.Stale_read (1, 1) ];
  ok [ Fault.Crash (1, 4); Fault.Respawn (1, 2) ];
  bad "a crash of an out-of-range pid" [ Fault.Crash (3, 0) ];
  bad "a crash at negative time" [ Fault.Crash (0, -1) ];
  bad "a stall of an out-of-range pid" [ Fault.Stall (-1, 0, 1) ];
  bad "a zero-duration stall" [ Fault.Stall (0, 0, 0) ];
  bad "a torn swap on an out-of-range object" [ Fault.Torn_swap 2 ];
  bad "a zero-lag stale read" [ Fault.Stale_read (0, 0) ];
  bad "two object faults on one object"
    [ Fault.Torn_swap 0; Fault.Lost_update 0 ];
  bad "a respawn of an out-of-range pid" [ Fault.Respawn (3, 1) ];
  bad "a zero-delay respawn" [ Fault.Respawn (0, 0) ];
  bad "two respawns of one pid" [ Fault.Respawn (0, 1); Fault.Respawn (0, 2) ]

let test_kinds () =
  List.iter
    (fun k ->
      match Fault.kind_of_string (Fault.kind_to_string k) with
      | Ok k' ->
        Alcotest.(check bool)
          (Fault.kind_to_string k ^ " round-trips")
          true (k = k')
      | Error e -> Alcotest.fail e)
    Fault.all_kinds;
  (match Fault.kinds_of_string "all" with
  | Ok ks -> Alcotest.(check bool) "all group" true (ks = Fault.all_kinds)
  | Error e -> Alcotest.fail e);
  (match Fault.kinds_of_string "benign" with
  | Ok ks -> Alcotest.(check bool) "benign group" true (ks = Fault.benign_kinds)
  | Error e -> Alcotest.fail e);
  (match Fault.kinds_of_string "crash,torn" with
  | Ok ks ->
    Alcotest.(check bool) "comma list" true (ks = [ Fault.Crash_k; Fault.Torn_k ])
  | Error e -> Alcotest.fail e);
  (match Fault.kinds_of_string "recovery" with
  | Ok ks ->
    Alcotest.(check bool) "recovery group" true (ks = Fault.recovery_kinds)
  | Error e -> Alcotest.fail e);
  (match Fault.kind_of_string "respawn" with
  | Ok k -> Alcotest.(check bool) "respawn parses" true (k = Fault.Respawn_k)
  | Error e -> Alcotest.fail e);
  (* seed stability: historical 'all' campaigns must not silently start
     drawing kill-and-heal plans *)
  Alcotest.(check bool) "all excludes respawn" false
    (List.mem Fault.Respawn_k Fault.all_kinds);
  match Fault.kinds_of_string "crash,bogus" with
  | Ok _ -> Alcotest.fail "accepted an unknown kind"
  | Error _ -> ()

let test_gen_plan () =
  (* deterministic in the rng; always validates; object faults hit
     distinct objects *)
  let gen seed =
    Fault.gen_plan
      ~rng:(Random.State.make [| seed |])
      ~n:4 ~num_objects:3 Fault.all_kinds
  in
  for seed = 0 to 49 do
    let plan = gen seed in
    Alcotest.(check bool)
      (Fmt.str "seed %d: same rng, same plan" seed)
      true
      (plan = gen seed);
    match Fault.validate ~n:4 ~num_objects:3 plan with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: generated invalid plan: %s" seed e
  done

let test_gen_plan_recovery_pairs () =
  (* kill-and-heal generation: plans validate and every respawn heals an
     actual crash of the same pid (either an earlier draw or the fresh
     kill drawn alongside it) *)
  let respawned = ref 0 in
  for seed = 0 to 99 do
    let plan =
      Fault.gen_plan
        ~rng:(Random.State.make [| seed |])
        ~n:4 ~num_objects:3 Fault.recovery_kinds
    in
    (match Fault.validate ~n:4 ~num_objects:3 plan with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: invalid recovery plan: %s" seed e);
    List.iter
      (fun (p, d) ->
        incr respawned;
        Alcotest.(check bool)
          (Fmt.str "seed %d: respawn(p%d+%d) heals a crash" seed p d)
          true
          (List.exists
             (function Fault.Crash (q, _) -> q = p | _ -> false)
             plan))
      (Fault.respawns plan)
  done;
  Alcotest.(check bool) "the generator does draw respawns" true
    (!respawned > 0)

(* ---------- ddmin ---------- *)

let test_ddmin () =
  (* a subset-membership oracle: the minimal violating sublist is exactly
     the target subset, in input order *)
  let input = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let needs targets l = List.for_all (fun x -> List.mem x l) targets in
  List.iter
    (fun targets ->
      let got = Fault.ddmin ~violates:(needs targets) input in
      Alcotest.(check (list int))
        (Fmt.str "targets %a" Fmt.(Dump.list int) targets)
        (List.filter (fun x -> List.mem x targets) input)
        got)
    [ [ 1 ]; [ 8 ]; [ 1; 8 ]; [ 3; 4; 5 ]; [ 2; 7 ]; input; [] ];
  (* 1-minimality holds for a non-monotone oracle too: length >= 3 *)
  let violates l = List.length l >= 3 in
  let got = Fault.ddmin ~violates input in
  Alcotest.(check int) "non-monotone oracle shrunk to 3" 3 (List.length got);
  List.iteri
    (fun i _ ->
      let without = List.filteri (fun j _ -> j <> i) got in
      Alcotest.(check bool)
        (Fmt.str "dropping element %d breaks it" i)
        false (violates without))
    got;
  (* the input itself must violate *)
  match Fault.ddmin ~violates:(fun _ -> false) input with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ddmin accepted a non-violating input"

let prop_ddmin_one_minimal =
  QCheck2.Test.make ~name:"ddmin results are 1-minimal" ~count:200
    QCheck2.Gen.(
      pair (list_size (int_range 1 20) (int_range 0 9)) (int_range 1 5))
    (fun (input, threshold) ->
      (* oracle: at least [threshold] even elements *)
      let violates l =
        List.length (List.filter (fun x -> x mod 2 = 0) l) >= threshold
      in
      QCheck2.assume (violates input);
      let got = Fault.ddmin ~violates input in
      violates got
      && List.for_all
           (fun i -> not (violates (List.filteri (fun j _ -> j <> i) got)))
           (List.init (List.length got) Fun.id))

(* ---------- simulator runs and detection ---------- *)

let test_benign_run_clean () =
  (* crashes and stalls are model adversity: no fault ever "fires", the
     trace stays atomic, survivors decide *)
  let (module P) = mk_swap_ksa () in
  let module F = Fault.Sim (P) in
  let plan = [ Fault.Crash (2, 4); Fault.Stall (1, 0, 3) ] in
  (* bursty, not round-robin: strict alternation between the two survivors
     can livelock an obstruction-free algorithm forever *)
  let rng = Random.State.make [| 17 |] in
  let r =
    F.run plan
      ~sched:(F.E.bursty rng ~burst:20)
      ~max_steps:10_000 ~inputs:[| 0; 1; 1 |]
  in
  Alcotest.(check int) "nothing fired" 0 (F.fired_total r);
  (match F.check_atomic r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "benign trace not atomic: %s" e);
  Alcotest.(check bool) "no violation" true
    (F.detect ~inputs:[| 0; 1; 1 |] r = None);
  List.iter
    (fun pid ->
      Alcotest.(check bool)
        (Fmt.str "survivor p%d decided" pid)
        true
        (F.E.decision r.F.final pid <> None))
    [ 0; 1 ]

let test_run_schedule_reproducible () =
  (* the shrinker's oracle: same plan + same schedule, same everything *)
  let (module P) = mk_swap_ksa () in
  let module F = Fault.Sim (P) in
  let plan = [ Fault.Torn_swap 0; Fault.Stale_read (1, 1) ] in
  let inputs = [| 1; 0; 1 |] in
  let schedule = [ 0; 1; 2; 1; 0; 2; 2; 1; 0; 0; 1; 2; 0; 1; 2 ] in
  let r1 = F.run_schedule plan ~inputs schedule in
  let r2 = F.run_schedule plan ~inputs schedule in
  Alcotest.(check bool) "same schedule out" true
    (F.schedule_of r1 = F.schedule_of r2);
  Alcotest.(check int) "same firings" (F.fired_total r1) (F.fired_total r2);
  Alcotest.(check bool) "same verdict" true
    (F.detect ~inputs r1 = F.detect ~inputs r2)

let test_benign_campaign_zero_violations () =
  (* crash/stall-only campaigns must be perfectly clean: any violation is a
     real bug in Algorithm 1 or the engine *)
  let (module P) = mk_swap_ksa () in
  let module F = Fault.Sim (P) in
  let s = F.campaign ~seed:7 ~runs:40 ~kinds:Fault.benign_kinds () in
  Alcotest.(check int) "40 runs" 40 s.F.runs;
  Alcotest.(check int) "no object fault ever fires" 0 s.F.fired;
  Alcotest.(check int) "no violations" 0 (List.length s.F.violations);
  Alcotest.(check int) "no detections" 0 (List.length s.F.detections);
  Alcotest.(check int) "no missed" 0 s.F.missed

let test_object_faults_detected_each_kind () =
  (* the negative tests, kind by kind: whenever a torn swap / lost update /
     stale read manifests on Algorithm 1, something downstream must flag
     it, and the shrinker must deliver a schedule for every detection *)
  let (module P) = mk_swap_ksa () in
  let module F = Fault.Sim (P) in
  List.iter
    (fun (kind, burst) ->
      let name = Fault.kind_to_string kind in
      (* small bursts force interleaving (a torn swap only manifests when a
         foreign access lands inside the tear); the step cap keeps the
         stale-read runs that livelock cheap to shrink *)
      let s =
        F.campaign ~burst ~max_steps:5_000 ~seed:11 ~runs:30 ~kinds:[ kind ] ()
      in
      Alcotest.(check int) (name ^ ": no unexpected violations") 0
        (List.length s.F.violations);
      Alcotest.(check int) (name ^ ": nothing missed") 0 s.F.missed;
      Alcotest.(check bool) (name ^ ": the fault manifested") true
        (s.F.fired > 0);
      Alcotest.(check bool) (name ^ ": and was detected") true
        (s.F.detections <> []);
      List.iter
        (fun (f : F.finding) ->
          match f.F.violation with
          | F.Liveness _ -> Alcotest.failf "%s: liveness recorded as detection" name
          | _ ->
            Alcotest.(check bool)
              (Fmt.str "%s: run %d shrunk" name f.F.run)
              true (f.F.schedule <> None))
        s.F.detections)
    [ Fault.Torn_k, 3; Fault.Lost_k, 8; Fault.Stale_k, 8 ]

let test_detection_schedules_are_minimal () =
  (* replay each shrunk schedule under its plan with pinned inputs: it must
     reproduce a violation of the same class, and dropping any single step
     must not (1-minimality) *)
  let (module P) = mk_swap_ksa () in
  let module F = Fault.Sim (P) in
  let inputs = [| 0; 1; 1 |] in
  let s = F.campaign ~inputs ~burst:3 ~seed:23 ~runs:25 ~kinds:[ Fault.Torn_k ] () in
  Alcotest.(check bool) "found detections to audit" true (s.F.detections <> []);
  List.iter
    (fun (f : F.finding) ->
      match f.F.schedule with
      | None -> ()
      | Some schedule ->
        let cls = F.violation_class f.F.violation in
        let reproduces sched =
          let r = F.run_schedule f.F.plan ~inputs sched in
          match F.detect ~inputs r with
          | Some v -> F.violation_class v = cls
          | None -> false
        in
        Alcotest.(check bool)
          (Fmt.str "run %d: schedule reproduces a %s violation" f.F.run cls)
          true (reproduces schedule);
        List.iteri
          (fun i _ ->
            let without = List.filteri (fun j _ -> j <> i) schedule in
            Alcotest.(check bool)
              (Fmt.str "run %d: dropping step %d no longer reproduces" f.F.run
                 i)
              false (reproduces without))
          schedule)
    s.F.detections

let test_monitor_wired_campaign () =
  (* the §4 invariant monitor as an [on_step] hook, exactly as the CLI
     wires it: object-fault campaigns stay fully detected (missed = 0) and
     benign campaigns never trip it *)
  let (module P) = mk_swap_ksa () in
  let module F = Fault.Sim (P) in
  let module M = Core.Swap_ksa_monitor.Make (P) in
  let snap (c : F.E.config) = { M.states = c.F.E.states; mem = c.F.E.mem } in
  let on_step before pid after =
    match M.check_step_snap (snap before) pid (snap after) with
    | () -> None
    | exception Core.Swap_ksa_monitor.Invariant_violation msg -> Some msg
  in
  let s = F.campaign ~on_step ~seed:5 ~runs:25 ~kinds:Fault.all_kinds () in
  Alcotest.(check int) "monitored: no unexpected violations" 0
    (List.length s.F.violations);
  Alcotest.(check int) "monitored: nothing missed" 0 s.F.missed;
  let b = F.campaign ~on_step ~seed:5 ~runs:25 ~kinds:Fault.benign_kinds () in
  Alcotest.(check int) "benign monitored: clean" 0
    (List.length b.F.violations + b.F.missed)

let test_campaign_reproducible () =
  (* identical seeds, identical summaries — plans, firings, findings,
     shrunk schedules, everything *)
  let (module P) = mk_swap_ksa () in
  let module F = Fault.Sim (P) in
  let go () = F.campaign ~seed:42 ~runs:20 ~kinds:Fault.all_kinds () in
  let s1 = go () and s2 = go () in
  Alcotest.(check bool) "bit-identical summaries" true (s1 = s2);
  (* and a different seed genuinely changes the campaign *)
  let s3 = F.campaign ~seed:43 ~runs:20 ~kinds:Fault.all_kinds () in
  Alcotest.(check bool) "different seed, different campaign" true
    (s1.F.steps <> s3.F.steps || s1.F.fired <> s3.F.fired
    || s1.F.detections <> s3.F.detections)

let test_protocol_can_reject_faulty_responses () =
  (* CAS consensus proves certain responses impossible and raises on them;
     under object faults that is a legitimate detection channel
     ([Protocol_raise]), never an escaping exception *)
  let (module P) = Baselines.Cas_consensus.make ~n:3 ~m:3 in
  let module F = Fault.Sim (P) in
  let s = F.campaign ~seed:3 ~runs:30 ~kinds:[ Fault.Stale_k; Fault.Lost_k ] () in
  Alcotest.(check int) "cas: no unexpected violations" 0
    (List.length s.F.violations);
  Alcotest.(check int) "cas: nothing missed" 0 s.F.missed;
  Alcotest.(check bool) "cas: faults manifested" true (s.F.fired > 0);
  Alcotest.(check bool) "cas: and were detected" true (s.F.detections <> [])

let test_recovery_campaign_clean () =
  (* kill-and-heal on the simulator: revived incarnations re-enter against
     the memory residue their predecessors left, the monitor re-anchors
     across each boundary, and every run stays within the degraded
     agreement bound — zero violations, with actual revivals exercised *)
  let (module P) = mk_swap_ksa () in
  let module F = Fault.Sim (P) in
  let s = F.campaign ~seed:13 ~runs:40 ~kinds:Fault.recovery_kinds () in
  Alcotest.(check int) "no violations" 0 (List.length s.F.violations);
  Alcotest.(check int) "no object faults in a recovery campaign" 0 s.F.fired;
  Alcotest.(check bool) "revivals happened" true (s.F.revived > 0);
  (* reproducible like every other campaign *)
  let s' = F.campaign ~seed:13 ~runs:40 ~kinds:Fault.recovery_kinds () in
  Alcotest.(check bool) "seed-reproducible" true (s = s')

let test_recovery_run_revives () =
  (* a single kill-and-heal plan end to end: the crashed pid is revived at
     its window and decides with everyone else *)
  let (module P) = mk_swap_ksa () in
  let module F = Fault.Sim (P) in
  let inputs = [| 0; 1; 1 |] in
  let plan = [ Fault.Crash (1, 2); Fault.Respawn (1, 5) ] in
  let rng = Random.State.make [| 31 |] in
  let r =
    F.run plan ~sched:(F.E.bursty rng ~burst:20) ~max_steps:10_000 ~inputs
  in
  Alcotest.(check bool) "p1 revived" true
    (List.exists (fun (p, _) -> p = 1) r.F.revived);
  List.iter
    (fun pid ->
      Alcotest.(check bool)
        (Fmt.str "p%d decided" pid)
        true
        (F.E.decision r.F.final pid <> None))
    [ 0; 1; 2 ];
  Alcotest.(check bool) "within the degraded bound" true
    (F.detect ~bound:(P.k + List.length r.F.revived) ~inputs r = None)

(* ---------- multicore campaigns ---------- *)

let test_mc_rejects_object_kinds () =
  let (module P) = mk_swap_ksa () in
  let module Mc = Fault.Mc (P) in
  try
    ignore (Mc.campaign ~seed:1 ~runs:1 ~kinds:[ Fault.Torn_k ] ());
    Alcotest.fail "multicore campaign accepted an object-fault kind"
  with Invalid_argument _ -> ()

let test_mc_benign_campaign () =
  (* a small real-domain campaign: graceful degradation holds on every run *)
  let (module P) = mk_swap_ksa () in
  let module Mc = Fault.Mc (P) in
  let s = Mc.campaign ~seed:2 ~runs:3 ~kinds:Fault.benign_kinds () in
  Alcotest.(check int) "3 runs" 3 s.Mc.runs;
  Alcotest.(check (list string)) "no degradation violations" []
    (List.map (fun (f : Mc.finding) -> f.Mc.detail) s.Mc.violations)

let test_mc_rejects_respawn_without_recover () =
  let (module P) = mk_swap_ksa () in
  let module Mc = Fault.Mc (P) in
  try
    ignore (Mc.campaign ~seed:1 ~runs:1 ~kinds:Fault.recovery_kinds ());
    Alcotest.fail "unsupervised campaign accepted Respawn_k"
  with Invalid_argument _ -> ()

let test_mc_supervised_campaign () =
  (* supervised kill-and-heal on real domains: crashed pids come back on
     fresh domains against the same arena; every run must satisfy the
     degraded contract, the cross-boundary HB check and the prop pack *)
  let (module P) = mk_swap_ksa () in
  let module Mc = Fault.Mc (P) in
  let module M = Core.Swap_ksa_monitor.Make (P) in
  let s =
    Mc.campaign ~pack:M.online_props ~seed:4 ~runs:4
      ~kinds:Fault.recovery_kinds ~recover:true ()
  in
  Alcotest.(check int) "4 runs" 4 s.Mc.runs;
  Alcotest.(check (list string)) "no violations" []
    (List.map (fun (f : Mc.finding) -> f.Mc.detail) s.Mc.violations);
  Alcotest.(check bool) "supervision rounds counted" true (s.Mc.rounds >= 4);
  Alcotest.(check bool) "hb checked on merged histories" true
    (s.Mc.hb_checked > 0)

let () =
  Alcotest.run "fault"
    [ ( "plans",
        [ Alcotest.test_case "validation" `Quick test_validate
        ; Alcotest.test_case "kind names" `Quick test_kinds
        ; Alcotest.test_case "plan generation" `Quick test_gen_plan
        ; Alcotest.test_case "kill-and-heal generation" `Quick
            test_gen_plan_recovery_pairs
        ] )
    ; ( "ddmin",
        [ Alcotest.test_case "shrinking" `Quick test_ddmin ] )
    ; ( "simulator",
        [ Alcotest.test_case "benign run is clean" `Quick test_benign_run_clean
        ; Alcotest.test_case "run_schedule reproducible" `Quick
            test_run_schedule_reproducible
        ; Alcotest.test_case "benign campaign has zero violations" `Quick
            test_benign_campaign_zero_violations
        ; Alcotest.test_case "object faults detected, kind by kind" `Slow
            test_object_faults_detected_each_kind
        ; Alcotest.test_case "detection schedules are 1-minimal" `Slow
            test_detection_schedules_are_minimal
        ; Alcotest.test_case "monitor-wired campaigns" `Slow
            test_monitor_wired_campaign
        ; Alcotest.test_case "campaigns are seed-reproducible" `Slow
            test_campaign_reproducible
        ; Alcotest.test_case "protocols may reject faulty responses" `Quick
            test_protocol_can_reject_faulty_responses
        ; Alcotest.test_case "recovery campaign is clean" `Slow
            test_recovery_campaign_clean
        ; Alcotest.test_case "kill-and-heal run revives and decides" `Quick
            test_recovery_run_revives
        ] )
    ; ( "multicore",
        [ Alcotest.test_case "object kinds rejected" `Quick
            test_mc_rejects_object_kinds
        ; Alcotest.test_case "benign campaign degrades gracefully" `Quick
            test_mc_benign_campaign
        ; Alcotest.test_case "respawn kind needs supervision" `Quick
            test_mc_rejects_respawn_without_recover
        ; Alcotest.test_case "supervised kill-and-heal campaign" `Slow
            test_mc_supervised_campaign
        ] )
    ; Util.qsuite "fault-props" [ prop_ddmin_one_minimal ]
    ]
