(* Tests for the execution engine: stepping, schedulers, replay, covering,
   indistinguishability and trace utilities (§3 of the paper). *)

module V = Shmem.Value
module Op = Shmem.Op

(* a tiny deterministic protocol for exercising the engine: two processes,
   one readable swap object; each process swaps its input then reads, and
   decides the value it reads *)
module Tiny = struct
  let name = "tiny"
  let n = 2
  let k = 2 (* not an agreement protocol; engine mechanics only *)
  let num_inputs = 2
  let objects = [| Shmem.Obj_kind.Readable_swap Shmem.Obj_kind.Unbounded |]
  let init_object _ = V.Bot

  type state = { input : int; step : int; decided : int option }

  let init ~pid:_ ~input = { input; step = 0; decided = None }

  let poised s =
    if s.step = 0 then Op.swap 0 (V.Int s.input) else Op.read 0

  let on_response s resp =
    if s.step = 0 then { s with step = 1 }
    else
      match resp with
      | V.Int w -> { s with decided = Some w }
      | _ -> { s with decided = Some s.input }

  let decision s = s.decided
  let equal_state = ( = )
  let hash_state = Hashtbl.hash
  let pp_state ppf s = Fmt.pf ppf "{input=%d step=%d}" s.input s.step
  let space_bound ~n:_ ~k:_ = Array.length objects
  let symmetry = Shmem.Protocol.Asymmetric
  let recovery = Shmem.Protocol.Restart
end

module E = Shmem.Exec.Make (Tiny)

let initial () = E.initial ~inputs:[| 0; 1 |]

let test_initial () =
  let c = initial () in
  Alcotest.(check bool) "object starts at ⊥" true (V.equal (E.value c 0) V.Bot);
  Alcotest.(check (list int)) "nobody decided" [] (E.decided_values c);
  Alcotest.(check (list int)) "both undecided" [ 0; 1 ] (E.undecided c)

let test_step_semantics () =
  let c = initial () in
  let c, s = E.step c 0 in
  Alcotest.(check bool) "p0 swapped 0 in" true (V.equal (E.value c 0) (V.Int 0));
  Alcotest.(check bool) "p0 got ⊥ back" true (V.equal s.Shmem.Trace.resp V.Bot);
  let c, s = E.step c 1 in
  Alcotest.(check bool) "p1 swapped 1 in" true (V.equal (E.value c 0) (V.Int 1));
  Alcotest.(check bool) "p1 got 0 back" true
    (V.equal s.Shmem.Trace.resp (V.Int 0))

let test_step_after_decision_rejected () =
  let c = initial () in
  let c, _ = E.step c 0 in
  let c, _ = E.step c 0 in
  Alcotest.(check (option int)) "p0 decided own value" (Some 0) (E.decision c 0);
  try
    ignore (E.step c 0);
    Alcotest.fail "stepped a decided process"
  with Invalid_argument _ -> ()

let test_run_script_and_replay () =
  let c = initial () in
  let c', trace = E.run_script c [ 0; 1; 0; 1 ] in
  Alcotest.(check int) "4 steps" 4 (Shmem.Trace.length trace);
  Alcotest.(check bool) "all decided" true (E.all_decided c');
  (* replay must reproduce identical responses *)
  let c'' = E.replay (initial ()) trace in
  Alcotest.(check bool) "replay reaches same configuration" true
    (E.equal_config c' c'')

let test_run_solo () =
  let c = initial () in
  match E.run_solo ~pid:1 ~max_steps:10 c with
  | None -> Alcotest.fail "solo run did not decide"
  | Some (c', trace) ->
    Alcotest.(check int) "two solo steps" 2 (Shmem.Trace.length trace);
    Alcotest.(check (option int)) "p1 decided its input" (Some 1)
      (E.decision c' 1);
    Alcotest.(check bool) "p1-only" true
      (Shmem.Trace.is_p_only ~allowed:(Int.equal 1) trace)

let test_round_robin_runs_all () =
  let c = initial () in
  let c', _, outcome = E.run ~sched:E.round_robin ~max_steps:100 c in
  Alcotest.(check bool) "all decided" true (E.all_decided c');
  Alcotest.(check bool) "outcome all-decided" true (outcome = E.All_decided)

let test_covers () =
  let c = initial () in
  (* both processes are poised to Swap object 0: {p0} covers {0}, and
     {p0,p1} does not cover {0} (sizes differ) *)
  Alcotest.(check bool) "p0 covers B0" true (E.covers c ~pids:[ 0 ] ~objs:[ 0 ]);
  Alcotest.(check bool) "size mismatch rejected" false
    (E.covers c ~pids:[ 0; 1 ] ~objs:[ 0 ]);
  (* after its swap, p0 is poised to Read: no longer covering *)
  let c', _ = E.step c 0 in
  Alcotest.(check bool) "reader does not cover" false
    (E.covers c' ~pids:[ 0 ] ~objs:[ 0 ])

let test_indistinguishability () =
  let c1 = E.initial ~inputs:[| 0; 1 |] in
  let c2 = E.initial ~inputs:[| 0; 0 |] in
  Alcotest.(check bool) "same state for p0" true
    (E.indistinguishable_to ~pids:[ 0 ] c1 c2);
  Alcotest.(check bool) "different state for p1" false
    (E.indistinguishable_to ~pids:[ 1 ] c1 c2);
  (* a step by p1 is invisible to p0's state *)
  let c1', _ = E.step c1 1 in
  Alcotest.(check bool) "p0 cannot see p1's step in its state" true
    (E.indistinguishable_to ~pids:[ 0 ] c1 c1')

let test_trace_utilities () =
  let c = initial () in
  let _, trace = E.run_script c [ 0; 1; 0 ] in
  Alcotest.(check (list int)) "pids" [ 0; 1 ] (Shmem.Trace.pids trace);
  Alcotest.(check (list int)) "objects accessed" [ 0 ]
    (Shmem.Trace.objects_accessed trace);
  Alcotest.(check int) "steps by p0" 2 (Shmem.Trace.steps_by ~pid:0 trace);
  let st = Shmem.Stats.of_trace trace in
  Alcotest.(check int) "stats total" 3 st.Shmem.Stats.total_steps;
  Alcotest.(check int) "stats nontrivial" 2 st.Shmem.Stats.nontrivial_ops;
  Alcotest.(check int) "stats reads" 1 st.Shmem.Stats.reads

let test_trace_indistinguishable () =
  let c = initial () in
  let _, t1 = E.run_script c [ 0; 1 ] in
  let _, t2 = E.run_script c [ 0 ] in
  Alcotest.(check bool) "same p0 view" true
    (Shmem.Trace.indistinguishable_to ~pid:0 t1 t2);
  Alcotest.(check bool) "different p1 view" false
    (Shmem.Trace.indistinguishable_to ~pid:1 t1 t2)

let test_schedule_parse () =
  (match Shmem.Schedule.parse "0x3, 1, (2 0)x2" with
  | Ok pids ->
    Alcotest.(check (list int)) "parsed" [ 0; 0; 0; 1; 2; 0; 2; 0 ] pids
  | Error e -> Alcotest.fail e);
  (match Shmem.Schedule.parse "" with
  | Ok pids -> Alcotest.(check (list int)) "empty" [] pids
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Shmem.Schedule.parse bad with
      | Ok _ -> Alcotest.fail (Fmt.str "accepted %S" bad)
      | Error _ -> ())
    [ "(0 1"; "x3"; "0x"; "0)"; "a" ]

let test_schedule_parse_limits () =
  (* oversized literals and repetitions come back as [Error] with a
     diagnostic — never as an exception or an attempt to materialize a
     gigantic list *)
  let contains s needle =
    let ln = String.length needle and ls = String.length s in
    let rec go i = i + ln <= ls && (String.sub s i ln = needle || go (i + 1)) in
    go 0
  in
  let expect_error ~mentions input =
    match Shmem.Schedule.parse input with
    | Ok _ -> Alcotest.failf "accepted %S" input
    | Error e ->
      if not (contains e mentions) then
        Alcotest.failf "error for %S is %S; expected a mention of %S" input e
          mentions
  in
  (* a digit run that does not fit in an [int] *)
  expect_error ~mentions:"does not fit" "99999999999999999999999";
  expect_error ~mentions:"does not fit" "0x99999999999999999999999";
  (* repetition counts and group expansions past the 1,000,000-step cap *)
  expect_error ~mentions:"cap" "0x100000000";
  expect_error ~mentions:"cap" "(0 1 2)x400000";
  (* exactly at the cap is still accepted *)
  match Shmem.Schedule.parse "0x1000000" with
  | Ok pids ->
    Alcotest.(check int) "cap-sized schedule" 1_000_000 (List.length pids)
  | Error e -> Alcotest.fail e

let prop_schedule_roundtrip =
  QCheck2.Test.make ~name:"Schedule.to_string/parse round-trip" ~count:300
    QCheck2.Gen.(small_list (int_range 0 9))
    (fun pids ->
      match Shmem.Schedule.parse (Shmem.Schedule.to_string pids) with
      | Ok pids' -> pids = pids'
      | Error _ -> false)

let prop_replay_deterministic =
  (* re-running any schedule from the same initial configuration reproduces
     the same trace (the engine is deterministic) *)
  QCheck2.Test.make ~name:"replay is deterministic" ~count:100
    QCheck2.Gen.(small_list (int_range 0 1))
    (fun pids ->
      let c = initial () in
      (* drop steps for already-decided processes *)
      let run () =
        List.fold_left
          (fun (c, acc) pid ->
            match E.decision c pid with
            | Some _ -> c, acc
            | None ->
              let c', s = E.step c pid in
              c', s :: acc)
          (c, []) pids
      in
      let c1, t1 = run () in
      let c2, t2 = run () in
      E.equal_config c1 c2
      && List.equal
           (fun a b ->
             Shmem.Op.equal a.Shmem.Trace.op b.Shmem.Trace.op
             && Shmem.Value.equal a.Shmem.Trace.resp b.Shmem.Trace.resp)
           t1 t2)

let test_timeline_render () =
  let c = initial () in
  let _, trace = E.run_script c [ 0; 1; 0; 1 ] in
  let out = Fmt.str "@[<v>%a@]" (fun ppf -> Shmem.Timeline.render ~n:2 ppf) trace in
  (* every step appears: two swaps and two reads *)
  let count needle =
    let rec go i acc =
      if i + String.length needle > String.length out then acc
      else if String.sub out i (String.length needle) = needle then
        go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "two swaps drawn" 2 (count "S0");
  Alcotest.(check int) "two reads drawn" 2 (count "r0")

let test_with_crashes () =
  (* a crashed process is never scheduled again; the survivor still runs *)
  let c = initial () in
  let sched = E.with_crashes ~crash_at:[ 1, 0 ] E.round_robin in
  let c', trace, _ = E.run ~sched ~max_steps:20 c in
  Alcotest.(check int) "p1 took no steps" 0 (Shmem.Trace.steps_by ~pid:1 trace);
  Alcotest.(check bool) "p0 decided" true (E.decision c' 0 <> None);
  Alcotest.(check bool) "p1 undecided" true (E.decision c' 1 = None)

let test_with_crashes_never_reschedules () =
  (* crashed pids take no step at or after their crash time, under any
     scheduler and crash pattern; the full trace positions prove it *)
  let (module P) = Core.Swap_ksa.make ~n:4 ~k:1 ~m:2 in
  let module E4 = Shmem.Exec.Make (P) in
  let rng = Random.State.make [| 11 |] in
  for trial = 1 to 20 do
    let crash_at =
      [ Random.State.int rng 4, Random.State.int rng 30
      ; Random.State.int rng 4, Random.State.int rng 30
      ]
    in
    let sched =
      E4.with_crashes ~crash_at
        (if trial mod 2 = 0 then E4.round_robin else E4.random rng)
    in
    let inputs = [| 0; 1; 0; 1 |] in
    let _, trace, _ = E4.run ~sched ~max_steps:200 (E4.initial ~inputs) in
    List.iteri
      (fun i s ->
        let pid = s.Shmem.Trace.pid in
        match List.assoc_opt pid crash_at with
        | Some t when i >= t ->
          Alcotest.failf "trial %d: crashed p%d scheduled at step %d >= %d"
            trial pid i t
        | _ -> ())
      trace
  done;
  (* crashing everyone from step 0 stops the run immediately *)
  let sched =
    E4.with_crashes ~crash_at:[ 0, 0; 1, 0; 2, 0; 3, 0 ] E4.round_robin
  in
  let _, trace, outcome =
    E4.run ~sched ~max_steps:100 (E4.initial ~inputs:[| 0; 1; 0; 1 |])
  in
  Alcotest.(check int) "no step taken" 0 (Shmem.Trace.length trace);
  Alcotest.(check bool) "outcome stopped" true (outcome = E4.Stopped)

let test_with_crashes_bursty_survivors () =
  (* crash faults composed with the bursty scheduler: the survivors of a
     partial crash pattern still decide, and their decisions satisfy
     k-agreement and validity *)
  let (module P) = Core.Swap_ksa.make ~n:4 ~k:1 ~m:2 in
  let module E4 = Shmem.Exec.Make (P) in
  let rng = Random.State.make [| 29 |] in
  let inputs = [| 0; 1; 1; 0 |] in
  let crash_at = [ 1, 5; 3, 9 ] in
  let sched = E4.with_crashes ~crash_at (E4.bursty rng ~burst:40) in
  let c', trace, outcome =
    E4.run ~sched ~max_steps:50_000 (E4.initial ~inputs)
  in
  (* the crashed pair never decides, so the run ends by exhausting the
     enabled processes, not by universal decision *)
  Alcotest.(check bool) "run stops" true (outcome = E4.Stopped);
  List.iter
    (fun pid ->
      Alcotest.(check bool) (Fmt.str "survivor p%d decided" pid) true
        (E4.decision c' pid <> None))
    [ 0; 2 ];
  List.iter
    (fun (pid, t) ->
      Alcotest.(check bool) (Fmt.str "crashed p%d undecided" pid) true
        (E4.decision c' pid = None);
      Alcotest.(check bool) (Fmt.str "p%d took at most %d steps" pid t) true
        (Shmem.Trace.steps_by ~pid trace <= t))
    crash_at;
  let decided = E4.decided_values c' in
  Alcotest.(check bool) "1-agreement among survivors" true
    (List.length (List.sort_uniq compare decided) <= 1);
  List.iter
    (fun v ->
      Alcotest.(check bool) "validity" true (Array.exists (Int.equal v) inputs))
    decided

let test_crash_all_every_scheduler () =
  (* crashing everyone at step 0 yields [Stopped] with an empty trace under
     every built-in scheduler, and crashing all but one leaves a solo
     survivor that must decide (obstruction-freedom) *)
  let (module P) = Core.Swap_ksa.make ~n:4 ~k:1 ~m:2 in
  let module E4 = Shmem.Exec.Make (P) in
  let rng = Random.State.make [| 31 |] in
  let scheds () =
    [ "round_robin", E4.round_robin
    ; "random", E4.random rng
    ; "bursty", E4.bursty rng ~burst:8
    ; "solo", E4.solo 0
    ]
  in
  let inputs = [| 1; 0; 1; 0 |] in
  List.iter
    (fun (name, sched) ->
      let sched =
        E4.with_crashes ~crash_at:[ 0, 0; 1, 0; 2, 0; 3, 0 ] sched
      in
      let _, trace, outcome =
        E4.run ~sched ~max_steps:100 (E4.initial ~inputs)
      in
      Alcotest.(check int) (name ^ ": no steps") 0 (Shmem.Trace.length trace);
      Alcotest.(check bool) (name ^ ": stopped") true (outcome = E4.Stopped))
    (scheds ());
  List.iter
    (fun (name, sched) ->
      let sched = E4.with_crashes ~crash_at:[ 1, 0; 2, 0; 3, 0 ] sched in
      let c', trace, outcome =
        E4.run ~sched ~max_steps:1_000 (E4.initial ~inputs)
      in
      Alcotest.(check bool) (name ^ ": sole survivor decided") true
        (E4.decision c' 0 <> None);
      Alcotest.(check bool) (name ^ ": p0-only trace") true
        (Shmem.Trace.is_p_only ~allowed:(Int.equal 0) trace);
      Alcotest.(check bool) (name ^ ": stopped after deciding") true
        (outcome = E4.Stopped))
    (scheds ())

let test_with_stalls () =
  (* a stalled process takes no step inside its window even when the
     underlying scheduler would pick it, and resumes once the window ends *)
  let sched = E.with_stalls ~stalls:[ 1, 0, 2 ] E.round_robin in
  let c', trace, _ = E.run ~sched ~max_steps:20 (initial ()) in
  Alcotest.(check (list int)) "p1 delayed to the end" [ 0; 0; 1; 1 ]
    (List.map (fun s -> s.Shmem.Trace.pid) trace);
  Alcotest.(check bool) "stalled run still decides" true (E.all_decided c');
  (* when every enabled process is mid-stall, the underlying scheduler
     chooses among all of them instead of wedging the run *)
  let sched = E.with_stalls ~stalls:[ 0, 0, 50; 1, 0, 50 ] E.round_robin in
  let c', trace, outcome = E.run ~sched ~max_steps:20 (initial ()) in
  Alcotest.(check bool) "fallback keeps the run moving" true
    (Shmem.Trace.length trace > 0);
  Alcotest.(check bool) "fallback run decides" true (E.all_decided c');
  Alcotest.(check bool) "all decided outcome" true (outcome = E.All_decided)

let test_replay_reproduces_run () =
  (* replaying a recorded random run reproduces identical responses (the
     asserts inside [replay]) and the identical final configuration *)
  let (module P) = Core.Swap_ksa.make ~n:3 ~k:1 ~m:2 in
  let module E3 = Shmem.Exec.Make (P) in
  let rng = Random.State.make [| 13 |] in
  for _ = 1 to 10 do
    let inputs = Array.init 3 (fun _ -> Random.State.int rng 2) in
    let c0 = E3.initial ~inputs in
    let c_end, trace, _ =
      E3.run ~sched:(E3.bursty rng ~burst:20) ~max_steps:500 c0
    in
    let c_replayed = E3.replay c0 trace in
    Alcotest.(check bool) "replay reaches the recorded configuration" true
      (E3.equal_config c_end c_replayed)
  done;
  (* a trace replayed against the wrong initial configuration must trip the
     response assertions rather than silently diverge *)
  let c0 = initial () in
  let _, trace = E.run_script c0 [ 0; 1; 0 ] in
  match E.replay (E.initial ~inputs:[| 1; 1 |]) trace with
  | _ -> Alcotest.fail "replay accepted a mismatched initial configuration"
  | exception Assert_failure _ -> ()

let test_timeline_wraps () =
  let c = initial () in
  let _, trace = E.run_script c [ 0; 1; 0; 1 ] in
  let out =
    Fmt.str "@[<v>%a@]" (fun ppf -> Shmem.Timeline.render ~columns:2 ~n:2 ppf)
      trace
  in
  (* 4 steps at 2 columns per band: each process's row appears twice *)
  let count needle =
    let rec go i acc =
      if i + String.length needle > String.length out then acc
      else if String.sub out i (String.length needle) = needle then
        go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "two bands" 2 (count "p0 ")

let test_stats_merge () =
  let c = initial () in
  let _, t1 = E.run_script c [ 0; 0 ] in
  let _, t2 = E.run_script c [ 1 ] in
  let merged =
    Shmem.Stats.merge (Shmem.Stats.of_trace t1) (Shmem.Stats.of_trace t2)
  in
  Alcotest.(check int) "steps add" 3 merged.Shmem.Stats.total_steps;
  Alcotest.(check (list (pair int int))) "per-pid combined"
    [ 0, 2; 1, 1 ] merged.Shmem.Stats.steps_per_pid

let test_protocol_validate () =
  let (module P) = Core.Swap_ksa.make ~n:3 ~k:1 ~m:2 in
  Shmem.Protocol.validate (module P);
  Alcotest.(check bool) "swap-only" true
    (Shmem.Protocol.uses_only_swap (module P));
  Alcotest.(check bool) "historyless" true
    (Shmem.Protocol.uses_only_historyless (module P));
  let (module C) = Baselines.Cas_consensus.make ~n:2 ~m:2 in
  Alcotest.(check bool) "cas not historyless" false
    (Shmem.Protocol.uses_only_historyless (module C))

let test_bad_inputs_rejected () =
  (try
     ignore (E.initial ~inputs:[| 0 |]);
     Alcotest.fail "accepted short inputs"
   with Invalid_argument _ -> ());
  try
    ignore (E.initial ~inputs:[| 0; 7 |]);
    Alcotest.fail "accepted out-of-range input"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "exec"
    [ ( "engine",
        [ Alcotest.test_case "initial configuration" `Quick test_initial
        ; Alcotest.test_case "step semantics" `Quick test_step_semantics
        ; Alcotest.test_case "decided processes do not step" `Quick
            test_step_after_decision_rejected
        ; Alcotest.test_case "run_script and replay" `Quick
            test_run_script_and_replay
        ; Alcotest.test_case "run_solo" `Quick test_run_solo
        ; Alcotest.test_case "round robin" `Quick test_round_robin_runs_all
        ; Alcotest.test_case "covers" `Quick test_covers
        ; Alcotest.test_case "indistinguishability" `Quick
            test_indistinguishability
        ; Alcotest.test_case "trace utilities" `Quick test_trace_utilities
        ; Alcotest.test_case "trace indistinguishability" `Quick
            test_trace_indistinguishable
        ; Alcotest.test_case "bad inputs rejected" `Quick
            test_bad_inputs_rejected
        ; Alcotest.test_case "schedule notation" `Quick test_schedule_parse
        ; Alcotest.test_case "schedule parse limits" `Quick
            test_schedule_parse_limits
        ; Alcotest.test_case "timeline rendering" `Quick test_timeline_render
        ; Alcotest.test_case "timeline wrapping" `Quick test_timeline_wraps
        ; Alcotest.test_case "crash scheduling" `Quick test_with_crashes
        ; Alcotest.test_case "crashed pids never rescheduled" `Quick
            test_with_crashes_never_reschedules
        ; Alcotest.test_case "crash survivors decide under bursty" `Quick
            test_with_crashes_bursty_survivors
        ; Alcotest.test_case "crash-all stops under every scheduler" `Quick
            test_crash_all_every_scheduler
        ; Alcotest.test_case "stall scheduling" `Quick test_with_stalls
        ; Alcotest.test_case "replay reproduces runs" `Quick
            test_replay_reproduces_run
        ; Alcotest.test_case "stats merge" `Quick test_stats_merge
        ; Alcotest.test_case "protocol validation" `Quick
            test_protocol_validate
        ] )
    ; Util.qsuite "exec-props"
        [ prop_schedule_roundtrip; prop_replay_deterministic ]
    ]
