(* Differential tests for the reduction stack: with symmetry and
   partial-order reduction on, the checker must reach the same verdicts and
   the same reachable decision sets as the unreduced engine, with interned
   counts related by at most the orbit bound n!; violation traces found in
   the reduced graph must replay concretely from the initial configuration.
   Plus qcheck laws for the [Value.rename] machinery the reduction is built
   on. *)

module Sh = Shmem

let factorial n =
  let r = ref 1 in
  for i = 2 to n do
    r := !r * i
  done;
  !r

(* ------------------------------------------------- value rename laws *)

let gen_value =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self size ->
         let base =
           oneof
             [ return Sh.Value.Unit
             ; return Sh.Value.Bot
             ; map (fun i -> Sh.Value.Int i) (int_range 0 20)
             ; map (fun p -> Sh.Value.Pid p) (int_range 0 7)
             ; map
                 (fun l -> Sh.Value.ints (Array.of_list l))
                 (list_size (int_range 0 3) (int_range 0 5))
             ]
         in
         if size <= 0 then base
         else
           oneof
             [ base
             ; map2
                 (fun a b -> Sh.Value.Pair (a, b))
                 (self (size / 2)) (self (size / 2))
             ])

let value_tests =
  let mk name prop =
    QCheck2.Test.make ~name ~count:500 ~print:Sh.Value.to_string gen_value
      prop
  in
  [ mk "rename id is the identity" (fun v ->
        Sh.Value.equal (Sh.Value.rename Fun.id v) v)
  ; mk "rename composes" (fun v ->
        let f p = (p + 3) mod 8 and g p = (2 * p) mod 8 in
        Sh.Value.equal
          (Sh.Value.rename f (Sh.Value.rename g v))
          (Sh.Value.rename (fun p -> f (g p)) v))
  ; mk "hash_skel is rename-invariant" (fun v ->
        let f p = (p + 5) mod 8 in
        Sh.Value.hash_skel (Sh.Value.rename f v) = Sh.Value.hash_skel v)
  ; mk "fold_pids commutes with rename" (fun v ->
        let f p = (p + 1) mod 8 in
        let pids u = List.rev (Sh.Value.fold_pids (fun acc p -> p :: acc) [] u)
        in
        List.equal Int.equal
          (pids (Sh.Value.rename f v))
          (List.map f (pids v)))
  ]

(* ------------------------------------------ registry differentials *)

type run = {
  ok : bool;
  decisions : int list;  (* union of decided values over visited configs *)
  interned : int;
  truncated : bool;
}

let run_engine (module P : Sh.Protocol.S) ~sym ~por ~prune ~inputs
    ~max_configs =
  let module C = Checker.Make (P) in
  let module X = C.X in
  let t = X.create ~sym ~por ~inputs () in
  let seen = Hashtbl.create 16 in
  let violations = ref [] in
  let visit (v : X.visit) =
    let c = v.X.config in
    List.iter (fun d -> Hashtbl.replace seen d ()) (X.E.decided_values c);
    if not (X.E.check_agreement c) then violations := `Agreement :: !violations;
    if not (X.E.check_validity ~inputs c) then
      violations := `Validity :: !violations;
    List.iter
      (fun pid ->
        if not (X.solo_ok t ~pid c) then violations := `Solo :: !violations)
      (X.E.undecided c);
    if prune c.X.E.mem then X.Prune else X.Continue
  in
  let stats = X.bfs t ~max_configs ~visit () in
  { ok = !violations = []
  ; decisions =
      List.sort Stdlib.compare
        (Hashtbl.fold (fun d () acc -> d :: acc) seen [])
  ; interned = X.size t
  ; truncated = stats.X.truncated
  }

let diff_entry ?(max_configs = 30_000) (e : Baselines.Registry.entry) =
  let (module P) = e.protocol in
  let inputs = Array.init P.n (fun p -> p mod P.num_inputs) in
  let run ~sym ~por =
    run_engine (module P) ~sym ~por ~prune:e.prune ~inputs ~max_configs
  in
  let plain = run ~sym:false ~por:false in
  let symr = run ~sym:true ~por:false in
  let both = run ~sym:true ~por:true in
  (* verdicts must agree no matter what (these protocols are correct, so
     any reduced-run violation is a reduction soundness bug) *)
  Alcotest.(check bool) (e.name ^ ": plain ok") true plain.ok;
  Alcotest.(check bool) (e.name ^ ": sym ok") true symr.ok;
  Alcotest.(check bool) (e.name ^ ": sym+por ok") true both.ok;
  (* the finer comparisons need both explorations to have completed *)
  if not (plain.truncated || symr.truncated) then begin
    Alcotest.(check (list int))
      (e.name ^ ": decision sets agree under sym")
      plain.decisions symr.decisions;
    if symr.interned > plain.interned then
      Alcotest.failf "%s: sym interned %d > unreduced %d" e.name symr.interned
        plain.interned;
    if plain.interned > symr.interned * factorial P.n then
      Alcotest.failf "%s: unreduced %d exceeds sym %d x n!" e.name
        plain.interned symr.interned
  end;
  if not (plain.truncated || both.truncated) then begin
    Alcotest.(check (list int))
      (e.name ^ ": decision sets agree under sym+por")
      plain.decisions both.decisions;
    if both.interned > plain.interned then
      Alcotest.failf "%s: sym+por interned %d > unreduced %d" e.name
        both.interned plain.interned
  end

let test_registry_diff () =
  List.iter diff_entry (Baselines.Registry.standard ~n:4 ())

let test_swap_ksa_n5_diff () =
  let (module P) = Core.Swap_ksa.make ~n:5 ~k:1 ~m:2 in
  let e : Baselines.Registry.entry =
    match Baselines.Registry.find "swap-ksa k=1" ~n:5 with
    | Ok e -> e
    | Error msg -> Alcotest.fail msg
  in
  diff_entry ~max_configs:120_000 e

(* ------------------------------------- violations survive reduction *)

(* an anonymous variant of [Util.stubborn_protocol]: every process swaps
   once and stubbornly decides its own input — agreement is violated, and
   the state carries no pid, so the reduction is maximally aggressive *)
let stubborn_anon ~n : Sh.Protocol.t =
  (module struct
    let name = "stubborn-anon"
    let n = n
    let k = 1
    let num_inputs = 2
    let objects = [| Sh.Obj_kind.Swap_only Sh.Obj_kind.Unbounded |]
    let init_object _ = Sh.Value.Bot

    type state = { input : int; decided : int option }

    let init ~pid:_ ~input = { input; decided = None }
    let poised s = Sh.Op.swap 0 (Sh.Value.Int s.input)
    let on_response s _ = { s with decided = Some s.input }
    let decision s = s.decided

    let equal_state s1 s2 =
      s1.input = s2.input && Option.equal Int.equal s1.decided s2.decided

    let hash_state s = Sh.Hashx.(opt int (int seed s.input) s.decided)
    let pp_state ppf s = Fmt.pf ppf "{input=%d}" s.input

    let space_bound ~n:_ ~k:_ = Array.length objects
    let symmetry =
      Sh.Protocol.Anonymous
        { canon_key = hash_state; rename = (fun _ s -> s) }
    let recovery = Sh.Protocol.Restart
  end)

let test_reduced_violation_replays () =
  let (module P) = stubborn_anon ~n:3 in
  let module C = Checker.Make (P) in
  let inputs = [| 0; 1; 1 |] in
  let r = C.explore ~sym:true ~por:true ~inputs () in
  if Checker.ok r then Alcotest.fail "reduced run missed the violation";
  List.iter
    (fun (v : Checker.violation) ->
      (* the trace must be concrete: replaying it from the real initial
         configuration reproduces every recorded response... *)
      let c = C.E.replay (C.E.initial ~inputs) v.trace in
      (* ...and actually exhibits the violated property *)
      match v.property with
      | "k-agreement" ->
        Alcotest.(check bool)
          "replayed trace violates agreement" false (C.E.check_agreement c)
      | "validity" ->
        Alcotest.(check bool)
          "replayed trace violates validity" false
          (C.E.check_validity ~inputs c)
      | p -> Alcotest.failf "unexpected property %s" p)
    r.Checker.violations;
  (* and the unreduced checker agrees on the verdict *)
  let r0 = C.explore ~inputs () in
  Alcotest.(check bool) "unreduced verdict" false (Checker.ok r0)

let test_reduced_traces_replay_deep () =
  (* every interned id of a reduced exploration must reconstruct a
     replayable concrete schedule with permutation-invariant outcome *)
  let (module P) = Core.Swap_ksa.make ~n:4 ~k:1 ~m:2 in
  let module X = Explore.Make (P) in
  let inputs = [| 0; 1; 0; 1 |] in
  let t = X.create ~sym:true ~inputs () in
  let ids = ref [] in
  let visit (v : X.visit) =
    if v.X.depth mod 3 = 0 then ids := v.X.id :: !ids;
    if Util.lap_prune_pair 2 (v.X.config).X.E.mem then X.Prune else X.Continue
  in
  ignore (X.bfs t ~max_configs:20_000 ~visit ());
  Alcotest.(check bool) "sym active" true (X.sym_enabled t);
  List.iter
    (fun id ->
      let tr = X.trace_to t id in
      (* [E.replay] asserts every response matches the recorded one *)
      let c = X.E.replay (X.E.initial ~inputs) tr in
      Alcotest.(check (list int))
        "decided values invariant across the orbit"
        (X.E.decided_values (X.config t id))
        (X.E.decided_values c))
    !ids

let test_walk_under_reduction () =
  let (module P) = Core.Swap_ksa.make ~n:4 ~k:1 ~m:2 in
  let module X = Explore.Make (P) in
  let inputs = [| 1; 0; 1; 0 |] in
  let t = X.create ~sym:true ~inputs () in
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 20 do
    let r =
      X.walk t ~sched:(X.E.random rng) ~max_steps:60
        ~visit:(fun _ -> X.Continue)
        ()
    in
    (* the interned id of the walk's last position must reconstruct a
       concrete, replayable schedule from the root *)
    let tr = X.trace_to t r.X.last in
    ignore (X.E.replay (X.E.initial ~inputs) tr)
  done

let test_all_inputs_multiset_dedup () =
  let (module P) = Core.Swap_ksa.make ~n:3 ~k:1 ~m:2 in
  let module C = Checker.Make (P) in
  let prune c = Util.lap_prune_pair 2 c.C.E.mem in
  let full = C.explore_all_inputs ~prune () in
  let reduced = C.explore_all_inputs ~prune ~sym:true ~por:true () in
  Alcotest.(check bool) "full ok" true (Checker.ok full);
  Alcotest.(check bool) "reduced ok" true (Checker.ok reduced);
  if reduced.Checker.configs_explored >= full.Checker.configs_explored then
    Alcotest.failf "input-multiset dedup saved nothing: %d >= %d"
      reduced.Checker.configs_explored full.Checker.configs_explored

let () =
  Alcotest.run "symmetry"
    [ Util.qsuite "value-rename" value_tests
    ; ( "differential",
        [ Alcotest.test_case "registry protocols at n=4" `Slow
            test_registry_diff
        ; Alcotest.test_case "swap-ksa at n=5" `Slow test_swap_ksa_n5_diff
        ] )
    ; ( "reduction",
        [ Alcotest.test_case "reduced violations replay" `Quick
            test_reduced_violation_replays
        ; Alcotest.test_case "reduced traces replay deep" `Quick
            test_reduced_traces_replay_deep
        ; Alcotest.test_case "walks intern under reduction" `Quick
            test_walk_under_reduction
        ; Alcotest.test_case "all-inputs multiset dedup" `Quick
            test_all_inputs_multiset_dedup
        ] )
    ]
