(* Tests for the real-shared-memory backend: Algorithm 1 over
   Atomic.exchange on OCaml 5 domains. *)

let test_two_proc () =
  for seed = 0 to 19 do
    let input0 = seed mod 3 and input1 = (seed + 1) mod 3 in
    let d0, d1 = Multicore.Two_proc_mc.run ~input0 ~input1 in
    Alcotest.(check int) "agreement" d0 d1;
    Alcotest.(check bool) "validity" true (d0 = input0 || d0 = input1)
  done

let run_and_check ~n ~k ~m ~seed =
  let rng = Random.State.make [| seed |] in
  let inputs = Array.init n (fun _ -> Random.State.int rng m) in
  let o = Multicore.Swap_ksa_mc.run ~n ~k ~m ~inputs ~seed () in
  match Multicore.Swap_ksa_mc.check ~inputs ~k o with
  | Ok () -> o
  | Error e -> Alcotest.fail (Fmt.str "n=%d k=%d m=%d seed=%d: %s" n k m seed e)

let test_consensus_small () =
  for seed = 0 to 9 do
    ignore (run_and_check ~n:2 ~k:1 ~m:2 ~seed)
  done

let test_consensus_contended () =
  for seed = 0 to 4 do
    ignore (run_and_check ~n:6 ~k:1 ~m:4 ~seed)
  done

let test_set_agreement () =
  for seed = 0 to 4 do
    ignore (run_and_check ~n:8 ~k:3 ~m:4 ~seed)
  done

let test_readable_swap_mc () =
  for seed = 0 to 4 do
    let rng = Random.State.make [| seed |] in
    let n = 2 + Random.State.int rng 5 in
    let m = 2 + Random.State.int rng 3 in
    let inputs = Array.init n (fun _ -> Random.State.int rng m) in
    let o = Multicore.Readable_swap_mc.run ~n ~m ~inputs ~seed () in
    match Multicore.Readable_swap_mc.check ~inputs o with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Fmt.str "n=%d m=%d seed=%d: %s" n m seed e)
  done

let test_readable_swap_mc_validation () =
  (try
     ignore (Multicore.Readable_swap_mc.run ~n:1 ~m:2 ~inputs:[| 0 |] ());
     Alcotest.fail "accepted n = 1"
   with Invalid_argument _ -> ());
  let bad =
    { Multicore.Readable_swap_mc.decisions = [| 0; 1 |]
    ; passes = [| 1; 1 |]
    ; reads = [| 1; 1 |]
    ; swaps = [| 1; 1 |]
    ; elapsed = 0.
    }
  in
  match Multicore.Readable_swap_mc.check ~inputs:[| 0; 1 |] bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted disagreement"

let test_outcome_accounting () =
  let inputs = [| 0; 1; 1; 0 |] in
  let o = Multicore.Swap_ksa_mc.run ~n:4 ~k:1 ~m:2 ~inputs () in
  Alcotest.(check bool) "everyone took at least one pass" true
    (Array.for_all (fun p -> p >= 1) o.Multicore.Swap_ksa_mc.passes);
  Alcotest.(check bool) "swaps >= (n-k) per process" true
    (Array.for_all (fun s -> s >= 3) o.Multicore.Swap_ksa_mc.swaps)

let test_input_validation () =
  (try
     ignore (Multicore.Swap_ksa_mc.run ~n:2 ~k:2 ~m:2 ~inputs:[| 0; 1 |] ());
     Alcotest.fail "accepted n = k"
   with Invalid_argument _ -> ());
  try
    ignore (Multicore.Swap_ksa_mc.run ~n:2 ~k:1 ~m:2 ~inputs:[| 0; 5 |] ());
    Alcotest.fail "accepted out-of-range input"
  with Invalid_argument _ -> ()

let test_check_rejects_bad_outcomes () =
  let bad =
    { Multicore.Swap_ksa_mc.decisions = [| 0; 1 |]
    ; passes = [| 1; 1 |]
    ; swaps = [| 1; 1 |]
    ; elapsed = 0.
    }
  in
  (match Multicore.Swap_ksa_mc.check ~inputs:[| 0; 1 |] ~k:1 bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted 2 values for k=1");
  let invalid =
    { bad with Multicore.Swap_ksa_mc.decisions = [| 1; 1 |] }
  in
  match Multicore.Swap_ksa_mc.check ~inputs:[| 0; 0 |] ~k:1 invalid with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted invalid value"

let () =
  Alcotest.run "multicore"
    [ ( "atomic-swap",
        [ Alcotest.test_case "two-process consensus" `Quick test_two_proc
        ; Alcotest.test_case "n=2 consensus" `Quick test_consensus_small
        ; Alcotest.test_case "n=6 contended consensus" `Quick
            test_consensus_contended
        ; Alcotest.test_case "n=8 k=3 set agreement" `Quick test_set_agreement
        ; Alcotest.test_case "readable-swap consensus" `Quick
            test_readable_swap_mc
        ; Alcotest.test_case "readable-swap validation" `Quick
            test_readable_swap_mc_validation
        ; Alcotest.test_case "outcome accounting" `Quick
            test_outcome_accounting
        ; Alcotest.test_case "input validation" `Quick test_input_validation
        ; Alcotest.test_case "check rejects bad outcomes" `Quick
            test_check_rejects_bad_outcomes
        ] )
    ]
