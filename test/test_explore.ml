(* The lib/explore refactor contract: rebasing the checker and the Theorem
   10 search onto the unified engine must be observationally invisible.
   These suites diff the production implementations against the frozen seed
   copies in [Seed_ref] (same instances, same seeds, field-by-field — for
   the checker literally [=] on whole reports), and exercise the engine
   surface the seed never had: DFS, parallel BFS, the memoized solo oracle
   and id-based trace reconstruction. *)

let report =
  Alcotest.testable Checker.pp_report (fun (a : Checker.report) b -> a = b)

(* ---------------------------------------------------- checker differential *)

let diff_explore name (module P : Shmem.Protocol.S) ?solo_cap ?prune_lap
    ~inputs () =
  let module C = Checker.Make (P) in
  let module R = Seed_ref.Checker_ref (P) in
  let prune =
    match prune_lap with
    | None -> None
    | Some bound -> Some (fun (c : C.E.config) -> Util.lap_prune_pair bound c.C.E.mem)
  in
  let new_report = C.explore ?solo_cap ?prune ~inputs () in
  let seed_report = R.explore ?solo_cap ?prune ~inputs () in
  Alcotest.check report (name ^ ": explore report identical to seed")
    seed_report new_report

let test_diff_stubborn () =
  diff_explore "stubborn" (Util.stubborn_protocol ()) ~inputs:[| 0; 1 |] ()

let test_diff_invalid () =
  diff_explore "invalid" (Util.invalid_protocol ()) ~inputs:[| 0; 0 |] ()

let test_diff_spinner () =
  diff_explore "spinner" (Util.spinner_protocol ()) ~solo_cap:64
    ~inputs:[| 0; 1 |] ()

let test_diff_cas () =
  diff_explore "cas" (Baselines.Cas_consensus.make ~n:2 ~m:2)
    ~inputs:[| 0; 1 |] ()

let test_diff_swap_ksa_all_inputs () =
  let (module P) = Core.Swap_ksa.make ~n:2 ~k:1 ~m:2 in
  let module C = Checker.Make (P) in
  List.iter
    (fun inputs ->
      diff_explore
        (Fmt.str "swap-ksa inputs=[%a]" Fmt.(array ~sep:(any ",") int) inputs)
        (module P) ~prune_lap:3 ~inputs ())
    (C.all_input_vectors ())

let test_diff_truncation () =
  (* the budget path: truncation flag and partial exploration must agree *)
  let (module P) = Core.Swap_ksa.make ~n:2 ~k:1 ~m:2 in
  let module C = Checker.Make (P) in
  let module R = Seed_ref.Checker_ref (P) in
  let inputs = [| 0; 1 |] in
  let new_report =
    C.explore ~max_configs:500 ~check_solo:false ~inputs ()
  in
  let seed_report =
    R.explore ~max_configs:500 ~check_solo:false ~inputs ()
  in
  Alcotest.check report "truncated run identical to seed" seed_report
    new_report

let test_diff_random_runs () =
  let check name (module P : Shmem.Protocol.S) ~runs ~max_steps
      ~solo_check_every =
    let module C = Checker.Make (P) in
    let module R = Seed_ref.Checker_ref (P) in
    let new_report = C.random_runs ~runs ~max_steps ~solo_check_every () in
    let seed_report = R.random_runs ~runs ~max_steps ~solo_check_every () in
    Alcotest.check report (name ^ ": random_runs identical to seed")
      seed_report new_report
  in
  check "stubborn" (Util.stubborn_protocol ()) ~runs:50 ~max_steps:100
    ~solo_check_every:0;
  check "swap-ksa n=3"
    (let (module P) = Core.Swap_ksa.make ~n:3 ~k:1 ~m:2 in
     (module P))
    ~runs:10 ~max_steps:200 ~solo_check_every:50

(* -------------------------------------------------- theorem 10 differential *)

(* The certificate types of the production and reference drivers are
   distinct nominal records; compare them through a shared summary. *)
let test_diff_theorem10 () =
  let diff ~n ~k ~search_rounds =
    let (module P) = Core.Swap_ksa.make ~n ~k ~m:(k + 1) in
    let module T = Lowerbound.Theorem10.Make (P) in
    let module R = Seed_ref.Theorem10_ref (P) in
    let t_cert = T.run ~search_rounds () in
    let r_cert = R.run ~search_rounds () in
    let t_levels =
      List.map
        (function
          | T.Base c -> `Base (c.T.L9.objects_forced, c.T.L9.gamma, c.T.L9.delta)
          | T.Found_k_values { r; alpha; cert } ->
            `Found
              (r, alpha, cert.T.L9.objects_forced, cert.T.L9.gamma,
               cert.T.L9.delta)
          | T.Recursed { r } -> `Recursed r)
        t_cert.T.levels
    in
    let r_levels =
      List.map
        (function
          | R.Base c -> `Base (c.R.L9.objects_forced, c.R.L9.gamma, c.R.L9.delta)
          | R.Found_k_values { r; alpha; cert } ->
            `Found
              (r, alpha, cert.R.L9.objects_forced, cert.R.L9.gamma,
               cert.R.L9.delta)
          | R.Recursed { r } -> `Recursed r)
        r_cert.R.levels
    in
    Alcotest.(check bool)
      (Fmt.str "n=%d k=%d: certificate identical to seed" n k)
      true
      (t_levels = r_levels
      && t_cert.T.objects_forced = r_cert.R.objects_forced
      && t_cert.T.bound = r_cert.R.bound)
  in
  diff ~n:4 ~k:1 ~search_rounds:30;
  diff ~n:6 ~k:2 ~search_rounds:30;
  diff ~n:9 ~k:3 ~search_rounds:30

(* --------------------------------------------------------- engine surface *)

let test_dfs_covers_same_space () =
  (* on a finite graph BFS and DFS must intern the same configuration set *)
  let (module P) = Baselines.Cas_consensus.make ~n:2 ~m:2 in
  let module X = Explore.Make (P) in
  let inputs = [| 0; 1 |] in
  let run strat =
    let t = X.create ~inputs () in
    let stats = strat t ~visit:(fun _ -> X.Continue) () in
    stats.X.visited, X.size t
  in
  let bfs_visited, bfs_size = run (fun t ~visit () -> X.bfs t ~visit ()) in
  let dfs_visited, dfs_size = run (fun t ~visit () -> X.dfs t ~visit ()) in
  Alcotest.(check int) "same configs interned" bfs_size dfs_size;
  Alcotest.(check int) "same configs visited" bfs_visited dfs_visited;
  Alcotest.(check int) "every interned config visited once" bfs_size
    bfs_visited

let test_trace_to_replays () =
  (* every back-edge path must replay from the root to its configuration *)
  let (module P) = Core.Swap_ksa.make ~n:2 ~k:1 ~m:2 in
  let module X = Explore.Make (P) in
  let inputs = [| 0; 1 |] in
  let t = X.create ~inputs () in
  let checked = ref 0 in
  let visit (v : X.visit) =
    if v.X.id mod 7 = 0 then begin
      incr checked;
      let c = X.E.replay (X.E.initial ~inputs) (X.trace_to t v.X.id) in
      if not (X.E.equal_config c v.X.config) then
        Alcotest.failf "trace_to id %d does not replay to its config" v.X.id;
      (* the lazy visitor path must spell the same schedule *)
      if Lazy.force v.X.path <> X.trace_to t v.X.id then
        Alcotest.failf "visit.path diverges from trace_to at id %d" v.X.id
    end;
    if Util.lap_prune_pair 2 v.X.config.X.E.mem then X.Prune else X.Continue
  in
  ignore (X.bfs t ~visit ());
  Alcotest.(check bool) "sampled some ids" true (!checked > 5)

let test_solo_oracle_consistent () =
  (* memoized verdicts must agree with direct solo runs *)
  let (module P) = Core.Swap_ksa.make ~n:3 ~k:1 ~m:2 in
  let module X = Explore.Make (P) in
  let inputs = [| 0; 1; 0 |] in
  let t = X.create ~inputs () in
  let sampled = ref 0 in
  let visit (v : X.visit) =
    if v.X.id mod 29 = 0 then
      List.iter
        (fun pid ->
          incr sampled;
          let direct =
            X.E.run_solo ~pid ~max_steps:(X.solo_cap t) v.X.config <> None
          in
          Alcotest.(check bool)
            (Fmt.str "oracle agrees with run_solo (id %d, p%d)" v.X.id pid)
            direct
            (X.solo_ok t ~pid v.X.config))
        (X.E.undecided v.X.config);
    if Util.lap_prune_pair 2 v.X.config.X.E.mem then X.Prune else X.Continue
  in
  ignore (X.bfs t ~max_configs:5_000 ~visit ());
  Alcotest.(check bool) "sampled some verdicts" true (!sampled > 10)

let test_walk_interns_path () =
  let (module P) = Core.Swap_ksa.make ~n:2 ~k:1 ~m:2 in
  let module X = Explore.Make (P) in
  let t = X.create ~inputs:[| 0; 1 |] () in
  let rng = Random.State.make [| 7 |] in
  let r = X.walk t ~sched:(X.E.random rng) ~max_steps:50
      ~visit:(fun _ -> X.Continue) ()
  in
  Alcotest.(check bool) "walk interned its positions" true (X.size t > 1);
  Alcotest.(check bool) "walk took steps" true (r.X.steps > 0);
  let c = X.E.replay (X.E.initial ~inputs:[| 0; 1 |]) (X.trace_to t r.X.last) in
  Alcotest.(check bool) "last id replays" true
    (X.E.equal_config c (X.config t r.X.last))

(* ------------------------------------------------------------- parallel *)

let test_parallel_matches_serial () =
  let (module P) = Baselines.Cas_consensus.make ~n:2 ~m:2 in
  let module C = Checker.Make (P) in
  let inputs = [| 0; 1 |] in
  let serial = C.explore ~inputs () in
  List.iter
    (fun domains ->
      let par = C.explore_parallel ~domains ~inputs () in
      Alcotest.(check int)
        (Fmt.str "%d domains: same configs explored" domains)
        serial.Checker.configs_explored par.Checker.configs_explored;
      Alcotest.(check bool) "not truncated" false par.Checker.truncated;
      Alcotest.(check bool) "no violations" true (Checker.ok par))
    [ 1; 2; 4 ]

let test_parallel_finds_violations () =
  let (module P) = Util.stubborn_protocol () in
  let module C = Checker.Make (P) in
  let inputs = [| 0; 1 |] in
  let serial = C.explore ~inputs () in
  let par = C.explore_parallel ~domains:4 ~inputs () in
  let multiset r =
    List.sort Stdlib.compare
      (List.map
         (fun v -> v.Checker.property, v.Checker.detail,
                   Shmem.Trace.length v.Checker.trace)
         r.Checker.violations)
  in
  Alcotest.(check int) "same configs explored" serial.Checker.configs_explored
    par.Checker.configs_explored;
  Alcotest.(check bool) "same violation multiset" true
    (multiset serial = multiset par);
  (* parallel counterexample traces must still replay to violating configs *)
  List.iter
    (fun v ->
      if v.Checker.property = "k-agreement" then begin
        let c = C.E.replay (C.E.initial ~inputs) v.Checker.trace in
        Alcotest.(check bool) "replayed parallel violation" false
          (C.E.check_agreement c)
      end)
    par.Checker.violations

let test_parallel_swap_ksa_safe () =
  (* a pruned infinite-space instance through the parallel engine *)
  let (module P) = Core.Swap_ksa.make ~n:2 ~k:1 ~m:2 in
  let module C = Checker.Make (P) in
  let prune (c : C.E.config) = Util.lap_prune_pair 3 c.C.E.mem in
  let serial = C.explore ~prune ~inputs:[| 0; 1 |] () in
  let par = C.explore_parallel ~domains:4 ~prune ~inputs:[| 0; 1 |] () in
  Util.check_ok "parallel swap-ksa" par;
  Alcotest.(check int) "same configs explored"
    serial.Checker.configs_explored par.Checker.configs_explored

let () =
  Alcotest.run "explore"
    [ ( "checker-differential",
        [ Alcotest.test_case "stubborn" `Quick test_diff_stubborn
        ; Alcotest.test_case "invalid" `Quick test_diff_invalid
        ; Alcotest.test_case "spinner" `Quick test_diff_spinner
        ; Alcotest.test_case "cas exhaustive" `Quick test_diff_cas
        ; Alcotest.test_case "swap-ksa all inputs" `Quick
            test_diff_swap_ksa_all_inputs
        ; Alcotest.test_case "truncation" `Quick test_diff_truncation
        ; Alcotest.test_case "random runs" `Quick test_diff_random_runs
        ] )
    ; ( "theorem10-differential",
        [ Alcotest.test_case "certificates identical" `Slow
            test_diff_theorem10
        ] )
    ; ( "engine",
        [ Alcotest.test_case "dfs covers same space" `Quick
            test_dfs_covers_same_space
        ; Alcotest.test_case "trace_to replays" `Quick test_trace_to_replays
        ; Alcotest.test_case "solo oracle consistent" `Quick
            test_solo_oracle_consistent
        ; Alcotest.test_case "walk interns its path" `Quick
            test_walk_interns_path
        ] )
    ; ( "parallel",
        [ Alcotest.test_case "matches serial on finite space" `Quick
            test_parallel_matches_serial
        ; Alcotest.test_case "finds the same violations" `Quick
            test_parallel_finds_violations
        ; Alcotest.test_case "pruned swap-ksa safe" `Quick
            test_parallel_swap_ksa_safe
        ] )
    ]
