(* Unit and property tests for the value, operation and object-kind
   semantics of the shared-memory substrate. *)

module V = Shmem.Value
module K = Shmem.Obj_kind
module Op = Shmem.Op

(* --- generators --- *)

let value_gen : V.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [ return V.Unit
          ; return V.Bot
          ; map (fun i -> V.Int i) small_signed_int
          ; map (fun i -> V.Pid (abs i mod 64)) small_signed_int
          ; map (fun l -> V.Ints (Array.of_list l)) (small_list small_nat)
          ]
      in
      if n <= 1 then leaf
      else
        oneof
          [ leaf
          ; map2 (fun a b -> V.Pair (a, b)) (self (n / 2)) (self (n / 2))
          ])

(* --- value properties --- *)

let prop_equal_refl =
  QCheck2.Test.make ~name:"Value.equal is reflexive" ~count:500 value_gen
    (fun v -> V.equal v v)

let prop_compare_refl =
  QCheck2.Test.make ~name:"Value.compare v v = 0" ~count:500 value_gen
    (fun v -> V.compare v v = 0)

let prop_equal_compare_agree =
  QCheck2.Test.make ~name:"equal agrees with compare = 0" ~count:500
    QCheck2.Gen.(pair value_gen value_gen)
    (fun (a, b) -> V.equal a b = (V.compare a b = 0))

let prop_compare_antisym =
  QCheck2.Test.make ~name:"compare is antisymmetric" ~count:500
    QCheck2.Gen.(pair value_gen value_gen)
    (fun (a, b) -> Int.compare (V.compare a b) 0 = -Int.compare (V.compare b a) 0)

let prop_equal_hash =
  QCheck2.Test.make ~name:"equal values hash equally" ~count:500
    QCheck2.Gen.(pair value_gen value_gen)
    (fun (a, b) -> (not (V.equal a b)) || V.hash a = V.hash b)

let prop_ints_copies =
  QCheck2.Test.make ~name:"Value.ints copies its argument" ~count:200
    QCheck2.Gen.(small_list small_nat)
    (fun l ->
      let arr = Array.of_list l in
      let v = V.ints arr in
      Array.iteri (fun i _ -> arr.(i) <- arr.(i) + 1) arr;
      match v with
      | V.Ints stored -> Array.to_list stored = l
      | _ -> false)

(* --- object-kind semantics --- *)

let test_register_semantics () =
  let k = K.Register K.Unbounded in
  let v, r = K.apply k ~current:(V.Int 3) (Op.Write (V.Int 7)) in
  Alcotest.(check bool) "write stores" true (V.equal v (V.Int 7));
  Alcotest.(check bool) "write returns unit" true (V.equal r V.Unit);
  let v, r = K.apply k ~current:(V.Int 7) Op.Read in
  Alcotest.(check bool) "read keeps" true (V.equal v (V.Int 7));
  Alcotest.(check bool) "read returns current" true (V.equal r (V.Int 7))

let test_swap_semantics () =
  let k = K.Swap_only K.Unbounded in
  let v, r = K.apply k ~current:V.Bot (Op.Swap (V.Int 5)) in
  Alcotest.(check bool) "swap stores" true (V.equal v (V.Int 5));
  Alcotest.(check bool) "swap returns previous" true (V.equal r V.Bot)

let test_swap_rejects_read () =
  let k = K.Swap_only K.Unbounded in
  try
    ignore (K.apply k ~current:V.Bot Op.Read);
    Alcotest.fail "swap object accepted Read"
  with K.Illegal_operation _ -> ()

let test_domain_enforced () =
  let k = K.Readable_swap (K.Bounded 2) in
  (try
     ignore (K.apply k ~current:V.zero (Op.Swap (V.Int 2)));
     Alcotest.fail "stored out-of-domain value"
   with K.Illegal_operation _ -> ());
  let v, _ = K.apply k ~current:V.zero (Op.Swap (V.Int 1)) in
  Alcotest.(check bool) "in-domain swap ok" true (V.equal v V.one)

let test_tas_semantics () =
  let k = K.Test_and_set in
  let v, r = K.apply k ~current:V.zero (Op.Swap V.one) in
  Alcotest.(check bool) "TAS sets" true (V.equal v V.one);
  Alcotest.(check bool) "TAS returns old" true (V.equal r V.zero);
  (try
     ignore (K.apply k ~current:V.zero (Op.Swap V.zero));
     Alcotest.fail "TAS accepted Swap(0)"
   with K.Illegal_operation _ -> ());
  let k = K.Test_and_set_reset in
  let v, _ = K.apply k ~current:V.one (Op.Write V.zero) in
  Alcotest.(check bool) "reset clears" true (V.equal v V.zero)

let test_cas_semantics () =
  let k = K.Compare_and_swap K.Unbounded in
  let v, r = K.apply k ~current:V.Bot (Op.Cas (V.Bot, V.Int 4)) in
  Alcotest.(check bool) "cas success stores" true (V.equal v (V.Int 4));
  Alcotest.(check bool) "cas success returns 1" true (V.equal r V.one);
  let v, r = K.apply k ~current:(V.Int 4) (Op.Cas (V.Bot, V.Int 9)) in
  Alcotest.(check bool) "cas failure keeps" true (V.equal v (V.Int 4));
  Alcotest.(check bool) "cas failure returns 0" true (V.equal r V.zero)

let test_historyless_classification () =
  Alcotest.(check bool) "register historyless" true
    (K.is_historyless (K.Register K.Unbounded));
  Alcotest.(check bool) "swap historyless" true
    (K.is_historyless (K.Swap_only K.Unbounded));
  Alcotest.(check bool) "tas historyless" true (K.is_historyless K.Test_and_set);
  Alcotest.(check bool) "cas not historyless" false
    (K.is_historyless (K.Compare_and_swap K.Unbounded))

let test_nontrivial_ops () =
  Alcotest.(check bool) "read trivial" false (Op.is_nontrivial (Op.read 0));
  Alcotest.(check bool) "write nontrivial" true
    (Op.is_nontrivial (Op.write 0 V.zero));
  Alcotest.(check bool) "swap nontrivial" true
    (Op.is_nontrivial (Op.swap 0 V.zero));
  (* nontrivial as an operation even when it would not change the value *)
  Alcotest.(check bool) "swap of current value still nontrivial" true
    (Op.is_nontrivial (Op.swap 0 V.Bot))

let prop_historyless_last_write_wins =
  (* historyless property: the value after a sequence of nontrivial ops
     depends only on the last one *)
  QCheck2.Test.make ~name:"historyless: value = last nontrivial op" ~count:300
    QCheck2.Gen.(small_list (map (fun i -> V.Int (abs i mod 100)) small_signed_int))
    (fun writes ->
      let k = K.Readable_swap K.Unbounded in
      let final =
        List.fold_left
          (fun cur v -> fst (K.apply k ~current:cur (Op.Swap v)))
          V.Bot writes
      in
      match List.rev writes with
      | [] -> V.equal final V.Bot
      | last :: _ -> V.equal final last)

let () =
  Alcotest.run "value"
    [ Util.qsuite "value-props"
        [ prop_equal_refl
        ; prop_compare_refl
        ; prop_equal_compare_agree
        ; prop_compare_antisym
        ; prop_equal_hash
        ; prop_ints_copies
        ; prop_historyless_last_write_wins
        ]
    ; ( "semantics",
        [ Alcotest.test_case "register" `Quick test_register_semantics
        ; Alcotest.test_case "swap" `Quick test_swap_semantics
        ; Alcotest.test_case "swap rejects read" `Quick test_swap_rejects_read
        ; Alcotest.test_case "bounded domain" `Quick test_domain_enforced
        ; Alcotest.test_case "test-and-set" `Quick test_tas_semantics
        ; Alcotest.test_case "compare-and-swap" `Quick test_cas_semantics
        ; Alcotest.test_case "historyless classification" `Quick
            test_historyless_classification
        ; Alcotest.test_case "trivial vs nontrivial" `Quick test_nontrivial_ops
        ] )
    ]
