(* Shared helpers for the test suites. *)

let lap_prune_pair bound (mem : Shmem.Value.t array) =
  Array.exists
    (fun v ->
      match v with
      | Shmem.Value.Pair (Shmem.Value.Ints u, _) ->
        Array.exists (fun x -> x > bound) u
      | _ -> false)
    mem

let check_ok what report =
  Alcotest.(check bool)
    (Fmt.str "%s: %a" what Checker.pp_report report)
    true (Checker.ok report)

let qsuite name tests = name, List.map QCheck_alcotest.to_alcotest tests

(* A deliberately broken 2-process "consensus" protocol: each process swaps
   once and decides its own input regardless of the response.  Used to prove
   the checker and monitors actually catch violations. *)
let stubborn_protocol () : (module Shmem.Protocol.S) =
  (module struct
    let name = "stubborn"
    let n = 2
    let k = 1
    let num_inputs = 2
    let objects = [| Shmem.Obj_kind.Swap_only Shmem.Obj_kind.Unbounded |]
    let init_object _ = Shmem.Value.Bot

    type state = { input : int; decided : int option }

    let init ~pid:_ ~input = { input; decided = None }
    let poised s = Shmem.Op.swap 0 (Shmem.Value.Int s.input)
    let on_response s _ = { s with decided = Some s.input }
    let decision s = s.decided
    let equal_state = ( = )
    let hash_state = Hashtbl.hash
    let pp_state ppf s = Fmt.pf ppf "{input=%d}" s.input
    let space_bound ~n:_ ~k:_ = Array.length objects
    let symmetry = Shmem.Protocol.Asymmetric
    let recovery = Shmem.Protocol.Restart
  end)

(* A protocol that decides a constant value 1 even when nobody proposed it:
   violates validity from inputs [|0;0|]. *)
let invalid_protocol () : (module Shmem.Protocol.S) =
  (module struct
    let name = "invalid"
    let n = 2
    let k = 1
    let num_inputs = 2
    let objects = [| Shmem.Obj_kind.Swap_only Shmem.Obj_kind.Unbounded |]
    let init_object _ = Shmem.Value.Bot

    type state = { decided : int option }

    let init ~pid:_ ~input:_ = { decided = None }
    let poised _ = Shmem.Op.swap 0 (Shmem.Value.Int 1)
    let on_response _ _ = { decided = Some 1 }
    let decision s = s.decided
    let equal_state = ( = )
    let hash_state = Hashtbl.hash
    let pp_state ppf _ = Fmt.pf ppf "{}"
    let space_bound ~n:_ ~k:_ = Array.length objects
    let symmetry = Shmem.Protocol.Asymmetric
    let recovery = Shmem.Protocol.Restart
  end)

(* A protocol that never decides when run solo (spins on its object):
   violates solo termination. *)
let spinner_protocol () : (module Shmem.Protocol.S) =
  (module struct
    let name = "spinner"
    let n = 2
    let k = 1
    let num_inputs = 2
    let objects = [| Shmem.Obj_kind.Readable_swap Shmem.Obj_kind.Unbounded |]
    let init_object _ = Shmem.Value.Bot

    type state = { input : int; decided : int option }

    let init ~pid:_ ~input = { input; decided = None }
    let poised _ = Shmem.Op.read 0

    let on_response s resp =
      (* decides only if some OTHER process has swapped a value in: never in
         a solo execution from an initial configuration *)
      match resp with
      | Shmem.Value.Int w -> { s with decided = Some w }
      | _ -> s

    let decision s = s.decided
    let equal_state = ( = )
    let hash_state = Hashtbl.hash
    let pp_state ppf s = Fmt.pf ppf "{input=%d}" s.input
    let space_bound ~n:_ ~k:_ = Array.length objects
    let symmetry = Shmem.Protocol.Asymmetric
    let recovery = Shmem.Protocol.Restart
  end)
