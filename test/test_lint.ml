(* lib/lint contract: the whole repository source tree is clean under the
   full pass registry, and each planted mutant is caught by exactly the
   pass that owns its shape — a mutable binding captured by two
   [Domain.spawn] closures by domain-escape, an [Atomic.set] derived from
   an [Atomic.get] of the same cell (and a blocking call inside a
   [Policy.retry] body) by atomics-discipline.  QCheck varies the planted
   identifiers so the passes key on structure, not on names. *)

(* each test plants its mutant in a fresh temp directory so [run_plan]
   sees exactly one file *)
let with_source source f =
  let dir = Filename.temp_file "lintmut" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let ml = Filename.concat dir "mutant.ml" in
  let oc = open_out ml in
  output_string oc source;
  close_out oc;
  Fun.protect
    ~finally:(fun () ->
      Sys.remove ml;
      Sys.rmdir dir)
    (fun () -> f dir)

let run_all dir = Lint.run_plan [ dir, Lint.registry ]

let passes_of findings =
  List.sort_uniq compare
    (List.map (fun (f : Lint.finding) -> f.pass) findings)

let assert_only_pass ~expected findings =
  match passes_of findings with
  | [] -> Alcotest.failf "mutant not caught by any pass (want %s)" expected
  | [ p ] when p = expected -> ()
  | ps ->
    Alcotest.failf "mutant caught by [%s], want exactly [%s]"
      (String.concat "; " ps) expected

(* ------------------------------------------------------- planted mutants *)

let escape_source name =
  Fmt.str
    "let %s = ref 0\n\n\
     let race () =\n\
    \  let a = Domain.spawn (fun () -> %s := !%s + 1) in\n\
    \  let b = Domain.spawn (fun () -> %s := !%s + 2) in\n\
    \  Domain.join a;\n\
    \  Domain.join b;\n\
    \  !%s\n"
    name name name name name name

let test_domain_escape () =
  with_source (escape_source "shared") (fun dir ->
      assert_only_pass ~expected:"domain-escape" (run_all dir))

let get_then_set_source cell =
  Fmt.str
    "let bump %s = Atomic.set %s (Atomic.get %s + 1)\n\n\
     let double %s =\n\
    \  let v = Atomic.get %s in\n\
    \  Atomic.set %s (v * 2)\n"
    cell cell cell cell cell cell

let test_atomics_get_then_set () =
  with_source (get_then_set_source "cell") (fun dir ->
      let findings = run_all dir in
      assert_only_pass ~expected:"atomics-discipline" findings;
      (* both the inline and the let-bound shape are flagged *)
      if List.length findings < 2 then
        Alcotest.failf "expected both get-then-set shapes flagged, got %d"
          (List.length findings))

let blocking_retry_source =
  "let slow policy =\n\
  \  Resil.Policy.retry policy (fun () ->\n\
  \      Thread.delay 0.1;\n\
  \      3)\n"

let test_blocking_in_retry () =
  with_source blocking_retry_source (fun dir ->
      assert_only_pass ~expected:"atomics-discipline" (run_all dir))

(* the same shapes with the mutation reverted pass every pass: per-spawn
   private state, a compare_and_set retry loop, a pure retry body *)
let clean_source =
  "let independent () =\n\
  \  let a = Domain.spawn (fun () -> 1) in\n\
  \  let b = Domain.spawn (fun () -> 2) in\n\
  \  Domain.join a + Domain.join b\n\n\
   let bump cell =\n\
  \  let rec go () =\n\
  \    let v = Atomic.get cell in\n\
  \    if not (Atomic.compare_and_set cell v (v + 1)) then go ()\n\
  \  in\n\
  \  go ()\n\n\
   let quick policy = Resil.Policy.retry policy (fun () -> 3)\n"

let test_clean_file () =
  with_source clean_source (fun dir ->
      match run_all dir with
      | [] -> ()
      | fs ->
        Alcotest.failf "clean file flagged: %a"
          (Fmt.list ~sep:Fmt.comma Lint.pp_finding)
          fs)

let test_parse_error_is_a_finding () =
  with_source "let = in" (fun dir ->
      match run_all dir with
      | [ f ] when f.Lint.pass = "parse" -> ()
      | fs ->
        Alcotest.failf "want one parse finding, got %a"
          (Fmt.list ~sep:Fmt.comma Lint.pp_finding)
          fs)

(* ----------------------------------------------------------------- fuzz *)

let ident_gen =
  let open QCheck2.Gen in
  let letter = map (fun i -> Char.chr (Char.code 'a' + i)) (int_bound 25) in
  map2
    (fun c cs -> String.init (1 + List.length cs) (fun i ->
         if i = 0 then c else List.nth cs (i - 1)))
    letter
    (list_size (int_bound 6) letter)

let fuzz_escape =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"domain-escape fires for any binding name"
       ~count:25 ident_gen (fun name ->
         with_source (escape_source name) (fun dir ->
             passes_of (run_all dir) = [ "domain-escape" ])))

let fuzz_get_then_set =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"atomics-discipline fires for any cell name"
       ~count:25 ident_gen (fun cell ->
         with_source (get_then_set_source cell) (fun dir ->
             passes_of (run_all dir) = [ "atomics-discipline" ])))

(* ------------------------------------------------------------ framework *)

let test_registry_names () =
  List.iter
    (fun p ->
      match Lint.find_pass (Lint.pass_name p) with
      | Ok p' ->
        Alcotest.(check string)
          "round-trip" (Lint.pass_name p) (Lint.pass_name p')
      | Error e -> Alcotest.failf "registry pass not findable: %s" e)
    Lint.registry;
  match Lint.find_pass "no-such-pass" with
  | Ok _ -> Alcotest.fail "unknown pass resolved"
  | Error _ -> ()

let test_dedup_and_order () =
  (* the same directory scheduled twice reports each finding once, in
     stable position order *)
  with_source (get_then_set_source "cell") (fun dir ->
      let once = run_all dir in
      let twice = Lint.run_plan [ dir, Lint.registry; dir, Lint.registry ] in
      Alcotest.(check int)
        "deduplicated" (List.length once) (List.length twice);
      let sorted =
        List.sort Lint.compare_finding twice = twice
      in
      if not sorted then Alcotest.fail "findings not in stable order")

let test_whole_tree_clean () =
  (* the tree the CI lint job checks is clean under the same plan
     [swapspace lint] uses; skip when the sources are not visible from the
     test sandbox *)
  let root d = Filename.concat "../../.." d in
  let core = [ "lib/core"; "lib/baselines" ] in
  let mono =
    [ "lib/resil"; "lib/runtime"; "lib/arena"; "lib/prop"; "lib/obs"
    ; "lib/fault" ]
  in
  let conc = [ "lib/runtime"; "lib/arena"; "lib/resil" ] in
  let existing = List.filter (fun d -> Sys.file_exists (root d)) in
  let plan =
    List.map
      (fun d ->
        root d, [ Lint.purity; Lint.poly_hash; Lint.state_equality ])
      (existing core)
    @ List.map (fun d -> root d, [ Lint.monotonic ]) (existing mono)
    @ List.map
        (fun d -> root d, [ Lint.domain_escape; Lint.atomics_discipline ])
        (existing conc)
  in
  match Lint.run_plan plan with
  | [] -> ()
  | fs ->
    Alcotest.failf "tree not lint-clean: %a"
      (Fmt.list ~sep:Fmt.comma Lint.pp_finding)
      fs

let () =
  Alcotest.run "lint"
    [ ( "mutants",
        [ Alcotest.test_case "shared ref across two spawns" `Quick
            test_domain_escape
        ; Alcotest.test_case "get-then-set on one cell" `Quick
            test_atomics_get_then_set
        ; Alcotest.test_case "blocking call in retry body" `Quick
            test_blocking_in_retry
        ; Alcotest.test_case "reverted shapes are clean" `Quick
            test_clean_file
        ; Alcotest.test_case "parse error surfaces as finding" `Quick
            test_parse_error_is_a_finding
        ] )
    ; "fuzz", [ fuzz_escape; fuzz_get_then_set ]
    ; ( "framework",
        [ Alcotest.test_case "pass registry round-trips" `Quick
            test_registry_names
        ; Alcotest.test_case "dedup and stable order" `Quick
            test_dedup_and_order
        ; Alcotest.test_case "repo tree is clean" `Slow
            test_whole_tree_clean
        ] )
    ]
