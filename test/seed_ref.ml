(* Frozen copies of the seed (pre-lib/explore) traversal implementations,
   kept verbatim as differential-testing references.  The production
   [Checker.Make] and [Lowerbound.Theorem10.Make] are now thin layers over
   [Explore.Make]; these copies pin down the seed semantics so
   [test_explore.ml] can assert the refactor changed nothing observable:
   identical reports (violation order, traces, counts, truncation) and
   identical Theorem 10 certificates on the same seeds.

   Do not "improve" this file — its value is being byte-for-byte the seed
   algorithm (commit 1298ebb), modulo the module paths. *)

module Checker_ref (P : Shmem.Protocol.S) = struct
  module E = Shmem.Exec.Make (P)

  module Cfg_tbl = Hashtbl.Make (struct
    type t = E.config

    let equal = E.equal_config
    let hash = E.hash_config
  end)

  let default_solo_cap = 64 * (Array.length P.objects + 1)

  (* Reconstruct the schedule leading to [c] from predecessor links. *)
  let trace_to parents c =
    let rec go c acc =
      match Cfg_tbl.find_opt parents c with
      | None | Some None -> acc
      | Some (Some (parent, step)) -> go parent (step :: acc)
    in
    go c []

  let explore ?(max_configs = 200_000) ?(solo_cap = default_solo_cap)
      ?(check_solo = true) ?(prune = fun _ -> false) ~inputs () =
    let c0 = E.initial ~inputs in
    let seen = Cfg_tbl.create 4096 in
    let parents = Cfg_tbl.create 4096 in
    let queue = Queue.create () in
    let violations = ref [] in
    let truncated = ref false in
    let add_violation property detail c =
      violations :=
        { Checker.property; detail; trace = trace_to parents c } :: !violations
    in
    let check c =
      if not (E.check_agreement c) then
        add_violation "k-agreement"
          (Fmt.str "values %a decided (k=%d)"
             Fmt.(list ~sep:(any ",") int)
             (E.decided_values c) P.k)
          c;
      if not (E.check_validity ~inputs c) then
        add_violation "validity"
          (Fmt.str "decided values %a, inputs %a"
             Fmt.(list ~sep:(any ",") int)
             (E.decided_values c)
             Fmt.(array ~sep:(any ",") int)
             inputs)
          c;
      if check_solo then
        List.iter
          (fun pid ->
            match E.run_solo ~pid ~max_steps:solo_cap c with
            | Some _ -> ()
            | None ->
              add_violation "solo-termination"
                (Fmt.str "p%d does not decide within %d solo steps" pid
                   solo_cap)
                c)
          (E.undecided c)
    in
    Cfg_tbl.replace seen c0 ();
    Cfg_tbl.replace parents c0 None;
    Queue.push c0 queue;
    let explored = ref 0 in
    while not (Queue.is_empty queue) do
      let c = Queue.pop queue in
      incr explored;
      check c;
      if prune c then truncated := true
      else if Cfg_tbl.length seen >= max_configs then truncated := true
      else
        List.iter
          (fun pid ->
            let c', step = E.step c pid in
            if not (Cfg_tbl.mem seen c') then begin
              Cfg_tbl.replace seen c' ();
              Cfg_tbl.replace parents c' (Some (c, step));
              Queue.push c' queue
            end)
          (E.undecided c)
    done;
    { Checker.configs_explored = !explored
    ; violations = List.rev !violations
    ; truncated = !truncated
    }

  let random_runs ?(seed = 0xC0FFEE) ?(max_steps = 100_000)
      ?(solo_check_every = 0) ~runs () =
    let rng = Random.State.make [| seed |] in
    let violations = ref [] in
    let total = ref 0 in
    for _ = 1 to runs do
      let inputs = Array.init P.n (fun _ -> Random.State.int rng P.num_inputs) in
      let c0 = E.initial ~inputs in
      let rec go c rev_steps i =
        incr total;
        let record property detail =
          violations :=
            { Checker.property; detail; trace = List.rev rev_steps }
            :: !violations
        in
        if not (E.check_agreement c) then
          record "k-agreement"
            (Fmt.str "values %a decided"
               Fmt.(list ~sep:(any ",") int)
               (E.decided_values c));
        if not (E.check_validity ~inputs c) then
          record "validity" "decided value is no process's input";
        if solo_check_every > 0 && i mod solo_check_every = 0 then
          List.iter
            (fun pid ->
              match E.run_solo ~pid ~max_steps:default_solo_cap c with
              | Some _ -> ()
              | None ->
                record "solo-termination"
                  (Fmt.str "p%d stuck after %d solo steps" pid
                     default_solo_cap))
            (E.undecided c);
        if i < max_steps then
          match E.undecided c with
          | [] -> ()
          | enabled ->
            let pid =
              List.nth enabled (Random.State.int rng (List.length enabled))
            in
            let c', step = E.step c pid in
            go c' (step :: rev_steps) (i + 1)
      in
      go c0 [] 0
    done;
    { Checker.configs_explored = !total
    ; violations = List.rev !violations
    ; truncated = false
    }
end

(* The seed Theorem 10 driver: identical induction, with the hand-rolled
   per-attempt walk of [search] that the production module now delegates to
   [Explore.Make.walk].  Level/certificate types are re-declared locally;
   [test_explore.ml] compares field by field. *)
module Theorem10_ref (P : Shmem.Protocol.S) = struct
  module L9 = Lowerbound.Lemma9.Make (P)
  module E = L9.E

  type level =
    | Base of L9.certificate
    | Found_k_values of {
        r : int list;
        alpha : Shmem.Trace.t;
        cert : L9.certificate;
      }
    | Recursed of { r : int list }

  type certificate = {
    levels : level list;
    objects_forced : int list;
    bound : int;
  }

  let bound ~n ~k = Lowerbound.Bounds.ksa_swap_lb ~n ~k

  let base_case ~active ~solo_cap =
    let p0, rest =
      match active with
      | p0 :: rest -> p0, rest
      | [] -> invalid_arg "Theorem10: empty active set"
    in
    let inputs = Array.make P.n 1 in
    inputs.(p0) <- 0;
    let c0 = E.initial ~inputs in
    let alpha =
      match E.run_solo ~pid:p0 ~max_steps:solo_cap c0 with
      | Some (c1, trace) ->
        (match E.decision c1 p0 with
        | Some 0 -> trace
        | Some w ->
          raise
            (Lowerbound.Lemma9.Hypothesis_violated
               (Fmt.str "p%d decided %d solo, violating validity" p0 w))
        | None -> assert false)
      | None ->
        raise
          (Lowerbound.Lemma9.Hypothesis_violated
             (Fmt.str "p%d did not decide within %d solo steps" p0 solo_cap))
    in
    L9.run ~inputs ~alpha ~q:rest ~v:1 ~required_distinct:1 ~solo_cap ()

  let search ~rng ~rounds ~kk ~r ~q ~max_steps =
    let try_one ~inputs ~sched =
      let c0 = E.initial ~inputs in
      let rec go c rev_trace i seen =
        if List.length (E.decided_values c) >= kk then
          Some (inputs, List.rev rev_trace)
        else if i >= max_steps then None
        else
          let enabled = List.filter (fun p -> List.mem p r) (E.undecided c) in
          match enabled with
          | [] -> None
          | _ -> (
            match sched ~step_index:i enabled with
            | None -> None
            | Some pid ->
              let c', s = E.step c pid in
              go c' (s :: rev_trace) (i + 1) seen)
      in
      go c0 [] 0 []
    in
    let structured_inputs =
      let inputs = Array.make P.n kk in
      List.iteri (fun j pid -> inputs.(pid) <- j mod kk) r;
      List.iter (fun pid -> inputs.(pid) <- kk) q;
      inputs
    in
    let random_inputs () =
      let inputs = Array.make P.n kk in
      List.iter (fun pid -> inputs.(pid) <- Random.State.int rng kk) r;
      inputs
    in
    let random_sched ~step_index:_ enabled =
      Some (List.nth enabled (Random.State.int rng (List.length enabled)))
    in
    let round_robin ~step_index enabled =
      Some (List.nth enabled (step_index mod List.length enabled))
    in
    let rec attempt i =
      if i >= rounds then None
      else
        let inputs = if i = 0 then structured_inputs else random_inputs () in
        let sched = if i mod 2 = 0 then random_sched else round_robin in
        match try_one ~inputs ~sched with
        | Some res -> Some res
        | None -> attempt (i + 1)
    in
    attempt 0

  let run ?(search_rounds = 200) ?(seed = 42)
      ?(solo_cap = 1024 * (Array.length P.objects + 1)) () =
    let rng = Random.State.make [| seed |] in
    let rec go active kk levels =
      if kk = 1 then
        let cert = base_case ~active ~solo_cap in
        { levels = List.rev (Base cert :: levels)
        ; objects_forced = cert.L9.objects_forced
        ; bound = bound ~n:P.n ~k:P.k
        }
      else begin
        let a = List.length active in
        let r_size = (a * (kk - 1) + kk - 1) / kk in
        let rec split i = function
          | [] -> [], []
          | x :: xs ->
            if i = 0 then [], x :: xs
            else
              let l, r = split (i - 1) xs in
              x :: l, r
        in
        let r, q = split r_size active in
        match
          search ~rng ~rounds:search_rounds ~kk ~r ~q
            ~max_steps:(200 * P.n * (Array.length P.objects + 1))
        with
        | Some (inputs, alpha) ->
          let cert =
            L9.run ~inputs ~alpha ~q ~v:kk ~required_distinct:kk ~solo_cap ()
          in
          { levels = List.rev (Found_k_values { r; alpha; cert } :: levels)
          ; objects_forced = cert.L9.objects_forced
          ; bound = bound ~n:P.n ~k:P.k
          }
        | None -> go r (kk - 1) (Recursed { r } :: levels)
      end
    in
    go (List.init P.n Fun.id) P.k []
end
