type entry = {
  name : string;
  protocol : Shmem.Protocol.t;
  prune : Shmem.Value.t array -> bool;
  burst : int;
  stated_objects : string;
}

let lap_prune bound mem =
  Array.exists
    (fun v ->
      match v with
      | Shmem.Value.Pair (Shmem.Value.Ints u, _) ->
        Array.exists (fun x -> x > bound) u
      | _ -> false)
    mem

let no_prune _ = false

let standard ?(n = 4) () =
  let k2 = min 2 (n - 1) in
  let cap = 48 in
  let track make name stated =
    let (module B : Binary_track_consensus.S) = make ~n ~cap in
    { name
    ; protocol = (module B : Shmem.Protocol.S)
    ; prune = B.near_cap ~margin:3
    ; burst = 8 * cap
    ; stated_objects = stated
    }
  in
  [ (let (module P) = Core.Swap_ksa.make ~n ~k:1 ~m:2 in
     { name = "swap-ksa k=1"
     ; protocol = (module P)
     ; prune = lap_prune 3
     ; burst = 2 * Core.Swap_ksa.solo_step_bound ~n ~k:1
     ; stated_objects = "n-1 (optimal)"
     })
  ; (let (module P) = Core.Swap_ksa.make ~n ~k:k2 ~m:(k2 + 1) in
     { name = Fmt.str "swap-ksa k=%d" k2
     ; protocol = (module P)
     ; prune = lap_prune 3
     ; burst = 2 * Core.Swap_ksa.solo_step_bound ~n ~k:k2
     ; stated_objects = "n-k"
     })
  ; { name = "register-ksa k=1"
    ; protocol = Register_ksa.make ~n ~k:1 ~m:2
    ; prune = lap_prune 3
    ; burst = 8 * (n + 1) * (n + 1)
    ; stated_objects = "n-k+1"
    }
  ; { name = "readable-swap"
    ; protocol = Readable_swap_consensus.make ~n ~m:2
    ; prune = lap_prune 3
    ; burst = 32 * n
    ; stated_objects = "n-1"
    }
  ; track Binary_track_consensus.make "binary-track" "2n-1 binary [17]"
  ; track Binary_track_consensus.make_eager "binary-track eager"
      "2n-1 binary [17]"
  ; track Binary_track_consensus.make_tas "tas-track" "unbounded TAS [16]"
  ; { name = "bitwise"
    ; protocol = Bitwise_consensus.make ~n ~m:3 ~cap
    ; prune = Bitwise_consensus.near_cap ~n ~m:3 ~cap ~margin:3
    ; burst = 16 * cap
    ; stated_objects = "O(n log m) binary"
    }
  ; (let k = max 1 ((n + 1) / 2) in
     { name = "grouped-ksa"
     ; protocol = Grouped_ksa.make ~n ~k ~m:2
     ; prune = no_prune
     ; burst = 4
     ; stated_objects = "k (n <= 2k)"
     })
  ; { name = "cas"
    ; protocol = Cas_consensus.make ~n ~m:2
    ; prune = no_prune
    ; burst = 4
    ; stated_objects = "1 (not historyless)"
    }
  ; { name = "pair-ksa"
    ; protocol = Core.Pair_ksa.make ~n ~m:2
    ; prune = no_prune
    ; burst = 4
    ; stated_objects = "1"
    }
  ]

let find prefix ~n =
  List.find_opt
    (fun e ->
      String.length e.name >= String.length prefix
      && String.sub e.name 0 (String.length prefix) = prefix)
    (standard ~n ())
