type entry = {
  name : string;
  protocol : Shmem.Protocol.t;
  prune : Shmem.Value.t array -> bool;
  burst : int;
  stated_objects : string;
  multicore_runnable : bool;
  solo_bound : int option;
  props : Prop.pack;
}

(* Algorithm 1 carries its §4 invariants as declared properties; the pack
   is built from the same module the protocol field packs, so unpacking the
   pack and instantiating a checker from its [P] makes the types line up.
   Only the cheap online properties go in: the solo-bound property needs a
   memoized oracle the checker supplies itself (as "solo-termination"). *)
let swap_ksa_props (module P : Core.Swap_ksa.S) : Prop.pack =
  (module struct
    module P = P

    let props =
      let module M = Core.Swap_ksa_monitor.Make (P) in
      M.online_props
  end)

let lap_prune bound mem =
  Array.exists
    (fun v ->
      match v with
      | Shmem.Value.Pair (Shmem.Value.Ints u, _) ->
        Array.exists (fun x -> x > bound) u
      | _ -> false)
    mem

let no_prune _ = false

let standard ?(n = 4) () =
  let k2 = min 2 (n - 1) in
  let cap = 48 in
  (* the cap-bounded unary-track algorithms are obstruction-free only while
     positions stay below [cap], so a real-concurrency run may livelock at
     the cap; they stay on the simulator backend *)
  let track make name stated =
    let (module B : Binary_track_consensus.S) = make ~n ~cap in
    let protocol = (module B : Shmem.Protocol.S) in
    { name
    ; protocol
    ; prune = B.near_cap ~margin:3
    ; burst = 8 * cap
    ; stated_objects = stated
    ; multicore_runnable = false
    ; solo_bound = None
    ; props = Prop.generic_pack protocol
    }
  in
  [ (let (module P) = Core.Swap_ksa.make ~n ~k:1 ~m:2 in
     { name = "swap-ksa k=1"
     ; protocol = (module P)
     ; prune = lap_prune 3
     ; burst = 2 * Core.Swap_ksa.solo_step_bound ~n ~k:1
     ; stated_objects = "n-1 (optimal)"
     ; multicore_runnable = true
     ; solo_bound = Some (Core.Swap_ksa.solo_step_bound ~n ~k:1)
     ; props = swap_ksa_props (module P)
     })
  ; (let (module P) = Core.Swap_ksa.make ~n ~k:k2 ~m:(k2 + 1) in
     { name = Fmt.str "swap-ksa k=%d" k2
     ; protocol = (module P)
     ; prune = lap_prune 3
     ; burst = 2 * Core.Swap_ksa.solo_step_bound ~n ~k:k2
     ; stated_objects = "n-k"
     ; multicore_runnable = true
     ; solo_bound = Some (Core.Swap_ksa.solo_step_bound ~n ~k:k2)
     ; props = swap_ksa_props (module P)
     })
  ; (let protocol = Register_ksa.make ~n ~k:1 ~m:2 in
     { name = "register-ksa k=1"
     ; protocol
     ; prune = lap_prune 3
     ; burst = 8 * (n + 1) * (n + 1)
     ; stated_objects = "n-k+1"
     ; multicore_runnable = true
     ; solo_bound = None
     ; props = Prop.generic_pack protocol
     })
  ; (let protocol = Readable_swap_consensus.make ~n ~m:2 in
     { name = "readable-swap"
     ; protocol
     ; prune = lap_prune 3
     ; burst = 32 * n
     ; stated_objects = "n-1"
     ; multicore_runnable = true
     ; solo_bound = None
     ; props = Prop.generic_pack protocol
     })
  ; track Binary_track_consensus.make "binary-track" "2n-1 binary [17]"
  ; track Binary_track_consensus.make_eager "binary-track eager"
      "2n-1 binary [17]"
  ; track Binary_track_consensus.make_tas "tas-track" "unbounded TAS [16]"
  ; (let protocol = Bitwise_consensus.make ~n ~m:3 ~cap in
     { name = "bitwise"
     ; protocol
     ; prune = Bitwise_consensus.near_cap ~n ~m:3 ~cap ~margin:3
     ; burst = 16 * cap
     ; stated_objects = "O(n log m) binary"
     ; multicore_runnable = false
     ; solo_bound = None
     ; props = Prop.generic_pack protocol
     })
  ; (let k = max 1 ((n + 1) / 2) in
     let protocol = Grouped_ksa.make ~n ~k ~m:2 in
     { name = "grouped-ksa"
     ; protocol
     ; prune = no_prune
     ; burst = 4
     ; stated_objects = "k (n <= 2k)"
     ; multicore_runnable = true
     ; solo_bound = None
     ; props = Prop.generic_pack protocol
     })
  ; (let protocol = Cas_consensus.make ~n ~m:2 in
     { name = "cas"
     ; protocol
     ; prune = no_prune
     ; burst = 4
     ; stated_objects = "1 (not historyless)"
     ; multicore_runnable = true
     ; solo_bound = None
     ; props = Prop.generic_pack protocol
     })
  ; (let protocol = Core.Pair_ksa.make ~n ~m:2 in
     { name = "pair-ksa"
     ; protocol
     ; prune = no_prune
     ; burst = 4
     ; stated_objects = "1"
     ; multicore_runnable = true
     ; solo_bound = None
     ; props = Prop.generic_pack protocol
     })
  ]

let find name ~n =
  let entries = standard ~n () in
  let is_prefix e =
    String.length e.name >= String.length name
    && String.sub e.name 0 (String.length name) = name
  in
  match List.find_opt (fun e -> e.name = name) entries with
  | Some e -> Ok e
  | None -> (
    match List.filter is_prefix entries with
    | [ e ] -> Ok e
    | [] ->
      Error
        (Fmt.str "unknown algorithm %S (available: %s)" name
           (String.concat ", " (List.map (fun e -> e.name) entries)))
    | ambiguous ->
      Error
        (Fmt.str "ambiguous algorithm prefix %S (matches: %s)" name
           (String.concat ", " (List.map (fun e -> e.name) ambiguous))))
