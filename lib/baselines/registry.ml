type entry = {
  name : string;
  protocol : Shmem.Protocol.t;
  prune : Shmem.Value.t array -> bool;
  burst : int;
  stated_objects : string;
  multicore_runnable : bool;
  solo_bound : int option;
}

let lap_prune bound mem =
  Array.exists
    (fun v ->
      match v with
      | Shmem.Value.Pair (Shmem.Value.Ints u, _) ->
        Array.exists (fun x -> x > bound) u
      | _ -> false)
    mem

let no_prune _ = false

let standard ?(n = 4) () =
  let k2 = min 2 (n - 1) in
  let cap = 48 in
  (* the cap-bounded unary-track algorithms are obstruction-free only while
     positions stay below [cap], so a real-concurrency run may livelock at
     the cap; they stay on the simulator backend *)
  let track make name stated =
    let (module B : Binary_track_consensus.S) = make ~n ~cap in
    { name
    ; protocol = (module B : Shmem.Protocol.S)
    ; prune = B.near_cap ~margin:3
    ; burst = 8 * cap
    ; stated_objects = stated
    ; multicore_runnable = false
    ; solo_bound = None
    }
  in
  [ (let (module P) = Core.Swap_ksa.make ~n ~k:1 ~m:2 in
     { name = "swap-ksa k=1"
     ; protocol = (module P)
     ; prune = lap_prune 3
     ; burst = 2 * Core.Swap_ksa.solo_step_bound ~n ~k:1
     ; stated_objects = "n-1 (optimal)"
     ; multicore_runnable = true
     ; solo_bound = Some (Core.Swap_ksa.solo_step_bound ~n ~k:1)
     })
  ; (let (module P) = Core.Swap_ksa.make ~n ~k:k2 ~m:(k2 + 1) in
     { name = Fmt.str "swap-ksa k=%d" k2
     ; protocol = (module P)
     ; prune = lap_prune 3
     ; burst = 2 * Core.Swap_ksa.solo_step_bound ~n ~k:k2
     ; stated_objects = "n-k"
     ; multicore_runnable = true
     ; solo_bound = Some (Core.Swap_ksa.solo_step_bound ~n ~k:k2)
     })
  ; { name = "register-ksa k=1"
    ; protocol = Register_ksa.make ~n ~k:1 ~m:2
    ; prune = lap_prune 3
    ; burst = 8 * (n + 1) * (n + 1)
    ; stated_objects = "n-k+1"
    ; multicore_runnable = true
    ; solo_bound = None
    }
  ; { name = "readable-swap"
    ; protocol = Readable_swap_consensus.make ~n ~m:2
    ; prune = lap_prune 3
    ; burst = 32 * n
    ; stated_objects = "n-1"
    ; multicore_runnable = true
    ; solo_bound = None
    }
  ; track Binary_track_consensus.make "binary-track" "2n-1 binary [17]"
  ; track Binary_track_consensus.make_eager "binary-track eager"
      "2n-1 binary [17]"
  ; track Binary_track_consensus.make_tas "tas-track" "unbounded TAS [16]"
  ; { name = "bitwise"
    ; protocol = Bitwise_consensus.make ~n ~m:3 ~cap
    ; prune = Bitwise_consensus.near_cap ~n ~m:3 ~cap ~margin:3
    ; burst = 16 * cap
    ; stated_objects = "O(n log m) binary"
    ; multicore_runnable = false
    ; solo_bound = None
    }
  ; (let k = max 1 ((n + 1) / 2) in
     { name = "grouped-ksa"
     ; protocol = Grouped_ksa.make ~n ~k ~m:2
     ; prune = no_prune
     ; burst = 4
     ; stated_objects = "k (n <= 2k)"
     ; multicore_runnable = true
     ; solo_bound = None
     })
  ; { name = "cas"
    ; protocol = Cas_consensus.make ~n ~m:2
    ; prune = no_prune
    ; burst = 4
    ; stated_objects = "1 (not historyless)"
    ; multicore_runnable = true
    ; solo_bound = None
    }
  ; { name = "pair-ksa"
    ; protocol = Core.Pair_ksa.make ~n ~m:2
    ; prune = no_prune
    ; burst = 4
    ; stated_objects = "1"
    ; multicore_runnable = true
    ; solo_bound = None
    }
  ]

let find name ~n =
  let entries = standard ~n () in
  let is_prefix e =
    String.length e.name >= String.length name
    && String.sub e.name 0 (String.length name) = name
  in
  match List.find_opt (fun e -> e.name = name) entries with
  | Some e -> Ok e
  | None -> (
    match List.filter is_prefix entries with
    | [ e ] -> Ok e
    | [] ->
      Error
        (Fmt.str "unknown algorithm %S (available: %s)" name
           (String.concat ", " (List.map (fun e -> e.name) entries)))
    | ambiguous ->
      Error
        (Fmt.str "ambiguous algorithm prefix %S (matches: %s)" name
           (String.concat ", " (List.map (fun e -> e.name) ambiguous))))
