(** Multivalued consensus from binary consensus instances over binary
    objects — the classic bit-by-bit construction behind the
    [O(n log n)]-binary-register algorithm for inputs in [{1..n}] cited in
    §2 (Ellen, Gelashvili, Shavit and Zhu [16]).

    The protocol uses a {e proposal board} of [n·(⌈log₂ m⌉ + 1)] readable
    binary swap objects (each process posts its input's bits, then raises a
    posted flag) followed by [⌈log₂ m⌉] independent instances of a binary
    consensus protocol.  Processes agree on the output one bit per round:
    in round [r] a process proposes bit [r] of its {e candidate} — a posted
    value whose bits agree with the already-decided prefix — and rescans the
    board for a new candidate whenever the decided bit contradicts its own.
    Validity of the binary instances guarantees a matching posted value
    always exists, so the final agreed bit string is some process's input.

    {!Make} is a combinator: any binary consensus protocol for the same [n]
    can provide the per-round instances. *)

module Make (B : Shmem.Protocol.S) : sig
  val make : m:int -> (module Shmem.Protocol.S)
  (** an [m]-valued consensus protocol for [B.n] processes built from
      [⌈log₂ m⌉] instances of [B] plus the proposal board.
      @raise Invalid_argument unless [B] is binary consensus
      ([B.k = 1], [B.num_inputs = 2]) and [m >= 2] *)
end

val make : n:int -> m:int -> cap:int -> (module Shmem.Protocol.S)
(** the construction instantiated with {!Binary_track_consensus} instances
    (track length [cap]), giving m-valued consensus from binary readable
    swap objects only *)

val bits_needed : int -> int
(** ⌈log₂ m⌉ (at least 1): the number of binary instances used *)

val near_cap :
  n:int -> m:int -> cap:int -> margin:int -> Shmem.Value.t array -> bool
(** for protocols built by {!make}: whether any instance's track position is
    within [margin] of [cap] (checker pruning predicate, mirroring
    {!Binary_track_consensus.S.near_cap}) *)
