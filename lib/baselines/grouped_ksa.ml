module Sh = Shmem

let make ~n ~k ~m : (module Sh.Protocol.S) =
  if k < 1 then invalid_arg "Grouped_ksa.make: need k >= 1";
  if n < 2 || n > 2 * k then invalid_arg "Grouped_ksa.make: need 2 <= n <= 2k";
  if m < 2 then invalid_arg "Grouped_ksa.make: need m >= 2";
  (module struct
    let name = Fmt.str "grouped-ksa(n=%d,k=%d,m=%d)" n k m
    let n = n
    let k = k
    let num_inputs = m
    let objects = Array.make k (Sh.Obj_kind.Swap_only Sh.Obj_kind.Unbounded)
    let init_object _ = Sh.Value.Bot

    (* one object per group; beats n - k only because n <= 2k here *)
    let space_bound ~n:_ ~k = k

    type state = { pid : int; input : int; decided : int option }

    let init ~pid ~input = { pid; input; decided = None }
    let group pid = pid mod k
    let poised s = Sh.Op.swap (group s.pid) (Sh.Value.Int s.input)

    let on_response s resp =
      match resp with
      | Sh.Value.Bot -> { s with decided = Some s.input }
      | Sh.Value.Int w -> { s with decided = Some w }
      | v ->
        invalid_arg
          (Fmt.str "grouped-ksa: malformed object value %a" Sh.Value.pp v)

    let decision s = s.decided
    let equal_state s1 s2 =
      s1.pid = s2.pid && s1.input = s2.input
      && Option.equal Int.equal s1.decided s2.decided

    let hash_state s =
      Sh.Hashx.(opt int (int (int seed s.pid) s.input) s.decided)

    let pp_state ppf s =
      Fmt.pf ppf "{input=%d%a}" s.input
        Fmt.(option (fun ppf d -> Fmt.pf ppf " decided=%d" d))
        s.decided

    (* NOT anonymous: the target object is [pid mod k], so renaming a
       process moves its operations to a different object *)
    let symmetry = Sh.Protocol.Asymmetric
    let recovery = Sh.Protocol.Restart
  end)
