(** Wait-free, [n]-process consensus from a single compare-and-swap object
    (Herlihy [7]; §2's perturbable-object comparison point).

    Compare-and-swap is {e not} historyless, which is why one object
    suffices here while the paper proves Ω(n) bounds for historyless
    objects.  Each process attempts [Cas(⊥, input)]; the winner decides its
    input, losers read the object and decide what they find. *)

val make : n:int -> m:int -> (module Shmem.Protocol.S)
(** each process decides within two steps.
    @raise Invalid_argument unless [n >= 1] and [m >= 2] *)
