(** A registry of every agreement algorithm in the repository, with the
    metadata the generic harnesses need: how to prune unbounded state for
    exhaustive checking, how long a solo window guarantees progress, and
    the algorithm's stated space bound.

    The conformance test suite and the benchmark tables iterate this
    registry, so a new algorithm added here is automatically model-checked,
    property-tested and benchmarked. *)

type entry = {
  name : string;
  protocol : Shmem.Protocol.t;
  prune : Shmem.Value.t array -> bool;
      (** checker pruning predicate over a memory snapshot (constant [false]
          for protocols with finite reachable space) *)
  burst : int;  (** a solo window guaranteeing progress under bursty runs *)
  stated_objects : string;  (** the bound from the paper / related work *)
  multicore_runnable : bool;
      (** whether the protocol can be executed on real domains by
          [Runtime.Make]: true for the algorithms whose obstruction-freedom
          is unconditional, false for the cap-bounded unary-track
          constructions (binary-track, tas-track, bitwise), which may
          livelock at the cap under real concurrency *)
  solo_bound : int option;
      (** a {e proved} bound on the number of steps in any solo execution:
          [8(n-k)] for Algorithm 1 (Lemma 8).  [None] where the source
          gives no closed-form solo bound.  [lib/analyze]'s solo-bound
          verifier checks measured solo executions against this. *)
  props : Prop.pack;
      (** the declared properties attached to this algorithm, over the
          {e same} module the [protocol] field packs (unpack the pack first
          and instantiate checkers from its [P] so the types unify — see
          {!Prop.PACK}).  Algorithm 1 entries carry the §4 invariants
          ([Core.Swap_ksa_monitor.Make.online_props]); every other entry
          carries {!Prop.generic_pack}'s protocol-independent set.  The
          checker's own built-ins (k-agreement, validity, solo-termination)
          are always additionally in force. *)
}

val standard : ?n:int -> unit -> entry list
(** the standard grid at [n] processes (default 4): Algorithm 1 for k=1 and
    k=2, the register / readable-swap / binary-track (plain, eager, TAS) /
    bitwise / grouped / CAS / one-object algorithms. *)

val find : string -> n:int -> (entry, string) result
(** look up a registry entry at a given [n]: an exact name match wins;
    otherwise the name is treated as a prefix, which must select a single
    entry.  [Error] describes unknown names (listing the available entries)
    and ambiguous prefixes (listing the matches) *)
