module Sh = Shmem

let make ~n ~m : (module Sh.Protocol.S) =
  if n < 1 then invalid_arg "Cas_consensus.make: need n >= 1";
  if m < 2 then invalid_arg "Cas_consensus.make: need m >= 2";
  (module struct
    let name = Fmt.str "cas-consensus(n=%d,m=%d)" n m
    let n = n
    let k = 1
    let num_inputs = m
    let objects = [| Sh.Obj_kind.Compare_and_swap Sh.Obj_kind.Unbounded |]
    let init_object _ = Sh.Value.Bot

    (* a single CAS object; possible because CAS is not historyless *)
    let space_bound ~n:_ ~k:_ = 1

    type phase = Try | Read_back

    type state = { input : int; phase : phase; decided : int option }

    let init ~pid:_ ~input = { input; phase = Try; decided = None }

    let poised s =
      match s.phase with
      | Try ->
        Sh.Op.cas 0 ~expected:Sh.Value.Bot ~desired:(Sh.Value.Int s.input)
      | Read_back -> Sh.Op.read 0

    let on_response s resp =
      match s.phase, resp with
      | Try, Sh.Value.Int 1 -> { s with decided = Some s.input }
      | Try, Sh.Value.Int 0 -> { s with phase = Read_back }
      | Read_back, Sh.Value.Int w -> { s with decided = Some w }
      | _, v ->
        invalid_arg
          (Fmt.str "cas-consensus: unexpected response %a" Sh.Value.pp v)

    let decision s = s.decided
    let equal_state s1 s2 =
      s1.input = s2.input
      && (match s1.phase, s2.phase with
         | Try, Try | Read_back, Read_back -> true
         | (Try | Read_back), _ -> false)
      && Option.equal Int.equal s1.decided s2.decided

    let hash_state s =
      let phase = match s.phase with Try -> 1 | Read_back -> 2 in
      Sh.Hashx.(opt int (int (int seed s.input) phase) s.decided)

    let pp_state ppf s =
      Fmt.pf ppf "{input=%d %s%a}" s.input
        (match s.phase with Try -> "try" | Read_back -> "read")
        Fmt.(option (fun ppf d -> Fmt.pf ppf " decided=%d" d))
        s.decided

    (* the state carries no pid at all: renaming is the identity *)
    let symmetry =
      Sh.Protocol.Anonymous
        { canon_key = hash_state; rename = (fun _ s -> s) }

    (* genuine resumption: a CAS winner is durable in shared memory, so a
       respawned process re-reads the cell and adopts the installed value —
       exactly the protocol's own [Read_back] path, precomputed.  An empty
       cell means nothing was installed yet: start over. *)
    let recovery =
      Sh.Protocol.Resume
        (fun ~pid:_ ~input mem ->
          match mem.(0) with
          | Sh.Value.Int w -> { input; phase = Read_back; decided = Some w }
          | _ -> { input; phase = Try; decided = None })
  end)
