(** An obstruction-free, [m]-valued, [k]-set agreement algorithm for [n]
    processes from [n-k+1] registers.

    This is the register baseline the paper compares against: Bouzid, Raynal
    and Sutra [15] solve obstruction-free k-set agreement with [n-k+1]
    read/write registers.  We implement a racing-lap algorithm with the same
    object kind, the same space usage and the same crucial discipline as
    [15] (see DESIGN.md, Substitutions): each register holds a
    ⟨lap counter, identifier⟩ pair; a process repeatedly {e scans} all
    [n-k+1] registers, merges every lap counter it saw, and then writes its
    own pair into the {e first register whose content differs} — one write
    per scan, so a process acting on stale information can destroy at most
    one register's contents before its next scan informs it.  (A write-all
    pass instead of single writes is unsafe: the checker exhibits an
    agreement violation for it even with [n = 2].)  A scan that returns the
    process's own pair everywhere completes a lap; a value is decided once
    it leads every other value by 2 laps, as in Algorithm 1. *)

val make : n:int -> k:int -> m:int -> (module Shmem.Protocol.S)
(** @raise Invalid_argument unless [n > k >= 1] and [m >= 2] *)
