module Sh = Shmem

module type S = sig
  include Sh.Protocol.S

  val cap : int
  val positions : Sh.Value.t array -> int * int
  val near_cap : margin:int -> Sh.Value.t array -> bool
end

let make_general ?(eager = false) ~kind_name ~kind ~n ~cap () : (module S) =
  if n < 2 then invalid_arg "Binary_track_consensus.make: need n >= 2";
  if cap < 4 then invalid_arg "Binary_track_consensus.make: need cap >= 4";
  (module struct
    let name =
      Fmt.str "%s-track(n=%d,cap=%d%s)" kind_name n cap
        (if eager then ",eager" else "")
    let n = n
    let k = 1
    let num_inputs = 2
    let cap = cap

    let objects = Array.make (2 * cap) kind

    let init_object _ = Sh.Value.Int 0

    (* two tracks of [cap] binary cells; the 2n-1 figure of [17] assumes
       cap is sized to the worst-case race, here it is a free parameter *)
    let space_bound ~n:_ ~k:_ = 2 * cap
    let cell v i = (v * cap) + i

    (* scanning the preferred track, then the opposite track; [count] is the
       number of set cells seen so far in the track being scanned *)
    type phase =
      | Scan_own of { index : int; count : int }
      | Scan_opp of { index : int; count : int; own : int }
      | Advance of { own : int; opp : int }

    type state = {
      pid : int;
      pref : int;
      phase : phase;
      decided : int option;
    }

    let init ~pid ~input =
      { pid; pref = input; phase = Scan_own { index = 0; count = 0 }
      ; decided = None }

    let poised s =
      match s.phase with
      | Scan_own { index; _ } -> Sh.Op.read (cell s.pref index)
      | Scan_opp { index; _ } -> Sh.Op.read (cell (1 - s.pref) index)
      | Advance { own; _ } -> Sh.Op.swap (cell s.pref own) Sh.Value.one

    let rescan s = { s with phase = Scan_own { index = 0; count = 0 } }

    (* end of a full scan: own track at [own], opposite track at [opp] *)
    let evaluate s ~own ~opp =
      if own >= opp + 2 then { s with decided = Some s.pref }
      else if opp > own then rescan { s with pref = 1 - s.pref }
      else if own >= cap then
        (* track full: cannot advance; keep rescanning (the unary encoding's
           documented limitation — callers keep positions below the cap) *)
        rescan s
      else { s with phase = Advance { own; opp } }

    let bit resp =
      match resp with
      | Sh.Value.Int 0 -> false
      | Sh.Value.Int 1 -> true
      | v ->
        invalid_arg
          (Fmt.str "binary-track: malformed cell value %a" Sh.Value.pp v)

    let on_response s resp =
      match s.phase with
      | Scan_own { index; count } ->
        if bit resp && index + 1 < cap then
          { s with phase = Scan_own { index = index + 1; count = count + 1 } }
        else
          let own = if bit resp then count + 1 else count in
          { s with phase = Scan_opp { index = 0; count = 0; own } }
      | Scan_opp { index; count; own } ->
        if bit resp && index + 1 < cap then
          { s with
            phase = Scan_opp { index = index + 1; count = count + 1; own } }
        else
          let opp = if bit resp then count + 1 else count in
          evaluate s ~own ~opp
      | Advance { own; _ } ->
        (* the eager variant uses the swap's response: 0 means this process
           extended the prefix itself, so its own position is known and the
           own-track rescan can be skipped *)
        if eager && not (bit resp) && own + 1 <= cap then
          { s with phase = Scan_opp { index = 0; count = 0; own = own + 1 } }
        else rescan s

    let decision s = s.decided
    let equal_state s1 s2 =
      s1.pid = s2.pid && s1.pref = s2.pref
      && Option.equal Int.equal s1.decided s2.decided
      &&
      (match s1.phase, s2.phase with
      | Scan_own a, Scan_own b -> a.index = b.index && a.count = b.count
      | Scan_opp a, Scan_opp b ->
        a.index = b.index && a.count = b.count && a.own = b.own
      | Advance a, Advance b -> a.own = b.own && a.opp = b.opp
      | (Scan_own _ | Scan_opp _ | Advance _), _ -> false)

    let hash_state s =
      let phase_hash =
        match s.phase with
        | Scan_own { index; count } ->
          Sh.Hashx.(int (int (int seed 1) index) count)
        | Scan_opp { index; count; own } ->
          Sh.Hashx.(int (int (int (int seed 2) index) count) own)
        | Advance { own; opp } -> Sh.Hashx.(int (int (int seed 3) own) opp)
      in
      Sh.Hashx.(
        opt int (int (int (int seed s.pid) s.pref) phase_hash) s.decided)

    (* anonymity: tracks are indexed by preference, never by pid; the pid
       is carried but never consulted *)
    let symmetry =
      Sh.Protocol.Anonymous
        { canon_key =
            (fun s ->
              let phase_hash =
                match s.phase with
                | Scan_own { index; count } ->
                  Sh.Hashx.(int (int (int seed 1) index) count)
                | Scan_opp { index; count; own } ->
                  Sh.Hashx.(int (int (int (int seed 2) index) count) own)
                | Advance { own; opp } ->
                  Sh.Hashx.(int (int (int seed 3) own) opp)
              in
              Sh.Hashx.(opt int (int (int seed s.pref) phase_hash) s.decided))
        ; rename = (fun f s -> { s with pid = f s.pid })
        }
    let recovery = Sh.Protocol.Restart

    let pp_state ppf s =
      let pp_phase ppf = function
        | Scan_own { index; count } -> Fmt.pf ppf "own@%d(%d)" index count
        | Scan_opp { index; count; own } ->
          Fmt.pf ppf "opp@%d(%d,own=%d)" index count own
        | Advance { own; opp } -> Fmt.pf ppf "adv(%d,%d)" own opp
      in
      Fmt.pf ppf "{pref=%d %a%a}" s.pref pp_phase s.phase
        Fmt.(option (fun ppf d -> Fmt.pf ppf " decided=%d" d))
        s.decided

    let positions mem =
      let pos v =
        let rec go i =
          if i >= cap then cap
          else
            match mem.(cell v i) with
            | Sh.Value.Int 1 -> go (i + 1)
            | _ -> i
        in
        go 0
      in
      pos 0, pos 1

    let near_cap ~margin mem =
      let p0, p1 = positions mem in
      p0 >= cap - margin || p1 >= cap - margin
  end)

let binary_kind = Sh.Obj_kind.Readable_swap (Sh.Obj_kind.Bounded 2)
let make ~n ~cap = make_general ~kind_name:"binary" ~kind:binary_kind ~n ~cap ()

let make_eager ~n ~cap =
  make_general ~eager:true ~kind_name:"binary" ~kind:binary_kind ~n ~cap ()

let make_tas ~n ~cap =
  make_general ~kind_name:"tas" ~kind:Sh.Obj_kind.Test_and_set ~n ~cap ()
