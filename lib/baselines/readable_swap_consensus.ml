module Sh = Shmem

let make ~n ~m : (module Sh.Protocol.S) =
  if n < 2 then invalid_arg "Readable_swap_consensus.make: need n >= 2";
  if m < 2 then invalid_arg "Readable_swap_consensus.make: need m >= 2";
  let r = n - 1 in
  (module struct
    let name = Fmt.str "readable-swap-consensus(n=%d,m=%d)" n m
    let n = n
    let k = 1
    let num_inputs = m
    let objects = Array.make r (Sh.Obj_kind.Readable_swap Sh.Obj_kind.Unbounded)

    let init_object _ =
      Sh.Value.Pair (Sh.Value.Ints (Array.make m 0), Sh.Value.Bot)

    let space_bound ~n ~k:_ = n - 1

    type phase = Reading of int | Swapping of int

    type state = {
      pid : int;
      u : int array;
      phase : phase;
      conflict : bool;
      decided : int option;
    }

    let init ~pid ~input =
      let u = Array.make m 0 in
      u.(input) <- 1;
      { pid; u; phase = Reading 0; conflict = false; decided = None }

    let poised s =
      match s.phase with
      | Reading i -> Sh.Op.read i
      | Swapping i ->
        Sh.Op.swap i (Sh.Value.Pair (Sh.Value.Ints s.u, Sh.Value.Pid s.pid))

    let leader u =
      let v = ref 0 in
      for j = 1 to Array.length u - 1 do
        if u.(j) > u.(!v) then v := j
      done;
      !v

    let leads_by_two u v =
      let ok = ref true in
      for j = 0 to Array.length u - 1 do
        if j <> v && u.(v) < u.(j) + 2 then ok := false
      done;
      !ok

    let decode resp =
      match resp with
      | Sh.Value.Pair (Sh.Value.Ints u', p') -> u', p'
      | v ->
        invalid_arg
          (Fmt.str "readable-swap-consensus: malformed object value %a"
             Sh.Value.pp v)

    (* merge a lap counter into the local one without recording a conflict
       (used for the read pass) *)
    let merge s u' =
      if Array.for_all2 Int.equal u' s.u then s
      else { s with u = Array.init m (fun j -> max s.u.(j) u'.(j)) }

    (* the swap pass behaves exactly like Algorithm 1's lines 8-12 *)
    let absorb s resp =
      let u', p' = decode resp in
      let same_id = match p' with Sh.Value.Pid q -> q = s.pid | _ -> false in
      let same_u = Array.for_all2 Int.equal u' s.u in
      let s = merge s u' in
      { s with conflict = s.conflict || not (same_id && same_u) }

    let end_of_pass s =
      if s.conflict then { s with phase = Reading 0; conflict = false }
      else
        let v = leader s.u in
        if leads_by_two s.u v then { s with decided = Some v }
        else begin
          let u = Array.copy s.u in
          u.(v) <- u.(v) + 1;
          { s with u; phase = Reading 0; conflict = false }
        end

    let on_response s resp =
      match s.phase with
      | Reading i ->
        let u', _ = decode resp in
        let s = merge s u' in
        if i + 1 < r then { s with phase = Reading (i + 1) }
        else { s with phase = Swapping 0 }
      | Swapping i ->
        let s = absorb s resp in
        if i + 1 < r then { s with phase = Swapping (i + 1) }
        else end_of_pass s

    let decision s = s.decided

    let equal_state s1 s2 =
      s1.pid = s2.pid && s1.conflict = s2.conflict
      && Option.equal Int.equal s1.decided s2.decided
      && Array.for_all2 Int.equal s1.u s2.u
      &&
      (match s1.phase, s2.phase with
      | Reading i1, Reading i2 | Swapping i1, Swapping i2 -> i1 = i2
      | (Reading _ | Swapping _), _ -> false)

    let hash_state s =
      let phase_hash =
        match s.phase with
        | Reading i -> Sh.Hashx.(int (int seed 1) i)
        | Swapping i -> Sh.Hashx.(int (int seed 2) i)
      in
      Sh.Hashx.(
        opt int
          (bool (int (ints (int seed s.pid) s.u) phase_hash) s.conflict)
          s.decided)

    (* anonymity: as in Algorithm 1, the pid only rides along in the
       swapped pair and the [same_id] test *)
    let symmetry =
      Sh.Protocol.Anonymous
        { canon_key =
            (fun s ->
              let phase_hash =
                match s.phase with
                | Reading i -> Sh.Hashx.(int (int seed 1) i)
                | Swapping i -> Sh.Hashx.(int (int seed 2) i)
              in
              Sh.Hashx.(
                opt int
                  (bool (int (ints seed s.u) phase_hash) s.conflict)
                  s.decided))
        ; rename = (fun f s -> { s with pid = f s.pid })
        }
    let recovery = Sh.Protocol.Restart

    let pp_state ppf s =
      let pp_phase ppf = function
        | Reading i -> Fmt.pf ppf "R%d" i
        | Swapping i -> Fmt.pf ppf "S%d" i
      in
      Fmt.pf ppf "{u=[%a] %a conflict=%b%a}"
        Fmt.(array ~sep:(any ";") int)
        s.u pp_phase s.phase s.conflict
        Fmt.(option (fun ppf d -> Fmt.pf ppf " decided=%d" d))
        s.decided
  end)
