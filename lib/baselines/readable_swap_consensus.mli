(** An obstruction-free, [m]-valued consensus algorithm for [n] processes
    from [n-1] readable swap objects.

    Ellen, Gelashvili, Shavit and Zhu [16] gave the only previously known
    obstruction-free consensus algorithm from fewer than [n] historyless
    objects, using [n-1] readable swap objects and a racing-counters
    structure.  We implement an algorithm with the same object kind and the
    same space usage (see DESIGN.md, Substitutions): Algorithm 1's swap pass
    (with [k = 1], hence [n-1] objects) preceded by a read pass that merges
    lap counters without disturbing the objects — exercising the [Read]
    operation that distinguishes readable swap objects from the paper's
    swap-only objects. *)

val make : n:int -> m:int -> (module Shmem.Protocol.S)
(** @raise Invalid_argument unless [n >= 2] and [m >= 2] *)
