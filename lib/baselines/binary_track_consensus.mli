(** An obstruction-free binary consensus algorithm for [n] processes from
    readable {e binary} swap objects — the concrete protocol the §6
    lower-bound engines run against.

    Bowman [17] solves obstruction-free binary consensus with [2n-1] binary
    registers.  We implement a unary racing-tracks algorithm over readable
    binary swap objects (see DESIGN.md, Substitutions): two tracks of [cap]
    cells, one per value, each cell a readable swap object with domain
    {0,1}.  Cells are only ever swapped from 0 to 1, so the set cells of a
    track always form a prefix, and the track's {e position} is that prefix's
    length.  A process scans its preferred track first, then the opposite
    track (this order is what makes the gap-2 rule safe: the opponent's
    position is the {e freshest} information at decision time); it decides its
    preference once it leads by 2, switches preference when strictly behind,
    and otherwise extends its track by one cell.

    Because the tracks are unary, the algorithm is obstruction-free only
    while positions stay below [cap]; exhaustive checks prune near the cap
    and random runs pick [cap] larger than the schedule length. *)

module type S = sig
  include Shmem.Protocol.S

  val cap : int

  val positions : Shmem.Value.t array -> int * int
  (** current track positions (prefix lengths) read off a memory snapshot *)

  val near_cap : margin:int -> Shmem.Value.t array -> bool
  (** whether either track position is within [margin] of the cap (used as a
      checker pruning predicate) *)
end

val make : n:int -> cap:int -> (module S)
(** a binary consensus protocol using [2*cap] readable binary swap objects;
    track [v] occupies object indices [v*cap .. v*cap + cap - 1].
    @raise Invalid_argument unless [n >= 2] and [cap >= 4] *)

val make_eager : n:int -> cap:int -> (module S)
(** a variant whose advance uses the swap's response (response 0 means this
    process extended the prefix itself, so the own-track rescan is
    skipped).  Behaviourally equivalent safety-wise — the checker verifies
    it — but its swaps are {e informative}, which changes where the §6
    engines' critical steps land. *)

val make_tas : n:int -> cap:int -> (module S)
(** the same algorithm over readable {e test-and-set} objects: track cells
    are only ever swapped from 0 to 1, so TAS (= [Swap(1)]) suffices.  This
    is the §2 connection to Ellen, Gelashvili, Shavit and Zhu [16], who
    proved that {e no finite number} of TAS objects solves obstruction-free
    consensus for n ≥ 3 — reflected here in the fact that [cap] must grow
    with the length of the adversarial executions one wants to survive,
    whereas the readable-swap algorithms above get away with reusing n-1
    unbounded objects. *)
