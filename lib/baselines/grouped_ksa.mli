(** A wait-free k-set agreement algorithm for [n <= 2k] processes from [k]
    swap objects: processes are partitioned into [k] groups of at most two
    (group of [pid] is [pid mod k]), and each group runs the folklore
    2-process swap consensus on its own object.

    This generalises the paper's §1 observation (a predesignated pair plus
    bystanders gives (n-1)-set agreement from one swap object) to a grid of
    pairs.  Unlike Algorithm 1, this algorithm {e does} admit R-only
    executions deciding [k] distinct values, so it exercises the
    "found-k-values" branch of the Theorem 10 engine — the branch the
    tightly-spaced Algorithm 1 never triggers. *)

val make : n:int -> k:int -> m:int -> (module Shmem.Protocol.S)
(** @raise Invalid_argument unless [2 <= n <= 2k], [k >= 1], [m >= 2] *)
