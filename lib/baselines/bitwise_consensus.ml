module Sh = Shmem

let bits_needed m =
  let rec go b pow = if pow >= m then b else go (b + 1) (pow * 2) in
  max 1 (go 0 1)

module Make (B : Sh.Protocol.S) = struct
  let make ~m : (module Sh.Protocol.S) =
    if B.k <> 1 || B.num_inputs <> 2 then
      invalid_arg "Bitwise_consensus: the instance protocol must be binary \
                   consensus";
    if m < 2 then invalid_arg "Bitwise_consensus: need m >= 2";
    let n = B.n in
    let bits = bits_needed m in
    let per_instance = Array.length B.objects in
    (* object layout: board rows of [bits] bit cells plus a posted flag,
       then [bits] consensus instances *)
    let board_cells = n * (bits + 1) in
    let bit_cell ~pid ~j = (pid * (bits + 1)) + j in
    let flag_cell ~pid = (pid * (bits + 1)) + bits in
    let instance_base r = board_cells + (r * per_instance) in
    let bit_of v r = (v lsr r) land 1 in
    (module struct
      let name = Fmt.str "bitwise[%s](n=%d,m=%d)" B.name n m
      let n = n
      let k = 1
      let num_inputs = m

      let objects =
        Array.init
          (board_cells + (bits * per_instance))
          (fun i ->
            if i < board_cells then Sh.Obj_kind.Readable_swap (Sh.Obj_kind.Bounded 2)
            else B.objects.((i - board_cells) mod per_instance))

      let init_object i =
        if i < board_cells then Sh.Value.Int 0
        else B.init_object ((i - board_cells) mod per_instance)

      (* the whole board plus every bit-instance's objects *)
      let space_bound ~n:_ ~k:_ = board_cells + (bits * per_instance)

      type phase =
        | Posting of int  (* next board cell of my row to write *)
        | Running of { round : int; sub : B.state }
        | Scanning of { round : int; idx : int; seen : Sh.Value.t list }
            (* reading the whole board, newest first, to find a candidate *)

      type state = {
        pid : int;
        input : int;
        agreed : int;  (* decided bits, little-endian *)
        candidate : int;
        phase : phase;
        decided : int option;
      }

      let init ~pid ~input =
        { pid; input; agreed = 0; candidate = input; phase = Posting 0
        ; decided = None }

      (* start instance [round], proposing the candidate's bit *)
      let enter_round s round =
        { s with
          phase =
            Running
              { round
              ; sub = B.init ~pid:s.pid ~input:(bit_of s.candidate round)
              }
        }

      let poised s =
        match s.phase with
        | Posting j ->
          if j < bits then
            Sh.Op.swap (bit_cell ~pid:s.pid ~j) (Sh.Value.Int (bit_of s.input j))
          else Sh.Op.swap (flag_cell ~pid:s.pid) Sh.Value.one
        | Running { round; sub } ->
          let op = B.poised sub in
          { op with Sh.Op.obj = instance_base round + op.Sh.Op.obj }
        | Scanning { idx; _ } -> Sh.Op.read idx

      let prefix_matches ~agreed ~upto v =
        let mask = (1 lsl upto) - 1 in
        v land mask = agreed land mask

      (* the bit [b] for round [round] has been decided: extend the agreed
         prefix and keep or replace the candidate *)
      let after_round s ~round ~b =
        let agreed = s.agreed lor (b lsl round) in
        let s = { s with agreed } in
        if round + 1 >= bits then { s with decided = Some agreed }
        else if prefix_matches ~agreed ~upto:(round + 1) s.candidate then
          enter_round s (round + 1)
        else { s with phase = Scanning { round = round + 1; idx = 0; seen = [] } }

      (* a full board snapshot, oldest cell first *)
      let candidate_of_board s ~round cells =
        let arr = Array.of_list (List.rev cells) in
        let posted pid = Sh.Value.equal arr.(flag_cell ~pid) Sh.Value.one in
        let value pid =
          let v = ref 0 in
          for j = 0 to bits - 1 do
            if Sh.Value.equal arr.(bit_cell ~pid ~j) Sh.Value.one then
              v := !v lor (1 lsl j)
          done;
          !v
        in
        let rec find pid =
          if pid >= n then None
          else if
            posted pid
            && prefix_matches ~agreed:s.agreed ~upto:round (value pid)
            && value pid < m
          then Some (value pid)
          else find (pid + 1)
        in
        find 0

      let on_response s resp =
        match s.phase with
        | Posting j ->
          if j < bits then { s with phase = Posting (j + 1) }
          else enter_round s 0
        | Running { round; sub } ->
          let sub = B.on_response sub resp in
          (match B.decision sub with
          | Some b -> after_round s ~round ~b
          | None -> { s with phase = Running { round; sub } })
        | Scanning { round; idx; seen } ->
          let seen = resp :: seen in
          if idx + 1 < board_cells then
            { s with phase = Scanning { round; idx = idx + 1; seen } }
          else (
            match candidate_of_board s ~round seen with
            | Some candidate -> enter_round { s with candidate } round
            | None ->
              (* validity of the binary instances guarantees a matching
                 posted value exists once the previous round has decided;
                 rescanning is a defensive fallback *)
              { s with phase = Scanning { round; idx = 0; seen = [] } })

      let decision s = s.decided

      let equal_state s1 s2 =
        s1.pid = s2.pid && s1.input = s2.input && s1.agreed = s2.agreed
        && s1.candidate = s2.candidate
        && s1.decided = s2.decided
        &&
        (match s1.phase, s2.phase with
        | Posting j1, Posting j2 -> j1 = j2
        | Running r1, Running r2 ->
          r1.round = r2.round && B.equal_state r1.sub r2.sub
        | Scanning c1, Scanning c2 ->
          c1.round = c2.round && c1.idx = c2.idx
          && List.equal Sh.Value.equal c1.seen c2.seen
        | (Posting _ | Running _ | Scanning _), _ -> false)

      let hash_state s =
        let phase_hash =
          match s.phase with
          | Posting j -> Sh.Hashx.(int (int seed 1) j)
          | Running { round; sub } ->
            Sh.Hashx.(int (int (int seed 2) round) (B.hash_state sub))
          | Scanning { round; idx; seen } ->
            Sh.Hashx.(
              list
                (fun h v -> int h (Sh.Value.hash v))
                (int (int (int seed 3) round) idx)
                seen)
        in
        Sh.Hashx.(
          opt int
            (int
               (int (int (int (int seed s.pid) s.input) s.agreed) s.candidate)
               phase_hash)
            s.decided)

      let pp_state ppf s =
        let pp_phase ppf = function
          | Posting j -> Fmt.pf ppf "post%d" j
          | Running { round; sub } -> Fmt.pf ppf "r%d:%a" round B.pp_state sub
          | Scanning { round; idx; _ } -> Fmt.pf ppf "scan r%d@%d" round idx
        in
        Fmt.pf ppf "{in=%d agreed=%d cand=%d %a%a}" s.input s.agreed
          s.candidate pp_phase s.phase
          Fmt.(option (fun ppf d -> Fmt.pf ppf " decided=%d" d))
          s.decided

      (* NOT anonymous: each process posts to its own board row
         ([bit_cell ~pid]), so the object layout itself is pid-indexed *)
      let symmetry = Sh.Protocol.Asymmetric
      let recovery = Sh.Protocol.Restart
    end)
end

let make ~n ~m ~cap =
  let (module B) = Binary_track_consensus.make ~n ~cap in
  let module W = Make (B) in
  W.make ~m

let near_cap ~n ~m ~cap ~margin mem =
  let bits = bits_needed m in
  let board_cells = n * (bits + 1) in
  let pos r v =
    let base = board_cells + (r * 2 * cap) + (v * cap) in
    let rec go i =
      if i >= cap then cap
      else match mem.(base + i) with Sh.Value.Int 1 -> go (i + 1) | _ -> i
    in
    go 0
  in
  let near = ref false in
  for r = 0 to bits - 1 do
    for v = 0 to 1 do
      if pos r v >= cap - margin then near := true
    done
  done;
  !near
