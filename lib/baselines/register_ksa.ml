module Sh = Shmem

let make ~n ~k ~m : (module Sh.Protocol.S) =
  if not (n > k && k >= 1) then
    invalid_arg (Fmt.str "Register_ksa.make: need n > k >= 1, got n=%d k=%d" n k);
  if m < 2 then invalid_arg "Register_ksa.make: need m >= 2";
  let r = n - k + 1 in
  (module struct
    let name = Fmt.str "register-ksa(n=%d,k=%d,m=%d)" n k m
    let n = n
    let k = k
    let num_inputs = m
    let objects = Array.make r (Sh.Obj_kind.Register Sh.Obj_kind.Unbounded)

    let init_object _ =
      Sh.Value.Pair (Sh.Value.Ints (Array.make m 0), Sh.Value.Bot)

    (* the register baseline [15] needs one more object than Algorithm 1 *)
    let space_bound ~n ~k = n - k + 1

    (* A process repeatedly scans all registers, then writes its pair into
       the FIRST register whose content differs (writing one register per
       scan is the crucial discipline from [15]: a process acting on stale
       information can destroy at most one register's contents before its
       next scan informs it).  A scan that finds its own pair everywhere
       completes a lap. *)
    type phase =
      | Collect of { i : int; seen : Sh.Value.t list (* newest first *) }
      | Write_one of int

    type state = {
      pid : int;
      u : int array;  (* local lap counter; never mutated after creation *)
      phase : phase;
      decided : int option;
    }

    let init ~pid ~input =
      let u = Array.make m 0 in
      u.(input) <- 1;
      { pid; u; phase = Collect { i = 0; seen = [] }; decided = None }

    let mine s = Sh.Value.Pair (Sh.Value.Ints s.u, Sh.Value.Pid s.pid)

    let poised s =
      match s.phase with
      | Collect { i; _ } -> Sh.Op.read i
      | Write_one i -> Sh.Op.write i (mine s)

    let leader u =
      let v = ref 0 in
      for j = 1 to Array.length u - 1 do
        if u.(j) > u.(!v) then v := j
      done;
      !v

    let leads_by_two u v =
      let ok = ref true in
      for j = 0 to Array.length u - 1 do
        if j <> v && u.(v) < u.(j) + 2 then ok := false
      done;
      !ok

    let counter_of v =
      match v with
      | Sh.Value.Pair (Sh.Value.Ints u', _) -> u'
      | v ->
        invalid_arg
          (Fmt.str "register-ksa: malformed register value %a" Sh.Value.pp v)

    (* the end of a full scan: [view] is the value of register i at view.(i) *)
    let end_of_scan s view =
      (* merge every counter seen into the local one *)
      let u = Array.copy s.u in
      Array.iter
        (fun v ->
          let u' = counter_of v in
          for j = 0 to m - 1 do
            u.(j) <- max u.(j) u'.(j)
          done)
        view;
      let s = { s with u } in
      let my_pair = mine s in
      let differing = ref None in
      for i = r - 1 downto 0 do
        if not (Sh.Value.equal view.(i) my_pair) then differing := Some i
      done;
      match !differing with
      | Some i -> { s with phase = Write_one i }
      | None ->
        (* a clean scan: every register holds ⟨U, p⟩ — complete a lap *)
        let v = leader s.u in
        if leads_by_two s.u v then { s with decided = Some v }
        else begin
          let u = Array.copy s.u in
          u.(v) <- u.(v) + 1;
          { s with u; phase = Collect { i = 0; seen = [] } }
        end

    let on_response s resp =
      match s.phase with
      | Collect { i; seen } ->
        let seen = resp :: seen in
        if i + 1 < r then { s with phase = Collect { i = i + 1; seen } }
        else
          let view = Array.of_list (List.rev seen) in
          end_of_scan s view
      | Write_one _ -> { s with phase = Collect { i = 0; seen = [] } }

    let decision s = s.decided

    let equal_state s1 s2 =
      s1.pid = s2.pid
      && Option.equal Int.equal s1.decided s2.decided
      && Array.for_all2 Int.equal s1.u s2.u
      &&
      (match s1.phase, s2.phase with
      | Collect c1, Collect c2 ->
        c1.i = c2.i && List.equal Sh.Value.equal c1.seen c2.seen
      | Write_one i1, Write_one i2 -> i1 = i2
      | (Collect _ | Write_one _), _ -> false)

    let hash_state s =
      let phase_hash =
        match s.phase with
        | Collect { i; seen } ->
          Sh.Hashx.(
            list
              (fun h v -> int h (Sh.Value.hash v))
              (int (int seed 1) i)
              seen)
        | Write_one i -> Sh.Hashx.(int (int seed 2) i)
      in
      Sh.Hashx.(
        opt int (int (ints (int seed s.pid) s.u) phase_hash) s.decided)

    (* anonymity: the pid appears in the written pair and in the raw
       register values remembered by [Collect.seen]; [rename] maps both,
       and the canon key hashes [seen] pid-blind ([Value.hash_skel]) *)
    let symmetry =
      Sh.Protocol.Anonymous
        { canon_key =
            (fun s ->
              let phase_hash =
                match s.phase with
                | Collect { i; seen } ->
                  Sh.Hashx.(
                    list
                      (fun h v -> int h (Sh.Value.hash_skel v))
                      (int (int seed 1) i)
                      seen)
                | Write_one i -> Sh.Hashx.(int (int seed 2) i)
              in
              Sh.Hashx.(opt int (int (ints seed s.u) phase_hash) s.decided))
        ; rename =
            (fun f s ->
              let phase =
                match s.phase with
                | Collect { i; seen } ->
                  Collect { i; seen = List.map (Sh.Value.rename f) seen }
                | Write_one _ as p -> p
              in
              { s with pid = f s.pid; phase })
        }
    let recovery = Sh.Protocol.Restart

    let pp_state ppf s =
      let pp_phase ppf = function
        | Collect { i; _ } -> Fmt.pf ppf "C%d" i
        | Write_one i -> Fmt.pf ppf "W%d" i
      in
      Fmt.pf ppf "{u=[%a] %a%a}"
        Fmt.(array ~sep:(any ";") int)
        s.u pp_phase s.phase
        Fmt.(option (fun ppf d -> Fmt.pf ppf " decided=%d" d))
        s.decided
  end)
