(* Zero-dependency observability: counters, bucketed histograms, named
   spans, a registry that snapshots to JSON or a text table, and the
   comparison kernel behind `bench compare`.  See the interface for the
   contract; the design constraint throughout is that every hot-path
   operation is one branch when the library is disabled, and allocation-free
   when enabled (counters and histograms touch only preallocated atomics). *)

(* ------------------------------------------------------------- switch *)

let enabled_flag = Atomic.make false
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false
let enabled () = Atomic.get enabled_flag

(* --------------------------------------------------------------- json *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let buffer_add buf t =
    let str s =
      Buffer.add_char buf '"';
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string buf "\\\""
          | '\\' -> Buffer.add_string buf "\\\\"
          | '\n' -> Buffer.add_string buf "\\n"
          | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
          | c -> Buffer.add_char buf c)
        s;
      Buffer.add_char buf '"'
    in
    let num v =
      if Float.is_integer v && Float.abs v < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" v)
      else Buffer.add_string buf (Printf.sprintf "%.12g" v)
    in
    let rec go = function
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Num v -> num v
      | Str s -> str s
      | Arr xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            go x)
          xs;
        Buffer.add_char buf ']'
      | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            str k;
            Buffer.add_char buf ':';
            go v)
          fields;
        Buffer.add_char buf '}'
    in
    go t

  let to_string t =
    let buf = Buffer.create 1024 in
    buffer_add buf t;
    Buffer.contents buf

  exception Fail of string * int

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Fail (msg, !pos)) in
    let peek () = if !pos < n then s.[!pos] else '\255' in
    let skip_ws () =
      while
        !pos < n
        && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected %c" c)
    in
    let literal lit v =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" lit)
    in
    let hex4 () =
      if !pos + 4 > n then fail "truncated \\u escape";
      let v = int_of_string ("0x" ^ String.sub s !pos 4) in
      pos := !pos + 4;
      v
    in
    let string_lit () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
            incr pos;
            (if !pos >= n then fail "truncated escape"
             else
               match s.[!pos] with
               | '"' -> incr pos; Buffer.add_char buf '"'
               | '\\' -> incr pos; Buffer.add_char buf '\\'
               | '/' -> incr pos; Buffer.add_char buf '/'
               | 'n' -> incr pos; Buffer.add_char buf '\n'
               | 't' -> incr pos; Buffer.add_char buf '\t'
               | 'r' -> incr pos; Buffer.add_char buf '\r'
               | 'b' -> incr pos; Buffer.add_char buf '\b'
               | 'f' -> incr pos; Buffer.add_char buf '\012'
               | 'u' ->
                 incr pos;
                 let c = hex4 () in
                 let c =
                   (* surrogate pair *)
                   if c >= 0xD800 && c <= 0xDBFF
                      && !pos + 6 <= n
                      && s.[!pos] = '\\'
                      && s.[!pos + 1] = 'u'
                   then begin
                     pos := !pos + 2;
                     let lo = hex4 () in
                     0x10000 + (((c - 0xD800) lsl 10) lor (lo - 0xDC00))
                   end
                   else c
                 in
                 Buffer.add_utf_8_uchar buf
                   (if Uchar.is_valid c then Uchar.of_int c
                    else Uchar.rep)
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            go ()
          | c -> incr pos; Buffer.add_char buf c; go ()
      in
      go ();
      Buffer.contents buf
    in
    let number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        incr pos
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some v -> Num v
      | None -> fail "bad number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | '{' ->
        incr pos;
        skip_ws ();
        if peek () = '}' then begin incr pos; Obj [] end
        else
          let rec fields acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | ',' -> incr pos; fields ((k, v) :: acc)
            | '}' -> incr pos; Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          fields []
      | '[' ->
        incr pos;
        skip_ws ();
        if peek () = ']' then begin incr pos; Arr [] end
        else
          let rec elems acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | ',' -> incr pos; elems (v :: acc)
            | ']' -> incr pos; Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elems []
      | '"' -> Str (string_lit ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | '-' | '0' .. '9' -> number ()
      | _ -> fail "expected a JSON value"
    in
    match
      let v = value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Fail (msg, at) ->
      Error (Printf.sprintf "%s at offset %d" msg at)

  let mem key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None

  let num_opt = function Num v -> Some v | _ -> None
  let str_opt = function Str s -> Some s | _ -> None
  let arr_opt = function Arr xs -> Some xs | _ -> None
  let obj_opt = function Obj fields -> Some fields | _ -> None
end

(* ---------------------------------------------------------- primitives *)

(* power-of-two buckets: bucket 0 holds value 0 (and clamped negatives),
   bucket i >= 1 holds [2^(i-1), 2^i - 1].  63 buckets cover the whole
   non-negative int range. *)
let nbuckets = 63

let bucket_of v =
  if v <= 0 then 0
  else begin
    let v = ref v and i = ref 0 in
    while !v <> 0 do
      v := !v lsr 1;
      incr i
    done;
    !i
  end

let bucket_upper i = if i = 0 then 0 else (1 lsl i) - 1

(* monotonic max over an atomic: the witnessed value only grows, so the
   retry loop makes progress; cpu_relax between attempts keeps a contended
   loop from hammering the cache line *)
let rec bump_max a v =
  let cur = Atomic.get a in
  if v <= cur then ()
  else if Atomic.compare_and_set a cur v then ()
  else begin
    Domain.cpu_relax ();
    bump_max a v
  end

module Counter = struct
  type t = { name : string; v : int Atomic.t }

  let incr t = if enabled () then Atomic.incr t.v
  let add t n = if enabled () then ignore (Atomic.fetch_and_add t.v n)
  let value t = Atomic.get t.v
  let name t = t.name
end

module Histogram = struct
  type t = {
    name : string;
    total : int Atomic.t;
    sum : int Atomic.t;
    max_v : int Atomic.t;
    counts : int Atomic.t array;  (* length [nbuckets] *)
  }

  let observe t v =
    if enabled () then begin
      let v = if v < 0 then 0 else v in
      Atomic.incr t.counts.(bucket_of v);
      ignore (Atomic.fetch_and_add t.sum v);
      Atomic.incr t.total;
      bump_max t.max_v v
    end

  let count t = Atomic.get t.total
  let sum t = Atomic.get t.sum
  let name t = t.name
end

module Span = struct
  type t = { name : string; h : Histogram.t }

  (* CLOCK_MONOTONIC via bechamel's noalloc external: span durations must
     not jump under NTP slew (the same discipline Resil.Clock enforces for
     deadlines, and srclint --monotonic now checks here) *)
  let now_ns () = Int64.to_int (Monotonic_clock.now ())
  let ns_of_s dt = max 1 (int_of_float (dt *. 1e9))

  let time t f =
    if not (enabled ()) then f ()
    else begin
      let t0 = now_ns () in
      Fun.protect
        ~finally:(fun () ->
          Histogram.observe t.h (max 1 (now_ns () - t0)))
        f
    end

  let count t = Histogram.count t.h
  let total_ns t = Histogram.sum t.h
  let name t = t.name
end

(* ------------------------------------------------------------ registry *)

module Registry = struct
  type metric =
    | M_counter of Counter.t
    | M_hist of Histogram.t
    | M_span of Span.t

  type t = { lock : Mutex.t; tbl : (string, metric) Hashtbl.t }

  let create () = { lock = Mutex.create (); tbl = Hashtbl.create 64 }
  let default = create ()

  let locked t f =
    Mutex.lock t.lock;
    match f () with
    | v ->
      Mutex.unlock t.lock;
      v
    | exception e ->
      Mutex.unlock t.lock;
      raise e

  let kind_name = function
    | M_counter _ -> "counter"
    | M_hist _ -> "histogram"
    | M_span _ -> "span"

  (* find-or-create: a metric name denotes one underlying metric per
     registry, so repeated functor instantiations (Explore.Make, etc.)
     share and aggregate rather than shadow *)
  let get t name ~kind ~make ~cast =
    locked t (fun () ->
        match Hashtbl.find_opt t.tbl name with
        | Some m -> (
          match cast m with
          | Some v -> v
          | None ->
            invalid_arg
              (Printf.sprintf "Obs: metric %S is a %s, requested a %s" name
                 (kind_name m) kind))
        | None ->
          let v, m = make () in
          Hashtbl.replace t.tbl name m;
          v)

  let reset t =
    let zero_hist (h : Histogram.t) =
      Atomic.set h.Histogram.total 0;
      Atomic.set h.Histogram.sum 0;
      Atomic.set h.Histogram.max_v 0;
      Array.iter (fun a -> Atomic.set a 0) h.Histogram.counts
    in
    locked t (fun () ->
        Hashtbl.iter
          (fun _ m ->
            match m with
            | M_counter c -> Atomic.set c.Counter.v 0
            | M_hist h -> zero_hist h
            | M_span s -> zero_hist s.Span.h)
          t.tbl)
end

let fresh_hist name =
  { Histogram.name
  ; total = Atomic.make 0
  ; sum = Atomic.make 0
  ; max_v = Atomic.make 0
  ; counts = Array.init nbuckets (fun _ -> Atomic.make 0)
  }

let counter ?(registry = Registry.default) name =
  Registry.get registry name ~kind:"counter"
    ~make:(fun () ->
      let c = { Counter.name; v = Atomic.make 0 } in
      c, Registry.M_counter c)
    ~cast:(function Registry.M_counter c -> Some c | _ -> None)

let histogram ?(registry = Registry.default) name =
  Registry.get registry name ~kind:"histogram"
    ~make:(fun () ->
      let h = fresh_hist name in
      h, Registry.M_hist h)
    ~cast:(function Registry.M_hist h -> Some h | _ -> None)

let span ?(registry = Registry.default) name =
  Registry.get registry name ~kind:"span"
    ~make:(fun () ->
      let s = { Span.name; h = fresh_hist name } in
      s, Registry.M_span s)
    ~cast:(function Registry.M_span s -> Some s | _ -> None)

(* ------------------------------------------------------------ snapshots *)

type dist = {
  count : int;
  sum : int;
  max_v : int;
  buckets : (int * int) list;  (* (bucket index, count), sparse, sorted *)
}

type snapshot = {
  counters : (string * int) list;
  hists : (string * dist) list;
  spans : (string * dist) list;
}

let empty_snapshot = { counters = []; hists = []; spans = [] }

let dist_of_hist (h : Histogram.t) =
  let buckets = ref [] in
  for i = nbuckets - 1 downto 0 do
    let c = Atomic.get h.Histogram.counts.(i) in
    if c > 0 then buckets := (i, c) :: !buckets
  done;
  { count = Atomic.get h.Histogram.total
  ; sum = Atomic.get h.Histogram.sum
  ; max_v = Atomic.get h.Histogram.max_v
  ; buckets = !buckets
  }

let quantile d q =
  if d.count = 0 then 0
  else begin
    let q = Float.min 1. (Float.max 0. q) in
    let target = max 1 (int_of_float (Float.ceil (q *. float_of_int d.count))) in
    let rec go acc = function
      | [] -> d.max_v
      | (i, c) :: rest ->
        let acc = acc + c in
        if acc >= target then min (bucket_upper i) d.max_v else go acc rest
    in
    go 0 d.buckets
  end

let mean d = if d.count = 0 then 0. else float_of_int d.sum /. float_of_int d.count

let snapshot ?(registry = Registry.default) () =
  let counters = ref [] and hists = ref [] and spans = ref [] in
  Registry.locked registry (fun () ->
      Hashtbl.iter
        (fun name m ->
          match m with
          | Registry.M_counter c ->
            counters := (name, Counter.value c) :: !counters
          | Registry.M_hist h -> hists := (name, dist_of_hist h) :: !hists
          | Registry.M_span s ->
            spans := (name, dist_of_hist s.Span.h) :: !spans)
        registry.Registry.tbl);
  let by_name (a, _) (b, _) = String.compare a b in
  { counters = List.sort by_name !counters
  ; hists = List.sort by_name !hists
  ; spans = List.sort by_name !spans
  }

let reset ?(registry = Registry.default) () = Registry.reset registry

(* merge two sorted assoc lists, combining values on key collision *)
let rec merge_assoc combine a b =
  match a, b with
  | [], rest | rest, [] -> rest
  | (ka, va) :: ta, (kb, vb) :: tb ->
    let c = String.compare ka kb in
    if c < 0 then (ka, va) :: merge_assoc combine ta b
    else if c > 0 then (kb, vb) :: merge_assoc combine a tb
    else (ka, combine va vb) :: merge_assoc combine ta tb

let rec merge_buckets a b =
  match a, b with
  | [], rest | rest, [] -> rest
  | (ia, ca) :: ta, (ib, cb) :: tb ->
    if ia < ib then (ia, ca) :: merge_buckets ta b
    else if ia > ib then (ib, cb) :: merge_buckets a tb
    else (ia, ca + cb) :: merge_buckets ta tb

let merge_dist a b =
  { count = a.count + b.count
  ; sum = a.sum + b.sum
  ; max_v = max a.max_v b.max_v
  ; buckets = merge_buckets a.buckets b.buckets
  }

let merge a b =
  { counters = merge_assoc ( + ) a.counters b.counters
  ; hists = merge_assoc merge_dist a.hists b.hists
  ; spans = merge_assoc merge_dist a.spans b.spans
  }

let is_empty s =
  List.for_all (fun (_, v) -> v = 0) s.counters
  && List.for_all (fun (_, d) -> d.count = 0) s.hists
  && List.for_all (fun (_, d) -> d.count = 0) s.spans

(* ----------------------------------------------------- snapshot <-> json *)

let dist_to_json d =
  Json.Obj
    [ "count", Json.Num (float_of_int d.count)
    ; "sum", Json.Num (float_of_int d.sum)
    ; "max", Json.Num (float_of_int d.max_v)
    ; "buckets",
      Json.Arr
        (List.map
           (fun (i, c) ->
             Json.Arr [ Json.Num (float_of_int i); Json.Num (float_of_int c) ])
           d.buckets)
      (* derived, for human readers and dashboards; ignored on parse *)
    ; "p50", Json.Num (float_of_int (quantile d 0.5))
    ; "p95", Json.Num (float_of_int (quantile d 0.95))
    ; "p99", Json.Num (float_of_int (quantile d 0.99))
    ]

let snapshot_to_json s =
  let section to_json xs =
    Json.Obj (List.map (fun (name, v) -> name, to_json v) xs)
  in
  Json.Obj
    [ "counters", section (fun v -> Json.Num (float_of_int v)) s.counters
    ; "histograms", section dist_to_json s.hists
    ; "spans", section dist_to_json s.spans
    ]

let int_field name j =
  match Json.mem name j with
  | Some (Json.Num v) -> Ok (int_of_float v)
  | _ -> Error (Printf.sprintf "missing numeric field %S" name)

let ( let* ) = Result.bind

let dist_of_json j =
  let* count = int_field "count" j in
  let* sum = int_field "sum" j in
  let* max_v = int_field "max" j in
  let* buckets =
    match Json.mem "buckets" j with
    | Some (Json.Arr pairs) ->
      List.fold_left
        (fun acc p ->
          let* acc = acc in
          match p with
          | Json.Arr [ Json.Num i; Json.Num c ] ->
            Ok ((int_of_float i, int_of_float c) :: acc)
          | _ -> Error "malformed bucket entry")
        (Ok []) pairs
      |> Result.map List.rev
    | _ -> Error "missing bucket list"
  in
  Ok { count; sum; max_v; buckets }

let snapshot_of_json j =
  let section name of_json =
    match Json.mem name j with
    | Some (Json.Obj fields) ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          let* v = of_json v in
          Ok ((k, v) :: acc))
        (Ok []) fields
      |> Result.map List.rev
    | Some _ -> Error (Printf.sprintf "field %S is not an object" name)
    | None -> Ok []
  in
  let* counters =
    section "counters" (function
      | Json.Num v -> Ok (int_of_float v)
      | _ -> Error "counter value is not a number")
  in
  let* hists = section "histograms" dist_of_json in
  let* spans = section "spans" dist_of_json in
  let by_name (a, _) (b, _) = String.compare a b in
  Ok
    { counters = List.sort by_name counters
    ; hists = List.sort by_name hists
    ; spans = List.sort by_name spans
    }

(* -------------------------------------------------------------- render *)

let pp_ns ppf ns =
  if ns >= 1_000_000_000 then Fmt.pf ppf "%.2fs" (float_of_int ns /. 1e9)
  else if ns >= 1_000_000 then Fmt.pf ppf "%.1fms" (float_of_int ns /. 1e6)
  else if ns >= 1_000 then Fmt.pf ppf "%.1fus" (float_of_int ns /. 1e3)
  else Fmt.pf ppf "%dns" ns

let pp_table ppf s =
  let line name pp = Fmt.pf ppf "  %-36s %a@," name pp () in
  Fmt.pf ppf "@[<v>";
  if s.counters <> [] then begin
    Fmt.pf ppf "counters@,";
    List.iter
      (fun (name, v) -> line name (fun ppf () -> Fmt.int ppf v))
      s.counters
  end;
  if s.hists <> [] then begin
    Fmt.pf ppf "histograms@,";
    List.iter
      (fun (name, d) ->
        line name (fun ppf () ->
            Fmt.pf ppf "count=%d sum=%d p50=%d p95=%d p99=%d max=%d" d.count
              d.sum (quantile d 0.5) (quantile d 0.95) (quantile d 0.99)
              d.max_v))
      s.hists
  end;
  if s.spans <> [] then begin
    Fmt.pf ppf "spans@,";
    List.iter
      (fun (name, d) ->
        line name (fun ppf () ->
            Fmt.pf ppf "count=%d total=%a mean=%a p95=%a max=%a" d.count
              pp_ns d.sum pp_ns
              (int_of_float (mean d))
              pp_ns (quantile d 0.95) pp_ns d.max_v))
      s.spans
  end;
  if is_empty s then Fmt.pf ppf "(no metrics recorded)@,";
  Fmt.pf ppf "@]"

(* ------------------------------------------------------------- compare *)

module Compare = struct
  type verdict = Pass | Improved | Regressed | Missing

  type row = {
    key : string;
    baseline : float;
    current : float option;
    delta_pct : float;
    verdict : verdict;
  }

  let verdict_to_string = function
    | Pass -> "ok"
    | Improved -> "improved"
    | Regressed -> "REGRESSED"
    | Missing -> "MISSING"

  let run ?(max_regress = 30.) ?(floor = 0.05) ~baseline ~current () =
    if max_regress <= 0. then
      invalid_arg "Obs.Compare.run: max_regress must be positive";
    List.map
      (fun (key, base) ->
        match List.assoc_opt key current with
        | None ->
          { key; baseline = base; current = None; delta_pct = 0.
          ; verdict = Missing }
        | Some cur ->
          let delta_pct =
            if base <= 0. then 0. else (cur -. base) /. base *. 100.
          in
          let verdict =
            (* below the floor on both sides the numbers are noise *)
            if base < floor && cur < floor then Pass
            else if delta_pct > max_regress then Regressed
            else if delta_pct < -.max_regress then Improved
            else Pass
          in
          { key; baseline = base; current = Some cur; delta_pct; verdict })
      baseline

  let failed rows =
    List.exists
      (fun r -> match r.verdict with Regressed | Missing -> true | _ -> false)
      rows

  let pp ppf rows =
    Fmt.pf ppf "@[<v>%-24s %12s %12s %9s  %s@,"
      "key" "baseline" "current" "delta" "verdict";
    List.iter
      (fun r ->
        Fmt.pf ppf "%-24s %12.3f %12s %8.1f%%  %s@," r.key r.baseline
          (match r.current with
          | Some c -> Fmt.str "%.3f" c
          | None -> "-")
          r.delta_pct
          (verdict_to_string r.verdict))
      rows;
    Fmt.pf ppf "@]"
end
