(** Observability: counters, bucketed histograms and named spans behind a
    process-global on/off switch, a registry that snapshots to JSON or a
    text table, and the comparison kernel used by [bench compare].

    Design constraints, in order:

    - {b One branch when off.}  The library ships disabled; every hot-path
      operation ([Counter.incr], [Histogram.observe], [Span.time]) first
      reads the global flag and returns immediately when it is unset, so
      instrumented loops pay a single predictable branch.  Instrumentation
      sites that must {e compute} an argument (e.g. a frontier length)
      should guard on {!enabled} themselves.
    - {b Allocation-free when on.}  Counters and histograms touch only
      preallocated [int Atomic.t]s; nothing in [incr]/[add]/[observe]
      allocates, so instrumenting a hot loop does not perturb the GC
      behaviour it is measuring.  Spans allocate (they box a float
      timestamp) and belong around coarse phases, not per-operation loops.
    - {b Domain-safe.}  All mutation is on atomics; metrics may be fed
      concurrently from any number of domains.  Snapshots are taken under
      the registry lock but read the atomics without stopping writers, so a
      snapshot of a live run is approximate (per-metric values are exact,
      cross-metric consistency is not guaranteed).

    Metric names are global within a registry: creating a metric with an
    existing name returns the existing metric (so repeated functor
    instantiations aggregate into one series), and requesting an existing
    name at a different kind raises [Invalid_argument]. *)

(** {1 Global switch} *)

val enable : unit -> unit
val disable : unit -> unit

val enabled : unit -> bool
(** whether metric updates are currently recorded.  Flip {e before}
    starting the workload: sites capture nothing retroactively. *)

(** {1 Minimal JSON}

    A self-contained JSON tree, printer and recursive-descent parser — the
    serialization substrate for snapshots and for [bench compare]'s record
    files.  Accepts arbitrary JSON on input; emits no insignificant
    whitespace on output. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string
  val buffer_add : Buffer.t -> t -> unit

  val of_string : string -> (t, string) result
  (** parse a complete JSON document (trailing garbage is an error) *)

  val mem : string -> t -> t option
  (** field lookup on an [Obj]; [None] on other constructors *)

  val num_opt : t -> float option
  val str_opt : t -> string option
  val arr_opt : t -> t list option
  val obj_opt : t -> (string * t) list option
end

(** {1 Metrics} *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
end

module Histogram : sig
  type t
  (** power-of-two bucketed distribution of non-negative ints: bucket 0
      holds value 0, bucket [i >= 1] holds [2^(i-1) .. 2^i - 1].  Negative
      observations clamp to 0. *)

  val observe : t -> int -> unit
  val count : t -> int
  val sum : t -> int
  val name : t -> string
end

module Span : sig
  type t
  (** a named wall-clock timer; durations are recorded in nanoseconds into
      a histogram, so snapshots carry count, total and quantiles *)

  val time : t -> (unit -> 'a) -> 'a
  (** run the thunk and record its duration (also on exceptions), read
      from CLOCK_MONOTONIC so NTP slew cannot distort a span.  Durations
      are clamped to >= 1ns so a recorded span is never zero. *)

  val ns_of_s : float -> int
  (** seconds to nanoseconds, clamped to >= 1 — for sites that time
      manually and feed a histogram directly *)

  val count : t -> int
  val total_ns : t -> int
  val name : t -> string
end

(** {1 Registries} *)

module Registry : sig
  type t

  val create : unit -> t
  val default : t

  val reset : t -> unit
  (** zero every metric in place (handles stay valid) *)
end

val counter : ?registry:Registry.t -> string -> Counter.t
val histogram : ?registry:Registry.t -> string -> Histogram.t
val span : ?registry:Registry.t -> string -> Span.t
(** find-or-create by name in the registry (default {!Registry.default}).
    @raise Invalid_argument if the name exists at a different kind *)

(** {1 Snapshots} *)

type dist = {
  count : int;
  sum : int;
  max_v : int;
  buckets : (int * int) list;
      (** sparse [(bucket index, count)], sorted by index, counts > 0 *)
}

type snapshot = {
  counters : (string * int) list;
  hists : (string * dist) list;
  spans : (string * dist) list;  (** nanosecond distributions *)
}
(** all three sections sorted by name — the canonical form {!merge}
    preserves and {!snapshot_of_json} restores *)

val empty_snapshot : snapshot

val snapshot : ?registry:Registry.t -> unit -> snapshot
val reset : ?registry:Registry.t -> unit -> unit

val quantile : dist -> float -> int
(** [quantile d q] for [q] in [0..1] (clamped): an upper bound on the
    [q]-quantile at bucket resolution, never exceeding [d.max_v]; 0 when
    the distribution is empty.  Monotone in [q]. *)

val mean : dist -> float

val merge : snapshot -> snapshot -> snapshot
(** pointwise: counters add, distributions add counts/sums/buckets and take
    the max of maxima.  Associative and commutative with {!empty_snapshot}
    as unit — merging per-domain or per-shard snapshots in any order yields
    the same totals. *)

val is_empty : snapshot -> bool
(** no recorded data: every counter is 0 and every distribution has count 0
    (metrics register themselves at module load, so a snapshot's lists are
    rarely empty — emptiness is about values) *)

val snapshot_to_json : snapshot -> Json.t
(** distributions carry derived [p50]/[p95]/[p99] fields for human readers;
    {!snapshot_of_json} ignores them *)

val snapshot_of_json : Json.t -> (snapshot, string) result
(** inverse of {!snapshot_to_json} up to the derived fields:
    [snapshot_of_json (snapshot_to_json s) = Ok s] *)

val pp_table : Format.formatter -> snapshot -> unit

(** {1 Regression comparison}

    The kernel behind [bench compare]: given [(key, seconds)] measurements
    from a baseline run and a current run, flag regressions beyond a
    percentage budget.  Keys present only in the current run are ignored
    (new benchmarks are not regressions); keys missing from the current run
    fail the comparison. *)

module Compare : sig
  type verdict = Pass | Improved | Regressed | Missing

  type row = {
    key : string;
    baseline : float;
    current : float option;  (** [None] iff verdict is [Missing] *)
    delta_pct : float;
    verdict : verdict;
  }

  val run :
    ?max_regress:float ->
    ?floor:float ->
    baseline:(string * float) list ->
    current:(string * float) list ->
    unit ->
    row list
  (** one row per baseline key, in baseline order.  [max_regress] (percent,
      default 30) flags [Regressed] above and [Improved] below the
      symmetric budget; measurements under [floor] seconds (default 0.05)
      on both sides are [Pass] — at that scale the numbers are noise.
      @raise Invalid_argument if [max_regress <= 0] *)

  val failed : row list -> bool
  (** any [Regressed] or [Missing] row *)

  val verdict_to_string : verdict -> string
  val pp : Format.formatter -> row list -> unit
end
