module Make (P : Shmem.Protocol.S) = struct
  module E = Shmem.Exec.Make (P)

  type id = int

  (* Metric handles are find-or-create by name, so every Make instantiation
     feeds the same series; each site is one branch when Obs is disabled. *)
  let m_interned = Obs.counter "explore.configs.interned"
  let m_dedup = Obs.counter "explore.configs.dedup_hits"
  let m_visited = Obs.counter "explore.visited"
  let m_solo_hits = Obs.counter "explore.solo.cache_hits"
  let m_solo_misses = Obs.counter "explore.solo.cache_misses"
  let h_frontier = Obs.histogram "explore.frontier_level"
  let sp_bfs = Obs.span "explore.bfs"
  let sp_dfs = Obs.span "explore.dfs"
  let sp_par = Obs.span "explore.bfs_parallel"
  let sp_walk = Obs.span "explore.walk"

  let default_solo_cap = 64 * (Array.length P.objects + 1)

  (* Configurations enter the index paired with their hash, computed once
     per [intern] call: shard selection, bucket lookup and insertion all
     reuse it instead of re-walking the configuration. *)
  module Cfg_key = struct
    type t = { h : int; c : E.config }

    let equal a b = a.h = b.h && E.equal_config a.c b.c
    let hash k = k.h
  end

  module Cfg_tbl = Hashtbl.Make (Cfg_key)

  type entry = { config : E.config; parent : (id * Shmem.Trace.step) option }

  (* One lockable partition of the store.  Ids interleave across shards
     ([slot * nshards + shard]), so id allocation needs no global lock. *)
  type shard = {
    index : int Cfg_tbl.t;  (* configuration -> slot within this shard *)
    mutable entries : entry array;
    mutable len : int;
    lock : Mutex.t;
  }

  (* The solo oracle's key: only [pid]'s state and the memory can influence
     a solo execution of [pid], so verdicts are shared between all
     configurations agreeing on that restriction.  The restricted hash is
     computed once per query (memory part + one state) and stored in the
     key. *)
  module Solo_key = struct
    type t = { h : int; pid : int; c : E.config }

    let equal a b =
      a.h = b.h && Int.equal a.pid b.pid
      && E.equal_restricted ~pids:[ a.pid ] a.c b.c

    let hash k = k.h
  end

  module Solo_tbl = Hashtbl.Make (Solo_key)

  let mem_hash (c : E.config) =
    let h = ref 19 in
    Array.iter (fun v -> h := (!h * 31) + Shmem.Value.hash v) c.E.mem;
    !h land max_int

  type solo_shard = { verdicts : int option Solo_tbl.t; solo_lock : Mutex.t }

  type t = {
    shards : shard array;
    nshards : int;
    total : int Atomic.t;  (* interned configurations across all shards *)
    solo : solo_shard array;
    cap : int;
    ins : int array;
    root : id;
  }

  let locked lock f =
    Mutex.lock lock;
    match f () with
    | v ->
      Mutex.unlock lock;
      v
    | exception e ->
      Mutex.unlock lock;
      raise e

  let intern t ?parent c =
    let h = E.hash_config c in
    let sh = h mod t.nshards in
    let s = t.shards.(sh) in
    let key = { Cfg_key.h; c } in
    let ((_, fresh) as res) =
      locked s.lock (fun () ->
        match Cfg_tbl.find_opt s.index key with
        | Some slot -> (slot * t.nshards) + sh, false
        | None ->
          let slot = s.len in
          if slot >= Array.length s.entries then begin
            let grown =
              Array.make (max 16 (2 * Array.length s.entries)) { config = c; parent }
            in
            Array.blit s.entries 0 grown 0 s.len;
            s.entries <- grown
          end;
          s.entries.(slot) <- { config = c; parent };
          s.len <- slot + 1;
          Cfg_tbl.replace s.index key slot;
          Atomic.incr t.total;
          (slot * t.nshards) + sh, true)
    in
    if fresh then Obs.Counter.incr m_interned else Obs.Counter.incr m_dedup;
    res

  let create ?(shards = 1) ?(solo_cap = default_solo_cap) ~inputs () =
    let nshards = max 1 shards in
    let c0 = E.initial ~inputs in
    let dummy = { config = c0; parent = None } in
    let t =
      { shards =
          Array.init nshards (fun _ ->
              { index = Cfg_tbl.create 1024
              ; entries = Array.make 64 dummy
              ; len = 0
              ; lock = Mutex.create ()
              })
      ; nshards
      ; total = Atomic.make 0
      ; solo =
          Array.init nshards (fun _ ->
              { verdicts = Solo_tbl.create 1024; solo_lock = Mutex.create () })
      ; cap = solo_cap
      ; ins = Array.copy inputs
      ; root = 0 (* patched below *)
      }
    in
    let root, _ = intern t c0 in
    { t with root }

  let root t = t.root
  let inputs t = Array.copy t.ins
  let size t = Atomic.get t.total
  let solo_cap t = t.cap

  let entry t id =
    let s = t.shards.(id mod t.nshards) in
    locked s.lock (fun () -> s.entries.(id / t.nshards))

  let config t id = (entry t id).config

  let trace_to t id =
    let rec go id acc =
      match (entry t id).parent with
      | None -> acc
      | Some (parent, step) -> go parent (step :: acc)
    in
    go id []

  let solo_steps t ~pid c =
    let rk =
      ((mem_hash c * 31) + P.hash_state c.E.states.(pid)) land max_int
    in
    let s = t.solo.((rk + pid) mod t.nshards) in
    let key = { Solo_key.h = ((rk * 31) + pid) land max_int; pid; c } in
    match locked s.solo_lock (fun () -> Solo_tbl.find_opt s.verdicts key) with
    | Some verdict ->
      Obs.Counter.incr m_solo_hits;
      verdict
    | None ->
      Obs.Counter.incr m_solo_misses;
      (* computed outside the lock: a racing duplicate computation is
         harmless (the verdict is deterministic) *)
      let verdict =
        match E.run_solo ~pid ~max_steps:t.cap c with
        | None -> None
        | Some (_, trace) -> Some (Shmem.Trace.length trace)
      in
      locked s.solo_lock (fun () -> Solo_tbl.replace s.verdicts key verdict);
      verdict

  let solo_ok t ~pid c = solo_steps t ~pid c <> None

  type verdict = Continue | Prune | Stop

  type visit = {
    id : id;
    config : E.config;
    depth : int;
    path : Shmem.Trace.t Lazy.t;
  }

  type stats = { visited : int; truncated : bool; stopped : bool }

  (* Serial traversal generic over the frontier discipline.  The seed
     checker's loop is reproduced exactly: visit, then prune/budget, then
     expand enabled processes in ascending pid order. *)
  let traverse ~push ~pop t ?(max_configs = max_int) ~visit () =
    push (t.root, 0);
    let visited = ref 0 and truncated = ref false and stopped = ref false in
    let rec loop () =
      match pop () with
      | None -> ()
      | Some (id, depth) ->
        let c = config t id in
        incr visited;
        Obs.Counter.incr m_visited;
        (match visit { id; config = c; depth; path = lazy (trace_to t id) } with
        | Stop -> stopped := true
        | Prune -> truncated := true
        | Continue ->
          if size t >= max_configs then truncated := true
          else
            List.iter
              (fun pid ->
                let c', step = E.step c pid in
                let id', fresh = intern t ~parent:(id, step) c' in
                if fresh then push (id', depth + 1))
              (E.undecided c));
        if not !stopped then loop ()
    in
    loop ();
    { visited = !visited; truncated = !truncated; stopped = !stopped }

  let bfs t ?max_configs ~visit () =
    Obs.Span.time sp_bfs (fun () ->
        let q = Queue.create () in
        traverse
          ~push:(fun x -> Queue.push x q)
          ~pop:(fun () -> Queue.take_opt q)
          t ?max_configs ~visit ())

  let dfs t ?max_configs ~visit () =
    Obs.Span.time sp_dfs (fun () ->
        let st = ref [] in
        traverse
          ~push:(fun x -> st := x :: !st)
          ~pop:(fun () ->
            match !st with
            | [] -> None
            | x :: rest ->
              st := rest;
              Some x)
          t ?max_configs ~visit ())

  (* Split [items] into [n] chunks of near-equal length. *)
  let chunks n items =
    let len = List.length items in
    let per = (len + n - 1) / n in
    let rec go acc cur cnt = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | x :: rest ->
        if cnt = per then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (cnt + 1) rest
    in
    go [] [] 0 items

  let bfs_parallel t ~domains ?(max_configs = max_int) ~visit () =
    let visited = Atomic.make 0 in
    let truncated = Atomic.make false in
    let stopped = Atomic.make false in
    (* expand one slice of a frontier level, returning the fresh ids *)
    let expand slice =
      List.fold_left
        (fun acc (id, depth) ->
          if Atomic.get stopped then acc
          else begin
            let c = config t id in
            Atomic.incr visited;
            Obs.Counter.incr m_visited;
            match
              visit { id; config = c; depth; path = lazy (trace_to t id) }
            with
            | Stop ->
              Atomic.set stopped true;
              acc
            | Prune ->
              Atomic.set truncated true;
              acc
            | Continue ->
              if size t >= max_configs then begin
                Atomic.set truncated true;
                acc
              end
              else
                List.fold_left
                  (fun acc pid ->
                    let c', step = E.step c pid in
                    let id', fresh = intern t ~parent:(id, step) c' in
                    if fresh then (id', depth + 1) :: acc else acc)
                  acc (E.undecided c)
          end)
        [] slice
    in
    (* Persistent worker pool: [domains - 1] spawned domains plus the
       caller, synchronised once per BFS level through a generation counter
       (spawning a domain per level costs more than expanding a whole small
       level).  Workers block on the condition variable between levels, so
       idle domains burn no cpu. *)
    let nworkers = max 0 (domains - 1) in
    let pool_lock = Mutex.create () in
    let pool_cond = Condition.create () in
    let slices = Array.make (max 1 nworkers) [] in
    let results = Array.make (max 1 nworkers) [] in
    let generation = ref 0 in
    let pending = ref 0 in
    let quit = ref false in
    let worker i =
      let my_gen = ref 0 in
      let rec serve () =
        Mutex.lock pool_lock;
        while !generation = !my_gen && not !quit do
          Condition.wait pool_cond pool_lock
        done;
        if !quit then Mutex.unlock pool_lock
        else begin
          my_gen := !generation;
          let slice = slices.(i) in
          Mutex.unlock pool_lock;
          let r = expand slice in
          Mutex.lock pool_lock;
          results.(i) <- r;
          decr pending;
          Condition.broadcast pool_cond;
          Mutex.unlock pool_lock;
          serve ()
        end
      in
      serve ()
    in
    let workers =
      Array.init nworkers (fun i -> Domain.spawn (fun () -> worker i))
    in
    let expand_level frontier =
      (* fan the level out to the pool; the caller expands its own slice
         while the workers run *)
      match chunks (nworkers + 1) frontier with
      | [] -> []
      | mine :: others ->
        let others = Array.of_list others in
        Mutex.lock pool_lock;
        for i = 0 to nworkers - 1 do
          slices.(i) <- (if i < Array.length others then others.(i) else []);
          results.(i) <- []
        done;
        pending := nworkers;
        incr generation;
        Condition.broadcast pool_cond;
        Mutex.unlock pool_lock;
        let here = expand mine in
        Mutex.lock pool_lock;
        while !pending > 0 do
          Condition.wait pool_cond pool_lock
        done;
        Mutex.unlock pool_lock;
        List.concat (here :: Array.to_list results)
    in
    let rec level frontier =
      if frontier <> [] && not (Atomic.get stopped) then begin
        (* the length is only worth computing when someone records it *)
        if Obs.enabled () then
          Obs.Histogram.observe h_frontier (List.length frontier);
        let next =
          (* below this size, level fan-out costs more than it saves *)
          if nworkers = 0 || List.length frontier < 4 * domains then
            expand frontier
          else expand_level frontier
        in
        level next
      end
    in
    Obs.Span.time sp_par (fun () -> level [ t.root, 0 ]);
    Mutex.lock pool_lock;
    quit := true;
    Condition.broadcast pool_cond;
    Mutex.unlock pool_lock;
    Array.iter Domain.join workers;
    { visited = Atomic.get visited
    ; truncated = Atomic.get truncated
    ; stopped = Atomic.get stopped
    }

  type walk_stop = Visit_stop | Visit_prune | Stuck | Max_steps

  type walk_result = { last : id; steps : int; stop : walk_stop }

  let walk t ~sched ?(enabled = E.undecided) ~max_steps ~visit () =
    let rec go id c rev_steps i =
      Obs.Counter.incr m_visited;
      match
        visit { id; config = c; depth = i; path = lazy (List.rev rev_steps) }
      with
      | Stop -> { last = id; steps = i; stop = Visit_stop }
      | Prune -> { last = id; steps = i; stop = Visit_prune }
      | Continue ->
        if i >= max_steps then { last = id; steps = i; stop = Max_steps }
        else (
          match enabled c with
          | [] -> { last = id; steps = i; stop = Stuck }
          | en -> (
            match sched ~step_index:i c en with
            | None -> { last = id; steps = i; stop = Stuck }
            | Some pid ->
              let c', step = E.step c pid in
              let id', _ = intern t ~parent:(id, step) c' in
              go id' c' (step :: rev_steps) (i + 1)))
    in
    Obs.Span.time sp_walk (fun () -> go t.root (config t t.root) [] 0)
end
