module Make (P : Shmem.Protocol.S) = struct
  module E = Shmem.Exec.Make (P)

  type id = int

  (* Metric handles are find-or-create by name, so every Make instantiation
     feeds the same series; each site is one branch when Obs is disabled. *)
  let m_interned = Obs.counter "explore.configs.interned"
  let m_dedup = Obs.counter "explore.configs.dedup_hits"
  let m_visited = Obs.counter "explore.visited"
  let m_solo_hits = Obs.counter "explore.solo.cache_hits"
  let m_solo_misses = Obs.counter "explore.solo.cache_misses"
  let m_canon = Obs.counter "explore.canon.renamed"
  let m_por = Obs.counter "explore.por.pruned"
  let h_orbit = Obs.histogram "explore.canon.orbit_size"
  let h_frontier = Obs.histogram "explore.frontier_level"
  let sp_bfs = Obs.span "explore.bfs"
  let sp_dfs = Obs.span "explore.dfs"
  let sp_par = Obs.span "explore.bfs_parallel"
  let sp_walk = Obs.span "explore.walk"

  let default_solo_cap = 64 * (Array.length P.objects + 1)

  (* Configurations enter the index paired with their hash, computed once
     per [intern] call: shard selection, bucket lookup and insertion all
     reuse it instead of re-walking the configuration. *)
  module Cfg_key = struct
    type t = { h : int; c : E.config }

    let equal a b = a.h = b.h && E.equal_config a.c b.c
    let hash k = k.h
  end

  module Cfg_tbl = Hashtbl.Make (Cfg_key)

  (* Under symmetry reduction the stored [config] is the canonical orbit
     representative ĉ; [witness] is the permutation σ (as an array,
     [None] = identity) with ĉ = σ·c for the configuration [c] that was
     first reached along the recorded [parent] edge, whose step is spelled
     in the {e parent's} canonical frame.  [trace_to] composes the inverse
     witnesses along the back-edge chain to recover a concrete schedule. *)
  type entry = {
    config : E.config;
    parent : (id * Shmem.Trace.step) option;
    witness : int array option;
  }

  (* One lockable partition of the store.  Ids interleave across shards
     ([slot * nshards + shard]), so id allocation needs no global lock. *)
  type shard = {
    index : int Cfg_tbl.t;  (* configuration -> slot within this shard *)
    mutable entries : entry array;
    mutable len : int;
    lock : Mutex.t;
  }

  (* The solo oracle's key: only [pid]'s state and the memory can influence
     a solo execution of [pid], so verdicts are shared between all
     configurations agreeing on that restriction.  The restricted hash is
     computed once per query (memory part + one state) and stored in the
     key. *)
  module Solo_key = struct
    type t = { h : int; pid : int; c : E.config }

    let equal a b =
      a.h = b.h && Int.equal a.pid b.pid
      && E.equal_restricted ~pids:[ a.pid ] a.c b.c

    let hash k = k.h
  end

  module Solo_tbl = Hashtbl.Make (Solo_key)

  (* The canonical solo key used under symmetry reduction: the restriction
     is renamed by the injective map (own pid ↦ 0, memory first-mentions
     ↦ 1, 2, …, remaining pids ascending), so one verdict serves the whole
     orbit of the restriction, not just one configuration. *)
  module Solo_ckey = struct
    type t = { h : int; st : P.state; mem : Shmem.Value.t array }

    let equal a b =
      a.h = b.h && P.equal_state a.st b.st
      && Array.length a.mem = Array.length b.mem
      && Array.for_all2 Shmem.Value.equal a.mem b.mem

    let hash k = k.h
  end

  module Solo_ctbl = Hashtbl.Make (Solo_ckey)

  let mem_hash (c : E.config) =
    let h = ref 19 in
    Array.iter (fun v -> h := (!h * 31) + Shmem.Value.hash v) c.E.mem;
    !h land max_int

  type solo_shard = {
    verdicts : int option Solo_tbl.t;
    cverdicts : int option Solo_ctbl.t;
    solo_lock : Mutex.t;
  }

  type t = {
    shards : shard array;
    nshards : int;
    total : int Atomic.t;  (* interned configurations across all shards *)
    solo : solo_shard array;
    cap : int;
    ins : int array;
    root : id;
    symfns : ((P.state -> int) * ((int -> int) -> P.state -> P.state)) option;
    por : bool;
  }

  let locked lock f =
    Mutex.lock lock;
    match f () with
    | v ->
      Mutex.unlock lock;
      v
    | exception e ->
      Mutex.unlock lock;
      raise e

  (* ------------------------------------------------------ permutations *)

  let inv sigma =
    let r = Array.make (Array.length sigma) 0 in
    Array.iteri (fun p j -> r.(j) <- p) sigma;
    r

  let inv_opt = function None -> None | Some s -> Some (inv s)

  (* [compose a b] is a ∘ b with [None] as the identity *)
  let compose a b =
    match a, b with
    | None, x | x, None -> x
    | Some a, Some b -> Some (Array.init P.n (fun p -> a.(b.(p))))

  (* First-mention rank of each pid in a structural left-to-right scan of
     the memory.  Renaming the whole configuration by π moves π p to the
     scan position p held, so rank is orbit-invariant and sound as a
     canonical sort key. *)
  let mem_ranks (c : E.config) =
    let rank = Array.make P.n max_int in
    let next = ref 0 in
    Array.iter
      (fun v ->
        Shmem.Value.fold_pids
          (fun () p ->
            if p >= 0 && p < P.n && rank.(p) = max_int then begin
              rank.(p) <- !next;
              incr next
            end)
          () v)
      c.E.mem;
    rank

  let factorial k =
    let r = ref 1 in
    for i = 2 to k do
      r := !r * i
    done;
    !r

  (* n! / ∏ (size of each equal-(key, rank) class)! — a lower bound on the
     orbit size of the configuration (classes that are genuinely
     interchangeable shrink the orbit; hash collisions only overcount the
     classes, never the bound's soundness as a bound) *)
  let orbit_lower_bound keys rank order =
    let n = Array.length order in
    let denom = ref 1 and run = ref 1 in
    for j = 1 to n - 1 do
      let p = order.(j) and q = order.(j - 1) in
      if keys.(p) = keys.(q) && rank.(p) = rank.(q) then begin
        incr run;
        denom := !denom * !run
      end
      else run := 1
    done;
    factorial n / !denom

  (* The canonical orbit representative: sort process slots by
     (renaming-invariant state key, memory first-mention rank, pid) and
     apply the resulting permutation to the whole configuration.  Both sort
     keys are invariant across the orbit, so every member maps to the same
     representative up to [canon_key] collisions — and a collision only
     loses collapse, never soundness (the representative is still a genuine
     orbit member, reached via the returned witness). *)
  let canonicalize t (c : E.config) : E.config * int array option =
    match t.symfns with
    | None -> c, None
    | Some (canon_key, rename_state) ->
      let n = P.n in
      let rank = mem_ranks c in
      let keys = Array.map canon_key c.E.states in
      let order = Array.init n Fun.id in
      Array.sort
        (fun p q ->
          let cmp = compare keys.(p) keys.(q) in
          if cmp <> 0 then cmp
          else
            let cmp = compare rank.(p) rank.(q) in
            if cmp <> 0 then cmp else compare p q)
        order;
      if Obs.enabled () then
        Obs.Histogram.observe h_orbit (orbit_lower_bound keys rank order);
      let identity = ref true in
      Array.iteri (fun j p -> if j <> p then identity := false) order;
      if !identity then c, None
      else begin
        let sigma = Array.make n 0 in
        Array.iteri (fun j p -> sigma.(p) <- j) order;
        Obs.Counter.incr m_canon;
        E.rename ~perm:sigma ~rename_state c, Some sigma
      end

  (* Hash-cons [c].  [frame] is the permutation mapping the caller's
     concrete parent configuration to the parent's stored representative
     (identity except under [walk] with reduction on): the parent step is
     renamed into that frame and the stored witness adjusted so the
     [trace_to] invariant holds.  The returned permutation maps THIS call's
     [c] to the stored representative — also on dedup hits, which is what
     [walk] needs to keep tracking its own frame. *)
  let intern_entry t ~parent ~frame c =
    let canon, w = canonicalize t c in
    let parent =
      match parent, frame with
      | None, _ | _, None -> parent
      | Some (id, step), Some f ->
        Some (id, Shmem.Trace.rename_step (fun p -> f.(p)) step)
    in
    let witness = compose w (inv_opt frame) in
    let h = E.hash_config canon in
    let sh = h mod t.nshards in
    let s = t.shards.(sh) in
    let key = { Cfg_key.h; c = canon } in
    let id, fresh =
      locked s.lock (fun () ->
          match Cfg_tbl.find_opt s.index key with
          | Some slot -> (slot * t.nshards) + sh, false
          | None ->
            let slot = s.len in
            if slot >= Array.length s.entries then begin
              let grown =
                Array.make
                  (max 16 (2 * Array.length s.entries))
                  { config = canon; parent; witness }
              in
              Array.blit s.entries 0 grown 0 s.len;
              s.entries <- grown
            end;
            s.entries.(slot) <- { config = canon; parent; witness };
            s.len <- slot + 1;
            Cfg_tbl.replace s.index key slot;
            Atomic.incr t.total;
            (slot * t.nshards) + sh, true)
    in
    if fresh then Obs.Counter.incr m_interned else Obs.Counter.incr m_dedup;
    id, fresh, w

  let intern t ?parent c =
    let id, fresh, _ = intern_entry t ~parent ~frame:None c in
    id, fresh

  let create ?(shards = 1) ?(solo_cap = default_solo_cap) ?(sym = false)
      ?(por = false) ~inputs () =
    let nshards = max 1 shards in
    let c0 = E.initial ~inputs in
    let dummy = { config = c0; parent = None; witness = None } in
    let symfns =
      if not sym then None
      else
        match P.symmetry with
        | Shmem.Protocol.Asymmetric -> None
        | Shmem.Protocol.Anonymous { canon_key; rename } ->
          Some (canon_key, rename)
    in
    let t =
      { shards =
          Array.init nshards (fun _ ->
              { index = Cfg_tbl.create 1024
              ; entries = Array.make 64 dummy
              ; len = 0
              ; lock = Mutex.create ()
              })
      ; nshards
      ; total = Atomic.make 0
      ; solo =
          Array.init nshards (fun _ ->
              { verdicts = Solo_tbl.create 1024
              ; cverdicts = Solo_ctbl.create 1024
              ; solo_lock = Mutex.create ()
              })
      ; cap = solo_cap
      ; ins = Array.copy inputs
      ; root = 0 (* patched below *)
      ; symfns
      ; por
      }
    in
    let root, _ = intern t c0 in
    { t with root }

  let root t = t.root
  let inputs t = Array.copy t.ins
  let size t = Atomic.get t.total
  let solo_cap t = t.cap
  let sym_enabled t = Option.is_some t.symfns
  let por_enabled t = t.por

  let entry t id =
    let s = t.shards.(id mod t.nshards) in
    locked s.lock (fun () -> s.entries.(id / t.nshards))

  let config t id = (entry t id).config

  (* [trace_to_frame t id] is the concrete schedule reaching [id]'s orbit,
     paired with the final frame F (as a permutation array, [None] =
     identity) satisfying F·(stored config of [id]) = the concrete
     configuration the schedule reaches from [E.initial] — so a further
     step spelled in [id]'s canonical frame extends the schedule once
     renamed by F (that is [trace_via]). *)
  let trace_to_frame t id =
    let rec collect id acc =
      let e = entry t id in
      match e.parent with
      | None -> e.witness, acc
      | Some (parent, step) -> collect parent ((step, e.witness) :: acc)
    in
    let w0, edges = collect id [] in
    if Option.is_none w0 && List.for_all (fun (_, w) -> Option.is_none w) edges
    then List.map fst edges, None
    else begin
      (* Maintain F with F·(stored config) = the concrete configuration the
         emitted prefix reaches from [E.initial]: start at inv σ_root and
         compose F ∘ σ⁻¹ across each edge, renaming the stored step (spelled
         in the parent's canonical frame) by the parent's F. *)
      let f = ref (match w0 with None -> Array.init P.n Fun.id | Some s -> inv s)
      in
      let steps =
        List.map
          (fun (step, w) ->
            let cur = !f in
            let step' =
              Shmem.Trace.rename_step
                (fun p -> if p >= 0 && p < P.n then cur.(p) else p)
                step
            in
            (match w with
            | None -> ()
            | Some s ->
              let is = inv s in
              f := Array.init P.n (fun j -> cur.(is.(j))));
            step')
          edges
      in
      steps, Some !f
    end

  let trace_to t id = fst (trace_to_frame t id)

  let trace_via t id step =
    let steps, frame = trace_to_frame t id in
    let step' =
      match frame with
      | None -> step
      | Some cur ->
        Shmem.Trace.rename_step
          (fun p -> if p >= 0 && p < P.n then cur.(p) else p)
          step
    in
    steps @ [ step' ]

  let solo_steps t ~pid c =
    let run_verdict () =
      (* computed outside the lock: a racing duplicate computation is
         harmless (the verdict is deterministic) *)
      match E.run_solo ~pid ~max_steps:t.cap c with
      | None -> None
      | Some (_, trace) -> Some (Shmem.Trace.length trace)
    in
    match t.symfns with
    | None ->
      let rk =
        ((mem_hash c * 31) + P.hash_state c.E.states.(pid)) land max_int
      in
      let s = t.solo.((rk + pid) mod t.nshards) in
      let key = { Solo_key.h = ((rk * 31) + pid) land max_int; pid; c } in
      (match
         locked s.solo_lock (fun () -> Solo_tbl.find_opt s.verdicts key)
       with
      | Some verdict ->
        Obs.Counter.incr m_solo_hits;
        verdict
      | None ->
        Obs.Counter.incr m_solo_misses;
        let verdict = run_verdict () in
        locked s.solo_lock (fun () -> Solo_tbl.replace s.verdicts key verdict);
        verdict)
    | Some (_, rename_state) ->
      (* a solo execution reads only ([pid]'s state, memory); for an
         anonymous protocol its verdict is invariant under renaming that
         restriction, so key it canonically: own pid ↦ 0, memory
         first-mentions ↦ 1, 2, …, remaining pids ascending *)
      let g = Array.make P.n (-1) in
      g.(pid) <- 0;
      let next = ref 1 in
      Array.iter
        (fun v ->
          Shmem.Value.fold_pids
            (fun () p ->
              if p >= 0 && p < P.n && g.(p) < 0 then begin
                g.(p) <- !next;
                incr next
              end)
            () v)
        c.E.mem;
      for p = 0 to P.n - 1 do
        if g.(p) < 0 then begin
          g.(p) <- !next;
          incr next
        end
      done;
      let f p = if p >= 0 && p < P.n then g.(p) else p in
      let st = rename_state f c.E.states.(pid) in
      let mem = Array.map (Shmem.Value.rename f) c.E.mem in
      let h = ref (P.hash_state st) in
      Array.iter (fun v -> h := (!h * 31) + Shmem.Value.hash v) mem;
      let key = { Solo_ckey.h = !h land max_int; st; mem } in
      let s = t.solo.(key.Solo_ckey.h mod t.nshards) in
      (match
         locked s.solo_lock (fun () -> Solo_ctbl.find_opt s.cverdicts key)
       with
      | Some verdict ->
        Obs.Counter.incr m_solo_hits;
        verdict
      | None ->
        Obs.Counter.incr m_solo_misses;
        let verdict = run_verdict () in
        locked s.solo_lock (fun () ->
            Solo_ctbl.replace s.cverdicts key verdict);
        verdict)

  let solo_ok t ~pid c = solo_steps t ~pid c <> None

  (* ---------------------------------------------- partial-order reduction *)

  (* Two poised operations commute when they cannot influence each other's
     response: distinct objects, or both reads of the same object. *)
  let commuting_front c en =
    let ops = List.map (fun p -> E.poised c p) en in
    let commute (o : Shmem.Op.t) (o' : Shmem.Op.t) =
      o.Shmem.Op.obj <> o'.Shmem.Op.obj
      ||
      match o.Shmem.Op.action, o'.Shmem.Op.action with
      | Shmem.Op.Read, Shmem.Op.Read -> true
      | _, _ -> false
    in
    let rec pairwise = function
      | [] -> true
      | o :: rest -> List.for_all (commute o) rest && pairwise rest
    in
    pairwise ops

  let all_deciding c en =
    List.for_all
      (fun p ->
        let c', _ = E.step c p in
        Option.is_some (E.decision c' p))
      en

  (* The one reduction rule: when every enabled process's next step decides
     it and the poised operations pairwise commute, every interleaving of
     the front yields the same responses — hence the same decisions and
     final memory — and no intermediate configuration can exhibit a
     violation that the fully-stepped one (which IS visited) does not.
     Expanding only the least pid is therefore sound for agreement,
     validity and solo termination; see DESIGN.md for the argument. *)
  let expansion t c en =
    match en with
    | [] | [ _ ] -> en
    | p :: _ when t.por && commuting_front c en && all_deciding c en ->
      Obs.Counter.add m_por (List.length en - 1);
      [ p ]
    | _ -> en

  type verdict = Continue | Prune | Stop

  type visit = {
    id : id;
    config : E.config;
    depth : int;
    path : Shmem.Trace.t Lazy.t;
  }

  type stats = { visited : int; truncated : bool; stopped : bool }

  (* Every expanded edge, reported to [?on_step] observers as it is taken.
     During graph traversals [before]/[after] are spelled in [src]'s
     canonical frame (they are concrete when reduction is off); during
     [walk] they are the walk's own concrete configurations.  [dst] names
     [after]'s orbit representative; [fresh] is false on dedup hits. *)
  type step_obs = {
    src : id;
    before : E.config;
    step : Shmem.Trace.step;
    after : E.config;
    dst : id;
    fresh : bool;
  }

  (* Serial traversal generic over the frontier discipline.  The seed
     checker's loop is reproduced exactly: visit, then prune/budget, then
     expand enabled processes in ascending pid order. *)
  let traverse ~push ~pop t ?(max_configs = max_int) ?on_step ~visit () =
    push (t.root, 0);
    let visited = ref 0 and truncated = ref false and stopped = ref false in
    let rec loop () =
      match pop () with
      | None -> ()
      | Some (id, depth) ->
        let c = config t id in
        incr visited;
        Obs.Counter.incr m_visited;
        (match visit { id; config = c; depth; path = lazy (trace_to t id) } with
        | Stop -> stopped := true
        | Prune -> truncated := true
        | Continue ->
          if size t >= max_configs then truncated := true
          else
            List.iter
              (fun pid ->
                let c', step = E.step c pid in
                let id', fresh = intern t ~parent:(id, step) c' in
                (match on_step with
                | None -> ()
                | Some f ->
                  f { src = id; before = c; step; after = c'; dst = id'; fresh });
                if fresh then push (id', depth + 1))
              (expansion t c (E.undecided c)));
        if not !stopped then loop ()
    in
    loop ();
    { visited = !visited; truncated = !truncated; stopped = !stopped }

  let bfs t ?max_configs ?on_step ~visit () =
    Obs.Span.time sp_bfs (fun () ->
        let q = Queue.create () in
        traverse
          ~push:(fun x -> Queue.push x q)
          ~pop:(fun () -> Queue.take_opt q)
          t ?max_configs ?on_step ~visit ())

  let dfs t ?max_configs ?on_step ~visit () =
    Obs.Span.time sp_dfs (fun () ->
        let st = ref [] in
        traverse
          ~push:(fun x -> st := x :: !st)
          ~pop:(fun () ->
            match !st with
            | [] -> None
            | x :: rest ->
              st := rest;
              Some x)
          t ?max_configs ?on_step ~visit ())

  (* Split [items] into [n] chunks of near-equal length. *)
  let chunks n items =
    let len = List.length items in
    let per = (len + n - 1) / n in
    let rec go acc cur cnt = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | x :: rest ->
        if cnt = per then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (cnt + 1) rest
    in
    go [] [] 0 items

  let bfs_parallel t ~domains ?(max_configs = max_int) ?on_step ~visit () =
    let visited = Atomic.make 0 in
    let truncated = Atomic.make false in
    let stopped = Atomic.make false in
    (* expand one slice of a frontier level, returning the fresh ids *)
    let expand slice =
      List.fold_left
        (fun acc (id, depth) ->
          if Atomic.get stopped then acc
          else begin
            let c = config t id in
            Atomic.incr visited;
            Obs.Counter.incr m_visited;
            match
              visit { id; config = c; depth; path = lazy (trace_to t id) }
            with
            | Stop ->
              Atomic.set stopped true;
              acc
            | Prune ->
              Atomic.set truncated true;
              acc
            | Continue ->
              if size t >= max_configs then begin
                Atomic.set truncated true;
                acc
              end
              else
                List.fold_left
                  (fun acc pid ->
                    let c', step = E.step c pid in
                    let id', fresh = intern t ~parent:(id, step) c' in
                    (match on_step with
                    | None -> ()
                    | Some f ->
                      (* runs on worker domains: observers must be
                         thread-safe *)
                      f { src = id; before = c; step; after = c'; dst = id'
                        ; fresh
                        });
                    if fresh then (id', depth + 1) :: acc else acc)
                  acc
                  (expansion t c (E.undecided c))
          end)
        [] slice
    in
    (* Persistent worker pool: [domains - 1] spawned domains plus the
       caller, synchronised once per BFS level through a generation counter
       (spawning a domain per level costs more than expanding a whole small
       level).  Workers block on the condition variable between levels, so
       idle domains burn no cpu. *)
    let nworkers = max 0 (domains - 1) in
    let pool_lock = Mutex.create () in
    let pool_cond = Condition.create () in
    let slices = Array.make (max 1 nworkers) [] in
    let results = Array.make (max 1 nworkers) [] in
    let generation = ref 0 in
    let pending = ref 0 in
    let quit = ref false in
    let worker i =
      let my_gen = ref 0 in
      let rec serve () =
        Mutex.lock pool_lock;
        while !generation = !my_gen && not !quit do
          Condition.wait pool_cond pool_lock
        done;
        if !quit then Mutex.unlock pool_lock
        else begin
          my_gen := !generation;
          let slice = slices.(i) in
          Mutex.unlock pool_lock;
          let r = expand slice in
          Mutex.lock pool_lock;
          results.(i) <- r;
          decr pending;
          Condition.broadcast pool_cond;
          Mutex.unlock pool_lock;
          serve ()
        end
      in
      serve ()
    in
    let workers =
      Array.init nworkers (fun i -> Domain.spawn (fun () -> worker i))
    in
    let expand_level frontier =
      (* fan the level out to the pool; the caller expands its own slice
         while the workers run *)
      match chunks (nworkers + 1) frontier with
      | [] -> []
      | mine :: others ->
        let others = Array.of_list others in
        Mutex.lock pool_lock;
        for i = 0 to nworkers - 1 do
          slices.(i) <- (if i < Array.length others then others.(i) else []);
          results.(i) <- []
        done;
        pending := nworkers;
        incr generation;
        Condition.broadcast pool_cond;
        Mutex.unlock pool_lock;
        let here = expand mine in
        Mutex.lock pool_lock;
        while !pending > 0 do
          Condition.wait pool_cond pool_lock
        done;
        Mutex.unlock pool_lock;
        List.concat (here :: Array.to_list results)
    in
    let rec level frontier =
      if frontier <> [] && not (Atomic.get stopped) then begin
        (* the length is only worth computing when someone records it *)
        if Obs.enabled () then
          Obs.Histogram.observe h_frontier (List.length frontier);
        let next =
          (* below this size, level fan-out costs more than it saves *)
          if nworkers = 0 || List.length frontier < 4 * domains then
            expand frontier
          else expand_level frontier
        in
        level next
      end
    in
    Obs.Span.time sp_par (fun () -> level [ t.root, 0 ]);
    Mutex.lock pool_lock;
    quit := true;
    Condition.broadcast pool_cond;
    Mutex.unlock pool_lock;
    Array.iter Domain.join workers;
    { visited = Atomic.get visited
    ; truncated = Atomic.get truncated
    ; stopped = Atomic.get stopped
    }

  type walk_stop = Visit_stop | Visit_prune | Stuck | Max_steps

  type walk_result = { last : id; steps : int; stop : walk_stop }

  let walk t ~sched ?(enabled = E.undecided) ?on_step ~max_steps ~visit () =
    (* The walk runs over concrete configurations — schedulers and visitors
       see genuine states even under symmetry reduction — while each
       position is interned by canonical representative.  [sigma] maps the
       current concrete configuration to its stored representative, so the
       parent edge can be spelled in the parent's canonical frame as
       [trace_to] requires. *)
    let rec go id sigma c rev_steps i =
      Obs.Counter.incr m_visited;
      match
        visit { id; config = c; depth = i; path = lazy (List.rev rev_steps) }
      with
      | Stop -> { last = id; steps = i; stop = Visit_stop }
      | Prune -> { last = id; steps = i; stop = Visit_prune }
      | Continue ->
        if i >= max_steps then { last = id; steps = i; stop = Max_steps }
        else (
          match enabled c with
          | [] -> { last = id; steps = i; stop = Stuck }
          | en -> (
            match sched ~step_index:i c en with
            | None -> { last = id; steps = i; stop = Stuck }
            | Some pid ->
              let c', step = E.step c pid in
              let id', fresh, sigma' =
                intern_entry t ~parent:(Some (id, step)) ~frame:sigma c'
              in
              (match on_step with
              | None -> ()
              | Some f ->
                f { src = id; before = c; step; after = c'; dst = id'; fresh });
              go id' sigma' c' (step :: rev_steps) (i + 1)))
    in
    let c0 = E.initial ~inputs:t.ins in
    let sigma0 = (entry t t.root).witness in
    Obs.Span.time sp_walk (fun () -> go t.root sigma0 c0 [] 0)
end
