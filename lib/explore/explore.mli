(** A unified state-space exploration engine over protocol configurations.

    Every traverser in the repository — the model checker's exhaustive
    enumeration, the Theorem 10 driver's sampled-schedule search, the bench
    throughput probes — walks the same object: the graph of configurations
    reachable from [Exec.Make(P).initial ~inputs] under single process
    steps.  This engine owns that graph once:

    - {b Interned store}: every configuration is hash-consed into an integer
      {!Make.id} with a parent back-edge (predecessor id + step), so
      traversals carry ids instead of whole configurations and violation
      schedules are reconstructed on demand by {!Make.trace_to}.
    - {b Symmetry reduction} (opt-in, [~sym:true]): for protocols declaring
      {!Shmem.Protocol.Anonymous}, configurations are interned by their
      canonical representative under the process-permutation group — up to
      [n!] collapse — with a witness permutation recorded per entry so
      {!Make.trace_to} still reconstructs concrete, replayable schedules.
    - {b Partial-order reduction} (opt-in, [~por:true]): when every enabled
      process's next step decides it and the poised operations pairwise
      commute, only the least pid is expanded — every interleaving of such
      a front yields the same responses and decisions.
    - {b Strategies}: breadth-first ({!Make.bfs}), depth-first ({!Make.dfs})
      and sampled random walks ({!Make.walk}, the Theorem-10-style search)
      share one visitor interface: the strategy calls the visitor at every
      configuration and the visitor's {!Make.verdict} steers pruning and
      early exit.
    - {b Memoized solo oracle}: {!Make.solo_ok} caches solo-termination
      verdicts keyed by the deciding process's state plus the shared memory
      ({!Exec.Make.restricted_key}), the only inputs a solo execution can
      read.  Under symmetry reduction the key is itself canonicalized, so
      one verdict serves the whole orbit of the restriction.
    - {b Parallel mode}: {!Make.bfs_parallel} runs a level-synchronized BFS
      over [Domain.spawn] workers; the store and oracle are sharded with
      per-shard mutexes so workers intern concurrently. *)

module Make (P : Shmem.Protocol.S) : sig
  module E : module type of Shmem.Exec.Make (P)

  type id = int
  (** dense configuration identifier; the root is {!root} *)

  type t
  (** an exploration: the interned store, the solo oracle cache and the
      root configuration.  One [t] per initial configuration. *)

  val default_solo_cap : int
  (** [64 * (number of objects + 1)]: the single definition of the solo
      step budget used by every layer (checker, monitors, bench) unless a
      caller overrides it *)

  val create :
    ?shards:int ->
    ?solo_cap:int ->
    ?sym:bool ->
    ?por:bool ->
    inputs:int array ->
    unit ->
    t
  (** [create ~inputs ()] interns [E.initial ~inputs] as the root.
      [shards] (default 1) is the number of independently locked store and
      oracle partitions; use [>= domains] for parallel exploration.
      [solo_cap] (default {!default_solo_cap}) bounds the oracle's solo
      executions.

      [sym] (default [false]) turns on symmetry reduction; it is a no-op
      for protocols declaring {!Shmem.Protocol.Asymmetric}.  [por] (default
      [false]) turns on partial-order reduction.  Both preserve the
      verdicts of agreement, validity and solo-termination checking and
      the set of reachable decision values; they change which (and how
      many) configurations are interned and visited, so config counts and
      visit orders differ from an unreduced run. *)

  val root : t -> id
  val inputs : t -> int array
  (** the input vector of the root configuration (a copy) *)

  val config : t -> id -> E.config
  (** the stored configuration: under symmetry reduction this is the
      canonical orbit representative, not necessarily the configuration
      that was passed to {!intern} *)

  val size : t -> int
  (** number of interned configurations *)

  val solo_cap : t -> int

  val sym_enabled : t -> bool
  (** whether symmetry reduction is active (requested via [~sym:true] AND
      the protocol declares {!Shmem.Protocol.Anonymous}) *)

  val por_enabled : t -> bool

  val intern :
    t -> ?parent:id * Shmem.Trace.step -> E.config -> id * bool
  (** hash-cons a configuration; the boolean is [true] iff it was fresh.
      [parent] is recorded only on fresh insertion (first discovery wins,
      so BFS back-edges spell shortest-known schedules).  Under symmetry
      reduction the configuration is canonicalized first and the witness
      permutation recorded alongside the back-edge; [parent]'s step must
      then be spelled in the parent's {e stored} (canonical) frame, i.e.
      the stepped configuration must be a successor of [config t parent]. *)

  val trace_to : t -> id -> Shmem.Trace.t
  (** the schedule from {!root} to [id], reconstructed from back-edges.
      Under symmetry reduction the stored steps are renamed through the
      composed witness permutations, so the result is always a {e concrete}
      schedule: replaying it from [E.initial ~inputs] reproduces every
      recorded response and reaches a configuration in the orbit of
      [config t id]. *)

  val trace_via : t -> id -> Shmem.Trace.step -> Shmem.Trace.t
  (** [trace_to t id] extended by one more step out of [id], spelled in
      [id]'s stored (canonical) frame — exactly the shape {!step_obs} hands
      to observers.  The extra step is renamed into the concrete frame the
      reconstructed schedule ends in, so the result is again a concrete,
      replayable schedule.  This is how a property violation detected {e on
      an edge} (rather than at a visited configuration) gets its
      counterexample trace. *)

  val solo_ok : t -> pid:int -> E.config -> bool
  (** whether [pid] decides within [solo_cap t] solo steps from the given
      configuration.  Memoized on [(pid's state, memory)] — sound because a
      solo execution of [pid] reads nothing else.  Under symmetry reduction
      the memo key is canonicalized (own pid first, then memory
      first-mentions, then the rest), sharing verdicts across the orbit. *)

  val solo_steps : t -> pid:int -> E.config -> int option
  (** the number of steps [pid] takes to decide when run alone from the
      given configuration, or [None] if it does not decide within
      [solo_cap t].  Shares the memo table with {!solo_ok} — the solo-bound
      verifier of [lib/analyze] compares these measurements against a
      protocol's declared bound (Lemma 8's [8(n-k)] for Algorithm 1). *)

  (** {1 Strategies}

      All strategies call [visit] exactly once per discovered configuration
      (walks may revisit interned configurations; they still call [visit]
      at every position of the walk). *)

  type verdict =
    | Continue  (** expand this configuration *)
    | Prune  (** check it but do not expand; marks the result truncated *)
    | Stop  (** abort the whole traversal *)

  type visit = {
    id : id;
    config : E.config;
        (** for [bfs]/[dfs] this is [config t id] (the stored, possibly
            canonical configuration); for [walk] it is the walk's own
            concrete configuration, whose representative [id] names *)
    depth : int;  (** BFS level / walk step index *)
    path : Shmem.Trace.t Lazy.t;
        (** schedule from the root: the discovery back-edges for [bfs]/[dfs],
            the walk's own steps for [walk] *)
  }

  type stats = {
    visited : int;  (** number of visitor calls *)
    truncated : bool;
        (** a visitor returned [Prune] or the store hit [max_configs] *)
    stopped : bool;  (** a visitor returned [Stop] *)
  }

  type step_obs = {
    src : id;  (** the expanded configuration *)
    before : E.config;
        (** the configuration stepped from: [config t src] during graph
            traversals (spelled in [src]'s canonical frame under reduction),
            the walk's concrete configuration during {!walk} *)
    step : Shmem.Trace.step;  (** the step taken, in [before]'s frame *)
    after : E.config;  (** the configuration the step produced *)
    dst : id;  (** [after]'s (orbit representative's) id *)
    fresh : bool;  (** [false] on a dedup hit: [dst] was already interned *)
  }
  (** one expanded edge, as reported to [?on_step] observers.  Graph
      traversals report {e every} expanded edge, including edges to
      already-interned configurations — that is what makes per-step
      properties sound over the quotient graph: each transition is checked
      the first time its source is expanded, whether or not its destination
      is fresh. *)

  val bfs :
    t ->
    ?max_configs:int ->
    ?on_step:(step_obs -> unit) ->
    visit:(visit -> verdict) ->
    unit ->
    stats
  (** breadth-first over the reachable graph from the root, expanding
      enabled processes in ascending pid order.  Once [size t] reaches
      [max_configs] no further configurations are interned (already queued
      ones are still visited) and the result is marked truncated.  Under
      reduction ([~sym] / [~por]) "the reachable graph" means the quotient
      graph: one representative per orbit, one interleaving per reduced
      front. *)

  val dfs :
    t ->
    ?max_configs:int ->
    ?on_step:(step_obs -> unit) ->
    visit:(visit -> verdict) ->
    unit ->
    stats
  (** same contract with a LIFO frontier *)

  val bfs_parallel :
    t ->
    domains:int ->
    ?max_configs:int ->
    ?on_step:(step_obs -> unit) ->
    visit:(visit -> verdict) ->
    unit ->
    stats
  (** level-synchronized parallel BFS: each frontier level is split among
      [domains] workers ([Domain.spawn]); small levels are expanded in the
      calling domain to avoid spawn overhead.  [visit] runs concurrently and
      must be thread-safe; visit order within a level is unspecified, but
      every reachable configuration is visited exactly once.  [on_step] also
      runs on worker domains and must be thread-safe.  [Stop] and the
      [max_configs] budget are honoured at level granularity (best effort
      within a level).  Create [t] with [~shards] at least [domains]. *)

  (** {1 Sampled walks} *)

  type walk_stop =
    | Visit_stop  (** the visitor returned [Stop] *)
    | Visit_prune  (** the visitor returned [Prune] *)
    | Stuck  (** no enabled process, or the scheduler returned [None] *)
    | Max_steps

  type walk_result = { last : id; steps : int; stop : walk_stop }

  val walk :
    t ->
    sched:E.scheduler ->
    ?enabled:(E.config -> int list) ->
    ?on_step:(step_obs -> unit) ->
    max_steps:int ->
    visit:(visit -> verdict) ->
    unit ->
    walk_result
  (** one sampled schedule from the root: at each configuration call
      [visit] (its [path] is the walk's own step list, its [depth] the step
      index), then — unless the verdict ended the walk or [max_steps] is
      reached — offer [enabled config] (default [E.undecided]) to [sched]
      and take the chosen step.  [on_step] observes each taken step with the
      walk's concrete [before]/[after].  The walk itself runs over concrete
      configurations (schedulers and visitors never see renamed states);
      each position is interned by representative, so repeated walks share
      discovery with other strategies. *)
end
