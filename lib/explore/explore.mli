(** A unified state-space exploration engine over protocol configurations.

    Every traverser in the repository — the model checker's exhaustive
    enumeration, the Theorem 10 driver's sampled-schedule search, the bench
    throughput probes — walks the same object: the graph of configurations
    reachable from [Exec.Make(P).initial ~inputs] under single process
    steps.  This engine owns that graph once:

    - {b Interned store}: every configuration is hash-consed into an integer
      {!Make.id} with a parent back-edge (predecessor id + step), so
      traversals carry ids instead of whole configurations and violation
      schedules are reconstructed on demand by {!Make.trace_to}.
    - {b Strategies}: breadth-first ({!Make.bfs}), depth-first ({!Make.dfs})
      and sampled random walks ({!Make.walk}, the Theorem-10-style search)
      share one visitor interface: the strategy calls the visitor at every
      configuration and the visitor's {!Make.verdict} steers pruning and
      early exit.
    - {b Memoized solo oracle}: {!Make.solo_ok} caches solo-termination
      verdicts keyed by the deciding process's state plus the shared memory
      ({!Exec.Make.restricted_key}), the only inputs a solo execution can
      read.  The seed checker re-ran [run_solo] from scratch at every
      explored configuration, which dominated its running time.
    - {b Parallel mode}: {!Make.bfs_parallel} runs a level-synchronized BFS
      over [Domain.spawn] workers; the store and oracle are sharded with
      per-shard mutexes so workers intern concurrently. *)

module Make (P : Shmem.Protocol.S) : sig
  module E : module type of Shmem.Exec.Make (P)

  type id = int
  (** dense configuration identifier; the root is {!root} *)

  type t
  (** an exploration: the interned store, the solo oracle cache and the
      root configuration.  One [t] per initial configuration. *)

  val default_solo_cap : int
  (** [64 * (number of objects + 1)]: the single definition of the solo
      step budget used by every layer (checker, monitors, bench) unless a
      caller overrides it *)

  val create :
    ?shards:int -> ?solo_cap:int -> inputs:int array -> unit -> t
  (** [create ~inputs ()] interns [E.initial ~inputs] as the root.
      [shards] (default 1) is the number of independently locked store and
      oracle partitions; use [>= domains] for parallel exploration.
      [solo_cap] (default {!default_solo_cap}) bounds the oracle's solo
      executions. *)

  val root : t -> id
  val inputs : t -> int array
  (** the input vector of the root configuration (a copy) *)

  val config : t -> id -> E.config
  val size : t -> int
  (** number of interned configurations *)

  val solo_cap : t -> int

  val intern :
    t -> ?parent:id * Shmem.Trace.step -> E.config -> id * bool
  (** hash-cons a configuration; the boolean is [true] iff it was fresh.
      [parent] is recorded only on fresh insertion (first discovery wins,
      so BFS back-edges spell shortest-known schedules). *)

  val trace_to : t -> id -> Shmem.Trace.t
  (** the schedule from {!root} to [id], reconstructed from back-edges *)

  val solo_ok : t -> pid:int -> E.config -> bool
  (** whether [pid] decides within [solo_cap t] solo steps from the given
      configuration.  Memoized on [(pid's state, memory)] — sound because a
      solo execution of [pid] reads nothing else. *)

  val solo_steps : t -> pid:int -> E.config -> int option
  (** the number of steps [pid] takes to decide when run alone from the
      given configuration, or [None] if it does not decide within
      [solo_cap t].  Shares the memo table with {!solo_ok} — the solo-bound
      verifier of [lib/analyze] compares these measurements against a
      protocol's declared bound (Lemma 8's [8(n-k)] for Algorithm 1). *)

  (** {1 Strategies}

      All strategies call [visit] exactly once per discovered configuration
      (walks may revisit interned configurations; they still call [visit]
      at every position of the walk). *)

  type verdict =
    | Continue  (** expand this configuration *)
    | Prune  (** check it but do not expand; marks the result truncated *)
    | Stop  (** abort the whole traversal *)

  type visit = {
    id : id;
    config : E.config;
    depth : int;  (** BFS level / walk step index *)
    path : Shmem.Trace.t Lazy.t;
        (** schedule from the root: the discovery back-edges for [bfs]/[dfs],
            the walk's own steps for [walk] *)
  }

  type stats = {
    visited : int;  (** number of visitor calls *)
    truncated : bool;
        (** a visitor returned [Prune] or the store hit [max_configs] *)
    stopped : bool;  (** a visitor returned [Stop] *)
  }

  val bfs : t -> ?max_configs:int -> visit:(visit -> verdict) -> unit -> stats
  (** breadth-first over the reachable graph from the root, expanding
      enabled processes in ascending pid order.  Once [size t] reaches
      [max_configs] no further configurations are interned (already queued
      ones are still visited) and the result is marked truncated. *)

  val dfs : t -> ?max_configs:int -> visit:(visit -> verdict) -> unit -> stats
  (** same contract with a LIFO frontier *)

  val bfs_parallel :
    t ->
    domains:int ->
    ?max_configs:int ->
    visit:(visit -> verdict) ->
    unit ->
    stats
  (** level-synchronized parallel BFS: each frontier level is split among
      [domains] workers ([Domain.spawn]); small levels are expanded in the
      calling domain to avoid spawn overhead.  [visit] runs concurrently and
      must be thread-safe; visit order within a level is unspecified, but
      every reachable configuration is visited exactly once.  [Stop] and the
      [max_configs] budget are honoured at level granularity (best effort
      within a level).  Create [t] with [~shards] at least [domains]. *)

  (** {1 Sampled walks} *)

  type walk_stop =
    | Visit_stop  (** the visitor returned [Stop] *)
    | Visit_prune  (** the visitor returned [Prune] *)
    | Stuck  (** no enabled process, or the scheduler returned [None] *)
    | Max_steps

  type walk_result = { last : id; steps : int; stop : walk_stop }

  val walk :
    t ->
    sched:E.scheduler ->
    ?enabled:(E.config -> int list) ->
    max_steps:int ->
    visit:(visit -> verdict) ->
    unit ->
    walk_result
  (** one sampled schedule from the root: at each configuration call
      [visit] (its [path] is the walk's own step list, its [depth] the step
      index), then — unless the verdict ended the walk or [max_steps] is
      reached — offer [enabled config] (default [E.undecided]) to [sched]
      and take the chosen step.  Configurations along the walk are interned,
      so repeated walks share discovery with other strategies. *)
end
