(** The Theorem 10 induction (§5): every solo-terminating, n-process,
    (k+1)-valued k-set agreement algorithm from swap objects uses at least
    ⌈n/k⌉ - 1 objects.

    The engine follows the proof's structure against a {e concrete} protocol:

    - Base case (k = 1): start from the configuration where one process of
      the active set has input 0 and the rest have input 1, run that process
      solo (it must decide 0), and hand the execution to the Lemma 9
      adversary with [Q] = the remaining active processes — forcing
      [|active| - 1] distinct objects.

    - Inductive step (k > 1): restrict attention to the first
      ⌈|active|·(k-1)/k⌉ processes [R].  Search (over structured and random
      [R]-only schedules, each attempt an {!Explore.Make.walk} whose visitor
      stops at the first configuration with [k] decided values) for an
      execution from an initial configuration with
      inputs in [{0..k-1}] that decides [k] distinct values; if one is found,
      Lemma 9 applied to the remaining processes (input [k]) forces
      [|active| - |R|] objects.  Otherwise the algorithm solves (k-1)-set
      agreement among [R] and the engine recurses.

    The returned certificate records which branch fired at each level and the
    set of objects the adversary finally forced. *)

module Make (P : Shmem.Protocol.S) : sig
  module L9 : module type of Lemma9.Make (P)

  type level =
    | Base of L9.certificate
        (** k = 1: Lemma 9 applied after a solo run of the lowest active
            process *)
    | Found_k_values of { r : int list; alpha : Shmem.Trace.t; cert : L9.certificate }
        (** an [R]-only execution deciding [k] distinct values was found *)
    | Recursed of { r : int list }
        (** no such execution found; recursed on [R] with [k-1] *)

  type certificate = {
    levels : level list;  (** outermost first *)
    objects_forced : int list;
    bound : int;  (** ⌈n/k⌉ - 1, the number the theorem promises *)
  }

  val run :
    ?search_rounds:int ->
    ?seed:int ->
    ?solo_cap:int ->
    ?sym:bool ->
    unit ->
    certificate
  (** [run ()] executes the induction for the protocol's own [n] and [k].
      [search_rounds] bounds the random search for a k-values execution at
      each level (default 200).  [sym] (default [false]) makes each search
      walk intern by canonical orbit representative (see
      {!Explore.Make.create}): the walk itself runs over concrete
      configurations — schedules, decided values and the returned [alpha]
      are unchanged — so the certificate is identical, but the per-attempt
      store stays small on anonymous protocols.
      @raise Lemma9.Hypothesis_violated if the protocol is not swap-only *)

  val bound : n:int -> k:int -> int
  (** ⌈n/k⌉ - 1 *)

  val forced : certificate -> int
  (** number of distinct objects the adversary forced — the concrete lower
      half of the bracket the space certifier ([Analyze.Space]) asserts
      against its measured upper bound *)
end
