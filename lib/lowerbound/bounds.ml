let ceil_div a b = (a + b - 1) / b
let ksa_swap_lb ~n ~k = ceil_div n k - 1
let ksa_swap_ub ~n ~k = n - k
let ksa_registers_ub ~n ~k = n - k + 1
let ksa_registers_lb ~n ~k = ceil_div n k
let consensus_registers_exact n = n
let consensus_readable_swap_ub n = n - 1
let binary_swap_lb n = n - 2
let bounded_swap_lb ~n ~b = float_of_int (n - 2) /. float_of_int ((3 * b) + 1)
let binary_registers_ub n = (2 * n) - 1
let historyless_sqrt_lb n = sqrt (float_of_int n)
let solo_steps_ub ~n ~k = 8 * (n - k)

let summary ~n ~k ~b =
  [ "k-set agreement, swap, LB (Thm 10)",
    string_of_int (ksa_swap_lb ~n ~k)
  ; "k-set agreement, swap, UB (Alg 1)", string_of_int (ksa_swap_ub ~n ~k)
  ; "k-set agreement, registers, LB [10]",
    string_of_int (ksa_registers_lb ~n ~k)
  ; "k-set agreement, registers, UB [15]",
    string_of_int (ksa_registers_ub ~n ~k)
  ; "consensus, registers, exact [10]",
    string_of_int (consensus_registers_exact n)
  ; "consensus, readable swap, UB [16]",
    string_of_int (consensus_readable_swap_ub n)
  ; "binary consensus, readable binary swap, LB (Thm 17)",
    string_of_int (binary_swap_lb n)
  ; Fmt.str "binary consensus, domain %d readable swap, LB (Thm 21)" b,
    Fmt.str "%.2f" (bounded_swap_lb ~n ~b)
  ; "binary consensus, binary registers, UB [17]",
    string_of_int (binary_registers_ub n)
  ; "historyless, LB [8]", Fmt.str "Ω(√n) ≈ %.1f" (historyless_sqrt_lb n)
  ; "Algorithm 1 solo steps, UB (Lemma 8)",
    string_of_int (solo_steps_ub ~n ~k)
  ]
