exception Hypothesis_violated of string

let fail fmt = Fmt.kstr (fun s -> raise (Hypothesis_violated s)) fmt

module Make (P : Shmem.Protocol.S) = struct
  module E = Shmem.Exec.Make (P)

  type certificate = {
    objects_forced : int list;
    gamma : Shmem.Trace.t;
    delta : Shmem.Trace.t;
  }

  module Int_set = Set.Make (Int)

  let run ~inputs ~alpha ~q ~v ?required_distinct
      ?(solo_cap = 1024 * (Array.length P.objects + 1)) () =
    let required = Option.value ~default:P.k required_distinct in
    if not (Array.for_all (function Shmem.Obj_kind.Swap_only _ -> true | _ -> false) P.objects)
    then fail "Lemma 9 applies to algorithms from swap objects only";
    List.iter
      (fun pid ->
        if inputs.(pid) <> v then
          fail "process q%d has input %d, expected the common input %d" pid
            inputs.(pid) v)
      q;
    if List.exists (fun s -> List.mem s.Shmem.Trace.pid q) alpha then
      fail "alpha contains steps by processes in Q";
    let c0 = E.initial ~inputs in
    let c_alpha = E.replay c0 alpha in
    let decided = E.decided_values c_alpha in
    let non_v = List.filter (fun x -> x <> v) decided in
    if List.length non_v < required then
      fail "only %d distinct non-%d values decided in C·alpha, need %d"
        (List.length non_v) v required;
    if List.mem v decided then
      fail "the value v=%d is already decided in C·alpha" v;
    (* the shadow initial configuration D: every process has input v *)
    let d0 = E.initial ~inputs:(Array.make P.n v) in
    (* Inductively maintain:
       - [a]: the covered objects A_i,
       - [c_side]/[d_side]: C·alpha·gamma_i and D·delta_i,
       with value(B, c_side) = value(B, d_side) for all B in A_i. *)
    let check_covered_equal a c_side d_side =
      Int_set.iter
        (fun b ->
          if not (Shmem.Value.equal (E.value c_side b) (E.value d_side b)) then
            fail
              "invariant broken: object B%d differs between C·alpha·gamma and \
               D·delta"
              b)
        a
    in
    let rec induct a c_side d_side gamma delta = function
      | [] ->
        { objects_forced = Int_set.elements a
        ; gamma = List.rev gamma
        ; delta = List.rev delta
        }
      | qi :: rest ->
        (* run q_{i+1} solo from D·delta_i, mirroring from C·alpha·gamma_i,
           until it is poised to swap an object outside A_i *)
        let rec advance c_side d_side gamma delta steps =
          if steps > solo_cap then
            fail "q%d exceeded the solo cap (%d) without leaving A_i" qi
              solo_cap;
          (match E.decision d_side qi with
          | Some w ->
            (* tau = sigma would contradict agreement: q_i would decide v in
               C·alpha·gamma too, alongside k other values *)
            fail
              "q%d decided %d while only accessing covered objects — the \
               protocol violates %d-agreement (or validity)"
              qi w P.k
          | None -> ());
          let op_d = E.poised d_side qi in
          let op_c = E.poised c_side qi in
          if not (Shmem.Op.equal op_d op_c) then
            fail "q%d is poised differently in the two executions" qi;
          let b = op_d.Shmem.Op.obj in
          if Int_set.mem b a then begin
            (* covered object: identical value on both sides, so the step is
               indistinguishable — apply it on both *)
            let d_side', sd = E.step d_side qi in
            let c_side', sc = E.step c_side qi in
            if not (Shmem.Value.equal sd.Shmem.Trace.resp sc.Shmem.Trace.resp)
            then
              fail "responses diverged on covered object B%d" b;
            advance c_side' d_side' (sc :: gamma) (sd :: delta) (steps + 1)
          end
          else begin
            (* first access outside A_i: a Swap, which sets B to the same
               value on both sides regardless of the (possibly different)
               responses *)
            (match op_d.Shmem.Op.action with
            | Shmem.Op.Swap _ -> ()
            | _ -> fail "q%d attempted a non-swap operation" qi);
            let d_side', sd = E.step d_side qi in
            let c_side', sc = E.step c_side qi in
            if not (Shmem.Value.equal (E.value c_side' b) (E.value d_side' b))
            then
              fail "swap left different values in B%d (engine bug)" b;
            let a = Int_set.add b a in
            check_covered_equal a c_side' d_side';
            induct a c_side' d_side' (sc :: gamma) (sd :: delta) rest
          end
        in
        advance c_side d_side gamma delta 0
    in
    induct Int_set.empty c_alpha d0 [] [] q
end
