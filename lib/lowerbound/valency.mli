(** Valency of process sets (§1, §6).

    A set of processes [P] is {e bivalent} in configuration [C] of a binary
    consensus algorithm if, for each value [v ∈ {0,1}], there is a [P]-only
    execution from [C] in which some process of [P] decides [v]; otherwise it
    is {e univalent} ({e v-univalent} if only [v] can be decided).

    {!Make.create} builds a valency oracle for a fixed set of allowed
    processes.  The oracle lazily explores the allowed-only reachable
    configuration graph (identifying configurations that agree on the allowed
    processes' states and all object values — such configurations have
    identical allowed-only futures) and computes decidable-value sets by a
    backward fixpoint, so repeated queries share work.  This terminates on
    protocols whose allowed-only reachable space is finite; racing protocols
    are explored through lap-capped instances (see DESIGN.md). *)

module Make (P : Shmem.Protocol.S) : sig
  module E : module type of Shmem.Exec.Make (P)

  type t
  (** an oracle for a fixed allowed set *)

  val create : allowed:int list -> t

  val allowed : t -> int list

  val decidable_values : t -> E.config -> int list
  (** the values [v] for which some allowed-only execution from the
      configuration lets an allowed process decide [v], ascending *)

  val bivalent : t -> E.config -> bool
  (** exactly the paper's bivalence for binary consensus: both 0 and 1
      are decidable *)

  val univalent_value : t -> E.config -> int option
  (** [Some v] if the allowed set is v-univalent, [None] if bivalent.
      @raise Failure if no value is decidable (allowed set cannot decide at
      all — impossible for solo-terminating algorithms with a nonempty
      allowed set of undecided processes) *)

  val witness : t -> E.config -> value:int -> Shmem.Trace.t option
  (** an allowed-only schedule from the configuration in which some allowed
      process decides [value], if one exists *)

  val stats : t -> int * int
  (** (nodes explored, edges) — for reporting *)
end
