exception Construction_failed of string

let fail fmt = Fmt.kstr (fun s -> raise (Construction_failed s)) fmt

module Make (P : Shmem.Protocol.S) = struct
  module V = Valency.Make (P)
  module E = V.E

  type ctx = { q : int list; oracle : V.t }

  let make_ctx ~q = { q; oracle = V.create ~allowed:q }

  let block_swap _ctx c ~s = E.run_script c s

  let lemma12 ctx ~c ~s =
    let beta_of c = fst (block_swap ctx c ~s) in
    if V.bivalent ctx.oracle (beta_of c) then c, []
    else begin
      let v =
        match V.univalent_value ctx.oracle (beta_of c) with
        | Some v -> v
        | None -> assert false
      in
      let vbar = 1 - v in
      (* Q is bivalent in c, so a Q-only execution deciding v̄ exists *)
      let alpha =
        match V.witness ctx.oracle c ~value:vbar with
        | Some tr -> tr
        | None ->
          fail "Lemma 12: Q is bivalent in C but no witness for %d exists"
            vbar
      in
      (* scan prefixes of α for the step that flips Q's valency after β *)
      let rec scan cur trace_rev = function
        | [] ->
          fail
            "Lemma 12: walked all of α without Q's valency after β leaving \
             {%d} — impossible since α decides %d"
            v vbar
        | step :: rest ->
          let cur', step' = E.step cur step.Shmem.Trace.pid in
          if not (Shmem.Value.equal step'.Shmem.Trace.resp step.Shmem.Trace.resp)
          then fail "Lemma 12: witness replay diverged";
          let trace_rev = step' :: trace_rev in
          if V.univalent_value ctx.oracle (beta_of cur') = Some v then
            scan cur' trace_rev rest
          else begin
            (* the proof shows Q must be bivalent (not merely v̄-univalent)
               in Cα's·β *)
            if not (V.bivalent ctx.oracle (beta_of cur')) then
              fail
                "Lemma 12: Q became %d-univalent after β at the flip point, \
                 contradicting the proof"
                vbar;
            cur', List.rev trace_rev
          end
      in
      scan c [] alpha
    end

  type lemma13_result = {
    j : int;
    alpha_j : Shmem.Trace.t;
    c_alpha_j : E.config;
    delta : Shmem.Trace.t;
    d_op : Shmem.Op.t;
    b_star : int;
    v_before : Shmem.Value.t;
    v_after : Shmem.Value.t;
  }

  (* nodes of the Lemma 13 search: configurations reachable from C by
     (Q ∪ P_i)-only steps in which p_i's steps replay δ's responses *)
  module Node_tbl = Hashtbl.Make (struct
    type t = int * int  (* (restricted key, j) *)

    let equal = ( = )
    let hash = Hashtbl.hash
  end)

  let lemma13 ctx ~c ~c' ~pi ~others ?(include_others = false)
      ?(solo_cap = 4096) ?(max_nodes = 500_000) () =
    (* The witness class: the paper quantifies over (Q ∪ P_i)-only
       executions.  By default we search Q ∪ {p_i} only — every witness
       found is still a valid (Q ∪ P_i)-only execution, and the search stays
       tractable; [include_others] restores the full class. *)
    let movers = ctx.q @ (pi :: if include_others then others else []) in
    (* δ: p_i's solo-terminating execution from C' *)
    let delta =
      match E.run_solo ~pid:pi ~max_steps:solo_cap c' with
      | Some (_, tr) -> tr
      | None ->
        fail "Lemma 13: p%d's solo execution from C' did not decide in %d steps"
          pi solo_cap
    in
    let delta_arr = Array.of_list delta in
    let r = Array.length delta_arr in
    (* intermediate configurations C'·δ_s and the poised data at each s *)
    let c'_at = Array.make (r + 1) c' in
    for s = 0 to r - 1 do
      c'_at.(s + 1) <- fst (E.step c'_at.(s) delta_arr.(s).Shmem.Trace.pid)
    done;
    (* BFS over the constrained execution class, recording for each level j
       a bivalent witness if one exists *)
    let seen = Node_tbl.create 4096 in
    let queue = Queue.create () in
    let witness_at = Array.make (r + 1) None in
    let key c j = E.restricted_key ~pids:movers c, j in
    let push c j trace_rev =
      let k = key c j in
      if not (Node_tbl.mem seen k) then begin
        Node_tbl.replace seen k ();
        if witness_at.(j) = None && V.bivalent ctx.oracle c then
          witness_at.(j) <- Some (c, List.rev trace_rev);
        Queue.push (c, j, trace_rev) queue
      end
    in
    push c 0 [];
    let nodes = ref 0 in
    while not (Queue.is_empty queue) do
      incr nodes;
      if !nodes > max_nodes then
        fail "Lemma 13: witness search exceeded %d nodes" max_nodes;
      let cur, j, trace_rev = Queue.pop queue in
      (* steps by Q and the other P_i processes are unconstrained *)
      List.iter
        (fun pid ->
          if pid <> pi && E.decision cur pid = None then begin
            let cur', step = E.step cur pid in
            push cur' j (step :: trace_rev)
          end)
        movers;
      (* p_i may step only if its response matches δ's next response *)
      if j < r && E.decision cur pi = None then begin
        let expected = delta_arr.(j) in
        let op = E.poised cur pi in
        if not (Shmem.Op.equal op expected.Shmem.Trace.op) then
          fail
            "Lemma 13: p%d poised to %a but δ_{%d+1} applies %a — state \
             indistinguishability broken"
            pi Shmem.Op.pp op j Shmem.Op.pp expected.Shmem.Trace.op;
        let cur', step = E.step cur pi in
        if Shmem.Value.equal step.Shmem.Trace.resp expected.Shmem.Trace.resp
        then push cur' (j + 1) (step :: trace_rev)
      end
    done;
    (* the paper's j: minimum level whose successor level has no bivalent
       witness (level 0, the empty execution, is always bivalent) *)
    if witness_at.(0) = None then
      fail "Lemma 13: Q is not bivalent in C itself";
    let rec find j =
      if j >= r then
        fail
          "Lemma 13: bivalent witnesses exist at every level, including one \
           indistinguishable from all of δ — the protocol violates agreement"
      else if witness_at.(j + 1) = None then j
      else find (j + 1)
    in
    let j = find 0 in
    let c_alpha_j, alpha_j =
      match witness_at.(j) with Some w -> w | None -> assert false
    in
    let d_op = delta_arr.(j).Shmem.Trace.op in
    let b_star = d_op.Shmem.Op.obj in
    { j
    ; alpha_j
    ; c_alpha_j
    ; delta
    ; d_op
    ; b_star
    ; v_before = E.value c'_at.(j) b_star
    ; v_after = E.value c'_at.(j + 1) b_star
    }
end
