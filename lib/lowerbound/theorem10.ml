module Make (P : Shmem.Protocol.S) = struct
  module L9 = Lemma9.Make (P)
  module E = L9.E
  module X = Explore.Make (P)

  type level =
    | Base of L9.certificate
    | Found_k_values of {
        r : int list;
        alpha : Shmem.Trace.t;
        cert : L9.certificate;
      }
    | Recursed of { r : int list }

  type certificate = {
    levels : level list;
    objects_forced : int list;
    bound : int;
  }

  let bound ~n ~k = Bounds.ksa_swap_lb ~n ~k
  let forced cert = List.length cert.objects_forced

  (* Base case (k = 1): the lowest active process runs solo from the
     configuration where it alone has input 0; validity forces it to decide
     0, and Lemma 9 applied to the remaining active processes (input 1)
     forces one fresh object per process. *)
  let base_case ~active ~solo_cap =
    let p0, rest =
      match active with
      | p0 :: rest -> p0, rest
      | [] -> invalid_arg "Theorem10: empty active set"
    in
    let inputs = Array.make P.n 1 in
    inputs.(p0) <- 0;
    let c0 = E.initial ~inputs in
    let alpha =
      match E.run_solo ~pid:p0 ~max_steps:solo_cap c0 with
      | Some (c1, trace) ->
        (match E.decision c1 p0 with
        | Some 0 -> trace
        | Some w ->
          raise
            (Lemma9.Hypothesis_violated
               (Fmt.str "p%d decided %d solo, violating validity" p0 w))
        | None -> assert false)
      | None ->
        raise
          (Lemma9.Hypothesis_violated
             (Fmt.str "p%d did not decide within %d solo steps" p0 solo_cap))
    in
    L9.run ~inputs ~alpha ~q:rest ~v:1 ~required_distinct:1 ~solo_cap ()

  (* Search for an R-only execution (inputs of R in {0..kk-1}, inputs of Q
     fixed to kk) that decides kk distinct values.  Each attempt is one
     [Explore] random walk: the engine interns the configurations along the
     walk and the visitor stops it as soon as kk values are decided. *)
  let search ~rng ~rounds ~sym ~kk ~r ~q ~max_steps =
    let try_one ~inputs ~sched =
      let t = X.create ~sym ~inputs () in
      let found = ref None in
      let visit (v : X.visit) =
        if List.length (E.decided_values v.X.config) >= kk then begin
          found := Some (inputs, Lazy.force v.X.path);
          X.Stop
        end
        else X.Continue
      in
      let enabled c = List.filter (fun p -> List.mem p r) (E.undecided c) in
      ignore (X.walk t ~sched ~enabled ~max_steps ~visit ());
      !found
    in
    let structured_inputs =
      (* lanes: the j-th process of R prefers value j mod kk *)
      let inputs = Array.make P.n kk in
      List.iteri (fun j pid -> inputs.(pid) <- j mod kk) r;
      List.iter (fun pid -> inputs.(pid) <- kk) q;
      inputs
    in
    let random_inputs () =
      let inputs = Array.make P.n kk in
      List.iter (fun pid -> inputs.(pid) <- Random.State.int rng kk) r;
      inputs
    in
    let rec attempt i =
      if i >= rounds then None
      else
        let inputs =
          if i = 0 then structured_inputs else random_inputs ()
        in
        let sched = if i mod 2 = 0 then E.random rng else E.round_robin in
        match try_one ~inputs ~sched with
        | Some res -> Some res
        | None -> attempt (i + 1)
    in
    attempt 0

  let run ?(search_rounds = 200) ?(seed = 42)
      ?(solo_cap = 1024 * (Array.length P.objects + 1)) ?(sym = false) () =
    let rng = Random.State.make [| seed |] in
    let rec go active kk levels =
      if kk = 1 then
        let cert = base_case ~active ~solo_cap in
        { levels = List.rev (Base cert :: levels)
        ; objects_forced = cert.L9.objects_forced
        ; bound = bound ~n:P.n ~k:P.k
        }
      else begin
        let a = List.length active in
        let r_size = (a * (kk - 1) + kk - 1) / kk in
        let rec split i = function
          | [] -> [], []
          | x :: xs ->
            if i = 0 then [], x :: xs
            else
              let l, r = split (i - 1) xs in
              x :: l, r
        in
        let r, q = split r_size active in
        match
          search ~rng ~rounds:search_rounds ~sym ~kk ~r ~q
            ~max_steps:(200 * P.n * (Array.length P.objects + 1))
        with
        | Some (inputs, alpha) ->
          let cert =
            L9.run ~inputs ~alpha ~q ~v:kk ~required_distinct:kk ~solo_cap ()
          in
          { levels = List.rev (Found_k_values { r; alpha; cert } :: levels)
          ; objects_forced = cert.L9.objects_forced
          ; bound = bound ~n:P.n ~k:P.k
          }
        | None -> go r (kk - 1) (Recursed { r } :: levels)
      end
    in
    go (List.init P.n Fun.id) P.k []
end
