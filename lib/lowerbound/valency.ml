module Make (P : Shmem.Protocol.S) = struct
  module E = Shmem.Exec.Make (P)

  type node = {
    id : int;
    repr : E.config;
    mutable succs : (int * Shmem.Trace.step * int option) list;
        (* successor node, the step, and the value decided by that step *)
    mutable preds : int list;
    mutable values : int;  (* bitmask of decidable values *)
    mutable expanded : bool;
  }

  type t = {
    allowed : int list;
    tbl : (int, node list) Hashtbl.t;  (* restricted-key -> bucket *)
    mutable nodes : node array;  (* id -> node, grown geometrically *)
    mutable count : int;
  }

  let allowed t = t.allowed
  let create ~allowed = { allowed; tbl = Hashtbl.create 1024; nodes = [||]; count = 0 }

  let grow t =
    if t.count >= Array.length t.nodes then begin
      let fresh =
        Array.make (max 64 (2 * Array.length t.nodes))
          { id = -1
          ; repr = Obj.magic ()
          ; succs = []
          ; preds = []
          ; values = 0
          ; expanded = false
          }
      in
      Array.blit t.nodes 0 fresh 0 t.count;
      t.nodes <- fresh
    end

  let node_of t config =
    let key = E.restricted_key ~pids:t.allowed config in
    let bucket = Option.value ~default:[] (Hashtbl.find_opt t.tbl key) in
    match
      List.find_opt
        (fun n -> E.equal_restricted ~pids:t.allowed n.repr config)
        bucket
    with
    | Some n -> n
    | None ->
      grow t;
      let n =
        { id = t.count; repr = config; succs = []; preds = []; values = 0
        ; expanded = false }
      in
      t.nodes.(t.count) <- n;
      t.count <- t.count + 1;
      Hashtbl.replace t.tbl key (n :: bucket);
      n

  let expand t n =
    if not n.expanded then begin
      n.expanded <- true;
      List.iter
        (fun pid ->
          if E.decision n.repr pid = None then begin
            let c', step = E.step n.repr pid in
            let decided = E.decision c' pid in
            let succ = node_of t c' in
            n.succs <- (succ.id, step, decided) :: n.succs;
            succ.preds <- n.id :: succ.preds
          end)
        t.allowed
    end

  (* explore everything reachable from [root], then propagate decidable
     values backwards to a fixpoint *)
  let ensure t root =
    let n0 = node_of t root in
    let stack = Stack.create () in
    if not n0.expanded then Stack.push n0.id stack;
    let touched = ref [] in
    while not (Stack.is_empty stack) do
      let id = Stack.pop stack in
      let n = t.nodes.(id) in
      if not n.expanded then begin
        expand t n;
        touched := id :: !touched;
        List.iter
          (fun (succ, _, _) ->
            if not t.nodes.(succ).expanded then Stack.push succ stack)
          n.succs
      end
    done;
    (* seed base values from decision edges, then fixpoint over predecessors *)
    let work = Queue.create () in
    List.iter
      (fun id ->
        let n = t.nodes.(id) in
        let base =
          List.fold_left
            (fun acc (_, _, decided) ->
              match decided with Some v -> acc lor (1 lsl v) | None -> acc)
            0 n.succs
        in
        if base land lnot n.values <> 0 then begin
          n.values <- n.values lor base;
          Queue.push id work
        end;
        (* a freshly expanded node may point at old nodes with known values *)
        let inherited =
          List.fold_left
            (fun acc (succ, _, _) -> acc lor t.nodes.(succ).values)
            0 n.succs
        in
        if inherited land lnot n.values <> 0 then begin
          n.values <- n.values lor inherited;
          Queue.push id work
        end)
      !touched;
    while not (Queue.is_empty work) do
      let id = Queue.pop work in
      let n = t.nodes.(id) in
      List.iter
        (fun pred ->
          let p = t.nodes.(pred) in
          if n.values land lnot p.values <> 0 then begin
            p.values <- p.values lor n.values;
            Queue.push pred work
          end)
        n.preds
    done;
    n0

  let decidable_values t config =
    let n = ensure t config in
    List.filter (fun v -> n.values land (1 lsl v) <> 0)
      (List.init P.num_inputs Fun.id)

  let bivalent t config =
    match decidable_values t config with
    | [ _; _ ] -> true
    | _ -> false

  let univalent_value t config =
    match decidable_values t config with
    | [ v ] -> Some v
    | [] ->
      failwith
        "Valency.univalent_value: allowed set cannot decide at all (protocol \
         is not solo-terminating on this region)"
    | _ -> None

  let witness t config ~value =
    let n0 = ensure t config in
    if n0.values land (1 lsl value) = 0 then None
    else begin
      (* BFS for a decision edge with the target value, following only nodes
         from which [value] is decidable (guaranteed to reach one) *)
      let parent = Hashtbl.create 256 in
      let queue = Queue.create () in
      Hashtbl.replace parent n0.id None;
      Queue.push n0.id queue;
      let found = ref None in
      while !found = None && not (Queue.is_empty queue) do
        let id = Queue.pop queue in
        let n = t.nodes.(id) in
        List.iter
          (fun (succ, step, decided) ->
            if !found = None then
              if decided = Some value then
                found := Some (id, step)
              else if
                t.nodes.(succ).values land (1 lsl value) <> 0
                && not (Hashtbl.mem parent succ)
              then begin
                Hashtbl.replace parent succ (Some (id, step));
                Queue.push succ queue
              end)
          n.succs
      done;
      match !found with
      | None -> None (* unreachable: fixpoint said the value was decidable *)
      | Some (last_id, last_step) ->
        let rec unwind id acc =
          match Hashtbl.find parent id with
          | None -> acc
          | Some (pred, step) -> unwind pred (step :: acc)
        in
        Some (unwind last_id [ last_step ])
    end

  let stats t =
    let edges = ref 0 in
    for i = 0 to t.count - 1 do
      edges := !edges + List.length t.nodes.(i).succs
    done;
    t.count, !edges
end
