(** The Lemma 15 construction (§6.1): against any n-process obstruction-free
    binary consensus protocol from readable {e binary} swap objects, build —
    one process of [P = {p_0..p_{n-3}}] at a time — a configuration [C_i]
    where the special pair [Q = {q_0, q_1}] is bivalent, together with
    disjoint object sets [X_i] (objects whose value flip forces univalence)
    and [Y_i] (objects covered by the processes [S_i]), with
    [|X_i ∪ Y_i| = i].  Running all [n-2] steps realises Theorem 17: the
    protocol uses at least [n-2] objects.

    Every inductive claim of the proof (Claim 16, freshness of the new
    object, maintenance of the cover, bivalence of [C_{i+1}]) is asserted
    during the construction; the recorded per-step data reproduces the
    paper's Figure 1. *)

module Make (P : Shmem.Protocol.S) : sig
  module C : module type of Construction.Make (P)

  type case =
    | Unchanged  (** case 1: the critical step d does not change B* *)
    | Changed  (** case 2: d changes B*, so p_i joins the cover *)

  type step_record = {
    i : int;
    gamma_len : int;  (** length of the Lemma 12 execution γ *)
    j : int;  (** the Lemma 13 critical index *)
    alpha_len : int;  (** length of α_j *)
    case : case;
    b_star : int;  (** the object added to X or Y *)
  }

  type result = {
    steps : step_record list;  (** one per induction step, in order *)
    x : int list;  (** X_{n-2}, ascending *)
    y : int list;  (** Y_{n-2}, ascending *)
    coverers : (int * int) list;  (** S_{n-2} as (pid, covered object) *)
    distinct_objects : int;  (** |X ∪ Y| — Theorem 17's certified bound *)
    bound : int;  (** n - 2 *)
  }

  val run :
    ?p_inputs:(int -> int) ->
    ?max_steps:int ->
    ?include_others:bool ->
    unit ->
    result
  (** run the construction from the initial configuration where [q_0] has
      input 0, [q_1] input 1 and [p_i] input [p_inputs i] (default
      [i mod 2]).  [max_steps] caps the number of induction steps (default
      [n-2], the full construction).
      @raise Construction.Construction_failed if the protocol falsifies a
      proof step
      @raise Invalid_argument unless the protocol is binary consensus
      ([k = 1], [num_inputs = 2]) over readable binary swap objects with
      [n >= 3] *)

  val pp_result : Format.formatter -> result -> unit

  val pp_figure : Format.formatter -> result -> unit
  (** render the chain of configurations in the style of the paper's
      Figure 1 (double outline = bivalent) *)
end
