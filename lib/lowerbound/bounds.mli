(** Closed forms of every space bound discussed in the paper — the single
    source of truth the benches and documentation quote.

    "LB" = lower bound (no correct algorithm can use fewer objects);
    "UB" = upper bound (an algorithm with that many objects exists). *)

val ksa_swap_lb : n:int -> k:int -> int
(** Theorem 10: LB of ⌈n/k⌉ - 1 swap objects for solo-terminating
    (k+1)-valued k-set agreement. *)

val ksa_swap_ub : n:int -> k:int -> int
(** Algorithm 1 (§4): UB of n - k swap objects.  Matches {!ksa_swap_lb}
    exactly when [k = 1]. *)

val ksa_registers_ub : n:int -> k:int -> int
(** Bouzid–Raynal–Sutra [15]: UB of n - k + 1 registers. *)

val ksa_registers_lb : n:int -> k:int -> int
(** Ellen–Gelashvili–Zhu [10]: LB of ⌈n/k⌉ registers. *)

val consensus_registers_exact : int -> int
(** [10] + [4,5]: consensus from registers needs exactly [n]. *)

val consensus_readable_swap_ub : int -> int
(** Ellen–Gelashvili–Shavit–Zhu [16]: UB of n - 1 readable swap objects. *)

val binary_swap_lb : int -> int
(** Theorem 17: LB of n - 2 readable binary swap objects for
    obstruction-free binary consensus. *)

val bounded_swap_lb : n:int -> b:int -> float
(** Theorem 21: LB of (n-2)/(3b+1) readable swap objects of domain size
    [b]. *)

val binary_registers_ub : int -> int
(** Bowman [17]: UB of 2n - 1 binary registers for obstruction-free binary
    consensus. *)

val historyless_sqrt_lb : int -> float
(** Ellen–Herlihy–Shavit [8]: the older Ω(√n) LB for historyless objects
    (returned as √n for comparison plots). *)

val solo_steps_ub : n:int -> k:int -> int
(** Lemma 8: any solo execution of Algorithm 1 has at most 8(n-k) steps. *)

val summary : n:int -> k:int -> b:int -> (string * string) list
(** a rendered (description, value) list of all bounds at the given
    parameters, used by the bench harness and documentation *)
