(** The Lemma 19 construction (§6.2): against any n-process obstruction-free
    binary consensus protocol from readable swap objects with domain size
    [b], build configurations [C_i] with the pair [Q] bivalent, together with
    {e forbidden-value} functions [f_i, g_i] (mapping each object to sets of
    values) and a covering set [S_i], maintaining the potential

    {[ Σ_B (2·|f_i(B)| + |g_i(B)|) + |S_i| ≥ i. ]}

    Running all [n-2] steps realises Theorem 21: since
    [Σ_B (2·|f(B)| + |g(B)|) ≤ 3·b·|A|] and [|S| ≤ |A|], the protocol uses
    at least [(n-2) / (3b+1)] objects.

    The engine asserts Claim 20 and every case-analysis claim of the proof;
    the recorded per-step data reproduces the paper's Figure 2 (note the
    block swap β_i is applied {e before} the solo execution δ here, unlike
    Lemma 15). *)

module Make (P : Shmem.Protocol.S) : sig
  module C : module type of Construction.Make (P)

  type case =
    | Unchanged  (** case 1: d leaves B* unchanged; v* joins f at B* *)
    | Changed  (** case 2: d changes B*; v* joins g at B*, p_i joins the cover *)

  type step_record = {
    i : int;
    j : int;
    alpha_len : int;
    case : case;
    b_star : int;
    v_star : int;  (** the forbidden value added at this step *)
    cover_size : int;  (** |S_{i+1}| *)
    potential : int;  (** Σ(2|f|+|g|) + |S| after the step *)
  }

  type result = {
    steps : step_record list;
    f : (int * int list) list;  (** per-object forbidden read-like values *)
    g : (int * int list) list;  (** per-object forbidden swap values *)
    coverers : (int * int) list;  (** S_{n-2} as (pid, covered object) *)
    potential : int;  (** final Σ(2|f|+|g|) + |S|, ≥ n-2 *)
    implied_objects : int;  (** ⌈potential / (3b+1)⌉ — Theorem 21's bound *)
    domain_size : int;
  }

  val run :
    ?p_inputs:(int -> int) ->
    ?max_steps:int ->
    ?include_others:bool ->
    unit ->
    result
  (** @raise Construction.Construction_failed if the protocol falsifies a
      proof step
      @raise Invalid_argument unless the protocol is binary consensus over
      readable swap objects with a common bounded domain and [n >= 3] *)

  val pp_result : Format.formatter -> result -> unit

  val pp_figure : Format.formatter -> result -> unit
  (** render the chain of configurations in the style of the paper's
      Figure 2 *)
end
