(** Shared machinery for the §6 covering/valency constructions: the
    Lemma 12 and Lemma 13 search procedures, used by both the readable
    binary swap construction (Lemma 15, {!Binary_lb}) and the bounded-domain
    construction (Lemma 19, {!Bounded_lb}).

    Both procedures are effective versions of the paper's existence proofs:
    they search exactly the execution class the proof quantifies over and
    assert every intermediate claim, so a successful run is a machine check
    of the construction against the concrete protocol. *)

exception Construction_failed of string
(** an intermediate claim of the proof failed to hold — indicates a bug in
    the protocol under test (it is not a correct obstruction-free binary
    consensus algorithm) or an exhausted search bound *)

module Make (P : Shmem.Protocol.S) : sig
  module V : module type of Valency.Make (P)
  module E = V.E

  type ctx = {
    q : int list;  (** the special pair Q = {q0, q1} *)
    oracle : V.t;  (** valency oracle for Q *)
  }

  val make_ctx : q:int list -> ctx

  val block_swap : ctx -> E.config -> s:int list -> E.config * Shmem.Trace.t
  (** apply the block swap β by the covering processes [s] (their next
      steps, in list order) *)

  val lemma12 : ctx -> c:E.config -> s:int list -> E.config * Shmem.Trace.t
  (** Lemma 12: given [c] with Q bivalent and covering processes [s], find a
      Q-only execution γ from [c] such that Q is bivalent in [c]γβ.  Returns
      the configuration [c]γ and the trace of γ.
      @raise Construction_failed if the search falsifies a proof claim *)

  type lemma13_result = {
    j : int;
    alpha_j : Shmem.Trace.t;  (** (Q ∪ P_i)-only, indistinguishable from δ_j to p_i *)
    c_alpha_j : E.config;  (** C·α_j, in which Q is bivalent *)
    delta : Shmem.Trace.t;  (** p_i's full solo-terminating execution from C' *)
    d_op : Shmem.Op.t;  (** the operation d that p_i is poised to apply in C'·δ_j *)
    b_star : int;  (** the object accessed by d *)
    v_before : Shmem.Value.t;  (** value(B*, C'·δ_j) *)
    v_after : Shmem.Value.t;  (** value(B*, C'·δ_j·d) *)
  }

  val lemma13 :
    ctx ->
    c:E.config ->
    c':E.config ->
    pi:int ->
    others:int list ->
    ?include_others:bool ->
    ?solo_cap:int ->
    ?max_nodes:int ->
    unit ->
    lemma13_result
  (** Lemma 13: [c] is a configuration with Q bivalent, [c'] satisfies
      [c ~p_i~ c'] (and agrees with [c] outside the objects a pending block
      swap covers), δ is p_i's solo-terminating execution from [c'].
      [others] are the processes of P_i other than [p_i]; they are
      admitted into the witness search only when [include_others] is true
      (default false — the restricted class keeps the search tractable, and
      every witness found is still a valid (Q ∪ P_i)-only execution).  Finds the critical index [j]: the minimum [j] such
      that no (Q ∪ P_i)-only execution from [c] indistinguishable from
      δ_{j+1} to p_i leaves Q bivalent — together with a bivalent witness
      α_j for index [j].
      @raise Construction_failed if δ does not terminate within [solo_cap]
      steps or the witness search exceeds [max_nodes] *)
end
