module Make (P : Shmem.Protocol.S) = struct
  module C = Construction.Make (P)
  module E = C.E
  module V = C.V
  module Int_set = Set.Make (Int)

  type case = Unchanged | Changed

  type step_record = {
    i : int;
    gamma_len : int;
    j : int;
    alpha_len : int;
    case : case;
    b_star : int;
  }

  type result = {
    steps : step_record list;
    x : int list;
    y : int list;
    coverers : (int * int) list;
    distinct_objects : int;
    bound : int;
  }

  let fail fmt = Fmt.kstr (fun s -> raise (Construction.Construction_failed s)) fmt

  let validate () =
    if P.k <> 1 then invalid_arg "Binary_lb: protocol must solve consensus";
    if P.num_inputs <> 2 then invalid_arg "Binary_lb: protocol must be binary";
    if P.n < 3 then invalid_arg "Binary_lb: need n >= 3";
    Array.iter
      (function
        | Shmem.Obj_kind.Readable_swap (Shmem.Obj_kind.Bounded 2) -> ()
        | k ->
          invalid_arg
            (Fmt.str
               "Binary_lb: object kind %a is not a readable binary swap object"
               Shmem.Obj_kind.pp k))
      P.objects

  let run ?(p_inputs = fun i -> i mod 2) ?max_steps ?include_others () =
    validate ();
    let q0 = P.n - 2 and q1 = P.n - 1 in
    let ctx = C.make_ctx ~q:[ q0; q1 ] in
    let inputs =
      Array.init P.n (fun pid ->
          if pid = q0 then 0 else if pid = q1 then 1 else p_inputs pid)
    in
    let c0 = E.initial ~inputs in
    if not (V.bivalent ctx.C.oracle c0) then
      fail "Q is not bivalent in the initial configuration C_0";
    let total = Option.value ~default:(P.n - 2) max_steps in
    (* [s] holds S_i newest-first so that β_{i+1} = d·β_i is the script
       [List.map fst s] *)
    let rec induct i c x y s steps =
      if i >= total then
        { steps = List.rev steps
        ; x = Int_set.elements x
        ; y = Int_set.elements y
        ; coverers = List.rev s
        ; distinct_objects = Int_set.cardinal (Int_set.union x y)
        ; bound = P.n - 2
        }
      else begin
        let s_pids = List.map fst s in
        (* Lemma 12: γ with Q bivalent in C_iγβ_i *)
        let c_gamma, gamma = C.lemma12 ctx ~c ~s:s_pids in
        (* contrapositive of (c.ii): β_i leaves every object of Y_i
           unchanged when applied in C_iγ, hence (Observation 14) Q is
           bivalent in C_iγ *)
        let c_gamma_beta, _ = C.block_swap ctx c_gamma ~s:s_pids in
        Int_set.iter
          (fun b ->
            if not (Shmem.Value.equal (E.value c_gamma b) (E.value c_gamma_beta b))
            then
              fail
                "step %d: β_i changed covered object B%d in C_iγ although Q \
                 is bivalent in C_iγβ_i"
                i b)
          y;
        if not (V.bivalent ctx.C.oracle c_gamma) then
          fail "step %d: Q is not bivalent in C_iγ (Observation 14 failed)" i;
        (* Lemma 13 with C = C' = C_iγ and the solo process p_i *)
        let others = List.filter (fun p -> p > i) (List.init (P.n - 2) Fun.id) in
        let l13 = C.lemma13 ctx ~c:c_gamma ~c':c_gamma ~pi:i ~others ?include_others () in
        let b = l13.C.b_star in
        let c_next = l13.C.c_alpha_j in
        if Int_set.mem b x || Int_set.mem b y then
          fail "step %d: critical object B%d is already in X ∪ Y" i b;
        let case =
          if Shmem.Value.equal l13.C.v_before l13.C.v_after then Unchanged
          else Changed
        in
        let x', y', s' =
          match case with
          | Unchanged -> Int_set.add b x, y, s
          | Changed ->
            (* p_i must be poised to apply d = Swap(B*, v̄) in C_{i+1} *)
            let op = E.poised c_next i in
            if not (Shmem.Op.equal op l13.C.d_op) then
              fail
                "step %d: p_%d is poised to %a in C_{i+1}, expected %a"
                i i Shmem.Op.pp op Shmem.Op.pp l13.C.d_op;
            x, Int_set.add b y, (i, b) :: s
        in
        (* the cover must survive into C_{i+1} *)
        if
          not
            (E.covers c_next ~pids:(List.map fst s')
               ~objs:(List.map snd s'))
        then fail "step %d: S_{i+1} does not cover Y_{i+1} in C_{i+1}" i;
        let record =
          { i
          ; gamma_len = Shmem.Trace.length gamma
          ; j = l13.C.j
          ; alpha_len = Shmem.Trace.length l13.C.alpha_j
          ; case
          ; b_star = b
          }
        in
        induct (i + 1) c_next x' y' s' (record :: steps)
      end
    in
    induct 0 c0 Int_set.empty Int_set.empty [] []

  let pp_case ppf = function
    | Unchanged -> Fmt.string ppf "1 (X)"
    | Changed -> Fmt.string ppf "2 (Y)"

  let pp_result ppf r =
    Fmt.pf ppf
      "@[<v>Lemma 15 construction: %d induction steps, %d distinct objects \
       (bound n-2 = %d)@,X = {%a}  Y = {%a}  S = {%a}@,%a@]"
      (List.length r.steps) r.distinct_objects r.bound
      Fmt.(list ~sep:(any ",") int)
      r.x
      Fmt.(list ~sep:(any ",") int)
      r.y
      Fmt.(
        list ~sep:(any ",") (fun ppf (p, b) -> Fmt.pf ppf "p%d↦B%d" p b))
      r.coverers
      Fmt.(
        list ~sep:cut (fun ppf s ->
            Fmt.pf ppf "  i=%d: |γ|=%d j=%d |α_j|=%d case %a B*=B%d" s.i
              s.gamma_len s.j s.alpha_len pp_case s.case s.b_star))
      r.steps

  (* Figure 1 renders the C_i → C_iγ → C_iγα_j = C_{i+1} chain; double
     brackets mark configurations in which Q is bivalent. *)
  let pp_figure ppf r =
    Fmt.pf ppf "@[<v>";
    List.iter
      (fun s ->
        Fmt.pf ppf
          "⟦C_%d⟧ --γ (%d steps)--> ⟦C_%dγ⟧ --α_%d (%d steps, p_%d follows \
           δ_%d)--> ⟦C_%d⟧   [case %a: B%d -> %s]@,"
          s.i s.gamma_len s.i s.j s.alpha_len s.i s.j (s.i + 1) pp_case s.case
          s.b_star
          (match s.case with Unchanged -> "X" | Changed -> "Y"))
      r.steps;
    Fmt.pf ppf "⟦·⟧ = configuration in which Q is bivalent@]"
end
