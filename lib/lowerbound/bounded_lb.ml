module Make (P : Shmem.Protocol.S) = struct
  module C = Construction.Make (P)
  module E = C.E
  module V = C.V
  module Int_set = Set.Make (Int)
  module Int_map = Map.Make (Int)

  type case = Unchanged | Changed

  type step_record = {
    i : int;
    j : int;
    alpha_len : int;
    case : case;
    b_star : int;
    v_star : int;
    cover_size : int;
    potential : int;
  }

  type result = {
    steps : step_record list;
    f : (int * int list) list;
    g : (int * int list) list;
    coverers : (int * int) list;
    potential : int;
    implied_objects : int;
    domain_size : int;
  }

  let fail fmt = Fmt.kstr (fun s -> raise (Construction.Construction_failed s)) fmt

  let domain_size () =
    let b =
      match P.objects.(0) with
      | Shmem.Obj_kind.Readable_swap (Shmem.Obj_kind.Bounded b) -> b
      | k ->
        invalid_arg
          (Fmt.str "Bounded_lb: object kind %a is not a bounded readable swap"
             Shmem.Obj_kind.pp k)
    in
    Array.iter
      (fun kind ->
        match kind with
        | Shmem.Obj_kind.Readable_swap (Shmem.Obj_kind.Bounded b') when b' = b
          ->
          ()
        | k ->
          invalid_arg
            (Fmt.str "Bounded_lb: mixed object kinds (%a)" Shmem.Obj_kind.pp k))
      P.objects;
    b

  let validate () =
    if P.k <> 1 then invalid_arg "Bounded_lb: protocol must solve consensus";
    if P.num_inputs <> 2 then invalid_arg "Bounded_lb: protocol must be binary";
    if P.n < 3 then invalid_arg "Bounded_lb: need n >= 3";
    domain_size ()

  let forbidden map b = Option.value ~default:Int_set.empty (Int_map.find_opt b map)

  let potential_of f g s =
    Int_map.fold (fun _ vs acc -> acc + (2 * Int_set.cardinal vs)) f 0
    + Int_map.fold (fun _ vs acc -> acc + Int_set.cardinal vs) g 0
    + List.length s

  let run ?(p_inputs = fun i -> i mod 2) ?max_steps ?include_others () =
    let b_dom = validate () in
    let q0 = P.n - 2 and q1 = P.n - 1 in
    let ctx = C.make_ctx ~q:[ q0; q1 ] in
    let inputs =
      Array.init P.n (fun pid ->
          if pid = q0 then 0 else if pid = q1 then 1 else p_inputs pid)
    in
    let c0 = E.initial ~inputs in
    if not (V.bivalent ctx.C.oracle c0) then
      fail "Q is not bivalent in the initial configuration C_0";
    let total = Option.value ~default:(P.n - 2) max_steps in
    let rec induct i c f g s steps =
      if i >= total then
        let elems m = Int_map.bindings m |> List.map (fun (b, vs) -> b, Int_set.elements vs) in
        let potential = potential_of f g s in
        { steps = List.rev steps
        ; f = elems f
        ; g = elems g
        ; coverers = List.rev s
        ; potential
        ; implied_objects = (potential + (3 * b_dom)) / ((3 * b_dom) + 1)
        ; domain_size = b_dom
        }
      else begin
        let s_pids = List.map fst s in
        (* β_i is applied before the solo execution δ (Figure 2) *)
        let c_beta, _ = C.block_swap ctx c ~s:s_pids in
        let others = List.filter (fun p -> p > i) (List.init (P.n - 2) Fun.id) in
        let l13 = C.lemma13 ctx ~c ~c':c_beta ~pi:i ~others ?include_others () in
        (* Claim 20: p_i applies no Swap(B, x) with x forbidden during
           δ_{j+1} *)
        List.iteri
          (fun t step ->
            if t <= l13.C.j then
              match step.Shmem.Trace.op.Shmem.Op.action with
              | Shmem.Op.Swap (Shmem.Value.Int x) ->
                let b = step.Shmem.Trace.op.Shmem.Op.obj in
                if Int_set.mem x (forbidden f b) || Int_set.mem x (forbidden g b)
                then
                  fail
                    "step %d: Claim 20 violated — p_%d swaps forbidden value \
                     %d into B%d at δ step %d"
                    i i x b t
              | _ -> ())
          l13.C.delta;
        let b = l13.C.b_star in
        let v_star = Shmem.Value.as_int l13.C.v_before in
        let c_next = l13.C.c_alpha_j in
        let covering_b =
          List.find_opt (fun (_, b') -> b' = b) s
        in
        let case =
          if Shmem.Value.equal l13.C.v_before l13.C.v_after then Unchanged
          else Changed
        in
        let f', g', s' =
          match case with
          | Unchanged ->
            if Int_set.mem v_star (forbidden f b) then
              fail "step %d: v* = %d already in f(B%d) — proof claim failed" i
                v_star b;
            let f' = Int_map.add b (Int_set.add v_star (forbidden f b)) f in
            (* drop a coverer of B* that is poised to swap v* back in *)
            let s' =
              match covering_b with
              | Some (p, _)
                when Shmem.Op.equal (E.poised c p)
                       (Shmem.Op.swap b (Shmem.Value.Int v_star)) ->
                List.filter (fun (p', _) -> p' <> p) s
              | _ -> s
            in
            f', g, s'
          | Changed ->
            let g' = Int_map.add b (Int_set.add v_star (forbidden g b)) g in
            (* p_i must be poised to apply d = Swap(B*, v') in C_{i+1} *)
            let op = E.poised c_next i in
            if not (Shmem.Op.equal op l13.C.d_op) then
              fail "step %d: p_%d is poised to %a in C_{i+1}, expected %a" i i
                Shmem.Op.pp op Shmem.Op.pp l13.C.d_op;
            let s' =
              match covering_b with
              | Some (p, _) ->
                (* covered case: the proof shows v* was not yet forbidden,
                   so |g| genuinely grows *)
                if
                  Int_set.mem v_star (forbidden f b)
                  || Int_set.mem v_star (forbidden g b)
                then
                  fail
                    "step %d: v* = %d already forbidden for covered B%d — \
                     proof claim failed"
                    i v_star b;
                (i, b) :: List.filter (fun (p', _) -> p' <> p) s
              | None -> (i, b) :: s
            in
            f, g', s'
        in
        (* property (b): S_{i+1} covers |S_{i+1}| distinct objects *)
        if
          not
            (E.covers c_next ~pids:(List.map fst s') ~objs:(List.map snd s'))
        then fail "step %d: S_{i+1} does not cover its objects in C_{i+1}" i;
        (* property (c): coverers never poise forbidden values *)
        List.iter
          (fun (p, b') ->
            match (E.poised c_next p).Shmem.Op.action with
            | Shmem.Op.Swap (Shmem.Value.Int x) ->
              if
                Int_set.mem x (forbidden f' b')
                || Int_set.mem x (forbidden g' b')
              then
                fail "step %d: coverer p%d poised to swap forbidden %d into B%d"
                  i p x b'
            | _ -> fail "step %d: coverer p%d not poised to swap" i p)
          s';
        (* property (d): the potential grows at least one per step *)
        let potential = potential_of f' g' s' in
        if potential < i + 1 then
          fail "step %d: potential %d < %d — property (d) failed" i potential
            (i + 1);
        let record =
          { i
          ; j = l13.C.j
          ; alpha_len = Shmem.Trace.length l13.C.alpha_j
          ; case
          ; b_star = b
          ; v_star
          ; cover_size = List.length s'
          ; potential
          }
        in
        induct (i + 1) c_next f' g' s' (record :: steps)
      end
    in
    induct 0 c0 Int_map.empty Int_map.empty [] []

  let pp_case ppf = function
    | Unchanged -> Fmt.string ppf "1 (f)"
    | Changed -> Fmt.string ppf "2 (g)"

  let pp_fg ppf l =
    Fmt.(
      list ~sep:(any " ")
        (fun ppf (b, vs) ->
          Fmt.pf ppf "B%d:{%a}" b (list ~sep:(any ",") int) vs))
      ppf l

  let pp_result ppf r =
    Fmt.pf ppf
      "@[<v>Lemma 19 construction: %d steps, potential %d (bound n-2 = %d), \
       domain size b=%d, implied objects ≥ %d@,f: %a@,g: %a@,S: {%a}@,%a@]"
      (List.length r.steps) r.potential (P.n - 2) r.domain_size
      r.implied_objects pp_fg r.f pp_fg r.g
      Fmt.(
        list ~sep:(any ",") (fun ppf (p, b) -> Fmt.pf ppf "p%d↦B%d" p b))
      r.coverers
      Fmt.(
        list ~sep:cut (fun ppf s ->
            Fmt.pf ppf
              "  i=%d: j=%d |α_j|=%d case %a B*=B%d v*=%d |S|=%d potential=%d"
              s.i s.j s.alpha_len pp_case s.case s.b_star s.v_star
              s.cover_size s.potential))
      r.steps

  let pp_figure ppf r =
    Fmt.pf ppf "@[<v>";
    List.iter
      (fun s ->
        Fmt.pf ppf
          "⟦C_%d⟧ --β_%d--> C_%dβ --δ (p_%d solo)--> ... ; ⟦C_%d⟧ --α_%d (%d \
           steps)--> ⟦C_%d⟧   [case %a: B%d, v*=%d]@,"
          s.i s.i s.i s.i s.i s.j s.alpha_len (s.i + 1) pp_case s.case
          s.b_star s.v_star)
      r.steps;
    Fmt.pf ppf
      "⟦·⟧ = configuration in which Q is bivalent; β_%d is inserted before \
       δ (Figure 2)@]"
      (List.length r.steps)
end
