(** The constructive adversary of Lemma 9 (§5).

    Given an initial configuration [C] of a solo-terminating k-set agreement
    algorithm from swap objects in which a set [Q] of processes share input
    [v], and an execution [α] from [C] without steps by [Q] in which [k]
    distinct values different from [v] are decided, the engine replays the
    paper's induction: it repeatedly runs the next process of [Q] solo from a
    shadow configuration [D] (all inputs [v]) until that process is about to
    swap an object outside the already-covered set, mirrors the run from
    [Cα], and applies the swap on both sides — overwriting the evidence of
    [α] stored in that object.  Each process of [Q] is forced to access a
    {e new} object, so [α] must have accessed at least [|Q|] objects.

    Every indistinguishability claim of the proof is asserted during the
    replay; a failure indicates the protocol under test violates agreement or
    validity. *)

exception Hypothesis_violated of string
(** raised when the inputs do not satisfy the lemma's hypotheses (e.g. [α]
    contains steps by [Q], or fewer than [k] distinct non-[v] values are
    decided in [Cα]), or when the protocol under test is not swap-only *)

module Make (P : Shmem.Protocol.S) : sig
  module E : module type of Shmem.Exec.Make (P)

  type certificate = {
    objects_forced : int list;
        (** the set [A_{|Q|}]: distinct objects that [α] must access,
            ascending *)
    gamma : Shmem.Trace.t;  (** the [Q]-only execution appended after [Cα] *)
    delta : Shmem.Trace.t;  (** the [Q]-only execution from the shadow [D] *)
  }

  val run :
    inputs:int array ->
    alpha:Shmem.Trace.t ->
    q:int list ->
    v:int ->
    ?required_distinct:int ->
    ?solo_cap:int ->
    unit ->
    certificate
  (** [run ~inputs ~alpha ~q ~v ()] plays the adversary from
      [C = initial ~inputs].  [alpha] is the schedule of α (validated on
      replay).  [required_distinct] is the number of distinct non-[v] values
      that must be decided in [C·α] (defaults to the protocol's [k]; the
      Theorem 10 driver passes the recursion level's parameter instead).
      Default [solo_cap] is [1024 * (objects + 1)].
      @raise Hypothesis_violated as documented above *)
end
