(** Model checking of protocols against the paper's correctness and progress
    properties.

    {!Make.explore} exhaustively enumerates every configuration reachable
    from an initial configuration (optionally pruned, e.g. to a lap bound for
    racing protocols whose reachable space is infinite) and checks:

    - {b k-agreement}: at most [k] distinct values decided (§3);
    - {b validity}: every decided value is some process's input (§3);
    - {b solo termination}: from every explored configuration, every
      undecided process decides when run alone — i.e. the protocol is
      obstruction-free on the explored region (§3).

    {!Make.random_runs} complements this with long randomized-scheduler runs
    for instances whose state spaces are too large to enumerate.

    The checker is a generic "check these properties" driver over the
    unified exploration engine ({!Explore.Make}) and the declarative
    property layer ({!Prop.Make}): the engine owns the frontier, the
    interned configuration store, violation-trace reconstruction and the
    memoized solo-termination oracle; the built-in hooks (agreement,
    validity, solo termination) are themselves [Prop] declarations, and any
    further declared properties — per-protocol registry packs, the §4
    monitor's invariants — ride along via [?extra_props]: invariants are
    evaluated at every visited configuration, step relations and safety
    automata incrementally on every expanded edge through the engine's
    [on_step] observer, with counterexample traces rebuilt by
    {!Explore.Make.trace_via}.  {!Make.explore_parallel} exposes the
    engine's multi-domain mode. *)

type violation = {
  property : string;
  detail : string;
  trace : Shmem.Trace.t;  (** schedule from the initial configuration *)
}

type report = {
  configs_explored : int;
  violations : violation list;
  truncated : bool;
      (** true if exploration stopped at [max_configs] or pruned states,
          so the verdict is for the explored region only *)
}

val ok : report -> bool
val pp_report : Format.formatter -> report -> unit

module Make (P : Shmem.Protocol.S) : sig
  module X : module type of Explore.Make (P)
  (** the underlying exploration engine instance *)

  module E : module type of Shmem.Exec.Make (P)

  val snap : E.config -> Prop.Make(P).snap
  (** the property layer's engine-independent view of a configuration
      (shares the underlying arrays; treat as read-only) *)

  val explore :
    ?max_configs:int ->
    ?solo_cap:int ->
    ?check_solo:bool ->
    ?prune:(E.config -> bool) ->
    ?sym:bool ->
    ?por:bool ->
    ?extra_props:(X.t -> Prop.Make(P).t list) ->
    ?select:string list ->
    inputs:int array ->
    unit ->
    report
  (** BFS over the reachable configuration graph from [initial ~inputs],
      via {!Explore.Make.bfs}.  [solo_cap] bounds solo executions when
      checking solo termination (default {!Explore.Make.default_solo_cap}
      = 64 * (number of objects + 1)); [prune c = true] stops expanding [c]
      (the configuration itself is still checked).
      Defaults: [max_configs = 200_000], [check_solo = true].

      [sym] and [por] (both default [false]) enable the engine's symmetry
      and partial-order reductions (see {!Explore.Make.create}): verdicts
      and violation traces stay sound and concrete, but [configs_explored]
      counts the reduced graph.

      [extra_props] contributes further declared properties (it receives
      the exploration handle so properties can consult e.g. the memoized
      solo oracle); [select] restricts checking to the named properties
      over the combined list — built-ins are "k-agreement", "validity" and
      "solo-termination"; [Some []] checks nothing (pure enumeration).
      @raise Invalid_argument if [select] names an unknown property *)

  val explore_parallel :
    ?domains:int ->
    ?max_configs:int ->
    ?solo_cap:int ->
    ?check_solo:bool ->
    ?prune:(E.config -> bool) ->
    ?sym:bool ->
    ?por:bool ->
    ?extra_props:(X.t -> Prop.Make(P).t list) ->
    ?select:string list ->
    inputs:int array ->
    unit ->
    report
  (** same properties over {!Explore.Make.bfs_parallel} with [domains]
      workers (default 4).  Every reachable configuration is checked exactly
      once, but visit order is nondeterministic, so [violations] are sorted
      (by schedule length, then property and detail) rather than listed in
      discovery order, and on truncated runs [configs_explored] may differ
      slightly from the serial count. *)

  val all_input_vectors : unit -> int array list
  (** all [num_inputs ^ n] input assignments *)

  val explore_all_inputs :
    ?max_configs:int ->
    ?solo_cap:int ->
    ?check_solo:bool ->
    ?prune:(E.config -> bool) ->
    ?sym:bool ->
    ?por:bool ->
    ?extra_props:(X.t -> Prop.Make(P).t list) ->
    ?select:string list ->
    unit ->
    report
  (** run [explore] from every input vector and combine the reports.  With
      [sym] on an anonymous protocol, only one vector per input {e multiset}
      (the nondecreasing ones) is explored — permuting the inputs permutes
      the reachable space, so the others are redundant. *)

  val random_runs :
    ?seed:int ->
    ?max_steps:int ->
    ?solo_check_every:int ->
    ?extra_props:(X.t -> Prop.Make(P).t list) ->
    runs:int ->
    unit ->
    report
  (** [runs] random-scheduler executions from uniformly random inputs; checks
      agreement and validity at every configuration and solo termination
      every [solo_check_every] steps (0 = never, the default).
      [extra_props] run under the property layer's linear monitor
      ({!Prop.Make.start}/[advance]) along each walk — including step
      relations and safety automata, which the exhaustive driver can only
      approximate on the quotient graph. *)

  val shrink_violation :
    ?solo_cap:int ->
    ?props:Prop.Make(P).t list ->
    inputs:int array ->
    violation ->
    violation
  (** greedily delete schedule steps while the violation (same property)
      still manifests when the shortened schedule is re-simulated from
      [initial ~inputs]; repeats to a fixpoint.  The result replays to a
      violating configuration and is never longer than the input.  For
      violations of declared properties (anything beyond the three
      built-ins) the matching property must be supplied via [props]; its
      full monitor — invariant, step relation and automaton — is the
      shrinking oracle.
      @raise Invalid_argument on an unknown property or a schedule that
      does not violate it *)
end
