(** Model checking of protocols against the paper's correctness and progress
    properties.

    {!Make.explore} exhaustively enumerates every configuration reachable
    from an initial configuration (optionally pruned, e.g. to a lap bound for
    racing protocols whose reachable space is infinite) and checks:

    - {b k-agreement}: at most [k] distinct values decided (§3);
    - {b validity}: every decided value is some process's input (§3);
    - {b solo termination}: from every explored configuration, every
      undecided process decides when run alone — i.e. the protocol is
      obstruction-free on the explored region (§3).

    {!Make.random_runs} complements this with long randomized-scheduler runs
    for instances whose state spaces are too large to enumerate. *)

type violation = {
  property : string;
  detail : string;
  trace : Shmem.Trace.t;  (** schedule from the initial configuration *)
}

type report = {
  configs_explored : int;
  violations : violation list;
  truncated : bool;
      (** true if exploration stopped at [max_configs] or pruned states,
          so the verdict is for the explored region only *)
}

val ok : report -> bool
val pp_report : Format.formatter -> report -> unit

module Make (P : Shmem.Protocol.S) : sig
  module E : module type of Shmem.Exec.Make (P)

  val explore :
    ?max_configs:int ->
    ?solo_cap:int ->
    ?check_solo:bool ->
    ?prune:(E.config -> bool) ->
    inputs:int array ->
    unit ->
    report
  (** BFS over the reachable configuration graph from [initial ~inputs].
      [solo_cap] bounds solo executions when checking solo termination
      (default 64 * (number of objects + 1)); [prune c = true] stops
      expanding [c] (the configuration itself is still checked).
      Defaults: [max_configs = 200_000], [check_solo = true]. *)

  val all_input_vectors : unit -> int array list
  (** all [num_inputs ^ n] input assignments *)

  val explore_all_inputs :
    ?max_configs:int ->
    ?solo_cap:int ->
    ?check_solo:bool ->
    ?prune:(E.config -> bool) ->
    unit ->
    report
  (** run [explore] from every input vector and combine the reports *)

  val random_runs :
    ?seed:int ->
    ?max_steps:int ->
    ?solo_check_every:int ->
    runs:int ->
    unit ->
    report
  (** [runs] random-scheduler executions from uniformly random inputs; checks
      agreement and validity at every configuration and solo termination
      every [solo_check_every] steps (0 = never, the default) *)

  val shrink_violation :
    ?solo_cap:int -> inputs:int array -> violation -> violation
  (** greedily delete schedule steps while the violation (same property)
      still manifests when the shortened schedule is re-simulated from
      [initial ~inputs]; repeats to a fixpoint.  The result replays to a
      violating configuration and is never longer than the input. *)
end
