type violation = {
  property : string;
  detail : string;
  trace : Shmem.Trace.t;
}

type report = {
  configs_explored : int;
  violations : violation list;
  truncated : bool;
}

let ok r = r.violations = []

let pp_report ppf r =
  Fmt.pf ppf "@[<v>explored %d configurations%s: %s@,%a@]" r.configs_explored
    (if r.truncated then " (truncated)" else "")
    (if ok r then "no violations" else "VIOLATIONS FOUND")
    Fmt.(
      list ~sep:cut (fun ppf v ->
          Fmt.pf ppf "- %s: %s (schedule length %d)" v.property v.detail
            (Shmem.Trace.length v.trace)))
    r.violations

let combine r1 r2 =
  { configs_explored = r1.configs_explored + r2.configs_explored
  ; violations = r1.violations @ r2.violations
  ; truncated = r1.truncated || r2.truncated
  }

module Make (P : Shmem.Protocol.S) = struct
  module X = Explore.Make (P)
  module E = X.E

  (* The property layer: one visitor checking the paper's three properties
     at a configuration.  All traversal (frontier, interning, back-edges,
     solo-verdict memoization) lives in [Explore]. *)
  let property_visitor ~t ~inputs ~solo_cap ~check_solo ~record
      (v : X.visit) =
    let c = v.X.config in
    let add property detail =
      record { property; detail; trace = Lazy.force v.X.path }
    in
    if not (E.check_agreement c) then
      add "k-agreement"
        (Fmt.str "values %a decided (k=%d)"
           Fmt.(list ~sep:(any ",") int)
           (E.decided_values c) P.k);
    if not (E.check_validity ~inputs c) then
      add "validity"
        (Fmt.str "decided values %a, inputs %a"
           Fmt.(list ~sep:(any ",") int)
           (E.decided_values c)
           Fmt.(array ~sep:(any ",") int)
           inputs);
    if check_solo then
      List.iter
        (fun pid ->
          if not (X.solo_ok t ~pid c) then
            add "solo-termination"
              (Fmt.str "p%d does not decide within %d solo steps" pid
                 solo_cap))
        (E.undecided c)

  let explore ?(max_configs = 200_000) ?(solo_cap = X.default_solo_cap)
      ?(check_solo = true) ?(prune = fun _ -> false) ?(sym = false)
      ?(por = false) ~inputs () =
    let t = X.create ~solo_cap ~sym ~por ~inputs () in
    let violations = ref [] in
    let record v = violations := v :: !violations in
    let visit v =
      property_visitor ~t ~inputs ~solo_cap ~check_solo ~record v;
      if prune v.X.config then X.Prune else X.Continue
    in
    let stats = X.bfs t ~max_configs ~visit () in
    { configs_explored = stats.X.visited
    ; violations = List.rev !violations
    ; truncated = stats.X.truncated
    }

  let explore_parallel ?(domains = 4) ?(max_configs = 200_000)
      ?(solo_cap = X.default_solo_cap) ?(check_solo = true)
      ?(prune = fun _ -> false) ?(sym = false) ?(por = false) ~inputs () =
    let t = X.create ~shards:(max 1 domains) ~solo_cap ~sym ~por ~inputs () in
    let violations = ref [] in
    let lock = Mutex.create () in
    let record v =
      Mutex.lock lock;
      violations := v :: !violations;
      Mutex.unlock lock
    in
    let visit v =
      property_visitor ~t ~inputs ~solo_cap ~check_solo ~record v;
      if prune v.X.config then X.Prune else X.Continue
    in
    let stats = X.bfs_parallel t ~domains ~max_configs ~visit () in
    (* workers record concurrently: order violations for reproducibility *)
    let ordered =
      List.sort
        (fun v1 v2 ->
          let c =
            Stdlib.compare
              (Shmem.Trace.length v1.trace, v1.property, v1.detail)
              (Shmem.Trace.length v2.trace, v2.property, v2.detail)
          in
          if c <> 0 then c else Stdlib.compare v1 v2)
        !violations
    in
    { configs_explored = stats.X.visited
    ; violations = ordered
    ; truncated = stats.X.truncated
    }

  let all_input_vectors () =
    let rec go i acc =
      if i >= P.n then [ Array.of_list (List.rev acc) ]
      else
        List.concat_map
          (fun input -> go (i + 1) (input :: acc))
          (List.init P.num_inputs Fun.id)
    in
    go 0 []

  let explore_all_inputs ?max_configs ?solo_cap ?check_solo ?prune
      ?(sym = false) ?(por = false) () =
    let vectors = all_input_vectors () in
    let vectors =
      (* for anonymous protocols under symmetry reduction, permuting the
         input vector permutes the whole reachable space: one initial
         configuration per input multiset (the nondecreasing vectors)
         suffices *)
      let anonymous =
        match P.symmetry with
        | Shmem.Protocol.Anonymous _ -> true
        | Shmem.Protocol.Asymmetric -> false
      in
      if sym && anonymous then
        List.filter
          (fun v ->
            let s = Array.copy v in
            Array.sort Stdlib.compare s;
            Array.for_all2 Int.equal s v)
          vectors
      else vectors
    in
    List.fold_left
      (fun acc inputs ->
        combine acc
          (explore ?max_configs ?solo_cap ?check_solo ?prune ~sym ~por
             ~inputs ()))
      { configs_explored = 0; violations = []; truncated = false }
      vectors

  (* Re-simulate a schedule (pids only — responses are recomputed), checking
     after every step whether [violates] holds; steps by already-decided
     processes are dropped. *)
  let schedule_violates ~inputs ~violates pids =
    let rec go c = function
      | [] -> false
      | pid :: rest ->
        if E.decision c pid <> None then go c rest
        else
          let c', _ = E.step c pid in
          violates c' || go c' rest
    in
    go (E.initial ~inputs) pids

  let shrink_violation ?(solo_cap = X.default_solo_cap) ~inputs v =
    let violates =
      match v.property with
      | "k-agreement" -> fun c -> not (E.check_agreement c)
      | "validity" -> fun c -> not (E.check_validity ~inputs c)
      | "solo-termination" ->
        fun c ->
          List.exists
            (fun pid -> E.run_solo ~pid ~max_steps:solo_cap c = None)
            (E.undecided c)
      | p -> Fmt.invalid_arg "shrink_violation: unknown property %s" p
    in
    let pids = List.map (fun s -> s.Shmem.Trace.pid) v.trace in
    if not (schedule_violates ~inputs ~violates pids) then
      invalid_arg "shrink_violation: schedule does not violate the property";
    (* one pass of greedy deletion, left to right *)
    let pass pids =
      let rec go kept = function
        | [] -> List.rev kept
        | pid :: rest ->
          if schedule_violates ~inputs ~violates (List.rev_append kept rest)
          then go kept rest
          else go (pid :: kept) rest
      in
      go [] pids
    in
    let rec fix pids =
      let pids' = pass pids in
      if List.length pids' < List.length pids then fix pids' else pids
    in
    let reduced = fix pids in
    (* rebuild the trace with the responses of the reduced schedule,
       truncated at the first violating configuration *)
    let rec rebuild c acc = function
      | [] -> List.rev acc
      | pid :: rest ->
        if E.decision c pid <> None then rebuild c acc rest
        else
          let c', s = E.step c pid in
          if violates c' then List.rev (s :: acc)
          else rebuild c' (s :: acc) rest
    in
    { v with trace = rebuild (E.initial ~inputs) [] reduced }

  let random_runs ?(seed = 0xC0FFEE) ?(max_steps = 100_000)
      ?(solo_check_every = 0) ~runs () =
    let rng = Random.State.make [| seed |] in
    let violations = ref [] in
    let total = ref 0 in
    for _ = 1 to runs do
      let inputs = Array.init P.n (fun _ -> Random.State.int rng P.num_inputs) in
      let t = X.create ~inputs () in
      let visit (v : X.visit) =
        incr total;
        let c = v.X.config in
        let record property detail =
          violations :=
            { property; detail; trace = Lazy.force v.X.path } :: !violations
        in
        if not (E.check_agreement c) then
          record "k-agreement"
            (Fmt.str "values %a decided"
               Fmt.(list ~sep:(any ",") int)
               (E.decided_values c));
        if not (E.check_validity ~inputs c) then
          record "validity" "decided value is no process's input";
        if solo_check_every > 0 && v.X.depth mod solo_check_every = 0 then
          List.iter
            (fun pid ->
              if not (X.solo_ok t ~pid c) then
                record "solo-termination"
                  (Fmt.str "p%d stuck after %d solo steps" pid
                     X.default_solo_cap))
            (E.undecided c);
        X.Continue
      in
      ignore (X.walk t ~sched:(E.random rng) ~max_steps ~visit ())
    done;
    { configs_explored = !total
    ; violations = List.rev !violations
    ; truncated = false
    }
end
