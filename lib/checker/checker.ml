type violation = {
  property : string;
  detail : string;
  trace : Shmem.Trace.t;
}

type report = {
  configs_explored : int;
  violations : violation list;
  truncated : bool;
}

let ok r = r.violations = []

let pp_report ppf r =
  Fmt.pf ppf "@[<v>explored %d configurations%s: %s@,%a@]" r.configs_explored
    (if r.truncated then " (truncated)" else "")
    (if ok r then "no violations" else "VIOLATIONS FOUND")
    Fmt.(
      list ~sep:cut (fun ppf v ->
          Fmt.pf ppf "- %s: %s (schedule length %d)" v.property v.detail
            (Shmem.Trace.length v.trace)))
    r.violations

let combine r1 r2 =
  { configs_explored = r1.configs_explored + r2.configs_explored
  ; violations = r1.violations @ r2.violations
  ; truncated = r1.truncated || r2.truncated
  }

module Make (P : Shmem.Protocol.S) = struct
  module E = Shmem.Exec.Make (P)

  module Cfg_tbl = Hashtbl.Make (struct
    type t = E.config

    let equal = E.equal_config
    let hash = E.hash_config
  end)

  let default_solo_cap = 64 * (Array.length P.objects + 1)

  (* Reconstruct the schedule leading to [c] from predecessor links. *)
  let trace_to parents c =
    let rec go c acc =
      match Cfg_tbl.find_opt parents c with
      | None | Some None -> acc
      | Some (Some (parent, step)) -> go parent (step :: acc)
    in
    go c []

  let explore ?(max_configs = 200_000) ?(solo_cap = default_solo_cap)
      ?(check_solo = true) ?(prune = fun _ -> false) ~inputs () =
    let c0 = E.initial ~inputs in
    let seen = Cfg_tbl.create 4096 in
    let parents = Cfg_tbl.create 4096 in
    let queue = Queue.create () in
    let violations = ref [] in
    let truncated = ref false in
    let add_violation property detail c =
      violations :=
        { property; detail; trace = trace_to parents c } :: !violations
    in
    let check c =
      if not (E.check_agreement c) then
        add_violation "k-agreement"
          (Fmt.str "values %a decided (k=%d)"
             Fmt.(list ~sep:(any ",") int)
             (E.decided_values c) P.k)
          c;
      if not (E.check_validity ~inputs c) then
        add_violation "validity"
          (Fmt.str "decided values %a, inputs %a"
             Fmt.(list ~sep:(any ",") int)
             (E.decided_values c)
             Fmt.(array ~sep:(any ",") int)
             inputs)
          c;
      if check_solo then
        List.iter
          (fun pid ->
            match E.run_solo ~pid ~max_steps:solo_cap c with
            | Some _ -> ()
            | None ->
              add_violation "solo-termination"
                (Fmt.str "p%d does not decide within %d solo steps" pid
                   solo_cap)
                c)
          (E.undecided c)
    in
    Cfg_tbl.replace seen c0 ();
    Cfg_tbl.replace parents c0 None;
    Queue.push c0 queue;
    let explored = ref 0 in
    while not (Queue.is_empty queue) do
      let c = Queue.pop queue in
      incr explored;
      check c;
      if prune c then truncated := true
      else if Cfg_tbl.length seen >= max_configs then truncated := true
      else
        List.iter
          (fun pid ->
            let c', step = E.step c pid in
            if not (Cfg_tbl.mem seen c') then begin
              Cfg_tbl.replace seen c' ();
              Cfg_tbl.replace parents c' (Some (c, step));
              Queue.push c' queue
            end)
          (E.undecided c)
    done;
    { configs_explored = !explored
    ; violations = List.rev !violations
    ; truncated = !truncated
    }

  let all_input_vectors () =
    let rec go i acc =
      if i >= P.n then [ Array.of_list (List.rev acc) ]
      else
        List.concat_map
          (fun input -> go (i + 1) (input :: acc))
          (List.init P.num_inputs Fun.id)
    in
    go 0 []

  let explore_all_inputs ?max_configs ?solo_cap ?check_solo ?prune () =
    List.fold_left
      (fun acc inputs ->
        combine acc
          (explore ?max_configs ?solo_cap ?check_solo ?prune ~inputs ()))
      { configs_explored = 0; violations = []; truncated = false }
      (all_input_vectors ())

  (* Re-simulate a schedule (pids only — responses are recomputed), checking
     after every step whether [violates] holds; steps by already-decided
     processes are dropped. *)
  let schedule_violates ~inputs ~violates pids =
    let rec go c = function
      | [] -> false
      | pid :: rest ->
        if E.decision c pid <> None then go c rest
        else
          let c', _ = E.step c pid in
          violates c' || go c' rest
    in
    go (E.initial ~inputs) pids

  let shrink_violation ?(solo_cap = default_solo_cap) ~inputs v =
    let violates =
      match v.property with
      | "k-agreement" -> fun c -> not (E.check_agreement c)
      | "validity" -> fun c -> not (E.check_validity ~inputs c)
      | "solo-termination" ->
        fun c ->
          List.exists
            (fun pid -> E.run_solo ~pid ~max_steps:solo_cap c = None)
            (E.undecided c)
      | p -> Fmt.invalid_arg "shrink_violation: unknown property %s" p
    in
    let pids = List.map (fun s -> s.Shmem.Trace.pid) v.trace in
    if not (schedule_violates ~inputs ~violates pids) then
      invalid_arg "shrink_violation: schedule does not violate the property";
    (* one pass of greedy deletion, left to right *)
    let pass pids =
      let rec go kept = function
        | [] -> List.rev kept
        | pid :: rest ->
          if schedule_violates ~inputs ~violates (List.rev_append kept rest)
          then go kept rest
          else go (pid :: kept) rest
      in
      go [] pids
    in
    let rec fix pids =
      let pids' = pass pids in
      if List.length pids' < List.length pids then fix pids' else pids
    in
    let reduced = fix pids in
    (* rebuild the trace with the responses of the reduced schedule,
       truncated at the first violating configuration *)
    let rec rebuild c acc = function
      | [] -> List.rev acc
      | pid :: rest ->
        if E.decision c pid <> None then rebuild c acc rest
        else
          let c', s = E.step c pid in
          if violates c' then List.rev (s :: acc)
          else rebuild c' (s :: acc) rest
    in
    { v with trace = rebuild (E.initial ~inputs) [] reduced }

  let random_runs ?(seed = 0xC0FFEE) ?(max_steps = 100_000)
      ?(solo_check_every = 0) ~runs () =
    let rng = Random.State.make [| seed |] in
    let violations = ref [] in
    let total = ref 0 in
    for _ = 1 to runs do
      let inputs = Array.init P.n (fun _ -> Random.State.int rng P.num_inputs) in
      let c0 = E.initial ~inputs in
      let rec go c rev_steps i =
        incr total;
        let record property detail =
          violations :=
            { property; detail; trace = List.rev rev_steps } :: !violations
        in
        if not (E.check_agreement c) then
          record "k-agreement"
            (Fmt.str "values %a decided"
               Fmt.(list ~sep:(any ",") int)
               (E.decided_values c));
        if not (E.check_validity ~inputs c) then
          record "validity" "decided value is no process's input";
        if solo_check_every > 0 && i mod solo_check_every = 0 then
          List.iter
            (fun pid ->
              match E.run_solo ~pid ~max_steps:default_solo_cap c with
              | Some _ -> ()
              | None ->
                record "solo-termination"
                  (Fmt.str "p%d stuck after %d solo steps" pid
                     default_solo_cap))
            (E.undecided c);
        if i < max_steps then
          match E.undecided c with
          | [] -> ()
          | enabled ->
            let pid =
              List.nth enabled (Random.State.int rng (List.length enabled))
            in
            let c', step = E.step c pid in
            go c' (step :: rev_steps) (i + 1)
      in
      go c0 [] 0
    done;
    { configs_explored = !total
    ; violations = List.rev !violations
    ; truncated = false
    }
end
