type violation = {
  property : string;
  detail : string;
  trace : Shmem.Trace.t;
}

type report = {
  configs_explored : int;
  violations : violation list;
  truncated : bool;
}

let ok r = r.violations = []

let pp_report ppf r =
  Fmt.pf ppf "@[<v>explored %d configurations%s: %s@,%a@]" r.configs_explored
    (if r.truncated then " (truncated)" else "")
    (if ok r then "no violations" else "VIOLATIONS FOUND")
    Fmt.(
      list ~sep:cut (fun ppf v ->
          Fmt.pf ppf "- %s: %s (schedule length %d)" v.property v.detail
            (Shmem.Trace.length v.trace)))
    r.violations

let combine r1 r2 =
  { configs_explored = r1.configs_explored + r2.configs_explored
  ; violations = r1.violations @ r2.violations
  ; truncated = r1.truncated || r2.truncated
  }

module Make (P : Shmem.Protocol.S) = struct
  module X = Explore.Make (P)
  module E = X.E
  module Pr = Prop.Make (P)

  (* A snapshot view of an engine configuration (shares the arrays:
     snapshots are read-only by convention). *)
  let snap (c : E.config) : Pr.snap = { Pr.states = c.E.states; mem = c.E.mem }

  (* Re-enter a snapshot into this checker's engine, e.g. to consult the
     memoized solo oracle from inside a property. *)
  let reconfig (s : Pr.snap) = E.unsafe_config ~states:s.Pr.states ~mem:s.Pr.mem

  (* The paper's three correctness properties as [Prop] declarations.  One
     solo-termination property per pid, evaluated in ascending pid order,
     reproduces the seed checker's one-violation-per-stuck-process
     reporting exactly. *)
  let builtin_props ~t ~inputs ~solo_cap ~check_solo =
    let solo_ok ~pid s = X.solo_ok t ~pid (reconfig s) in
    [ Pr.agreement; Pr.validity ~inputs ]
    @ (if check_solo then
         List.init P.n (fun pid ->
             Pr.solo_termination ~pid ~cap:solo_cap ~solo_ok ())
       else [])

  let apply_select ?select props =
    match select with
    | None -> props
    | Some names -> (
      match Pr.select ~names props with
      | Ok ps -> ps
      | Error msg -> Fmt.invalid_arg "Checker: %s" msg)

  (* The generic "check these properties" driver shared by [explore] and
     [explore_parallel]: invariants are evaluated at each visited
     configuration (in property order — violation lists stay chronological
     in discovery order); step relations and safety automata are driven by
     the traversal's [on_step] observer over {e every} expanded edge, with
     counterexample traces rebuilt by [trace_via].

     Automaton markings are tracked per configuration id, seeded at the
     root and stored at each destination's first discovery — exact on the
     traversal tree, one-step checks on cross edges (an automaton property
     over a DAG is evaluated along the discovery tree plus each non-tree
     edge once).  [record] and the marking table are mutex-protected by the
     callers that run traversals concurrently. *)
  let prop_driver ~t ~props ~record =
    let cprops = List.filter Pr.has_config props in
    let sprops = List.filter Pr.has_step props in
    let aprops = List.filter Pr.has_auto props in
    let check_visit (v : X.visit) =
      match cprops with
      | [] -> ()
      | _ ->
        let s = snap v.X.config in
        List.iter
          (fun p ->
            match Pr.eval_config p s with
            | None -> ()
            | Some detail ->
              record
                { property = Pr.name p; detail; trace = Lazy.force v.X.path })
          cprops
    in
    let on_step =
      if sprops = [] && aprops = [] then None
      else begin
        let markings : (X.id, Pr.marking list) Hashtbl.t =
          Hashtbl.create 256
        in
        let mlock = Mutex.create () in
        if aprops <> [] then begin
          let s0 = snap (X.config t (X.root t)) in
          let ms =
            List.map
              (fun p ->
                match Pr.init_marking p s0 with
                | Ok m -> m
                | Error detail ->
                  record { property = Pr.name p; detail; trace = [] };
                  Pr.no_marking)
              aprops
          in
          Hashtbl.replace markings (X.root t) ms
        end;
        Some
          (fun (o : X.step_obs) ->
            let before = snap o.X.before and after = snap o.X.after in
            let pid = o.X.step.Shmem.Trace.pid in
            List.iter
              (fun p ->
                match Pr.eval_step p ~before ~pid ~after with
                | None -> ()
                | Some detail ->
                  record
                    { property = Pr.name p
                    ; detail
                    ; trace = X.trace_via t o.X.src o.X.step
                    })
              sprops;
            match aprops with
            | [] -> ()
            | _ -> (
              let ms =
                Mutex.lock mlock;
                let r = Hashtbl.find_opt markings o.X.src in
                Mutex.unlock mlock;
                r
              in
              match ms with
              | None -> ()
              | Some ms ->
                let ms' =
                  List.map2
                    (fun p m ->
                      match Pr.advance_marking p m ~before ~pid ~after with
                      | Ok m' -> m'
                      | Error detail ->
                        record
                          { property = Pr.name p
                          ; detail
                          ; trace = X.trace_via t o.X.src o.X.step
                          };
                        Pr.no_marking)
                    aprops ms
                in
                if o.X.fresh then begin
                  Mutex.lock mlock;
                  Hashtbl.replace markings o.X.dst ms';
                  Mutex.unlock mlock
                end))
      end
    in
    check_visit, on_step

  let explore ?(max_configs = 200_000) ?(solo_cap = X.default_solo_cap)
      ?(check_solo = true) ?(prune = fun _ -> false) ?(sym = false)
      ?(por = false) ?(extra_props = fun _ -> []) ?select ~inputs () =
    let t = X.create ~solo_cap ~sym ~por ~inputs () in
    let props =
      apply_select ?select
        (builtin_props ~t ~inputs ~solo_cap ~check_solo @ extra_props t)
    in
    let violations = ref [] in
    let record v = violations := v :: !violations in
    let check_visit, on_step = prop_driver ~t ~props ~record in
    let visit v =
      check_visit v;
      if prune v.X.config then X.Prune else X.Continue
    in
    let stats = X.bfs t ~max_configs ?on_step ~visit () in
    { configs_explored = stats.X.visited
    ; violations = List.rev !violations
    ; truncated = stats.X.truncated
    }

  let explore_parallel ?(domains = 4) ?(max_configs = 200_000)
      ?(solo_cap = X.default_solo_cap) ?(check_solo = true)
      ?(prune = fun _ -> false) ?(sym = false) ?(por = false)
      ?(extra_props = fun _ -> []) ?select ~inputs () =
    let t = X.create ~shards:(max 1 domains) ~solo_cap ~sym ~por ~inputs () in
    let props =
      apply_select ?select
        (builtin_props ~t ~inputs ~solo_cap ~check_solo @ extra_props t)
    in
    let violations = ref [] in
    let lock = Mutex.create () in
    let record v =
      Mutex.lock lock;
      violations := v :: !violations;
      Mutex.unlock lock
    in
    let check_visit, on_step = prop_driver ~t ~props ~record in
    let visit v =
      check_visit v;
      if prune v.X.config then X.Prune else X.Continue
    in
    let stats = X.bfs_parallel t ~domains ~max_configs ?on_step ~visit () in
    (* workers record concurrently: order violations for reproducibility *)
    let ordered =
      List.sort
        (fun v1 v2 ->
          let c =
            Stdlib.compare
              (Shmem.Trace.length v1.trace, v1.property, v1.detail)
              (Shmem.Trace.length v2.trace, v2.property, v2.detail)
          in
          if c <> 0 then c else Stdlib.compare v1 v2)
        !violations
    in
    { configs_explored = stats.X.visited
    ; violations = ordered
    ; truncated = stats.X.truncated
    }

  let all_input_vectors () =
    let rec go i acc =
      if i >= P.n then [ Array.of_list (List.rev acc) ]
      else
        List.concat_map
          (fun input -> go (i + 1) (input :: acc))
          (List.init P.num_inputs Fun.id)
    in
    go 0 []

  let explore_all_inputs ?max_configs ?solo_cap ?check_solo ?prune
      ?(sym = false) ?(por = false) ?extra_props ?select () =
    let vectors = all_input_vectors () in
    let vectors =
      (* for anonymous protocols under symmetry reduction, permuting the
         input vector permutes the whole reachable space: one initial
         configuration per input multiset (the nondecreasing vectors)
         suffices *)
      let anonymous =
        match P.symmetry with
        | Shmem.Protocol.Anonymous _ -> true
        | Shmem.Protocol.Asymmetric -> false
      in
      if sym && anonymous then
        List.filter
          (fun v ->
            let s = Array.copy v in
            Array.sort Stdlib.compare s;
            Array.for_all2 Int.equal s v)
          vectors
      else vectors
    in
    List.fold_left
      (fun acc inputs ->
        combine acc
          (explore ?max_configs ?solo_cap ?check_solo ?prune ~sym ~por
             ?extra_props ?select ~inputs ()))
      { configs_explored = 0; violations = []; truncated = false }
      vectors

  (* Re-simulate a schedule (pids only — responses are recomputed), checking
     after every step whether [violates] holds; steps by already-decided
     processes are dropped. *)
  let schedule_violates ~inputs ~violates pids =
    let rec go c = function
      | [] -> false
      | pid :: rest ->
        if E.decision c pid <> None then go c rest
        else
          let c', _ = E.step c pid in
          violates c' || go c' rest
    in
    go (E.initial ~inputs) pids

  (* Greedy deletion to a fix-point: drop any pid whose removal keeps the
     schedule violating. *)
  let greedy_min ~violates pids =
    let pass pids =
      let rec go kept = function
        | [] -> List.rev kept
        | pid :: rest ->
          if violates (List.rev_append kept rest) then go kept rest
          else go (pid :: kept) rest
      in
      go [] pids
    in
    let rec fix pids =
      let pids' = pass pids in
      if List.length pids' < List.length pids then fix pids' else pids
    in
    fix pids

  (* Replay a pid schedule under a single property's full monitor
     (invariant + step relation + automaton), returning the trace up to and
     including the first violating step ([Some []] if the initial
     configuration already violates), or [None] if the schedule does not
     trip the property. *)
  let prop_violating_trace ~inputs q pids =
    let c0 = E.initial ~inputs in
    let r, v0 = Pr.start [ q ] (snap c0) in
    if Option.is_some v0 then Some []
    else
      let rec go c acc = function
        | [] -> None
        | pid :: rest ->
          if E.decision c pid <> None then go c acc rest
          else
            let c', s = E.step c pid in
            if
              Option.is_some
                (Pr.advance r ~before:(snap c) ~pid ~after:(snap c'))
            then Some (List.rev (s :: acc))
            else go c' (s :: acc) rest
      in
      go c0 [] pids

  let shrink_violation ?(solo_cap = X.default_solo_cap) ?(props = []) ~inputs
      v =
    let pids = List.map (fun s -> s.Shmem.Trace.pid) v.trace in
    match v.property with
    | "k-agreement" | "validity" | "solo-termination" ->
      let violates =
        match v.property with
        | "k-agreement" -> fun c -> not (E.check_agreement c)
        | "validity" -> fun c -> not (E.check_validity ~inputs c)
        | _ ->
          fun c ->
            List.exists
              (fun pid -> E.run_solo ~pid ~max_steps:solo_cap c = None)
              (E.undecided c)
      in
      if not (schedule_violates ~inputs ~violates pids) then
        invalid_arg "shrink_violation: schedule does not violate the property";
      let reduced =
        greedy_min ~violates:(schedule_violates ~inputs ~violates) pids
      in
      (* rebuild the trace with the responses of the reduced schedule,
         truncated at the first violating configuration *)
      let rec rebuild c acc = function
        | [] -> List.rev acc
        | pid :: rest ->
          if E.decision c pid <> None then rebuild c acc rest
          else
            let c', s = E.step c pid in
            if violates c' then List.rev (s :: acc)
            else rebuild c' (s :: acc) rest
      in
      { v with trace = rebuild (E.initial ~inputs) [] reduced }
    | pname -> (
      (* a declared property: the oracle is a full linear replay under its
         monitor, so step relations and automata shrink too *)
      match List.find_opt (fun q -> String.equal (Pr.name q) pname) props with
      | None -> Fmt.invalid_arg "shrink_violation: unknown property %s" pname
      | Some q ->
        let violates pids =
          Option.is_some (prop_violating_trace ~inputs q pids)
        in
        if not (violates pids) then
          invalid_arg
            "shrink_violation: schedule does not violate the property";
        let reduced = greedy_min ~violates pids in
        { v with
          trace = Option.get (prop_violating_trace ~inputs q reduced)
        })

  (* The sampling path's historical detail strings differ from the
     exhaustive path's; the frozen-seed differentials pin them, so
     [random_runs] declares its own [Prop] instances. *)
  let walk_props ~t ~inputs =
    let agreement =
      Pr.invariant ~name:"k-agreement"
        ~desc:(Fmt.str "at most %d distinct values are decided" P.k)
        (fun s ->
          let decided = Pr.decided_values s in
          if List.length decided <= P.k then None
          else
            Some
              (Fmt.str "values %a decided"
                 Fmt.(list ~sep:(any ",") int)
                 decided))
    in
    let validity =
      Pr.invariant ~name:"validity"
        ~desc:"every decided value is some process's input" (fun s ->
          if
            List.for_all
              (fun v -> Array.exists (Int.equal v) inputs)
              (Pr.decided_values s)
          then None
          else Some "decided value is no process's input")
    in
    let solo =
      List.init P.n (fun pid ->
          Pr.invariant ~name:"solo-termination"
            ~desc:
              (Fmt.str "p%d decides within %d solo steps when run alone" pid
                 X.default_solo_cap)
            (fun s ->
              if Option.is_some (P.decision s.Pr.states.(pid)) then None
              else if X.solo_ok t ~pid (reconfig s) then None
              else
                Some
                  (Fmt.str "p%d stuck after %d solo steps" pid
                     X.default_solo_cap)))
    in
    agreement, validity, solo

  let random_runs ?(seed = 0xC0FFEE) ?(max_steps = 100_000)
      ?(solo_check_every = 0) ?(extra_props = fun _ -> []) ~runs () =
    let rng = Random.State.make [| seed |] in
    let violations = ref [] in
    let total = ref 0 in
    for _ = 1 to runs do
      let inputs = Array.init P.n (fun _ -> Random.State.int rng P.num_inputs) in
      let t = X.create ~inputs () in
      let agreement, validity, solo = walk_props ~t ~inputs in
      (* extra declared properties ride along under the linear monitor *)
      let rev_steps = ref [] in
      let xrun =
        match extra_props t with
        | [] -> None
        | xprops ->
          let r, v0 = Pr.start xprops (snap (X.config t (X.root t))) in
          (match v0 with
          | Some (property, detail) ->
            violations := { property; detail; trace = [] } :: !violations
          | None -> ());
          Some r
      in
      let on_step =
        match xrun with
        | None -> None
        | Some r ->
          Some
            (fun (o : X.step_obs) ->
              rev_steps := o.X.step :: !rev_steps;
              match
                Pr.advance r ~before:(snap o.X.before)
                  ~pid:o.X.step.Shmem.Trace.pid ~after:(snap o.X.after)
              with
              | None -> ()
              | Some (property, detail) ->
                violations :=
                  { property; detail; trace = List.rev !rev_steps }
                  :: !violations)
      in
      let visit (v : X.visit) =
        incr total;
        let s = snap v.X.config in
        let record property detail =
          violations :=
            { property; detail; trace = Lazy.force v.X.path } :: !violations
        in
        let eval p =
          match Pr.eval_config p s with
          | Some detail -> record (Pr.name p) detail
          | None -> ()
        in
        eval agreement;
        eval validity;
        if solo_check_every > 0 && v.X.depth mod solo_check_every = 0 then
          List.iter eval solo;
        X.Continue
      in
      ignore (X.walk t ~sched:(E.random rng) ?on_step ~max_steps ~visit ())
    done;
    { configs_explored = !total
    ; violations = List.rev !violations
    ; truncated = false
    }
end
