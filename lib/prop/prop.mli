(** Declarative temporal properties over [Shmem.Protocol.S] transition
    systems.

    A property is a named, self-describing correctness statement about a
    protocol, built from three primitive shapes:

    - {e state invariants} — a predicate that must hold of every reachable
      configuration ([invariant], [always], [never]);
    - {e per-step relations} — a predicate over a single transition
      [before --pid--> after] ([step_rel]);
    - {e safety automata} — a deterministic observer with hidden state that
      advances on every transition and rejects by returning an error
      (LTL-lite: [automaton], [leads_to_within], and [product] to conjoin).

    Properties evaluate over engine-independent {e snapshots} (bare
    state/memory arrays) rather than over any particular [Exec.Make]'s
    sealed [config], so one declared property can be checked by the
    exhaustive explorer, the random walker, the fault injector and the
    multicore runtime alike.  Evaluation helpers tally the global
    [prop.checked] / [prop.violated] counters and time each property under
    its own [prop.eval.<name>] span (both free when [Obs] is disabled).

    Property functions must be pure (no hidden mutable state outside the
    automaton's explicit ['s]): the checker may evaluate them in any order,
    from any configuration, possibly concurrently, and the shrinker
    re-evaluates them on reduced schedules. *)

type kind =
  | Invariant  (** checked on every visited configuration *)
  | Step  (** checked on every transition *)
  | Automaton  (** hidden-state observer advanced on every transition *)

val kind_to_string : kind -> string

type spec = { name : string; kind : kind; desc : string }
(** the externally visible face of a property: [name] is the selection key
    used by [check --props] and detection tallies, [desc] a one-line
    human-readable statement *)

val pp_spec : Format.formatter -> spec -> unit

module Make (P : Shmem.Protocol.S) : sig
  type snap = { states : P.state array; mem : Shmem.Value.t array }
  (** an engine-independent configuration snapshot: one state per process
      (index = pid), one value per object.  Construct from any engine's
      config by reusing its arrays (snapshots are read-only by convention),
      re-enter into an engine with [Exec.Make(P).unsafe_config]. *)

  val decided_values : snap -> int list
  (** distinct values decided in the snapshot, ascending *)

  val undecided : snap -> int list
  (** pids of processes that have not decided, ascending *)

  type t
  (** a property over [P]'s transition system *)

  val spec : t -> spec
  val name : t -> string

  val has_config : t -> bool
  (** evaluates something per configuration *)

  val has_step : t -> bool
  (** evaluates something per transition (stateless) *)

  val has_auto : t -> bool
  (** carries a safety automaton (per-transition, stateful) *)

  (** {1 Builders} *)

  val invariant : name:string -> desc:string -> (snap -> string option) -> t
  (** [Some detail] = violated, with a counterexample description *)

  val step_rel :
    name:string ->
    desc:string ->
    (before:snap -> pid:int -> after:snap -> string option) ->
    t

  val automaton :
    name:string ->
    desc:string ->
    init:(snap -> ('s, string) result) ->
    next:('s -> before:snap -> pid:int -> after:snap -> ('s, string) result) ->
    unit ->
    t
  (** a deterministic safety automaton: [init] seeds the hidden state from
      the initial configuration, [next] advances it across each transition;
      [Error detail] rejects (the property is violated at that point) *)

  val always : name:string -> ?desc:string -> (snap -> bool) -> t
  (** invariant: the predicate holds of every reachable configuration *)

  val never : name:string -> ?desc:string -> (snap -> bool) -> t
  (** invariant: the predicate holds of no reachable configuration *)

  val leads_to_within :
    name:string ->
    ?desc:string ->
    trigger:(snap -> bool) ->
    goal:(snap -> bool) ->
    within:int ->
    unit ->
    t
  (** bounded response along an execution: whenever [trigger] holds (and
      [goal] does not already), [goal] must hold within the next [within]
      transitions.  A safety automaton — only meaningful on linear runs
      (walks, fault executions), where "next" is the run's own order.
      @raise Invalid_argument if [within < 1] *)

  val product : name:string -> ?desc:string -> t list -> t
  (** conjunction: violated as soon as any component is, with the
      component's name prefixed to the detail (when more than one).
      @raise Invalid_argument on the empty list *)

  (** {1 Built-in consensus properties} *)

  val agreement : t
  (** "k-agreement": at most [P.k] distinct values are decided *)

  val validity : inputs:int array -> t
  (** "validity": every decided value is some process's input *)

  val solo_termination :
    ?pid:int -> cap:int -> solo_ok:(pid:int -> snap -> bool) -> unit -> t
  (** "solo-termination": every undecided process ([?pid] restricts to one)
      decides within [cap] solo steps, as judged by the caller's [solo_ok]
      oracle (typically [Explore.Make.solo_ok]'s memoized solo runner) *)

  (** {1 Evaluation}

      All evaluators tally [prop.checked]/[prop.violated] and run under the
      property's span. *)

  val eval_config : t -> snap -> string option
  (** the property's per-configuration check, if any ([None] otherwise) *)

  val eval_step : t -> before:snap -> pid:int -> after:snap -> string option
  (** the property's stateless per-transition check, if any *)

  type marking
  (** an automaton's hidden state positioned at some configuration *)

  val no_marking : marking
  (** the inert marking: [advance_marking] is the identity on it.  The
      marking for a property with no automaton, and the "dead" marking a
      driver can store after a rejection to stop tracking. *)

  val init_marking : t -> snap -> (marking, string) result
  val advance_marking :
    t -> marking -> before:snap -> pid:int -> after:snap -> (marking, string) result

  (** {1 Linear runs}

      A convenience monitor for executing all three shapes along a single
      execution (random walks, fault injections, multicore histories):
      invariants on every configuration, step relations and automata on
      every transition. *)

  type run

  val start : t list -> snap -> run * (string * string) option
  (** position the properties at an execution's initial configuration;
      returns the first [(name, detail)] violation at it, if any.  An
      automaton that rejects at [init] is dead in the returned [run] (it
      will not be advanced). *)

  val advance :
    run -> before:snap -> pid:int -> after:snap -> (string * string) option
  (** advance across one transition; first [(name, detail)] violation among
      (in property order) step relation, invariant on [after], automaton.
      A rejecting automaton dies; other properties keep evaluating on
      subsequent calls. *)

  val select : names:string list -> t list -> (t list, string) result
  (** the sublist (in original order) whose names appear in [names];
      [Error] names the unknown entries and lists what is available *)
end

(** {1 Property packs}

    A pack couples a protocol with properties declared over it, hiding the
    protocol's type identity so heterogeneous registries can carry one.
    Unpack {e first} and instantiate checkers from the pack's own [P] so
    the property and checker types unify:
    {[
      let (module Pk) = entry.props in
      let module C = Checker.Make (Pk.P) in
      C.explore ~extra_props:(fun _ -> Pk.props) ...
    ]} *)

module type PACK = sig
  module P : Shmem.Protocol.S

  val props : Make(P).t list
end

type pack = (module PACK)

val pack_specs : pack -> spec list

val generic_pack : Shmem.Protocol.t -> pack
(** the properties every k-consensus protocol owes us regardless of
    algorithm: currently just [agreement] (validity and solo-termination
    need runtime parameters — inputs, a solo oracle — and are supplied by
    the checker itself) *)
