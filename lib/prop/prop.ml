type kind = Invariant | Step | Automaton

let kind_to_string = function
  | Invariant -> "invariant"
  | Step -> "step-relation"
  | Automaton -> "automaton"

type spec = { name : string; kind : kind; desc : string }

let pp_spec ppf s =
  Fmt.pf ppf "%s [%s]: %s" s.name (kind_to_string s.kind) s.desc

let m_checked = Obs.counter "prop.checked"
let m_violated = Obs.counter "prop.violated"

module Make (P : Shmem.Protocol.S) = struct
  type snap = { states : P.state array; mem : Shmem.Value.t array }

  let decided_values s =
    Array.to_list s.states
    |> List.filter_map P.decision
    |> List.sort_uniq Stdlib.compare

  let undecided s =
    let rec go pid acc =
      if pid < 0 then acc
      else
        go (pid - 1)
          (match P.decision s.states.(pid) with
          | None -> pid :: acc
          | Some _ -> acc)
    in
    go (Array.length s.states - 1) []

  type apack =
    | Apack : {
        init : snap -> ('s, string) result;
        next : 's -> before:snap -> pid:int -> after:snap -> ('s, string) result;
      }
        -> apack

  type t = {
    spec : spec;
    check_config : (snap -> string option) option;
    check_step : (before:snap -> pid:int -> after:snap -> string option) option;
    auto : apack option;
    span : Obs.Span.t;
  }

  let spec t = t.spec
  let name t = t.spec.name
  let has_config t = Option.is_some t.check_config
  let has_step t = Option.is_some t.check_step
  let has_auto t = Option.is_some t.auto
  let mk_span name = Obs.span ("prop.eval." ^ name)

  let invariant ~name ~desc f =
    { spec = { name; kind = Invariant; desc }
    ; check_config = Some f
    ; check_step = None
    ; auto = None
    ; span = mk_span name
    }

  let step_rel ~name ~desc f =
    { spec = { name; kind = Step; desc }
    ; check_config = None
    ; check_step = Some f
    ; auto = None
    ; span = mk_span name
    }

  let automaton ~name ~desc ~init ~next () =
    { spec = { name; kind = Automaton; desc }
    ; check_config = None
    ; check_step = None
    ; auto = Some (Apack { init; next })
    ; span = mk_span name
    }

  let always ~name ?desc pred =
    let desc = Option.value desc ~default:name in
    invariant ~name ~desc (fun s ->
        if pred s then None else Some (Fmt.str "%s does not hold" desc))

  let never ~name ?desc pred =
    let desc = Option.value desc ~default:name in
    invariant ~name ~desc:(Fmt.str "never: %s" desc) (fun s ->
        if pred s then Some (Fmt.str "%s holds" desc) else None)

  let leads_to_within ~name ?desc ~trigger ~goal ~within () =
    if within < 1 then invalid_arg "Prop.leads_to_within: within must be >= 1";
    let desc =
      Option.value desc
        ~default:(Fmt.str "the trigger leads to the goal within %d steps" within)
    in
    (* hidden state: [None] = idle, [Some d] = the earliest pending trigger
       fired [d] transitions ago without the goal having held since *)
    let arm s st =
      match st with
      | Some _ -> st
      | None -> if trigger s && not (goal s) then Some 0 else None
    in
    automaton ~name ~desc
      ~init:(fun s -> Ok (arm s None))
      ~next:(fun st ~before:_ ~pid:_ ~after ->
        match st with
        | None -> Ok (arm after None)
        | Some d ->
          if goal after then Ok (arm after None)
          else if d + 1 >= within then
            Error (Fmt.str "goal not reached within %d steps of the trigger" within)
          else Ok (Some (d + 1)))
      ()

  type runner =
    | Runner : {
        nm : string;
        next : 's -> before:snap -> pid:int -> after:snap -> ('s, string) result;
        st : 's;
      }
        -> runner

  let product ~name ?desc parts =
    (match parts with [] -> invalid_arg "Prop.product: empty list" | _ -> ());
    let desc =
      Option.value desc
        ~default:(String.concat " AND " (List.map (fun p -> p.spec.name) parts))
    in
    let solo = match parts with [ _ ] -> true | _ -> false in
    let prefix nm d = if solo then d else Fmt.str "%s: %s" nm d in
    let configs =
      List.filter_map
        (fun p -> Option.map (fun f -> (p.spec.name, f)) p.check_config)
        parts
    and steps =
      List.filter_map
        (fun p -> Option.map (fun f -> (p.spec.name, f)) p.check_step)
        parts
    and autos =
      List.filter_map (fun p -> Option.map (fun a -> (p.spec.name, a)) p.auto) parts
    in
    let check_config =
      match configs with
      | [] -> None
      | fs ->
        Some (fun s -> List.find_map (fun (nm, f) -> Option.map (prefix nm) (f s)) fs)
    in
    let check_step =
      match steps with
      | [] -> None
      | fs ->
        Some
          (fun ~before ~pid ~after ->
            List.find_map
              (fun (nm, f) -> Option.map (prefix nm) (f ~before ~pid ~after))
              fs)
    in
    let auto =
      match autos with
      | [] -> None
      | autos ->
        Some
          (Apack
             { init =
                 (fun s ->
                   let rec go acc = function
                     | [] -> Ok (List.rev acc)
                     | (nm, Apack a) :: rest -> (
                       match a.init s with
                       | Error e -> Error (prefix nm e)
                       | Ok st -> go (Runner { nm; next = a.next; st } :: acc) rest)
                   in
                   go [] autos)
             ; next =
                 (fun rs ~before ~pid ~after ->
                   let rec go acc = function
                     | [] -> Ok (List.rev acc)
                     | Runner r :: rest -> (
                       match r.next r.st ~before ~pid ~after with
                       | Error e -> Error (prefix r.nm e)
                       | Ok st ->
                         go (Runner { nm = r.nm; next = r.next; st } :: acc) rest)
                   in
                   go [] rs)
             })
    in
    let kind =
      if auto <> None then Automaton else if check_step <> None then Step else Invariant
    in
    { spec = { name; kind; desc }; check_config; check_step; auto; span = mk_span name }

  (* built-ins; detail strings match the checker's historical output *)

  let agreement =
    invariant ~name:"k-agreement"
      ~desc:(Fmt.str "at most %d distinct values are decided" P.k)
      (fun s ->
        let decided = decided_values s in
        if List.length decided <= P.k then None
        else
          Some
            (Fmt.str "values %a decided (k=%d)"
               Fmt.(list ~sep:(any ",") int)
               decided P.k))

  let validity ~inputs =
    invariant ~name:"validity" ~desc:"every decided value is some process's input"
      (fun s ->
        let decided = decided_values s in
        if List.for_all (fun v -> Array.exists (Int.equal v) inputs) decided then
          None
        else
          Some
            (Fmt.str "decided values %a, inputs %a"
               Fmt.(list ~sep:(any ",") int)
               decided
               Fmt.(array ~sep:(any ",") int)
               inputs))

  let solo_termination ?pid ~cap ~solo_ok () =
    invariant ~name:"solo-termination"
      ~desc:(Fmt.str "every undecided process decides within %d solo steps" cap)
      (fun s ->
        let pids =
          match pid with
          | Some p -> if Option.is_none (P.decision s.states.(p)) then [ p ] else []
          | None -> undecided s
        in
        List.find_map
          (fun pid ->
            if solo_ok ~pid s then None
            else Some (Fmt.str "p%d does not decide within %d solo steps" pid cap))
          pids)

  let tally violated =
    Obs.Counter.incr m_checked;
    if violated then Obs.Counter.incr m_violated

  (* both evaluators run on every visited configuration / expanded edge of
     instrumented explorations; when Obs is off (the common case, and what
     bench T13's budget measures) skip the span closure and counter reads
     entirely *)
  let eval_config t s =
    match t.check_config with
    | None -> None
    | Some f ->
      if not (Obs.enabled ()) then f s
      else begin
        let r = Obs.Span.time t.span (fun () -> f s) in
        tally (Option.is_some r);
        r
      end

  let eval_step t ~before ~pid ~after =
    match t.check_step with
    | None -> None
    | Some f ->
      if not (Obs.enabled ()) then f ~before ~pid ~after
      else begin
        let r = Obs.Span.time t.span (fun () -> f ~before ~pid ~after) in
        tally (Option.is_some r);
        r
      end

  type marking =
    | No_auto
    | Marking : {
        next : 's -> before:snap -> pid:int -> after:snap -> ('s, string) result;
        st : 's;
      }
        -> marking

  let no_marking = No_auto

  let init_marking t s =
    match t.auto with
    | None -> Ok No_auto
    | Some (Apack a) -> (
      match Obs.Span.time t.span (fun () -> a.init s) with
      | Ok st ->
        tally false;
        Ok (Marking { next = a.next; st })
      | Error e ->
        tally true;
        Error e)

  let advance_marking t m ~before ~pid ~after =
    match m with
    | No_auto -> Ok No_auto
    | Marking r -> (
      match Obs.Span.time t.span (fun () -> r.next r.st ~before ~pid ~after) with
      | Ok st ->
        tally false;
        Ok (Marking { next = r.next; st })
      | Error e ->
        tally true;
        Error e)

  type run = { mutable cells : (t * marking) list }

  let start props s =
    let viol = ref None in
    let hit p d = if !viol = None then viol := Some (p.spec.name, d) in
    let cells =
      List.map
        (fun p ->
          (match eval_config p s with Some d -> hit p d | None -> ());
          match init_marking p s with
          | Ok m -> (p, m)
          | Error d ->
            hit p d;
            (p, No_auto))
        props
    in
    ({ cells }, !viol)

  let advance run ~before ~pid ~after =
    let viol = ref None in
    let hit p d = if !viol = None then viol := Some (p.spec.name, d) in
    run.cells <-
      List.map
        (fun (p, m) ->
          (match eval_step p ~before ~pid ~after with
          | Some d -> hit p d
          | None -> ());
          (match eval_config p after with Some d -> hit p d | None -> ());
          match advance_marking p m ~before ~pid ~after with
          | Ok m' -> (p, m')
          | Error d ->
            hit p d;
            (p, No_auto))
        run.cells;
    !viol

  let select ~names props =
    let available = List.map name props in
    match List.filter (fun n -> not (List.mem n available)) names with
    | [] -> Ok (List.filter (fun p -> List.mem (name p) names) props)
    | unknown ->
      Error
        (Fmt.str "unknown propert%s %s (available: %s)"
           (match unknown with [ _ ] -> "y" | _ -> "ies")
           (String.concat ", " unknown)
           (String.concat ", " (List.sort_uniq String.compare available)))
end

module type PACK = sig
  module P : Shmem.Protocol.S

  val props : Make(P).t list
end

type pack = (module PACK)

let pack_specs (pack : pack) =
  let (module Pk) = pack in
  let module M = Make (Pk.P) in
  List.map M.spec Pk.props

let generic_pack (p : Shmem.Protocol.t) : pack =
  let (module P : Shmem.Protocol.S) = p in
  (module struct
    module P = P
    module M = Make (P)

    let props = [ M.agreement ]
  end : PACK)
