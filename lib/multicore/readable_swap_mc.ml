type outcome = {
  decisions : int array;
  passes : int array;
  reads : int array;
  swaps : int array;
  elapsed : float;
}

type cell = { laps : int array; owner : int }

let run ~n ~m ~inputs ?(seed = 0xFACE) ?(max_passes = 1_000_000) () =
  if n < 2 then invalid_arg "Readable_swap_mc.run: need n >= 2";
  if m < 2 then invalid_arg "Readable_swap_mc.run: need m >= 2";
  if Array.length inputs <> n then
    invalid_arg "Readable_swap_mc.run: wrong number of inputs";
  Array.iter
    (fun v ->
      if v < 0 || v >= m then
        invalid_arg "Readable_swap_mc.run: input out of range")
    inputs;
  let r = n - 1 in
  let objects =
    Array.init r (fun _ ->
        Atomic_swap.make { laps = Array.make m 0; owner = -1 })
  in
  let decisions = Array.make n (-1) in
  let passes = Array.make n 0 in
  let reads = Array.make n 0 in
  let swaps = Array.make n 0 in
  let process pid =
    let input = inputs.(pid) in
    let rng = Random.State.make [| seed; pid |] in
    let u = Array.make m 0 in
    u.(input) <- 1;
    let my_reads = ref 0 and my_swaps = ref 0 in
    let backoff = ref 1 in
    let merge laps =
      for j = 0 to m - 1 do
        u.(j) <- max u.(j) laps.(j)
      done
    in
    let rec go pass =
      if pass > max_passes then
        failwith (Fmt.str "p%d exceeded %d passes" pid max_passes);
      (* read pass: merge every counter without disturbing the objects *)
      for i = 0 to r - 1 do
        incr my_reads;
        merge (Atomic_swap.read objects.(i)).laps
      done;
      (* swap pass: as in Algorithm 1 *)
      let conflict = ref false in
      for i = 0 to r - 1 do
        incr my_swaps;
        let prev =
          Atomic_swap.swap objects.(i) { laps = Array.copy u; owner = pid }
        in
        let same_u = Array.for_all2 Int.equal prev.laps u in
        if not (same_u && prev.owner = pid) then conflict := true;
        if not same_u then merge prev.laps
      done;
      if !conflict then begin
        let spins = Random.State.int rng !backoff in
        for _ = 1 to spins do
          Domain.cpu_relax ()
        done;
        if !backoff < 1 lsl 16 then backoff := !backoff * 2;
        go (pass + 1)
      end
      else begin
        backoff := 1;
        let v = ref 0 in
        for j = 1 to m - 1 do
          if u.(j) > u.(!v) then v := j
        done;
        let lead2 = ref true in
        for j = 0 to m - 1 do
          if j <> !v && u.(!v) < u.(j) + 2 then lead2 := false
        done;
        if !lead2 then begin
          decisions.(pid) <- !v;
          passes.(pid) <- pass;
          reads.(pid) <- !my_reads;
          swaps.(pid) <- !my_swaps
        end
        else begin
          u.(!v) <- u.(!v) + 1;
          go (pass + 1)
        end
      end
    in
    go 1
  in
  let t0 = Unix.gettimeofday () in
  let domains = Array.init n (fun pid -> Domain.spawn (fun () -> process pid)) in
  Array.iter Domain.join domains;
  let elapsed = Unix.gettimeofday () -. t0 in
  { decisions; passes; reads; swaps; elapsed }

let check ~inputs outcome =
  let distinct =
    Array.to_list outcome.decisions |> List.sort_uniq Stdlib.compare
  in
  match distinct with
  | [ v ] when v >= 0 ->
    if Array.exists (Int.equal v) inputs then Ok ()
    else Error "the decided value is no process's input"
  | [ _ ] -> Error "some process is undecided"
  | vs ->
    Error (Fmt.str "%d distinct values decided (consensus)" (List.length vs))
