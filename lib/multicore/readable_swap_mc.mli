(** The readable-swap racing-counters consensus (the simulator's
    {!Baselines.Readable_swap_consensus}) on real shared memory: [n-1]
    readable swap objects implemented by [Atomic.get] / [Atomic.exchange].

    Same structure as the simulated protocol — a read pass that merges lap
    counters, then a swap pass that must return only the process's own
    pair, deciding at a 2-lap lead — plus the same randomized backoff as
    {!Swap_ksa_mc}. *)

type outcome = {
  decisions : int array;
  passes : int array;
  reads : int array;
  swaps : int array;
  elapsed : float;
}

val run :
  n:int ->
  m:int ->
  inputs:int array ->
  ?seed:int ->
  ?max_passes:int ->
  unit ->
  outcome
(** @raise Invalid_argument unless [n >= 2], [m >= 2] and inputs are in
    range *)

val check : inputs:int array -> outcome -> (unit, string) result
(** verify agreement (consensus: a single decided value) and validity *)
