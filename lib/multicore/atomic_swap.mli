(** Real hardware swap objects.

    OCaml 5's [Atomic.exchange] compiles to an atomic exchange instruction,
    which is exactly the paper's [Swap] operation: it sets the value and
    returns the previous one in a single atomic step.  A value of type
    ['a t] used only through {!swap} is a swap object; adding {!read} makes
    it a readable swap object.

    Stored values must be treated as immutable: mutating an array after
    swapping it in would break the object's sequential semantics. *)

type 'a t

val make : 'a -> 'a t

val swap : 'a t -> 'a -> 'a
(** [swap b v] atomically sets [b] to [v] and returns the previous value —
    the paper's [Swap(B, v)] *)

val read : 'a t -> 'a
(** the [Read] operation of a readable swap object; do not use on objects
    meant to model the paper's swap-only objects *)
