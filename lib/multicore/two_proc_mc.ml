let run ~input0 ~input1 =
  let cell = Atomic_swap.make None in
  let propose input =
    match Atomic_swap.swap cell (Some input) with
    | None -> input  (* first to swap: decide own input *)
    | Some other -> other  (* second: decide the winner's input *)
  in
  let d1 = Domain.spawn (fun () -> propose input1) in
  let decision0 = propose input0 in
  let decision1 = Domain.join d1 in
  decision0, decision1
