(** Algorithm 1 on real shared memory: [n] domains racing on [n-k] hardware
    swap objects ({!Atomic_swap}, i.e. [Atomic.exchange]).

    Obstruction freedom alone does not guarantee termination under real
    contention, so each process performs randomized exponential backoff
    after a conflicted pass; by Giakkoupis, Helmi, Higham and Woelfel [23]
    (cited in §2), obstruction-free algorithms can be transformed into
    randomized wait-free ones against an oblivious adversary using the same
    objects, and backoff is the practical version of that transformation.

    This module is the {e hand-optimized} implementation of Algorithm 1:
    it hard-codes the pass structure instead of interpreting the protocol
    state machine.  The generic backend ([Runtime.Make] over
    [Core.Swap_ksa]) executes the same algorithm from its [Protocol.S]
    definition; the two are differentially tested against each other and
    compared in bench T7. *)

type outcome = {
  decisions : int array;  (** decision of each process, index = pid *)
  passes : int array;  (** full passes over the objects, per process *)
  swaps : int array;  (** Swap operations executed, per process *)
  elapsed : float;  (** wall-clock seconds for all processes to decide *)
}

val run :
  n:int ->
  k:int ->
  m:int ->
  inputs:int array ->
  ?seed:int ->
  ?max_passes:int ->
  unit ->
  outcome
(** run one instance: spawns [n] domains (oversubscription beyond the
    machine's cores is allowed and scheduled by the OS).  [max_passes]
    (default 1_000_000) bounds each process's passes; exceeding it raises
    [Failure], which with backoff in place indicates a bug rather than
    contention.
    @raise Invalid_argument unless [n > k >= 1], [m >= 2] and inputs are in
    range *)

val check : inputs:int array -> k:int -> outcome -> (unit, string) result
(** verify k-agreement and validity of an outcome *)
