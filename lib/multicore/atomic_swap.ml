type 'a t = 'a Atomic.t

let make = Atomic.make
let swap = Atomic.exchange
let read = Atomic.get
