(** The folklore wait-free 2-process consensus from one hardware swap object
    (§1), on real domains: both processes [Atomic.exchange] their input into
    a shared cell initialised to ⊥; whoever gets ⊥ back wins. *)

val run : input0:int -> input1:int -> int * int
(** [run ~input0 ~input1] spawns two domains and returns their decisions;
    wait-free, one swap each. *)
