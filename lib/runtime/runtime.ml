module Sh = Shmem

(* ----------------------------------------------------------------- metrics *)

(* Shared across every Make instantiation; each site is one branch when Obs
   is disabled and allocation-free when enabled (hot-loop tallies accumulate
   in local ints and are flushed once per process, see [Make.run]). *)
let m_cas_retries = Obs.counter "runtime.cas_retries"
let m_tas_retries = Obs.counter "runtime.tas_retries"

(* bounded backoff between atomic retry attempts: 1, 2, 4, ... capped at
   1024 cpu_relax, so a contended loop yields the cache line instead of
   hammering it, but a process never sleeps unboundedly long.  The curve
   lives in [Resil.Policy] — one audited implementation for every retry
   loop in the tree. *)
let retry_policy = Resil.Policy.Backoff.exponential ~base:1 ~cap:1024 ()
let retry_backoff attempts =
  ignore (Resil.Policy.Backoff.once retry_policy ~attempt:attempts)

(* ------------------------------------------------------------------ cells *)

module Cell = struct
  type t = {
    kind : Sh.Obj_kind.t;
    cell : Sh.Value.t Atomic.t;
    exchange : Sh.Value.t Atomic.t -> Sh.Value.t -> Sh.Value.t;
  }

  let make ?(exchange = Atomic.exchange) kind init =
    let dom = Sh.Obj_kind.domain kind in
    if
      not
        (Sh.Obj_kind.value_in_domain dom init
        || Sh.Value.equal init Sh.Value.Bot)
    then
      invalid_arg
        (Fmt.str "Runtime.Cell.make: initial value %a outside domain"
           Sh.Value.pp init);
    { kind; cell = Atomic.make init; exchange }

  let kind t = t.kind
  let peek t = Atomic.get t.cell

  (* structural compare-and-set: [Atomic.compare_and_set] compares
     physically, so re-read until the witnessed value — the one the CAS is
     performed against — is the one we structurally compared.  Retries feed
     the obs counter and back off (capped) so a storm of failing CASes
     neither spins blind nor goes unmeasured. *)
  let structural_cas t ~expected ~desired =
    let rec go attempts =
      let current = Atomic.get t.cell in
      if not (Sh.Value.equal current expected) then Sh.Value.zero
      else if Atomic.compare_and_set t.cell current desired then Sh.Value.one
      else begin
        Obs.Counter.incr m_cas_retries;
        retry_backoff attempts;
        go (attempts + 1)
      end
    in
    go 0

  (* test-and-set as a compare-and-set loop: the only transition is 0 -> 1,
     and once the cell holds 1 a TAS is a no-op returning 1 (linearized at
     the read) *)
  let tas t v =
    let rec go attempts =
      let current = Atomic.get t.cell in
      if Sh.Value.equal current Sh.Value.one then Sh.Value.one
      else if Atomic.compare_and_set t.cell current v then current
      else begin
        Obs.Counter.incr m_tas_retries;
        retry_backoff attempts;
        go (attempts + 1)
      end
    in
    go 0

  let apply t (action : Sh.Op.action) =
    if not (Sh.Obj_kind.supports t.kind action) then
      raise
        (Sh.Obj_kind.Illegal_operation
           (Fmt.str "%a does not support %a" Sh.Obj_kind.pp t.kind Sh.Op.pp
              { Sh.Op.obj = -1; action }));
    match t.kind, action with
    | _, Sh.Op.Read -> Atomic.get t.cell
    | (Sh.Obj_kind.Register _ | Sh.Obj_kind.Test_and_set_reset), Sh.Op.Write v
      ->
      Atomic.set t.cell v;
      Sh.Value.Unit
    | (Sh.Obj_kind.Swap_only _ | Sh.Obj_kind.Readable_swap _), Sh.Op.Swap v ->
      t.exchange t.cell v
    | ( (Sh.Obj_kind.Test_and_set | Sh.Obj_kind.Test_and_set_reset),
        Sh.Op.Swap v ) ->
      tas t v
    | Sh.Obj_kind.Compare_and_swap _, Sh.Op.Cas (expected, desired) ->
      structural_cas t ~expected ~desired
    | _ ->
      (* unreachable: [supports] admits exactly the cases above *)
      assert false
end

(* -------------------------------------------------------------- recording *)

(* a timestamped operation on object [obj]; the per-object histories are
   assembled after the domains join *)
type tagged_event = { obj : int; event : Linearize.Obj_history.event }

let assemble_histories ~num_objects per_process =
  let histories = Array.make num_objects [] in
  Array.iter
    (List.iter (fun { obj; event } -> histories.(obj) <- event :: histories.(obj)))
    per_process;
  Array.map
    (fun evs ->
      List.sort
        (fun (a : Linearize.Obj_history.event) b -> compare a.start b.start)
        evs)
    histories

let record_cell ~kind ~init ~threads ~ops_per_thread ?(seed = 0xCE11)
    ?exchange ~gen () =
  let cell = Cell.make ?exchange kind init in
  let clock = Atomic.make 0 in
  let now () = Atomic.fetch_and_add clock 1 in
  let results = Array.make threads [] in
  let worker thread =
    let rng = Random.State.make [| seed; thread |] in
    let events = ref [] in
    for step = 1 to ops_per_thread do
      let action = gen ~thread ~step rng in
      let start = now () in
      let response = Cell.apply cell action in
      let finish = now () in
      events :=
        { Linearize.Obj_history.thread; action; response; start; finish }
        :: !events
    done;
    results.(thread) <- List.rev !events
  in
  let domains =
    Array.init threads (fun t -> Domain.spawn (fun () -> worker t))
  in
  Array.iter Domain.join domains;
  Array.to_list results |> List.concat
  |> List.sort (fun (a : Linearize.Obj_history.event) b ->
         compare a.start b.start)

(* ------------------------------------------------------------ interpreter *)

module Make (P : Sh.Protocol.S) = struct
  type status = Decided | Crashed_injected | Timed_out | Faulted of exn

  let pp_status ppf = function
    | Decided -> Fmt.string ppf "decided"
    | Crashed_injected -> Fmt.string ppf "crashed(injected)"
    | Timed_out -> Fmt.string ppf "timed-out"
    | Faulted e -> Fmt.pf ppf "faulted(%s)" (Printexc.to_string e)

  type outcome = {
    decisions : int array;
    statuses : status array;
    ops : int array;
    backoffs : int array;
    elapsed : float;
    histories : Linearize.Obj_history.event list array;
    finals : P.state option array;
    mem : Sh.Value.t array;
  }

  let num_objects = Array.length P.objects

  (* the shared side of a run, separated from the processes so a supervisor
     can respawn crashed processes against the same memory: the atomic
     cells plus the logical timestamp source for recorded histories (which
     therefore stays totally ordered across respawn rounds) *)
  type arena = { cells : Cell.t array; tick : int Atomic.t }

  let make_arena ?exchange () =
    { cells =
        Array.init num_objects (fun i ->
            Cell.make ?exchange P.objects.(i) (P.init_object i));
      tick = Atomic.make 0
    }

  let arena_mem a = Array.map Cell.peek a.cells

  (* arena re-entry: a long-running service (lib/arena) reuses one arena
     for many rounds instead of allocating fresh cells per run.  The reset
     rewinds every cell to its declared initial value but leaves the
     logical clock alone — recorded timestamps must stay totally ordered
     across recycling, exactly as they do across supervisor respawns. *)
  let reset_arena a =
    Array.iteri
      (fun i (c : Cell.t) -> Atomic.set c.Cell.cell (P.init_object i))
      a.cells

  (* apply one protocol operation directly against an arena's cells — the
     execution primitive for drivers that interleave several process state
     machines on one domain (a service worker pulling rounds) rather than
     spawning a domain per process *)
  let arena_apply a (op : Sh.Op.t) =
    if op.Sh.Op.obj < 0 || op.Sh.Op.obj >= num_objects then
      invalid_arg (Fmt.str "Runtime.arena_apply %s: no object B%d" P.name op.Sh.Op.obj);
    Cell.apply a.cells.(op.Sh.Op.obj) op.Sh.Op.action

  let m_ops = Obs.counter "runtime.ops"
  let m_backoff_rounds = Obs.counter "runtime.backoff_rounds"
  let m_backoff_spins = Obs.counter "runtime.backoff_spins"
  let m_watchdog = Obs.counter "runtime.watchdog_firings"
  let m_crashes = Obs.counter "runtime.crashes_injected"
  let m_stall_spins = Obs.counter "runtime.stall_spins"
  let h_exchange = Obs.histogram "runtime.exchange_ns"
  let sp_run = Obs.span "runtime.run"

  (* the obstruction-free solo-window backoff curve: fully jittered so
     contending processes desynchronize, capped so nobody sleeps forever *)
  let solo_policy =
    Resil.Policy.Backoff.exponential ~base:2 ~cap:(1 lsl 16) ~jitter:true ()

  let run_round ~arena ~entries ?(seed = 0x5EED) ?(max_ops = 4_000_000)
      ?backoff_window ?(record = false) ?(crash_at = []) ?(stalls = [])
      ?deadline () =
    List.iter
      (fun (pid, _) ->
        if pid < 0 || pid >= P.n then
          invalid_arg (Fmt.str "Runtime.run %s: pid out of range" P.name))
      entries;
    if
      List.length (List.sort_uniq compare (List.map fst entries))
      <> List.length entries
    then invalid_arg (Fmt.str "Runtime.run %s: duplicate pid" P.name);
    List.iter
      (fun (pid, t) ->
        if pid < 0 || pid >= P.n || t < 0 then
          invalid_arg (Fmt.str "Runtime.run %s: bad crash point" P.name))
      crash_at;
    List.iter
      (fun (pid, t, dur) ->
        if pid < 0 || pid >= P.n || t < 0 || dur < 1 then
          invalid_arg (Fmt.str "Runtime.run %s: bad stall" P.name))
      stalls;
    (match deadline with
    | Some d when d <= 0. ->
      invalid_arg "Runtime.run: deadline must be positive"
    | _ -> ());
    let window =
      match backoff_window with
      | Some w ->
        if w < 1 then invalid_arg "Runtime.run: backoff_window must be >= 1";
        w
      | None -> 8 * (num_objects + 1)
    in
    Obs.Span.time sp_run @@ fun () ->
    let cells = arena.cells in
    let now () = Atomic.fetch_and_add arena.tick 1 in
    let decisions = Array.make P.n (-1) in
    let statuses = Array.make P.n Timed_out in
    let ops = Array.make P.n 0 in
    let backoffs = Array.make P.n 0 in
    let events = Array.make P.n [] in
    let finals = Array.make P.n None in
    (* the watchdog: whichever process first observes the monotonic
       deadline exceeded flips the flag, and everyone winds down with
       status [Timed_out] and partial data — no exception ever crosses a
       domain boundary for budget/deadline exhaustion.  Monotonic on
       purpose: an NTP step or a suspended laptop must neither fire the
       watchdog spuriously nor starve it. *)
    let give_up = Atomic.make false in
    let t0 = Resil.Clock.now_ns () in
    let expiry =
      match deadline with
      | None -> Resil.Policy.Deadline.never
      | Some d -> Resil.Policy.Deadline.after ~seconds:d
    in
    let over_deadline () =
      Atomic.get give_up
      ||
      if Resil.Policy.Deadline.expired expiry then begin
        if not (Atomic.exchange give_up true) then
          Obs.Counter.incr m_watchdog;
        true
      end
      else false
    in
    let process (pid, state0) =
      let rng = Random.State.make [| seed; pid |] in
      let state = ref state0 in
      let my_ops = ref 0 in
      let my_backoffs = ref 0 in
      let my_spins = ref 0 in
      let my_events = ref [] in
      let attempt = ref 0 in
      let until_backoff = ref window in
      let crash_point = List.assoc_opt pid crash_at in
      let my_stalls =
        List.filter_map
          (fun (p, t, dur) -> if p = pid then Some (t, dur) else None)
          stalls
      in
      let status = ref Decided in
      (try
         let running = ref true in
         while !running && P.decision !state = None do
           if Atomic.get give_up then begin
             status := Timed_out;
             running := false
           end
           else if
             match crash_point with Some t -> !my_ops >= t | None -> false
           then begin
             (* injected halting crash: the domain stops cold after its
                t-th operation, mid-protocol *)
             Obs.Counter.incr m_crashes;
             status := Crashed_injected;
             running := false
           end
           else if !my_ops >= max_ops then begin
             status := Timed_out;
             running := false
           end
           else begin
             (* injected stall: a forced preemption window before the
                process's t-th operation *)
             List.iter
               (fun (t, dur) ->
                 if t = !my_ops then begin
                   Obs.Counter.add m_stall_spins dur;
                   for _ = 1 to dur do
                     Domain.cpu_relax ()
                   done
                 end)
               my_stalls;
             let op = P.poised !state in
             let response =
               if record then begin
                 let start = now () in
                 let response =
                   Cell.apply cells.(op.Sh.Op.obj) op.Sh.Op.action
                 in
                 let finish = now () in
                 my_events :=
                   { obj = op.Sh.Op.obj
                   ; event =
                       { Linearize.Obj_history.thread = pid
                       ; action = op.Sh.Op.action
                       ; response
                       ; start
                       ; finish
                       }
                   }
                   :: !my_events;
                 response
               end
               else if Obs.enabled () then begin
                 (* per-operation latency: a monotonic timestamp pair per
                    op is paid only when metrics are on *)
                 let t0 = Resil.Clock.now_ns () in
                 let response =
                   Cell.apply cells.(op.Sh.Op.obj) op.Sh.Op.action
                 in
                 Obs.Histogram.observe h_exchange
                   (Int64.to_int (Resil.Clock.elapsed_ns ~since:t0));
                 response
               end
               else Cell.apply cells.(op.Sh.Op.obj) op.Sh.Op.action
             in
             incr my_ops;
             state := P.on_response !state response;
             if !my_ops land 255 = 0 && over_deadline () then ();
             decr until_backoff;
             if !until_backoff <= 0 && P.decision !state = None then begin
               (* jittered exponential backoff ([solo_policy]):
                  obstruction-free protocols need some process to
                  eventually run effectively alone.  [Backoff.spins] is
                  pure, so the spin tally stays process-local and is
                  flushed once at exit. *)
               incr my_backoffs;
               let spins =
                 Resil.Policy.Backoff.spins ~rng solo_policy
                   ~attempt:!attempt
               in
               incr attempt;
               my_spins := !my_spins + spins;
               for _ = 1 to spins do
                 Domain.cpu_relax ()
               done;
               until_backoff := window;
               ignore (over_deadline ())
             end
           end
         done;
         match P.decision !state with
         | Some d ->
           decisions.(pid) <- d;
           status := Decided
         | None -> ()
       with e -> status := Faulted e);
      (* partial data is always published, whatever ended the loop *)
      statuses.(pid) <- !status;
      ops.(pid) <- !my_ops;
      backoffs.(pid) <- !my_backoffs;
      events.(pid) <- !my_events;
      finals.(pid) <- Some !state;
      (* hot-loop tallies accumulated in local ints, flushed once here so
         the loop itself never touches a shared cache line for metrics *)
      Obs.Counter.add m_ops !my_ops;
      Obs.Counter.add m_backoff_rounds !my_backoffs;
      Obs.Counter.add m_backoff_spins !my_spins
    in
    let domains =
      List.map
        (fun entry -> fst entry, Domain.spawn (fun () -> process entry))
        entries
    in
    (* join *every* domain, even if one's join re-raises: a single faulted
       process must neither leak running siblings nor mask their results *)
    List.iter
      (fun (pid, d) ->
        match Domain.join d with
        | () -> ()
        | exception e -> statuses.(pid) <- Faulted e)
      domains;
    let elapsed = Resil.Clock.elapsed_s ~since:t0 in
    { decisions
    ; statuses
    ; ops
    ; backoffs
    ; elapsed
    ; histories = assemble_histories ~num_objects events
    ; finals
    ; mem = arena_mem arena
    }

  let run ~inputs ?seed ?max_ops ?backoff_window ?record ?exchange
      ?crash_at ?stalls ?deadline () =
    if Array.length inputs <> P.n then
      invalid_arg (Fmt.str "Runtime.run %s: expected %d inputs" P.name P.n);
    Array.iter
      (fun v ->
        if v < 0 || v >= P.num_inputs then
          invalid_arg (Fmt.str "Runtime.run %s: input out of range" P.name))
      inputs;
    let arena = make_arena ?exchange () in
    let entries =
      List.init P.n (fun pid -> pid, P.init ~pid ~input:inputs.(pid))
    in
    run_round ~arena ~entries ?seed ?max_ops ?backoff_window ?record
      ?crash_at ?stalls ?deadline ()

  let check ~inputs outcome =
    let undecided =
      Array.to_list outcome.statuses
      |> List.mapi (fun pid s -> pid, s)
      |> List.filter (fun (_, s) -> s <> Decided)
    in
    let distinct =
      Array.to_list outcome.decisions
      |> List.filter (fun v -> v >= 0)
      |> List.sort_uniq Stdlib.compare
    in
    if undecided <> [] then
      Error
        (Fmt.str "undecided processes: %a"
           Fmt.(
             list ~sep:(any ", ") (fun ppf (pid, s) ->
                 Fmt.pf ppf "p%d %a" pid pp_status s))
           undecided)
    else if List.length distinct > P.k then
      Error
        (Fmt.str "%d distinct values decided, k=%d" (List.length distinct)
           P.k)
    else if
      List.exists (fun v -> not (Array.exists (Int.equal v) inputs)) distinct
    then Error "a decided value is no process's input"
    else Ok ()

  let check_degraded ?bound ~inputs outcome =
    (* graceful-degradation contract: injected crashes are fine, every
       *surviving* process must decide, and the decided values still
       satisfy agreement — within [bound] (default [P.k]; a supervisor
       that respawned [c] crashed incarnations passes [k + c], Gafni's
       degraded set-agreement view) — and validity *)
    let bound = match bound with None -> P.k | Some b -> b in
    if bound < P.k then
      invalid_arg "Runtime.check_degraded: bound must be >= k";
    let bad =
      Array.to_list outcome.statuses
      |> List.mapi (fun pid s -> pid, s)
      |> List.filter (fun (_, s) ->
             match s with
             | Decided | Crashed_injected -> false
             | Timed_out | Faulted _ -> true)
    in
    let distinct =
      Array.to_list outcome.decisions
      |> List.filter (fun v -> v >= 0)
      |> List.sort_uniq Stdlib.compare
    in
    if bad <> [] then
      Error
        (Fmt.str "non-crash failures: %a"
           Fmt.(
             list ~sep:(any ", ") (fun ppf (pid, s) ->
                 Fmt.pf ppf "p%d %a" pid pp_status s))
           bad)
    else if List.length distinct > bound then
      Error
        (Fmt.str "%d distinct values decided, bound=%d (k=%d)"
           (List.length distinct) bound P.k)
    else if
      List.exists (fun v -> not (Array.exists (Int.equal v) inputs)) distinct
    then Error "a decided value is no process's input"
    else Ok ()

  let check_histories ?(max_events = 24) outcome =
    let checked = ref 0 in
    let skipped = ref 0 in
    let rec go i =
      if i >= num_objects then Ok (!checked, !skipped)
      else
        let history = outcome.histories.(i) in
        if List.length history > max_events then begin
          incr skipped;
          go (i + 1)
        end
        else begin
          incr checked;
          match
            Linearize.Obj_history.explain ~kind:P.objects.(i)
              ~init:(P.init_object i) history
          with
          | Ok _ -> go (i + 1)
          | Error e -> Error (Fmt.str "object B%d: %s" i e)
        end
    in
    go 0

  let check_hb ?max_events outcome =
    Analyze.Hb.check_histories ?max_events ~kinds:P.objects
      ~init:P.init_object outcome.histories
end
