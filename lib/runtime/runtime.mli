(** The generic multicore backend: execute any [Shmem.Protocol.S] state
    machine over {e real} atomic objects, one OCaml 5 domain per process.

    The simulator ([Shmem.Exec.Make]) and this runtime interpret the same
    protocol definition — [init] / [poised] / [on_response] / [decision] —
    so every algorithm in the repository runs on both backends from a single
    source of truth.  Each object kind of the model is realized by one
    concrete implementation over ['a Atomic.t]:

    - registers: [Atomic.get] / [Atomic.set]
    - swap and readable swap: [Atomic.exchange]
    - test-and-set, test-and-set-reset and compare-and-swap:
      [Atomic.compare_and_set] retry loops (CAS on the model's structured
      values compares {e structurally}; the loop re-reads until the
      physically witnessed value is the one it installs against)

    Obstruction-free protocols are only guaranteed to decide when some
    process eventually runs long enough alone, so the driver inserts
    randomized exponential backoff between operation windows — the same
    technique as the hand-optimized [Multicore.Swap_ksa_mc], which this
    runtime is differentially tested against.

    With [~record:true] every operation is timestamped through a global
    atomic clock and the per-object histories are returned in
    [Linearize.Obj_history] format for post-hoc linearizability checking. *)

(** One shared object realized over [Shmem.Value.t Atomic.t]. *)
module Cell : sig
  type t

  val make :
    ?exchange:(Shmem.Value.t Atomic.t -> Shmem.Value.t -> Shmem.Value.t) ->
    Shmem.Obj_kind.t ->
    Shmem.Value.t ->
    t
  (** [make kind init] is a fresh cell of the given kind holding [init].
      [?exchange] overrides the primitive used for [Swap] on (readable) swap
      objects — the mutation tests inject a deliberately torn read-pause-write
      exchange here; the default is [Atomic.exchange]. *)

  val kind : t -> Shmem.Obj_kind.t

  val peek : t -> Shmem.Value.t
  (** the current value, read without legality checks (debugging/assertions
      only: [Swap_only] objects have no readable counterpart in the model) *)

  val apply : t -> Shmem.Op.action -> Shmem.Value.t
  (** apply one operation atomically and return its response, per the kind's
      sequential specification ([Shmem.Obj_kind.apply]).
      @raise Shmem.Obj_kind.Illegal_operation if the kind does not support
      the action (same contract as the simulator) *)
end

val record_cell :
  kind:Shmem.Obj_kind.t ->
  init:Shmem.Value.t ->
  threads:int ->
  ops_per_thread:int ->
  ?seed:int ->
  ?exchange:(Shmem.Value.t Atomic.t -> Shmem.Value.t -> Shmem.Value.t) ->
  gen:(thread:int -> step:int -> Random.State.t -> Shmem.Op.action) ->
  unit ->
  Linearize.Obj_history.event list
(** run [threads] domains against one cell, each applying [ops_per_thread]
    operations drawn from [gen], and return the timestamped history (sorted
    by invocation time) for {!Linearize.Obj_history} checking.  [?exchange]
    as in {!Cell.make}. *)

module Make (P : Shmem.Protocol.S) : sig
  type status =
    | Decided  (** reached a decision *)
    | Crashed_injected  (** halted by an injected crash point *)
    | Timed_out  (** stopped by the op budget or the wall-clock deadline *)
    | Faulted of exn  (** the process body raised *)

  val pp_status : Format.formatter -> status -> unit

  type outcome = {
    decisions : int array;
        (** one per process; [-1] for a process that did not decide *)
    statuses : status array;  (** one per process *)
    ops : int array;  (** shared-memory operations per process *)
    backoffs : int array;  (** backoff rounds taken per process *)
    elapsed : float;  (** monotonic seconds, spawn to last join *)
    histories : Linearize.Obj_history.event list array;
        (** per object, sorted by invocation timestamp; all empty unless the
            run recorded *)
    finals : P.state option array;
        (** each participating process's final local state — the
            configuration half of a post-run property snapshot; [None] for
            pids that did not run (possible only under {!run_round}) *)
    mem : Shmem.Value.t array;
        (** snapshot of every cell after the last join — the memory half of
            a post-run property snapshot *)
  }

  type arena
  (** the shared side of a run, decoupled from the processes: the atomic
      cells plus the logical timestamp source used by recorded histories.
      A supervisor keeps one arena across respawn rounds, so respawned
      incarnations see the memory their predecessors left and recorded
      timestamps stay totally ordered across recovery boundaries. *)

  val make_arena :
    ?exchange:(Shmem.Value.t Atomic.t -> Shmem.Value.t -> Shmem.Value.t) ->
    unit ->
    arena
  (** fresh cells holding each object's initial value; [?exchange] as in
      {!Cell.make} *)

  val arena_mem : arena -> Shmem.Value.t array
  (** snapshot of every cell's current value (indexed by object id) — the
      memory snapshot handed to [Protocol.S.recovery] hooks *)

  val reset_arena : arena -> unit
  (** rewind every cell to its declared initial value, {e without}
      resetting the logical history clock — the recycling primitive for
      arena re-entry ([lib/arena] pools arenas across epochs instead of
      allocating fresh cells per round), with timestamps staying totally
      ordered across recycles just as across supervisor respawns.  The
      caller must guarantee quiescence: no process may be mid-operation on
      the arena when it is reset. *)

  val arena_apply : arena -> Shmem.Op.t -> Shmem.Value.t
  (** apply one poised operation against the arena's cells and return its
      response — the execution primitive for drivers that interleave
      several process state machines on a single domain (a service worker
      pulling whole rounds) instead of spawning one domain per process.
      @raise Invalid_argument on an out-of-range object id
      @raise Shmem.Obj_kind.Illegal_operation as {!Cell.apply} *)

  val run_round :
    arena:arena ->
    entries:(int * P.state) list ->
    ?seed:int ->
    ?max_ops:int ->
    ?backoff_window:int ->
    ?record:bool ->
    ?crash_at:(int * int) list ->
    ?stalls:(int * int * int) list ->
    ?deadline:float ->
    unit ->
    outcome
  (** run only the given [(pid, starting state)] processes — each on a
      fresh domain — against an existing arena.  This is {!run}'s engine
      and the supervisor's respawn primitive: round 0 runs every pid from
      [P.init]; later rounds run just the recovered pids from their
      [Protocol.S.recovery] states.  [crash_at]/[max_ops] count the {e
      round's} operations (each incarnation starts at 0).  In the returned
      outcome, pids not in [entries] have decision [-1], status
      [Timed_out], 0 ops and [finals] [None] — callers merge rounds.
      @raise Invalid_argument on out-of-range or duplicate pids *)

  val run :
    inputs:int array ->
    ?seed:int ->
    ?max_ops:int ->
    ?backoff_window:int ->
    ?record:bool ->
    ?exchange:(Shmem.Value.t Atomic.t -> Shmem.Value.t -> Shmem.Value.t) ->
    ?crash_at:(int * int) list ->
    ?stalls:(int * int * int) list ->
    ?deadline:float ->
    unit ->
    outcome
  (** spawn one domain per process and drive each through
      [init]/[poised]/[on_response] until [decision] returns.  After every
      [backoff_window] operations without a decision a process spins a
      random number of [Domain.cpu_relax] (exponentially growing bound, as
      in [Multicore.Swap_ksa_mc]) so that obstruction-free protocols obtain
      the solo windows they need; wait-free protocols decide within the
      first window and never back off.

      Degradation is graceful by construction: no exception ever crosses a
      domain boundary for budget or deadline exhaustion, every domain is
      always joined (even when one faults), and the outcome carries
      per-process [statuses] together with whatever partial data ([ops],
      [backoffs], recorded history prefixes) each process produced.

      @param seed per-run RNG seed (processes derive independent streams)
      @param max_ops per-process operation budget (default 4,000,000);
             exhausting it sets status [Timed_out] — for the protocols in
             this repository that indicates a livelock bug, not bad luck
      @param backoff_window default [8 * (num_objects + 1)]
      @param record collect timestamped histories (default false)
      @param crash_at [(pid, t)] fault injection: [pid] halts cold after its
             [t]-th operation (status [Crashed_injected]); obstruction-free
             protocols must let the survivors decide anyway
      @param stalls [(pid, t, dur)] fault injection: [pid] spins a forced
             preemption window of [dur] [Domain.cpu_relax] before its
             [t]-th operation
      @param deadline watchdog budget in seconds, measured on the
             {e monotonic} clock ([Resil.Clock] — immune to NTP steps and
             suspend/resume): once exceeded, every still-running process
             winds down with status [Timed_out] (checked every 256
             operations and at every backoff)
      @raise Invalid_argument on malformed [inputs] or fault points *)

  val check : inputs:int array -> outcome -> (unit, string) result
  (** every process decided, at most [P.k] distinct values (k-agreement),
      and every decided value is some process's input (validity) *)

  val check_degraded :
    ?bound:int -> inputs:int array -> outcome -> (unit, string) result
  (** the graceful-degradation contract for runs with injected crashes:
      every process either decided or was [Crashed_injected] (no timeouts,
      no faults), and the decided values satisfy agreement within [bound]
      (default [P.k]) plus validity.  A supervisor that let [c] crashed
      incarnations touch memory before respawning passes
      [~bound:(P.k + c)] — restart-from-initial is indistinguishable from
      [c] extra silent participants, so agreement degrades to
      [(k + c)]-set agreement (Gafni's restricted-runs view) and no
      further.
      @raise Invalid_argument if [bound < P.k] *)

  val check_histories :
    ?max_events:int -> outcome -> (int * int, string) result
  (** check every recorded per-object history against the object kind's
      sequential specification; returns [(checked, skipped)].  Histories
      longer than [max_events] (default 24) are skipped — the Wing & Gong
      search is exponential — and reported in [skipped] so a "passing"
      check that covered nothing is visible.  [Error] carries the first
      object whose history fails to linearize. *)

  val check_hb : ?max_events:int -> outcome -> (int * int, string) result
  (** run {!Analyze.Hb.check_histories} — the near-linear vector-clock
      happens-before race checker — over the same recorded histories.
      Sound but incomplete where {!check_histories} is complete but
      exponential: the default [max_events] is 65_536, so it covers the
      long histories the linearizability checker must skip.  Returns
      [(checked, skipped)]; [Error] carries the first object with a
      definite atomicity violation (torn exchange, lost update, duplicate
      swap consumption). *)
end
