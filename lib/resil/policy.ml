let m_backoff_spins = Obs.counter "resil.backoff.spins"
let m_breaker_trips = Obs.counter "resil.breaker.trips"
let m_retry_attempts = Obs.counter "resil.retry.attempts"

module Backoff = struct
  type t = { base : int; cap : int; jitter : bool }

  let exponential ?(base = 1) ?(cap = 1024) ?(jitter = false) () =
    if base < 1 then invalid_arg "Policy.Backoff: base must be >= 1";
    if cap < base then invalid_arg "Policy.Backoff: cap must be >= base";
    { base; cap; jitter }

  let bound t ~attempt =
    let attempt = if attempt < 0 then 0 else attempt in
    (* overflow-safe doubling: once the shifted base clears the cap (or the
       shift would overflow), the answer is the cap *)
    if attempt >= 62 || t.base lsl attempt >= t.cap || t.base lsl attempt < 0
    then t.cap
    else t.base lsl attempt

  let spins ?rng t ~attempt =
    let b = bound t ~attempt in
    match rng with
    | Some rng when t.jitter -> if b <= 1 then 0 else Random.State.int rng b
    | _ -> b

  let once ?rng t ~attempt =
    let s = spins ?rng t ~attempt in
    for _ = 1 to s do
      Domain.cpu_relax ()
    done;
    Obs.Counter.add m_backoff_spins s;
    s
end

module Deadline = struct
  (* absolute monotonic expiry in ns; [never] is the sentinel max *)
  type t = int64

  let never = Int64.max_int
  let is_never t = Int64.equal t never

  let after ~seconds =
    if seconds = infinity then never
    else if seconds <= 0. then
      invalid_arg "Policy.Deadline.after: seconds must be positive"
    else Int64.add (Clock.now_ns ()) (Clock.ns_of_s seconds)

  let of_expiry_ns ns = ns
  let expired t = (not (is_never t)) && Int64.compare (Clock.now_ns ()) t >= 0

  let remaining_s t =
    if is_never t then infinity
    else
      let d = Int64.sub t (Clock.now_ns ()) in
      if Int64.compare d 0L <= 0 then 0. else Clock.s_of_ns d
end

module Breaker = struct
  type t = { threshold : int; counts : int Atomic.t array }

  let create ~threshold ~n =
    if threshold < 1 then invalid_arg "Policy.Breaker: threshold must be >= 1";
    if n < 1 then invalid_arg "Policy.Breaker: n must be >= 1";
    { threshold; counts = Array.init n (fun _ -> Atomic.make 0) }

  let record_failure t ~pid =
    let c = 1 + Atomic.fetch_and_add t.counts.(pid) 1 in
    if c = t.threshold then Obs.Counter.incr m_breaker_trips

  let failures t ~pid = Atomic.get t.counts.(pid)
  let tripped t ~pid = Atomic.get t.counts.(pid) >= t.threshold

  let trips t =
    Array.fold_left
      (fun acc c -> if Atomic.get c >= t.threshold then acc + 1 else acc)
      0 t.counts

  let threshold t = t.threshold
end

module Retry = struct
  type budget = { max_attempts : int; deadline : Deadline.t }

  let budget ?(max_attempts = 3) ?(deadline = Deadline.never) () =
    if max_attempts < 1 then
      invalid_arg "Policy.Retry: max_attempts must be >= 1";
    { max_attempts; deadline }

  type error = Attempts_exhausted | Deadline_exceeded

  let pp_error ppf = function
    | Attempts_exhausted -> Fmt.string ppf "attempts exhausted"
    | Deadline_exceeded -> Fmt.string ppf "deadline exceeded"

  let run ?backoff ?rng budget f =
    let rec go attempt last =
      if Deadline.expired budget.deadline then
        Error (Deadline_exceeded, last)
      else if attempt >= budget.max_attempts then
        Error (Attempts_exhausted, last)
      else begin
        Obs.Counter.incr m_retry_attempts;
        match f ~attempt with
        | Ok v -> Ok v
        | Error e ->
          (match backoff with
          | Some b -> ignore (Backoff.once ?rng b ~attempt)
          | None -> ());
          go (attempt + 1) (Some e)
      end
    in
    go 0 None
end
