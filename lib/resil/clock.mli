(** Monotonic time.

    Every deadline, watchdog and latency measurement in the runtime and the
    supervisor reads this clock: a monotonic source ([CLOCK_MONOTONIC]) that
    NTP steps, leap seconds or a suspended laptop can never rewind, so a
    watchdog can neither fire spuriously nor starve.  Wall-clock reads
    ([Unix.gettimeofday]) are banned from deadline code paths by [srclint].

    Readings are nanoseconds from an arbitrary origin — only differences
    are meaningful. *)

val now_ns : unit -> int64
(** current monotonic reading, in nanoseconds from an arbitrary origin *)

val elapsed_ns : since:int64 -> int64
(** [now_ns () - since], clamped at 0 (defensive: the source is monotonic) *)

val elapsed_s : since:int64 -> float
(** [elapsed_ns] in seconds *)

val ns_of_s : float -> int64
(** seconds to nanoseconds, saturating on overflow/negatives to 0 *)

val s_of_ns : int64 -> float
