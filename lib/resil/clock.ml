(* bechamel's monotonic clock: a noalloc external over
   clock_gettime(CLOCK_MONOTONIC), safe to call from any domain *)
let now_ns () = Monotonic_clock.now ()

let elapsed_ns ~since =
  let d = Int64.sub (now_ns ()) since in
  if Int64.compare d 0L < 0 then 0L else d

let elapsed_s ~since = Int64.to_float (elapsed_ns ~since) *. 1e-9

let ns_of_s s =
  if s <= 0. then 0L
  else if s >= 9.2e9 (* ~2^63 ns *) then Int64.max_int
  else Int64.of_float (s *. 1e9)

let s_of_ns ns = Int64.to_float ns *. 1e-9
