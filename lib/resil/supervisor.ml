module Sh = Shmem

let m_respawns = Obs.counter "resil.respawns"
let m_rounds = Obs.counter "resil.supervisor.rounds"
let m_escalations = Obs.counter "resil.supervisor.escalations"
let h_recover = Obs.histogram "resil.recover_ns"

module Make (P : Sh.Protocol.S) = struct
  module R = Runtime.Make (P)
  module Pr = Prop.Make (P)

  type policy = {
    max_respawns : int;
    budget : Resil.Policy.Deadline.t;
    round_deadline : float option;
    pace : Resil.Policy.Backoff.t;
  }

  let default_policy () =
    { max_respawns = 2;
      budget = Resil.Policy.Deadline.never;
      round_deadline = Some 10.;
      pace = Resil.Policy.Backoff.exponential ~base:64 ~cap:4096 ~jitter:true ()
    }

  type report = {
    outcome : R.outcome;
    rounds : int;
    respawns : int array;
    crashed_incarnations : int;
    gave_up : int list;
    unanchored : int list;
    degraded_k : int;
    recover_ns : int64 list;
  }

  let rebuild ~arena ~inputs pid =
    match P.recovery with
    | Sh.Protocol.Restart -> P.init ~pid ~input:inputs.(pid)
    | Sh.Protocol.Resume f -> f ~pid ~input:inputs.(pid) (R.arena_mem arena)

  let supervise ~inputs ?(seed = 0x5EED) ?policy ?max_ops ?backoff_window
      ?record ?exchange ?(crash_plan = fun ~round:_ ~pid:_ -> None)
      ?(stalls = []) () =
    if Array.length inputs <> P.n then
      invalid_arg (Fmt.str "Supervisor %s: expected %d inputs" P.name P.n);
    Array.iter
      (fun v ->
        if v < 0 || v >= P.num_inputs then
          invalid_arg (Fmt.str "Supervisor %s: input out of range" P.name))
      inputs;
    let policy =
      match policy with Some p -> p | None -> default_policy ()
    in
    if policy.max_respawns < 0 then
      invalid_arg "Supervisor: max_respawns must be >= 0";
    let arena = R.make_arena ?exchange () in
    (* threshold = budget + 1: a pid respawns while its breaker has not
       tripped, so it is replaced at most [max_respawns] times *)
    let breaker =
      Resil.Policy.Breaker.create ~threshold:(policy.max_respawns + 1) ~n:P.n
    in
    let rng = Random.State.make [| seed; 0x9ACE |] in
    (* merged view, overlaid round by round: decisions/statuses/finals are
       the last incarnation's, ops/backoffs accumulate across incarnations,
       histories concatenate (the shared arena clock keeps their timestamps
       totally ordered, so one final sort restores invocation order) *)
    let decisions = Array.make P.n (-1) in
    let statuses = Array.make P.n R.Timed_out in
    let ops = Array.make P.n 0 in
    let last_ops = Array.make P.n 0 in
    let backoffs = Array.make P.n 0 in
    let finals = Array.make P.n None in
    let histories = Array.make (Array.length P.objects) [] in
    let elapsed = ref 0. in
    let respawns = Array.make P.n 0 in
    let rounds_run = ref 0 in
    let crashed_incarnations = ref 0 in
    let gave_up = ref [] in
    let recover_ns = ref [] in
    let rec loop ~round ~entries ~stalls =
      incr rounds_run;
      Obs.Counter.incr m_rounds;
      let pids = List.map fst entries in
      let crash_at =
        List.filter_map
          (fun pid ->
            Option.map (fun t -> pid, t) (crash_plan ~round ~pid))
          pids
      in
      let out =
        R.run_round ~arena ~entries ~seed:(seed + round) ?max_ops
          ?backoff_window ?record ~crash_at ~stalls
          ?deadline:policy.round_deadline ()
      in
      List.iter
        (fun pid ->
          decisions.(pid) <- out.R.decisions.(pid);
          statuses.(pid) <- out.R.statuses.(pid);
          ops.(pid) <- ops.(pid) + out.R.ops.(pid);
          last_ops.(pid) <- out.R.ops.(pid);
          backoffs.(pid) <- backoffs.(pid) + out.R.backoffs.(pid);
          finals.(pid) <- out.R.finals.(pid))
        pids;
      Array.iteri
        (fun i evs -> histories.(i) <- histories.(i) @ evs)
        out.R.histories;
      elapsed := !elapsed +. out.R.elapsed;
      let failed =
        List.filter (fun pid -> statuses.(pid) <> R.Decided) pids
      in
      if failed <> [] then begin
        let t_detect = Resil.Clock.now_ns () in
        List.iter
          (fun pid -> Resil.Policy.Breaker.record_failure breaker ~pid)
          failed;
        let budget_gone = Resil.Policy.Deadline.expired policy.budget in
        let revive, abandon =
          List.partition
            (fun pid ->
              (not budget_gone)
              && not (Resil.Policy.Breaker.tripped breaker ~pid))
            failed
        in
        List.iter
          (fun pid ->
            Obs.Counter.incr m_escalations;
            gave_up := pid :: !gave_up)
          abandon;
        if revive <> [] then begin
          (* every replaced incarnation that touched shared memory is at
             most one extra silent participant — conservative even under
             [Resume] (a looser agreement bound is still a bound) *)
          List.iter
            (fun pid ->
              if out.R.ops.(pid) > 0 then incr crashed_incarnations)
            revive;
          ignore (Resil.Policy.Backoff.once ~rng policy.pace ~attempt:round);
          let entries =
            List.map
              (fun pid ->
                respawns.(pid) <- respawns.(pid) + 1;
                Obs.Counter.incr m_respawns;
                pid, rebuild ~arena ~inputs pid)
              revive
          in
          loop ~round:(round + 1) ~entries ~stalls:[];
          (* recovery latency: failure detection to the recovery round's
             last join (the recursion has fully unwound by now, so this
             covers cascaded re-failures of the same incarnations too) *)
          let dt = Resil.Clock.elapsed_ns ~since:t_detect in
          List.iter
            (fun _ ->
              recover_ns := dt :: !recover_ns;
              Obs.Histogram.observe h_recover (Int64.to_int dt))
            revive
        end
      end
    in
    let entries =
      List.init P.n (fun pid -> pid, P.init ~pid ~input:inputs.(pid))
    in
    loop ~round:0 ~entries ~stalls;
    let outcome =
      { R.decisions
      ; statuses
      ; ops
      ; backoffs
      ; elapsed = !elapsed
      ; histories =
          Array.map
            (List.sort (fun (a : Linearize.Obj_history.event) b ->
                 compare a.start b.start))
            histories
      ; finals
      ; mem = R.arena_mem arena
      }
    in
    (* a [Restart] incarnation that never touched shared memory again has
       not overwritten or re-anchored the residue its predecessor left:
       config invariants relating its (reset) private state to memory are
       not sound on the final snapshot, so [check_props] abstains *)
    let unanchored =
      match P.recovery with
      | Sh.Protocol.Resume _ -> []
      | Sh.Protocol.Restart ->
        List.filter
          (fun pid -> respawns.(pid) > 0 && last_ops.(pid) = 0)
          (List.init P.n Fun.id)
    in
    { outcome
    ; rounds = !rounds_run
    ; respawns
    ; crashed_incarnations = !crashed_incarnations
    ; gave_up = List.sort_uniq compare !gave_up
    ; unanchored
    ; degraded_k = P.k + !crashed_incarnations
    ; recover_ns = !recover_ns
    }

  let check ~inputs report =
    R.check_degraded ~bound:report.degraded_k ~inputs report.outcome

  let check_props props report =
    let finals = report.outcome.R.finals in
    if report.unanchored <> [] || Array.exists Option.is_none finals then
      None
    else
      let snap =
        { Pr.states = Array.map Option.get finals;
          mem = report.outcome.R.mem
        }
      in
      List.fold_left
        (fun acc p ->
          match acc with
          | Some _ -> acc
          | None -> (
            match Pr.eval_config p snap with
            | None -> None
            | Some detail -> Some (Pr.name p, detail)))
        None props
end

(* ------------------------------------------------------------------ *)
(* Pool supervision: N worker slots, not one protocol round.

   [Make] supervises the processes of a single agreement instance; a
   service instead keeps a fixed pool of worker domains that each drive
   many rounds.  [Pool.run] owns that pool: it spawns one domain per
   slot, and when a worker body raises, the slot is respawned on a fresh
   domain with an incremented incarnation — paced by the same
   [Resil.Policy] pieces (a per-slot circuit breaker caps respawns).
   The supervising thread never blocks in [Domain.join] while workers
   are live: each worker publishes its own termination through a
   lock-free exchange channel, so a crash in slot 3 is healed even while
   slot 0 is still running.  [on_crash] runs on the supervising thread
   before the respawn — the hook through which a service re-queues
   whatever round the dead incarnation had in flight. *)

module Pool = struct
  let m_pool_respawns = Obs.counter "resil.pool.respawns"
  let m_pool_gave_up = Obs.counter "resil.pool.gave_up"

  type report = {
    respawns : int array;
    gave_up : int list;
    crashes : (int * int * string) list;
  }

  let run ~workers ?(max_respawns = 2) ?on_crash body =
    if workers < 1 then
      invalid_arg "Supervisor.Pool.run: workers must be >= 1";
    if max_respawns < 0 then
      invalid_arg "Supervisor.Pool.run: max_respawns must be >= 0";
    let breaker =
      Resil.Policy.Breaker.create ~threshold:(max_respawns + 1) ~n:workers
    in
    (* termination channel: workers push, the supervisor exchanges the
       whole list out — the consensus-from-swap idiom applied to its own
       plumbing *)
    let events : (int * int * exn option) list Atomic.t = Atomic.make [] in
    let push ev =
      let rec go () =
        let old = Atomic.get events in
        if not (Atomic.compare_and_set events old (ev :: old)) then go ()
      in
      go ()
    in
    let spawn slot incarnation =
      Domain.spawn (fun () ->
          match body ~slot ~incarnation with
          | () -> push (slot, incarnation, None)
          | exception e -> push (slot, incarnation, Some e))
    in
    let domains = ref [] in
    for s = 0 to workers - 1 do
      domains := spawn s 0 :: !domains
    done;
    let live = ref workers in
    let respawns = Array.make workers 0 in
    let gave_up = ref [] in
    let crashes = ref [] in
    while !live > 0 do
      match Atomic.exchange events [] with
      | [] -> Domain.cpu_relax ()
      | evs ->
        List.iter
          (fun (slot, incarnation, res) ->
            match res with
            | None -> decr live
            | Some e ->
              crashes := (slot, incarnation, Printexc.to_string e) :: !crashes;
              Resil.Policy.Breaker.record_failure breaker ~pid:slot;
              (match on_crash with
              | Some f -> f ~slot ~incarnation e
              | None -> ());
              if Resil.Policy.Breaker.tripped breaker ~pid:slot then begin
                Obs.Counter.incr m_pool_gave_up;
                gave_up := slot :: !gave_up;
                decr live
              end
              else begin
                respawns.(slot) <- respawns.(slot) + 1;
                Obs.Counter.incr m_pool_respawns;
                domains := spawn slot (incarnation + 1) :: !domains
              end)
          (List.rev evs)
    done;
    List.iter Domain.join !domains;
    { respawns;
      gave_up = List.rev !gave_up;
      crashes = List.rev !crashes
    }
end
