(** Supervision and crash-recovery over the multicore runtime.

    [Make (P)] watches a [Runtime.Make (P)] execution: round 0 runs every
    process from its initial state; after each round the supervisor
    inspects per-process statuses, rebuilds failed processes' states
    through [P.recovery] ([Restart] from scratch, or [Resume] from a
    snapshot of the shared arena), and respawns them on fresh OCaml 5
    domains against the {e same} arena — so respawned incarnations see the
    memory their predecessors left, and recorded history timestamps stay
    totally ordered across recovery boundaries (the HB checker and the
    linearizability checker run over the merged histories unchanged).

    Respawning is governed by a {!policy} built from [Resil.Policy]
    pieces: a per-process circuit breaker caps respawns, a monotonic
    deadline bounds the whole supervision, a backoff paces respawn rounds,
    and each round runs under the runtime's own monotonic watchdog.  When
    a process exhausts its breaker the supervisor {e escalates}: it stops
    respawning and degrades the agreement claim to
    [k' = k + crashed-incarnations]-set agreement, surfaced through
    [check] (which calls the runtime's generalized [check_degraded ~bound]
    — Gafni's restricted-runs view: each abandoned incarnation that
    touched memory is at most one extra silent participant). *)

module Make (P : Shmem.Protocol.S) : sig
  module R : module type of Runtime.Make (P)

  type policy = {
    max_respawns : int;
        (** per-process respawn budget (circuit-breaker threshold); 0
            disables recovery *)
    budget : Resil.Policy.Deadline.t;
        (** monotonic budget for the whole supervision, all rounds
            included; [Deadline.never] for none *)
    round_deadline : float option;
        (** per-round runtime watchdog, in seconds *)
    pace : Resil.Policy.Backoff.t;
        (** backoff between a failure and the respawn round *)
  }

  val default_policy : unit -> policy
  (** [max_respawns = 2], no global budget, 10 s round watchdog, capped
      exponential pacing.  A function: deadlines are absolute, so the
      policy must be built at supervision time. *)

  type report = {
    outcome : R.outcome;
        (** merged across rounds: last status/decision/final state per
            process, summed ops/backoffs/elapsed, histories concatenated
            and re-sorted on the shared arena clock *)
    rounds : int;  (** total rounds run (1 = no recovery needed) *)
    respawns : int array;  (** respawn count per process *)
    crashed_incarnations : int;
        (** replaced incarnations that performed at least one shared-memory
            operation — the degradation currency: each one is at most one
            extra silent participant *)
    gave_up : int list;
        (** pids abandoned with a non-[Decided] status: breaker tripped or
            budget exhausted *)
    unanchored : int list;
        (** pids whose final [Restart] incarnation never touched shared
            memory: the residue their predecessor left is neither
            overwritten nor re-anchored, so configuration invariants
            relating their (reset) private state to memory are not sound
            on the final snapshot — {!check_props} abstains when this is
            nonempty (always empty under [Resume]) *)
    degraded_k : int;  (** [P.k + crashed_incarnations] *)
    recover_ns : int64 list;
        (** per respawned incarnation: monotonic ns from failure detection
            to its recovery round's last join *)
  }

  val supervise :
    inputs:int array ->
    ?seed:int ->
    ?policy:policy ->
    ?max_ops:int ->
    ?backoff_window:int ->
    ?record:bool ->
    ?exchange:(Shmem.Value.t Atomic.t -> Shmem.Value.t -> Shmem.Value.t) ->
    ?crash_plan:(round:int -> pid:int -> int option) ->
    ?stalls:(int * int * int) list ->
    unit ->
    report
  (** run under supervision.  [crash_plan ~round ~pid] injects a crash
      point (op count within that round) for a participating pid — round 0
      covers the initial full run, later rounds the respawned pids only;
      chaos campaigns use it to kill-and-heal repeatedly.  [stalls] apply
      to round 0.  Obs: increments [resil.respawns] per respawn,
      [resil.supervisor.rounds] / [.escalations], and observes
      [resil.recover_ns] per recovered incarnation (time-to-recover —
      quantiles via [Obs.quantile]).
      @raise Invalid_argument on malformed [inputs] *)

  val check : inputs:int array -> report -> (unit, string) result
  (** the supervised degradation contract: every process either decided or
      was abandoned as crashed, decided values within
      [degraded_k]-agreement and validity —
      [R.check_degraded ~bound:report.degraded_k] *)

  val check_props :
    Prop.Make(P).t list -> report -> (string * string) option
  (** evaluate each property's per-configuration check on the merged final
      snapshot (final states + final memory) — the "prop pack still holds
      across recovery boundaries" oracle.  [Some (name, detail)] on the
      first violation; [None] when all pass, when some process never ran
      (no snapshot exists), or when [report.unanchored] is nonempty (the
      snapshot is not sound to judge — see {!report}).  Per-step checks
      cannot be replayed from a real multicore run; cross-boundary step
      soundness comes from [R.check_hb] / [R.check_histories] over the
      merged histories. *)
end

(** Supervision of a fixed {e worker pool} rather than one protocol
    round.

    A long-running service ([lib/arena]) keeps a pool of domains that
    each drive many agreement rounds; what needs supervising is the pool,
    not any single round.  [Pool.run] spawns one domain per slot and
    respawns a slot on a fresh domain (incarnation + 1) whenever its body
    raises, until the slot's circuit breaker trips ([max_respawns]
    failures).  Termination events flow through a lock-free exchange
    channel, so the supervisor heals any slot promptly instead of
    blocking in [Domain.join] on another; all domains are joined before
    [run] returns. *)
module Pool : sig
  type report = {
    respawns : int array;  (** per slot *)
    gave_up : int list;
        (** slots abandoned after the breaker tripped, in trip order *)
    crashes : (int * int * string) list;
        (** every [(slot, incarnation, exn)] caught, in arrival order *)
  }

  val run :
    workers:int ->
    ?max_respawns:int ->
    ?on_crash:(slot:int -> incarnation:int -> exn -> unit) ->
    (slot:int -> incarnation:int -> unit) ->
    report
  (** [run ~workers body] drives [body ~slot ~incarnation] on [workers]
      domains (slots [0 .. workers - 1], incarnation 0) and returns once
      every slot has either returned normally or been abandoned.
      [on_crash] runs on the supervising thread {e before} the respawn
      decision — the hook through which a service recovers whatever work
      the dead incarnation had in flight.  [max_respawns] (default 2) is
      the per-slot breaker budget; 0 disables respawning.  Metrics:
      [resil.pool.respawns], [resil.pool.gave_up].
      @raise Invalid_argument unless [workers >= 1] and
      [max_respawns >= 0] *)
end
