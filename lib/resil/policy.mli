(** Composable resilience policies: backoff, deadline budgets, circuit
    breakers, retry budgets.

    One audited implementation replaces the ad-hoc loops that used to live
    in [lib/runtime] (CAS-retry backoff, TAS-retry backoff, the
    obstruction-free solo-window backoff) and gives the supervisor its
    respawn discipline.  Everything here is allocation-free on the hot path
    and uses only the monotonic {!Clock} for time — never wall clock.

    All policies are values: build once, thread through, compose. *)

(** {1 Backoff} *)

module Backoff : sig
  type t
  (** a capped exponential backoff curve: attempt [a] yields a bound of
      [min cap (base * 2^a)] spins, optionally fully jittered (uniform in
      [\[0, bound)]) *)

  val exponential : ?base:int -> ?cap:int -> ?jitter:bool -> unit -> t
  (** defaults: [base = 1], [cap = 1024], [jitter = false].
      @raise Invalid_argument unless [1 <= base <= cap] *)

  val bound : t -> attempt:int -> int
  (** the (pre-jitter) spin bound for the given 0-based attempt *)

  val spins : ?rng:Random.State.t -> t -> attempt:int -> int
  (** number of spins to perform: the bound, or — when the policy is
      jittered and an [rng] is supplied — uniform in [\[0, bound)].
      Deterministic given the same [rng] state. *)

  val once : ?rng:Random.State.t -> t -> attempt:int -> int
  (** [spins] followed by that many [Domain.cpu_relax] calls; returns the
      spin count actually performed (for caller-side tallies) *)
end

(** {1 Deadlines} *)

module Deadline : sig
  type t
  (** an absolute expiry on the monotonic clock, or [never] *)

  val never : t

  val after : seconds:float -> t
  (** expires [seconds] from now ([never] when [seconds] is infinite).
      @raise Invalid_argument if [seconds <= 0] and finite *)

  val of_expiry_ns : int64 -> t
  (** an absolute monotonic expiry — lets several parties share one budget *)

  val expired : t -> bool
  val remaining_s : t -> float
  (** seconds left, 0 when expired, [infinity] for [never] *)

  val is_never : t -> bool
end

(** {1 Circuit breakers} *)

module Breaker : sig
  type t
  (** per-process trip counters: each pid accumulates failures; once a
      pid's count reaches the threshold its circuit is open (tripped) and
      stays open — callers must stop retrying that pid and escalate.
      Thread-safe (atomic counters). *)

  val create : threshold:int -> n:int -> t
  (** @raise Invalid_argument unless [threshold >= 1] and [n >= 1] *)

  val record_failure : t -> pid:int -> unit
  val failures : t -> pid:int -> int
  val tripped : t -> pid:int -> bool
  val trips : t -> int
  (** number of pids currently tripped *)

  val threshold : t -> int
end

(** {1 Retry budgets} *)

module Retry : sig
  type budget = { max_attempts : int; deadline : Deadline.t }

  val budget : ?max_attempts:int -> ?deadline:Deadline.t -> unit -> budget
  (** defaults: [max_attempts = 3], [deadline = Deadline.never].
      @raise Invalid_argument unless [max_attempts >= 1] *)

  type error = Attempts_exhausted | Deadline_exceeded

  val pp_error : Format.formatter -> error -> unit

  val run :
    ?backoff:Backoff.t ->
    ?rng:Random.State.t ->
    budget ->
    (attempt:int -> ('a, 'e) result) ->
    ('a, error * 'e option) result
  (** run the thunk until it succeeds or the budget is spent: at most
      [max_attempts] calls, none started past the deadline, with [backoff]
      spins between attempts.  The carried ['e] is the last attempt's
      error, or [None] when the deadline expired before the first call. *)
end
