(** Linearizability checking for the shared objects of the model.

    The multicore backends claim that OCaml's [Atomic] primitives implement
    the paper's objects.  This module substantiates that claim: it records
    concurrent histories of operations applied to a shared cell by real
    domains, then decides — with the Wing & Gong algorithm — whether the
    history is linearizable with respect to the object's sequential
    specification.

    {!Obj_history} is the generic engine: events carry a model action
    ([Shmem.Op.action]) and a model response ([Shmem.Value.t]), and legality
    is delegated to [Shmem.Obj_kind.apply], so one checker covers registers,
    swap objects, TAS and CAS alike.  [lib/runtime]'s generic interpreter
    records histories in exactly this format.  The int-valued swap-cell
    interface below (the original seed interface) is a façade over the
    generic engine.

    A deliberately non-atomic exchange (read, pause, write) produces
    non-linearizable histories under contention, which the checker
    detects — see the mutation tests. *)

(** Histories over any object kind of the model. *)
module Obj_history : sig
  type event = {
    thread : int;
    action : Shmem.Op.action;
    response : Shmem.Value.t;  (** the value the operation returned *)
    start : int;  (** global timestamp at invocation *)
    finish : int;  (** global timestamp at response *)
  }

  val pp_event : Format.formatter -> event -> unit

  val linearizable :
    kind:Shmem.Obj_kind.t -> init:Shmem.Value.t -> event list -> bool
  (** Wing & Gong search for a legal sequential ordering: an operation may
      be linearized next only if no other pending operation finished before
      it started, and its response must match [Obj_kind.apply] from the
      value the prefix produced.  Memoized on the (linearized-set, value)
      pair; exponential in the worst case, so keep histories small
      (≲ 24 events).
      @raise Invalid_argument on histories longer than 62 events *)

  val explain :
    kind:Shmem.Obj_kind.t ->
    init:Shmem.Value.t ->
    event list ->
    (event list, string) result
  (** like {!linearizable} but returns the witness order, or a message
      describing why none exists *)
end

type op = Read | Swap of int

type event = {
  thread : int;
  op : op;
  result : int;  (** the value returned (for both reads and swaps) *)
  start : int;  (** global timestamp at invocation *)
  finish : int;  (** global timestamp at response *)
}

type history = event list

val pp_event : Format.formatter -> event -> unit

val record :
  threads:int ->
  ops_per_thread:int ->
  ?seed:int ->
  exchange:(int Atomic.t -> int -> int) ->
  unit ->
  history
(** run [threads] domains, each applying [ops_per_thread] random operations
    (reads via [Atomic.get], swaps via [exchange]) to one shared cell
    initialised to [0].  Timestamps come from a global atomic counter
    incremented at every invocation and response, so an operation's
    linearization point lies in [[start, finish]]. *)

val linearizable : init:int -> history -> bool
(** {!Obj_history.linearizable} on an unbounded readable swap object over
    [Int] values *)

val explain : init:int -> history -> (event list, string) result
(** like {!linearizable} but returns the witness order, or a message
    describing why none exists *)
