(** Linearizability checking for readable swap objects.

    The multicore backend claims that [Atomic.exchange] implements the
    paper's [Swap] operation.  This module substantiates that claim: it
    records concurrent histories of operations applied to a shared cell by
    real domains, then decides — with the Wing & Gong algorithm — whether
    the history is linearizable with respect to the sequential swap-object
    specification (the object holds a value; [Swap v] returns the held
    value and replaces it with [v]; [Read] returns it).

    A deliberately non-atomic exchange (read, pause, write) produces
    non-linearizable histories under contention, which the checker
    detects — see the mutation tests. *)

type op = Read | Swap of int

type event = {
  thread : int;
  op : op;
  result : int;  (** the value returned (for both reads and swaps) *)
  start : int;  (** global timestamp at invocation *)
  finish : int;  (** global timestamp at response *)
}

type history = event list

val pp_event : Format.formatter -> event -> unit

val record :
  threads:int ->
  ops_per_thread:int ->
  ?seed:int ->
  exchange:(int Atomic.t -> int -> int) ->
  unit ->
  history
(** run [threads] domains, each applying [ops_per_thread] random operations
    (reads via [Atomic.get], swaps via [exchange]) to one shared cell
    initialised to [0].  Timestamps come from a global atomic counter
    incremented at every invocation and response, so an operation's
    linearization point lies in [[start, finish]]. *)

val linearizable : init:int -> history -> bool
(** Wing & Gong search for a legal sequential ordering: an operation may be
    linearized next only if no other pending operation finished before it
    started, and its result must match the specification.  Memoized on the
    (linearized-set, object-value) pair; exponential in the worst case, so
    keep histories small (≲ 24 events). *)

val explain : init:int -> history -> (event list, string) result
(** like {!linearizable} but returns the witness order, or a message
    describing why none exists *)
