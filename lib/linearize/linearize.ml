type op = Read | Swap of int

type event = {
  thread : int;
  op : op;
  result : int;
  start : int;
  finish : int;
}

type history = event list

let pp_event ppf e =
  let pp_op ppf = function
    | Read -> Fmt.string ppf "Read"
    | Swap v -> Fmt.pf ppf "Swap(%d)" v
  in
  Fmt.pf ppf "t%d %a -> %d @@ [%d,%d]" e.thread pp_op e.op e.result e.start
    e.finish

let record ~threads ~ops_per_thread ?(seed = 7) ~exchange () =
  let cell = Atomic.make 0 in
  let clock = Atomic.make 0 in
  let now () = Atomic.fetch_and_add clock 1 in
  let results = Array.make threads [] in
  let worker thread =
    let rng = Random.State.make [| seed; thread |] in
    let events = ref [] in
    for i = 1 to ops_per_thread do
      let op =
        if Random.State.bool rng then Read
        else Swap ((thread * ops_per_thread) + i)
      in
      let start = now () in
      let result =
        match op with
        | Read -> Atomic.get cell
        | Swap v -> exchange cell v
      in
      let finish = now () in
      events := { thread; op; result; start; finish } :: !events
    done;
    results.(thread) <- List.rev !events
  in
  let domains =
    Array.init threads (fun t -> Domain.spawn (fun () -> worker t))
  in
  Array.iter Domain.join domains;
  Array.to_list results |> List.concat

(* Wing & Gong: search for a permutation respecting real-time order in which
   every result matches the sequential swap-object specification. *)
let search ~init history =
  let events = Array.of_list history in
  let total = Array.length events in
  if total > 62 then invalid_arg "Linearize: history too long";
  let full = (1 lsl total) - 1 in
  (* memo on (linearized set, current value): a failed sub-search never
     needs revisiting *)
  let failed = Hashtbl.create 1024 in
  let rec go mask value acc =
    if mask = full then Some (List.rev acc)
    else if Hashtbl.mem failed (mask, value) then None
    else begin
      let result = ref None in
      let i = ref 0 in
      while !result = None && !i < total do
        let e = events.(!i) in
        let pending j = mask land (1 lsl j) = 0 in
        if pending !i then begin
          (* minimality: no pending operation finished before e started *)
          let minimal = ref true in
          for j = 0 to total - 1 do
            if pending j && j <> !i && events.(j).finish < e.start then
              minimal := false
          done;
          if !minimal then begin
            let legal, value' =
              match e.op with
              | Read -> e.result = value, value
              | Swap v -> e.result = value, v
            in
            if legal then
              result := go (mask lor (1 lsl !i)) value' (e :: acc)
          end
        end;
        incr i
      done;
      if !result = None then Hashtbl.replace failed (mask, value) ();
      !result
    end
  in
  go 0 init []

let linearizable ~init history = search ~init history <> None

let explain ~init history =
  match search ~init history with
  | Some order -> Ok order
  | None ->
    Error
      (Fmt.str
         "no linearization of %d events exists (first events: %a)"
         (List.length history)
         Fmt.(list ~sep:(any "; ") pp_event)
         (List.filteri (fun i _ -> i < 4) history))
