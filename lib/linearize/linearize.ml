(* Linearizability checking.  The generic Wing & Gong engine works over any
   shared-object kind of the model ([Obj_history]); the original int-valued
   swap-cell interface below is a thin façade over it. *)

module Obj_history = struct
  type event = {
    thread : int;
    action : Shmem.Op.action;
    response : Shmem.Value.t;
    start : int;
    finish : int;
  }

  let pp_action ppf (a : Shmem.Op.action) =
    match a with
    | Shmem.Op.Read -> Fmt.string ppf "Read"
    | Shmem.Op.Write v -> Fmt.pf ppf "Write(%a)" Shmem.Value.pp v
    | Shmem.Op.Swap v -> Fmt.pf ppf "Swap(%a)" Shmem.Value.pp v
    | Shmem.Op.Cas (e, d) ->
      Fmt.pf ppf "Cas(%a,%a)" Shmem.Value.pp e Shmem.Value.pp d

  let pp_event ppf e =
    Fmt.pf ppf "t%d %a -> %a @@ [%d,%d]" e.thread pp_action e.action
      Shmem.Value.pp e.response e.start e.finish

  (* Wing & Gong: search for a permutation respecting real-time order in
     which every response matches the kind's sequential specification
     ([Obj_kind.apply]). *)
  let search ~kind ~init history =
    let events = Array.of_list history in
    let total = Array.length events in
    if total > 62 then invalid_arg "Linearize: history too long";
    let full = (1 lsl total) - 1 in
    (* memo on (linearized set, current value): a failed sub-search never
       needs revisiting *)
    let failed = Hashtbl.create 1024 in
    let rec go mask value acc =
      if mask = full then Some (List.rev acc)
      else if Hashtbl.mem failed (mask, value) then None
      else begin
        let result = ref None in
        let i = ref 0 in
        while !result = None && !i < total do
          let e = events.(!i) in
          let pending j = mask land (1 lsl j) = 0 in
          if pending !i then begin
            (* minimality: no pending operation finished before e started *)
            let minimal = ref true in
            for j = 0 to total - 1 do
              if pending j && j <> !i && events.(j).finish < e.start then
                minimal := false
            done;
            if !minimal then begin
              match Shmem.Obj_kind.apply kind ~current:value e.action with
              | value', response when Shmem.Value.equal response e.response ->
                result := go (mask lor (1 lsl !i)) value' (e :: acc)
              | _ -> ()
              | exception Shmem.Obj_kind.Illegal_operation _ -> ()
            end
          end;
          incr i
        done;
        if !result = None then Hashtbl.replace failed (mask, value) ();
        !result
      end
    in
    go 0 init []

  let linearizable ~kind ~init history = search ~kind ~init history <> None

  let explain ~kind ~init history =
    match search ~kind ~init history with
    | Some order -> Ok order
    | None ->
      Error
        (Fmt.str "no linearization of %d events exists (first events: %a)"
           (List.length history)
           Fmt.(list ~sep:(any "; ") pp_event)
           (List.filteri (fun i _ -> i < 4) history))
end

type op = Read | Swap of int

type event = {
  thread : int;
  op : op;
  result : int;
  start : int;
  finish : int;
}

type history = event list

let pp_event ppf e =
  let pp_op ppf = function
    | Read -> Fmt.string ppf "Read"
    | Swap v -> Fmt.pf ppf "Swap(%d)" v
  in
  Fmt.pf ppf "t%d %a -> %d @@ [%d,%d]" e.thread pp_op e.op e.result e.start
    e.finish

let record ~threads ~ops_per_thread ?(seed = 7) ~exchange () =
  let cell = Atomic.make 0 in
  let clock = Atomic.make 0 in
  let now () = Atomic.fetch_and_add clock 1 in
  let results = Array.make threads [] in
  let worker thread =
    let rng = Random.State.make [| seed; thread |] in
    let events = ref [] in
    for i = 1 to ops_per_thread do
      let op =
        if Random.State.bool rng then Read
        else Swap ((thread * ops_per_thread) + i)
      in
      let start = now () in
      let result =
        match op with
        | Read -> Atomic.get cell
        | Swap v -> exchange cell v
      in
      let finish = now () in
      events := { thread; op; result; start; finish } :: !events
    done;
    results.(thread) <- List.rev !events
  in
  let domains =
    Array.init threads (fun t -> Domain.spawn (fun () -> worker t))
  in
  Array.iter Domain.join domains;
  Array.to_list results |> List.concat

(* the int-valued swap cell is a readable swap object over Int values *)
let int_kind = Shmem.Obj_kind.Readable_swap Shmem.Obj_kind.Unbounded

let to_generic e =
  { Obj_history.thread = e.thread
  ; action =
      (match e.op with
      | Read -> Shmem.Op.Read
      | Swap v -> Shmem.Op.Swap (Shmem.Value.Int v))
  ; response = Shmem.Value.Int e.result
  ; start = e.start
  ; finish = e.finish
  }

let linearizable ~init history =
  Obj_history.linearizable ~kind:int_kind ~init:(Shmem.Value.Int init)
    (List.map to_generic history)

let explain ~init history =
  (* generic events are created one per original event, so the witness maps
     back by physical identity *)
  let pairs = List.map (fun e -> to_generic e, e) history in
  match
    Obj_history.search ~kind:int_kind ~init:(Shmem.Value.Int init)
      (List.map fst pairs)
  with
  | Some order -> Ok (List.map (fun g -> List.assq g pairs) order)
  | None ->
    Error
      (Fmt.str "no linearization of %d events exists (first events: %a)"
         (List.length history)
         Fmt.(list ~sep:(any "; ") pp_event)
         (List.filteri (fun i _ -> i < 4) history))
