(** Fault injection and chaos campaigns for both execution backends.  See
    the interface for the model; the short version: benign faults (crash,
    stall) compile to scheduler combinators / runtime injection points,
    object faults (torn swap, lost update, stale read) substitute a
    deliberately non-atomic apply function into the simulator so the
    monitors and the atomicity check can prove they would catch a broken
    base object. *)

type fault =
  | Crash of int * int
  | Stall of int * int * int
  | Respawn of int * int
  | Torn_swap of int
  | Lost_update of int
  | Stale_read of int * int

type plan = fault list

let pp_fault ppf = function
  | Crash (p, t) -> Fmt.pf ppf "crash(p%d@%d)" p t
  | Stall (p, t, d) -> Fmt.pf ppf "stall(p%d@%d+%d)" p t d
  | Respawn (p, d) -> Fmt.pf ppf "respawn(p%d+%d)" p d
  | Torn_swap o -> Fmt.pf ppf "torn-swap(B%d)" o
  | Lost_update o -> Fmt.pf ppf "lost-update(B%d)" o
  | Stale_read (o, lag) -> Fmt.pf ppf "stale-read(B%d,lag=%d)" o lag

let pp_plan ppf = function
  | [] -> Fmt.string ppf "(no faults)"
  | plan -> Fmt.(list ~sep:(any ", ") pp_fault) ppf plan

let is_benign = function
  | Crash _ | Stall _ | Respawn _ -> true
  | Torn_swap _ | Lost_update _ | Stale_read _ -> false

let benign plan = List.for_all is_benign plan

let fault_object = function
  | Torn_swap o | Lost_update o | Stale_read (o, _) -> Some o
  | Crash _ | Stall _ | Respawn _ -> None

let validate ~n ~num_objects plan =
  let check_pid p = p >= 0 && p < n in
  let check_obj o = o >= 0 && o < num_objects in
  let rec go seen_objs seen_respawns = function
    | [] -> Ok ()
    | f :: rest -> (
      let bad fmt = Fmt.kstr (fun s -> Error s) fmt in
      match f with
      | Crash (p, t) ->
        if not (check_pid p) then bad "%a: pid out of range" pp_fault f
        else if t < 0 then bad "%a: negative time" pp_fault f
        else go seen_objs seen_respawns rest
      | Stall (p, t, d) ->
        if not (check_pid p) then bad "%a: pid out of range" pp_fault f
        else if t < 0 then bad "%a: negative time" pp_fault f
        else if d < 1 then bad "%a: duration must be positive" pp_fault f
        else go seen_objs seen_respawns rest
      | Respawn (p, d) ->
        if not (check_pid p) then bad "%a: pid out of range" pp_fault f
        else if d < 1 then bad "%a: delay must be positive" pp_fault f
        else if List.mem p seen_respawns then
          bad "%a: p%d already has a respawn" pp_fault f p
        else go seen_objs (p :: seen_respawns) rest
      | Torn_swap o | Lost_update o | Stale_read (o, _) ->
        if not (check_obj o) then bad "%a: object out of range" pp_fault f
        else if List.mem o seen_objs then
          bad "%a: object B%d already has a fault" pp_fault f o
        else if
          (match f with Stale_read (_, lag) -> lag < 1 | _ -> false)
        then bad "%a: lag must be positive" pp_fault f
        else go (o :: seen_objs) seen_respawns rest)
  in
  go [] [] plan

let crashes plan =
  List.filter_map (function Crash (p, t) -> Some (p, t) | _ -> None) plan

let stalls plan =
  List.filter_map
    (function Stall (p, t, d) -> Some (p, t, d) | _ -> None)
    plan

let respawns plan =
  List.filter_map (function Respawn (p, d) -> Some (p, d) | _ -> None) plan

(* ------------------------------------------------------------------ *)
(* ddmin (Zeller & Hildebrandt), plus a final single-deletion pass so   *)
(* the result is 1-minimal: removing any one element stops violating.   *)

let m_ddmin_probes = Obs.counter "fault.ddmin.probe_runs"
let h_shrink_pct = Obs.histogram "fault.shrink_pct"

let ddmin ~violates input =
  let violates input =
    Obs.Counter.incr m_ddmin_probes;
    violates input
  in
  if not (violates input) then
    invalid_arg "Fault.ddmin: the initial input does not violate";
  if violates [] then []
  else
  let partition lst n =
    let arr = Array.of_list lst in
    let len = Array.length arr in
    List.init n (fun i ->
        let lo = i * len / n and hi = (i + 1) * len / n in
        Array.to_list (Array.sub arr lo (hi - lo)))
    |> List.filter (fun chunk -> chunk <> [])
  in
  let rec go lst n =
    let len = List.length lst in
    if len <= 1 then lst
    else
      let chunks = partition lst n in
      match List.find_opt violates chunks with
      | Some chunk -> go chunk 2
      | None -> (
        let complements =
          (* with 2 chunks each complement is the other chunk, just tried *)
          if List.length chunks <= 2 then []
          else
            List.mapi
              (fun i _ ->
                List.concat (List.filteri (fun j _ -> j <> i) chunks))
              chunks
        in
        match List.find_opt violates complements with
        | Some compl -> go compl (max (n - 1) 2)
        | None -> if n < len then go lst (min (2 * n) len) else lst)
  in
  let rec one_minimal lst =
    let len = List.length lst in
    let rec try_delete i =
      if i >= len then lst
      else
        let candidate = List.filteri (fun j _ -> j <> i) lst in
        if candidate <> [] && violates candidate then one_minimal candidate
        else try_delete (i + 1)
    in
    if len <= 1 then lst else try_delete 0
  in
  one_minimal (go input 2)

(* ------------------------------------------------------------------ *)
(* Random plans *)

type kind = Crash_k | Stall_k | Respawn_k | Torn_k | Lost_k | Stale_k

(* [all_kinds] deliberately excludes [Respawn_k]: existing seeded campaigns
   and their recorded expectations stay bit-identical; recovery campaigns
   opt in through the ["recovery"] group or an explicit kind list *)
let all_kinds = [ Crash_k; Stall_k; Torn_k; Lost_k; Stale_k ]
let benign_kinds = [ Crash_k; Stall_k ]
let recovery_kinds = [ Crash_k; Stall_k; Respawn_k ]

let kind_to_string = function
  | Crash_k -> "crash"
  | Stall_k -> "stall"
  | Respawn_k -> "respawn"
  | Torn_k -> "torn"
  | Lost_k -> "lost"
  | Stale_k -> "stale"

let kind_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "crash" -> Ok Crash_k
  | "stall" -> Ok Stall_k
  | "respawn" -> Ok Respawn_k
  | "torn" | "torn-swap" -> Ok Torn_k
  | "lost" | "lost-update" -> Ok Lost_k
  | "stale" | "stale-read" -> Ok Stale_k
  | other ->
    Error
      (Fmt.str
         "unknown fault kind %S (crash, stall, respawn, torn, lost, stale)"
         other)

let kinds_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "all" -> Ok all_kinds
  | "benign" -> Ok benign_kinds
  | "recovery" -> Ok recovery_kinds
  | _ ->
    String.split_on_char ',' s
    |> List.filter (fun tok -> String.trim tok <> "")
    |> List.fold_left
         (fun acc tok ->
           match acc, kind_of_string tok with
           | Error e, _ -> Error e
           | Ok ks, Ok k -> Ok (k :: ks)
           | Ok _, Error e -> Error e)
         (Ok [])
    |> Result.map List.rev

let kind_is_benign = function
  | Crash_k | Stall_k | Respawn_k -> true
  | Torn_k | Lost_k | Stale_k -> false

let gen_plan ~rng ~n ~num_objects kinds =
  (* object faults target distinct objects: walk a shuffle *)
  let objs = Array.init num_objects Fun.id in
  for i = num_objects - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = objs.(i) in
    objs.(i) <- objs.(j);
    objs.(j) <- tmp
  done;
  let next_obj = ref 0 in
  let take_obj () =
    if !next_obj >= num_objects then None
    else (
      let o = objs.(!next_obj) in
      incr next_obj;
      Some o)
  in
  (* a left fold (not filter_map) so [Respawn_k] can see the crash drawn
     for an earlier kind; the RNG consumption order for the pre-existing
     kinds is unchanged, keeping historical seeds bit-identical *)
  List.fold_left
    (fun acc k ->
      if not (Random.State.bool rng) then acc
      else
        match k with
        | Crash_k ->
          Crash (Random.State.int rng n, Random.State.int rng 64) :: acc
        | Stall_k ->
          Stall
            ( Random.State.int rng n,
              Random.State.int rng 64,
              1 + Random.State.int rng 127 )
          :: acc
        | Respawn_k -> (
          (* heal an already-drawn crash when there is one; otherwise draw
             a fresh kill-and-heal pair *)
          let delay = 1 + Random.State.int rng 32 in
          match
            List.filter_map
              (function Crash (p, t) -> Some (p, t) | _ -> None)
              acc
          with
          | (p, _) :: _ -> Respawn (p, delay) :: acc
          | [] ->
            let p = Random.State.int rng n in
            let t = Random.State.int rng 64 in
            Respawn (p, delay) :: Crash (p, t) :: acc)
        | Torn_k -> (
          match take_obj () with
          | Some o -> Torn_swap o :: acc
          | None -> acc)
        | Lost_k -> (
          match take_obj () with
          | Some o -> Lost_update o :: acc
          | None -> acc)
        | Stale_k -> (
          match take_obj () with
          | Some o -> Stale_read (o, 1 + Random.State.int rng 3) :: acc
          | None -> acc))
    [] kinds
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Service-mode chaos *)

let service_kill_plan ~seed ~kill_every ?(max_point = 32)
    ?(max_incarnations = 2) () =
  if kill_every < 1 then
    invalid_arg "Fault.service_kill_plan: kill_every must be >= 1";
  if max_point < 1 then
    invalid_arg "Fault.service_kill_plan: max_point must be >= 1";
  if max_incarnations < 0 then
    invalid_arg "Fault.service_kill_plan: max_incarnations must be >= 0";
  fun ~round ~incarnation ->
    if incarnation >= max_incarnations then None
    else
      (* two independent draws from one mixed word: the low bits select
         roughly one round in [kill_every], the high bits place the kill
         point — deterministic in (seed, round, incarnation) alone, so
         the plan is identical regardless of which worker pulls the
         round *)
      let h =
        let module H = Shmem.Hashx in
        H.int (H.int (H.int H.seed seed) round) incarnation
      in
      if h mod kill_every <> 0 then None
      else Some ((h lsr 17) mod max_point)

(* ------------------------------------------------------------------ *)
(* Simulator campaigns *)

module Sim (P : Shmem.Protocol.S) = struct
  module E = Shmem.Exec.Make (P)
  module Pr = Prop.Make (P)
  open Shmem

  let snap (c : E.config) : Pr.snap = { Pr.states = c.E.states; mem = c.E.mem }

  let m_plans = Obs.counter "fault.sim.plans"
  let m_steps = Obs.counter "fault.sim.steps"
  let m_fired = Obs.counter "fault.sim.manifestations"
  let m_missed = Obs.counter "fault.sim.missed"
  let m_violations = Obs.counter "fault.sim.violations"
  let m_revivals = Obs.counter "fault.sim.revivals"
  let h_ttd = Obs.histogram "fault.time_to_detection"
  let sp_campaign = Obs.span "fault.sim.campaign"

  (* one counter per detection channel, so a campaign's snapshot shows
     where faults were caught (monitor vs protocol raise vs replay check) *)
  let m_detect cls = Obs.counter ("fault.detect." ^ cls)

  type report = {
    final : E.config;
    trace : Trace.t;
    outcome : E.outcome;
    fired : (fault * int) list;
    monitor : string option;
    prop_violation : (string * string) option;
    raised : (int * string) option;
    revived : (int * int) list;
    first_fired_step : int option;
  }

  let fired_total r = List.fold_left (fun acc (_, c) -> acc + c) 0 r.fired

  (* The injector holds the mutable per-object fault state and exposes an
     [E.apply_fn].  Semantics are engineered so that every manifestation
     ([fired]) is detectable by [check_atomic]:

     - torn swap: the swap's write is withheld only when it would change
       the value; if the next access to the object is by the owner, the
       write lands silently first (program order within a process is
       preserved, nothing observable happened); if it is by another
       process, that operation executes against the stale value and the
       delayed write lands after it, clobbering its write — a response or
       final-value divergence from any sequential order.
     - lost update: every second value-changing nontrivial operation's
       write evaporates (the response is still correct), so the sequential
       replay diverges at the next response on the object, or at the final
       value.
     - stale read: a lagged response is only substituted when it differs
       from the true one — an immediate replay mismatch. *)
  let injector plan =
    let num_objects = Array.length P.objects in
    let torn = Array.make num_objects false in
    let torn_pending = Array.make num_objects None in
    let lost = Array.make num_objects false in
    let lost_count = Array.make num_objects 0 in
    let stale = Array.make num_objects 0 in
    let hist = Array.make num_objects [] in
    List.iter
      (function
        | Torn_swap o -> torn.(o) <- true
        | Lost_update o -> lost.(o) <- true
        | Stale_read (o, lag) -> stale.(o) <- lag
        | Crash _ | Stall _ | Respawn _ -> ())
      plan;
    let counts : (fault, int) Hashtbl.t = Hashtbl.create 8 in
    let fire f =
      Hashtbl.replace counts f
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts f))
    in
    let apply ~pid ~op ~current =
      let o = op.Op.obj in
      if stale.(o) > 0 && hist.(o) = [] then hist.(o) <- [ current ];
      (* a pending torn write by this same process lands silently first *)
      let current =
        match torn_pending.(o) with
        | Some (owner, v) when owner = pid ->
          torn_pending.(o) <- None;
          v
        | _ -> current
      in
      let foreign_pending = torn_pending.(o) in
      let true_new, true_resp =
        Obj_kind.apply P.objects.(o) ~current op.Op.action
      in
      (* stale read: Read and the read half of Swap observe the past *)
      let resp =
        if stale.(o) > 0 then (
          match op.Op.action with
          | Op.Read | Op.Swap _ ->
            let h = hist.(o) in
            let lagged = List.nth h (min stale.(o) (List.length h - 1)) in
            if not (Value.equal lagged true_resp) then
              fire (Stale_read (o, stale.(o)));
            lagged
          | Op.Write _ | Op.Cas _ -> true_resp)
        else true_resp
      in
      (* lost update: every second value-changing write evaporates *)
      let new_value =
        if lost.(o) && Op.is_nontrivial op && not (Value.equal true_new current)
        then (
          lost_count.(o) <- lost_count.(o) + 1;
          if lost_count.(o) mod 2 = 0 then (
            fire (Lost_update o);
            current)
          else true_new)
        else true_new
      in
      (* torn swap: withhold the write half (only when it would change the
         value — tearing a value-preserving swap is unobservable) *)
      let new_value =
        match op.Op.action with
        | Op.Swap v
          when torn.(o)
               && Option.is_none foreign_pending
               && not (Value.equal v current) ->
          torn_pending.(o) <- Some (pid, v);
          current
        | _ -> new_value
      in
      (* a foreign torn write was pending across this operation: the
         delayed write lands now, clobbering whatever this one wrote *)
      let new_value =
        match foreign_pending with
        | Some (_, v) ->
          torn_pending.(o) <- None;
          fire (Torn_swap o);
          v
        | None -> new_value
      in
      if stale.(o) > 0 && not (Value.equal new_value current) then
        hist.(o) <- new_value :: hist.(o);
      new_value, resp
    in
    let fired () =
      List.filter_map
        (fun f ->
          match fault_object f with
          | None -> None
          | Some _ ->
            Some (f, Option.value ~default:0 (Hashtbl.find_opt counts f)))
        plan
    in
    apply, fired

  type violation =
    | Monitor of string
    | Property of string * string
    | Protocol_raise of string
    | Non_atomic of string
    | Agreement of string
    | Validity of string
    | Liveness of string

  let pp_violation ppf = function
    | Monitor d -> Fmt.pf ppf "monitor: %s" d
    | Property (name, d) -> Fmt.pf ppf "property %s: %s" name d
    | Protocol_raise d -> Fmt.pf ppf "protocol raised: %s" d
    | Non_atomic d -> Fmt.pf ppf "non-atomic: %s" d
    | Agreement d -> Fmt.pf ppf "agreement: %s" d
    | Validity d -> Fmt.pf ppf "validity: %s" d
    | Liveness d -> Fmt.pf ppf "liveness: %s" d

  let violation_class = function
    | Monitor _ -> "monitor"
    | Property (name, _) -> "prop:" ^ name
    | Protocol_raise _ -> "protocol-raise"
    | Non_atomic _ -> "non-atomic"
    | Agreement _ -> "agreement"
    | Validity _ -> "validity"
    | Liveness _ -> "liveness"

  type on_step = E.config -> int -> E.config -> string option

  let exec ?on_step ?(props = []) ?(revivals = []) ?revive ~apply ~fired
      ~sched ~max_steps c0 =
    let fired_total_now () =
      List.fold_left (fun acc (_, c) -> acc + c) 0 (fired ())
    in
    let first_fired = ref None in
    let note_fired i =
      if Option.is_none !first_fired && fired_total_now () > 0 then
        first_fired := Some i
    in
    let revived = ref [] in
    (* crash windows that end in a revival: (pid, dead_from, revive_at);
       the pid is unschedulable from [dead_from] until its entry is
       consumed by [apply_revival] *)
    let remaining = ref revivals in
    (* revived pids that have not yet taken their first post-revival step:
       while nonempty, the linear property monitor and the legacy on_step
       hook are suppressed and the monitor is re-anchored (Pr.start) once
       every revived pid has stepped.  Config invariants that relate a
       process's private state to residue the previous incarnation left in
       shared memory (e.g. the §4 totality invariant) would false-alarm on
       the reset state; one step by the new incarnation overwrites or
       re-anchors that residue, after which the invariants are sound
       again.  Step relations never see the discontinuity either way:
       before/after snapshots are taken around a single step. *)
    let pending = ref [] in
    let mon0, at_init = Pr.start props (snap c0) in
    let mon = ref mon0 in
    let finish ?monitor ?prop ?raised c rev_steps outcome =
      { final = c;
        trace = List.rev rev_steps;
        outcome;
        fired = fired ();
        monitor;
        prop_violation = prop;
        raised;
        revived = List.rev !revived;
        first_fired_step = !first_fired
      }
    in
    match at_init with
    | Some pv -> finish ~prop:pv c0 [] E.Stopped
    | None ->
      let dead_now i pid =
        List.exists (fun (p, from, _) -> p = pid && i >= from) !remaining
      in
      let apply_revival i c (pid, _, _) =
        remaining := List.filter (fun (p, _, _) -> p <> pid) !remaining;
        match P.decision c.E.states.(pid) with
        | Some _ -> c (* crashed after deciding: nothing to recover *)
        | None ->
          let st =
            match revive with
            | Some f -> f ~pid c
            | None -> invalid_arg "Fault.Sim: revival without a revive fn"
          in
          let states =
            Array.mapi (fun j s -> if j = pid then st else s) c.E.states
          in
          revived := (pid, i) :: !revived;
          pending := pid :: !pending;
          Obs.Counter.incr m_revivals;
          E.unsafe_config ~states ~mem:c.E.mem
      in
      let rec go c rev_steps i =
        (* due revivals rebuild the pid's state in place *)
        let due, _ = List.partition (fun (_, _, at) -> at <= i) !remaining in
        let c = List.fold_left (apply_revival i) c due in
        if i >= max_steps then finish c rev_steps E.Step_limit
        else
          match E.undecided c with
          | [] -> finish c rev_steps E.All_decided
          | enabled -> (
            let alive =
              List.filter (fun pid -> not (dead_now i pid)) enabled
            in
            (* every undecided pid sits inside a crash window that ends in
               a revival: pull the earliest revival forward so the run
               makes progress instead of wedging (step indexes only
               advance on executed steps, so waiting cannot help) *)
            let early =
              if alive <> [] then None
              else
                List.filter (fun (p, _, _) -> List.mem p enabled) !remaining
                |> List.fold_left
                     (fun best ((_, _, at) as r) ->
                       match best with
                       | Some (_, _, bat) when bat <= at -> best
                       | _ -> Some r)
                     None
            in
            match early with
            | Some r -> go (apply_revival i c r) rev_steps i
            | None when alive = [] -> finish c rev_steps E.Stopped
            | None -> (
              match sched ~step_index:i c alive with
              | None -> finish c rev_steps E.Stopped
              | Some pid -> (
                (* a protocol may legitimately raise when a fault hands it a
                   response it can prove impossible — that is a detection,
                   not a campaign crash *)
                match E.step_with ~apply c pid with
                | exception e ->
                  note_fired i;
                  finish ~raised:(pid, Printexc.to_string e) c rev_steps
                    E.Stopped
                | c', s -> (
                  note_fired i;
                  if !pending <> [] then begin
                    (* monitor suppressed across the recovery boundary *)
                    pending := List.filter (fun p -> p <> pid) !pending;
                    if !pending = [] then begin
                      match Pr.start props (snap c') with
                      | _, Some pv ->
                        finish ~prop:pv c' (s :: rev_steps) E.Stopped
                      | m, None ->
                        mon := m;
                        go c' (s :: rev_steps) (i + 1)
                    end
                    else go c' (s :: rev_steps) (i + 1)
                  end
                  else
                    match Option.bind on_step (fun f -> f c pid c') with
                    | Some detail ->
                      finish ~monitor:detail c' (s :: rev_steps) E.Stopped
                    | None -> (
                      match
                        Pr.advance !mon ~before:(snap c) ~pid
                          ~after:(snap c')
                      with
                      | Some pv ->
                        finish ~prop:pv c' (s :: rev_steps) E.Stopped
                      | None -> go c' (s :: rev_steps) (i + 1))))))
      in
      go c0 [] 0

  (* the crash/revival split: crashes whose pid also has a [Respawn] in
     the plan become finite windows handled inside [exec] (the pid is
     unschedulable from the crash step until the revival rebuilds its
     state via [P.recovery]); plain crashes keep compiling to the
     [E.with_crashes] combinator exactly as before *)
  let recovery_of plan ~inputs =
    let resp = respawns plan in
    let cr = crashes plan in
    let plain =
      List.filter (fun (p, _) -> not (List.mem_assoc p resp)) cr
    in
    let revivals =
      List.filter_map
        (fun (p, t) ->
          Option.map (fun d -> p, t, t + d) (List.assoc_opt p resp))
        cr
    in
    let revive ~pid (c : E.config) =
      match P.recovery with
      | Shmem.Protocol.Restart -> P.init ~pid ~input:inputs.(pid)
      | Shmem.Protocol.Resume f ->
        f ~pid ~input:inputs.(pid) (Array.copy c.E.mem)
    in
    plain, revivals, revive

  let run ?on_step ?props plan ~sched ~max_steps ~inputs =
    (match validate ~n:P.n ~num_objects:(Array.length P.objects) plan with
    | Ok () -> ()
    | Error e -> invalid_arg (Fmt.str "Fault.Sim.run: %s" e));
    let apply, fired = injector plan in
    let plain_crashes, revivals, revive = recovery_of plan ~inputs in
    let sched =
      E.with_crashes ~crash_at:plain_crashes
        (E.with_stalls ~stalls:(stalls plan) sched)
    in
    exec ?on_step ?props ~revivals ~revive ~apply ~fired ~sched ~max_steps
      (E.initial ~inputs)

  let run_schedule ?on_step ?props plan ~inputs pids =
    let apply, fired = injector plan in
    let _, revivals, revive = recovery_of plan ~inputs in
    let queue = ref pids in
    (* feed the explicit pid sequence; pids that have decided are skipped
       (deletions during shrinking leave other pids further along) *)
    let sched ~step_index:_ c enabled =
      ignore c;
      let rec next () =
        match !queue with
        | [] -> None
        | pid :: rest ->
          queue := rest;
          if List.mem pid enabled then Some pid else next ()
      in
      next ()
    in
    exec ?on_step ?props ~revivals ~revive ~apply ~fired ~sched
      ~max_steps:(List.length pids + 1)
      (E.initial ~inputs)

  let check_atomic r =
    let num_objects = Array.length P.objects in
    let vals = Array.init num_objects P.init_object in
    let rec go i = function
      | [] ->
        let rec final_values o =
          if o >= num_objects then Ok ()
          else if not (Value.equal vals.(o) (E.value r.final o)) then
            Error
              (Fmt.str
                 "object B%d finished at %a, but a sequential replay of its \
                  operations gives %a"
                 o Value.pp (E.value r.final o) Value.pp vals.(o))
          else final_values (o + 1)
        in
        final_values 0
      | { Trace.pid; op; resp } :: rest ->
        let o = op.Op.obj in
        let new_v, expected =
          Obj_kind.apply P.objects.(o) ~current:vals.(o) op.Op.action
        in
        if not (Value.equal expected resp) then
          Error
            (Fmt.str
               "step %d (p%d %a) responded %a, but the sequential \
                specification gives %a"
               i pid Op.pp op Value.pp resp Value.pp expected)
        else (
          vals.(o) <- new_v;
          go (i + 1) rest)
    in
    go 0 r.trace

  let detect ?bound ~inputs r =
    let bound = match bound with None -> P.k | Some b -> b in
    match r.monitor, r.prop_violation, r.raised with
    | Some d, _, _ -> Some (Monitor d)
    | None, Some (name, d), _ -> Some (Property (name, d))
    | None, None, Some (pid, d) ->
      Some (Protocol_raise (Fmt.str "p%d: %s" pid d))
    | None, None, None -> (
      match check_atomic r with
      | Error d -> Some (Non_atomic d)
      | Ok () ->
        if List.length (E.decided_values r.final) > bound then
          Some
            (Agreement
               (Fmt.str "%d distinct values decided (bound = %d, k = %d)"
                  (List.length (E.decided_values r.final))
                  bound P.k))
        else if not (E.check_validity ~inputs r.final) then
          Some
            (Validity
               (Fmt.str "decided values %a are not all inputs"
                  Fmt.(list ~sep:(any " ") int)
                  (E.decided_values r.final)))
        else None)

  let shrink ?on_step ?props ?bound plan ~inputs violation pids =
    let cls = violation_class violation in
    let violates pids =
      match
        detect ?bound ~inputs (run_schedule ?on_step ?props plan ~inputs pids)
      with
      | Some v -> String.equal (violation_class v) cls
      | None -> false
    in
    let shrunk = ddmin ~violates pids in
    if pids <> [] then
      Obs.Histogram.observe h_shrink_pct
        (100 * List.length shrunk / List.length pids);
    shrunk

  (* the pid sequence that reproduces a report under [run_schedule]: the
     trace's schedule, plus the step that raised (it never made the trace) *)
  let schedule_of r =
    Schedule.of_trace r.trace
    @ match r.raised with Some (pid, _) -> [ pid ] | None -> []

  type finding = {
    run : int;
    plan : plan;
    violation : violation;
    schedule : int list option;
  }

  type summary = {
    runs : int;
    steps : int;
    fired : int;
    revived : int;
    violations : finding list;
    detections : finding list;
    prop_detections : (string * int) list;
    missed : int;
  }

  let campaign ?on_step ?props ?inputs ?(burst = 32) ?(max_steps = 100_000)
      ~seed ~runs ~kinds () =
    Obs.Span.time sp_campaign @@ fun () ->
    let num_objects = Array.length P.objects in
    let violations = ref [] in
    let detections = ref [] in
    let missed = ref 0 in
    let steps = ref 0 in
    let fired = ref 0 in
    let revived_total = ref 0 in
    for i = 0 to runs - 1 do
      let rng = Random.State.make [| seed; i; 0x5EED |] in
      let plan = gen_plan ~rng ~n:P.n ~num_objects kinds in
      let inputs =
        match inputs with
        | Some inputs -> inputs
        | None ->
          Array.init P.n (fun _ -> Random.State.int rng P.num_inputs)
      in
      let sched = E.bursty rng ~burst in
      let r = run ?on_step ?props plan ~sched ~max_steps ~inputs in
      Obs.Counter.incr m_plans;
      if Obs.enabled () then begin
        Obs.Counter.add m_steps (Trace.length r.trace);
        Obs.Counter.add m_fired (fired_total r)
      end;
      steps := !steps + Trace.length r.trace;
      fired := !fired + fired_total r;
      revived_total := !revived_total + List.length r.revived;
      (* restart-recovery degrades agreement: each replaced incarnation is
         at most one extra silent participant (it may have left its value
         in shared memory before dying), so a run that revived [c]
         incarnations is held to [(k + c)]-set agreement, not [k] *)
      let bound =
        match P.recovery with
        | Shmem.Protocol.Resume _ -> P.k
        | Shmem.Protocol.Restart -> P.k + List.length r.revived
      in
      let record ~expected violation =
        (match r.first_fired_step with
        | Some f ->
          Obs.Histogram.observe h_ttd (max 0 (Trace.length r.trace - f))
        | None -> ());
        let schedule =
          match violation with
          | Liveness _ -> None
          | _ ->
            Some
              (shrink ?on_step ?props ~bound plan ~inputs violation
                 (schedule_of r))
        in
        let finding = { run = i; plan; violation; schedule } in
        if expected then begin
          Obs.Counter.incr (m_detect (violation_class violation));
          detections := finding :: !detections
        end
        else begin
          Obs.Counter.incr m_violations;
          violations := finding :: !violations
        end
      in
      match detect ~bound ~inputs r with
      | Some v -> record ~expected:(not (benign plan)) v
      | None ->
        if fired_total r > 0 then begin
          Obs.Counter.incr m_missed;
          incr missed
        end;
        (* liveness: every process that was not crashed must have decided —
           and a crashed pid that was revived counts as a survivor again
           (object faults may legitimately wedge a protocol — only benign
           plans carry the expectation) *)
        if benign plan then (
          let crashed =
            List.filter
              (fun pid -> not (List.mem_assoc pid r.revived))
              (List.map fst (crashes plan))
          in
          let stuck =
            List.filter
              (fun pid -> not (List.mem pid crashed))
              (E.undecided r.final)
          in
          match stuck with
          | [] -> ()
          | stuck ->
            record ~expected:false
              (Liveness
                 (Fmt.str "survivors %a undecided after %d steps (%s)"
                    Fmt.(list ~sep:(any " ") (fmt "p%d"))
                    stuck (Trace.length r.trace)
                    (match r.outcome with
                    | E.All_decided -> "all-decided"
                    | E.Stopped -> "stopped"
                    | E.Step_limit -> "step-limit"))))
    done;
    let violations = List.rev !violations in
    let detections = List.rev !detections in
    (* per-property tally over every finding, expected or not — the chaos
       summary's "which declared property caught what" line *)
    let prop_detections =
      let tally = Hashtbl.create 8 in
      List.iter
        (fun f ->
          match f.violation with
          | Property (name, _) ->
            Hashtbl.replace tally name
              (1 + Option.value ~default:0 (Hashtbl.find_opt tally name))
          | _ -> ())
        (detections @ violations);
      List.sort compare
        (Hashtbl.fold (fun name c acc -> (name, c) :: acc) tally [])
    in
    { runs;
      steps = !steps;
      fired = !fired;
      revived = !revived_total;
      violations;
      detections;
      prop_detections;
      missed = !missed
    }
end

(* ------------------------------------------------------------------ *)
(* Multicore campaigns *)

module Mc (P : Shmem.Protocol.S) = struct
  module R = Runtime.Make (P)
  module Sup = Supervisor.Make (P)

  let m_runs = Obs.counter "fault.mc.runs"
  let m_violations = Obs.counter "fault.mc.violations"
  let sp_campaign = Obs.span "fault.mc.campaign"

  type finding = { run : int; plan : plan; detail : string }

  type summary = {
    runs : int;
    crashes_injected : int;
    stalls_injected : int;
    respawns : int;
    rounds : int;
    total_ops : int;
    elapsed : float;
    hb_checked : int;
    hb_skipped : int;
    violations : finding list;
    prop_detections : (string * int) list;
  }

  let campaign ?inputs ?max_ops ?(deadline = 10.) ?(record = true)
      ?(oracles = []) ?(recover = false) ?(max_respawns = 2) ?(pack = [])
      ~seed ~runs ~kinds () =
    List.iter
      (fun k ->
        if not (kind_is_benign k) then
          invalid_arg
            (Fmt.str
               "Fault.Mc.campaign: %s faults only exist on the simulator"
               (kind_to_string k));
        if k = Respawn_k && not recover then
          invalid_arg
            "Fault.Mc.campaign: respawn faults need recover:true \
             (supervised campaigns)")
      kinds;
    Obs.Span.time sp_campaign @@ fun () ->
    let violations = ref [] in
    let crashes_injected = ref 0 in
    let stalls_injected = ref 0 in
    let respawns_total = ref 0 in
    let rounds_total = ref 0 in
    let total_ops = ref 0 in
    let elapsed = ref 0. in
    let hb_checked = ref 0 in
    let hb_skipped = ref 0 in
    let prop_tally = Hashtbl.create 8 in
    let violation i plan detail =
      Obs.Counter.incr m_violations;
      violations := { run = i; plan; detail } :: !violations
    in
    for i = 0 to runs - 1 do
      let rng = Random.State.make [| seed; i; 0xC4A05 |] in
      (* the supervisor owns respawning on this backend, so [Respawn_k]
         contributes no plan entry: crashes drive the kill, the
         supervisor the heal *)
      let plan =
        gen_plan ~rng ~n:P.n
          ~num_objects:(Array.length P.objects)
          (if recover then List.filter (fun k -> k <> Respawn_k) kinds
           else kinds)
      in
      let inputs =
        match inputs with
        | Some inputs -> inputs
        | None ->
          Array.init P.n (fun _ -> Random.State.int rng P.num_inputs)
      in
      let crash_at = crashes plan in
      let stalls = stalls plan in
      stalls_injected := !stalls_injected + List.length stalls;
      Obs.Counter.incr m_runs;
      if recover then begin
        (* supervised kill-and-heal: round 0 crashes per the plan, and
           every respawned incarnation is re-killed with probability 1/2
           at a small operation count, so a single campaign run exercises
           repeated crash-recovery cycles up to the breaker limit *)
        let crash_plan ~round ~pid =
          if round = 0 then (
            match List.assoc_opt pid crash_at with
            | Some t ->
              incr crashes_injected;
              Some t
            | None -> None)
          else if Random.State.bool rng then begin
            incr crashes_injected;
            Some (Random.State.int rng 32)
          end
          else None
        in
        let policy =
          { (Sup.default_policy ()) with
            max_respawns;
            round_deadline = Some deadline
          }
        in
        let report =
          Sup.supervise ~inputs ~seed:(seed + i) ~policy ?max_ops ~record
            ~crash_plan ~stalls ()
        in
        respawns_total :=
          !respawns_total + Array.fold_left ( + ) 0 report.Sup.respawns;
        rounds_total := !rounds_total + report.Sup.rounds;
        total_ops :=
          !total_ops + Array.fold_left ( + ) 0 report.Sup.outcome.Sup.R.ops;
        elapsed := !elapsed +. report.Sup.outcome.Sup.R.elapsed;
        (match Sup.check ~inputs report with
        | Ok () -> ()
        | Error detail -> violation i plan ("degraded: " ^ detail));
        (if record then
           match Sup.R.check_hb report.Sup.outcome with
           | Ok (c, s) ->
             hb_checked := !hb_checked + c;
             hb_skipped := !hb_skipped + s
           | Error detail ->
             violation i plan ("happens-before: " ^ detail));
        match Sup.check_props pack report with
        | None -> ()
        | Some (name, detail) ->
          Hashtbl.replace prop_tally name
            (1 + Option.value ~default:0 (Hashtbl.find_opt prop_tally name));
          violation i plan (Fmt.str "property %s: %s" name detail)
      end
      else begin
        crashes_injected := !crashes_injected + List.length crash_at;
        let outcome =
          R.run ~inputs ~seed:(seed + i) ?max_ops ~record ~crash_at ~stalls
            ~deadline ()
        in
        total_ops := !total_ops + Array.fold_left ( + ) 0 outcome.R.ops;
        elapsed := !elapsed +. outcome.R.elapsed;
        (match R.check_degraded ~inputs outcome with
        | Ok () -> ()
        | Error detail -> violation i plan detail);
        (* second detector: the vector-clock happens-before pass over the
           recorded histories — a crash/stall must never tear an atomic
           exchange, so any violation here is a runtime bug even when the
           degradation contract still holds *)
        (if record then
           match R.check_hb outcome with
           | Ok (c, s) ->
             hb_checked := !hb_checked + c;
             hb_skipped := !hb_skipped + s
           | Error detail ->
             violation i plan ("happens-before: " ^ detail));
        (* third detector: caller-supplied property oracles over the
           outcome (only benign faults run here, so any oracle failure is
           a bug) *)
        List.iter
          (fun (name, oracle) ->
            match oracle ~inputs outcome with
            | Ok () -> ()
            | Error detail ->
              Hashtbl.replace prop_tally name
                (1
                + Option.value ~default:0 (Hashtbl.find_opt prop_tally name));
              violation i plan (Fmt.str "property %s: %s" name detail))
          oracles
      end
    done;
    { runs;
      crashes_injected = !crashes_injected;
      stalls_injected = !stalls_injected;
      respawns = !respawns_total;
      rounds = !rounds_total;
      total_ops = !total_ops;
      elapsed = !elapsed;
      hb_checked = !hb_checked;
      hb_skipped = !hb_skipped;
      violations = List.rev !violations;
      prop_detections =
        List.sort compare
          (Hashtbl.fold (fun name c acc -> (name, c) :: acc) prop_tally [])
    }
end
