(** Fault injection and chaos campaigns for both execution backends.

    A {!plan} is a declarative list of faults.  The two {e benign} faults —
    crashes and stalls — model scheduler adversity that the paper's
    obstruction-free algorithms must tolerate by design: on the simulator
    they compile to the {!Shmem.Exec.Make.with_crashes} /
    [with_stalls] scheduler combinators, and on the multicore runtime to
    [Runtime.Make.run]'s [~crash_at] / [~stalls] injection points.  The
    three {e object} faults — torn swaps, lost updates and stale reads —
    deliberately break the atomicity the paper {e assumes} of its base
    objects (§2); they exist for negative testing: the §4 monitors and the
    sequential-replay atomicity check must flag every manifestation, which
    the campaign engine then shrinks to a locally-minimal schedule with
    {!ddmin}. *)

type fault =
  | Crash of int * int
      (** [Crash (pid, t)]: simulator — [pid] is never scheduled from
          global step [t] on; runtime — [pid] halts after its [t]-th
          operation *)
  | Stall of int * int * int
      (** [Stall (pid, t, dur)]: simulator — [pid] is not scheduled during
          global steps [t .. t+dur-1]; runtime — [pid] spins a forced
          preemption window of [dur] [Domain.cpu_relax] before its [t]-th
          operation *)
  | Respawn of int * int
      (** [Respawn (pid, delay)]: heal a [Crash (pid, t)] of the same plan
          — the pid's crash window becomes finite, ending [delay] steps
          after the crash, when a {e new incarnation} is rebuilt through
          [Protocol.S.recovery] ([Restart] from scratch, [Resume] from the
          current memory) and becomes schedulable again.  Simulator-only
          as a plan entry; on the multicore backend healing is the
          supervisor's job ({!Mc.campaign} [~recover:true]).  Without a
          matching crash the respawn is inert. *)
  | Torn_swap of int
      (** the object's swaps lose atomicity: the read half responds
          immediately but the write half is withheld until the next access
          to the object — if that access is by another process, the delayed
          write lands {e after} it, clobbering whatever it wrote
          (simulator only) *)
  | Lost_update of int
      (** every second value-changing nontrivial operation on the object
          silently evaporates — the response is still computed correctly,
          the write never lands (simulator only) *)
  | Stale_read of int * int
      (** [Stale_read (obj, lag)]: responses that embed a read (Read, the
          read half of Swap) observe the value the object held [lag]
          value-changes ago (simulator only) *)

type plan = fault list

val pp_fault : Format.formatter -> fault -> unit
val pp_plan : Format.formatter -> plan -> unit

val is_benign : fault -> bool
(** crashes and stalls are benign (tolerated by design); the object faults
    are not (they break the model's atomicity assumption) *)

val benign : plan -> bool
(** every fault in the plan is benign — the run is expected to satisfy all
    safety properties, and any violation is a genuine bug *)

val validate : n:int -> num_objects:int -> plan -> (unit, string) result
(** pids and objects in range, times non-negative, durations, delays and
    lags positive, at most one object fault per object and at most one
    respawn per pid *)

val crashes : plan -> (int * int) list
(** the [(pid, t)] crash points, in plan order — feed to
    [Exec.with_crashes ~crash_at] or [Runtime.Make.run ~crash_at] *)

val stalls : plan -> (int * int * int) list
(** the [(pid, t, dur)] stall windows, in plan order *)

val respawns : plan -> (int * int) list
(** the [(pid, delay)] respawn points, in plan order *)

val ddmin : violates:(int list -> bool) -> int list -> int list
(** [ddmin ~violates input] is a locally-minimal sublist of [input] that
    still satisfies [violates] (Zeller's delta debugging, with a final
    single-deletion pass guaranteeing 1-minimality: removing any one
    element of the result no longer violates).
    @raise Invalid_argument if [input] itself does not violate *)

(** {1 Random plans} *)

type kind = Crash_k | Stall_k | Respawn_k | Torn_k | Lost_k | Stale_k

val all_kinds : kind list
(** every kind {e except} [Respawn_k] — recovery campaigns opt in through
    {!recovery_kinds} or an explicit list, so historical seeded campaigns
    stay bit-identical *)

val benign_kinds : kind list
(** [Crash_k; Stall_k] *)

val recovery_kinds : kind list
(** [Crash_k; Stall_k; Respawn_k] — the kill-and-heal campaign mix
    (["recovery"] on the command line) *)

val kind_to_string : kind -> string
val kind_of_string : string -> (kind, string) result

val kinds_of_string : string -> (kind list, string) result
(** comma-separated kind names, e.g. ["crash,stall,torn"]; ["all"],
    ["benign"] and ["recovery"] are accepted as groups *)

val kind_is_benign : kind -> bool

val gen_plan :
  rng:Random.State.t -> n:int -> num_objects:int -> kind list -> plan
(** one random plan: each requested kind is included with probability 1/2
    with randomized parameters; object faults target distinct objects, and
    a drawn [Respawn_k] heals the plan's crash when one was drawn (pairing
    a fresh kill-and-heal otherwise).  Deterministic in [rng] and the kind
    list. *)

(** {1 Service-mode chaos}

    A long-running service (lib/arena) does not run one plan per execution:
    it serves an unbounded stream of rounds from a fixed worker pool, and
    the chaos overlay decides, round by round, whether the worker driving
    that round is killed mid-round (abandoning the round's undecided
    participants with their memory residue in place) and healed by
    adoption.  The overlay is a pure function of [(seed, round,
    incarnation)] so campaigns are bit-reproducible regardless of which
    worker happens to pull which round, or in which order. *)

val service_kill_plan :
  seed:int ->
  kill_every:int ->
  ?max_point:int ->
  ?max_incarnations:int ->
  unit ->
  round:int ->
  incarnation:int ->
  int option
(** [service_kill_plan ~seed ~kill_every ()] draws, for roughly one round
    in [kill_every], an operation count after which the incarnation
    driving that round is killed ([Some point] with [point] uniform in
    [0 .. max_point - 1], default [max_point = 32]).  Incarnations at or
    beyond [max_incarnations] (default 2) are never killed, so every round
    eventually completes — the kill-and-heal loop cannot starve a round
    forever, mirroring the supervisor's respawn budget.  Deterministic in
    [(seed, round, incarnation)] alone.
    @raise Invalid_argument unless [kill_every >= 1], [max_point >= 1] and
    [max_incarnations >= 0] *)

(** {1 Simulator campaigns} *)

module Sim (P : Shmem.Protocol.S) : sig
  module E : module type of Shmem.Exec.Make (P)

  type report = {
    final : E.config;
    trace : Shmem.Trace.t;
    outcome : E.outcome;
    fired : (fault * int) list;
        (** per object fault of the plan, how many times it manifested *)
    monitor : string option;
        (** detail of the first [on_step] violation; the run stops there *)
    prop_violation : (string * string) option;
        (** [(name, detail)] of the first declared property ([?props])
            violated by the run — checked through the property layer's
            linear monitor ({!Prop.Make.start} / [advance]): invariants at
            every configuration, step relations and safety automata across
            every transition.  The run stops there. *)
    raised : (int * string) option;
        (** a step by this pid raised (protocols may prove a faulty
            response impossible); the run stops there, the failing step is
            not in the trace *)
    revived : (int * int) list;
        (** [(pid, step)] revivals actually applied: the plan's
            [Respawn]s whose crash fired before the run ended and whose
            pid had not decided.  Crash-recovery degrades agreement: under
            [Restart] recovery each entry is at most one extra silent
            participant, so checks use bound [k + length revived]. *)
    first_fired_step : int option;
        (** the step index at which the first object-fault manifestation
            fired — the injection end of the time-to-detection window
            ([None] when nothing fired) *)
  }

  val schedule_of : report -> int list
  (** the pid sequence that reproduces the report under {!run_schedule}:
      the trace's schedule plus, when a step raised, the raising pid *)

  val fired_total : report -> int

  type violation =
    | Monitor of string  (** an [on_step] hook (§4 invariant monitor) fired *)
    | Property of string * string
        (** [(name, detail)]: a declared property ([?props]) was violated —
            any [Prop.Make(P).t] is a first-class detection oracle *)
    | Protocol_raise of string
        (** a step raised — the protocol itself rejected a response that no
            atomic execution can produce *)
    | Non_atomic of string
        (** the trace's per-object histories do not replay sequentially *)
    | Agreement of string  (** more than [P.k] distinct decided values *)
    | Validity of string  (** a decided value is nobody's input *)
    | Liveness of string
        (** survivors failed to decide (campaign-level check; benign plans
            only — object faults may legitimately livelock a protocol) *)

  val pp_violation : Format.formatter -> violation -> unit

  val violation_class : violation -> string
  (** ["monitor"], ["prop:<name>"], ["protocol-raise"], ["non-atomic"],
      ["agreement"], ["validity"] or ["liveness"] — shrinking preserves the
      class, so a [Property] violation shrinks against {e that} property *)

  type on_step = E.config -> int -> E.config -> string option
  (** invariant hook called after every step with (before, pid, after);
      returning [Some detail] stops the run and records a {!Monitor}
      violation.  The CLI wires [Core.Swap_ksa_monitor.check_step_snap]
      in here for Algorithm 1. *)

  val run :
    ?on_step:on_step ->
    ?props:Prop.Make(P).t list ->
    plan ->
    sched:E.scheduler ->
    max_steps:int ->
    inputs:int array ->
    report
  (** execute under the plan: crashes and stalls wrap the scheduler, object
      faults substitute the apply function ({!E.step_with}).  [props] are
      monitored along the run (after the legacy [on_step] hook); the first
      violation stops it and lands in [prop_violation].

      Crashes healed by a [Respawn] become finite windows: at the revival
      step the pid's state is rebuilt through [Protocol.S.recovery] and it
      is schedulable again (if every undecided pid is inside such a window,
      the earliest revival is pulled forward so the run cannot wedge).
      Across each recovery boundary the property monitor is {e suppressed}
      until every revived pid has taken one step, then re-anchored with a
      fresh [Prop.Make.start]: configuration invariants that relate a
      process's private state to residue its previous incarnation left in
      shared memory would false-alarm on the reset state, and one step by
      the new incarnation restores their soundness (see DESIGN.md,
      "Supervision & recovery"). *)

  val run_schedule :
    ?on_step:on_step ->
    ?props:Prop.Make(P).t list ->
    plan ->
    inputs:int array ->
    int list ->
    report
  (** replay an explicit pid sequence under the plan's {e object} faults
      (crashes and stalls are already baked into the sequence); pids that
      have decided are skipped.  This is the shrinker's oracle: same plan +
      same schedule is bit-reproducible. *)

  val check_atomic : report -> (unit, string) result
  (** replay every operation of the trace, per object, against the object
      kind's sequential specification ([Shmem.Obj_kind.apply]) from the
      initial value, checking each recorded response and the final value.
      Sound and complete here because simulator events are instantaneous,
      so the trace order {e is} the real-time order — no Wing & Gong search
      (and no event cap) needed. *)

  val detect : ?bound:int -> inputs:int array -> report -> violation option
  (** first safety violation of the report: monitor, then declared
      properties, then a protocol raise, then atomicity, then agreement —
      within [bound] distinct values, default [P.k]; recovery campaigns
      pass [k + revived] — then validity ([Liveness] is a campaign-level
      concern) *)

  val shrink :
    ?on_step:on_step ->
    ?props:Prop.Make(P).t list ->
    ?bound:int ->
    plan ->
    inputs:int array ->
    violation ->
    int list ->
    int list
  (** {!ddmin} the schedule down to a locally-minimal one that still
      produces a violation of the same {!violation_class} under the plan's
      object faults.
      @raise Invalid_argument if the schedule does not reproduce it *)

  type finding = {
    run : int;  (** campaign run index *)
    plan : plan;
    violation : violation;
    schedule : int list option;
        (** shrunk locally-minimal schedule ([None] for liveness — a
            shorter schedule trivially does not decide, so deletion-based
            shrinking is meaningless there) *)
  }

  type summary = {
    runs : int;
    steps : int;  (** total simulator steps across all runs *)
    fired : int;  (** total object-fault manifestations *)
    revived : int;  (** revivals applied across all runs *)
    violations : finding list;
        (** on {e benign} plans — always unexpected, any entry is a bug *)
    detections : finding list;
        (** on object-fault plans — the negative tests working as intended *)
    prop_detections : (string * int) list;
        (** findings per declared-property name (sorted), over detections
            and violations alike — which property caught what *)
    missed : int;
        (** runs where an object fault manifested yet nothing was detected;
            should be 0 for the protocols in this repository *)
  }

  val campaign :
    ?on_step:on_step ->
    ?props:Prop.Make(P).t list ->
    ?inputs:int array ->
    ?burst:int ->
    ?max_steps:int ->
    seed:int ->
    runs:int ->
    kinds:kind list ->
    unit ->
    summary
  (** [runs] randomized executions under random plans drawn from [kinds]
      (seeded: run [i] uses a RNG derived from [seed] and [i], so campaigns
      are bit-reproducible).  Inputs are randomized per run unless [?inputs]
      pins them.  [props] are monitored along every run and shrunk
      class-preservingly like any other violation; per-property counts land
      in [prop_detections].  Every safety violation and every detection is
      shrunk with {!shrink}.  Default [burst] 32 (bursty scheduler), default
      [max_steps] 100_000.

      Kill-and-heal campaigns (kinds including [Respawn_k], e.g.
      {!recovery_kinds}): runs that revived [c] incarnations under
      [Restart] recovery are checked against agreement bound [k + c]
      ([Resume] keeps [k]), revived pids count as survivors for the
      liveness check, and each detection on a run whose fault manifested
      feeds the [fault.time_to_detection] histogram (steps from first
      manifestation to the detecting step). *)
end

(** {1 Multicore campaigns}

    Only benign faults run on real domains — the object faults are
    simulator-side negative tests (real atomics cannot be torn from
    portable OCaml). *)

module Mc (P : Shmem.Protocol.S) : sig
  module R : module type of Runtime.Make (P)
  module Sup : module type of Supervisor.Make (P)

  type finding = { run : int; plan : plan; detail : string }

  type summary = {
    runs : int;
    crashes_injected : int;
        (** round-0 plan crashes plus, under [recover], the re-crashes
            injected into respawned incarnations *)
    stalls_injected : int;
    respawns : int;  (** supervisor respawns across all runs (recover only) *)
    rounds : int;  (** supervision rounds across all runs (recover only) *)
    total_ops : int;  (** shared-memory operations across all runs *)
    elapsed : float;  (** summed wall-clock seconds of the runs *)
    hb_checked : int;
        (** per-object histories passed through the happens-before race
            checker ({!Runtime.Make.check_hb}) across all recorded runs *)
    hb_skipped : int;  (** histories over the event cap, left unchecked *)
    violations : finding list;
        (** failures of the graceful-degradation contract
            ([Runtime.Make.check_degraded]), of the happens-before
            atomicity check (details prefixed ["happens-before:"]) or of a
            caller-supplied property oracle (details prefixed
            ["property <name>:"]): any entry is a bug *)
    prop_detections : (string * int) list;
        (** oracle failures per oracle name (sorted) *)
  }

  val campaign :
    ?inputs:int array ->
    ?max_ops:int ->
    ?deadline:float ->
    ?record:bool ->
    ?oracles:
      (string * (inputs:int array -> R.outcome -> (unit, string) result))
      list ->
    ?recover:bool ->
    ?max_respawns:int ->
    ?pack:Prop.Make(P).t list ->
    seed:int ->
    runs:int ->
    kinds:kind list ->
    unit ->
    summary
  (** seeded randomized crash/stall campaigns on the multicore runtime;
      each run is checked with [check_degraded] (every process decided or
      was crashed by injection; decided values satisfy k-agreement and
      validity), and — with [record] (default [true]) — its timestamped
      histories are checked by the vector-clock happens-before race
      detector ({!Runtime.Make.check_hb}).  [oracles] are named
      per-outcome property checks evaluated on every run (real domains
      expose no per-step hook, so declared properties enter here as outcome
      predicates); failures are violations, tallied per name in
      [prop_detections].  Default [deadline] 10s per run.

      [recover] (default [false]) runs every plan {e supervised}
      ({!Supervisor.Make.supervise}): crashed processes are respawned
      through [Protocol.S.recovery] on fresh domains against the same
      arena, each respawned incarnation is re-killed with probability 1/2
      (up to [max_respawns] per pid, default 2), and each run is checked
      with the supervisor's degraded contract ([Sup.check]: agreement
      within [k + crashed-incarnations]), the happens-before checker over
      the {e merged} cross-boundary histories, and the [pack] properties
      on the merged final snapshot ([Sup.check_props]).  [oracles] are
      skipped under [recover] (they are typed against single-round
      outcomes); [Respawn_k] in [kinds] is accepted and ignored — the
      supervisor owns healing on this backend.
      @raise Invalid_argument if [kinds] contains an object-fault kind, or
      [Respawn_k] without [recover] *)
end
