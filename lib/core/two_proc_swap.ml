module Sh = Shmem

let make ~m : (module Sh.Protocol.S) =
  if m < 2 then invalid_arg "Two_proc_swap.make: need m >= 2";
  (module struct
    let name = Fmt.str "two-proc-swap(m=%d)" m
    let n = 2
    let k = 1
    let num_inputs = m
    let objects = [| Sh.Obj_kind.Swap_only Sh.Obj_kind.Unbounded |]
    let init_object _ = Sh.Value.Bot
    let space_bound ~n:_ ~k:_ = 1

    type state = { pid : int; input : int; decided : int option }

    let init ~pid ~input = { pid; input; decided = None }
    let poised s = Sh.Op.swap 0 (Sh.Value.Int s.input)

    let on_response s resp =
      match resp with
      | Sh.Value.Bot -> { s with decided = Some s.input }
      | Sh.Value.Int w -> { s with decided = Some w }
      | v ->
        invalid_arg
          (Fmt.str "two-proc-swap: malformed object value %a" Sh.Value.pp v)

    let decision s = s.decided
    let equal_state s1 s2 =
      s1.pid = s2.pid && s1.input = s2.input
      && Option.equal Int.equal s1.decided s2.decided

    let hash_state s =
      Sh.Hashx.(opt int (int (int seed s.pid) s.input) s.decided)

    let pp_state ppf s =
      Fmt.pf ppf "{input=%d%a}" s.input
        Fmt.(option (fun ppf d -> Fmt.pf ppf " decided=%d" d))
        s.decided

    (* the pid is carried but never consulted: fully anonymous *)
    let symmetry =
      Sh.Protocol.Anonymous
        { canon_key =
            (fun s -> Sh.Hashx.(opt int (int seed s.input) s.decided))
        ; rename = (fun f s -> { s with pid = f s.pid })
        }
    let recovery = Sh.Protocol.Restart
  end)
