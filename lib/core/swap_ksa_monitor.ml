(** Executable monitors for the invariants §4 proves about Algorithm 1.

    Each check corresponds to a numbered statement of the paper and raises
    [Invariant_violation] if an execution falsifies it, so test suites and
    long random runs double as machine checks of the proofs' premises:

    - Observation 3: a process's local lap counter only grows (domination).
    - Observation 4 + line 16: on decision of [x], the deciding counter has
      [U.(x) >= 2] and leads every other component by at least 2.
    - Observation 1 (externally visible form): for each component [j], the
      maximum of [U.(j)] over all local lap counters and all object fields
      never increases by more than 1 in a single step (new laps are minted
      only by line 20, one at a time).
    - Lemma 8: from any reachable configuration, each undecided process
      decides within [8*(n-k)] solo steps.
    - [⟨V,p⟩]-totality (used by Observation 2 and Lemma 5) is exposed as a
      predicate for tests. *)

exception Invariant_violation of string

let fail fmt = Fmt.kstr (fun s -> raise (Invariant_violation s)) fmt

module Make (P : Swap_ksa.S) = struct
  module E = Shmem.Exec.Make (P)

  (* the raw material of a configuration, decoupled from any particular
     execution engine: the fault-injection interpreter (lib/fault) steps its
     own [Exec.Make] instance — a distinct [config] type — but produces the
     same states and memory *)
  type snapshot = { states : P.state array; mem : Shmem.Value.t array }

  let snap (c : E.config) = { states = c.E.states; mem = c.E.mem }

  let lap_of_value v =
    match v with
    | Shmem.Value.Pair (Shmem.Value.Ints u, _) -> u
    | _ -> fail "object holds malformed value %a" Shmem.Value.pp v

  (* componentwise max of U over all local lap counters and object fields *)
  let global_max_snap (s : snapshot) =
    let acc = Array.make P.num_inputs 0 in
    let absorb u = Array.iteri (fun j x -> acc.(j) <- max acc.(j) x) u in
    Array.iter (fun st -> absorb (P.laps st)) s.states;
    Array.iter (fun v -> absorb (lap_of_value v)) s.mem;
    acc

  let global_max c = global_max_snap (snap c)

  (* Is [c] a ⟨V,p⟩-total configuration?  (every object holds ⟨V,p⟩ and p's
     local lap counter is V) *)
  let total (c : E.config) =
    match c.E.mem.(0) with
    | Shmem.Value.Pair (Shmem.Value.Ints v, Shmem.Value.Pid p) ->
      let all_equal =
        Array.for_all (Shmem.Value.equal c.E.mem.(0)) c.E.mem
      in
      if
        all_equal
        && Array.for_all2 Int.equal (P.laps c.E.states.(p)) v
      then Some (Array.copy v, p)
      else None
    | _ -> None

  let check_step_snap (before : snapshot) pid (after : snapshot) =
    let u_before = P.laps before.states.(pid) in
    let u_after = P.laps after.states.(pid) in
    if not (Swap_ksa.dominates u_after u_before) then
      fail "Observation 3 violated: p%d's lap counter shrank" pid;
    (match P.decision after.states.(pid) with
    | Some x when P.decision before.states.(pid) = None ->
      if u_after.(x) < 2 then
        fail "Observation 4 violated: p%d decided %d with lap %d" pid x
          u_after.(x);
      Array.iteri
        (fun j uj ->
          if j <> x && u_after.(x) < uj + 2 then
            fail "line 16 violated: p%d decided %d without a 2-lap lead over %d"
              pid x j)
        u_after
    | _ -> ());
    let gmax_before = global_max_snap before
    and gmax_after = global_max_snap after in
    Array.iteri
      (fun j mb ->
        if gmax_after.(j) > mb + 1 then
          fail
            "Observation 1 violated: global max of component %d jumped %d -> %d"
            j mb gmax_after.(j))
      gmax_before

  let check_step before pid after = check_step_snap (snap before) pid (snap after)

  let check_solo_bound c =
    let bound = Swap_ksa.solo_step_bound ~n:P.n ~k:P.k in
    List.iter
      (fun pid ->
        match E.run_solo ~pid ~max_steps:bound c with
        | Some _ -> ()
        | None ->
          fail "Lemma 8 violated: p%d did not decide within %d solo steps" pid
            bound)
      (E.undecided c)

  (** Run under [sched], checking the per-step invariants throughout and the
      solo bound at every [solo_check_every]-th configuration (checking it at
      every configuration is quadratic; tests choose a small stride). *)
  let run_checked ?(solo_check_every = 0) ~sched ~max_steps c0 =
    let rec go c rev_steps i =
      if i >= max_steps then c, List.rev rev_steps, E.Step_limit
      else
        match E.undecided c with
        | [] -> c, List.rev rev_steps, E.All_decided
        | enabled -> (
          match sched ~step_index:i c enabled with
          | None -> c, List.rev rev_steps, E.Stopped
          | Some pid ->
            let c', s = E.step c pid in
            check_step c pid c';
            if solo_check_every > 0 && i mod solo_check_every = 0 then
              check_solo_bound c';
            go c' (s :: rev_steps) (i + 1))
    in
    go c0 [] 0
end
