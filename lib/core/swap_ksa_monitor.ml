(** Executable monitors for the invariants §4 proves about Algorithm 1.

    Since the [lib/prop] refactor each numbered statement of the paper is a
    {e declared property} ([Prop.Make(P).t]) — the checker evaluates them
    incrementally during exhaustive exploration, the fault injector uses
    them as detection oracles, and the legacy raising API
    ([check_step]/[check_solo_bound]/[run_checked]) survives as a thin
    façade that evaluates the same declarations and raises
    [Invariant_violation] on the first violation:

    - Observation 3 ([prop_lap_domination]): a process's local lap counter
      only grows (domination).
    - Observation 4 + line 16 ([prop_decide_lead]): on decision of [x], the
      deciding counter has [U.(x) >= 2] and leads every other component by
      at least 2.
    - Observation 1, externally visible form ([prop_max_lap_increment]):
      for each component [j], the maximum of [U.(j)] over all local lap
      counters and all object fields never increases by more than 1 in a
      single step (new laps are minted only by line 20, one at a time).
    - ⟨V,p⟩-totality, relaxed to domination ([prop_totality]; used by
      Observation 2 and Lemma 5): whenever every object holds the same
      ⟨V,p⟩ with a process id [p], [p]'s own lap counter dominates [V].
      (Exact equality — the [total] predicate — is {e not} invariant: [p]
      may advance its counter before re-installing; domination is, by
      Observation 3 plus the fact that only [p] installs ⟨·,p⟩.)
    - Lemma 8 ([prop_solo_bound]): from any reachable configuration, each
      undecided process decides within [8*(n-k)] solo steps. *)

exception Invariant_violation of string

let fail fmt = Fmt.kstr (fun s -> raise (Invariant_violation s)) fmt

module Make (P : Swap_ksa.S) = struct
  module E = Shmem.Exec.Make (P)
  module Pr = Prop.Make (P)

  (* the raw material of a configuration, decoupled from any particular
     execution engine: the fault-injection interpreter (lib/fault) steps its
     own [Exec.Make] instance — a distinct [config] type — but produces the
     same states and memory.  Identical to the property layer's snapshot
     type, so monitor snapshots feed [Prop] evaluation directly. *)
  type snapshot = Pr.snap = {
    states : P.state array;
    mem : Shmem.Value.t array;
  }

  let snap (c : E.config) = { states = c.E.states; mem = c.E.mem }

  let lap_of_value v =
    match v with
    | Shmem.Value.Pair (Shmem.Value.Ints u, _) -> u
    | _ -> fail "object holds malformed value %a" Shmem.Value.pp v

  (* componentwise max of U over all local lap counters and object fields *)
  let global_max_snap (s : snapshot) =
    let acc = Array.make P.num_inputs 0 in
    let absorb u = Array.iteri (fun j x -> acc.(j) <- max acc.(j) x) u in
    Array.iter (fun st -> absorb (P.laps st)) s.states;
    Array.iter (fun v -> absorb (lap_of_value v)) s.mem;
    acc

  let global_max c = global_max_snap (snap c)

  (* Is [c] a ⟨V,p⟩-total configuration?  (every object holds ⟨V,p⟩ and p's
     local lap counter is V) *)
  let total (c : E.config) =
    match c.E.mem.(0) with
    | Shmem.Value.Pair (Shmem.Value.Ints v, Shmem.Value.Pid p) ->
      let all_equal =
        Array.for_all (Shmem.Value.equal c.E.mem.(0)) c.E.mem
      in
      if
        all_equal
        && Array.for_all2 Int.equal (P.laps c.E.states.(p)) v
      then Some (Array.copy v, p)
      else None
    | _ -> None

  (* The per-step checks, declaratively: [Some detail] = violated.
     Malformed object values (possible only under fault injection) surface
     as a violation of whichever check observes them. *)

  (* componentwise via [laps_get]: this runs on every explored edge, so
     the defensive copies of [P.laps] are avoided *)
  let check_obs3 ~before ~pid ~after =
    let sb = before.states.(pid) and sa = after.states.(pid) in
    let rec grows j =
      j >= P.num_inputs
      || (P.laps_get sa j >= P.laps_get sb j && grows (j + 1))
    in
    if grows 0 then None
    else Some (Fmt.str "Observation 3 violated: p%d's lap counter shrank" pid)

  let check_decide ~before ~pid ~after =
    match P.decision after.states.(pid) with
    | Some x when Option.is_none (P.decision before.states.(pid)) ->
      let u_after = P.laps after.states.(pid) in
      if u_after.(x) < 2 then
        Some
          (Fmt.str "Observation 4 violated: p%d decided %d with lap %d" pid x
             u_after.(x))
      else
        let rec lead j =
          if j >= Array.length u_after then None
          else if j <> x && u_after.(x) < u_after.(j) + 2 then
            Some
              (Fmt.str
                 "line 16 violated: p%d decided %d without a 2-lap lead over %d"
                 pid x j)
          else lead (j + 1)
        in
        lead 0
    | _ -> None

  (* A step changes only [pid]'s local state and the object it operated
     on; a value at a physically unchanged site contributes equally to
     both global maxima, so only the changed sites can raise the max.
     Fast path: if every changed site stays within +1 of its own previous
     contribution, then gmax_after <= gmax_before + 1 componentwise and
     Observation 1 holds — no O(n) rescan.  Only a suspicious jump at a
     changed site (never on Algorithm 1; possible in planted mutants and
     under fault injection) triggers the exact two-scan comparison. *)
  let check_obs1 ~before ~pid ~after =
    match
      let m = P.num_inputs in
      let suspicious = ref false in
      let bump (new_u : int array) (old_u : int array) =
        for j = 0 to m - 1 do
          if new_u.(j) > old_u.(j) + 1 then suspicious := true
        done
      in
      let sb = before.states.(pid) and sa = after.states.(pid) in
      for j = 0 to m - 1 do
        if P.laps_get sa j > P.laps_get sb j + 1 then suspicious := true
      done;
      Array.iteri
        (fun i v_after ->
          if v_after != before.mem.(i) then
            bump (lap_of_value v_after) (lap_of_value before.mem.(i)))
        after.mem;
      if not !suspicious then None
      else
        let gmax_before = global_max_snap before
        and gmax_after = global_max_snap after in
        let rec jumped j =
          if j >= Array.length gmax_before then None
          else if gmax_after.(j) > gmax_before.(j) + 1 then
            Some
              (Fmt.str
                 "Observation 1 violated: global max of component %d jumped %d -> %d"
                 j gmax_before.(j) gmax_after.(j))
          else jumped (j + 1)
        in
        jumped 0
    with
    | r -> r
    | exception Invariant_violation m -> Some m

  (* ------------------------------------------- the declared properties *)

  let prop_lap_domination =
    Pr.step_rel ~name:"lap-domination"
      ~desc:"Observation 3: a process's lap counter only grows" check_obs3

  let prop_decide_lead =
    Pr.step_rel ~name:"decide-lead-by-2"
      ~desc:
        "Observation 4 + line 16: deciding x requires lap >= 2 on x and a \
         2-lap lead over every other component"
      check_decide

  let prop_max_lap_increment =
    Pr.step_rel ~name:"max-lap-increment"
      ~desc:
        "Observation 1: the global max of each lap component grows by at \
         most 1 per step"
      check_obs1

  let prop_totality =
    Pr.invariant ~name:"total-config-domination"
      ~desc:
        "⟨V,p⟩-totality (Observation 2 / Lemma 5 premise): when every \
         object holds the same ⟨V,p⟩, p's lap counter dominates V"
      (fun s ->
        match s.mem.(0) with
        | Shmem.Value.Pair (Shmem.Value.Ints v, Shmem.Value.Pid p)
          when p >= 0 && p < P.n ->
          if
            Array.for_all (Shmem.Value.equal s.mem.(0)) s.mem
            && not (Swap_ksa.dominates (P.laps s.states.(p)) v)
          then
            Some
              (Fmt.str
                 "total configuration ⟨V,p%d⟩ but p%d's lap counter does \
                  not dominate V"
                 p p)
          else None
        | _ -> None)

  let solo_bound = Swap_ksa.solo_step_bound ~n:P.n ~k:P.k

  let default_solo_ok ~pid (s : snapshot) =
    match
      E.run_solo ~pid ~max_steps:solo_bound
        (E.unsafe_config ~states:s.states ~mem:s.mem)
    with
    | Some _ -> true
    | None -> false

  let prop_solo_bound ?(solo_ok = default_solo_ok) () =
    Pr.invariant ~name:"solo-bound"
      ~desc:
        (Fmt.str
           "Lemma 8: every undecided process decides within %d solo steps"
           solo_bound)
      (fun s ->
        List.find_map
          (fun pid ->
            if solo_ok ~pid s then None
            else
              Some
                (Fmt.str
                   "Lemma 8 violated: p%d did not decide within %d solo steps"
                   pid solo_bound))
          (Pr.undecided s))

  let step_props =
    [ prop_lap_domination; prop_decide_lead; prop_max_lap_increment ]

  let online_props = step_props @ [ prop_totality ]

  let props ?solo_ok () = online_props @ [ prop_solo_bound ?solo_ok () ]

  (* --------------------------------------- legacy raising façade *)

  let check_step_snap before pid after =
    List.iter
      (fun p ->
        match Pr.eval_step p ~before ~pid ~after with
        | None -> ()
        | Some detail -> raise (Invariant_violation detail))
      step_props

  let check_step before pid after =
    check_step_snap (snap before) pid (snap after)

  let solo_bound_prop = prop_solo_bound ()

  let check_solo_bound c =
    match Pr.eval_config solo_bound_prop (snap c) with
    | None -> ()
    | Some detail -> raise (Invariant_violation detail)

  (** Run under [sched], checking the per-step invariants throughout and the
      solo bound at every [solo_check_every]-th configuration (checking it at
      every configuration is quadratic; tests choose a small stride). *)
  let run_checked ?(solo_check_every = 0) ~sched ~max_steps c0 =
    let rec go c rev_steps i =
      if i >= max_steps then c, List.rev rev_steps, E.Step_limit
      else
        match E.undecided c with
        | [] -> c, List.rev rev_steps, E.All_decided
        | enabled -> (
          match sched ~step_index:i c enabled with
          | None -> c, List.rev rev_steps, E.Stopped
          | Some pid ->
            let c', s = E.step c pid in
            check_step c pid c';
            if solo_check_every > 0 && i mod solo_check_every = 0 then
              check_solo_bound c';
            go c' (s :: rev_steps) (i + 1))
    in
    go c0 [] 0
end
