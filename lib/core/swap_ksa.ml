module Sh = Shmem

let dominates v' v =
  if Array.length v' <> Array.length v then
    invalid_arg "Swap_ksa.dominates: length mismatch";
  let rec go j = j >= Array.length v || (v.(j) <= v'.(j) && go (j + 1)) in
  go 0

let solo_step_bound ~n ~k = 8 * (n - k)

module type S = sig
  include Sh.Protocol.S

  val laps : state -> int array
  val laps_get : state -> int -> int
  val preference : state -> int option
  val mid_pass : state -> int
  val in_conflict : state -> bool
end

(* The smallest index holding the maximal lap count (lines 14-15). *)
let leader u =
  let v = ref 0 in
  for j = 1 to Array.length u - 1 do
    if u.(j) > u.(!v) then v := j
  done;
  !v

(* Line 16: does value [v] lead every other value by at least [lead]
   laps?  (the paper's threshold is 2) *)
let leads_by u v ~lead =
  let ok = ref true in
  for j = 0 to Array.length u - 1 do
    if j <> v && u.(v) < u.(j) + lead then ok := false
  done;
  !ok

(* [lead] is the decision threshold of line 16 (the paper uses 2) and
   [merge] controls lines 11-12 (the paper merges); both are exposed as
   ablation knobs through {!make_ablation}. *)
let make_general ~n ~k ~m ~lead ~merge : (module S) =
  if not (n > k && k >= 1) then
    invalid_arg (Fmt.str "Swap_ksa.make: need n > k >= 1, got n=%d k=%d" n k);
  if m < 2 then invalid_arg "Swap_ksa.make: need m >= 2";
  if lead < 1 then invalid_arg "Swap_ksa.make: need lead >= 1";
  let nk = n - k in
  (module struct
    let name =
      if lead = 2 && merge then Fmt.str "swap-ksa(n=%d,k=%d,m=%d)" n k m
      else Fmt.str "swap-ksa(n=%d,k=%d,m=%d,lead=%d,merge=%b)" n k m lead merge
    let n = n
    let k = k
    let num_inputs = m
    let objects = Array.make nk (Sh.Obj_kind.Swap_only Sh.Obj_kind.Unbounded)

    let init_object _ =
      Sh.Value.Pair (Sh.Value.Ints (Array.make m 0), Sh.Value.Bot)

    (* Algorithm 1's headline bound: n - k swap objects suffice *)
    let space_bound ~n ~k = n - k

    type state = {
      pid : int;
      u : int array;  (* local lap counter; never mutated after creation *)
      i : int;  (* next object to swap in the loop on lines 6-12 *)
      conflict : bool;
      decided : int option;
    }

    let init ~pid ~input =
      let u = Array.make m 0 in
      u.(input) <- 1;
      { pid; u; i = 0; conflict = false; decided = None }

    let poised s =
      Sh.Op.swap s.i (Sh.Value.Pair (Sh.Value.Ints s.u, Sh.Value.Pid s.pid))

    (* Lines 8-12: process the response to a Swap. *)
    let absorb s resp =
      let u', p' =
        match resp with
        | Sh.Value.Pair (Sh.Value.Ints u', p') -> u', p'
        | v ->
          invalid_arg
            (Fmt.str "swap-ksa: malformed object value %a" Sh.Value.pp v)
      in
      let same_id =
        match p' with Sh.Value.Pid q -> q = s.pid | _ -> false
      in
      let same_u = Array.length u' = Array.length s.u && dominates s.u u' && dominates u' s.u in
      let conflict = s.conflict || not (same_id && same_u) in
      let u =
        if same_u || not merge then s.u
        else Array.init m (fun j -> max s.u.(j) u'.(j))
      in
      { s with u; conflict }

    (* Lines 13-20: end of a full pass over the objects. *)
    let end_of_pass s =
      if s.conflict then { s with i = 0; conflict = false }
      else
        let v = leader s.u in
        if leads_by s.u v ~lead then { s with decided = Some v }
        else begin
          let u = Array.copy s.u in
          u.(v) <- u.(v) + 1;
          { s with u; i = 0; conflict = false }
        end

    let on_response s resp =
      let s = absorb s resp in
      if s.i + 1 < nk then { s with i = s.i + 1 }
      else end_of_pass { s with i = nk }

    let decision s = s.decided

    let equal_state s1 s2 =
      s1.pid = s2.pid && s1.i = s2.i && s1.conflict = s2.conflict
      && s1.decided = s2.decided
      && Array.for_all2 Int.equal s1.u s2.u

    let hash_state s =
      Sh.Hashx.(
        opt int
          (bool (int (ints (int seed s.pid) s.u) s.i) s.conflict)
          s.decided)

    let pp_state ppf s =
      Fmt.pf ppf "{u=[%a] i=%d conflict=%b%a}"
        Fmt.(array ~sep:(any ";") int)
        s.u s.i s.conflict
        Fmt.(option (fun ppf d -> Fmt.pf ppf " decided=%d" d))
        s.decided

    (* anonymity: the pid appears only in the swapped pair and the [same_id]
       test, both of which a renaming maps coherently *)
    let symmetry =
      Sh.Protocol.Anonymous
        { canon_key =
            (fun s ->
              Sh.Hashx.(
                opt int (bool (int (ints seed s.u) s.i) s.conflict) s.decided))
        ; rename = (fun f s -> { s with pid = f s.pid })
        }
    let recovery = Sh.Protocol.Restart

    let laps s = Array.copy s.u
    let laps_get s j = s.u.(j)
    let preference s = match s.decided with
      | Some _ -> None
      | None -> Some (leader s.u)

    let mid_pass s = s.i
    let in_conflict s = s.conflict
  end)

let make ~n ~k ~m = make_general ~n ~k ~m ~lead:2 ~merge:true

let make_ablation ~n ~k ~m ?(lead = 2) ?(merge = true) () =
  make_general ~n ~k ~m ~lead ~merge
