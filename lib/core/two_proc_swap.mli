(** The folklore wait-free 2-process consensus algorithm from a single swap
    object (§1).

    The object initially contains ⊥, which cannot be any process's input.
    Both processes swap their input into the object; the process that
    receives ⊥ decides its own input, the other decides the value it
    received. *)

val make : m:int -> (module Shmem.Protocol.S)
(** a 2-process, [m]-valued consensus protocol using one swap object;
    each process decides after exactly one step.
    @raise Invalid_argument unless [m >= 2] *)
