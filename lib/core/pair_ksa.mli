(** The folklore wait-free, [n]-process, (n-1)-set agreement algorithm from a
    single swap object (§1).

    A predesignated pair of processes (pids 0 and 1) solve 2-process
    consensus with the swap object; every other process decides its own
    input without taking any step. *)

val make : n:int -> m:int -> (module Shmem.Protocol.S)
(** an [n]-process, [m]-valued, (n-1)-set agreement protocol from one swap
    object.
    @raise Invalid_argument unless [n >= 2] and [m >= 2] *)
