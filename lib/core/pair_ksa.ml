module Sh = Shmem

let make ~n ~m : (module Sh.Protocol.S) =
  if n < 2 then invalid_arg "Pair_ksa.make: need n >= 2";
  if m < 2 then invalid_arg "Pair_ksa.make: need m >= 2";
  (module struct
    let name = Fmt.str "pair-ksa(n=%d,m=%d)" n m
    let n = n
    let k = n - 1
    let num_inputs = m
    let objects = [| Sh.Obj_kind.Swap_only Sh.Obj_kind.Unbounded |]
    let init_object _ = Sh.Value.Bot
    let space_bound ~n:_ ~k:_ = 1

    type state = { pid : int; input : int; decided : int option }

    let init ~pid ~input =
      (* processes outside the predesignated pair decide immediately *)
      let decided = if pid >= 2 then Some input else None in
      { pid; input; decided }

    let poised s =
      assert (s.pid < 2);
      Sh.Op.swap 0 (Sh.Value.Int s.input)

    let on_response s resp =
      match resp with
      | Sh.Value.Bot -> { s with decided = Some s.input }
      | Sh.Value.Int w -> { s with decided = Some w }
      | v ->
        invalid_arg (Fmt.str "pair-ksa: malformed object value %a" Sh.Value.pp v)

    let decision s = s.decided
    let equal_state s1 s2 =
      s1.pid = s2.pid && s1.input = s2.input
      && Option.equal Int.equal s1.decided s2.decided

    let hash_state s =
      Sh.Hashx.(opt int (int (int seed s.pid) s.input) s.decided)

    let pp_state ppf s =
      Fmt.pf ppf "{input=%d%a}" s.input
        Fmt.(option (fun ppf d -> Fmt.pf ppf " decided=%d" d))
        s.decided

    (* NOT anonymous: processes 0 and 1 are predesignated (init decides
       immediately for pid >= 2), so renaming changes behaviour *)
    let symmetry = Sh.Protocol.Asymmetric
    let recovery = Sh.Protocol.Restart
  end)
