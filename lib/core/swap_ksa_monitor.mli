(** Executable monitors for the invariants §4 proves about Algorithm 1.

    Each check corresponds to a numbered statement of the paper and raises
    {!Invariant_violation} if an execution falsifies it, so test suites and
    long random runs double as machine checks of the proofs' premises:

    - Observation 3: a process's local lap counter only grows (domination).
    - Observation 4 + line 16: on decision of [x], the deciding counter has
      [U.(x) >= 2] and leads every other component by at least 2.
    - Observation 1 (externally visible form): for each component [j], the
      maximum of [U.(j)] over all local lap counters and all object fields
      never increases by more than 1 in a single step (new laps are minted
      only by line 20, one at a time).
    - Lemma 8: from any reachable configuration, each undecided process
      decides within [8*(n-k)] solo steps.
    - [⟨V,p⟩]-totality (used by Observation 2 and Lemma 5) is exposed as a
      predicate for tests. *)

exception Invariant_violation of string

module Make (P : Swap_ksa.S) : sig
  module E : module type of Shmem.Exec.Make (P)

  type snapshot = { states : P.state array; mem : Shmem.Value.t array }
  (** the raw material of a configuration, decoupled from any particular
      execution engine's [config] type: fault-injection runs (lib/fault)
      step a distinct [Exec.Make] instance but feed the same invariant
      checks through snapshots *)

  val global_max : E.config -> int array
  (** componentwise max of the lap vector [U] over all local lap counters
      and all object fields *)

  val total : E.config -> (int array * int) option
  (** [total c] is [Some (v, p)] iff [c] is a ⟨V,p⟩-total configuration:
      every object holds [⟨V,p⟩] and [p]'s local lap counter is [V] *)

  val check_step : E.config -> int -> E.config -> unit
  (** [check_step before pid after] checks the per-step invariants
      (Observations 1, 3 and 4, line 16) for the step [before -pid-> after].
      @raise Invariant_violation if one fails *)

  val check_step_snap : snapshot -> int -> snapshot -> unit
  (** {!check_step} over raw snapshots (engine-independent form) *)

  val check_solo_bound : E.config -> unit
  (** Lemma 8 at configuration [c]: every undecided process decides within
      [Swap_ksa.solo_step_bound ~n ~k] solo steps.
      @raise Invariant_violation if one does not *)

  val run_checked :
    ?solo_check_every:int ->
    sched:E.scheduler ->
    max_steps:int ->
    E.config ->
    E.config * Shmem.Trace.t * E.outcome
  (** Run under [sched], checking the per-step invariants throughout and the
      solo bound at every [solo_check_every]-th configuration (checking it at
      every configuration is quadratic; tests choose a small stride, and the
      default [0] disables it). *)
end
