(** Executable monitors for the invariants §4 proves about Algorithm 1.

    Each numbered statement of the paper is a {e declared property}
    ([Prop.Make(P).t]) that the checker evaluates incrementally during
    exploration and the fault injector uses as a detection oracle; the
    historical raising API ({!Make.check_step}, {!Make.check_solo_bound},
    {!Make.run_checked}) is a thin façade over the same declarations,
    raising {!Invariant_violation} on the first violated property:

    - Observation 3 ({!Make.prop_lap_domination}): a process's local lap
      counter only grows (domination).
    - Observation 4 + line 16 ({!Make.prop_decide_lead}): on decision of
      [x], the deciding counter has [U.(x) >= 2] and leads every other
      component by at least 2.
    - Observation 1, externally visible form
      ({!Make.prop_max_lap_increment}): for each component [j], the maximum
      of [U.(j)] over all local lap counters and all object fields never
      increases by more than 1 in a single step (new laps are minted only
      by line 20, one at a time).
    - ⟨V,p⟩-totality relaxed to domination ({!Make.prop_totality}; the
      premise Observation 2 and Lemma 5 consume): whenever every object
      holds the same ⟨V,p⟩ with a process id [p], [p]'s own lap counter
      dominates [V].  Exact equality — the {!Make.total} predicate — is
      deliberately {e not} declared invariant: [p] may advance its counter
      between installs; domination is invariant by Observation 3 plus the
      fact that only [p] ever installs values tagged [p].
    - Lemma 8 ({!Make.prop_solo_bound}): from any reachable configuration,
      each undecided process decides within [8*(n-k)] solo steps. *)

exception Invariant_violation of string

module Make (P : Swap_ksa.S) : sig
  module E : module type of Shmem.Exec.Make (P)

  type snapshot = Prop.Make(P).snap = {
    states : P.state array;
    mem : Shmem.Value.t array;
  }
  (** the raw material of a configuration, decoupled from any particular
      execution engine's [config] type: fault-injection runs (lib/fault)
      step a distinct [Exec.Make] instance but feed the same invariant
      checks through snapshots.  The equation with [Prop.Make(P).snap]
      means monitor snapshots are {e the} property-layer snapshots. *)

  val snap : E.config -> snapshot

  val global_max : E.config -> int array
  (** componentwise max of the lap vector [U] over all local lap counters
      and all object fields *)

  val total : E.config -> (int array * int) option
  (** [total c] is [Some (v, p)] iff [c] is a ⟨V,p⟩-total configuration:
      every object holds [⟨V,p⟩] and [p]'s local lap counter is exactly
      [V] *)

  (** {1 Declared properties} *)

  val prop_lap_domination : Prop.Make(P).t
  (** "lap-domination" (step relation): Observation 3 *)

  val prop_decide_lead : Prop.Make(P).t
  (** "decide-lead-by-2" (step relation): Observation 4 + line 16 *)

  val prop_max_lap_increment : Prop.Make(P).t
  (** "max-lap-increment" (step relation): Observation 1 *)

  val prop_totality : Prop.Make(P).t
  (** "total-config-domination" (invariant): ⟨V,p⟩-totality, domination
      form *)

  val solo_bound : int
  (** [Swap_ksa.solo_step_bound ~n:P.n ~k:P.k] = 8(n-k) *)

  val prop_solo_bound :
    ?solo_ok:(pid:int -> snapshot -> bool) -> unit -> Prop.Make(P).t
  (** "solo-bound" (invariant): Lemma 8.  The default oracle replays a solo
      execution of up to {!solo_bound} steps per undecided process
      ([E.run_solo] from the snapshot); pass [solo_ok] to substitute a
      memoized oracle (e.g. [Explore.Make.solo_ok] behind a cap of
      {!solo_bound}). *)

  val step_props : Prop.Make(P).t list
  (** the three per-step invariants, in the order the legacy monitor
      checked them: lap-domination, decide-lead-by-2, max-lap-increment *)

  val online_props : Prop.Make(P).t list
  (** [step_props] plus "total-config-domination" — the cheap properties
      suitable for checking on every step of long runs (no solo replays) *)

  val props : ?solo_ok:(pid:int -> snapshot -> bool) -> unit -> Prop.Make(P).t list
  (** all five §4 properties ([online_props] plus "solo-bound") *)

  (** {1 Legacy raising façade}

      Thin wrappers evaluating the declarations above and raising
      {!Invariant_violation} with the first violation's detail. *)

  val check_step : E.config -> int -> E.config -> unit
  (** [check_step before pid after] checks {!step_props} for the step
      [before -pid-> after].
      @raise Invariant_violation if one fails *)

  val check_step_snap : snapshot -> int -> snapshot -> unit
  (** {!check_step} over raw snapshots (engine-independent form) *)

  val check_solo_bound : E.config -> unit
  (** Lemma 8 at configuration [c], via {!prop_solo_bound}'s default
      oracle.
      @raise Invariant_violation if an undecided process exceeds the
      bound *)

  val run_checked :
    ?solo_check_every:int ->
    sched:E.scheduler ->
    max_steps:int ->
    E.config ->
    E.config * Shmem.Trace.t * E.outcome
  (** Run under [sched], checking the per-step invariants throughout and the
      solo bound at every [solo_check_every]-th configuration (checking it at
      every configuration is quadratic; tests choose a small stride, and the
      default [0] disables it). *)
end
