(** Algorithm 1 of the paper: an obstruction-free, [m]-valued, [k]-set
    agreement algorithm for [n] processes from [n-k] swap objects (§4).

    Every swap object stores a pair ⟨lap counter, identifier⟩ where the lap
    counter is an array of [m] naturals (initially all 0) and the identifier
    is a process id (initially ⊥).  A process repeatedly swaps
    ⟨its local lap counter, its id⟩ through all [n-k] objects; when a full
    pass returns only its own pair (no {e conflict}), it completes a lap for
    the leading value, and decides that value once it leads every other value
    by at least 2 laps. *)

module type S = sig
  include Shmem.Protocol.S

  val laps : state -> int array
  (** the process's local lap counter [U] (a fresh copy) *)

  val laps_get : state -> int -> int
  (** [laps_get s j] = [(laps s).(j)] without the copy — the §4 monitor
      reads lap components on every explored edge, where the defensive
      allocation of {!laps} is measurable (bench T13) *)

  val preference : state -> int option
  (** the value whose lap the process would currently complete: the smallest
      index with maximal lap count (line 15); [None] once decided *)

  val mid_pass : state -> int
  (** index [i] of the object the process is poised to swap (0-based) *)

  val in_conflict : state -> bool
end

val make : n:int -> k:int -> m:int -> (module S)
(** @raise Invalid_argument unless [n > k >= 1] and [m >= 2] *)

val make_ablation :
  n:int -> k:int -> m:int -> ?lead:int -> ?merge:bool -> unit -> (module S)
(** Algorithm 1 with its two design choices exposed as knobs, for the
    ablation experiments (bench table T8):

    - [lead] is the decision threshold of line 16.  The paper uses 2;
      [lead = 1] is unsafe (the checker exhibits agreement violations) and
      larger values remain safe but take longer to decide.
    - [merge] controls the lap-counter merging of lines 11-12.  Disabling
      it destroys the information flow Lemma 5 depends on; the checker
      exhibits an agreement violation.

    @raise Invalid_argument unless additionally [lead >= 1] *)

val dominates : int array -> int array -> bool
(** [dominates v' v] is the paper's [v ⪯ v']: componentwise [v.(j) <= v'.(j)].
    @raise Invalid_argument on length mismatch *)

val solo_step_bound : n:int -> k:int -> int
(** the paper's Lemma 8 bound: any solo execution contains at most
    [8 * (n-k)] steps before the process decides *)
