(** Instrumentation over traces: the quantities the benchmark tables report
    (space actually touched, steps to decision, per-process work). *)

type t = {
  total_steps : int;
  steps_per_pid : (int * int) list;  (** (pid, steps), ascending by pid *)
  objects_accessed : int;  (** distinct objects accessed *)
  objects_swapped : int;  (** distinct objects receiving a nontrivial op *)
  reads : int;
  nontrivial_ops : int;
}

val of_trace : Trace.t -> t
val pp : Format.formatter -> t -> unit

val merge : t -> t -> t
(** componentwise combination treating the two traces as disjoint phases of
    one execution: sums for counters, max for distinct-object counts (an
    over-approximation documented where used) *)
