type t = {
  total_steps : int;
  steps_per_pid : (int * int) list;
  objects_accessed : int;
  objects_swapped : int;
  reads : int;
  nontrivial_ops : int;
}

let of_trace trace =
  let per_pid = Hashtbl.create 16 in
  let reads = ref 0 in
  let nontrivial = ref 0 in
  List.iter
    (fun { Trace.pid; op; _ } ->
      Hashtbl.replace per_pid pid
        (1 + Option.value ~default:0 (Hashtbl.find_opt per_pid pid));
      if Op.is_nontrivial op then incr nontrivial else incr reads)
    trace;
  { total_steps = Trace.length trace
  ; steps_per_pid =
      Hashtbl.fold (fun pid c acc -> (pid, c) :: acc) per_pid []
      |> List.sort Stdlib.compare
  ; objects_accessed = List.length (Trace.objects_accessed trace)
  ; objects_swapped = List.length (Trace.objects_swapped trace)
  ; reads = !reads
  ; nontrivial_ops = !nontrivial
  }

let pp ppf s =
  Fmt.pf ppf
    "steps=%d accessed=%d swapped=%d reads=%d nontrivial=%d per-pid=[%a]"
    s.total_steps s.objects_accessed s.objects_swapped s.reads s.nontrivial_ops
    Fmt.(list ~sep:(any ";") (pair ~sep:(any ":") int int))
    s.steps_per_pid

let merge a b =
  let merged_pids =
    List.sort_uniq Stdlib.compare (List.map fst a.steps_per_pid @ List.map fst b.steps_per_pid)
  in
  let count l pid = Option.value ~default:0 (List.assoc_opt pid l) in
  { total_steps = a.total_steps + b.total_steps
  ; steps_per_pid =
      List.map
        (fun pid -> pid, count a.steps_per_pid pid + count b.steps_per_pid pid)
        merged_pids
  ; objects_accessed = max a.objects_accessed b.objects_accessed
  ; objects_swapped = max a.objects_swapped b.objects_swapped
  ; reads = a.reads + b.reads
  ; nontrivial_ops = a.nontrivial_ops + b.nontrivial_ops
  }
