type t =
  | Unit
  | Bot
  | Int of int
  | Pid of int
  | Ints of int array
  | Pair of t * t

let rec equal v1 v2 =
  match v1, v2 with
  | Unit, Unit | Bot, Bot -> true
  | Int i, Int j | Pid i, Pid j -> i = j
  | Ints a, Ints b ->
    Array.length a = Array.length b
    &&
    let rec go i = i >= Array.length a || (a.(i) = b.(i) && go (i + 1)) in
    go 0
  | Pair (a1, b1), Pair (a2, b2) -> equal a1 a2 && equal b1 b2
  | (Unit | Bot | Int _ | Pid _ | Ints _ | Pair _), _ -> false

let rec compare v1 v2 =
  let tag = function
    | Unit -> 0
    | Bot -> 1
    | Int _ -> 2
    | Pid _ -> 3
    | Ints _ -> 4
    | Pair _ -> 5
  in
  match v1, v2 with
  | Unit, Unit | Bot, Bot -> 0
  | Int i, Int j | Pid i, Pid j -> Stdlib.compare i j
  | Ints a, Ints b ->
    let c = Stdlib.compare (Array.length a) (Array.length b) in
    if c <> 0 then c
    else
      let rec go i =
        if i >= Array.length a then 0
        else
          let c = Stdlib.compare a.(i) b.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0
  | Pair (a1, b1), Pair (a2, b2) ->
    let c = compare a1 a2 in
    if c <> 0 then c else compare b1 b2
  | (Unit | Bot | Int _ | Pid _ | Ints _ | Pair _), _ ->
    Stdlib.compare (tag v1) (tag v2)

let hash v = Hashtbl.hash v

let rec rename f v =
  match v with
  | Unit | Bot | Int _ | Ints _ -> v
  | Pid p ->
    let p' = f p in
    if p' = p then v else Pid p'
  | Pair (a, b) ->
    let a' = rename f a and b' = rename f b in
    if a' == a && b' == b then v else Pair (a', b')

let rec fold_pids f acc v =
  match v with
  | Unit | Bot | Int _ | Ints _ -> acc
  | Pid p -> f acc p
  | Pair (a, b) -> fold_pids f (fold_pids f acc a) b

let rec hash_skel v =
  match v with
  | Unit -> 0x11
  | Bot -> 0x13
  | Int i -> Hashx.int (Hashx.int Hashx.seed 2) i
  | Pid _ -> 0x17  (* all pids collapse: the skeleton is pid-blind *)
  | Ints a -> Hashx.ints (Hashx.int Hashx.seed 4) a
  | Pair (a, b) ->
    Hashx.int (Hashx.int (Hashx.int Hashx.seed 5) (hash_skel a)) (hash_skel b)

let rec pp ppf v =
  match v with
  | Unit -> Fmt.string ppf "()"
  | Bot -> Fmt.string ppf "⊥"
  | Int i -> Fmt.int ppf i
  | Pid p -> Fmt.pf ppf "p%d" p
  | Ints a ->
    Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any ";") int) a
  | Pair (a, b) -> Fmt.pf ppf "⟨%a,%a⟩" pp a pp b

let to_string v = Fmt.str "%a" pp v
let zero = Int 0
let one = Int 1
let ints a = Ints (Array.copy a)

let as_int = function
  | Int i -> i
  | v -> invalid_arg (Fmt.str "Value.as_int: %a" pp v)
