(** The execution engine: configurations, steps, executions and schedulers
    for a given protocol (§3 of the paper).

    A configuration consists of a state for every process and a value for
    every object.  An execution is produced by a scheduler that repeatedly
    picks an undecided process to take its next (deterministic) step. *)

module Make (P : Protocol.S) : sig
  type config = private {
    states : P.state array;  (** one per process, index = pid *)
    mem : Value.t array;  (** one per object, index = object *)
  }

  val initial : inputs:int array -> config
  (** the initial configuration in which process [p] has input [inputs.(p)];
      [inputs] must have length [P.n] and entries in [0 .. num_inputs-1] *)

  val unsafe_config : states:P.state array -> mem:Value.t array -> config
  (** rebuild a configuration from raw state/memory arrays (defensively
      copied).  "Unsafe" because nothing certifies the arrays describe a
      {e reachable} configuration — the caller vouches for that.  Exists so
      engine-independent snapshots (the property layer's [Prop.Make.snap],
      the monitor's [snapshot]) can be re-entered into {e any} [Exec.Make]
      instance, e.g. to measure a solo run from a snapshot taken by a
      different engine.
      @raise Invalid_argument on length mismatch with [P.n] / [P.objects] *)

  val value : config -> int -> Value.t
  (** [value c b] is value(B_b, C) *)

  val decision : config -> int -> int option
  val decided_values : config -> int list
  (** distinct values decided in the configuration, ascending *)

  val undecided : config -> int list
  (** pids of processes that have not decided, ascending *)

  val all_decided : config -> bool
  val poised : config -> int -> Op.t

  val covers : config -> pids:int list -> objs:int list -> bool
  (** whether the set of processes covers the set of objects: same size, and
      the sets of objects the processes are poised to apply nontrivial
      operations to equals [objs] with one process per object (§3) *)

  val step : config -> int -> config * Trace.step
  (** [step c pid] applies the next step of [pid].
      @raise Invalid_argument if [pid] has already decided *)

  type apply_fn = pid:int -> op:Op.t -> current:Value.t -> Value.t * Value.t
  (** object semantics: given the stepping process, its poised operation and
      the object's current value, produce the new value and the response.
      The default is the kinds' sequential specification
      ([Obj_kind.apply]); [lib/fault] substitutes deliberately non-atomic
      variants here for negative testing. *)

  val default_apply : apply_fn

  val step_with : apply:apply_fn -> config -> int -> config * Trace.step
  (** [step] with substituted object semantics.  The resulting configuration
      is a perfectly ordinary [config] — monitors, agreement/validity checks
      and the shrinker all apply unchanged.
      @raise Invalid_argument if [pid] has already decided *)

  val run_script : config -> int list -> config * Trace.t
  (** apply the next step of each listed process in order (e.g. a block
      update is [run_script c pids] for covering processes [pids]) *)

  val replay : config -> Trace.t -> config
  (** re-apply a trace's schedule from [c], asserting that every step
      obtains the same response as recorded.
      @raise Assert_failure if a response differs (the trace is not
      applicable to [c] with identical outcomes) *)

  type scheduler = step_index:int -> config -> int list -> int option
  (** given the step index, the configuration and the undecided pids
      (ascending), pick the next process, or [None] to stop *)

  val round_robin : scheduler
  val random : Random.State.t -> scheduler
  val solo : int -> scheduler

  val bursty : Random.State.t -> burst:int -> scheduler
  (** picks a random undecided process and runs it for [burst] consecutive
      steps before switching.  Obstruction-free algorithms are only
      guaranteed to terminate when some process eventually runs long enough
      alone; under the uniformly random scheduler Algorithm 1 with 6
      processes routinely exceeds 200k steps without a decision, while
      bursts longer than one solo pass decide almost immediately (this is
      measured by bench table T6).  Stateful: create a fresh scheduler per
      run. *)

  val with_crashes : crash_at:(int * int) list -> scheduler -> scheduler
  (** [(pid, t)] in [crash_at] crashes [pid] at global step [t]: it is never
      scheduled from then on.  Obstruction-free algorithms tolerate any
      number of crashes — the survivors must still decide. *)

  val with_stalls : stalls:(int * int * int) list -> scheduler -> scheduler
  (** [(pid, t, dur)] in [stalls] stalls [pid] for the global steps
      [t .. t+dur-1]: it is not scheduled inside the window.  Unlike a
      crash, a stall is finite: if {e every} enabled process is mid-stall,
      the underlying scheduler picks among all of them (in real time the
      window would simply elapse; the step-indexed simulator has no idle
      ticks). *)

  type outcome = All_decided | Stopped | Step_limit

  val run :
    sched:scheduler -> max_steps:int -> config -> config * Trace.t * outcome

  val run_with :
    apply:apply_fn ->
    sched:scheduler ->
    max_steps:int ->
    config ->
    config * Trace.t * outcome
  (** [run] with substituted object semantics (see {!step_with}) *)

  val run_solo : pid:int -> max_steps:int -> config -> (config * Trace.t) option
  (** the solo-terminating execution of [pid] from [c]: run [pid] alone until
      it decides.  [None] if it does not decide within [max_steps] (for the
      obstruction-free protocols in this repository that indicates a bug or a
      too-small bound). *)

  val equal_config : config -> config -> bool
  val hash_config : config -> int

  val rename :
    perm:int array ->
    rename_state:((int -> int) -> P.state -> P.state) ->
    config ->
    config
  (** [rename ~perm ~rename_state c] is the configuration π·c for the
      process permutation π = [fun p -> perm.(p)]: process [p]'s state moves
      to slot [π p] after being renamed by [rename_state π], and every
      memory value is renamed by [Value.rename π].  [perm] must be a
      bijection on [0 .. n-1].  For anonymous protocols
      ([Protocol.Anonymous]) the step relation commutes with this action,
      which is what licenses the symmetry reduction in [lib/explore]. *)

  val indistinguishable_to : pids:int list -> config -> config -> bool
  (** C₁ ~P C₂: every process in [pids] has the same state in both *)

  val restricted_key : pids:int list -> config -> int
  (** hash of the configuration restricted to the given processes' states
      plus the full memory — two configurations with equal keys are candidates
      for P-indistinguishability with equal memories *)

  val equal_restricted :
    pids:int list -> config -> config -> bool
  (** P-indistinguishable and all objects have the same values *)

  val check_validity : inputs:int array -> config -> bool
  (** every decided value is the input of some process *)

  val check_agreement : config -> bool
  (** at most [P.k] distinct values are decided *)

  val pp_config : Format.formatter -> config -> unit
end
