(** Kinds of shared objects provided by the system, with their sequential
    semantics and the set of operations each supports.

    All kinds except [Compare_and_swap] are {e historyless}: the value of the
    object depends only on the last nontrivial operation applied to it. *)

type domain =
  | Unbounded  (** values range over all of [Value.t] (ℕ and encodings) *)
  | Bounded of int
      (** domain size [b]: legal stored values are [Int 0 .. Int (b-1)];
          [Bot] is additionally legal as an initial value only when the
          algorithm never relies on it being in-domain *)

type t =
  | Register of domain  (** supports [Read] and [Write] *)
  | Swap_only of domain  (** supports [Swap] only — no [Read] (§3) *)
  | Readable_swap of domain  (** supports [Read] and [Swap] *)
  | Test_and_set
      (** binary; initially [Int 0]; supports [Swap (Int 1)] (= TAS) and
          [Read] (§2) *)
  | Test_and_set_reset
      (** [Test_and_set] plus [Write (Int 0)] (§2) *)
  | Compare_and_swap of domain  (** supports [Read] and [Cas]; not historyless *)

exception Illegal_operation of string
(** Raised when a protocol applies an operation its object kind does not
    support, or stores a value outside the object's domain.  This always
    indicates a bug in the protocol under test, never in the engine. *)

val domain : t -> domain
val is_historyless : t -> bool

val value_in_domain : domain -> Value.t -> bool

val supports : t -> Op.action -> bool
(** Whether the kind supports the action (including domain checks on the
    value being stored). *)

val apply : t -> current:Value.t -> Op.action -> Value.t * Value.t
(** [apply kind ~current action] is [(new_value, response)].
    @raise Illegal_operation if the kind does not support the action. *)

val pp : Format.formatter -> t -> unit
