type step = { pid : int; op : Op.t; resp : Value.t }
type t = step list

let pp_step ppf { pid; op; resp } =
  Fmt.pf ppf "p%d: %a -> %a" pid Op.pp op Value.pp resp

let pp ppf t = Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_step) t

let rename_step f { pid; op; resp } =
  { pid = f pid; op = Op.rename f op; resp = Value.rename f resp }

let rename f t = List.map (rename_step f) t
let history t = List.map (fun s -> s.pid, s.op) t

let sorted_unique xs =
  List.sort_uniq Stdlib.compare xs

let pids t = sorted_unique (List.map (fun s -> s.pid) t)
let is_p_only ~allowed t = List.for_all (fun s -> allowed s.pid) t
let objects_accessed t = sorted_unique (List.map (fun s -> s.op.Op.obj) t)

let objects_swapped t =
  sorted_unique
    (List.filter_map
       (fun s -> if Op.is_nontrivial s.op then Some s.op.Op.obj else None)
       t)

let steps_by ~pid t =
  List.fold_left (fun acc s -> if s.pid = pid then acc + 1 else acc) 0 t

let length = List.length

let indistinguishable_to ~pid t1 t2 =
  let mine t = List.filter (fun s -> s.pid = pid) t in
  let same s1 s2 = Op.equal s1.op s2.op && Value.equal s1.resp s2.resp in
  List.equal same (mine t1) (mine t2)
