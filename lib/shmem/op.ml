type action =
  | Read
  | Write of Value.t
  | Swap of Value.t
  | Cas of Value.t * Value.t

type t = { obj : int; action : action }

let read obj = { obj; action = Read }
let write obj v = { obj; action = Write v }
let swap obj v = { obj; action = Swap v }
let cas obj ~expected ~desired = { obj; action = Cas (expected, desired) }

let is_nontrivial op =
  match op.action with
  | Read -> false
  | Write _ | Swap _ | Cas _ -> true

let targets op i = op.obj = i

let is_historyless_action = function
  | Read | Write _ | Swap _ -> true
  | Cas _ -> false

let is_historyless op = is_historyless_action op.action

let is_swap_action = function
  | Swap _ -> true
  | Read | Write _ | Cas _ -> false

let installs ~resp action =
  match action with
  | Read -> None
  | Write v | Swap v -> Some v
  | Cas (_, desired) -> if Value.equal resp Value.one then Some desired else None

let rename_action f = function
  | Read -> Read
  | Write v -> Write (Value.rename f v)
  | Swap v -> Swap (Value.rename f v)
  | Cas (e, d) -> Cas (Value.rename f e, Value.rename f d)

let rename f op = { op with action = rename_action f op.action }

let equal_action a1 a2 =
  match a1, a2 with
  | Read, Read -> true
  | Write v1, Write v2 | Swap v1, Swap v2 -> Value.equal v1 v2
  | Cas (e1, d1), Cas (e2, d2) -> Value.equal e1 e2 && Value.equal d1 d2
  | (Read | Write _ | Swap _ | Cas _), _ -> false

let equal o1 o2 = o1.obj = o2.obj && equal_action o1.action o2.action

let pp ppf op =
  match op.action with
  | Read -> Fmt.pf ppf "Read(B%d)" op.obj
  | Write v -> Fmt.pf ppf "Write(B%d,%a)" op.obj Value.pp v
  | Swap v -> Fmt.pf ppf "Swap(B%d,%a)" op.obj Value.pp v
  | Cas (e, d) -> Fmt.pf ppf "Cas(B%d,%a,%a)" op.obj Value.pp e Value.pp d
