let of_trace trace = List.map (fun s -> s.Trace.pid) trace

(* tokenizer: ints, 'x', '(', ')'; commas count as whitespace *)
type token = Int of int | Times | Open | Close

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | ',' -> go (i + 1) acc
      | '(' -> go (i + 1) (Open :: acc)
      | ')' -> go (i + 1) (Close :: acc)
      | 'x' | '*' -> go (i + 1) (Times :: acc)
      | '0' .. '9' -> (
        let j = ref i in
        while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
          incr j
        done;
        let digits = String.sub s i (!j - i) in
        match int_of_string_opt digits with
        | Some v -> go !j (Int v :: acc)
        | None ->
          Error (Fmt.str "integer %s at offset %d does not fit" digits i))
      | c -> Error (Fmt.str "unexpected character %c at offset %d" c i)
  in
  go 0 []

(* the longest schedule [parse] will materialize from a single repeated
   atom: a cap on [count * length(base)], so nested repetitions stay
   bounded too (each group is itself capped before it can be repeated) *)
let max_expansion = 1_000_000

(* atoms ::= atom* ; atom ::= (INT | '(' atoms ')') ('x' INT)? *)
let parse s =
  let ( let* ) = Result.bind in
  let* tokens = tokenize s in
  let rec atoms toks acc =
    match toks with
    | [] | Close :: _ -> Ok (List.concat (List.rev acc), toks)
    | _ ->
      let* unit_, toks = atom toks in
      atoms toks (unit_ :: acc)
  and atom toks =
    let* base, toks =
      match toks with
      | Int pid :: rest -> Ok ([ pid ], rest)
      | Open :: rest -> (
        let* inner, rest = atoms rest [] in
        match rest with
        | Close :: rest -> Ok (inner, rest)
        | _ -> Error "unclosed parenthesis")
      | Times :: _ -> Error "repetition without a preceding atom"
      | Close :: _ -> Error "unexpected ')'"
      | [] -> Error "unexpected end of schedule"
    in
    match toks with
    | Times :: Int count :: rest ->
      if count < 0 then Error "negative repetition"
      else if count > max_expansion then
        Error
          (Fmt.str "repetition count %d exceeds the %d cap" count
             max_expansion)
      else if count * List.length base > max_expansion then
        Error
          (Fmt.str
             "repetition expands to %d steps, over the %d cap (split the \
              schedule or lower the count)"
             (count * List.length base) max_expansion)
      else Ok (List.concat (List.init count (fun _ -> base)), rest)
    | Times :: _ -> Error "repetition count missing"
    | _ -> Ok (base, toks)
  in
  let* result, leftover = atoms tokens [] in
  match leftover with
  | [] -> Ok result
  | _ -> Error "trailing tokens"

let to_string pids =
  (* run-length encode consecutive repeats *)
  let rec runs = function
    | [] -> []
    | pid :: rest ->
      let rec count n = function
        | p :: tl when p = pid -> count (n + 1) tl
        | tl -> n, tl
      in
      let n, rest = count 1 rest in
      (pid, n) :: runs rest
  in
  runs pids
  |> List.map (fun (pid, n) ->
         if n = 1 then string_of_int pid else Fmt.str "%dx%d" pid n)
  |> String.concat " "
