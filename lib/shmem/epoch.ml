(* Epoch-stamped slot identifiers: (slot, epoch) packed into one immutable
   int so a stamp fits in an [int Atomic.t] and is checked with one load.
   See epoch.mli for the ABA story. *)

type stamp = int

let slot_bits = 20
let max_slots = 1 lsl slot_bits
let slot_mask = max_slots - 1

(* OCaml ints are 63-bit; keep the packed word non-negative *)
let max_epoch = (1 lsl (62 - slot_bits)) - 1

let make ~slot ~epoch =
  if slot < 0 || slot >= max_slots then
    invalid_arg (Printf.sprintf "Epoch.make: slot %d out of range" slot);
  if epoch < 0 || epoch > max_epoch then
    invalid_arg (Printf.sprintf "Epoch.make: epoch %d out of range" epoch);
  (epoch lsl slot_bits) lor slot

let slot s = s land slot_mask
let epoch s = s lsr slot_bits

let next s =
  let e = epoch s in
  if e >= max_epoch then invalid_arg "Epoch.next: epoch overflow";
  ((e + 1) lsl slot_bits) lor (s land slot_mask)

let equal = Int.equal
let hash s = Hashx.int Hashx.seed s
let to_int s = s

let of_int i =
  if i < 0 then invalid_arg "Epoch.of_int: negative stamp";
  i

let pp ppf s = Format.fprintf ppf "%d@%d" (slot s) (epoch s)
