(** Space-time diagrams of executions: one row per process, one column per
    step, in the style of the executions drawn in distributed-computing
    papers.  Nontrivial operations are uppercase ([S3] = Swap on B3,
    [W1] = Write on B1, [C0] = Cas on B0), reads lowercase ([r2]); [*] marks
    each process's last recorded step. *)

val render :
  ?columns:int -> n:int -> Format.formatter -> Trace.t -> unit
(** [render ~n ppf trace] draws the diagram, wrapping after [columns] steps
    per band (default 24).  [n] is the number of processes (rows). *)
