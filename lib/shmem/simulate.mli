(** Executable object simulations.

    [6] (Ellen, Fatourou, Ruppert) shows that any historyless object can be
    simulated by a readable swap object with the same domain, and that any
    nontrivial operation on a historyless object can be simulated by [Swap].
    These functors realise both simulations as protocol transformers: they
    rewrite a protocol's object kinds and operations, leaving its state
    machine untouched.  The transformed protocol can be re-run through the
    checker to confirm behavioural equivalence. *)

module To_readable_swap (P : Protocol.S) : Protocol.S with type state = P.state
(** Replace every historyless object by a readable swap object with the same
    domain.  [Write v] becomes [Swap v] with the response discarded.

    @raise Invalid_argument at application time if [P] uses a
    compare-and-swap object (CAS is not historyless). *)

module To_swap_only (P : Protocol.S) : Protocol.S with type state = P.state
(** Replace every object by a swap-only object (no [Read]).  Only valid for
    protocols that never read; a [Read] by the transformed protocol raises
    {!Obj_kind.Illegal_operation} when executed.

    @raise Invalid_argument at application time if [P] uses a
    compare-and-swap object. *)
