(** A tiny textual notation for schedules (sequences of process ids), used
    by the CLI and for pasting counterexamples into bug reports.

    Grammar (whitespace- or comma-separated atoms):
    - [3] — one step by process 3;
    - [3x5] — five consecutive steps by process 3;
    - [(0 1)x2] — the group repeated: [0 1 0 1].

    Example: ["0x3, 1, (2 0)x2"] is [0;0;0;1;2;0;2;0]. *)

(** [Error] (never an exception) on malformed input, on integer literals
    that do not fit in an [int], and on repetitions that would expand past
    1,000,000 steps *)
val parse : string -> (int list, string) result
val to_string : int list -> string
(** compact round-trip form using the [x] repetition notation *)

val of_trace : Trace.t -> int list
