(** Deterministic protocol state machines.

    A protocol packages an instance of a distributed algorithm: the shared
    objects it uses (with their kinds and initial values) and, for each
    process, a deterministic state machine.  A process that has decided takes
    no further steps, matching the paper's model of one-shot agreement tasks.

    Engines that need to run a protocol are functors over this signature
    (see {!Exec.Make}); protocol constructors such as [Swap_ksa.make] return
    first-class [(module S)] values. *)

module type S = sig
  val name : string

  val n : int
  (** number of processes; pids are [0 .. n-1] *)

  val k : int
  (** the agreement parameter: at most [k] distinct values may be decided *)

  val num_inputs : int
  (** [m]: inputs range over [0 .. m-1] *)

  val objects : Obj_kind.t array
  (** the shared objects, [B_0 .. B_{len-1}] *)

  val init_object : int -> Value.t
  (** initial value of each object *)

  type state

  val init : pid:int -> input:int -> state
  val poised : state -> Op.t
  (** the next operation of an undecided process; never called after
      [decision] returns [Some _] *)

  val on_response : state -> Value.t -> state
  (** local computation after receiving the response to the poised
      operation *)

  val decision : state -> int option
  val equal_state : state -> state -> bool
  val hash_state : state -> int
  val pp_state : Format.formatter -> state -> unit
end

type t = (module S)

(** Check basic well-formedness of a protocol description: object array
    nonempty unless [n <= k] (trivial tasks may use no objects), every initial
    value within its object's domain, and parameters in range. *)
let validate (module P : S) =
  if P.n <= 0 then invalid_arg "protocol: n must be positive";
  if P.k <= 0 then invalid_arg "protocol: k must be positive";
  if P.num_inputs <= 0 then invalid_arg "protocol: num_inputs must be positive";
  Array.iteri
    (fun i kind ->
      let v = P.init_object i in
      let dom = Obj_kind.domain kind in
      if not (Obj_kind.value_in_domain dom v || Value.equal v Value.Bot) then
        invalid_arg
          (Fmt.str "protocol %s: initial value %a of B%d outside domain"
             P.name Value.pp v i))
    P.objects

let name (module P : S) = P.name
let num_objects (module P : S) = Array.length P.objects

let uses_only_historyless (module P : S) =
  Array.for_all Obj_kind.is_historyless P.objects

let uses_only_swap (module P : S) =
  Array.for_all
    (function Obj_kind.Swap_only _ -> true | _ -> false)
    P.objects
