(** Deterministic protocol state machines.

    A protocol packages an instance of a distributed algorithm: the shared
    objects it uses (with their kinds and initial values) and, for each
    process, a deterministic state machine.  A process that has decided takes
    no further steps, matching the paper's model of one-shot agreement tasks.

    Engines that need to run a protocol are functors over this signature
    (see {!Exec.Make}); protocol constructors such as [Swap_ksa.make] return
    first-class [(module S)] values. *)

(* The symmetry hook.  [Anonymous] declares the protocol equivariant under
   process renaming: for every bijection [f] on pids,
   [rename f] commutes with [init] ([rename f (init ~pid ~input) =
   init ~pid:(f pid) ~input]), with [poised] (modulo [Op.rename f]), with
   [on_response] (modulo [Value.rename f] on the response) and with
   [decision]/[equal_state]/[hash_state].  [canon_key] must be a
   renaming-invariant summary ([canon_key (rename f s) = canon_key s]) —
   hash everything {e except} the embedded pid (use [Value.hash_skel] for
   stored raw values).  Exploration engines then intern one orbit
   representative per process-permutation class.  [Asymmetric] (the sound
   default) declares nothing and disables the reduction. *)
type 'state symmetry =
  | Asymmetric
  | Anonymous of {
      canon_key : 'state -> int;
      rename : (int -> int) -> 'state -> 'state;
    }

(* The recovery hook.  A crashed process that comes back has lost its local
   state but not the shared memory; [Restart] rejoins from [init] (always
   sound for historyless protocols: the respawned incarnation is
   indistinguishable from a late-starting fresh participant, and safety
   degrades at most to (k + crashes)-agreement — Gafni's restricted-runs
   view).  [Resume] lets a protocol rebuild a richer state from a snapshot
   of the shared memory, e.g. CAS-based consensus re-reading the decided
   winner.  The rebuilt state must be reachable-equivalent: every value it
   can decide must be decidable by some fresh process reading the same
   memory. *)
type 'state recovery =
  | Restart
  | Resume of (pid:int -> input:int -> Value.t array -> 'state)

module type S = sig
  val name : string

  val n : int
  (** number of processes; pids are [0 .. n-1] *)

  val k : int
  (** the agreement parameter: at most [k] distinct values may be decided *)

  val num_inputs : int
  (** [m]: inputs range over [0 .. m-1] *)

  val objects : Obj_kind.t array
  (** the shared objects, [B_0 .. B_{len-1}] *)

  val init_object : int -> Value.t
  (** initial value of each object *)

  type state

  val init : pid:int -> input:int -> state
  val poised : state -> Op.t
  (** the next operation of an undecided process; never called after
      [decision] returns [Some _] *)

  val on_response : state -> Value.t -> state
  (** local computation after receiving the response to the poised
      operation *)

  val decision : state -> int option
  val equal_state : state -> state -> bool
  val hash_state : state -> int
  val pp_state : Format.formatter -> state -> unit

  val space_bound : n:int -> k:int -> int
  (** the family's declared object-space bound — an upper bound on the
      distinct base objects any execution of the [n]-process [k]-agreement
      instance accesses (n-k for Algorithm 1).  [Analyze.Make.space]
      certifies the measurement against this at the module's own [n]/[k]. *)

  val symmetry : state symmetry
  (** see {!type:symmetry}; [Asymmetric] is always sound *)

  val recovery : state recovery
  (** see {!type:recovery}; [Restart] is always sound for historyless
      protocols *)
end

type t = (module S)

(* Symmetry sanity over initial states: for a few (pid, input) pairs and
   pid transpositions τ, [rename] must be an involution that [canon_key],
   [hash_state] and [decision] cannot see through, [rename Fun.id] must be
   the identity, [init] must be equivariant, and [poised] must commute with
   the renaming.  Deeper checks on reachable states (commutation with
   [on_response]) live in [Analyze]'s canon-coherence lint, which can step
   the protocol. *)
let validate_symmetry (module P : S) =
  match P.symmetry with
  | Asymmetric -> ()
  | Anonymous { canon_key; rename } ->
    let fail fmt =
      Fmt.kstr
        (fun s -> invalid_arg (Fmt.str "protocol %s: symmetry: %s" P.name s))
        fmt
    in
    let tau a b p = if p = a then b else if p = b then a else p in
    let pids = List.init (min P.n 4) Fun.id in
    let inputs = List.init (min P.num_inputs 3) Fun.id in
    List.iter
      (fun input ->
        List.iter
          (fun pid ->
            let s = P.init ~pid ~input in
            if not (P.equal_state (rename Fun.id s) s) then
              fail "rename by the identity changes init(p%d,%d)" pid input;
            List.iter
              (fun q ->
                if q <> pid then begin
                  let t = tau pid q in
                  let s' = rename t s in
                  if not (P.equal_state (rename t s') s) then
                    fail "rename (p%d<->p%d) is not an involution on init"
                      pid q;
                  if P.hash_state (rename t s') <> P.hash_state s then
                    fail "hash_state differs across a rename round-trip";
                  if canon_key s' <> canon_key s then
                    fail "canon_key of init(p%d,%d) not invariant under \
                          p%d<->p%d"
                      pid input pid q;
                  if P.decision s' <> P.decision s then
                    fail "decision not invariant under rename";
                  if not (P.equal_state s' (P.init ~pid:q ~input)) then
                    fail "init is not equivariant: rename (p%d<->p%d) of \
                          init(p%d,%d) <> init(p%d,%d)"
                      pid q pid input q input;
                  if P.decision s = None then begin
                    let op = P.poised s in
                    let op' = P.poised s' in
                    if not (Op.equal op' (Op.rename t op)) then
                      fail "poised is not equivariant on init(p%d,%d) under \
                            p%d<->p%d: %a vs %a"
                        pid input pid q Op.pp op' Op.pp (Op.rename t op)
                  end
                end)
              pids)
          pids)
      inputs

(** Check basic well-formedness of a protocol description: object array
    nonempty unless [n <= k] (trivial tasks may use no objects), every initial
    value within its object's domain, parameters in range, and — for
    [Anonymous] protocols — the symmetry hook coherent on initial states. *)
let validate (module P : S) =
  if P.n <= 0 then invalid_arg "protocol: n must be positive";
  if P.k <= 0 then invalid_arg "protocol: k must be positive";
  if P.num_inputs <= 0 then invalid_arg "protocol: num_inputs must be positive";
  if P.space_bound ~n:P.n ~k:P.k < 0 then
    invalid_arg
      (Fmt.str "protocol %s: space_bound must be non-negative" P.name);
  Array.iteri
    (fun i kind ->
      let v = P.init_object i in
      let dom = Obj_kind.domain kind in
      if not (Obj_kind.value_in_domain dom v || Value.equal v Value.Bot) then
        invalid_arg
          (Fmt.str "protocol %s: initial value %a of B%d outside domain"
             P.name Value.pp v i))
    P.objects;
  validate_symmetry (module P)

let name (module P : S) = P.name
let num_objects (module P : S) = Array.length P.objects
let declared_space (module P : S) = P.space_bound ~n:P.n ~k:P.k

let uses_only_historyless (module P : S) =
  Array.for_all Obj_kind.is_historyless P.objects

let uses_only_swap (module P : S) =
  Array.for_all
    (function Obj_kind.Swap_only _ -> true | _ -> false)
    P.objects
