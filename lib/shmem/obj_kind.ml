type domain = Unbounded | Bounded of int

type t =
  | Register of domain
  | Swap_only of domain
  | Readable_swap of domain
  | Test_and_set
  | Test_and_set_reset
  | Compare_and_swap of domain

exception Illegal_operation of string

let domain = function
  | Register d | Swap_only d | Readable_swap d | Compare_and_swap d -> d
  | Test_and_set | Test_and_set_reset -> Bounded 2

let is_historyless = function
  | Register _ | Swap_only _ | Readable_swap _ | Test_and_set
  | Test_and_set_reset ->
    true
  | Compare_and_swap _ -> false

let value_in_domain dom v =
  match dom with
  | Unbounded -> true
  | Bounded b -> ( match v with Value.Int i -> 0 <= i && i < b | _ -> false)

let supports kind (action : Op.action) =
  match kind, action with
  | Register d, Op.Write v -> value_in_domain d v
  | Register _, Op.Read -> true
  | Swap_only d, Op.Swap v -> value_in_domain d v
  | Readable_swap d, Op.Swap v -> value_in_domain d v
  | Readable_swap _, Op.Read -> true
  | Test_and_set, Op.Swap (Value.Int 1) -> true
  | Test_and_set, Op.Read -> true
  | Test_and_set_reset, (Op.Swap (Value.Int 1) | Op.Write (Value.Int 0)) ->
    true
  | Test_and_set_reset, Op.Read -> true
  | Compare_and_swap d, Op.Cas (_, desired) -> value_in_domain d desired
  | Compare_and_swap _, Op.Read -> true
  | ( ( Register _ | Swap_only _ | Readable_swap _ | Test_and_set
      | Test_and_set_reset | Compare_and_swap _ ),
      _ ) ->
    false

let pp ppf kind =
  let pp_dom ppf = function
    | Unbounded -> Fmt.string ppf "ℕ"
    | Bounded b -> Fmt.pf ppf "%d" b
  in
  match kind with
  | Register d -> Fmt.pf ppf "register(%a)" pp_dom d
  | Swap_only d -> Fmt.pf ppf "swap(%a)" pp_dom d
  | Readable_swap d -> Fmt.pf ppf "readable-swap(%a)" pp_dom d
  | Test_and_set -> Fmt.string ppf "test-and-set"
  | Test_and_set_reset -> Fmt.string ppf "test-and-set-reset"
  | Compare_and_swap d -> Fmt.pf ppf "compare-and-swap(%a)" pp_dom d

let apply kind ~current (action : Op.action) =
  if not (supports kind action) then
    raise
      (Illegal_operation
         (Fmt.str "%a does not support %a" pp kind Op.pp { obj = -1; action }));
  match action with
  | Op.Read -> current, current
  | Op.Write v -> v, Value.Unit
  | Op.Swap v -> v, current
  | Op.Cas (expected, desired) ->
    if Value.equal current expected then desired, Value.one
    else current, Value.zero
