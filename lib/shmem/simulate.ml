(** Executable object simulations.

    [6] (Ellen, Fatourou, Ruppert) shows that any historyless object can be
    simulated by a readable swap object with the same domain, and that any
    nontrivial operation on a historyless object can be simulated by [Swap].
    These functors realise both simulations as protocol transformers: they
    rewrite a protocol's object kinds and operations, leaving its state
    machine untouched.  The transformed protocol can be re-run through the
    checker to confirm behavioural equivalence. *)

(** Replace every historyless object by a readable swap object with the same
    domain.  [Write v] becomes [Swap v] with the response discarded.

    @raise Invalid_argument at application time if [P] uses a
    compare-and-swap object (CAS is not historyless). *)
module To_readable_swap (P : Protocol.S) : Protocol.S with type state = P.state =
struct
  include P

  let name = P.name ^ "/readable-swap"

  let objects =
    Array.map
      (fun kind ->
        match (kind : Obj_kind.t) with
        | Register d | Swap_only d | Readable_swap d -> Obj_kind.Readable_swap d
        | Test_and_set | Test_and_set_reset ->
          Obj_kind.Readable_swap (Obj_kind.Bounded 2)
        | Compare_and_swap _ ->
          invalid_arg
            (Fmt.str "To_readable_swap: %s uses CAS, which is not historyless"
               P.name))
      P.objects

  let translate (op : Op.t) =
    match op.Op.action with
    | Op.Write v -> { op with Op.action = Op.Swap v }
    | Op.Read | Op.Swap _ -> op
    | Op.Cas _ -> assert false (* ruled out by [objects] above *)

  let poised s = translate (P.poised s)

  let on_response s resp =
    match (P.poised s).Op.action with
    | Op.Write _ ->
      (* the original protocol expects the [Unit] response of a [Write]; the
         simulating [Swap]'s response (the overwritten value) is discarded *)
      P.on_response s Value.Unit
    | Op.Read | Op.Swap _ | Op.Cas _ -> P.on_response s resp
end

(** Replace every object by a swap-only object (no [Read]).  Only valid for
    protocols that never read; a [Read] by the transformed protocol raises
    {!Obj_kind.Illegal_operation} when executed. *)
module To_swap_only (P : Protocol.S) : Protocol.S with type state = P.state =
struct
  include P

  let name = P.name ^ "/swap-only"

  let objects =
    Array.map
      (fun kind ->
        match (kind : Obj_kind.t) with
        | Register d | Swap_only d | Readable_swap d -> Obj_kind.Swap_only d
        | Test_and_set | Test_and_set_reset ->
          Obj_kind.Swap_only (Obj_kind.Bounded 2)
        | Compare_and_swap _ ->
          invalid_arg
            (Fmt.str "To_swap_only: %s uses CAS, which is not historyless"
               P.name))
      P.objects

  let translate (op : Op.t) =
    match op.Op.action with
    | Op.Write v -> { op with Op.action = Op.Swap v }
    | Op.Read | Op.Swap _ -> op
    | Op.Cas _ -> assert false

  let poised s = translate (P.poised s)

  let on_response s resp =
    match (P.poised s).Op.action with
    | Op.Write _ -> P.on_response s Value.Unit
    | Op.Read | Op.Swap _ | Op.Cas _ -> P.on_response s resp
end
