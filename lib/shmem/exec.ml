module Make (P : Protocol.S) = struct
  type config = { states : P.state array; mem : Value.t array }

  let initial ~inputs =
    if Array.length inputs <> P.n then
      invalid_arg
        (Fmt.str "Exec.initial: %d inputs for %d processes"
           (Array.length inputs) P.n);
    Array.iter
      (fun input ->
        if input < 0 || input >= P.num_inputs then
          invalid_arg (Fmt.str "Exec.initial: input %d out of range" input))
      inputs;
    { states = Array.init P.n (fun pid -> P.init ~pid ~input:inputs.(pid))
    ; mem = Array.init (Array.length P.objects) P.init_object
    }

  let unsafe_config ~states ~mem =
    if Array.length states <> P.n then
      invalid_arg
        (Fmt.str "Exec.unsafe_config: %d states for %d processes"
           (Array.length states) P.n);
    if Array.length mem <> Array.length P.objects then
      invalid_arg
        (Fmt.str "Exec.unsafe_config: %d values for %d objects"
           (Array.length mem)
           (Array.length P.objects));
    { states = Array.copy states; mem = Array.copy mem }

  let value c b = c.mem.(b)
  let decision c pid = P.decision c.states.(pid)

  let decided_values c =
    Array.to_list c.states
    |> List.filter_map P.decision
    |> List.sort_uniq Stdlib.compare

  let undecided c =
    let rec go pid acc =
      if pid < 0 then acc
      else
        go (pid - 1)
          (match P.decision c.states.(pid) with
          | None -> pid :: acc
          | Some _ -> acc)
    in
    go (P.n - 1) []

  let all_decided c = undecided c = []
  let poised c pid = P.poised c.states.(pid)

  let covers c ~pids ~objs =
    List.length pids = List.length objs
    && List.for_all (fun pid -> decision c pid = None) pids
    &&
    let poised_objs =
      List.filter_map
        (fun pid ->
          let op = poised c pid in
          if Op.is_nontrivial op then Some op.Op.obj else None)
        pids
      |> List.sort Stdlib.compare
    in
    List.equal Int.equal poised_objs (List.sort_uniq Stdlib.compare objs)

  type apply_fn = pid:int -> op:Op.t -> current:Value.t -> Value.t * Value.t

  let default_apply ~pid:_ ~op ~current =
    Obj_kind.apply P.objects.(op.Op.obj) ~current op.Op.action

  let step_with ~apply c pid =
    (match P.decision c.states.(pid) with
    | Some _ -> invalid_arg (Fmt.str "Exec.step: p%d already decided" pid)
    | None -> ());
    let op = P.poised c.states.(pid) in
    let new_value, resp = apply ~pid ~op ~current:c.mem.(op.Op.obj) in
    let states = Array.copy c.states in
    let mem = Array.copy c.mem in
    states.(pid) <- P.on_response c.states.(pid) resp;
    mem.(op.Op.obj) <- new_value;
    { states; mem }, { Trace.pid; op; resp }

  let step c pid = step_with ~apply:default_apply c pid

  let run_script c pids =
    let c, rev_steps =
      List.fold_left
        (fun (c, acc) pid ->
          let c, s = step c pid in
          c, s :: acc)
        (c, []) pids
    in
    c, List.rev rev_steps

  let replay c trace =
    List.fold_left
      (fun c { Trace.pid; op; resp } ->
        let c', s = step c pid in
        assert (Op.equal s.Trace.op op);
        assert (Value.equal s.Trace.resp resp);
        c')
      c trace

  type scheduler = step_index:int -> config -> int list -> int option

  let round_robin ~step_index _c enabled =
    match enabled with
    | [] -> None
    | _ ->
      let idx = step_index mod List.length enabled in
      Some (List.nth enabled idx)

  let random rng ~step_index:_ _c enabled =
    match enabled with
    | [] -> None
    | _ -> Some (List.nth enabled (Random.State.int rng (List.length enabled)))

  let solo pid ~step_index:_ _c enabled =
    if List.mem pid enabled then Some pid else None

  let bursty rng ~burst =
    let current = ref None in
    let remaining = ref 0 in
    fun ~step_index:_ _c enabled ->
      match enabled with
      | [] -> None
      | _ ->
        (match !current with
        | Some pid when !remaining > 0 && List.mem pid enabled ->
          decr remaining;
          Some pid
        | _ ->
          let pid = List.nth enabled (Random.State.int rng (List.length enabled)) in
          current := Some pid;
          remaining := burst - 1;
          Some pid)

  let with_crashes ~crash_at sched ~step_index c enabled =
    let alive pid =
      match List.assoc_opt pid crash_at with
      | Some t -> step_index < t
      | None -> true
    in
    match List.filter alive enabled with
    | [] -> None
    | survivors -> sched ~step_index c survivors

  let with_stalls ~stalls sched ~step_index c enabled =
    (* a stalled process is merely delayed, not dead: when every enabled
       process is inside a stall window, stop only if the underlying
       scheduler would (the windows are finite, so a real run resumes) *)
    let awake pid =
      not
        (List.exists
           (fun (p, t, dur) -> p = pid && step_index >= t && step_index < t + dur)
           stalls)
    in
    match List.filter awake enabled with
    | [] -> sched ~step_index c enabled
    | awake -> sched ~step_index c awake

  type outcome = All_decided | Stopped | Step_limit

  let run_with ~apply ~sched ~max_steps c0 =
    let rec go c rev_steps i =
      if i >= max_steps then c, List.rev rev_steps, Step_limit
      else
        match undecided c with
        | [] -> c, List.rev rev_steps, All_decided
        | enabled -> (
          match sched ~step_index:i c enabled with
          | None -> c, List.rev rev_steps, Stopped
          | Some pid ->
            let c, s = step_with ~apply c pid in
            go c (s :: rev_steps) (i + 1))
    in
    go c0 [] 0

  let run ~sched ~max_steps c0 = run_with ~apply:default_apply ~sched ~max_steps c0

  let run_solo ~pid ~max_steps c0 =
    let rec go c rev_steps i =
      match P.decision c.states.(pid) with
      | Some _ -> Some (c, List.rev rev_steps)
      | None ->
        if i >= max_steps then None
        else
          let c, s = step c pid in
          go c (s :: rev_steps) (i + 1)
    in
    go c0 [] 0

  let equal_config c1 c2 =
    Array.for_all2 P.equal_state c1.states c2.states
    && Array.for_all2 Value.equal c1.mem c2.mem

  let hash_config c =
    let h = ref 17 in
    Array.iter (fun s -> h := (!h * 31) + P.hash_state s) c.states;
    Array.iter (fun v -> h := (!h * 31) + Value.hash v) c.mem;
    !h land max_int

  let rename ~perm ~rename_state c =
    if Array.length perm <> P.n then
      invalid_arg "Exec.rename: permutation length <> n";
    (* pids outside 0..n-1 can only appear in malformed stored values;
       leave them alone rather than crash *)
    let f p = if p >= 0 && p < P.n then perm.(p) else p in
    let states = Array.make P.n c.states.(0) in
    Array.iteri (fun p s -> states.(perm.(p)) <- rename_state f s) c.states;
    { states; mem = Array.map (Value.rename f) c.mem }

  let indistinguishable_to ~pids c1 c2 =
    List.for_all (fun pid -> P.equal_state c1.states.(pid) c2.states.(pid)) pids

  let restricted_key ~pids c =
    let h = ref 19 in
    List.iter (fun pid -> h := (!h * 31) + P.hash_state c.states.(pid)) pids;
    Array.iter (fun v -> h := (!h * 31) + Value.hash v) c.mem;
    !h land max_int

  let equal_restricted ~pids c1 c2 =
    indistinguishable_to ~pids c1 c2
    && Array.for_all2 Value.equal c1.mem c2.mem

  let check_validity ~inputs c =
    List.for_all
      (fun v -> Array.exists (Int.equal v) inputs)
      (decided_values c)

  let check_agreement c = List.length (decided_values c) <= P.k

  let pp_config ppf c =
    Fmt.pf ppf "@[<v>mem: @[%a@]@,%a@]"
      Fmt.(array ~sep:(any " ") Value.pp)
      c.mem
      Fmt.(
        iter_bindings ~sep:cut
          (fun f arr -> Array.iteri (fun i s -> f i s) arr)
          (fun ppf (i, s) -> Fmt.pf ppf "p%d: %a" i P.pp_state s))
      c.states
end
