(** Operations that a process can apply to a shared object.

    An operation names the object it targets (by index into the algorithm's
    object array) and the action applied to it.  Following §3 of the paper, an
    action is {e trivial} if it can never modify the value of the object
    ([Read]) and {e nontrivial} otherwise. *)

type action =
  | Read  (** returns the current value; trivial *)
  | Write of Value.t  (** sets the value, returns [Unit]; nontrivial *)
  | Swap of Value.t
      (** sets the value, returns the previous value; nontrivial *)
  | Cas of Value.t * Value.t
      (** [Cas (expected, desired)]: conditional swap, returns [Int 1] on
          success and [Int 0] on failure; nontrivial (and {e not}
          historyless — only used by the CAS baseline) *)

type t = { obj : int; action : action }

val read : int -> t
val write : int -> Value.t -> t
val swap : int -> Value.t -> t
val cas : int -> expected:Value.t -> desired:Value.t -> t

val is_nontrivial : t -> bool
(** Whether the action can modify the value of the object (as an operation,
    per the paper's definition — a [Swap v] is nontrivial even when the object
    currently holds [v]). *)

val targets : t -> int -> bool
(** [targets op i] is true iff [op] is applied to object [i]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
