(** Operations that a process can apply to a shared object.

    An operation names the object it targets (by index into the algorithm's
    object array) and the action applied to it.  Following §3 of the paper, an
    action is {e trivial} if it can never modify the value of the object
    ([Read]) and {e nontrivial} otherwise. *)

type action =
  | Read  (** returns the current value; trivial *)
  | Write of Value.t  (** sets the value, returns [Unit]; nontrivial *)
  | Swap of Value.t
      (** sets the value, returns the previous value; nontrivial *)
  | Cas of Value.t * Value.t
      (** [Cas (expected, desired)]: conditional swap, returns [Int 1] on
          success and [Int 0] on failure; nontrivial (and {e not}
          historyless — only used by the CAS baseline) *)

type t = { obj : int; action : action }

val read : int -> t
val write : int -> Value.t -> t
val swap : int -> Value.t -> t
val cas : int -> expected:Value.t -> desired:Value.t -> t

val is_nontrivial : t -> bool
(** Whether the action can modify the value of the object (as an operation,
    per the paper's definition — a [Swap v] is nontrivial even when the object
    currently holds [v]). *)

val targets : t -> int -> bool
(** [targets op i] is true iff [op] is applied to object [i]. *)

val is_historyless_action : action -> bool
(** every action except [Cas]: the value the action leaves in the object
    does not depend on the value it found there (§2).  [lib/analyze] derives
    a protocol's historyless flag from the actions it actually reaches,
    cross-checking the kind-based [Protocol.uses_only_historyless]. *)

val is_historyless : t -> bool

val is_swap_action : action -> bool
(** exactly [Swap _] — the Theorem 10 model admits no other action *)

val installs : resp:Value.t -> action -> Value.t option
(** the value the action stored in the object, given the response it
    obtained: [Write]/[Swap] always install their argument, a [Cas]
    installs its desired value only when it succeeded (response
    [Value.one]), and [Read] installs nothing.  This is the write half the
    happens-before checker matches responses against. *)

val rename_action : (int -> int) -> action -> action
val rename : (int -> int) -> t -> t
(** map every [Pid] mention in the action's argument values through [f]
    ({!Value.rename}); the target object index is untouched *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
