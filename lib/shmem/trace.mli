(** Execution traces: the history of an execution (§3) together with the
    responses each step obtained, which determines the execution uniquely for
    deterministic protocols. *)

type step = { pid : int; op : Op.t; resp : Value.t }

type t = step list
(** in execution order (earliest first) *)

val pp_step : Format.formatter -> step -> unit
val pp : Format.formatter -> t -> unit

val rename_step : (int -> int) -> step -> step
(** apply a process renaming to one step: the acting pid and every [Pid]
    mention in the operation's arguments and the response *)

val rename : (int -> int) -> t -> t

val history : t -> (int * Op.t) list
(** the history of the execution: operations with the processes that applied
    them, responses erased *)

val pids : t -> int list
(** processes taking at least one step, ascending, without duplicates *)

val is_p_only : allowed:(int -> bool) -> t -> bool
(** whether every step is by a process satisfying [allowed] (a [P]-only
    execution in the paper's terminology) *)

val objects_accessed : t -> int list
(** indices of objects accessed by at least one step, ascending, without
    duplicates *)

val objects_swapped : t -> int list
(** indices of objects to which at least one nontrivial operation was
    applied, ascending, without duplicates *)

val steps_by : pid:int -> t -> int
val length : t -> int

val indistinguishable_to : pid:int -> t -> t -> bool
(** [indistinguishable_to ~pid t1 t2] checks the trace half of the paper's
    α₁ ~p α₂ relation: [pid] performs the same sequence of operations and
    obtains the same sequence of responses in both traces. *)
