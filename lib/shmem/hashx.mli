(** Explicit hash mixing for protocol [hash_state] implementations.

    [Stdlib.Hashtbl.hash] stops after traversing a small, fixed number of
    "meaningful" nodes (10 by default), so states carrying lap arrays or
    phase lists hash to the same bucket once the prefix coincides — which
    silently degrades [Explore]'s interned store from O(1) to O(bucket).
    It is therefore banned from state hashing by the source lint
    ([bin/srclint.ml]); protocols mix their fields explicitly with these
    FNV-1a-style combinators instead.

    All combinators thread an accumulator: start from {!seed} and fold each
    field in.  Results are non-negative (truncated to [max_int]) and
    deterministic across runs and architectures of equal word size. *)

val seed : int
(** the FNV-1a offset basis *)

val int : int -> int -> int
(** [int h x] mixes [x] into [h] *)

val bool : int -> bool -> int

val opt : (int -> 'a -> int) -> int -> 'a option -> int
(** [opt f h o] distinguishes [None] from [Some x] before mixing [x] *)

val ints : int -> int array -> int
(** length-prefixed fold over an [int array] *)

val list : (int -> 'a -> int) -> int -> 'a list -> int
(** length-prefixed fold over a list *)

val fold2 : (int -> 'a -> int) -> (int -> 'b -> int) -> int -> 'a * 'b -> int
