(** Values stored in shared objects and returned as operation responses.

    The paper's swap objects store natural numbers; structured values such as
    the pair [⟨lap counter array, process identifier⟩] used by Algorithm 1 are
    a finite encoding of naturals, so we represent them directly rather than
    Gödel-numbering them.  All values are immutable: [Ints] arrays must never
    be mutated after construction. *)

type t =
  | Unit  (** response of a [Write]; never stored in an object *)
  | Bot  (** the distinguished initial value ⊥ *)
  | Int of int
  | Pid of int  (** a process identifier *)
  | Ints of int array  (** an immutable integer vector (e.g. a lap counter) *)
  | Pair of t * t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val rename : (int -> int) -> t -> t
(** [rename f v] maps every [Pid p] mention to [Pid (f p)], leaving all other
    structure untouched.  Physically returns [v] when nothing changes.  With a
    bijective [f] this is the memory half of a process-permutation action on
    configurations (anonymity: see [Protocol.symmetry]). *)

val fold_pids : ('a -> int -> 'a) -> 'a -> t -> 'a
(** left fold over the [Pid] mentions of a value, in structural
    (left-to-right) order *)

val hash_skel : t -> int
(** a hash of the value's skeleton: like {!hash} but every [Pid _] collapses
    to one tag, so [hash_skel (rename f v) = hash_skel v] for any [f].
    Canonicalization keys ([Protocol.symmetry]) must use this on any stored
    raw values so the key is permutation-invariant. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val zero : t
(** [Int 0]. *)

val one : t
(** [Int 1]. *)

val ints : int array -> t
(** [ints a] is [Ints (Array.copy a)]; copies so later mutation of [a] cannot
    alias into a stored value. *)

val as_int : t -> int
(** @raise Invalid_argument if the value is not [Int _]. *)
