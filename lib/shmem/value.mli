(** Values stored in shared objects and returned as operation responses.

    The paper's swap objects store natural numbers; structured values such as
    the pair [⟨lap counter array, process identifier⟩] used by Algorithm 1 are
    a finite encoding of naturals, so we represent them directly rather than
    Gödel-numbering them.  All values are immutable: [Ints] arrays must never
    be mutated after construction. *)

type t =
  | Unit  (** response of a [Write]; never stored in an object *)
  | Bot  (** the distinguished initial value ⊥ *)
  | Int of int
  | Pid of int  (** a process identifier *)
  | Ints of int array  (** an immutable integer vector (e.g. a lap counter) *)
  | Pair of t * t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val zero : t
(** [Int 0]. *)

val one : t
(** [Int 1]. *)

val ints : int array -> t
(** [ints a] is [Ints (Array.copy a)]; copies so later mutation of [a] cannot
    alias into a stored value. *)

val as_int : t -> int
(** @raise Invalid_argument if the value is not [Int _]. *)
