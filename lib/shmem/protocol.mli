(** Deterministic protocol state machines.

    A protocol packages an instance of a distributed algorithm: the shared
    objects it uses (with their kinds and initial values) and, for each
    process, a deterministic state machine.  A process that has decided takes
    no further steps, matching the paper's model of one-shot agreement tasks.

    Engines that need to run a protocol are functors over this signature
    (see {!Exec.Make} and [Explore.Make]); protocol constructors such as
    [Swap_ksa.make] return first-class [(module S)] values. *)

type 'state symmetry =
  | Asymmetric
      (** no symmetry declared; always sound, disables orbit reduction *)
  | Anonymous of {
      canon_key : 'state -> int;
      rename : (int -> int) -> 'state -> 'state;
    }
      (** the protocol is {e anonymous}: processes differ only by their
          embedded pid, so configurations that differ by a pid permutation
          are behaviourally equivalent.  [rename f s] maps the pid(s)
          embedded in [s] through [f] (including [Pid] mentions inside any
          stored raw {!Value.t}s, via {!Value.rename}); it must be the
          identity for [f = Fun.id], satisfy
          [rename f (rename g s) = rename (fun p -> f (g p)) s], and commute
          with [init]/[poised]/[on_response]/[decision] (see
          {!validate}).  [canon_key s] is a renaming-invariant total
          summary — [canon_key (rename f s) = canon_key s] for every
          bijection [f] — used to sort processes into a canonical order
          (hash everything except the pid; {!Value.hash_skel} for stored
          values).  Key collisions between genuinely different states only
          cost collapse, never soundness. *)

type 'state recovery =
  | Restart
      (** a respawned process rejoins from [init ~pid ~input] — always
          sound for historyless / swap-only protocols (which [Analyze]
          derives): the new incarnation is indistinguishable from a
          late-starting fresh participant, so safety degrades at most to
          [(k + crashed)]-set agreement (Gafni's restricted-runs view) and
          validity is untouched *)
  | Resume of (pid:int -> input:int -> Value.t array -> 'state)
      (** rebuild the local state from a snapshot of the shared memory
          (index = object id).  The rebuilt state must be
          reachable-equivalent: anything it can go on to decide must be
          decidable by some fresh process reading the same memory —
          e.g. CAS consensus adopting the already-installed winner. *)

module type S = sig
  val name : string

  val n : int
  (** number of processes; pids are [0 .. n-1] *)

  val k : int
  (** the agreement parameter: at most [k] distinct values may be decided *)

  val num_inputs : int
  (** [m]: inputs range over [0 .. m-1] *)

  val objects : Obj_kind.t array
  (** the shared objects, [B_0 .. B_{len-1}] *)

  val init_object : int -> Value.t
  (** initial value of each object *)

  type state

  val init : pid:int -> input:int -> state

  val poised : state -> Op.t
  (** the next operation of an undecided process; never called after
      [decision] returns [Some _] *)

  val on_response : state -> Value.t -> state
  (** local computation after receiving the response to the poised
      operation *)

  val decision : state -> int option
  val equal_state : state -> state -> bool
  val hash_state : state -> int
  val pp_state : Format.formatter -> state -> unit

  val space_bound : n:int -> k:int -> int
  (** the algorithm family's {e declared} object-space bound: an upper
      bound on the number of distinct base objects any execution of the
      [n]-process, [k]-agreement instance accesses ([n - k] for
      Algorithm 1; per-family closed forms for the baselines).  At the
      module's own [n]/[k] it must dominate the measured maximum — the
      space certifier of [lib/analyze] ([Analyze.Make.space]) explores the
      reachable configuration graph and fails any protocol whose
      executions touch more distinct objects than declared (an
      {e under-claim}); a declaration strictly above the measured maximum
      on an exhaustively closed graph is flagged as an over-claim, like
      the historyless flags.  See {!declared_space}. *)

  val symmetry : state symmetry
  (** see {!type:symmetry}; [Asymmetric] is always sound *)

  val recovery : state recovery
  (** see {!type:recovery}; [Restart] is always sound for historyless
      protocols *)
end

type t = (module S)

val validate : t -> unit
(** Check basic well-formedness of a protocol description: every initial
    value within its object's domain and parameters in range.  For
    [Anonymous] protocols additionally checks the symmetry hook on initial
    states: [rename] is an identity-respecting involution under
    transpositions, [init] is equivariant, [poised] commutes with renaming,
    and [canon_key]/[hash_state]/[decision] are renaming-invariant.
    @raise Invalid_argument otherwise *)

val name : t -> string
val num_objects : t -> int

val declared_space : t -> int
(** [P.space_bound] applied to the protocol's own [n] and [k] — the bound
    the space certifier gates its measurement against *)

val uses_only_historyless : t -> bool
(** no object of the protocol is a compare-and-swap (§2's historyless
    restriction, the hypothesis of the Lemma 9 adversary) *)

val uses_only_swap : t -> bool
(** every object is [Swap_only] (not even readable) — the model of
    Theorem 10 *)
