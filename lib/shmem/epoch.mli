(** Epoch-stamped slot identifiers — the ABA guard for recycled resources.

    A long-running service that recycles pre-allocated resources (the swap
    arenas of [lib/arena]) must distinguish "slot 3, as issued for round
    1041" from "slot 3, as reissued for round 1898": a stale reference to a
    recycled slot silently operating on fresh memory is the classic ABA
    failure.  A {!stamp} packs a slot index and its reuse epoch into one
    immutable OCaml [int], so a stamp can be stored in an [int Atomic.t],
    compared with one load, and never confuses two issues of the same slot:
    recycling bumps the epoch, and every consumer checks the whole stamp,
    not just the slot index.

    Layout: the slot index occupies the low {!slot_bits} bits, the epoch
    the remaining (high) bits of the 63-bit OCaml int.  Epochs are bounded
    by [2^(62 - slot_bits)] — at a million recycles per second per slot
    that is centuries of service; {!next} raises on wrap rather than
    aliasing. *)

type stamp = private int
(** an immutable (slot, epoch) pair; the [private int] exposes that stamps
    are word-sized and totally ordered (ordering is (epoch, slot)-major
    only within one slot — compare stamps of the same slot only) *)

val slot_bits : int
(** bits reserved for the slot index (20: up to [2^20] slots) *)

val max_slots : int
(** [2^slot_bits] *)

val max_epoch : int
(** largest representable epoch *)

val make : slot:int -> epoch:int -> stamp
(** @raise Invalid_argument unless [0 <= slot < max_slots] and
    [0 <= epoch <= max_epoch] *)

val slot : stamp -> int
val epoch : stamp -> int

val next : stamp -> stamp
(** the same slot at the following epoch — what a recycle issues.
    @raise Invalid_argument on epoch overflow (never in practice) *)

val equal : stamp -> stamp -> bool
val hash : stamp -> int
val to_int : stamp -> int

val of_int : int -> stamp
(** inverse of {!to_int} for stamps stored in atomics.
    @raise Invalid_argument on a negative word *)

val pp : Format.formatter -> stamp -> unit
(** renders as [slot@epoch] *)
