let cell_of_step step ~decides =
  let letter =
    match step.Trace.op.Op.action with
    | Op.Read -> "r"
    | Op.Write _ -> "W"
    | Op.Swap _ -> "S"
    | Op.Cas _ -> "C"
  in
  let obj = string_of_int step.Trace.op.Op.obj in
  letter ^ obj ^ if decides then "*" else ""

let render ?(columns = 24) ~n ppf trace =
  let steps = Array.of_list trace in
  let total = Array.length steps in
  (* a process decides on its last step iff the trace records no further
     steps by it — callers pass complete traces, so mark last occurrences *)
  let last_step_of = Hashtbl.create 16 in
  Array.iteri (fun i s -> Hashtbl.replace last_step_of s.Trace.pid i) steps;
  let cell i =
    let s = steps.(i) in
    cell_of_step s ~decides:(Hashtbl.find last_step_of s.Trace.pid = i)
  in
  let width =
    let w = ref 2 in
    for i = 0 to total - 1 do
      w := max !w (String.length (cell i))
    done;
    !w
  in
  let bands = (total + columns - 1) / max 1 columns in
  for band = 0 to max 0 (bands - 1) do
    let lo = band * columns in
    let hi = min total (lo + columns) - 1 in
    if band > 0 then Fmt.pf ppf "@,";
    Fmt.pf ppf "@[<v>";
    for pid = 0 to n - 1 do
      Fmt.pf ppf "p%-2d |" pid;
      for i = lo to hi do
        let content = if steps.(i).Trace.pid = pid then cell i else "" in
        Fmt.pf ppf " %-*s" width content
      done;
      Fmt.pf ppf "@,"
    done;
    Fmt.pf ppf "     %s@]" (String.make ((hi - lo + 1) * (width + 1)) '-')
  done
