let seed = 0x811c9dc5

let int h x =
  let h = (h lxor x) * 0x01000193 in
  h land max_int

let bool h b = int h (if b then 0x9e37 else 0x61c8)
let opt f h = function None -> int h 0x7f4a7c15 | Some x -> f (int h 1) x
let ints h a = Array.fold_left int (int h (Array.length a)) a
let list f h l = List.fold_left f (int h (List.length l)) l
let fold2 f g h (a, b) = g (f h a) b
