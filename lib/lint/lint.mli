(** A multi-pass static-analysis framework over OCaml sources.

    The repository's claims rest on protocols being deterministic pure
    transition functions and on the multicore layers following a strict
    shared-state discipline.  The dynamic lints in [lib/analyze] catch
    violations when they manifest; this library rejects the offending
    constructs at the source level.  Each {e pass} inspects the parsetree
    (compiler-libs) of an [.ml] file; the driver parses every file exactly
    once and hands the same tree to each pass scheduled for it, so adding a
    pass never adds a parse.

    Built-in passes:

    - {!purity}: any use of [Random.*], [Unix.*], [Obj.*] or [Marshal.*] —
      protocol code must not read clocks, draw randomness, or defeat the
      type system;
    - {!poly_hash}: [Hashtbl.hash] / [seeded_hash] / [hash_param] and
      qualified [Stdlib.compare] — polymorphic hashing stops after a small
      fixed number of nodes (lap arrays collide) and polymorphic compare
      diverges from the protocol's own [equal_state];
    - {!state_equality}: whole-state polymorphic [=] / [<>] / [compare] on
      the parameters of [equal_state] / [hash_state] / [compare_state]
      bindings — state equality must be structural and explicit;
    - {!monotonic}: wall-clock reads ([Unix.gettimeofday] / [Unix.time] /
      [Sys.time]) in deadline and watchdog code, which jump under NTP slew;
      monotonic time comes from [Resil.Clock];
    - {!domain_escape}: a mutable non-[Atomic] binding ([ref],
      [Hashtbl.create], [Buffer.create], [Queue.create]) syntactically
      reachable from more than one [Domain.spawn] closure — unsynchronized
      cross-domain sharing.  Arrays are deliberately exempt: disjoint
      per-slot writes with a post-join read are the accepted idiom in the
      runtime;
    - {!atomics_discipline}: an [Atomic.set] whose new value is derived
      from an [Atomic.get] of the same cell (the lost-update shape — a
      [compare_and_set] / [exchange] retry loop is required), and blocking
      calls ([Unix.sleep*], [Thread.delay], [Domain.join], [Mutex.lock],
      [Condition.wait]) inside [Policy.retry] bodies, which stall the
      retry budget.

    Used by [bin/srclint] (the @srclint alias) and [swapspace lint]. *)

(** {1 Findings} *)

type finding = {
  file : string;
  line : int;
  col : int;
  pass : string;  (** name of the pass that raised it *)
  message : string;
}

val pp_finding : Format.formatter -> finding -> unit
(** [file:line:col: message [pass]] — one line, compiler style *)

val compare_finding : finding -> finding -> int
(** position first, then pass name, then message — the stable order
    {!run_plan} sorts by so CI diffs are clean *)

(** {1 Passes} *)

type pass

val pass_name : pass -> string
val pass_doc : pass -> string

val purity : pass
val poly_hash : pass
val state_equality : pass
val monotonic : pass
val domain_escape : pass
val atomics_discipline : pass

val registry : pass list
(** every built-in pass, in reporting order *)

val find_pass : string -> (pass, string) result
(** look a pass up by name; [Error] lists the known names *)

(** {1 Running} *)

val ml_files : string -> string list
(** the [.ml] files under a directory (recursively, sorted); a path that
    is itself an [.ml] file is returned as-is *)

val run_plan : (string * pass list) list -> finding list
(** Run a lint plan: each element schedules the passes on a directory (or
    single file).  Every file is parsed exactly once even when several
    plan elements cover it, and each pass runs at most once per file, so a
    file reached through two overlapping targets reports each violation
    once.  The result is deduplicated and sorted by {!compare_finding}.
    A file that fails to parse contributes a single [parse] finding.
    Counters: [lint.files], [lint.findings], [lint.parse_errors]. *)
