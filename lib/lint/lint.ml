(* A pass registry over one shared compiler-libs parse per file.  See
   lint.mli for the catalogue; bin/srclint and [swapspace lint] are the
   drivers. *)

(* ------------------------------------------------------------- findings *)

type finding = {
  file : string;
  line : int;
  col : int;
  pass : string;
  message : string;
}

let pp_finding ppf f =
  Fmt.pf ppf "%s:%d:%d: %s [%s]" f.file f.line f.col f.message f.pass

let compare_finding a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.pass b.pass in
        if c <> 0 then c else String.compare a.message b.message

(* --------------------------------------------------------------- passes *)

type pass = {
  name : string;
  doc : string;
  check : file:string -> Parsetree.structure -> finding list;
}

let pass_name p = p.name
let pass_doc p = p.doc

(* a collector the pass implementations report into *)
let collector ~file ~pass =
  let acc = ref [] in
  let report loc message =
    let p = loc.Location.loc_start in
    acc :=
      { file
      ; line = p.Lexing.pos_lnum
      ; col = p.Lexing.pos_cnum - p.Lexing.pos_bol
      ; pass
      ; message
      }
      :: !acc
  in
  acc, report

let rec flatten_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten_lid l @ [ s ]
  | Longident.Lapply (l, _) -> flatten_lid l

(* every [Pexp_ident]/[Pexp_new] in the structure, through one default
   traversal — the shape the three ident-ban passes share *)
let iter_idents structure f =
  let open Ast_iterator in
  let expr this e =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt; loc } -> f loc txt
    | Parsetree.Pexp_new { txt; loc } -> f loc txt
    | _ -> ());
    default_iterator.expr this e
  in
  let it = { default_iterator with expr } in
  it.structure it structure

(* ---- purity: banned modules wholesale ---- *)

let banned_modules = [ "Random"; "Unix"; "Obj"; "Marshal" ]

let purity =
  { name = "purity"
  ; doc =
      "ban Random/Unix/Obj/Marshal in protocol code (hidden nondeterminism \
       or unsafe casts invalidate exploration)"
  ; check =
      (fun ~file structure ->
        let acc, report = collector ~file ~pass:"purity" in
        iter_idents structure (fun loc lid ->
            match flatten_lid lid with
            | head :: _ as path when List.mem head banned_modules ->
              report loc
                (Fmt.str "use of banned module in %s"
                   (String.concat "." path))
            | _ -> ());
        !acc)
  }

(* ---- poly-hash: polymorphic hash/compare idents ---- *)

let banned_idents =
  [ [ "Hashtbl"; "hash" ]; [ "Hashtbl"; "seeded_hash" ]
  ; [ "Hashtbl"; "hash_param" ]; [ "Stdlib"; "compare" ]
  ; [ "Stdlib"; "Hashtbl"; "hash" ]
  ]

let poly_hash =
  { name = "poly-hash"
  ; doc =
      "ban Hashtbl.hash/seeded_hash/hash_param and qualified \
       Stdlib.compare (use Shmem.Hashx field by field)"
  ; check =
      (fun ~file structure ->
        let acc, report = collector ~file ~pass:"poly-hash" in
        iter_idents structure (fun loc lid ->
            let path = flatten_lid lid in
            if List.exists (fun b -> b = path) banned_idents then
              report loc
                (Fmt.str "polymorphic hash/compare: %s (use Shmem.Hashx)"
                   (String.concat "." path)));
        !acc)
  }

(* ---- state-equality: whole-state polymorphic =/<>/compare ---- *)

let state_fns = [ "equal_state"; "hash_state"; "compare_state" ]

let rec fun_params acc e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_fun (_, _, pat, body) ->
    let acc =
      match pat.Parsetree.ppat_desc with
      | Parsetree.Ppat_var { txt; _ } -> txt :: acc
      | _ -> acc
    in
    fun_params acc body
  | _ -> acc

let is_param params e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt = Longident.Lident x; _ } -> List.mem x params
  | _ -> false

let state_equality =
  { name = "state-equality"
  ; doc =
      "ban whole-state polymorphic =/<>/compare inside \
       equal_state/hash_state bindings (write structural equality)"
  ; check =
      (fun ~file structure ->
        let acc, report = collector ~file ~pass:"state-equality" in
        let check_body fn_name params body =
          let open Ast_iterator in
          let expr this e =
            (match e.Parsetree.pexp_desc with
            | Parsetree.Pexp_apply
                ( { pexp_desc = Pexp_ident { txt = Longident.Lident op; _ }
                  ; _
                  }
                , [ (_, a); (_, b) ] )
              when List.mem op [ "="; "<>"; "compare" ]
                   && is_param params a && is_param params b ->
              report e.Parsetree.pexp_loc
                (Fmt.str
                   "whole-state polymorphic %s in %s (write structural \
                    equality)"
                   op fn_name)
            | Parsetree.Pexp_ident { txt = Longident.Lident "compare"; loc }
              ->
              report loc
                (Fmt.str "bare polymorphic compare in %s" fn_name)
            | _ -> ());
            default_iterator.expr this e
          in
          let it = { default_iterator with expr } in
          it.expr it body
        in
        let open Ast_iterator in
        let value_binding this vb =
          (match vb.Parsetree.pvb_pat.Parsetree.ppat_desc with
          | Parsetree.Ppat_var { txt; _ } when List.mem txt state_fns ->
            check_body txt (fun_params [] vb.Parsetree.pvb_expr)
              vb.Parsetree.pvb_expr
          | _ -> ());
          default_iterator.value_binding this vb
        in
        let it = { default_iterator with value_binding } in
        it.structure it structure;
        !acc)
  }

(* ---- monotonic: wall-clock reads in deadline code ---- *)

let banned_wallclock =
  [ [ "Unix"; "gettimeofday" ]; [ "Unix"; "time" ]; [ "Sys"; "time" ]
  ; [ "Stdlib"; "Sys"; "time" ]
  ]

let monotonic =
  { name = "monotonic"
  ; doc =
      "ban wall-clock reads (Unix.gettimeofday/Unix.time/Sys.time) in \
       deadline code (use Resil.Clock)"
  ; check =
      (fun ~file structure ->
        let acc, report = collector ~file ~pass:"monotonic" in
        iter_idents structure (fun loc lid ->
            let path = flatten_lid lid in
            if List.exists (fun b -> b = path) banned_wallclock then
              report loc
                (Fmt.str
                   "wall-clock read %s in deadline code (use Resil.Clock)"
                   (String.concat "." path)));
        !acc)
  }

(* ---- domain-escape: mutable non-Atomic state shared across spawns ---- *)

(* expression heads whose [let]-binding creates mutable non-Atomic state.
   Arrays are deliberately exempt: disjoint per-slot writes joined before
   the read are the accepted idiom in lib/runtime. *)
let mutable_makers =
  [ [ "ref" ]; [ "Stdlib"; "ref" ]; [ "Hashtbl"; "create" ]
  ; [ "Buffer"; "create" ]; [ "Queue"; "create" ]
  ; [ "Stdlib"; "Hashtbl"; "create" ]
  ]

(* the names of all (Lident) identifiers mentioned under [e] *)
let idents_under e =
  let names = Hashtbl.create 16 in
  let open Ast_iterator in
  let expr this x =
    (match x.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt = Longident.Lident n; _ } ->
      Hashtbl.replace names n ()
    | _ -> ());
    default_iterator.expr this x
  in
  let it = { default_iterator with expr } in
  it.expr it e;
  names

let head_path e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } -> flatten_lid txt
  | _ -> []

let ends_with suffix path =
  let lp = List.length path and ls = List.length suffix in
  lp >= ls && List.filteri (fun i _ -> i >= lp - ls) path = suffix

let domain_escape =
  { name = "domain-escape"
  ; doc =
      "mutable non-Atomic state (ref/Hashtbl/Buffer/Queue) captured by \
       more than one Domain.spawn closure"
  ; check =
      (fun ~file structure ->
        let acc, report = collector ~file ~pass:"domain-escape" in
        (* phase 1: mutable bindings and spawn-closure ident sets *)
        let mutables = ref [] in
        let spawns = ref [] in
        let open Ast_iterator in
        let value_binding this vb =
          (match vb.Parsetree.pvb_pat.Parsetree.ppat_desc with
          | Parsetree.Ppat_var { txt = name; loc } ->
            let head =
              match vb.Parsetree.pvb_expr.Parsetree.pexp_desc with
              | Parsetree.Pexp_apply (f, _) -> head_path f
              | _ -> []
            in
            if List.exists (fun m -> m = head) mutable_makers then
              mutables := (name, loc, String.concat "." head) :: !mutables
          | _ -> ());
          default_iterator.value_binding this vb
        in
        let expr this e =
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_apply (f, (_, closure) :: _)
            when ends_with [ "Domain"; "spawn" ] (head_path f) ->
            spawns := idents_under closure :: !spawns
          | _ -> ());
          default_iterator.expr this e
        in
        let it = { default_iterator with expr; value_binding } in
        it.structure it structure;
        (* phase 2: correlate — two spawn closures seeing the same mutable
           binding is unsynchronized cross-domain sharing *)
        List.iter
          (fun (name, loc, maker) ->
            let captures =
              List.length
                (List.filter (fun s -> Hashtbl.mem s name) !spawns)
            in
            if captures > 1 then
              report loc
                (Fmt.str
                   "mutable binding %s (%s) is captured by %d Domain.spawn \
                    closures (share through Atomic or per-domain state)"
                   name maker captures))
          (List.rev !mutables);
        !acc)
  }

(* ---- atomics-discipline: lost-update shapes and blocking retries ---- *)

let blocking_calls =
  [ [ "Unix"; "sleep" ]; [ "Unix"; "sleepf" ]; [ "Thread"; "delay" ]
  ; [ "Domain"; "join" ]; [ "Mutex"; "lock" ]; [ "Condition"; "wait" ]
  ]

(* syntactic cell identity: the rendered source of the cell expression *)
let cell_key e = Pprintast.string_of_expression e

let atomics_discipline =
  { name = "atomics-discipline"
  ; doc =
      "Atomic.set derived from Atomic.get of the same cell (needs a \
       compare_and_set/exchange retry loop); blocking calls inside \
       Policy.retry bodies"
  ; check =
      (fun ~file structure ->
        let acc, report = collector ~file ~pass:"atomics-discipline" in
        (* [let v = Atomic.get cell] bindings seen so far: v -> cell key.
           File-scoped, not scope-exact — a heuristic lint errs on the
           side of reporting. *)
        let got = Hashtbl.create 8 in
        let derived_from key e =
          let hit = ref false in
          let open Ast_iterator in
          let expr this x =
            (match x.Parsetree.pexp_desc with
            | Parsetree.Pexp_apply (f, [ (_, cell) ])
              when ends_with [ "Atomic"; "get" ] (head_path f)
                   && String.equal (cell_key cell) key ->
              hit := true
            | Parsetree.Pexp_ident { txt = Longident.Lident v; _ }
              when Hashtbl.mem got v
                   && String.equal (Hashtbl.find got v) key ->
              hit := true
            | _ -> ());
            default_iterator.expr this x
          in
          let it = { default_iterator with expr } in
          it.expr it e;
          !hit
        in
        let contains_blocking e k =
          let open Ast_iterator in
          let expr this x =
            (match x.Parsetree.pexp_desc with
            | Parsetree.Pexp_ident { txt; loc } ->
              let path = flatten_lid txt in
              if List.exists (fun b -> b = path) blocking_calls then
                k loc (String.concat "." path)
            | _ -> ());
            default_iterator.expr this x
          in
          let it = { default_iterator with expr } in
          it.expr it e
        in
        let open Ast_iterator in
        let value_binding this vb =
          (match
             vb.Parsetree.pvb_pat.Parsetree.ppat_desc,
             vb.Parsetree.pvb_expr.Parsetree.pexp_desc
           with
          | ( Parsetree.Ppat_var { txt = v; _ },
              Parsetree.Pexp_apply (f, [ (_, cell) ]) )
            when ends_with [ "Atomic"; "get" ] (head_path f) ->
            Hashtbl.replace got v (cell_key cell)
          | _ -> ());
          default_iterator.value_binding this vb
        in
        let expr this e =
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_apply (f, [ (_, cell); (_, value) ])
            when ends_with [ "Atomic"; "set" ] (head_path f) ->
            let key = cell_key cell in
            if derived_from key value then
              report e.Parsetree.pexp_loc
                (Fmt.str
                   "Atomic.set of %s derived from its own Atomic.get (use \
                    a compare_and_set/exchange retry loop)"
                   key)
          | Parsetree.Pexp_apply (f, args)
            when ends_with [ "retry" ] (head_path f) ->
            List.iter
              (fun (_, arg) ->
                contains_blocking arg (fun loc what ->
                    report loc
                      (Fmt.str
                         "blocking %s inside a Policy.retry body (stalls \
                          the retry budget)"
                         what)))
              args
          | _ -> ());
          default_iterator.expr this e
        in
        let it = { default_iterator with expr; value_binding } in
        it.structure it structure;
        !acc)
  }

(* ------------------------------------------------------------- registry *)

let registry =
  [ purity; poly_hash; state_equality; monotonic; domain_escape
  ; atomics_discipline
  ]

let find_pass name =
  match List.find_opt (fun p -> String.equal p.name name) registry with
  | Some p -> Ok p
  | None ->
    Error
      (Fmt.str "unknown pass %s (known: %s)" name
         (String.concat ", " (List.map (fun p -> p.name) registry)))

(* -------------------------------------------------------------- driving *)

let m_files = Obs.counter "lint.files"
let m_findings = Obs.counter "lint.findings"
let m_parse_errors = Obs.counter "lint.parse_errors"
let sp_run = Obs.span "lint.run"

let rec ml_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.concat_map (fun f -> ml_files (Filename.concat path f))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      match Parse.implementation lexbuf with
      | ast -> Ok ast
      | exception exn -> Error (Printexc.to_string exn))

let run_plan plan =
  Obs.Span.time sp_run @@ fun () ->
  (* schedule: file -> passes, each pass at most once per file, files in
     first-seen order *)
  let scheduled : (string, pass list ref) Hashtbl.t = Hashtbl.create 64 in
  let files = ref [] in
  List.iter
    (fun (target, passes) ->
      List.iter
        (fun file ->
          let slot =
            match Hashtbl.find_opt scheduled file with
            | Some s -> s
            | None ->
              let s = ref [] in
              Hashtbl.add scheduled file s;
              files := file :: !files;
              s
          in
          List.iter
            (fun p ->
              if not (List.memq p !slot) then slot := p :: !slot)
            passes)
        (ml_files target))
    plan;
  let findings =
    List.concat_map
      (fun file ->
        Obs.Counter.incr m_files;
        match parse_file file with
        | Error msg ->
          Obs.Counter.incr m_parse_errors;
          [ { file
            ; line = 1
            ; col = 0
            ; pass = "parse"
            ; message = Fmt.str "parse error (%s)" msg
            }
          ]
        | Ok structure ->
          let passes = List.rev !(Hashtbl.find scheduled file) in
          List.concat_map (fun p -> p.check ~file structure) passes)
      (List.rev !files)
  in
  let findings = List.sort_uniq compare_finding findings in
  List.iter (fun _ -> Obs.Counter.incr m_findings) findings;
  findings
