module Sh = Shmem

(* ---------------------------------------------------------------- reports *)

type status = Pass | Fail of string list | Skipped of string

type check = { id : string; title : string; status : status }

type report = {
  protocol : string;
  n : int;
  k : int;
  m : int;
  configs : int;
  exhaustive : bool;
  declared_historyless : bool;
  declared_swap_only : bool;
  derived_historyless : bool;
  derived_swap_only : bool;
  solo_measured_max : int;
  solo_checked : int;
  solo_bound : int option;
  checks : check list;
}

let ok r =
  List.for_all
    (fun c -> match c.status with Fail _ -> false | Pass | Skipped _ -> true)
    r.checks

let pp_status ppf = function
  | Pass -> Fmt.string ppf "pass"
  | Skipped why -> Fmt.pf ppf "skipped (%s)" why
  | Fail details ->
    Fmt.pf ppf "FAIL@,%a"
      Fmt.(list ~sep:cut (fun ppf d -> Fmt.pf ppf "    %s" d))
      details

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>%s (n=%d k=%d m=%d): %s, %d configurations%s@,\
     flags: historyless declared=%b derived=%b, swap-only declared=%b \
     derived=%b@,\
     solo: measured max %d over %d runs%a@,%a@]"
    r.protocol r.n r.k r.m
    (if ok r then "ok" else "ANALYSIS FAILED")
    r.configs
    (if r.exhaustive then " (exhaustive)" else " (bounded)")
    r.declared_historyless r.derived_historyless r.declared_swap_only
    r.derived_swap_only r.solo_measured_max r.solo_checked
    Fmt.(option (fun ppf b -> Fmt.pf ppf ", declared bound %d" b))
    r.solo_bound
    Fmt.(
      list ~sep:cut (fun ppf c ->
          Fmt.pf ppf "  %-18s %a" c.id pp_status c.status))
    r.checks

let report_to_json r =
  let open Obs.Json in
  let status_json = function
    | Pass -> Obj [ "status", Str "pass" ]
    | Skipped why -> Obj [ "status", Str "skipped"; "why", Str why ]
    | Fail details ->
      Obj
        [ "status", Str "fail"
        ; "details", Arr (List.map (fun d -> Str d) details)
        ]
  in
  Obj
    [ "protocol", Str r.protocol
    ; "n", Num (float_of_int r.n)
    ; "k", Num (float_of_int r.k)
    ; "m", Num (float_of_int r.m)
    ; "ok", Bool (ok r)
    ; "configs", Num (float_of_int r.configs)
    ; "exhaustive", Bool r.exhaustive
    ; ( "declared",
        Obj
          [ "historyless", Bool r.declared_historyless
          ; "swap_only", Bool r.declared_swap_only
          ] )
    ; ( "derived",
        Obj
          [ "historyless", Bool r.derived_historyless
          ; "swap_only", Bool r.derived_swap_only
          ] )
    ; ( "solo",
        Obj
          [ "measured_max", Num (float_of_int r.solo_measured_max)
          ; "checked", Num (float_of_int r.solo_checked)
          ; ( "bound",
              match r.solo_bound with
              | None -> Null
              | Some b -> Num (float_of_int b) )
          ] )
    ; ( "checks",
        Arr
          (List.map
             (fun c ->
               match status_json c.status with
               | Obj fields -> Obj (("id", Str c.id) :: fields)
               | j -> j)
             r.checks) )
    ]

(* Failure accumulator: keeps the first few details and counts the rest, so
   a lint that fires at every configuration stays readable. *)
module Acc = struct
  type t = {
    mutable details : string list;  (* reversed *)
    mutable kept : int;
    mutable dropped : int;
    cap : int;
  }

  let create ?(cap = 5) () = { details = []; kept = 0; dropped = 0; cap }

  let add t detail =
    if t.kept < t.cap then begin
      t.details <- detail :: t.details;
      t.kept <- t.kept + 1
    end
    else t.dropped <- t.dropped + 1

  let is_empty t = t.kept = 0

  let status t =
    if is_empty t then Pass
    else
      Fail
        (List.rev
           (if t.dropped > 0 then
              Fmt.str "... and %d more" t.dropped :: t.details
            else t.details))
end

(* ------------------------------------------------------- static analysis *)

let m_runs = Obs.counter "analyze.runs"
let m_configs = Obs.counter "analyze.configs"
let m_solo_runs = Obs.counter "analyze.solo_runs"
let sp_run = Obs.span "analyze.run"

module Make (P : Sh.Protocol.S) = struct
  module X = Explore.Make (P)
  module E = X.E
  module Pr = Prop.Make (P)

  (* how many configurations get the (3x cost) double-step determinism
     probe, and how many states enter the O(s^2) hash-coherence pool *)
  let determinism_sample = 4_096
  let hash_pool_size = 256

  (* how many reachable states get the symmetry-hook coherence probe, and
     how many configurations get the property-equivariance probe *)
  let canon_sample = 2_048
  let prop_sample = 512

  let run ?(max_configs = 20_000) ?inputs ?solo_bound
      ?(prune = fun _ -> false) ?(sym = false) ?(por = false) ?(props = [])
      () =
    Obs.Span.time sp_run @@ fun () ->
    Obs.Counter.incr m_runs;
    let inputs =
      match inputs with
      | Some i -> i
      | None -> Array.init P.n (fun i -> i mod P.num_inputs)
    in
    let solo_cap =
      match solo_bound with
      | None -> X.default_solo_cap
      | Some b -> max X.default_solo_cap (2 * b)
    in
    let wellformed = Acc.create () in
    (match Sh.Protocol.validate (module P : Sh.Protocol.S) with
    | () -> ()
    | exception Invalid_argument msg -> Acc.add wellformed msg);
    let symfns =
      match P.symmetry with
      | Sh.Protocol.Anonymous { canon_key; rename } -> Some (canon_key, rename)
      | Sh.Protocol.Asymmetric -> None
    in
    let canon = Acc.create () in
    let canon_probes = ref 0 in
    let prop_equiv = Acc.create () in
    let prop_probes = ref 0 in
    let conformance = Acc.create () in
    let derivation = Acc.create () in
    let determinism = Acc.create () in
    let hash_coherence = Acc.create () in
    let decision_range = Acc.create () in
    let coverage = Acc.create () in
    let solo = Acc.create () in
    let saw_cas = ref false in
    let saw_non_swap = ref false in
    let solo_max = ref 0 in
    let solo_checked = ref 0 in
    let pruned = ref false in
    let det_probes = ref 0 in
    let pool = ref [] in
    let pool_len = ref 0 in
    let num_objects = Array.length P.objects in
    let t = X.create ~solo_cap ~sym ~por ~inputs () in
    let nonconforming = ref false in
    let visit (v : X.visit) =
      Obs.Counter.incr m_configs;
      let c = v.X.config in
      (* decision range: every decided value must lie in 0 .. m-1 *)
      for pid = 0 to P.n - 1 do
        match E.decision c pid with
        | Some d when d < 0 || d >= P.num_inputs ->
          Acc.add decision_range
            (Fmt.str "p%d decided %d outside 0..%d" pid d (P.num_inputs - 1))
        | _ -> ()
      done;
      (* a configuration with an illegal poised operation must not be
         expanded or probed — the executor would (rightly) raise
         [Illegal_operation]; the analysis reports instead of crashing *)
      let config_conforms = ref true in
      List.iter
        (fun pid ->
          let op = E.poised c pid in
          (* op-conformance: object in range, action legal for the kind
             (including the domain check on stored values) *)
          let legal =
            if op.Sh.Op.obj < 0 || op.Sh.Op.obj >= num_objects then begin
              Acc.add conformance
                (Fmt.str "p%d poised on out-of-range object: %a" pid
                   Sh.Op.pp op);
              false
            end
            else begin
              let kind = P.objects.(op.Sh.Op.obj) in
              if not (Sh.Obj_kind.supports kind op.Sh.Op.action) then begin
                Acc.add conformance
                  (Fmt.str "p%d poised to apply %a, but B%d is a %a" pid
                     Sh.Op.pp op op.Sh.Op.obj Sh.Obj_kind.pp kind);
                false
              end
              else true
            end
          in
          if not legal then config_conforms := false;
          if not (Sh.Op.is_historyless op) then saw_cas := true;
          if not (Sh.Op.is_swap_action op.Sh.Op.action) then
            saw_non_swap := true;
          (* solo-bound: the memoized oracle measures the solo execution of
             [pid] from here; the declared bound gates the measurement *)
          if legal then begin
            incr solo_checked;
            Obs.Counter.incr m_solo_runs;
            (match X.solo_steps t ~pid c with
            | None ->
              Acc.add solo
                (Fmt.str "p%d does not decide within %d solo steps" pid
                   solo_cap)
            | Some steps ->
              if steps > !solo_max then solo_max := steps;
              (match solo_bound with
              | Some bound when steps > bound ->
                Acc.add solo
                  (Fmt.str
                     "p%d needs %d solo steps from a reachable \
                      configuration (declared bound %d)"
                     pid steps bound)
              | _ -> ()));
            (* determinism: two steps of the same process from the same
               configuration must coincide exactly *)
            if !det_probes < determinism_sample then begin
              incr det_probes;
              let c1, s1 = E.step c pid in
              let c2, s2 = E.step c pid in
              if
                not
                  (Sh.Op.equal s1.Sh.Trace.op s2.Sh.Trace.op
                  && Sh.Value.equal s1.Sh.Trace.resp s2.Sh.Trace.resp
                  && E.equal_config c1 c2)
              then
                Acc.add determinism
                  (Fmt.str
                     "p%d steps differently on replay: %a -> %a vs %a -> %a"
                     pid Sh.Op.pp s1.Sh.Trace.op Sh.Value.pp s1.Sh.Trace.resp
                     Sh.Op.pp s2.Sh.Trace.op Sh.Value.pp s2.Sh.Trace.resp)
            end;
            (* canon-coherence: the symmetry hooks must behave as a group
               action on REACHABLE states, not just the initial ones
               [Protocol.validate] covers — rename invertible and
               key/decision-invariant, and commuting with the step
               function (the property that licenses interning canonical
               representatives) *)
            (match symfns with
            | Some (canon_key, rename) when !canon_probes < canon_sample ->
              incr canon_probes;
              let s = c.E.states.(pid) in
              let rot p = (p + 1) mod P.n in
              let unrot p = (p + P.n - 1) mod P.n in
              if not (P.equal_state (rename Fun.id s) s) then
                Acc.add canon "rename by the identity changes a state";
              let s' = rename rot s in
              if not (P.equal_state (rename unrot s') s) then
                Acc.add canon
                  "rename by a rotation is not undone by its inverse";
              if P.hash_state (rename unrot s') <> P.hash_state s then
                Acc.add canon "equal states hash apart after rename";
              if canon_key s' <> canon_key s then
                Acc.add canon
                  "canon_key is not renaming-invariant on a reachable state";
              if not (Option.equal Int.equal (P.decision s') (P.decision s))
              then Acc.add canon "rename changes a decision";
              (match P.decision s with
              | Some _ -> ()
              | None ->
                let op = P.poised s in
                if not (Sh.Op.equal (P.poised s') (Sh.Op.rename rot op)) then
                  Acc.add canon
                    "poised does not commute with rename on a reachable \
                     state";
                let _, st = E.step c pid in
                let resp = st.Sh.Trace.resp in
                let lhs = rename rot (P.on_response s resp) in
                let rhs = P.on_response s' (Sh.Value.rename rot resp) in
                if not (P.equal_state lhs rhs) then
                  Acc.add canon
                    (Fmt.str
                       "on_response does not commute with rename (p%d): %a \
                        vs %a"
                       pid P.pp_state lhs P.pp_state rhs)
                else if P.hash_state lhs <> P.hash_state rhs then
                  Acc.add canon
                    "renamed on_response results are equal but hash apart")
            | _ -> ())
          end;
          (* hash hygiene, cheap half: both functions self-consistent *)
          let s = c.E.states.(pid) in
          if not (P.equal_state s s) then
            Acc.add hash_coherence "equal_state is not reflexive";
          if P.hash_state s <> P.hash_state s then
            Acc.add hash_coherence "hash_state is not deterministic";
          if !pool_len < hash_pool_size then begin
            pool := s :: !pool;
            incr pool_len
          end)
        (E.undecided c);
      (* prop-equivariance: the verdict of every supplied declared property
         must be invariant under process renaming — the property that makes
         checking properties over the symmetry-reduced quotient graph sound
         (one representative per orbit stands for the whole orbit only if
         no property can tell orbit members apart).  Verdicts (violated or
         not) are compared, not details, which legitimately mention pids. *)
      (match symfns with
      | Some (_, rename)
        when props <> [] && !config_conforms
             && !prop_probes < prop_sample ->
        incr prop_probes;
        let rot p = (p + 1) mod P.n in
        let snap_of (cfg : E.config) =
          { Pr.states = cfg.E.states; mem = cfg.E.mem }
        in
        let rename_snap (s : Pr.snap) =
          let states = Array.make P.n s.Pr.states.(0) in
          Array.iteri
            (fun i st -> states.(rot i) <- rename rot st)
            s.Pr.states;
          { Pr.states; mem = Array.map (Sh.Value.rename rot) s.Pr.mem }
        in
        let s0 = snap_of c in
        let s0' = rename_snap s0 in
        List.iter
          (fun p ->
            if Pr.has_config p then
              let v = Option.is_some (Pr.eval_config p s0) in
              let v' = Option.is_some (Pr.eval_config p s0') in
              if v <> v' then
                Acc.add prop_equiv
                  (Fmt.str
                     "property %s: configuration verdict changes under \
                      renaming"
                     (Pr.name p)))
          props;
        (match E.undecided c with
        | [] -> ()
        | pid :: _ ->
          let c', _ = E.step c pid in
          let s1 = snap_of c' in
          let s1' = rename_snap s1 in
          List.iter
            (fun p ->
              if Pr.has_step p then
                let v =
                  Option.is_some (Pr.eval_step p ~before:s0 ~pid ~after:s1)
                in
                let v' =
                  Option.is_some
                    (Pr.eval_step p ~before:s0' ~pid:(rot pid) ~after:s1')
                in
                if v <> v' then
                  Acc.add prop_equiv
                    (Fmt.str
                       "property %s: step verdict changes under renaming"
                       (Pr.name p)))
            props)
      | _ -> ());
      if not !config_conforms then begin
        nonconforming := true;
        X.Prune
      end
      else if prune c.E.mem then begin
        pruned := true;
        X.Prune
      end
      else X.Continue
    in
    let stats = X.bfs t ~max_configs ~visit () in
    (* hash hygiene, quadratic half over the sampled pool: equal states must
       hash equally *)
    let pool = Array.of_list !pool in
    (try
       for i = 0 to Array.length pool - 1 do
         for j = i + 1 to Array.length pool - 1 do
           if
             P.equal_state pool.(i) pool.(j)
             && P.hash_state pool.(i) <> P.hash_state pool.(j)
           then begin
             Acc.add hash_coherence
               (Fmt.str "equal states hash to %d and %d"
                  (P.hash_state pool.(i))
                  (P.hash_state pool.(j)));
             raise Exit
           end
         done
       done
     with Exit -> ());
    let exhaustive =
      not (stats.X.truncated || !pruned || !nonconforming || stats.X.stopped)
    in
    (* flag derivation: reachable-op truth vs the hand-written kind-based
       predicates.  The unsound-direction divergence (declared historyless
       yet a CAS is reachable) fails regardless; the over-conservative
       direction (declared CAS-ful yet none reachable) is only a proof when
       the exploration was exhaustive. *)
    let declared_historyless =
      Sh.Protocol.uses_only_historyless (module P : Sh.Protocol.S)
    in
    let declared_swap_only =
      Sh.Protocol.uses_only_swap (module P : Sh.Protocol.S)
    in
    let derived_historyless = not !saw_cas in
    let derived_swap_only = not !saw_non_swap in
    if declared_historyless && not derived_historyless then
      Acc.add derivation
        "a Cas is reachable although every object kind claims historyless";
    if declared_swap_only && not derived_swap_only then
      Acc.add derivation
        "a non-Swap operation is reachable although the declared model is \
         swap-only";
    if exhaustive then begin
      if derived_historyless && not declared_historyless then
        Acc.add derivation
          "no Cas is reachable (exhaustive) yet an object kind declares \
           Compare_and_swap: the historyless flag under-claims";
      if derived_swap_only && not declared_swap_only then
        Acc.add derivation
          "only Swap operations are reachable (exhaustive) yet the object \
           kinds are not all Swap_only: the swap-only flag under-claims"
    end;
    (* decision coverage: from the all-v input vector, the solo execution
       of p0 must decide exactly v — every decision value is reachable and
       solo validity holds *)
    for v = 0 to P.num_inputs - 1 do
      let c0 = E.initial ~inputs:(Array.make P.n v) in
      match E.run_solo ~pid:0 ~max_steps:solo_cap c0 with
      | None ->
        Acc.add coverage
          (Fmt.str "all-%d inputs: p0 does not decide solo within %d steps"
             v solo_cap)
      | Some (c, _) -> (
        match E.decision c 0 with
        | Some d when d = v -> ()
        | Some d ->
          Acc.add coverage
            (Fmt.str "all-%d inputs: p0 decides %d solo (validity)" v d)
        | None -> assert false)
      | exception Sh.Obj_kind.Illegal_operation msg ->
        Acc.add coverage
          (Fmt.str "all-%d inputs: illegal operation solo (%s)" v msg)
    done;
    { protocol = P.name
    ; n = P.n
    ; k = P.k
    ; m = P.num_inputs
    ; configs = stats.X.visited
    ; exhaustive
    ; declared_historyless
    ; declared_swap_only
    ; derived_historyless
    ; derived_swap_only
    ; solo_measured_max = !solo_max
    ; solo_checked = !solo_checked
    ; solo_bound
    ; checks =
        [ { id = "well-formedness"
          ; title = "parameters and initial values in range"
          ; status = Acc.status wellformed
          }
        ; { id = "op-conformance"
          ; title = "every reachable operation legal for its object kind"
          ; status = Acc.status conformance
          }
        ; { id = "flag-derivation"
          ; title = "derived historyless/swap-only flags match declarations"
          ; status = Acc.status derivation
          }
        ; { id = "determinism"
          ; title = "steps replay identically"
          ; status = Acc.status determinism
          }
        ; { id = "hash-coherence"
          ; title = "equal_state/hash_state agree on sampled states"
          ; status = Acc.status hash_coherence
          }
        ; { id = "canon-coherence"
          ; title = "symmetry hooks form a group action on reachable states"
          ; status =
              (match symfns with
              | None -> Skipped "protocol declares Asymmetric"
              | Some _ -> Acc.status canon)
          }
        ; { id = "prop-equivariance"
          ; title = "declared properties invariant under process renaming"
          ; status =
              (match symfns with
              | None -> Skipped "protocol declares Asymmetric"
              | Some _ ->
                if props = [] then Skipped "no declared properties supplied"
                else Acc.status prop_equiv)
          }
        ; { id = "decision-range"
          ; title = "decisions lie in 0..m-1"
          ; status = Acc.status decision_range
          }
        ; { id = "decision-coverage"
          ; title = "every value decided solo from its all-v inputs"
          ; status = Acc.status coverage
          }
        ; { id = "solo-bound"
          ; title = "solo executions terminate within the declared bound"
          ; status = Acc.status solo
          }
        ]
    }
end

let run_protocol ?max_configs ?inputs ?solo_bound ?prune ?sym ?por ?props p
    =
  match props with
  | Some pack ->
    (* analyze the pack's own protocol module, so the packed properties
       type-check against the analyzer's instantiation; callers (the
       registry) pack the very module [p] wraps, making the two the same
       protocol *)
    let (module Pk : Prop.PACK) = pack in
    let module A = Make (Pk.P) in
    A.run ?max_configs ?inputs ?solo_bound ?prune ?sym ?por ~props:Pk.props
      ()
  | None ->
    let (module P : Sh.Protocol.S) = p in
    let module A = Make (P) in
    A.run ?max_configs ?inputs ?solo_bound ?prune ?sym ?por ()

(* -------------------------------------------------- space certification *)

let m_space_runs = Obs.counter "analyze.space.runs"
let m_space_configs = Obs.counter "analyze.space.configs"
let sp_space = Obs.span "analyze.space"

module Space = struct
  type kind_usage = { kind : string; total : int; touched : int }

  type bracket = { theorem_bound : int; forced : int }

  type report = {
    protocol : string;
    n : int;
    k : int;
    total_objects : int;
    declared : int;
    measured : int;
    witness : int;
    per_kind : kind_usage list;
    configs : int;
    exhaustive : bool;
    bracket : bracket option;
    checks : check list;
  }

  let ok r =
    List.for_all
      (fun c ->
        match c.status with Fail _ -> false | Pass | Skipped _ -> true)
      r.checks

  let pp_report ppf r =
    Fmt.pf ppf
      "@[<v>%s (n=%d k=%d): %s, %d configurations%s@,\
       space: declared %d, measured %d of %d objects, witness execution \
       touches %d%a@,\
       per kind: %a@,%a@]"
      r.protocol r.n r.k
      (if ok r then "ok" else "SPACE CERTIFICATION FAILED")
      r.configs
      (if r.exhaustive then " (exhaustive)" else " (bounded)")
      r.declared r.measured r.total_objects r.witness
      Fmt.(
        option (fun ppf b ->
            Fmt.pf ppf "@,bracket: theorem bound %d, adversary forced %d"
              b.theorem_bound b.forced))
      r.bracket
      Fmt.(
        list ~sep:comma (fun ppf u ->
            Fmt.pf ppf "%s %d/%d" u.kind u.touched u.total))
      r.per_kind
      Fmt.(
        list ~sep:cut (fun ppf c ->
            Fmt.pf ppf "  %-18s %a" c.id pp_status c.status))
      r.checks

  let report_to_json r =
    let open Obs.Json in
    let status_json = function
      | Pass -> Obj [ "status", Str "pass" ]
      | Skipped why -> Obj [ "status", Str "skipped"; "why", Str why ]
      | Fail details ->
        Obj
          [ "status", Str "fail"
          ; "details", Arr (List.map (fun d -> Str d) details)
          ]
    in
    Obj
      [ "protocol", Str r.protocol
      ; "n", Num (float_of_int r.n)
      ; "k", Num (float_of_int r.k)
      ; "ok", Bool (ok r)
      ; "configs", Num (float_of_int r.configs)
      ; "exhaustive", Bool r.exhaustive
      ; ( "space",
          Obj
            [ "declared", Num (float_of_int r.declared)
            ; "measured", Num (float_of_int r.measured)
            ; "witness", Num (float_of_int r.witness)
            ; "total_objects", Num (float_of_int r.total_objects)
            ] )
      ; ( "per_kind",
          Arr
            (List.map
               (fun u ->
                 Obj
                   [ "kind", Str u.kind
                   ; "touched", Num (float_of_int u.touched)
                   ; "total", Num (float_of_int u.total)
                   ])
               r.per_kind) )
      ; ( "bracket",
          match r.bracket with
          | None -> Null
          | Some b ->
            Obj
              [ "theorem_bound", Num (float_of_int b.theorem_bound)
              ; "forced", Num (float_of_int b.forced)
              ] )
      ; ( "checks",
          Arr
            (List.map
               (fun c ->
                 match status_json c.status with
                 | Obj fields -> Obj (("id", Str c.id) :: fields)
                 | j -> j)
               r.checks) )
      ]

  (* Bytes-backed bitsets for per-configuration access masks: the
     binary-track instances carry [2 * cap] objects, more than an int's
     worth of bits. *)
  module Bits = struct
    let create num = Bytes.make ((num + 7) lsr 3) '\000'

    let set b i =
      let j = i lsr 3 in
      Bytes.set b j
        (Char.chr (Char.code (Bytes.get b j) lor (1 lsl (i land 7))))

    let mem b i =
      Char.code (Bytes.get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

    let with_bit b i =
      if mem b i then b
      else begin
        let c = Bytes.copy b in
        set c i;
        c
      end

    let popcount b =
      let n = ref 0 in
      Bytes.iter
        (fun ch ->
          let c = ref (Char.code ch) in
          while !c <> 0 do
            incr n;
            c := !c land (!c - 1)
          done)
        b;
      !n
  end

  module Make (P : Sh.Protocol.S) = struct
    module X = Explore.Make (P)
    module E = X.E
    module T10 = Lowerbound.Theorem10.Make (P)

    let run ?(max_configs = 20_000) ?inputs ?(prune = fun _ -> false)
        ?(sym = true) ?(por = true) ?(certificate = true)
        ?(search_rounds = 200) () =
      Obs.Span.time sp_space @@ fun () ->
      Obs.Counter.incr m_space_runs;
      let inputs =
        match inputs with
        | Some i -> i
        | None -> Array.init P.n (fun i -> i mod P.num_inputs)
      in
      let num_objects = Array.length P.objects in
      let declared = P.space_bound ~n:P.n ~k:P.k in
      (* [touched] is the union of poised-operation targets over every
         visited configuration.  A poised operation executes in some
         execution (schedule its process next), so on the explored region
         this is exactly the set of objects accessed across all executions
         — and it is renaming-invariant ([Op.rename] never moves the
         target index), so measuring on the symmetry quotient equals
         measuring concretely. *)
      let touched = Bits.create (max 1 num_objects) in
      (* per-configuration discovery masks: mask(dst) = mask(src) + the
         stepped object, so popcount(mask) is the number of distinct
         objects one concrete execution (the discovery schedule,
         [X.trace_to]) accesses — the constructive witness half of the
         measurement. *)
      let masks = ref (Array.make 1024 Bytes.empty) in
      let ensure id =
        let len = Array.length !masks in
        if id >= len then begin
          let bigger =
            Array.make (max (2 * len) (id + 1)) Bytes.empty
          in
          Array.blit !masks 0 bigger 0 len;
          masks := bigger
        end
      in
      let witness = ref 0 in
      let conformance = Acc.create () in
      let nonconforming = ref false in
      let pruned = ref false in
      let t = X.create ~sym ~por ~inputs () in
      ensure (X.root t);
      (!masks).(X.root t) <- Bits.create (max 1 num_objects);
      let on_step (s : X.step_obs) =
        let obj = s.X.step.Sh.Trace.op.Sh.Op.obj in
        let m = Bits.with_bit (!masks).(s.X.src) obj in
        let pc = Bits.popcount m in
        if pc > !witness then witness := pc;
        if s.X.fresh then begin
          ensure s.X.dst;
          (!masks).(s.X.dst) <- m
        end
      in
      let visit (v : X.visit) =
        Obs.Counter.incr m_space_configs;
        let c = v.X.config in
        let conforms = ref true in
        List.iter
          (fun pid ->
            let op = E.poised c pid in
            if op.Sh.Op.obj < 0 || op.Sh.Op.obj >= num_objects then begin
              Acc.add conformance
                (Fmt.str "p%d poised on out-of-range object: %a" pid
                   Sh.Op.pp op);
              conforms := false
            end
            else begin
              if
                not
                  (Sh.Obj_kind.supports
                     P.objects.(op.Sh.Op.obj)
                     op.Sh.Op.action)
              then begin
                Acc.add conformance
                  (Fmt.str "p%d poised to apply %a, but B%d is a %a" pid
                     Sh.Op.pp op op.Sh.Op.obj Sh.Obj_kind.pp
                     P.objects.(op.Sh.Op.obj));
                conforms := false
              end;
              Bits.set touched op.Sh.Op.obj
            end)
          (E.undecided c);
        if not !conforms then begin
          nonconforming := true;
          X.Prune
        end
        else if prune c.E.mem then begin
          pruned := true;
          X.Prune
        end
        else X.Continue
      in
      let stats = X.bfs t ~max_configs ~on_step ~visit () in
      let exhaustive =
        not
          (stats.X.truncated || !pruned || !nonconforming || stats.X.stopped)
      in
      let measured = Bits.popcount touched in
      let per_kind =
        let tbl = Hashtbl.create 4 in
        let order = ref [] in
        Array.iteri
          (fun i kind ->
            let key = Fmt.str "%a" Sh.Obj_kind.pp kind in
            let total, hit =
              match Hashtbl.find_opt tbl key with
              | Some th -> th
              | None ->
                order := key :: !order;
                0, 0
            in
            Hashtbl.replace tbl key
              (total + 1, hit + if Bits.mem touched i then 1 else 0))
          P.objects;
        List.rev_map
          (fun key ->
            let total, hit = Hashtbl.find tbl key in
            { kind = key; total; touched = hit })
          !order
      in
      (* under-claim (fatal): the measured access set exceeds the declared
         family bound — some execution of this very instance touches more
         objects than the declaration admits *)
      let under = Acc.create () in
      if measured > declared then
        Acc.add under
          (Fmt.str
             "executions access %d distinct objects; the declared bound \
              admits %d%s"
             measured declared
             (if !witness > declared then
                Fmt.str " (a single explored execution touches %d)" !witness
              else ""));
      (* over-claim: the declaration exceeds even the union across all
         executions.  Like the historyless flag derivation, this is only a
         finding when the exploration closed the graph — on a bounded
         region the unreached objects may simply be further out. *)
      let tightness =
        if measured >= declared then Pass
        else if exhaustive then
          Fail
            [ Fmt.str
                "declared bound %d, but the closed reachable graph \
                 accesses only %d objects: the declaration over-claims"
                declared measured
            ]
        else Skipped "exploration bounded; tightness not assessable"
      in
      (* bracket against the Theorem 10 adversary: the forced lower bound
         and the measured upper bound must enclose each other, and the
         declaration must respect the theorem *)
      let bracket, bracket_status =
        if not certificate then None, Skipped "certificate not requested"
        else if not (Sh.Protocol.uses_only_swap (module P : Sh.Protocol.S))
        then None, Skipped "protocol is not swap-only (Theorem 10 model)"
        else if P.num_inputs < P.k + 1 then
          None,
            Skipped
              (Fmt.str
                 "Theorem 10 needs k+1 = %d input values, protocol has %d"
                 (P.k + 1) P.num_inputs)
        else begin
          match T10.run ~search_rounds ~sym () with
          | cert ->
            let forced = T10.forced cert in
            let acc = Acc.create () in
            if declared < cert.T10.bound then
              Acc.add acc
                (Fmt.str
                   "declared space %d is below the Theorem 10 bound %d — \
                    no correct algorithm fits the declaration"
                   declared cert.T10.bound);
            if forced < cert.T10.bound then
              Acc.add acc
                (Fmt.str
                   "adversary forced only %d objects, below the promised \
                    %d"
                   forced cert.T10.bound);
            if forced > measured then
              Acc.add acc
                (Fmt.str
                   "adversary forced %d objects but the certifier \
                    measured only %d — the bracket is inverted"
                   forced measured);
            ( Some { theorem_bound = cert.T10.bound; forced },
              Acc.status acc )
          | exception Lowerbound.Lemma9.Hypothesis_violated msg ->
            None, Skipped (Fmt.str "Lemma 9 hypothesis violated: %s" msg)
        end
      in
      { protocol = P.name
      ; n = P.n
      ; k = P.k
      ; total_objects = num_objects
      ; declared
      ; measured
      ; witness = !witness
      ; per_kind
      ; configs = stats.X.visited
      ; exhaustive
      ; bracket
      ; checks =
          [ { id = "op-conformance"
            ; title = "every reachable operation legal for its object kind"
            ; status = Acc.status conformance
            }
          ; { id = "space-under-claim"
            ; title = "measured object usage within the declared bound"
            ; status = Acc.status under
            }
          ; { id = "space-tightness"
            ; title = "declared bound reached by the measured usage"
            ; status = tightness
            }
          ; { id = "lb-bracket"
            ; title = "Theorem 10 lower bound brackets the measurement"
            ; status = bracket_status
            }
          ]
      }
  end

  let run_protocol ?max_configs ?inputs ?prune ?sym ?por ?certificate
      ?search_rounds p =
    let (module P : Sh.Protocol.S) = p in
    let module M = Make (P) in
    M.run ?max_configs ?inputs ?prune ?sym ?por ?certificate ?search_rounds
      ()
end

(* ------------------------------------------------- happens-before checker *)

module Hb = struct
  type violation = { rule : string; detail : string }

  type stats = { events : int; threads : int; hb_edges : int }

  module Vtbl = Hashtbl.Make (struct
    type t = Sh.Value.t

    let equal = Sh.Value.equal
    let hash = Sh.Value.hash
  end)

  type ev = Linearize.Obj_history.event

  let pp_ev = Linearize.Obj_history.pp_event

  (* the value an event installed in the object, if any (Write/Swap always,
     Cas only on success, Read never) *)
  let installs (e : ev) = Sh.Op.installs ~resp:e.response e.action

  let check ~kind ~init events =
    let evs = Array.of_list events in
    let n = Array.length evs in
    if n = 0 then Ok { events = 0; threads = 0; hb_edges = 0 }
    else begin
      (* dense thread numbering *)
      let tids = Hashtbl.create 8 in
      Array.iter
        (fun (e : ev) ->
          if not (Hashtbl.mem tids e.thread) then
            Hashtbl.replace tids e.thread (Hashtbl.length tids))
        evs;
      let nthreads = Hashtbl.length tids in
      (* per-thread finish times in order; a thread's operations are
         sequential, so its finishes are sorted and [count of finishes <
         start] is one binary search — that count is the thread's entry in
         the observer's vector clock *)
      let finishes = Array.make nthreads [] in
      Array.iter
        (fun (e : ev) ->
          let t = Hashtbl.find tids e.thread in
          finishes.(t) <- e.finish :: finishes.(t))
        evs;
      let finishes =
        Array.map
          (fun l -> Array.of_list (List.sort compare l))
          finishes
      in
      let preceding_of_thread t before =
        (* events of thread [t] with finish < before *)
        let a = finishes.(t) in
        let lo = ref 0 and hi = ref (Array.length a) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if a.(mid) < before then lo := mid + 1 else hi := mid
        done;
        !lo
      in
      let vclock (e : ev) =
        Array.init nthreads (fun t -> preceding_of_thread t e.start)
      in
      let hb_edges = ref 0 in
      Array.iter
        (fun (e : ev) ->
          Array.iter (fun c -> hb_edges := !hb_edges + c) (vclock e))
        evs;
      (* per installed value: the two earliest-starting installers (two, so
         a reader that itself installed the value can be excluded), the
         total install count, and the earliest finish of any installer *)
      let first_two = Vtbl.create 64 in
      let install_count = Vtbl.create 64 in
      let min_install_finish = ref max_int in
      Array.iteri
        (fun i (e : ev) ->
          match installs e with
          | None -> ()
          | Some v ->
            Vtbl.replace install_count v
              (1 + Option.value ~default:0 (Vtbl.find_opt install_count v));
            if e.finish < !min_install_finish then
              min_install_finish := e.finish;
            (match Vtbl.find_opt first_two v with
            | None -> Vtbl.replace first_two v [ (e.start, i) ]
            | Some [ f ] -> Vtbl.replace first_two v [ f; (e.start, i) ]
            | Some _ -> ()))
        evs;
      let init_reinstalled = Vtbl.mem install_count init in
      let count v = Option.value ~default:0 (Vtbl.find_opt install_count v) in
      (* could some installer of [v], other than event [i], precede an
         operation that finishes at [fin]?  (definite-precedence is [finish
         < start]; its negation, [start <= fin], is what a justifying
         reads-from edge needs) *)
      let justified ~reader:i ~fin v =
        match Vtbl.find_opt first_two v with
        | None -> false
        | Some ((s1, i1) :: rest) ->
          (if i1 <> i then s1 <= fin
           else
             match rest with
             | (s2, _) :: _ -> s2 <= fin
             | [] -> false)
        | Some [] -> false
      in
      let violation = ref None in
      let flag rule detail =
        if !violation = None then violation := Some { rule; detail }
      in
      (* a response claiming the object still held [init]: impossible once
         any install definitely preceded, unless someone re-installs init *)
      let check_init_read (e : ev) =
        if (not init_reinstalled) && !min_install_finish < e.start then
          flag "lost-seniority"
            (Fmt.str
               "%a returns the initial value %a although an install \
                definitely preceded it (finish %d < start %d) and nothing \
                re-installs it"
               pp_ev e Sh.Value.pp init !min_install_finish e.start)
      in
      (* reads-from justification for a witnessed value [v] *)
      let check_witness (e : ev) i v what =
        if Sh.Value.equal v init then check_init_read e
        else if not (justified ~reader:i ~fin:e.finish v) then
          flag "stale-response"
            (Fmt.str
               "%a %s %a, which no operation that could precede it installed"
               pp_ev e what Sh.Value.pp v)
      in
      Array.iteri
        (fun i (e : ev) ->
          if !violation = None then
            match e.action with
            | Sh.Op.Read -> check_witness e i e.response "returns"
            | Sh.Op.Swap _ -> check_witness e i e.response "returns"
            | Sh.Op.Cas (expected, _) ->
              if Sh.Value.equal e.response Sh.Value.one then
                check_witness e i expected "succeeded against"
            | Sh.Op.Write _ -> ())
        evs;
      (* duplicate consumption: each install instance is returned by at
         most one later swap, plus one consumer for the initial value —
         torn exchanges, lost updates and double TAS winners all land
         here *)
      if !violation = None then begin
        let consumed = Vtbl.create 64 in
        Array.iter
          (fun (e : ev) ->
            match e.action with
            | Sh.Op.Swap _ ->
              Vtbl.replace consumed e.response
                (1 + Option.value ~default:0 (Vtbl.find_opt consumed e.response))
            | _ -> ())
          evs;
        Vtbl.iter
          (fun v c ->
            let budget = count v + if Sh.Value.equal v init then 1 else 0 in
            if c > budget then
              flag "duplicate-consumption"
                (Fmt.str
                   "%d swaps return %a but only %d install(s) could supply \
                    it — a torn or lost exchange"
                   c Sh.Value.pp v budget))
          consumed
      end;
      ignore kind;
      match !violation with
      | Some v -> Error v
      | None -> Ok { events = n; threads = nthreads; hb_edges = !hb_edges }
    end

  let check_histories ?(max_events = 65_536) ~kinds ~init histories =
    let checked = ref 0 in
    let skipped = ref 0 in
    let rec go i =
      if i >= Array.length histories then Ok (!checked, !skipped)
      else if List.length histories.(i) > max_events then begin
        incr skipped;
        go (i + 1)
      end
      else begin
        incr checked;
        match check ~kind:kinds.(i) ~init:(init i) histories.(i) with
        | Ok _ -> go (i + 1)
        | Error v ->
          Error (Fmt.str "object B%d [%s]: %s" i v.rule v.detail)
      end
    in
    go 0
end
