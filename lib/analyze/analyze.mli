(** Static analysis of protocol definitions and happens-before checking of
    recorded multicore histories.

    The paper's claims are claims about protocol {e structure}: Algorithm 1
    is deterministic, uses only historyless (indeed swap-only) objects, and
    decides within 8(n-k) solo steps (Lemmas 5-8); Lemma 9 / Theorem 10
    apply only to protocols that genuinely are historyless.  Until now those
    facts were asserted by hand ([Protocol.uses_only_historyless] inspects
    declared object kinds) or observed dynamically.  This module verifies
    them {e before} a protocol is run, by bounded abstract exploration of
    the reachable configuration graph (reusing [Explore]'s interned store
    and memoized solo oracle), and checks recorded runtime histories for
    atomicity races {e after} it runs, with a near-linear vector-clock
    happens-before pass that is independent of the exponential
    linearizability checker.

    The static checks:

    - {b well-formedness}: [Protocol.validate] (parameters in range, initial
      values in domain);
    - {b op-conformance}: every reachable poised operation is legal for its
      object's kind ([Obj_kind.supports], which includes the domain check on
      stored values) and targets an object in range;
    - {b flag-derivation}: the historyless / swap-only flags are {e derived}
      from the reachable operations ([Op.is_historyless_action] /
      [Op.is_swap_action]) and cross-checked against the hand-written
      kind-based predicates, failing on divergence in either direction (a
      declared-historyless protocol reaching a CAS is unsound; a
      declared-CAS protocol never reaching one under exhaustive exploration
      mis-states its hypotheses);
    - {b determinism}: stepping the same process twice from the same
      configuration yields identical operations, responses and successor
      configurations;
    - {b hash-coherence}: over a sample of reachable states,
      [equal_state s1 s2] implies [hash_state s1 = hash_state s2], and both
      functions are self-consistent (reflexive, repeatable);
    - {b canon-coherence}: for protocols declaring
      {!Shmem.Protocol.Anonymous}, the symmetry hooks behave as a group
      action on a sample of {e reachable} states (not just the initial ones
      [Protocol.validate] covers): renaming by the identity is the
      identity, a rotation is undone by its inverse with equal hashes,
      [canon_key] and [decision] are renaming-invariant, and [poised] /
      [on_response] commute with renaming — the property that licenses
      [Explore]'s canonical-representative interning.  Skipped for
      [Asymmetric] protocols;
    - {b prop-equivariance}: over the same sample, every supplied declared
      property ([lib/prop]) gives the same verdict on a configuration (and
      on a transition) as on its renaming — the condition under which
      checking declared properties over the symmetry-reduced quotient graph
      is sound.  Skipped for [Asymmetric] protocols and when no properties
      are supplied;
    - {b decision-range}: every decision lies in [0 .. m-1];
    - {b decision-coverage}: every value [v] is actually decided by the solo
      execution from the all-[v] input vector (no unreachable decision
      values, and solo validity);
    - {b solo-bound}: from every explored configuration, every undecided
      process decides within the protocol's declared solo-step bound
      (Lemma 8's [8(n-k)] for Algorithm 1), measured through [Explore]'s
      memoized {!Explore.Make.solo_steps} oracle. *)

(** {1 Reports} *)

type status =
  | Pass
  | Fail of string list  (** first few failure details, most severe first *)
  | Skipped of string  (** why the check did not apply *)

type check = { id : string; title : string; status : status }

type report = {
  protocol : string;
  n : int;
  k : int;
  m : int;
  configs : int;  (** configurations visited by the bounded exploration *)
  exhaustive : bool;
      (** the exploration closed the reachable graph (no truncation by
          budget or pruning) — only then are absence claims
          ("no reachable CAS") proofs rather than bounded evidence *)
  declared_historyless : bool;  (** [Protocol.uses_only_historyless] *)
  declared_swap_only : bool;  (** [Protocol.uses_only_swap] *)
  derived_historyless : bool;
      (** no reachable operation is a [Cas] (within the explored region) *)
  derived_swap_only : bool;
      (** every reachable operation is a [Swap] (within the explored
          region) *)
  solo_measured_max : int;
      (** the longest solo execution measured from any explored
          configuration; [0] if none was checked *)
  solo_checked : int;  (** number of (configuration, pid) solo runs *)
  solo_bound : int option;  (** the declared bound the measurements gate *)
  checks : check list;
}

val ok : report -> bool
(** no check failed *)

val pp_report : Format.formatter -> report -> unit
val report_to_json : report -> Obs.Json.t

(** {1 The static analyzer} *)

module Make (P : Shmem.Protocol.S) : sig
  module X : module type of Explore.Make (P)

  val run :
    ?max_configs:int ->
    ?inputs:int array ->
    ?solo_bound:int ->
    ?prune:(Shmem.Value.t array -> bool) ->
    ?sym:bool ->
    ?por:bool ->
    ?props:Prop.Make(P).t list ->
    unit ->
    report
  (** analyze [P] from the initial configuration with the given inputs
      (default [pid mod m]).  [max_configs] (default 20_000) bounds the
      exploration; [prune] (default none) cuts off configurations whose
      memory snapshot satisfies it — both mark the report non-exhaustive.
      [solo_bound] declares the bound the solo-bound verifier enforces
      (default: none declared, the verifier only measures and still
      requires solo {e termination} within [Explore]'s default cap).
      [sym] / [por] (default [false]) run the lints over the engine's
      reduced graph (see {!Explore.Make.create}) — every lint is
      orbit-invariant, so verdicts are unaffected while [configs] covers a
      quotient of the reachable space.  [props] (default none) supplies the
      declared properties the prop-equivariance lint samples: only
      {e verdicts} (violation vs. none) are compared under renaming, not
      detail strings, which legitimately mention process ids. *)
end

val run_protocol :
  ?max_configs:int ->
  ?inputs:int array ->
  ?solo_bound:int ->
  ?prune:(Shmem.Value.t array -> bool) ->
  ?sym:bool ->
  ?por:bool ->
  ?props:Prop.pack ->
  Shmem.Protocol.t ->
  report
(** {!Make.run} over a first-class protocol value — what [swapspace
    analyze] calls for each registry entry.  When [props] is supplied, the
    pack's own protocol module is the one analyzed, with its declared
    properties fed to the prop-equivariance lint — the registry packs the
    very module the protocol value wraps, so this is the same analysis plus
    the extra lint. *)

(** {1 Space certification}

    The paper's headline results are {e space} bounds: Algorithm 1 solves
    k-set agreement from [n - k] swap objects (Theorem 4) and every
    solo-terminating algorithm needs ⌈n/k⌉ - 1 of them (Theorem 10).  The
    certifier closes the loop on a concrete protocol: it explores the
    reachable configuration graph (symmetry + POR on by default, so it
    closes at the same [n] as [check]) and measures

    - {b measured}: the union of poised-operation targets over every
      visited configuration.  A poised operation executes in some
      execution (schedule its process next), so on the explored region
      this is exactly the set of base objects accessed across all
      executions.  Sound on the quotient graph: [Op.rename] never moves
      the target object index, so object access sets are
      renaming-equivariant and measuring on orbit representatives equals
      measuring concretely;
    - {b witness}: the maximum number of distinct objects accessed along a
      single discovery schedule — a concrete execution
      ([Explore.Make.trace_to]) realizing that many objects, the
      constructive lower half of the measurement.

    It then certifies [measured <= declared] against the protocol's
    declared {!Shmem.Protocol.S.space_bound} (an {e under-claim} is fatal),
    flags [measured < declared] as an over-claim only when the exploration
    closed the graph (like the historyless flag derivation), and — for
    swap-only protocols — runs the Theorem 10 adversary
    ([Lowerbound.Theorem10]) so the forced lower bound and the measured
    upper bound are asserted to bracket each other in one report. *)

module Space : sig
  type kind_usage = {
    kind : string;  (** rendered object kind *)
    total : int;  (** objects of this kind in the protocol *)
    touched : int;  (** of which this many are reachably accessed *)
  }

  type bracket = {
    theorem_bound : int;  (** ⌈n/k⌉ - 1, what Theorem 10 promises *)
    forced : int;  (** objects the Lemma 9 adversary concretely forced *)
  }

  type report = {
    protocol : string;
    n : int;
    k : int;
    total_objects : int;  (** size of the declared object array *)
    declared : int;  (** [space_bound] at the protocol's own [n]/[k] *)
    measured : int;  (** distinct objects accessed across all executions *)
    witness : int;  (** max distinct objects along one explored execution *)
    per_kind : kind_usage list;
    configs : int;
    exhaustive : bool;
    bracket : bracket option;  (** present iff the adversary ran *)
    checks : check list;
  }

  val ok : report -> bool
  val pp_report : Format.formatter -> report -> unit
  val report_to_json : report -> Obs.Json.t

  module Make (P : Shmem.Protocol.S) : sig
    val run :
      ?max_configs:int ->
      ?inputs:int array ->
      ?prune:(Shmem.Value.t array -> bool) ->
      ?sym:bool ->
      ?por:bool ->
      ?certificate:bool ->
      ?search_rounds:int ->
      unit ->
      report
    (** certify [P]'s declared space bound.  [max_configs] (default
        20_000) bounds the exploration; [prune] cuts off configurations
        whose memory snapshot satisfies it (marking the report
        non-exhaustive).  [sym] / [por] default to [true] — unlike
        {!Make.run}, reduction is on unless disabled.  [certificate]
        (default [true]) runs the Theorem 10 adversary on swap-only
        protocols with [search_rounds] (default 200) search attempts per
        induction level; pass [~certificate:false] to skip the (costly)
        lower-bound bracket. *)
  end

  val run_protocol :
    ?max_configs:int ->
    ?inputs:int array ->
    ?prune:(Shmem.Value.t array -> bool) ->
    ?sym:bool ->
    ?por:bool ->
    ?certificate:bool ->
    ?search_rounds:int ->
    Shmem.Protocol.t ->
    report
  (** {!Make.run} over a first-class protocol value — what
      [swapspace analyze --space] calls for each registry entry *)
end

(** {1 Happens-before race checking}

    A near-linear dynamic checker over the timestamped per-object histories
    recorded by the multicore runtime ([Runtime.Make.run ~record:true]).
    Timestamps come from one global atomic clock, so [finish a < start b]
    is a {e definite} real-time precedence; the checker represents that
    interval order with per-thread vector clocks and flags responses that
    no linearization consistent with it could produce:

    - {b stale-response}: a response value that no operation that could
      precede the reader ever installed (and is not the initial value);
    - {b lost-seniority}: the initial value returned after an install
      definitely preceded the reader, with no operation ever re-installing
      the initial value;
    - {b duplicate-consumption}: swap responses consume installs — each
      installed value instance is returned by at most one later swap, so
      for every value [r], [#swap responses = r] at most
      [#installs of r + (init = r)].  A torn exchange manifests here (two
      swaps witnessing the same predecessor), as do lost updates and
      double TAS winners.

    All three rules are sound: a linearizable history never trips them.
    They are deliberately incomplete (order anomalies among distinct values
    can escape) — the exponential Wing & Gong checker remains the complete
    oracle for short histories; this one scales to the full campaign
    traffic. *)

module Hb : sig
  type violation = { rule : string; detail : string }

  type stats = {
    events : int;
    threads : int;
    hb_edges : int;  (** definite-precedence pairs witnessed *)
  }

  val check :
    kind:Shmem.Obj_kind.t ->
    init:Shmem.Value.t ->
    Linearize.Obj_history.event list ->
    (stats, violation) result
  (** check one object's history (sorted by invocation timestamp, as the
      runtime returns it); the first violation wins *)

  val check_histories :
    ?max_events:int ->
    kinds:Shmem.Obj_kind.t array ->
    init:(int -> Shmem.Value.t) ->
    Linearize.Obj_history.event list array ->
    (int * int, string) result
  (** run {!check} on every per-object history: [(checked, skipped)] on
      success, where histories longer than [max_events] (default 65_536)
      are skipped; [Error] names the first object that fails and the rule
      it broke *)
end
