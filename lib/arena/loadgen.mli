(** The closed-loop load generator: drive millions of k-set-agreement
    rounds through {!Service} and report throughput and latency.

    A closed loop means the offered load is self-regulating: a fixed
    population of [clients] virtual clients each submits, waits for its
    round to decide, thinks for a deterministic seeded number of rounds,
    and re-enters — so the generator can never outrun the service and
    every latency sample is an honest queueing + service time.  Think
    times are shaped by a {!profile}; all randomness is seeded, so a run
    is reproducible bit-for-bit given [(seed, workers = 1)].

    Latency quantiles come from the service's always-on histograms;
    when [Obs] is enabled the same samples also land in
    [arena.admit_ns] / [arena.decide_ns] for snapshots and [bench
    --json]. *)

type profile =
  | Zero_think  (** every client re-enters immediately: saturation *)
  | Steady  (** seeded think-times uniform in [0 .. max_think] rounds *)
  | Bursty
      (** mostly immediate re-entry with occasional long sleeps
          ([4 * max_think] rounds) — admission sees waves *)

val profile_of_string : string -> (profile, string) result
val pp_profile : Format.formatter -> profile -> unit

type result = {
  protocol : string;
  clients : int;
  workers : int;
  target : int;
  rounds : int;
  decisions : int;
  elapsed : float;  (** monotonic seconds *)
  rounds_per_sec : float;
  decisions_per_sec : float;
  admit_p50_us : float;
  admit_p95_us : float;
  admit_p99_us : float;
  decide_p50_us : float;
  decide_p95_us : float;
  decide_p99_us : float;
  kills : int;
  adoptions : int;
  steals : int;
  escalated : int;
  max_bound : int;
  respawns : int;
  gave_up : int;
  violation_count : int;
  violations : (int * string) list;
  conservation_error : string option;
  residue : int;
  digest : int;
  ok : bool;
}

val run :
  protocol:Shmem.Protocol.t ->
  clients:int ->
  rounds:int ->
  workers:int ->
  ?seed:int ->
  ?arenas:int ->
  ?profile:profile ->
  ?max_think:int ->
  ?kill_every:int ->
  ?max_point:int ->
  ?paranoid:bool ->
  unit ->
  result
(** instantiate [Service.Make] over [protocol] and drive it.
    [kill_every] (quiet when omitted) enables the kill-and-heal chaos
    overlay through [Fault.service_kill_plan ~seed ~kill_every] —
    roughly one round in [kill_every] loses its driving incarnation
    mid-flight and is adopted.  Defaults: [profile = Steady],
    [max_think = 4], [seed = 0x5EED].
    @raise Invalid_argument as [Service.Make(P).serve], or if
    [kill_every]/[max_point] are out of range
    ([Fault.service_kill_plan]) *)

val pp : Format.formatter -> result -> unit
(** multi-line human-readable report *)
