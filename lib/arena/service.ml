(* The long-running consensus service.  See service.mli for the model;
   the short version: a fixed pool of pre-allocated runtime arenas is
   recycled under Shmem.Epoch stamps, waiting clients are coalesced into
   rounds by a single-admitter critical section fed from a swap-based
   intake queue, and a fixed pool of worker domains — supervised by
   Supervisor.Pool — pulls whole rounds (work-stealing), driving every
   member's state machine on one domain via Runtime.arena_apply. *)

module Sh = Shmem

exception Killed of int

(* ------------------------------------------------------------------ *)
(* Always-on latency histograms (power-of-two ns buckets).  Obs
   histograms are also fed, but they are off unless the caller enabled
   metrics, and the load generator must report quantiles regardless. *)

module Hist = struct
  let buckets = 63

  type t = {
    counts : int array;
    mutable n : int;
    mutable sum_ns : float;
    mutable max_ns : int;
  }

  let create () =
    { counts = Array.make buckets 0; n = 0; sum_ns = 0.; max_ns = 0 }

  (* floor(log2 ns), clamped into [0, buckets) *)
  let bucket_of ns =
    if ns <= 1 then 0
    else begin
      let b = ref 0 and v = ref ns in
      while !v > 1 do
        incr b;
        v := !v lsr 1
      done;
      min !b (buckets - 1)
    end

  let observe t ns =
    let ns = if ns < 0 then 0 else ns in
    let b = bucket_of ns in
    t.counts.(b) <- t.counts.(b) + 1;
    t.n <- t.n + 1;
    t.sum_ns <- t.sum_ns +. float_of_int ns;
    if ns > t.max_ns then t.max_ns <- ns

  let merge_into ~into t =
    Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) t.counts;
    into.n <- into.n + t.n;
    into.sum_ns <- into.sum_ns +. t.sum_ns;
    if t.max_ns > into.max_ns then into.max_ns <- t.max_ns

  let count t = t.n
  let max_ns t = t.max_ns
  let mean_ns t = if t.n = 0 then 0. else t.sum_ns /. float_of_int t.n

  let quantile t q =
    if q < 0. || q > 1. then invalid_arg "Service.Hist.quantile";
    if t.n = 0 then 0.
    else begin
      let rank =
        max 1 (min t.n (int_of_float (Float.ceil (q *. float_of_int t.n))))
      in
      let acc = ref 0 and b = ref 0 in
      while !acc < rank && !b < buckets do
        acc := !acc + t.counts.(!b);
        incr b
      done;
      (* upper edge of the bucket that crossed the rank, capped by the
         true maximum so q = 1 is exact *)
      let upper =
        if !b >= buckets then float_of_int t.max_ns
        else float_of_int ((1 lsl !b) - 1)
      in
      Float.min upper (float_of_int t.max_ns)
    end
end

(* ------------------------------------------------------------------ *)

module Make (P : Sh.Protocol.S) = struct
  module R = Runtime.Make (P)

  let m_rounds = Obs.counter "arena.rounds"
  let m_decisions = Obs.counter "arena.decisions"
  let m_kills = Obs.counter "arena.kills"
  let m_adoptions = Obs.counter "arena.adoptions"
  let m_steals = Obs.counter "arena.steals"
  let m_recycles = Obs.counter "arena.recycles"
  let m_escalations = Obs.counter "arena.escalations"
  let h_admit = Obs.histogram "arena.admit_ns"
  let h_decide = Obs.histogram "arena.decide_ns"
  let h_batch = Obs.histogram "arena.batch"
  let sp_serve = Obs.span "arena.serve"

  type client = {
    id : int;
    mutable served : int;
    mutable submit_ns : int64;
    mutable pending : bool;
  }

  type round = {
    rid : int;
    stamp : Sh.Epoch.stamp;
    members : client array;
    inputs : int array;
    mutable incarnation : int;
    mutable crashed : int;
    mutable states : P.state array option;
  }

  type summary = {
    rounds_done : int;
    target : int;
    decisions : int;
    kills : int;
    adoptions : int;
    steals : int;
    escalated : int;
    max_bound : int;
    recycles : int;
    respawns : int;
    gave_up : int list;
    violation_count : int;
    violations : (int * string) list;
    conservation : (unit, string) result;
    residue : int;
    elapsed : float;
    admit_hist : Hist.t;
    decide_hist : Hist.t;
    digest : int;
  }

  let ok s =
    s.violation_count = 0
    && s.rounds_done = s.target
    && s.gave_up = []
    && s.residue = 0
    && match s.conservation with Ok () -> true | Error _ -> false

  let default_think ~seed ~max_think ~client ~served =
    if max_think <= 0 then 0
    else
      let module H = Sh.Hashx in
      H.int (H.int (H.int H.seed seed) client) served mod (max_think + 1)

  let default_input ~seed ~client ~served =
    let module H = Sh.Hashx in
    H.int (H.int (H.int H.seed (seed lxor 0x1A7E4A)) client) served
    mod P.num_inputs

  let serve ~clients ~rounds ~workers ?(seed = 0x5EED) ?arenas
      ?(max_think = 4) ?think ?input ?kill ?max_respawns ?(paranoid = false)
      () =
    if clients < 1 then invalid_arg "Service.serve: clients must be >= 1";
    if rounds < 0 then invalid_arg "Service.serve: rounds must be >= 0";
    if workers < 1 then invalid_arg "Service.serve: workers must be >= 1";
    if max_think < 0 then invalid_arg "Service.serve: max_think must be >= 0";
    let arenas_n =
      match arenas with
      | Some a ->
        if a < 1 then invalid_arg "Service.serve: arenas must be >= 1";
        a
      | None -> max 2 (2 * workers)
    in
    if arenas_n > Sh.Epoch.max_slots then
      invalid_arg "Service.serve: arenas exceeds Epoch.max_slots";
    let target = rounds in
    let think =
      match think with
      | Some f -> f
      | None -> fun ~client ~served -> default_think ~seed ~max_think ~client ~served
    in
    let input_of =
      match input with
      | Some f -> f
      | None -> fun ~client ~served -> default_input ~seed ~client ~served
    in
    (* a chaos kill is healed, not a persistent worker fault: the slot
       breaker must outlast every planned kill, so the default budget
       scales with the round target *)
    let max_respawns =
      match max_respawns with Some r -> r | None -> target + (4 * workers)
    in
    (* -------------------- shared state -------------------- *)
    let pool = Array.init arenas_n (fun _ -> R.make_arena ()) in
    let epochs =
      Array.init arenas_n (fun s ->
          Atomic.make (Sh.Epoch.to_int (Sh.Epoch.make ~slot:s ~epoch:0)))
    in
    let free_slots : int Intake.t = Intake.create () in
    for s = arenas_n - 1 downto 0 do
      Intake.push free_slots s
    done;
    let intake : client Intake.t = Intake.create () in
    let queues : round Intake.t array =
      Array.init workers (fun _ -> Intake.create ())
    in
    let inflight : round option Atomic.t array =
      Array.init workers (fun _ -> Atomic.make None)
    in
    let wheel_sz = max 8 (2 * (max_think + 1)) in
    let park : (client * int) Intake.t array =
      Array.init wheel_sz (fun _ -> Intake.create ())
    in
    let parked = Atomic.make 0 in
    let issued = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let vclock = Atomic.make 0 in
    let admit_lock = Atomic.make false in
    (* mutated only inside the admit critical section *)
    let digest = ref Sh.Hashx.seed in
    let admit_hist = Hist.create () in
    let decide_hists = Array.init workers (fun _ -> Hist.create ()) in
    let kills = Atomic.make 0 in
    let adoptions = Atomic.make 0 in
    let steals = Atomic.make 0 in
    let escalated = Atomic.make 0 in
    let max_bound = Atomic.make P.k in
    let residue = Atomic.make 0 in
    let decisions = Atomic.make 0 in
    let recycles = Atomic.make 0 in
    let violation_count = Atomic.make 0 in
    let violations : (int * string) Intake.t = Intake.create () in
    let violate rid detail =
      Atomic.incr violation_count;
      if Atomic.get violation_count <= 32 then
        Intake.push violations (rid, detail)
    in
    let population =
      Array.init clients (fun id ->
          { id; served = 0; submit_ns = 0L; pending = false })
    in
    let submit now c =
      c.submit_ns <- now;
      Intake.push intake c
    in
    (* -------------------- admission -------------------- *)
    (* drain wheel buckets (last, vt]; entries parked for a later lap of
       the wheel are re-parked *)
    let release_due vt last =
      let released = ref 0 in
      for r = last + 1 to vt do
        List.iter
          (fun (c, rel) ->
            if rel <= vt then begin
              incr released;
              Atomic.decr parked;
              submit (Resil.Clock.now_ns ()) c
            end
            else Intake.push park.(rel mod wheel_sz) (c, rel))
          (Intake.drain park.(r mod wheel_sz))
      done;
      !released
    in
    let rec take k acc rest =
      if k = 0 then (List.rev acc, rest)
      else
        match rest with
        | [] -> (List.rev acc, [])
        | c :: tl -> take (k - 1) (c :: acc) tl
    in
    let admit () =
      if Atomic.compare_and_set admit_lock false true then begin
        (* 1. advance the think wheel to the completed-rounds clock *)
        let vt0 = Atomic.get vclock in
        let vt = ref (max vt0 (Atomic.get completed)) in
        ignore (release_due !vt vt0);
        (* 2. fast-forward through pure think time: when every client is
           parked and nothing is in flight, round time cannot advance on
           its own, so the admitter ticks the wheel until someone wakes
           (deterministic — no wall clock involved in the decision) *)
        while
          Atomic.get issued < target
          && Intake.is_empty intake
          && Atomic.get issued = Atomic.get completed
          && Atomic.get parked > 0
        do
          ignore (release_due (!vt + 1) !vt);
          incr vt
        done;
        Atomic.set vclock !vt;
        (* 3. coalesce waiting clients into epoch-stamped rounds *)
        let waiting = ref (Intake.drain intake) in
        let now = Resil.Clock.now_ns () in
        let out_of_slots = ref false in
        while
          (not !out_of_slots)
          && (match !waiting with [] -> false | _ -> true)
          && Atomic.get issued < target
        do
          match Intake.pop free_slots with
          | None -> out_of_slots := true
          | Some slot ->
            let batch, rest = take P.n [] !waiting in
            waiting := rest;
            let members = Array.of_list batch in
            let b = Array.length members in
            let rid = Atomic.fetch_and_add issued 1 in
            let stamp = Sh.Epoch.of_int (Atomic.get epochs.(slot)) in
            let inputs = Array.make b 0 in
            let d = ref (Sh.Hashx.int !digest rid) in
            Array.iteri
              (fun pid c ->
                if c.pending then
                  violate rid (Fmt.str "client %d admitted twice" c.id);
                c.pending <- true;
                inputs.(pid) <- input_of ~client:c.id ~served:c.served;
                let lat = Int64.to_int (Int64.sub now c.submit_ns) in
                Hist.observe admit_hist lat;
                Obs.Histogram.observe h_admit lat;
                d := Sh.Hashx.int (Sh.Hashx.int !d c.id) inputs.(pid))
              members;
            digest := !d;
            Obs.Histogram.observe h_batch b;
            let states =
              Array.init b (fun pid -> P.init ~pid ~input:inputs.(pid))
            in
            let round =
              { rid;
                stamp;
                members;
                inputs;
                incarnation = 0;
                crashed = 0;
                states = Some states
              }
            in
            Intake.push queues.(rid mod workers) round
        done;
        List.iter (Intake.push intake) !waiting;
        Atomic.set admit_lock false
      end
    in
    (* -------------------- round driving -------------------- *)
    let drive ~wslot ~rng round =
      Atomic.set inflight.(wslot) (Some round);
      let slot = Sh.Epoch.slot round.stamp in
      let arena = pool.(slot) in
      (* the issued stamp must still be current: a mismatch means the
         slot was recycled under a live reference — the ABA failure the
         epoch exists to catch *)
      if Atomic.get epochs.(slot) <> Sh.Epoch.to_int round.stamp then
        violate round.rid
          (Fmt.str "stale stamp %a on slot %d" Sh.Epoch.pp round.stamp slot);
      if round.incarnation > 0 then begin
        Atomic.incr adoptions;
        Obs.Counter.incr m_adoptions
      end;
      let b = Array.length round.members in
      let states =
        match round.states with
        | Some s -> s
        | None ->
          (* adopted after a kill: rebuild every member through the
             protocol's declared recovery against the dirty arena *)
          Array.init b (fun pid ->
              match P.recovery with
              | Sh.Protocol.Restart -> P.init ~pid ~input:round.inputs.(pid)
              | Sh.Protocol.Resume f ->
                f ~pid ~input:round.inputs.(pid) (R.arena_mem arena))
      in
      round.states <- Some states;
      let kill_pt =
        match kill with
        | None -> None
        | Some plan -> plan ~round:round.rid ~incarnation:round.incarnation
      in
      let ops = ref 0 in
      let step pid =
        (match kill_pt with
        | Some pt when !ops >= pt ->
          (* chaos: this incarnation dies here.  If it already touched
             memory, the successor effectively runs with one more silent
             participant, so the round's agreement bound degrades by one
             (Gafni's restricted-runs view, as in the supervisor). *)
          if !ops > 0 then round.crashed <- round.crashed + 1;
          round.incarnation <- round.incarnation + 1;
          round.states <- None;
          Atomic.incr kills;
          Obs.Counter.incr m_kills;
          raise (Killed round.rid)
        | _ -> ());
        let op = P.poised states.(pid) in
        let resp = R.arena_apply arena op in
        incr ops;
        states.(pid) <- P.on_response states.(pid) resp
      in
      (* one domain drives the whole round, so every member below runs
         solo: obstruction-freedom guarantees each decides.  The order is
         a seeded shuffle so recycled arenas see varied access patterns;
         the budget is a livelock tripwire, not a pacing knob. *)
      let order = Array.init b (fun i -> i) in
      for i = b - 1 downto 1 do
        let j = Random.State.int rng (i + 1) in
        let t = order.(i) in
        order.(i) <- order.(j);
        order.(j) <- t
      done;
      let budget = 10_000 * (b + 1) in
      let dec = Array.make b (-1) in
      Array.iter
        (fun pid ->
          let guard = ref 0 in
          let rec go () =
            match P.decision states.(pid) with
            | Some v -> dec.(pid) <- v
            | None ->
              if !guard >= budget then
                violate round.rid
                  (Fmt.str "pid %d exceeded solo op budget %d" pid budget)
              else begin
                incr guard;
                step pid;
                go ()
              end
          in
          go ())
        order;
      (* per-round degradation contract: agreement within k + crashed
         incarnations that touched memory, and validity *)
      let bound = P.k + round.crashed in
      let distinct = ref [] in
      Array.iter
        (fun v -> if not (List.mem v !distinct) then distinct := v :: !distinct)
        dec;
      if List.length !distinct > bound then
        violate round.rid
          (Fmt.str "agreement: %d distinct decisions, bound %d"
             (List.length !distinct) bound);
      Array.iteri
        (fun pid v ->
          if v >= 0 && not (Array.exists (Int.equal v) round.inputs) then
            violate round.rid
              (Fmt.str "validity: pid %d decided %d, not an input" pid v))
        dec;
      if round.crashed > 0 then begin
        Atomic.incr escalated;
        Obs.Counter.incr m_escalations;
        let rec bump () =
          let cur = Atomic.get max_bound in
          if bound > cur && not (Atomic.compare_and_set max_bound cur bound)
          then bump ()
        in
        bump ()
      end;
      (* serve the members: record latency, then think and re-enter *)
      let now = Resil.Clock.now_ns () in
      Array.iter
        (fun c ->
          c.pending <- false;
          c.served <- c.served + 1;
          let lat = Int64.to_int (Int64.sub now c.submit_ns) in
          Hist.observe decide_hists.(wslot) lat;
          Obs.Histogram.observe h_decide lat;
          let tt = think ~client:c.id ~served:c.served in
          if tt <= 0 then submit now c
          else begin
            Atomic.incr parked;
            let rel = Atomic.get completed + 1 + tt in
            Intake.push park.(rel mod wheel_sz) (c, rel)
          end)
        round.members;
      ignore (Atomic.fetch_and_add decisions b);
      Obs.Counter.add m_decisions b;
      (* recycle: quiescence is structural (this worker was the only
         driver and every member has decided), so rewind the cells, bump
         the slot's epoch — invalidating any stale stamp — and return it
         to the pool *)
      R.reset_arena arena;
      if paranoid then
        Array.iteri
          (fun i v ->
            if not (Sh.Value.equal v (P.init_object i)) then begin
              Atomic.incr residue;
              violate round.rid
                (Fmt.str "residue in B%d after reset: %a" i Sh.Value.pp v)
            end)
          (R.arena_mem arena);
      Atomic.set epochs.(slot) (Sh.Epoch.to_int (Sh.Epoch.next round.stamp));
      Atomic.incr recycles;
      Obs.Counter.incr m_recycles;
      Intake.push free_slots slot;
      Atomic.set inflight.(wslot) None;
      Atomic.incr completed;
      Obs.Counter.incr m_rounds
    in
    (* -------------------- workers -------------------- *)
    let next_round slot =
      match Intake.pop queues.(slot) with
      | Some r -> Some r
      | None ->
        let stolen = ref None in
        let w = ref 0 in
        while
          (match !stolen with None -> true | Some _ -> false) && !w < workers
        do
          if !w <> slot then begin
            match Intake.pop queues.(!w) with
            | Some r ->
              stolen := Some r;
              Atomic.incr steals;
              Obs.Counter.incr m_steals
            | None -> ()
          end;
          incr w
        done;
        !stolen
    in
    let worker ~slot ~incarnation =
      let rng = Random.State.make [| seed; 0xA12E4A; slot; incarnation |] in
      let pace = Resil.Policy.Backoff.exponential ~base:1 ~cap:256 () in
      let idle = ref 0 in
      let rec loop () =
        if Atomic.get completed >= target then ()
        else
          match next_round slot with
          | Some r ->
            idle := 0;
            drive ~wslot:slot ~rng r;
            loop ()
          | None ->
            admit ();
            (match next_round slot with
            | Some r ->
              idle := 0;
              drive ~wslot:slot ~rng r
            | None ->
              ignore
                (Resil.Policy.Backoff.once pace ~attempt:(min !idle 8));
              incr idle);
            loop ()
      in
      loop ()
    in
    let on_crash ~slot ~incarnation:_ e =
      (* heal: whatever round the dead incarnation had in flight goes
         back to its slot's queue for adoption (by the respawned worker
         or a thief) *)
      (match Atomic.exchange inflight.(slot) None with
      | Some r -> Intake.push queues.(slot) r
      | None -> ());
      match e with
      | Killed _ -> ()
      | e -> violate (-1) ("worker raised: " ^ Printexc.to_string e)
    in
    (* -------------------- run -------------------- *)
    let since = Resil.Clock.now_ns () in
    Array.iter (submit since) population;
    let report =
      if target = 0 then
        { Supervisor.Pool.respawns = Array.make workers 0;
          gave_up = [];
          crashes = []
        }
      else
        Obs.Span.time sp_serve (fun () ->
            Supervisor.Pool.run ~workers ~max_respawns ~on_crash worker)
    in
    let elapsed = Resil.Clock.elapsed_s ~since in
    (* -------------------- conservation -------------------- *)
    let conservation =
      let seen = Array.make clients false in
      let count = ref 0 in
      let problem = ref None in
      let note p = match !problem with Some _ -> () | None -> problem := Some p in
      let visit ~in_round c =
        incr count;
        if c.id < 0 || c.id >= clients then
          note (Fmt.str "unknown client id %d" c.id)
        else begin
          if seen.(c.id) then note (Fmt.str "client %d duplicated" c.id);
          seen.(c.id) <- true
        end;
        if c.pending && not in_round then
          note (Fmt.str "client %d pending outside any round" c.id)
      in
      List.iter (visit ~in_round:false) (Intake.drain intake);
      Array.iter
        (fun b ->
          List.iter (fun (c, _) -> visit ~in_round:false c) (Intake.drain b))
        park;
      Array.iter
        (fun q ->
          List.iter
            (fun r -> Array.iter (visit ~in_round:true) r.members)
            (Intake.drain q))
        queues;
      Array.iter
        (fun a ->
          match Atomic.get a with
          | Some r -> Array.iter (visit ~in_round:true) r.members
          | None -> ())
        inflight;
      match !problem with
      | Some p -> Error p
      | None ->
        if !count <> clients then
          Error
            (Fmt.str "%d clients accounted for, expected %d" !count clients)
        else Ok ()
    in
    let decide_hist = Hist.create () in
    Array.iter (fun h -> Hist.merge_into ~into:decide_hist h) decide_hists;
    { rounds_done = Atomic.get completed;
      target;
      decisions = Atomic.get decisions;
      kills = Atomic.get kills;
      adoptions = Atomic.get adoptions;
      steals = Atomic.get steals;
      escalated = Atomic.get escalated;
      max_bound = Atomic.get max_bound;
      recycles = Atomic.get recycles;
      respawns = Array.fold_left ( + ) 0 report.Supervisor.Pool.respawns;
      gave_up = report.Supervisor.Pool.gave_up;
      violation_count = Atomic.get violation_count;
      violations = Intake.drain violations;
      conservation;
      residue = Atomic.get residue;
      elapsed;
      admit_hist;
      decide_hist;
      digest = !digest
    }
end
