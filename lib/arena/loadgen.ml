(* Closed-loop load generation over Service.  See the interface. *)

module Sh = Shmem

type profile = Zero_think | Steady | Bursty

let profile_of_string = function
  | "zero" | "zero-think" -> Ok Zero_think
  | "steady" -> Ok Steady
  | "bursty" -> Ok Bursty
  | s -> Error (Fmt.str "unknown profile %S (zero|steady|bursty)" s)

let pp_profile ppf = function
  | Zero_think -> Fmt.string ppf "zero-think"
  | Steady -> Fmt.string ppf "steady"
  | Bursty -> Fmt.string ppf "bursty"

type result = {
  protocol : string;
  clients : int;
  workers : int;
  target : int;
  rounds : int;
  decisions : int;
  elapsed : float;
  rounds_per_sec : float;
  decisions_per_sec : float;
  admit_p50_us : float;
  admit_p95_us : float;
  admit_p99_us : float;
  decide_p50_us : float;
  decide_p95_us : float;
  decide_p99_us : float;
  kills : int;
  adoptions : int;
  steals : int;
  escalated : int;
  max_bound : int;
  respawns : int;
  gave_up : int;
  violation_count : int;
  violations : (int * string) list;
  conservation_error : string option;
  residue : int;
  digest : int;
  ok : bool;
}

(* think-time shaping: deterministic in (seed, client, served) *)
let think_of ~profile ~seed ~max_think ~client ~served =
  let module H = Sh.Hashx in
  let h = H.int (H.int (H.int H.seed (seed lxor 0x7417)) client) served in
  match profile with
  | Zero_think -> 0
  | Steady -> if max_think <= 0 then 0 else h mod (max_think + 1)
  | Bursty -> if h mod 5 = 0 then 4 * max_think else 0

let run ~protocol ~clients ~rounds ~workers ?(seed = 0x5EED) ?arenas
    ?(profile = Steady) ?(max_think = 4) ?kill_every ?max_point
    ?(paranoid = false) () =
  let module P = (val protocol : Sh.Protocol.S) in
  let module S = Service.Make (P) in
  let kill =
    match kill_every with
    | None -> None
    | Some kill_every ->
      Some (Fault.service_kill_plan ~seed ~kill_every ?max_point ())
  in
  let think ~client ~served =
    think_of ~profile ~seed ~max_think ~client ~served
  in
  let s =
    S.serve ~clients ~rounds ~workers ~seed ?arenas ~max_think ~think ?kill
      ~paranoid ()
  in
  let open S in
  let q h p = Service.Hist.quantile h p /. 1e3 in
  let per_sec n = if s.elapsed > 0. then float_of_int n /. s.elapsed else 0. in
  { protocol = P.name;
    clients;
    workers;
    target = s.target;
    rounds = s.rounds_done;
    decisions = s.decisions;
    elapsed = s.elapsed;
    rounds_per_sec = per_sec s.rounds_done;
    decisions_per_sec = per_sec s.decisions;
    admit_p50_us = q s.admit_hist 0.50;
    admit_p95_us = q s.admit_hist 0.95;
    admit_p99_us = q s.admit_hist 0.99;
    decide_p50_us = q s.decide_hist 0.50;
    decide_p95_us = q s.decide_hist 0.95;
    decide_p99_us = q s.decide_hist 0.99;
    kills = s.kills;
    adoptions = s.adoptions;
    steals = s.steals;
    escalated = s.escalated;
    max_bound = s.max_bound;
    respawns = s.respawns;
    gave_up = List.length s.gave_up;
    violation_count = s.violation_count;
    violations = s.violations;
    conservation_error =
      (match s.conservation with Ok () -> None | Error e -> Some e);
    residue = s.residue;
    digest = s.digest;
    ok = S.ok s
  }

let pp ppf r =
  Fmt.pf ppf "@[<v>";
  Fmt.pf ppf "protocol          %s  (%d clients, %d domains)@," r.protocol
    r.clients r.workers;
  Fmt.pf ppf "rounds            %d / %d decided in %.3fs@," r.rounds r.target
    r.elapsed;
  Fmt.pf ppf "throughput        %.0f rounds/s, %.0f decisions/s@,"
    r.rounds_per_sec r.decisions_per_sec;
  Fmt.pf ppf "admission latency p50 %.1fus  p95 %.1fus  p99 %.1fus@,"
    r.admit_p50_us r.admit_p95_us r.admit_p99_us;
  Fmt.pf ppf "decision latency  p50 %.1fus  p95 %.1fus  p99 %.1fus@,"
    r.decide_p50_us r.decide_p95_us r.decide_p99_us;
  Fmt.pf ppf "chaos             %d kills, %d adoptions, %d escalated (bound <= %d)@,"
    r.kills r.adoptions r.escalated r.max_bound;
  Fmt.pf ppf "pool              %d steals, %d respawns, %d slots abandoned@,"
    r.steals r.respawns r.gave_up;
  (match r.conservation_error with
  | None -> Fmt.pf ppf "conservation      ok (no client lost or duplicated)@,"
  | Some e -> Fmt.pf ppf "conservation      VIOLATED: %s@," e);
  if r.residue > 0 then Fmt.pf ppf "residue           %d recycles leaked state@," r.residue;
  if r.violation_count > 0 then begin
    Fmt.pf ppf "violations        %d@," r.violation_count;
    List.iter
      (fun (rid, d) -> Fmt.pf ppf "  round %d: %s@," rid d)
      r.violations
  end;
  Fmt.pf ppf "verdict           %s" (if r.ok then "OK" else "FAILED");
  Fmt.pf ppf "@]"
