(** The long-running consensus service: pooled swap arenas, epoch-stamped
    rounds, batched admission, and a supervised work-stealing worker pool.

    One agreement instance per request would allocate fresh atomic cells
    per round and spawn [P.n] domains per round — neither survives
    millions of rounds.  The service instead amortizes both:

    - {b Arena pool.}  A fixed set of [Runtime.Make(P)] arenas is
      pre-allocated; each decided round rewinds its arena's cells
      ([R.reset_arena] — quiescence is structural, the single driving
      worker owns every member) and reissues the slot under the {e next}
      epoch of its [Shmem.Epoch] stamp.  A stale reference to a recycled
      slot is detected by a stamp mismatch, never silently absorbed —
      the classic ABA failure made checkable with one load.

    - {b Batched admission.}  Clients enter through a lock-free
      swap-based {!Intake} queue.  A single-admitter critical section
      (claimed by whatever worker is idle) drains the intake with one
      [Atomic.exchange] and coalesces waiting clients into rounds of up
      to [P.n] members, assigning pids, seeded inputs, and an
      epoch-stamped arena slot.

    - {b Work-stealing worker pool.}  [workers] domains — supervised by
      [Supervisor.Pool], so a crashed worker respawns — pull whole
      rounds, not clients: a worker drives {e every} member state machine
      of its round on its own domain through [R.arena_apply].  Because a
      round has exactly one driver, each member's window is a solo run
      and obstruction-freedom guarantees decision.  Idle workers steal
      queued rounds from other slots.

    - {b Kill-and-heal chaos.}  An optional [kill] plan (see
      [Fault.service_kill_plan]) names an operation count at which the
      incarnation driving a round dies (an exception through the worker,
      healing via [Supervisor.Pool]'s [on_crash]: the orphaned round is
      re-queued and {e adopted} by the next incarnation, members rebuilt
      through [P.recovery] against the dirty arena).  Every killed
      incarnation that touched memory degrades that round's agreement
      bound by one — [k + crashed]-set agreement, Gafni's
      restricted-runs view, checked per round.

    Clients are closed-loop: a decided client thinks for a deterministic,
    seeded number of rounds (a timing wheel driven by the {e round}
    clock, never the wall clock) and re-enters the intake.  All
    timestamps come from [Resil.Clock]; the service is enrolled in the
    [--monotonic] source lint. *)

exception Killed of int
(** raised inside a worker by the chaos overlay; carries the round id *)

(** Always-on power-of-two-bucket latency histograms.  [Obs] histograms
    are also fed, but those are off unless metrics were enabled, and the
    load generator must report quantiles regardless. *)
module Hist : sig
  type t

  val create : unit -> t
  val observe : t -> int -> unit
  val merge_into : into:t -> t -> unit
  val count : t -> int
  val max_ns : t -> int
  val mean_ns : t -> float

  val quantile : t -> float -> float
  (** upper edge (ns) of the bucket containing the q-quantile, capped by
      the observed maximum; 0 on an empty histogram.
      @raise Invalid_argument unless [0 <= q <= 1] *)
end

module Make (P : Shmem.Protocol.S) : sig
  module R : module type of Runtime.Make (P)

  type client
  (** a member of the closed-loop population; identified by id, carrying
      its submission timestamp and served count *)

  type summary = {
    rounds_done : int;  (** rounds decided (the service's round clock) *)
    target : int;  (** rounds requested *)
    decisions : int;  (** client decisions delivered (sum of round sizes) *)
    kills : int;  (** chaos kills taken *)
    adoptions : int;  (** rounds re-driven by a later incarnation *)
    steals : int;  (** rounds taken from another worker's queue *)
    escalated : int;  (** rounds checked at a degraded bound [> P.k] *)
    max_bound : int;  (** largest agreement bound any round needed *)
    recycles : int;  (** arena slots reset and reissued *)
    respawns : int;  (** worker domains respawned by the pool *)
    gave_up : int list;  (** worker slots whose breaker tripped *)
    violation_count : int;
    violations : (int * string) list;
        (** first 32 [(round, detail)] violations: agreement/validity
            breaches, stale stamps, double admissions, budget blowups *)
    conservation : (unit, string) result;
        (** post-run census: every client accounted for exactly once
            (intake + think-wheel + stranded rounds), none pending
            outside a round — lost or duplicated clients surface here *)
    residue : int;  (** paranoid-mode reset-residue detections *)
    elapsed : float;  (** monotonic seconds *)
    admit_hist : Hist.t;  (** submit [->] admission latency, ns *)
    decide_hist : Hist.t;  (** submit [->] decision latency, ns *)
    digest : int;
        (** fold-hash of every admission batch (round id, member ids,
            inputs) — with [workers = 1] it is a deterministic function
            of the seed, the determinism oracle for tests *)
  }

  val ok : summary -> bool
  (** no violations, no residue, target reached, no abandoned workers,
      conservation holds *)

  val serve :
    clients:int ->
    rounds:int ->
    workers:int ->
    ?seed:int ->
    ?arenas:int ->
    ?max_think:int ->
    ?think:(client:int -> served:int -> int) ->
    ?input:(client:int -> served:int -> int) ->
    ?kill:(round:int -> incarnation:int -> int option) ->
    ?max_respawns:int ->
    ?paranoid:bool ->
    unit ->
    summary
  (** run the service until [rounds] rounds have decided.

      [arenas] (default [max 2 (2 * workers)]) sizes the arena pool;
      [max_think] (default 4) bounds the default seeded think-time in
      rounds; [think]/[input] override the seeded defaults (inputs are
      taken [mod P.num_inputs] by the default only — custom functions
      must stay in range); [kill] enables the chaos overlay;
      [max_respawns] (default [rounds + 4 * workers] — a healed kill is
      not a persistent fault) is the per-worker-slot breaker budget;
      [paranoid] re-reads every cell after each reset and records any
      non-initial value as residue.

      Metrics (when [Obs] is enabled): counters [arena.rounds],
      [arena.decisions], [arena.kills], [arena.adoptions],
      [arena.steals], [arena.recycles], [arena.escalations]; histograms
      [arena.admit_ns], [arena.decide_ns], [arena.batch]; span
      [arena.serve].
      @raise Invalid_argument on non-positive [clients]/[workers],
      negative [rounds]/[max_think], or an [arenas] outside
      [1 .. Shmem.Epoch.max_slots] *)
end
