(* An atomic cons list: CAS to prepend or pop, exchange to drain.  See
   the interface for the ABA story (immutable cells, never reinserted). *)

type 'a t = 'a list Atomic.t

let create () = Atomic.make []

let rec push t x =
  let old = Atomic.get t in
  if not (Atomic.compare_and_set t old (x :: old)) then begin
    Domain.cpu_relax ();
    push t x
  end

let drain t = List.rev (Atomic.exchange t [])

let rec pop t =
  match Atomic.get t with
  | [] -> None
  | x :: rest as old ->
    if Atomic.compare_and_set t old rest then Some x
    else begin
      Domain.cpu_relax ();
      pop t
    end

let is_empty t = match Atomic.get t with [] -> true | _ -> false
let length t = List.length (Atomic.get t)
