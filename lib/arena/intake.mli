(** A lock-free exchange-based bag — the service's intake and steal
    queues, built from the paper's own primitive.

    The structure is an atomic cons list.  Producers prepend with a CAS
    loop; the single-consumer {!drain} takes the {e entire} list with one
    [Atomic.exchange] and reverses it, so a batch drain is wait-free and
    returns elements in FIFO (arrival) order — exactly the coalescing
    step the admitter needs.  {!pop} removes one element LIFO-style with
    a CAS loop, which is how worker run-queues are consumed by their
    owner and by thieves alike.

    ABA-safety needs no epoch here: cons cells are immutable and never
    reinserted, so a CAS on the head can only succeed against the exact
    cell it read.  (The {e arenas} the service recycles do need epochs —
    see [Shmem.Epoch]; the queue does not because it never reuses.) *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** lock-free prepend (multi-producer safe) *)

val drain : 'a t -> 'a list
(** atomically take everything, in FIFO (oldest-first) order; wait-free
    (one [Atomic.exchange]) *)

val pop : 'a t -> 'a option
(** remove the most recently pushed element (multi-consumer safe) *)

val is_empty : 'a t -> bool

val length : 'a t -> int
(** O(n) — diagnostics only *)
