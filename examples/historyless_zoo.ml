(* The historyless-object zoo: every object kind of the paper's model, its
   operations, and the simulation results of [6] — a readable swap object
   can simulate any historyless object with the same domain, and Swap can
   simulate any nontrivial operation.

     dune exec examples/historyless_zoo.exe *)

module V = Shmem.Value
module K = Shmem.Obj_kind
module Op = Shmem.Op

let demo kind ~current action =
  let v', resp = K.apply kind ~current action in
  Fmt.pr "  %a: %a on %a -> value %a, response %a@." K.pp kind Op.pp
    { Op.obj = 0; action } V.pp current V.pp v' V.pp resp

let () =
  Fmt.pr "=== The paper's object kinds and their sequential semantics ===@.@.";
  demo (K.Register K.Unbounded) ~current:(V.Int 1) (Op.Write (V.Int 9));
  demo (K.Register K.Unbounded) ~current:(V.Int 9) Op.Read;
  demo (K.Swap_only K.Unbounded) ~current:V.Bot (Op.Swap (V.Int 5));
  demo (K.Readable_swap (K.Bounded 2)) ~current:V.zero (Op.Swap V.one);
  demo K.Test_and_set ~current:V.zero (Op.Swap V.one);
  demo K.Test_and_set_reset ~current:V.one (Op.Write V.zero);
  demo (K.Compare_and_swap K.Unbounded) ~current:V.Bot (Op.Cas (V.Bot, V.Int 3));
  Fmt.pr "@.historyless? register:%b swap:%b readable-swap:%b tas:%b cas:%b@.@."
    (K.is_historyless (K.Register K.Unbounded))
    (K.is_historyless (K.Swap_only K.Unbounded))
    (K.is_historyless (K.Readable_swap K.Unbounded))
    (K.is_historyless K.Test_and_set)
    (K.is_historyless (K.Compare_and_swap K.Unbounded));

  (* --- the simulation of [6] as a protocol transformer --- *)
  Fmt.pr "=== Simulating registers with readable swap objects [6] ===@.@.";
  let (module R) = Baselines.Register_ksa.make ~n:3 ~k:1 ~m:2 in
  let module T = Shmem.Simulate.To_readable_swap (R) in
  Fmt.pr "%s uses %d registers; %s uses %d readable swap objects@." R.name
    (Array.length R.objects) T.name
    (Array.length T.objects);
  let module ER = Shmem.Exec.Make (R) in
  let module ET = Shmem.Exec.Make (T) in
  let script = [ 0; 1; 2; 0; 1; 2; 0; 0; 0; 1; 2 ] in
  let cr, tr = ER.run_script (ER.initial ~inputs:[| 0; 1; 1 |]) script in
  let ct, tt = ET.run_script (ET.initial ~inputs:[| 0; 1; 1 |]) script in
  Fmt.pr "same schedule on both: decisions %a / %a, %d/%d identical responses@."
    Fmt.(list ~sep:(any ",") int)
    (ER.decided_values cr)
    Fmt.(list ~sep:(any ",") int)
    (ET.decided_values ct) (Shmem.Trace.length tr) (Shmem.Trace.length tt);
  let responses_match =
    List.for_all2
      (fun a b -> V.equal a.Shmem.Trace.resp b.Shmem.Trace.resp)
      (List.filter (fun s -> not (Op.is_nontrivial s.Shmem.Trace.op)) tr)
      (List.filter (fun s -> not (Op.is_nontrivial s.Shmem.Trace.op)) tt)
  in
  Fmt.pr "read responses identical: %b@.@." responses_match;

  (* --- why CAS escapes the paper's lower bounds --- *)
  Fmt.pr "=== CAS is not historyless: one object solves wait-free consensus \
          ===@.@.";
  let (module C) = Baselines.Cas_consensus.make ~n:5 ~m:5 in
  let module EC = Shmem.Exec.Make (C) in
  let c, trace, _ =
    EC.run ~sched:EC.round_robin ~max_steps:100
      (EC.initial ~inputs:[| 4; 2; 0; 1; 3 |])
  in
  Fmt.pr "5 processes, 1 CAS object, %d total steps, decided %a@."
    (Shmem.Trace.length trace)
    Fmt.(list ~sep:(any ",") int)
    (EC.decided_values c);
  Fmt.pr
    "whereas Theorem 10 proves swap-based consensus needs n-1 = 4 objects.@."
