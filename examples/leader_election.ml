(* Leader election on real cores: each domain proposes its own id through
   Algorithm 1 with m = n possible values (k = 1, i.e. consensus), so all
   domains agree on a single leader — using only n-1 hardware swap objects,
   one fewer than any register-based solution can achieve (the paper's
   Theorem 10 shows n-1 is optimal for swap).

     dune exec examples/leader_election.exe *)

let () =
  let n = 8 in
  Fmt.pr "=== Leader election among %d domains via swap-based consensus ===@.@."
    n;
  (* each process proposes its own pid *)
  let inputs = Array.init n Fun.id in
  let o = Multicore.Swap_ksa_mc.run ~n ~k:1 ~m:n ~inputs () in
  (match Multicore.Swap_ksa_mc.check ~inputs ~k:1 o with
  | Ok () -> ()
  | Error e -> failwith e);
  let leader = o.Multicore.Swap_ksa_mc.decisions.(0) in
  Array.iteri
    (fun pid d ->
      assert (d = leader);
      Fmt.pr "domain %d: leader is %d (%d passes, %d swaps)@." pid d
        o.Multicore.Swap_ksa_mc.passes.(pid)
        o.Multicore.Swap_ksa_mc.swaps.(pid))
    o.Multicore.Swap_ksa_mc.decisions;
  Fmt.pr "@.elected domain %d in %.4fs using %d swap objects@." leader
    o.Multicore.Swap_ksa_mc.elapsed (n - 1);

  (* the 2-process special case needs a single swap object and one
     operation per process *)
  let d0, d1 = Multicore.Two_proc_mc.run ~input0:0 ~input1:1 in
  assert (d0 = d1);
  Fmt.pr "2-process election from ONE swap object: both chose %d@." d0
