(* Counterexample hunting: take an unsafe variant of Algorithm 1 (the
   decision threshold lowered from the paper's 2 laps to 1 — bench table T8
   shows why that matters), let the model checker find an agreement
   violation, shrink it to a minimal schedule, and draw it.

     dune exec examples/counterexample_hunt.exe *)

let () =
  Fmt.pr
    "=== Hunting the bug in \"decide at a 1-lap lead\" (Algorithm 1 ablation) \
     ===@.@.";
  let (module P) = Core.Swap_ksa.make_ablation ~n:3 ~k:1 ~m:2 ~lead:1 () in
  let module C = Checker.Make (P) in
  let inputs = [| 0; 1; 1 |] in
  let prune (c : C.E.config) =
    Array.exists
      (fun v ->
        match v with
        | Shmem.Value.Pair (Shmem.Value.Ints u, _) ->
          Array.exists (fun x -> x > 3) u
        | _ -> false)
      c.C.E.mem
  in
  let report = C.explore ~prune ~inputs () in
  match
    List.find_opt
      (fun v -> v.Checker.property = "k-agreement")
      report.Checker.violations
  with
  | None -> failwith "expected a violation — the variant is supposed to be unsafe"
  | Some v ->
    Fmt.pr "checker: %d configurations explored, agreement violated by a \
            %d-step schedule@."
      report.Checker.configs_explored
      (Shmem.Trace.length v.Checker.trace);
    let small = C.shrink_violation ~inputs v in
    Fmt.pr "shrunk to %d steps: %s@.@."
      (Shmem.Trace.length small.Checker.trace)
      (Shmem.Schedule.to_string (Shmem.Schedule.of_trace small.Checker.trace));
    Fmt.pr "@[<v>%a@]@.@."
      (fun ppf -> Shmem.Timeline.render ~n:3 ppf)
      small.Checker.trace;
    (* replay it to show the contradiction *)
    let module E = Shmem.Exec.Make (P) in
    let c = E.replay (E.initial ~inputs) small.Checker.trace in
    Fmt.pr "decided values: %a — two values, violating agreement.@."
      Fmt.(list ~sep:(any " and ") int)
      (E.decided_values c);
    Fmt.pr
      "With the paper's 2-lap threshold the same schedule decides nothing \
       early:@.";
    let (module P2) = Core.Swap_ksa.make ~n:3 ~k:1 ~m:2 in
    let module E2 = Shmem.Exec.Make (P2) in
    let c2, _ =
      E2.run_script (E2.initial ~inputs)
        (Shmem.Schedule.of_trace small.Checker.trace)
    in
    Fmt.pr "decided values: %a@."
      Fmt.(list ~sep:(any " and ") int)
      (E2.decided_values c2)
