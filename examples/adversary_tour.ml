(* A guided tour of the Lemma 9 adversary (§5): why nontrivial operations
   alone cannot learn without destroying.

   We run consensus (k = 1) with Algorithm 1 for a small n.  First p0 runs
   solo from the configuration where it alone has input 0 and decides 0.
   The adversary then releases the remaining processes (all with input 1)
   one at a time: each is run exactly until it is about to swap an object
   that still holds evidence of p0's execution — and that very swap destroys
   the evidence for everyone after it.  Each process is therefore forced
   onto a fresh object, certifying that p0's execution touched at least
   n-1 distinct swap objects.

     dune exec examples/adversary_tour.exe *)

let () =
  let n = 4 in
  let (module P) = Core.Swap_ksa.make ~n ~k:1 ~m:2 in
  let module E = Shmem.Exec.Make (P) in
  let module L9 = Lowerbound.Lemma9.Make (P) in
  Fmt.pr "=== Lemma 9 adversary against Algorithm 1, n=%d, k=1 ===@.@." n;

  (* C: p0 has input 0, everyone else input 1 *)
  let inputs = Array.make n 1 in
  inputs.(0) <- 0;
  let c0 = E.initial ~inputs in
  let c_alpha, alpha =
    match E.run_solo ~pid:0 ~max_steps:1_000 c0 with
    | Some r -> r
    | None -> assert false
  in
  Fmt.pr "α: p0 runs solo from C and decides %a after %d steps,@."
    Fmt.(option int)
    (E.decision c_alpha 0) (Shmem.Trace.length alpha);
  Fmt.pr "   swapping objects {%a}@.@."
    Fmt.(list ~sep:(any ",") int)
    (Shmem.Trace.objects_swapped alpha);

  (* the adversary replays Q = {p1..p_{n-1}} (input 1) *)
  let q = List.init (n - 1) (fun i -> i + 1) in
  let cert = L9.run ~inputs ~alpha ~q ~v:1 () in
  Fmt.pr "Adversary: every q ∈ Q runs as if alone in a world where all \
          inputs are 1;@.";
  Fmt.pr "as long as q only touches already-overwritten objects, the two \
          worlds are@.";
  Fmt.pr "indistinguishable to q, and agreement forbids q from deciding. So \
          q must@.";
  Fmt.pr "swap a fresh object — overwriting its evidence:@.@.";
  let explain_steps trace =
    List.iter
      (fun (pid, op) -> Fmt.pr "    p%d: %a@." pid Shmem.Op.pp op)
      (Shmem.Trace.history trace)
  in
  Fmt.pr "  γ (appended after C·α):@.";
  explain_steps cert.L9.gamma;
  Fmt.pr "  δ (from the all-1 world D):@.";
  explain_steps cert.L9.delta;
  Fmt.pr "@.Objects forced: {%a} — %d of them, matching the ⌈n/k⌉-1 = %d \
          lower bound@."
    Fmt.(list ~sep:(any ",") int)
    cert.L9.objects_forced
    (List.length cert.L9.objects_forced)
    (n - 1);
  assert (List.length cert.L9.objects_forced = n - 1)
