(* Quickstart: run the paper's Algorithm 1 — obstruction-free m-valued
   k-set agreement from n-k swap objects — first in the discrete-event
   simulator under a random scheduler, then on real OCaml 5 domains with
   hardware swap (Atomic.exchange).

     dune exec examples/quickstart.exe *)

let () =
  let n = 6 and k = 2 and m = 3 in
  Fmt.pr "=== Algorithm 1: %d processes, %d-set agreement, %d input values, \
          %d swap objects ===@.@." n k m (n - k);

  (* --- simulated run --- *)
  let (module P) = Core.Swap_ksa.make ~n ~k ~m in
  let module E = Shmem.Exec.Make (P) in
  let inputs = [| 0; 1; 2; 0; 1; 2 |] in
  let c0 = E.initial ~inputs in
  let rng = Random.State.make [| 2024 |] in
  (* a bursty scheduler grants solo windows — obstruction-free algorithms
     are only guaranteed to terminate when some process eventually runs
     uninterrupted (bench table T6 quantifies this) *)
  let sched = E.bursty rng ~burst:(2 * Core.Swap_ksa.solo_step_bound ~n ~k) in
  let c, trace, outcome = E.run ~sched ~max_steps:100_000 c0 in
  assert (outcome = E.All_decided);
  Fmt.pr "simulator: inputs  = %a@." Fmt.(array ~sep:(any " ") int) inputs;
  Fmt.pr "simulator: decided = %a  (at most k=%d distinct values)@."
    Fmt.(array ~sep:(any " ") (option int))
    (Array.init n (E.decision c))
    k;
  Fmt.pr "simulator: %a@.@." Shmem.Stats.pp (Shmem.Stats.of_trace trace);
  assert (E.check_agreement c);
  assert (E.check_validity ~inputs c);

  (* --- every process alone decides its own input within 8(n-k) steps
         (validity + the Lemma 8 bound) --- *)
  let bound = Core.Swap_ksa.solo_step_bound ~n ~k in
  List.iter
    (fun pid ->
      match E.run_solo ~pid ~max_steps:bound c0 with
      | Some (c', solo) ->
        Fmt.pr "solo p%d: decides %a in %d steps (Lemma 8 bound: %d)@." pid
          Fmt.(option int)
          (E.decision c' pid) (Shmem.Trace.length solo) bound
      | None -> assert false)
    [ 0; 3 ];
  Fmt.pr "@.";

  (* --- real multicore run over Atomic.exchange --- *)
  let o = Multicore.Swap_ksa_mc.run ~n ~k ~m ~inputs () in
  (match Multicore.Swap_ksa_mc.check ~inputs ~k o with
  | Ok () -> ()
  | Error e -> failwith e);
  Fmt.pr "multicore: decided = %a in %.4fs (max %d passes)@."
    Fmt.(array ~sep:(any " ") int)
    o.Multicore.Swap_ksa_mc.decisions o.Multicore.Swap_ksa_mc.elapsed
    (Array.fold_left max 0 o.Multicore.Swap_ksa_mc.passes);
  Fmt.pr "@.ok.@."
